// spineless_lint — determinism & snapshot-safety static analysis over the
// repo's C++ sources. See tools/lint/lint.h for the rule set and
// doc/architecture.md "Static checks" for how each rule maps to a runtime
// invariant.
//
//   spineless_lint --root=/path/to/repo            # text report, exit 1 on findings
//   spineless_lint --root=. --json=lint.json       # machine-readable findings
//   spineless_lint --root=. src/sim/tcp.cc         # lint specific files
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

// Accepts both --flag=value and --flag value.
bool flag_value(const std::vector<std::string>& args, std::size_t* i,
                const std::string& name, std::string* out) {
  const std::string& a = args[*i];
  if (a == name) {
    if (*i + 1 >= args.size()) return false;
    *out = args[++*i];
    return true;
  }
  if (a.compare(0, name.size() + 1, name + "=") == 0) {
    *out = a.substr(name.size() + 1);
    return true;
  }
  return false;
}

int usage() {
  std::cerr
      << "usage: spineless_lint [--root=DIR] [--config=FILE]\n"
         "                      [--json[=FILE]] [files...]\n"
         "  --root    repository root (default: .)\n"
         "  --config  rule config (default: <root>/tools/lint/lint.toml)\n"
         "  --json    emit findings as JSON (to FILE, or stdout without =)\n"
         "  files     repo-relative files to lint instead of the\n"
         "            configured scan directories\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string config_path;
  bool json = false;
  std::string json_path;
  std::vector<std::string> only;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (flag_value(args, &i, "--root", &root)) continue;
    if (flag_value(args, &i, "--config", &config_path)) continue;
    if (a == "--json") {
      json = true;
      continue;
    }
    if (a.compare(0, 7, "--json=") == 0) {
      json = true;
      json_path = a.substr(7);
      continue;
    }
    if (a == "--help" || a == "-h") return usage();
    if (!a.empty() && a[0] == '-') {
      std::cerr << "spineless_lint: unknown flag " << a << "\n";
      return usage();
    }
    only.push_back(a);
  }
  if (config_path.empty()) config_path = root + "/tools/lint/lint.toml";

  std::string config_text;
  if (!read_file(config_path, &config_text)) {
    std::cerr << "spineless_lint: cannot read config " << config_path << "\n";
    return 2;
  }
  std::string error;
  const auto cfg = spineless::lint::parse_config(config_text, &error);
  if (!cfg.has_value()) {
    std::cerr << "spineless_lint: " << error << "\n";
    return 2;
  }

  const spineless::lint::LintResult result =
      spineless::lint::run_lint(root, *cfg, only);

  const std::string json_doc = json ? spineless::lint::report_json(result)
                                    : std::string();
  if (json && json_path.empty()) {
    std::cout << json_doc;
  } else {
    std::cout << spineless::lint::report_text(result);
    if (json) {
      std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
      out << json_doc;
      if (!out) {
        std::cerr << "spineless_lint: cannot write " << json_path << "\n";
        return 2;
      }
    }
  }
  return result.findings.empty() ? 0 : 1;
}
