// spineless_lint — determinism & snapshot-safety static analysis over the
// repo's C++ sources. See tools/lint/lint.h for the rule set and
// doc/architecture.md "Static checks" for how each rule maps to a runtime
// invariant.
//
//   spineless_lint --root=/path/to/repo            # text report, exit 1 on findings
//   spineless_lint --root=. --json=lint.json       # machine-readable findings
//   spineless_lint --root=. src/sim/tcp.cc         # lint specific files
//   spineless_lint --root=. --index-dump=idx.json  # dump the symbol index
//   spineless_lint --root=. --baseline=b.txt       # accept-then-ratchet
//
// Exit codes (stable, asserted by scripts/lint_cli_smoke.sh):
//   0  clean (no findings outside the baseline)
//   1  findings
//   2  config or I/O error (unreadable config/baseline, unwritable output)
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "index.h"
#include "lint.h"

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

// Accepts both --flag=value and --flag value.
bool flag_value(const std::vector<std::string>& args, std::size_t* i,
                const std::string& name, std::string* out) {
  const std::string& a = args[*i];
  if (a == name) {
    if (*i + 1 >= args.size()) return false;
    *out = args[++*i];
    return true;
  }
  if (a.compare(0, name.size() + 1, name + "=") == 0) {
    *out = a.substr(name.size() + 1);
    return true;
  }
  return false;
}

int usage() {
  std::cerr
      << "usage: spineless_lint [--root=DIR] [--config=FILE]\n"
         "                      [--json[=FILE]] [--index-dump=FILE]\n"
         "                      [--baseline=FILE] [--write-baseline=FILE]\n"
         "                      [files...]\n"
         "  --root            repository root (default: .)\n"
         "  --config          rule config (default: <root>/tools/lint/lint.toml)\n"
         "  --json            emit findings as JSON (to FILE, or stdout)\n"
         "  --index-dump      write the cross-TU symbol index as\n"
         "                    deterministic JSON (same bytes for same tree)\n"
         "  --baseline        accepted findings; matches don't fail the run\n"
         "                    (ratchet: shrink the file to tighten)\n"
         "  --write-baseline  write the current findings as a new baseline\n"
         "                    and exit 0 (accept step)\n"
         "  files             repo-relative files to lint instead of the\n"
         "                    configured scan directories\n"
         "exit codes: 0 clean, 1 findings, 2 config/IO error\n";
  return 2;
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string config_path;
  bool json = false;
  std::string json_path;
  std::string index_dump_path;
  std::string baseline_path;
  std::string write_baseline_path;
  std::vector<std::string> only;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (flag_value(args, &i, "--root", &root)) continue;
    if (flag_value(args, &i, "--config", &config_path)) continue;
    if (flag_value(args, &i, "--index-dump", &index_dump_path)) continue;
    if (flag_value(args, &i, "--baseline", &baseline_path)) continue;
    if (flag_value(args, &i, "--write-baseline", &write_baseline_path))
      continue;
    if (a == "--json") {
      json = true;
      continue;
    }
    if (a.compare(0, 7, "--json=") == 0) {
      json = true;
      json_path = a.substr(7);
      continue;
    }
    if (a == "--help" || a == "-h") return usage();
    if (!a.empty() && a[0] == '-') {
      std::cerr << "spineless_lint: unknown flag " << a << "\n";
      return usage();
    }
    only.push_back(a);
  }
  if (config_path.empty()) config_path = root + "/tools/lint/lint.toml";

  std::string config_text;
  if (!read_file(config_path, &config_text)) {
    std::cerr << "spineless_lint: cannot read config " << config_path << "\n";
    return 2;
  }
  std::string error;
  const auto cfg = spineless::lint::parse_config(config_text, &error);
  if (!cfg.has_value()) {
    std::cerr << "spineless_lint: " << error << "\n";
    return 2;
  }

  spineless::lint::LintResult result =
      spineless::lint::run_lint(root, *cfg, only);

  if (!index_dump_path.empty() &&
      !write_file(index_dump_path,
                  spineless::lint::dump_index_json(*result.index))) {
    std::cerr << "spineless_lint: cannot write " << index_dump_path << "\n";
    return 2;
  }

  if (!write_baseline_path.empty()) {
    if (!write_file(write_baseline_path,
                    spineless::lint::write_baseline(result))) {
      std::cerr << "spineless_lint: cannot write " << write_baseline_path
                << "\n";
      return 2;
    }
    std::cout << "spineless_lint: wrote " << result.findings.size()
              << " finding(s) to " << write_baseline_path << "\n";
    return 0;
  }

  if (!baseline_path.empty()) {
    std::string baseline_text;
    if (!read_file(baseline_path, &baseline_text)) {
      std::cerr << "spineless_lint: cannot read baseline " << baseline_path
                << "\n";
      return 2;
    }
    std::vector<std::string> keys;
    if (!spineless::lint::parse_baseline(baseline_text, &keys, &error)) {
      std::cerr << "spineless_lint: " << baseline_path << ": " << error
                << "\n";
      return 2;
    }
    spineless::lint::apply_baseline(keys, &result);
  }

  const std::string json_doc = json ? spineless::lint::report_json(result)
                                    : std::string();
  if (json && json_path.empty()) {
    std::cout << json_doc;
  } else {
    std::cout << spineless::lint::report_text(result);
    if (json) {
      std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
      out << json_doc;
      if (!out) {
        std::cerr << "spineless_lint: cannot write " << json_path << "\n";
        return 2;
      }
    }
  }
  return result.findings.empty() ? 0 : 1;
}
