// Phase 2 of the two-phase analyzer: rules over the cross-TU symbol index.
//
//   taint-wall-clock   functions in the determinism-critical layers must not
//                      transitively reach a wall-clock read outside the
//                      sanctioned barrier files ([rule.taint-wall-clock]
//                      allow). Subsumes the per-file no-wall-clock scan:
//                      that rule catches the direct site, this one catches
//                      every caller that launders it through a helper.
//   taint-raw-rand     same, for raw randomness outside util/rng.
//   layering           the #include graph must respect the configured DAG
//                      ([layers] ranks); back-edges, unsanctioned sibling
//                      edges, and include cycles are reported with the
//                      full path.
//
// The taint rules turn file-prefix allowlists into call-graph-verified
// edges: an allowlisted file is a *barrier* — functions defined there
// neither seed taint (they are the reviewed home of the hazard) nor
// propagate it upward.
#pragma once

#include <memory>

#include "rules.h"

namespace spineless::lint {

std::unique_ptr<Rule> make_taint_wall_clock_rule();
std::unique_ptr<Rule> make_taint_raw_rand_rule();
std::unique_ptr<Rule> make_layering_rule();

}  // namespace spineless::lint
