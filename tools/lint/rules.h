// The pluggable rule interface and the built-in rule registry.
#pragma once

#include <memory>
#include <vector>

#include "lint.h"

namespace spineless::lint {

// Everything a rule may look at. Rules are pure functions of the view —
// they own no state, so the registry is shared and const.
struct ProjectView {
  const std::string& root;
  const Config& cfg;
  const std::vector<SourceFile>& files;
};

class Rule {
 public:
  virtual ~Rule() = default;
  virtual const char* name() const = 0;
  virtual void check(const ProjectView& p, std::vector<Finding>* out) const = 0;
};

// All built-in rules, in report order. Adding a rule = appending here and
// (optionally) giving it a [rule.<name>] section in lint.toml.
const std::vector<std::unique_ptr<Rule>>& all_rules();

}  // namespace spineless::lint
