// The pluggable rule interface and the built-in rule registry.
#pragma once

#include <memory>
#include <vector>

#include "lint.h"

namespace spineless::lint {

struct Index;  // index.h — the phase-1 cross-TU symbol index

// Everything a rule may look at. Rules are pure functions of the view —
// they own no state, so the registry is shared and const. The per-file
// rules ignore `index`; the graph rules (graph_rules.h) run on it.
struct ProjectView {
  const std::string& root;
  const Config& cfg;
  const std::vector<SourceFile>& files;
  const Index* index = nullptr;
};

class Rule {
 public:
  virtual ~Rule() = default;
  virtual const char* name() const = 0;
  virtual void check(const ProjectView& p, std::vector<Finding>* out) const = 0;
};

// All built-in rules, in report order. Adding a rule = appending here and
// (optionally) giving it a [rule.<name>] section in lint.toml.
const std::vector<std::unique_ptr<Rule>>& all_rules();

// Shared hazard-site detectors: if token `i` of `t` is a wall-clock read
// or a raw-randomness use, returns its display name ("steady_clock",
// "time()", "mt19937"); empty string otherwise. The per-file rules
// (no-wall-clock, no-raw-rand) and the taint seeding (graph_rules.cc)
// must agree on what a hazard *is*, so the predicate lives in one place.
std::string wall_clock_site(const std::vector<Token>& t, std::size_t i);
std::string raw_rand_site(const std::vector<Token>& t, std::size_t i);

}  // namespace spineless::lint
