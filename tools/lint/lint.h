// spineless_lint core: configuration, the per-file token model with NOLINT
// suppressions, the pluggable rule interface, and the lint driver.
//
// Each rule guards a runtime invariant of the reproduction (see
// doc/architecture.md "Static checks"):
//   no-wall-clock        byte-identical reruns: wall time must never feed
//                        simulated state (metadata-only timing is annotated)
//   no-raw-rand          single-seed reproducibility: all randomness flows
//                        through util/rng's seeded xoshiro streams
//   unordered-iteration  event/snapshot determinism: hash-order iteration
//                        in sim/routing/fault can leak into event order
//   pointer-ordering     run-to-run determinism: containers ordered by raw
//                        pointer value depend on the allocator
//   snapshot-coverage    kill-9/--resume equivalence: every field of a
//                        serialized struct must appear in its codec
//   atomic-spin          reactor liveness: busy-wait loops on atomics in
//                        the engine layers must park in a futex-backed
//                        wait or carry a justified annotation
//
// Graph rules (phase 2, over the cross-TU symbol index — graph_rules.cc):
//   taint-wall-clock     no function in the determinism-critical layers
//                        transitively reaches a wall-clock read outside
//                        the sanctioned allowlist
//   taint-raw-rand       same, for raw randomness outside util/rng
//   layering             the include graph respects the configured DAG
//                        ([layers] ranks; back-edges and cycles reported
//                        with the full path)
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "token.h"

namespace spineless::lint {

// One active suppression comment: "NOLINT(spineless-<rule>)" applies to
// findings on its own line, "NOLINTNEXTLINE(spineless-<rule>)" to the line
// below. A justification (non-empty text after the closing parenthesis,
// optionally introduced by ':') is required for the suppression to count.
struct Suppression {
  std::string rule;           // rule name without the "spineless-" prefix
  int target_line = 0;        // line the suppression applies to
  bool has_justification = false;
  bool used = false;          // set by the engine when it suppresses
};

struct SourceFile {
  std::string path;      // repo-relative, '/'-separated
  std::vector<Token> tokens;    // comments excluded
  std::vector<Token> comments;  // in source order
  std::vector<Suppression> suppressions;
};

struct Finding {
  std::string rule;
  std::string path;
  int line = 0;
  std::string message;
};

// Per-rule configuration. A file is checked by a rule iff its path starts
// with one of `paths` (empty = every scanned file) and with none of
// `allow` (the path allowlist; matches are prefix matches, so
// "src/util/resilient." covers both the .h and the .cc).
struct RuleConfig {
  bool enabled = true;
  std::vector<std::string> paths;
  std::vector<std::string> allow;
};

// One snapshot-coverage audit: every field of `strct` (declared in
// `header`) must be mentioned by at least one of the `impl` files, which
// hold its serialization codec — or, since the codec may delegate, by a
// function the impl files transitively call (resolved via the symbol
// index).
struct SnapshotAudit {
  std::string strct;
  std::string header;
  std::vector<std::string> impl;
};

// One rank of the enforced include DAG ([layers] in lint.toml). A file
// belongs to the first layer whose prefix matches its path; an #include
// may only point at a strictly lower rank, at the same prefix, or along
// an explicitly sanctioned same-rank edge (Config::layer_allow).
struct Layer {
  int rank = 0;
  std::string prefix;
};

struct Config {
  std::vector<std::string> scan;  // directories (repo-relative) to lint
  std::vector<std::string> extensions = {".h", ".cc"};
  std::map<std::string, RuleConfig> rules;
  std::vector<SnapshotAudit> audits;
  std::vector<Layer> layers;  // rank-ascending; empty = layering off
  // Sanctioned same-rank edges, as (from prefix, to prefix) pairs.
  std::vector<std::pair<std::string, std::string>> layer_allow;

  const RuleConfig& rule(const std::string& name) const;
  // True when `rule` should examine `path` at all.
  bool applies(const std::string& rule, const std::string& path) const;
  // True when `path` is under the rule's `allow` list. The taint rules
  // use this as the *sanctioned barrier* test: functions defined in an
  // allowlisted file neither seed taint nor propagate it (the file is
  // the reviewed home of the hazard, e.g. util/rng for randomness).
  bool allowlisted(const std::string& rule, const std::string& path) const;
  // Layer lookup for a repo-relative path: rank, or -1 when unlayered.
  // `prefix` (optional) receives the matched layer prefix.
  int layer_rank(const std::string& path, std::string* prefix = nullptr) const;
};

// Parses the lint.toml subset: `key = value` pairs, `[section]` headers,
// string and string-array values, '#' comments. Returns std::nullopt and
// fills *error on malformed input. Recognized shapes:
//   scan = ["src", "bench"]
//   [rule.<name>]            with keys enabled/paths/allow
//   [audit.<label>]          with keys struct/header/impl
std::optional<Config> parse_config(const std::string& text,
                                   std::string* error);

// Tokenizes `text` into a SourceFile (suppressions included) under the
// given repo-relative path. This is the in-memory entry point the fixture
// tests use to lint synthetic snippets.
SourceFile make_source(std::string path, std::string_view text);

// Loads + parses one file from disk. `root` is the filesystem root the
// repo-relative `path` hangs off. Returns nullopt if unreadable.
std::optional<SourceFile> load_file(const std::string& root,
                                    const std::string& path);

struct Index;  // index.h — built by lint_files, exposed for --index-dump

struct LintResult {
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
  std::size_t suppressed = 0;
  std::size_t baselined = 0;  // findings absorbed by --baseline
  std::size_t baseline_stale = 0;  // baseline entries that no longer fire
  std::shared_ptr<const Index> index;
};

// Runs every enabled rule over the scan roots (or, when `only` is
// non-empty, exactly those repo-relative files) and applies suppressions.
// Findings are sorted by (path, line, rule) so output is stable regardless
// of directory enumeration order.
LintResult run_lint(const std::string& root, const Config& cfg,
                    const std::vector<std::string>& only = {});

// The engine half of run_lint, exposed for fixture tests that build their
// own file lists: applies rules + suppressions to already-loaded files.
LintResult lint_files(const std::string& root, const Config& cfg,
                      std::vector<SourceFile> files);

// Baseline support (accept-then-ratchet, CodeChecker-style). A baseline
// file is line-oriented: "spineless-<rule>\t<path>\t<message>", '#'
// comments and blank lines ignored. Findings are matched by
// (rule, path, message) — deliberately not by line, so unrelated edits
// above a baselined finding don't resurrect it. apply_baseline removes
// matched findings from r->findings (counting them in r->baselined) and
// counts stale entries; the ratchet is "no finding outside the baseline",
// and shrinking the file is the only way to tighten it.
std::string write_baseline(const LintResult& r);
bool parse_baseline(const std::string& text,
                    std::vector<std::string>* keys, std::string* error);
void apply_baseline(const std::vector<std::string>& keys, LintResult* r);

// Reporters. Text is "path:line: [spineless-<rule>] message" per finding;
// JSON is a stable machine-readable document for CI consumption
// (schema_version 2: adds baselined counts and the graph rules).
std::string report_text(const LintResult& r);
std::string report_json(const LintResult& r);

// JSON string escaping shared by the reporters and the index dump.
std::string json_quote(const std::string& s);

}  // namespace spineless::lint
