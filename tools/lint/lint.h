// spineless_lint core: configuration, the per-file token model with NOLINT
// suppressions, the pluggable rule interface, and the lint driver.
//
// Each rule guards a runtime invariant of the reproduction (see
// doc/architecture.md "Static checks"):
//   no-wall-clock        byte-identical reruns: wall time must never feed
//                        simulated state (metadata-only timing is annotated)
//   no-raw-rand          single-seed reproducibility: all randomness flows
//                        through util/rng's seeded xoshiro streams
//   unordered-iteration  event/snapshot determinism: hash-order iteration
//                        in sim/routing/fault can leak into event order
//   pointer-ordering     run-to-run determinism: containers ordered by raw
//                        pointer value depend on the allocator
//   snapshot-coverage    kill-9/--resume equivalence: every field of a
//                        serialized struct must appear in its codec
//   atomic-spin          reactor liveness: busy-wait loops on atomics in
//                        the engine layers must park in a futex-backed
//                        wait or carry a justified annotation
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "token.h"

namespace spineless::lint {

// One active suppression comment: "NOLINT(spineless-<rule>)" applies to
// findings on its own line, "NOLINTNEXTLINE(spineless-<rule>)" to the line
// below. A justification (non-empty text after the closing parenthesis,
// optionally introduced by ':') is required for the suppression to count.
struct Suppression {
  std::string rule;           // rule name without the "spineless-" prefix
  int target_line = 0;        // line the suppression applies to
  bool has_justification = false;
  bool used = false;          // set by the engine when it suppresses
};

struct SourceFile {
  std::string path;      // repo-relative, '/'-separated
  std::vector<Token> tokens;    // comments excluded
  std::vector<Token> comments;  // in source order
  std::vector<Suppression> suppressions;
};

struct Finding {
  std::string rule;
  std::string path;
  int line = 0;
  std::string message;
};

// Per-rule configuration. A file is checked by a rule iff its path starts
// with one of `paths` (empty = every scanned file) and with none of
// `allow` (the path allowlist; matches are prefix matches, so
// "src/util/resilient." covers both the .h and the .cc).
struct RuleConfig {
  bool enabled = true;
  std::vector<std::string> paths;
  std::vector<std::string> allow;
};

// One snapshot-coverage audit: every field of `strct` (declared in
// `header`) must be mentioned by at least one of the `impl` files, which
// hold its serialization codec.
struct SnapshotAudit {
  std::string strct;
  std::string header;
  std::vector<std::string> impl;
};

struct Config {
  std::vector<std::string> scan;  // directories (repo-relative) to lint
  std::vector<std::string> extensions = {".h", ".cc"};
  std::map<std::string, RuleConfig> rules;
  std::vector<SnapshotAudit> audits;

  const RuleConfig& rule(const std::string& name) const;
  // True when `rule` should examine `path` at all.
  bool applies(const std::string& rule, const std::string& path) const;
};

// Parses the lint.toml subset: `key = value` pairs, `[section]` headers,
// string and string-array values, '#' comments. Returns std::nullopt and
// fills *error on malformed input. Recognized shapes:
//   scan = ["src", "bench"]
//   [rule.<name>]            with keys enabled/paths/allow
//   [audit.<label>]          with keys struct/header/impl
std::optional<Config> parse_config(const std::string& text,
                                   std::string* error);

// Tokenizes `text` into a SourceFile (suppressions included) under the
// given repo-relative path. This is the in-memory entry point the fixture
// tests use to lint synthetic snippets.
SourceFile make_source(std::string path, std::string_view text);

// Loads + parses one file from disk. `root` is the filesystem root the
// repo-relative `path` hangs off. Returns nullopt if unreadable.
std::optional<SourceFile> load_file(const std::string& root,
                                    const std::string& path);

struct LintResult {
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
  std::size_t suppressed = 0;
};

// Runs every enabled rule over the scan roots (or, when `only` is
// non-empty, exactly those repo-relative files) and applies suppressions.
// Findings are sorted by (path, line, rule) so output is stable regardless
// of directory enumeration order.
LintResult run_lint(const std::string& root, const Config& cfg,
                    const std::vector<std::string>& only = {});

// The engine half of run_lint, exposed for fixture tests that build their
// own file lists: applies rules + suppressions to already-loaded files.
LintResult lint_files(const std::string& root, const Config& cfg,
                      std::vector<SourceFile> files);

// Reporters. Text is "path:line: [spineless-<rule>] message" per finding;
// JSON is a stable machine-readable document for CI consumption.
std::string report_text(const LintResult& r);
std::string report_json(const LintResult& r);

}  // namespace spineless::lint
