#include "index.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace spineless::lint {
namespace {

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}
bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

// Control-flow and expression keywords that look like "name(" but never
// name a function we should index (as a definition or as a call edge).
bool is_call_keyword(const std::string& s) {
  static const std::unordered_set<std::string> kKeywords = {
      "if",       "for",        "while",    "switch",   "catch",
      "return",   "sizeof",     "alignof",  "alignas",  "decltype",
      "noexcept", "static_assert", "defined", "assert", "throw",
      "new",      "delete",     "co_await", "co_return", "co_yield",
  };
  return kKeywords.count(s) != 0;
}

std::size_t skip_angles(const std::vector<Token>& t, std::size_t i) {
  int depth = 0;
  for (; i < t.size(); ++i) {
    if (is_punct(t[i], "<")) ++depth;
    if (is_punct(t[i], ">") && --depth == 0) return i + 1;
    if (is_punct(t[i], ";")) break;  // malformed; bail at statement end
  }
  return i;
}

std::size_t skip_parens(const std::vector<Token>& t, std::size_t i) {
  int depth = 0;
  for (; i < t.size(); ++i) {
    if (is_punct(t[i], "(")) ++depth;
    if (is_punct(t[i], ")") && --depth == 0) return i + 1;
  }
  return i;
}

std::size_t skip_braces(const std::vector<Token>& t, std::size_t i) {
  int depth = 0;
  for (; i < t.size(); ++i) {
    if (is_punct(t[i], "{")) ++depth;
    if (is_punct(t[i], "}") && --depth == 0) return i + 1;
  }
  return i;
}

std::vector<std::string> split_qname(const std::string& q) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= q.size()) {
    const std::size_t sep = q.find("::", pos);
    if (sep == std::string::npos) {
      out.push_back(q.substr(pos));
      break;
    }
    out.push_back(q.substr(pos, sep - pos));
    pos = sep + 2;
  }
  return out;
}

// --------------------------------------------------------------------------
// Definition scanner: one pass over a file's tokens with a namespace/type
// scope stack. Function bodies are skipped wholesale (their token range is
// recorded for the call-extraction pass), so the scanner only ever looks
// at declaration scope.

struct Scope {
  enum Kind { kNamespace, kType, kBlock } kind;
  std::string name;  // "" for anonymous namespaces and plain blocks
};

class DefScanner {
 public:
  DefScanner(const SourceFile& f, std::size_t file_id,
             std::vector<FunctionDef>* out)
      : t_(f.tokens), file_id_(file_id), out_(out) {}

  void run() {
    std::size_t i = 0;
    while (i < t_.size()) {
      const Token& tok = t_[i];
      if (tok.kind == TokKind::kPreproc || tok.kind == TokKind::kString ||
          tok.kind == TokKind::kCharLit || tok.kind == TokKind::kNumber) {
        ++i;
        continue;
      }
      if (is_ident(tok, "template") && i + 1 < t_.size() &&
          is_punct(t_[i + 1], "<")) {
        i = skip_angles(t_, i + 1);
        continue;
      }
      if (is_ident(tok, "namespace")) {
        i = enter_namespace(i);
        continue;
      }
      if (is_ident(tok, "enum")) {
        i = skip_enum(i);
        continue;
      }
      if ((is_ident(tok, "class") || is_ident(tok, "struct") ||
           is_ident(tok, "union"))) {
        i = enter_type(i);
        continue;
      }
      if (is_punct(tok, "(") && i > 0 && t_[i - 1].kind == TokKind::kIdent &&
          at_decl_scope()) {
        const std::size_t next = try_function(i);
        if (next != 0) {
          i = next;
          continue;
        }
      }
      if (is_punct(tok, "{")) {
        stack_.push_back({Scope::kBlock, ""});
        ++i;
        continue;
      }
      if (is_punct(tok, "}")) {
        if (!stack_.empty()) stack_.pop_back();
        ++i;
        continue;
      }
      ++i;
    }
  }

 private:
  bool at_decl_scope() const {
    return stack_.empty() || stack_.back().kind != Scope::kBlock;
  }

  // `namespace a::b { ... }` / `namespace { ... }` / `namespace x = y;`
  std::size_t enter_namespace(std::size_t i) {
    std::size_t j = i + 1;
    std::string name;
    while (j < t_.size() && t_[j].kind == TokKind::kIdent) {
      if (!name.empty()) name += "::";
      name += t_[j].text;
      ++j;
      if (j < t_.size() && is_punct(t_[j], "::")) {
        ++j;
        continue;
      }
      break;
    }
    if (j < t_.size() && is_punct(t_[j], "{")) {
      // One scope per nested-namespace-definition: a single '}' closes it.
      stack_.push_back({Scope::kNamespace, name});
      return j + 1;
    }
    // Alias or using-directive fragment: skip to ';'.
    while (j < t_.size() && !is_punct(t_[j], ";")) ++j;
    return j + 1;
  }

  // enum [class|struct] [name] [: type] { ... } ;  — enumerators are
  // neither fields nor functions, so the body is skipped outright.
  std::size_t skip_enum(std::size_t i) {
    std::size_t j = i + 1;
    while (j < t_.size() && !is_punct(t_[j], "{") && !is_punct(t_[j], ";"))
      ++j;
    if (j < t_.size() && is_punct(t_[j], "{")) return skip_braces(t_, j);
    return j + 1;
  }

  // class/struct/union: pushes a type scope when a body follows; forward
  // declarations and elaborated type uses are skipped.
  std::size_t enter_type(std::size_t i) {
    std::size_t j = i + 1;
    std::string name;
    if (j + 1 < t_.size() && is_ident(t_[j], "alignas") &&
        is_punct(t_[j + 1], "("))
      j = skip_parens(t_, j + 1);
    if (j < t_.size() && t_[j].kind == TokKind::kIdent) {
      name = t_[j].text;
      ++j;
    }
    while (j < t_.size()) {
      if (is_punct(t_[j], "{")) {
        stack_.push_back({Scope::kType, name});
        return j + 1;
      }
      if (is_punct(t_[j], ";") || is_punct(t_[j], "(") ||
          is_punct(t_[j], ")") || is_punct(t_[j], ",") ||
          is_punct(t_[j], "=") || is_punct(t_[j], ">"))
        return j;  // fwd decl, param type, base-list of something else
      if (is_punct(t_[j], "<")) {
        j = skip_angles(t_, j);
        continue;
      }
      ++j;
    }
    return j;
  }

  // `i` points at '(' preceded by an identifier at declaration scope.
  // Returns one past the function body when this is a definition, else 0.
  std::size_t try_function(std::size_t i) {
    // Name chain: ident ("::" ident)* ending at t_[i-1].
    std::vector<const Token*> chain{&t_[i - 1]};
    std::size_t k = i - 1;
    while (k >= 2 && is_punct(t_[k - 1], "::") &&
           t_[k - 2].kind == TokKind::kIdent) {
      chain.insert(chain.begin(), &t_[k - 2]);
      k -= 2;
    }
    if (k > 0 && (is_punct(t_[k - 1], ".") || is_punct(t_[k - 1], "->")))
      return 0;  // member access, not a declarator
    if (is_call_keyword(chain.back()->text)) return 0;

    std::size_t j = skip_parens(t_, i);
    // Declarator suffix: cv/ref/noexcept/override/final, a trailing
    // return type, or a constructor init list — then '{' opens the body.
    while (j < t_.size()) {
      const Token& tok = t_[j];
      if (tok.kind == TokKind::kIdent &&
          (tok.text == "const" || tok.text == "override" ||
           tok.text == "final" || tok.text == "mutable" ||
           tok.text == "try")) {
        ++j;
        continue;
      }
      if (is_ident(tok, "noexcept")) {
        ++j;
        if (j < t_.size() && is_punct(t_[j], "(")) j = skip_parens(t_, j);
        continue;
      }
      if (is_punct(tok, "&")) {
        ++j;
        continue;
      }
      if (is_punct(tok, "->")) {  // trailing return type
        ++j;
        while (j < t_.size() && !is_punct(t_[j], "{") &&
               !is_punct(t_[j], ";") && !is_punct(t_[j], "=")) {
          if (is_punct(t_[j], "<")) {
            j = skip_angles(t_, j);
            continue;
          }
          ++j;
        }
        continue;
      }
      if (is_punct(tok, ":")) {  // constructor initializer list
        ++j;
        while (j < t_.size()) {
          // member name (possibly qualified/templated base class)
          while (j < t_.size() &&
                 (t_[j].kind == TokKind::kIdent || is_punct(t_[j], "::")))
            ++j;
          if (j < t_.size() && is_punct(t_[j], "<")) j = skip_angles(t_, j);
          if (j >= t_.size()) return 0;
          if (is_punct(t_[j], "("))
            j = skip_parens(t_, j);
          else if (is_punct(t_[j], "{"))
            j = skip_braces(t_, j);
          else
            return 0;
          if (j < t_.size() && is_punct(t_[j], ",")) {
            ++j;
            continue;
          }
          break;
        }
        continue;
      }
      if (is_punct(tok, "{")) {
        emit(chain, j);
        return skip_braces(t_, j);
      }
      return 0;  // ';', '=', ',' ... : declaration, not a definition
    }
    return 0;
  }

  void emit(const std::vector<const Token*>& chain, std::size_t body_open) {
    FunctionDef def;
    std::string q;
    for (const Scope& s : stack_) {
      if (s.name.empty()) continue;  // anonymous namespace / block
      q += s.name;
      q += "::";
    }
    for (std::size_t c = 0; c < chain.size(); ++c) {
      if (c != 0) q += "::";
      q += chain[c]->text;
    }
    def.qname = std::move(q);
    def.file = file_id_;
    def.line = chain.front()->line;
    def.tok_begin = body_open + 1;
    def.tok_end = skip_braces(t_, body_open) - 1;
    out_->push_back(std::move(def));
  }

  const std::vector<Token>& t_;
  std::size_t file_id_;
  std::vector<FunctionDef>* out_;
  std::vector<Scope> stack_;
};

// --------------------------------------------------------------------------
// Call extraction + resolution.

struct RawCall {
  std::string text;  // "::"-joined as written
  int line = 0;
  bool member = false;  // x.f(...) / x->f(...): receiver type unknown
};

void extract_calls(const std::vector<Token>& t, const FunctionDef& def,
                   std::vector<RawCall>* out) {
  for (std::size_t j = def.tok_begin; j + 1 < def.tok_end; ++j) {
    if (t[j].kind != TokKind::kIdent || !is_punct(t[j + 1], "(")) continue;
    std::vector<const Token*> chain{&t[j]};
    std::size_t k = j;
    while (k >= def.tok_begin + 2 && is_punct(t[k - 1], "::") &&
           t[k - 2].kind == TokKind::kIdent) {
      chain.insert(chain.begin(), &t[k - 2]);
      k -= 2;
    }
    if (is_call_keyword(chain.back()->text)) continue;
    RawCall call;
    call.member = k > def.tok_begin &&
                  (is_punct(t[k - 1], ".") || is_punct(t[k - 1], "->"));
    for (std::size_t c = 0; c < chain.size(); ++c) {
      if (c != 0) call.text += "::";
      call.text += chain[c]->text;
    }
    call.line = t[j].line;
    out->push_back(std::move(call));
  }
}

bool suffix_match(const std::vector<std::string>& qname,
                  const std::vector<std::string>& call) {
  if (call.size() > qname.size()) return false;
  for (std::size_t i = 0; i < call.size(); ++i)
    if (qname[qname.size() - call.size() + i] != call[i]) return false;
  return true;
}

}  // namespace

const Symbol* Index::find(const std::string& qname) const {
  const auto it = by_qname.find(qname);
  return it == by_qname.end() ? nullptr : &symbols[it->second];
}

std::vector<std::size_t> Index::resolve_suffix(const std::string& suffix) const {
  const std::vector<std::string> want = split_qname(suffix);
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < symbols.size(); ++s)
    if (suffix_match(split_qname(symbols[s].qname), want)) out.push_back(s);
  return out;
}

Index build_index(const Config& cfg, const std::vector<SourceFile>& files) {
  Index idx;
  idx.files.reserve(files.size());
  for (const SourceFile& f : files) {
    idx.files.push_back(f.path);
    std::string prefix;
    idx.file_rank.push_back(cfg.layer_rank(f.path, &prefix));
    idx.file_layer.push_back(prefix);
  }

  // --- definitions ---
  for (std::size_t fi = 0; fi < files.size(); ++fi)
    DefScanner(files[fi], fi, &idx.defs).run();

  // --- symbols (one per distinct qualified name, name-sorted) ---
  std::map<std::string, std::vector<std::size_t>> defs_by_qname;
  for (std::size_t d = 0; d < idx.defs.size(); ++d)
    defs_by_qname[idx.defs[d].qname].push_back(d);
  idx.symbols.reserve(defs_by_qname.size());
  for (auto& [qname, def_ids] : defs_by_qname) {
    idx.by_qname[qname] = idx.symbols.size();
    Symbol sym;
    sym.qname = qname;
    sym.defs = std::move(def_ids);
    idx.symbols.push_back(std::move(sym));
  }

  // Last-segment candidate table for suffix resolution.
  std::unordered_map<std::string, std::vector<std::size_t>> by_last;
  std::vector<std::vector<std::string>> segs(idx.symbols.size());
  for (std::size_t s = 0; s < idx.symbols.size(); ++s) {
    segs[s] = split_qname(idx.symbols[s].qname);
    by_last[segs[s].back()].push_back(s);
  }

  // --- call edges ---
  for (std::size_t s = 0; s < idx.symbols.size(); ++s) {
    Symbol& sym = idx.symbols[s];
    std::set<std::size_t> callees;
    for (const std::size_t d : sym.defs) {
      const FunctionDef& def = idx.defs[d];
      std::vector<RawCall> calls;
      extract_calls(files[def.file].tokens, def, &calls);
      for (const RawCall& call : calls) {
        const std::vector<std::string> want = split_qname(call.text);
        const auto it = by_last.find(want.back());
        std::vector<std::size_t> cands;
        if (it != by_last.end())
          for (const std::size_t c : it->second)
            if (suffix_match(segs[c], want)) cands.push_back(c);
        if (cands.empty()) {
          ++sym.unresolved_calls;
          continue;
        }
        std::size_t target = cands[0];
        if (cands.size() > 1) {
          // Prefer a candidate defined in the calling file (anonymous-
          // namespace helpers, file-local overrides); otherwise the call
          // is ambiguous and — by policy — assumed clean, but counted.
          std::vector<std::size_t> same_file;
          for (const std::size_t c : cands)
            for (const std::size_t cd : idx.symbols[c].defs)
              if (idx.defs[cd].file == def.file) {
                same_file.push_back(c);
                break;
              }
          if (same_file.size() != 1) {
            ++sym.ambiguous_calls;
            continue;
          }
          target = same_file[0];
        }
        if (target == s) continue;  // direct recursion adds no edge
        callees.insert(target);
        idx.edge_site.emplace(std::make_pair(s, target),
                              std::make_pair(def.file, call.line));
      }
    }
    sym.callees.assign(callees.begin(), callees.end());
    idx.call_edges += sym.callees.size();
    idx.unresolved_calls += sym.unresolved_calls;
    idx.ambiguous_calls += sym.ambiguous_calls;
  }

  // --- include graph ---
  std::map<std::string, std::size_t> file_id;
  for (std::size_t fi = 0; fi < idx.files.size(); ++fi)
    file_id.emplace(idx.files[fi], fi);
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const std::string& from = files[fi].path;
    const std::size_t slash = from.rfind('/');
    const std::string dir =
        slash == std::string::npos ? "" : from.substr(0, slash + 1);
    for (const Token& tok : files[fi].tokens) {
      const std::optional<std::string> inc = include_path(tok, nullptr);
      if (!inc.has_value()) continue;
      // Repo-style first ("sim/network.h" hangs off src/), then as
      // written, then relative to the including file's directory.
      for (const std::string& cand :
           {"src/" + *inc, *inc, dir + *inc}) {
        const auto it = file_id.find(cand);
        if (it == file_id.end()) continue;
        idx.includes.push_back({fi, it->second, tok.line});
        break;
      }
    }
  }
  std::sort(idx.includes.begin(), idx.includes.end(),
            [&](const IncludeEdge& a, const IncludeEdge& b) {
              return std::tie(idx.files[a.from], a.line, idx.files[a.to]) <
                     std::tie(idx.files[b.from], b.line, idx.files[b.to]);
            });
  return idx;
}

std::string dump_index_json(const Index& idx) {
  std::string out = "{\n  \"tool\": \"spineless_lint\",\n";
  out += "  \"schema_version\": 2,\n";

  // Files sorted by path for a byte-stable dump regardless of load order.
  std::vector<std::size_t> order(idx.files.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return idx.files[a] < idx.files[b];
  });

  out += "  \"files\": [";
  bool first = true;
  for (const std::size_t fi : order) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"path\": " + json_quote(idx.files[fi]) +
           ", \"rank\": " + std::to_string(idx.file_rank[fi]) +
           ", \"layer\": " + json_quote(idx.file_layer[fi]) +
           ", \"includes\": [";
    bool inner_first = true;
    std::vector<std::string> targets;
    for (const IncludeEdge& e : idx.includes)
      if (e.from == fi) targets.push_back(idx.files[e.to]);
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
    for (const std::string& t : targets) {
      out += inner_first ? "" : ", ";
      inner_first = false;
      out += json_quote(t);
    }
    out += "]}";
  }
  out += idx.files.empty() ? "],\n" : "\n  ],\n";

  out += "  \"symbols\": [";
  first = true;
  for (const Symbol& s : idx.symbols) {
    out += first ? "\n" : ",\n";
    first = false;
    const FunctionDef& d0 = idx.defs[s.defs.front()];
    out += "    {\"name\": " + json_quote(s.qname) +
           ", \"file\": " + json_quote(idx.files[d0.file]) +
           ", \"line\": " + std::to_string(d0.line) +
           ", \"defs\": " + std::to_string(s.defs.size()) + ", \"calls\": [";
    bool inner_first = true;
    for (const std::size_t c : s.callees) {
      out += inner_first ? "" : ", ";
      inner_first = false;
      out += json_quote(idx.symbols[c].qname);
    }
    out += "], \"unresolved\": " + std::to_string(s.unresolved_calls) +
           ", \"ambiguous\": " + std::to_string(s.ambiguous_calls) + "}";
  }
  out += idx.symbols.empty() ? "],\n" : "\n  ],\n";

  out += "  \"stats\": {\"files\": " + std::to_string(idx.files.size()) +
         ", \"symbols\": " + std::to_string(idx.symbols.size()) +
         ", \"call_edges\": " + std::to_string(idx.call_edges) +
         ", \"unresolved_calls\": " + std::to_string(idx.unresolved_calls) +
         ", \"ambiguous_calls\": " + std::to_string(idx.ambiguous_calls) +
         ", \"include_edges\": " + std::to_string(idx.includes.size()) +
         "}\n}\n";
  return out;
}

}  // namespace spineless::lint
