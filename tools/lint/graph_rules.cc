#include "graph_rules.h"

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "index.h"

namespace spineless::lint {
namespace {

// ---------------------------------------------------------------------------
// Taint over the call graph. Seeds are hazard sites (wall-clock reads, raw
// randomness) inside function bodies; taint flows callee -> caller; barrier
// functions (defined in an allowlisted file) neither seed nor propagate.
// Findings fire on *transitively* tainted functions whose definition lies
// under the rule's `paths` — the direct site is the per-file rule's job, so
// the two rules never double-report one line.

struct Seed {
  std::string hazard;  // display name from the shared detector
  std::size_t file = 0;
  int line = 0;
};

using SiteFn = std::string (*)(const std::vector<Token>&, std::size_t);

class TaintRule : public Rule {
 public:
  TaintRule(const char* rule_name, SiteFn detect, std::string kind,
            std::string remedy)
      : name_(rule_name),
        detect_(detect),
        kind_(std::move(kind)),
        remedy_(std::move(remedy)) {}

  const char* name() const override { return name_; }

  void check(const ProjectView& p, std::vector<Finding>* out) const override {
    if (p.index == nullptr || !p.cfg.rule(name_).enabled) return;
    const Index& idx = *p.index;
    const std::size_t n = idx.symbols.size();

    // def id -> symbol id, and the barrier set. A symbol with any
    // definition in an allowlisted file is the reviewed home of the
    // hazard: it neither seeds nor forwards taint.
    std::vector<std::size_t> sym_of_def(idx.defs.size(), 0);
    std::vector<char> barrier(n, 0);
    for (std::size_t s = 0; s < n; ++s)
      for (const std::size_t d : idx.symbols[s].defs) {
        sym_of_def[d] = s;
        if (p.cfg.allowlisted(name_, idx.files[idx.defs[d].file]))
          barrier[s] = 1;
      }

    // Seed scan: first hazard site per symbol, in def order so the
    // reported site is stable.
    std::vector<char> is_seed(n, 0);
    std::vector<Seed> seed(n);
    for (std::size_t d = 0; d < idx.defs.size(); ++d) {
      const std::size_t s = sym_of_def[d];
      if (barrier[s] != 0 || is_seed[s] != 0) continue;
      const FunctionDef& def = idx.defs[d];
      const auto& toks = p.files[def.file].tokens;
      for (std::size_t k = def.tok_begin; k < def.tok_end; ++k) {
        const std::string site = detect_(toks, k);
        if (site.empty()) continue;
        is_seed[s] = 1;
        seed[s] = {site, def.file, toks[k].line};
        break;
      }
    }

    // Reverse adjacency + multi-source BFS from the seeds. next_hop points
    // one call toward the seed, so chains reconstruct without re-search.
    std::vector<std::vector<std::size_t>> callers(n);
    for (std::size_t s = 0; s < n; ++s)
      for (const std::size_t c : idx.symbols[s].callees)
        callers[c].push_back(s);
    constexpr std::size_t kNone = static_cast<std::size_t>(-1);
    std::vector<std::size_t> next_hop(n, kNone), origin(n, kNone);
    std::vector<std::size_t> queue;
    for (std::size_t s = 0; s < n; ++s)
      if (is_seed[s] != 0) {
        origin[s] = s;
        queue.push_back(s);
      }
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const std::size_t cur = queue[head];
      for (const std::size_t caller : callers[cur]) {
        if (origin[caller] != kNone || barrier[caller] != 0) continue;
        next_hop[caller] = cur;
        origin[caller] = origin[cur];
        queue.push_back(caller);
      }
    }

    for (std::size_t s = 0; s < n; ++s) {
      if (origin[s] == kNone || is_seed[s] != 0) continue;
      const FunctionDef* site = nullptr;
      for (const std::size_t d : idx.symbols[s].defs)
        if (p.cfg.applies(name_, idx.files[idx.defs[d].file])) {
          site = &idx.defs[d];
          break;
        }
      if (site == nullptr) continue;
      const std::size_t root = origin[s];
      out->push_back({name_, idx.files[site->file], site->line,
                      "'" + idx.symbols[s].qname + "' transitively reaches " +
                          kind_ + " '" + seed[root].hazard + "' seeded in '" +
                          idx.symbols[root].qname + "' (" +
                          idx.files[seed[root].file] + ":" +
                          std::to_string(seed[root].line) + ") via " +
                          chain(idx, s, next_hop) + " — " + remedy_});
    }
  }

 private:
  static std::string chain(const Index& idx, std::size_t s,
                           const std::vector<std::size_t>& next_hop) {
    constexpr std::size_t kNone = static_cast<std::size_t>(-1);
    std::string out;
    std::size_t hops = 0;
    for (std::size_t cur = s; cur != kNone; cur = next_hop[cur]) {
      if (!out.empty()) out += " -> ";
      if (++hops > 8) {
        out += "...";
        break;
      }
      out += idx.symbols[cur].qname;
    }
    return out;
  }

  const char* name_;
  SiteFn detect_;
  std::string kind_;
  std::string remedy_;
};

// ---------------------------------------------------------------------------
// layering: every #include edge must stay inside its layer or point at a
// strictly lower rank; same-rank cross-prefix edges need a sanctioned
// entry in [layers] allow. Include cycles are reported once each, with the
// full path, regardless of layer assignment.
class LayeringRule : public Rule {
 public:
  const char* name() const override { return "layering"; }

  void check(const ProjectView& p, std::vector<Finding>* out) const override {
    if (p.index == nullptr || !p.cfg.rule(name()).enabled) return;
    const Index& idx = *p.index;
    if (!p.cfg.layers.empty()) check_edges(p, idx, out);
    check_cycles(p, idx, out);
  }

 private:
  void check_edges(const ProjectView& p, const Index& idx,
                   std::vector<Finding>* out) const {
    for (const IncludeEdge& e : idx.includes) {
      const int from_rank = idx.file_rank[e.from];
      const int to_rank = idx.file_rank[e.to];
      if (from_rank < 0 || to_rank < 0) continue;  // unlayered file
      const std::string& from_layer = idx.file_layer[e.from];
      const std::string& to_layer = idx.file_layer[e.to];
      if (from_layer == to_layer) continue;    // intra-layer
      if (to_rank < from_rank) continue;       // points down the DAG
      bool sanctioned = false;
      for (const auto& edge : p.cfg.layer_allow)
        if (edge.first == from_layer && edge.second == to_layer)
          sanctioned = true;
      if (sanctioned) continue;
      if (!p.cfg.applies(name(), idx.files[e.from])) continue;
      const char* shape =
          to_rank > from_rank ? "a back-edge (rank " : "a sibling edge (rank ";
      out->push_back(
          {name(), idx.files[e.from], e.line,
           "#include \"" + idx.files[e.to] + "\" (layer '" + to_layer +
               "') from layer '" + from_layer + "' is " + shape +
               std::to_string(from_rank) + " -> rank " +
               std::to_string(to_rank) +
               ") — includes must point at strictly lower ranks; move the "
               "dependency down, or sanction an intentional edge in "
               "[layers] allow"});
    }
  }

  void check_cycles(const ProjectView& p, const Index& idx,
                    std::vector<Finding>* out) const {
    const std::size_t n = idx.files.size();
    std::vector<std::vector<std::pair<std::size_t, int>>> adj(n);
    for (const IncludeEdge& e : idx.includes)
      adj[e.from].push_back({e.to, e.line});

    // Iterative DFS; a back-edge into the active stack is a cycle. One
    // finding per canonical cycle (rotated so the smallest file id leads),
    // so A->B->A and B->A->B report once.
    std::vector<int> color(n, 0);  // 0 white, 1 on stack, 2 done
    std::set<std::vector<std::size_t>> reported;
    std::vector<std::size_t> path;
    struct Frame {
      std::size_t node;
      std::size_t next = 0;
    };
    for (std::size_t start = 0; start < n; ++start) {
      if (color[start] != 0) continue;
      std::vector<Frame> stack{{start}};
      color[start] = 1;
      path.assign(1, start);
      while (!stack.empty()) {
        Frame& f = stack.back();
        if (f.next >= adj[f.node].size()) {
          color[f.node] = 2;
          stack.pop_back();
          path.pop_back();
          continue;
        }
        const auto [to, line] = adj[f.node][f.next++];
        if (color[to] == 1) {
          report_cycle(p, idx, path, to, &reported, out);
        } else if (color[to] == 0) {
          color[to] = 1;
          path.push_back(to);
          stack.push_back({to});
        }
      }
    }
  }

  void report_cycle(const ProjectView& p, const Index& idx,
                    const std::vector<std::size_t>& path, std::size_t to,
                    std::set<std::vector<std::size_t>>* reported,
                    std::vector<Finding>* out) const {
    const auto it = std::find(path.begin(), path.end(), to);
    std::vector<std::size_t> cycle(it, path.end());
    const auto min_it = std::min_element(cycle.begin(), cycle.end());
    std::rotate(cycle.begin(), min_it, cycle.end());
    if (!reported->insert(cycle).second) return;

    std::string shown;
    for (const std::size_t f : cycle) shown += idx.files[f] + " -> ";
    shown += idx.files[cycle.front()];
    // Anchor the finding on the canonical head's include of the next hop.
    const std::size_t head = cycle.front();
    const std::size_t next = cycle.size() > 1 ? cycle[1] : cycle.front();
    int line = 1;
    for (const IncludeEdge& e : idx.includes)
      if (e.from == head && e.to == next) {
        line = e.line;
        break;
      }
    if (!p.cfg.applies(name(), idx.files[head])) return;
    out->push_back({name(), idx.files[head], line,
                    "include cycle: " + shown +
                        " — break the cycle (forward-declare, or split the "
                        "shared piece into a lower-layer header)"});
  }
};

}  // namespace

std::unique_ptr<Rule> make_taint_wall_clock_rule() {
  return std::make_unique<TaintRule>(
      "taint-wall-clock", &wall_clock_site, "wall-clock source",
      "determinism-critical layers must be a function of (seed, sim time) "
      "only; route metadata timing through the sanctioned barrier "
      "(util/walltime) or extend [rule.taint-wall-clock] allow");
}

std::unique_ptr<Rule> make_taint_raw_rand_rule() {
  return std::make_unique<TaintRule>(
      "taint-raw-rand", &raw_rand_site, "raw randomness",
      "draw through util/rng's seeded xoshiro streams so runs replay from "
      "one seed, or extend [rule.taint-raw-rand] allow");
}

std::unique_ptr<Rule> make_layering_rule() {
  return std::make_unique<LayeringRule>();
}

}  // namespace spineless::lint
