#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "index.h"
#include "rules.h"

namespace spineless::lint {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

// Parses a TOML string scalar or array of strings. Values never contain
// escapes in our configs, so a quote scan suffices.
bool parse_strings(const std::string& value, std::vector<std::string>* out,
                   std::string* error) {
  const std::string v = trim(value);
  if (v.empty()) {
    *error = "empty value";
    return false;
  }
  if (v.front() == '"') {
    if (v.size() < 2 || v.back() != '"') {
      *error = "unterminated string: " + v;
      return false;
    }
    out->push_back(v.substr(1, v.size() - 2));
    return true;
  }
  if (v.front() == '[') {
    if (v.back() != ']') {
      *error = "unterminated array (arrays must be single-line): " + v;
      return false;
    }
    std::string inner = v.substr(1, v.size() - 2);
    std::size_t pos = 0;
    while (true) {
      const std::size_t open = inner.find('"', pos);
      if (open == std::string::npos) break;
      const std::size_t close = inner.find('"', open + 1);
      if (close == std::string::npos) {
        *error = "unterminated string in array: " + v;
        return false;
      }
      out->push_back(inner.substr(open + 1, close - open - 1));
      pos = close + 1;
    }
    return true;
  }
  *error = "expected a string or array of strings, got: " + v;
  return false;
}

// Extracts NOLINT / NOLINTNEXTLINE suppressions from a comment token.
void parse_suppressions(const Token& comment,
                        std::vector<Suppression>* out) {
  const std::string& text = comment.text;
  std::size_t pos = 0;
  while ((pos = text.find("NOLINT", pos)) != std::string::npos) {
    const bool nextline =
        text.compare(pos, 14, "NOLINTNEXTLINE") == 0;
    std::size_t open = pos + (nextline ? 14 : 6);
    pos = open;  // resume scanning after the marker either way
    if (open >= text.size() || text[open] != '(') continue;
    const std::size_t close = text.find(')', open);
    if (close == std::string::npos) continue;
    std::string just = trim(text.substr(close + 1));
    if (!just.empty() && just.front() == ':') just = trim(just.substr(1));
    // Comma-separated rule list; only spineless-* entries are ours
    // (clang-tidy style NOLINTs pass through untouched).
    std::stringstream rules(text.substr(open + 1, close - open - 1));
    std::string id;
    while (std::getline(rules, id, ',')) {
      id = trim(id);
      if (!starts_with(id, "spineless-")) continue;
      Suppression s;
      s.rule = id.substr(std::string("spineless-").size());
      s.target_line = comment.line + (nextline ? 1 : 0);
      s.has_justification = !just.empty();
      out->push_back(std::move(s));
    }
  }
}

}  // namespace

const RuleConfig& Config::rule(const std::string& name) const {
  static const RuleConfig kDefault;
  const auto it = rules.find(name);
  return it == rules.end() ? kDefault : it->second;
}

bool Config::allowlisted(const std::string& rule_name,
                         const std::string& path) const {
  for (const std::string& a : rule(rule_name).allow)
    if (starts_with(path, a)) return true;
  return false;
}

int Config::layer_rank(const std::string& path, std::string* prefix) const {
  for (const Layer& l : layers) {
    if (!starts_with(path, l.prefix)) continue;
    if (prefix != nullptr) *prefix = l.prefix;
    return l.rank;
  }
  if (prefix != nullptr) prefix->clear();
  return -1;
}

bool Config::applies(const std::string& rule_name,
                     const std::string& path) const {
  const RuleConfig& rc = rule(rule_name);
  if (!rc.enabled) return false;
  if (!rc.paths.empty()) {
    bool in_scope = false;
    for (const std::string& p : rc.paths)
      if (starts_with(path, p)) in_scope = true;
    if (!in_scope) return false;
  }
  for (const std::string& a : rc.allow)
    if (starts_with(path, a)) return false;
  return true;
}

std::optional<Config> parse_config(const std::string& text,
                                   std::string* error) {
  Config cfg;
  cfg.scan.clear();
  std::string section;          // "" | "rule" | "audit" | "layers"
  RuleConfig* rule = nullptr;   // open [rule.<name>] section
  SnapshotAudit* audit = nullptr;  // open [audit.<label>] section
  bool in_layers = false;          // open [layers] section
  std::size_t layer_ranks_seen = 0;

  std::stringstream in(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    // Strip comments (configs hold no '#' inside strings).
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw = raw.substr(0, hash);
    const std::string line = trim(raw);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') {
        *error = "lint.toml:" + std::to_string(lineno) +
                 ": malformed section header: " + line;
        return std::nullopt;
      }
      const std::string name = trim(line.substr(1, line.size() - 2));
      rule = nullptr;
      audit = nullptr;
      in_layers = false;
      if (starts_with(name, "rule.")) {
        section = "rule";
        rule = &cfg.rules[name.substr(5)];
      } else if (starts_with(name, "audit.")) {
        section = "audit";
        cfg.audits.emplace_back();
        audit = &cfg.audits.back();
      } else if (name == "layers") {
        section = "layers";
        in_layers = true;
      } else {
        *error = "lint.toml:" + std::to_string(lineno) +
                 ": unknown section [" + name + "]";
        return std::nullopt;
      }
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      *error = "lint.toml:" + std::to_string(lineno) +
               ": expected key = value, got: " + line;
      return std::nullopt;
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    std::string verr;
    std::vector<std::string> strings;

    const auto get_strings = [&]() -> bool {
      if (parse_strings(value, &strings, &verr)) return true;
      *error = "lint.toml:" + std::to_string(lineno) + ": " + verr;
      return false;
    };

    if (section.empty()) {
      if (key == "scan") {
        if (!get_strings()) return std::nullopt;
        cfg.scan = strings;
      } else if (key == "extensions") {
        if (!get_strings()) return std::nullopt;
        cfg.extensions = strings;
      } else {
        *error = "lint.toml:" + std::to_string(lineno) +
                 ": unknown top-level key: " + key;
        return std::nullopt;
      }
    } else if (rule != nullptr) {
      if (key == "enabled") {
        rule->enabled = value == "true";
      } else if (key == "paths" || key == "allow") {
        if (!get_strings()) return std::nullopt;
        (key == "paths" ? rule->paths : rule->allow) = strings;
      } else {
        *error = "lint.toml:" + std::to_string(lineno) +
                 ": unknown rule key: " + key;
        return std::nullopt;
      }
    } else if (in_layers) {
      if (!get_strings()) return std::nullopt;
      if (starts_with(key, "rank")) {
        // rankN = ["prefix", ...] — N must be the layer's rank so the
        // config reads as the DAG it enforces, in order.
        int rank = -1;
        try {
          rank = std::stoi(key.substr(4));
        } catch (...) {
        }
        if (rank != static_cast<int>(layer_ranks_seen)) {
          *error = "lint.toml:" + std::to_string(lineno) +
                   ": layer ranks must be rank0, rank1, ... in order (got " +
                   key + ")";
          return std::nullopt;
        }
        ++layer_ranks_seen;
        for (const std::string& prefix : strings)
          cfg.layers.push_back({rank, prefix});
      } else if (key == "allow") {
        // "from-prefix -> to-prefix": a sanctioned same-rank edge.
        for (const std::string& edge : strings) {
          const std::size_t arrow = edge.find("->");
          if (arrow == std::string::npos) {
            *error = "lint.toml:" + std::to_string(lineno) +
                     ": layer allow entries are \"from -> to\", got: " + edge;
            return std::nullopt;
          }
          cfg.layer_allow.emplace_back(trim(edge.substr(0, arrow)),
                                       trim(edge.substr(arrow + 2)));
        }
      } else {
        *error = "lint.toml:" + std::to_string(lineno) +
                 ": unknown layers key: " + key;
        return std::nullopt;
      }
    } else if (audit != nullptr) {
      if (!get_strings()) return std::nullopt;
      if (key == "struct") {
        audit->strct = strings.at(0);
      } else if (key == "header") {
        audit->header = strings.at(0);
      } else if (key == "impl") {
        audit->impl = strings;
      } else {
        *error = "lint.toml:" + std::to_string(lineno) +
                 ": unknown audit key: " + key;
        return std::nullopt;
      }
    }
  }
  for (const SnapshotAudit& a : cfg.audits) {
    if (a.strct.empty() || a.header.empty() || a.impl.empty()) {
      *error = "lint.toml: audit sections need struct, header, and impl";
      return std::nullopt;
    }
  }
  return cfg;
}

SourceFile make_source(std::string path, std::string_view text) {
  SourceFile f;
  f.path = std::move(path);
  f.tokens = tokenize(text, &f.comments);
  for (const Token& c : f.comments) parse_suppressions(c, &f.suppressions);
  return f;
}

std::optional<SourceFile> load_file(const std::string& root,
                                    const std::string& path) {
  std::ifstream in(root + "/" + path, std::ios::binary);
  if (!in) return std::nullopt;
  std::stringstream ss;
  ss << in.rdbuf();
  return make_source(path, ss.str());
}

LintResult lint_files(const std::string& root, const Config& cfg,
                      std::vector<SourceFile> files) {
  // Phase 1: the cross-TU symbol index (definitions, call edges, the
  // include graph). Phase 2: every rule — the per-file rules ignore the
  // index; the graph rules run on it.
  auto index = std::make_shared<Index>(build_index(cfg, files));
  ProjectView view{root, cfg, files, index.get()};
  std::vector<Finding> raw;
  for (const auto& rule : all_rules()) rule->check(view, &raw);

  LintResult result;
  result.index = std::move(index);
  result.files_scanned = files.size();
  for (Finding& f : raw) {
    bool suppressed = false;
    bool bare_nolint = false;
    for (const SourceFile& sf : files) {
      if (sf.path != f.path) continue;
      for (const Suppression& s : sf.suppressions) {
        if (s.rule != f.rule || s.target_line != f.line) continue;
        if (s.has_justification) {
          suppressed = true;
        } else {
          bare_nolint = true;
        }
      }
    }
    if (suppressed) {
      ++result.suppressed;
      continue;
    }
    if (bare_nolint)
      f.message +=
          " [NOLINT ignored: a justification is required after the "
          "closing parenthesis]";
    result.findings.push_back(std::move(f));
  }
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.path, a.line, a.rule) <
                     std::tie(b.path, b.line, b.rule);
            });
  return result;
}

LintResult run_lint(const std::string& root, const Config& cfg,
                    const std::vector<std::string>& only) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths = only;
  if (paths.empty()) {
    for (const std::string& dir : cfg.scan) {
      const fs::path base = fs::path(root) / dir;
      if (!fs::exists(base)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (std::find(cfg.extensions.begin(), cfg.extensions.end(), ext) ==
            cfg.extensions.end())
          continue;
        paths.push_back(
            fs::relative(entry.path(), root).generic_string());
      }
    }
    // Directory enumeration order is filesystem-dependent; the linter's
    // own output must be deterministic.
    std::sort(paths.begin(), paths.end());
  }
  // Audit inputs (headers + codec files) must be visible to the
  // snapshot-coverage rule even when they fall outside the scan roots.
  for (const SnapshotAudit& a : cfg.audits) {
    for (const std::string& p : a.impl)
      if (std::find(paths.begin(), paths.end(), p) == paths.end())
        paths.push_back(p);
    if (std::find(paths.begin(), paths.end(), a.header) == paths.end())
      paths.push_back(a.header);
  }

  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const std::string& p : paths) {
    std::optional<SourceFile> f = load_file(root, p);
    if (f.has_value()) files.push_back(std::move(*f));
  }
  return lint_files(root, cfg, std::move(files));
}

// Baseline key: line numbers deliberately excluded (see lint.h).
static std::string baseline_key(const Finding& f) {
  return "spineless-" + f.rule + "\t" + f.path + "\t" + f.message;
}

std::string write_baseline(const LintResult& r) {
  std::string out =
      "# spineless_lint baseline (accept-then-ratchet). One finding per\n"
      "# line: spineless-<rule>\\t<path>\\t<message>. Delete lines to\n"
      "# ratchet; the gate fails on any finding not listed here.\n";
  for (const Finding& f : r.findings) {
    std::string key = baseline_key(f);
    // Findings never contain newlines today; keep the format line-safe
    // anyway so a hand-edited file cannot smuggle extra entries.
    std::replace(key.begin(), key.end(), '\n', ' ');
    out += key;
    out += '\n';
  }
  return out;
}

bool parse_baseline(const std::string& text,
                    std::vector<std::string>* keys, std::string* error) {
  std::stringstream in(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::string line = trim(raw);
    if (line.empty() || line.front() == '#') continue;
    if (std::count(line.begin(), line.end(), '\t') != 2 ||
        !starts_with(line, "spineless-")) {
      *error = "baseline:" + std::to_string(lineno) +
               ": expected spineless-<rule>\\t<path>\\t<message>, got: " +
               line;
      return false;
    }
    keys->push_back(line);
  }
  return true;
}

void apply_baseline(const std::vector<std::string>& keys, LintResult* r) {
  std::map<std::string, std::size_t> budget;  // multiset: key -> count
  for (const std::string& k : keys) ++budget[k];
  std::vector<Finding> kept;
  for (Finding& f : r->findings) {
    const auto it = budget.find(baseline_key(f));
    if (it != budget.end() && it->second > 0) {
      --it->second;
      ++r->baselined;
    } else {
      kept.push_back(std::move(f));
    }
  }
  r->findings = std::move(kept);
  for (const auto& kv : budget) r->baseline_stale += kv.second;
}

std::string report_text(const LintResult& r) {
  std::ostringstream os;
  for (const Finding& f : r.findings)
    os << f.path << ":" << f.line << ": [spineless-" << f.rule << "] "
       << f.message << "\n";
  os << r.files_scanned << " file(s) scanned, " << r.findings.size()
     << " finding(s), " << r.suppressed << " suppressed";
  if (r.baselined != 0 || r.baseline_stale != 0) {
    os << ", " << r.baselined << " baselined";
    if (r.baseline_stale != 0)
      os << " (" << r.baseline_stale
         << " stale baseline entr" << (r.baseline_stale == 1 ? "y" : "ies")
         << " — ratchet by regenerating with --write-baseline)";
  }
  os << "\n";
  return os.str();
}

namespace {
void append_json_string(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}
}  // namespace

std::string json_quote(const std::string& s) {
  std::string out;
  append_json_string(&out, s);
  return out;
}

std::string report_json(const LintResult& r) {
  std::string out = "{\n  \"tool\": \"spineless_lint\",\n";
  out += "  \"schema_version\": 2,\n";
  out += "  \"files_scanned\": " + std::to_string(r.files_scanned) + ",\n";
  out += "  \"suppressed\": " + std::to_string(r.suppressed) + ",\n";
  out += "  \"baselined\": " + std::to_string(r.baselined) + ",\n";
  out += "  \"baseline_stale\": " + std::to_string(r.baseline_stale) + ",\n";
  out += "  \"finding_count\": " + std::to_string(r.findings.size()) + ",\n";
  out += "  \"findings\": [";
  for (std::size_t i = 0; i < r.findings.size(); ++i) {
    const Finding& f = r.findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"rule\": ";
    append_json_string(&out, "spineless-" + f.rule);
    out += ", \"path\": ";
    append_json_string(&out, f.path);
    out += ", \"line\": " + std::to_string(f.line) + ", \"message\": ";
    append_json_string(&out, f.message);
    out += "}";
  }
  out += r.findings.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace spineless::lint
