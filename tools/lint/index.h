// Phase 1 of the two-phase analyzer: the cross-TU symbol index.
//
// The per-file rules (rules.cc) see one token stream at a time; the graph
// rules (graph_rules.cc) need whole-program structure. build_index derives
// that structure from the same tokenizer output, with no clang dependency:
//
//   * function/method definitions, scope-qualified ("ns::Class::name")
//     by tracking namespace/class scopes and heuristic "name(...){" /
//     "Class::name(...) : init {" definition shapes;
//   * call edges, resolved by qualified-name suffix match against the
//     definition set ("util::monotonic_seconds" resolves to
//     "spineless::util::monotonic_seconds"). The resolution policy is
//     explicit: an unqualified call with several candidates, or a call
//     with no candidate at all (std::, libc, macros), is *assumed clean
//     but counted* — the counts surface in the index dump so silent
//     blindness is visible;
//   * the #include graph, each directive resolved against the scanned
//     file set (repo-style "sim/network.h", then relative to the
//     including file's directory).
//
// Everything is deterministic: files arrive sorted, symbols are keyed and
// emitted in qualified-name order, and dump_index_json is byte-stable for
// a given tree — `--index-dump=FILE` diffs cleanly in CI.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "lint.h"

namespace spineless::lint {

// One function/method definition site. tok_begin/tok_end delimit the body
// (the token range between the outermost braces) in files[file].tokens.
struct FunctionDef {
  std::string qname;       // "::"-joined scopes + name
  std::size_t file = 0;    // index into the Index's file table
  int line = 0;            // line of the function name
  std::size_t tok_begin = 0;
  std::size_t tok_end = 0;
};

// One symbol = one qualified name. Overloads and the decl/def split
// collapse into a single node (the graph rules reason about names, not
// signatures), so a symbol can own several definition sites.
struct Symbol {
  std::string qname;
  std::vector<std::size_t> defs;     // FunctionDef ids, scan order
  std::vector<std::size_t> callees;  // Symbol ids, sorted + deduped
  std::size_t unresolved_calls = 0;  // no candidate definition
  std::size_t ambiguous_calls = 0;   // several candidates, none preferred
};

struct IncludeEdge {
  std::size_t from = 0;  // file ids
  std::size_t to = 0;
  int line = 0;  // line of the #include in `from`
};

struct Index {
  // File table: path + layer assignment (rank into Config::layers, or -1
  // when the path is under no configured layer). Paths are kept in input
  // order (run_lint provides them sorted); the dump re-sorts for output.
  std::vector<std::string> files;
  std::vector<int> file_rank;
  std::vector<std::string> file_layer;   // matched layer prefix ("" = none)

  std::vector<FunctionDef> defs;
  std::vector<Symbol> symbols;                     // sorted by qname
  std::map<std::string, std::size_t> by_qname;
  std::vector<IncludeEdge> includes;               // sorted (from, to, line)

  std::size_t call_edges = 0;       // resolved, after dedup
  std::size_t unresolved_calls = 0;
  std::size_t ambiguous_calls = 0;

  // Representative call site per resolved edge, for taint-chain
  // diagnostics: (caller symbol, callee symbol) -> line in the caller's
  // file where the first call appears.
  std::map<std::pair<std::size_t, std::size_t>, std::pair<std::size_t, int>>
      edge_site;  // value: (file id, line)

  const Symbol* find(const std::string& qname) const;
  // All symbol ids whose qualified name ends with `suffix` (suffix given
  // as "::"-separated segments, e.g. "Network::rebuild_tables").
  std::vector<std::size_t> resolve_suffix(const std::string& suffix) const;
};

// Builds the index over already-loaded files. `files` must be the same
// vector later handed to the rules (FunctionDef::file indexes into it).
Index build_index(const Config& cfg, const std::vector<SourceFile>& files);

// Deterministic JSON dump of symbols, call edges, include edges, and
// layer assignments (the `--index-dump=FILE` document).
std::string dump_index_json(const Index& idx);

}  // namespace spineless::lint
