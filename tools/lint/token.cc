#include "token.h"

#include <cctype>

namespace spineless::lint {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

class Lexer {
 public:
  Lexer(std::string_view src, std::vector<Token>* comments)
      : src_(src), comments_(comments) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        ++pos_;
        continue;
      }
      if (c == '#' && at_line_start_) {
        out.push_back(preproc());
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && pos_ + 1 < src_.size()) {
        if (src_[pos_ + 1] == '/') {
          line_comment();
          continue;
        }
        if (src_[pos_ + 1] == '*') {
          block_comment();
          continue;
        }
      }
      if (is_ident_start(c)) {
        const std::size_t start = pos_;
        const int line = line_;
        while (pos_ < src_.size() && is_ident_char(src_[pos_])) ++pos_;
        std::string text(src_.substr(start, pos_ - start));
        // Raw string literal: R"delim(...)delim" (incl. u8R / LR / uR).
        if (pos_ < src_.size() && src_[pos_] == '"' &&
            (text == "R" || text == "u8R" || text == "uR" || text == "UR" ||
             text == "LR")) {
          out.push_back(raw_string(line));
          continue;
        }
        // Prefixed ordinary literal: u8"...", L'...'.
        if (pos_ < src_.size() && (src_[pos_] == '"' || src_[pos_] == '\'') &&
            (text == "u8" || text == "u" || text == "U" || text == "L")) {
          out.push_back(quoted(src_[pos_] == '"' ? TokKind::kString
                                                 : TokKind::kCharLit));
          continue;
        }
        out.push_back({TokKind::kIdent, std::move(text), line});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        out.push_back(number());
        continue;
      }
      if (c == '"') {
        out.push_back(quoted(TokKind::kString));
        continue;
      }
      if (c == '\'') {
        out.push_back(quoted(TokKind::kCharLit));
        continue;
      }
      out.push_back(punct());
    }
    return out;
  }

 private:
  Token preproc() {
    const std::size_t start = pos_;
    const int line = line_;
    at_line_start_ = false;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size() &&
          src_[pos_ + 1] == '\n') {
        pos_ += 2;
        ++line_;
        continue;
      }
      if (src_[pos_] == '\n') break;  // newline handled by run()
      ++pos_;
    }
    return {TokKind::kPreproc, std::string(src_.substr(start, pos_ - start)),
            line};
  }

  void line_comment() {
    const std::size_t start = pos_ + 2;
    const int line = line_;
    pos_ += 2;
    while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    if (comments_ != nullptr)
      comments_->push_back(
          {TokKind::kComment, std::string(src_.substr(start, pos_ - start)),
           line});
  }

  void block_comment() {
    const std::size_t start = pos_ + 2;
    const int line = line_;
    pos_ += 2;
    std::size_t end = src_.size();
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\n') ++line_;
      if (src_[pos_] == '*' && pos_ + 1 < src_.size() &&
          src_[pos_ + 1] == '/') {
        end = pos_;
        pos_ += 2;
        break;
      }
      ++pos_;
    }
    if (comments_ != nullptr)
      comments_->push_back(
          {TokKind::kComment, std::string(src_.substr(start, end - start)),
           line});
  }

  Token number() {
    const std::size_t start = pos_;
    const int line = line_;
    while (pos_ < src_.size() &&
           (is_ident_char(src_[pos_]) || src_[pos_] == '.' ||
            // C++14 digit separator: 1'000'000 is one literal. Only a
            // separator when a digit (or hex letter) follows — otherwise
            // the quote opens a char literal as usual.
            (src_[pos_] == '\'' && pos_ + 1 < src_.size() &&
             std::isalnum(static_cast<unsigned char>(src_[pos_ + 1])) != 0) ||
            ((src_[pos_] == '+' || src_[pos_] == '-') && pos_ > start &&
             (src_[pos_ - 1] == 'e' || src_[pos_ - 1] == 'E' ||
              src_[pos_ - 1] == 'p' || src_[pos_ - 1] == 'P')))) {
      ++pos_;
    }
    return {TokKind::kNumber, std::string(src_.substr(start, pos_ - start)),
            line};
  }

  Token quoted(TokKind kind) {
    const char quote = src_[pos_];
    const int line = line_;
    const std::size_t start = ++pos_;
    std::size_t end = src_.size();
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        pos_ += 2;
        continue;
      }
      if (src_[pos_] == quote) {
        end = pos_;
        ++pos_;
        break;
      }
      if (src_[pos_] == '\n') {  // unterminated; don't swallow the file
        end = pos_;
        break;
      }
      ++pos_;
    }
    return {kind, std::string(src_.substr(start, end - start)), line};
  }

  Token raw_string(int line) {
    // At entry pos_ is on the opening '"'. R"delim( ... )delim"
    const std::size_t delim_start = ++pos_;
    while (pos_ < src_.size() && src_[pos_] != '(') ++pos_;
    const std::string delim(src_.substr(delim_start, pos_ - delim_start));
    const std::string closer = ")" + delim + "\"";
    if (pos_ < src_.size()) ++pos_;  // consume '('
    const std::size_t body_start = pos_;
    const std::size_t found = src_.find(closer, pos_);
    std::size_t body_end;
    if (found == std::string_view::npos) {
      body_end = src_.size();
      pos_ = src_.size();
    } else {
      body_end = found;
      pos_ = found + closer.size();
    }
    for (std::size_t i = body_start; i < body_end; ++i)
      if (src_[i] == '\n') ++line_;
    return {TokKind::kString,
            std::string(src_.substr(body_start, body_end - body_start)), line};
  }

  Token punct() {
    const int line = line_;
    // Only the two-char sequences the rules care about are fused; "::"
    // and "->" disambiguate qualified names and member access. Everything
    // else (including ">>") stays single-char so template-depth tracking
    // in the rules never sees a fused closer.
    if (pos_ + 1 < src_.size()) {
      const char a = src_[pos_];
      const char b = src_[pos_ + 1];
      if ((a == ':' && b == ':') || (a == '-' && b == '>')) {
        pos_ += 2;
        return {TokKind::kPunct, std::string{a, b}, line};
      }
    }
    const char c = src_[pos_++];
    return {TokKind::kPunct, std::string(1, c), line};
  }

  std::string_view src_;
  std::vector<Token>* comments_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
};

}  // namespace

std::vector<Token> tokenize(std::string_view src,
                            std::vector<Token>* comments) {
  return Lexer(src, comments).run();
}

std::optional<std::string> include_path(const Token& t, bool* angled) {
  if (t.kind != TokKind::kPreproc) return std::nullopt;
  const std::string& s = t.text;
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  };
  if (i >= s.size() || s[i] != '#') return std::nullopt;
  ++i;
  skip_ws();
  static const std::string kInclude = "include";
  if (s.compare(i, kInclude.size(), kInclude) != 0) return std::nullopt;
  i += kInclude.size();
  skip_ws();
  if (i >= s.size()) return std::nullopt;
  const char open = s[i];
  if (open != '"' && open != '<') return std::nullopt;
  const char close = open == '<' ? '>' : '"';
  const std::size_t end = s.find(close, i + 1);
  if (end == std::string::npos) return std::nullopt;
  if (angled != nullptr) *angled = open == '<';
  return s.substr(i + 1, end - i - 1);
}

}  // namespace spineless::lint
