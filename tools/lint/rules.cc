#include "rules.h"

#include <set>
#include <string>
#include <unordered_set>

#include "graph_rules.h"
#include "index.h"

namespace spineless::lint {
namespace {

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}
bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

// Skips a balanced <...> group. `i` must point at the opening '<';
// returns the index one past the matching '>'. ">>" is never fused by the
// tokenizer, so nested closers count one by one.
std::size_t skip_angles(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (is_punct(toks[i], "<")) ++depth;
    if (is_punct(toks[i], ">") && --depth == 0) return i + 1;
    if (is_punct(toks[i], ";")) break;  // malformed; bail at statement end
  }
  return i;
}

std::size_t skip_braces(const std::vector<Token>& toks, std::size_t i) {
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (is_punct(toks[i], "{")) ++depth;
    if (is_punct(toks[i], "}") && --depth == 0) return i + 1;
  }
  return i;
}

// ---------------------------------------------------------------------------
// no-wall-clock: byte-identical reruns require that no simulated state is a
// function of wall time. Flags the std::chrono clocks and the POSIX time
// calls; metadata-only timing (e.g. table_build_s accounting) must carry a
// justified NOLINT, and whole files whose job is wall time (util/resilient)
// are allowlisted in lint.toml.
class NoWallClock : public Rule {
 public:
  const char* name() const override { return "no-wall-clock"; }

  void check(const ProjectView& p, std::vector<Finding>* out) const override {
    for (const SourceFile& f : p.files) {
      if (!p.cfg.applies(name(), f.path)) continue;
      const auto& t = f.tokens;
      for (std::size_t i = 0; i < t.size(); ++i) {
        const std::string site = wall_clock_site(t, i);
        if (site.empty()) continue;
        out->push_back(
            {name(), f.path, t[i].line,
             "wall-clock source '" + site +
                 "' — results must be a function of (seed, sim time) "
                 "only; annotate metadata-only timing with "
                 "NOLINT(spineless-no-wall-clock): <why>"});
      }
    }
  }
};

// ---------------------------------------------------------------------------
// no-raw-rand: single-seed reproducibility requires every random draw to
// flow through util/rng's seeded xoshiro streams. std::random_device and
// friends produce unseedable, run-dependent values; rand() adds hidden
// global state that parallel cells would race on.
class NoRawRand : public Rule {
 public:
  const char* name() const override { return "no-raw-rand"; }

  void check(const ProjectView& p, std::vector<Finding>* out) const override {
    for (const SourceFile& f : p.files) {
      if (!p.cfg.applies(name(), f.path)) continue;
      const auto& t = f.tokens;
      for (std::size_t i = 0; i < t.size(); ++i) {
        const std::string site = raw_rand_site(t, i);
        if (site.empty()) continue;
        out->push_back({name(), f.path, t[i].line,
                        "raw randomness '" + site +
                            "' — draw from util/rng (seeded xoshiro "
                            "streams) so runs replay from one seed"});
      }
    }
  }
};

// ---------------------------------------------------------------------------
// unordered-iteration: iterating a hash container inside the simulator,
// routing, or fault layers lets hash-order (which varies with insertion
// history, libstdc++ version, and pointer values) leak into event order or
// snapshot bytes. Detection is per-file: collect the names declared with an
// unordered type, then flag range-fors over them and .begin()/.cbegin()
// calls on them.
class UnorderedIteration : public Rule {
 public:
  const char* name() const override { return "unordered-iteration"; }

  void check(const ProjectView& p, std::vector<Finding>* out) const override {
    for (const SourceFile& f : p.files) {
      if (!p.cfg.applies(name(), f.path)) continue;
      const auto& t = f.tokens;
      const std::set<std::string> vars = collect_unordered_vars(t);
      if (vars.empty()) continue;

      for (std::size_t i = 0; i < t.size(); ++i) {
        // Range-for whose sequence expression mentions a tracked name.
        if (is_ident(t[i], "for") && i + 1 < t.size() &&
            is_punct(t[i + 1], "(")) {
          int depth = 0;
          bool after_colon = false;
          for (std::size_t j = i + 1; j < t.size(); ++j) {
            if (is_punct(t[j], "(")) ++depth;
            if (is_punct(t[j], ")") && --depth == 0) break;
            if (is_punct(t[j], ":")) after_colon = true;
            if (after_colon && t[j].kind == TokKind::kIdent &&
                vars.count(t[j].text) != 0) {
              out->push_back({name(), f.path, t[i].line,
                              "iteration over unordered container '" +
                                  t[j].text + hazard()});
              break;
            }
          }
        }
        // Explicit iterator walks: name.begin(), name->cbegin(), ...
        if (t[i].kind == TokKind::kIdent && vars.count(t[i].text) != 0 &&
            i + 2 < t.size() &&
            (is_punct(t[i + 1], ".") || is_punct(t[i + 1], "->")) &&
            (is_ident(t[i + 2], "begin") || is_ident(t[i + 2], "cbegin") ||
             is_ident(t[i + 2], "rbegin"))) {
          out->push_back({name(), f.path, t[i].line,
                          "iterator over unordered container '" + t[i].text +
                              hazard()});
        }
      }
    }
  }

 private:
  static std::string hazard() {
    return "' — hash order can leak into event order or snapshot bytes; "
           "copy keys into a sorted vector first, or switch to a sorted/"
           "indexed container";
  }

  static std::set<std::string> collect_unordered_vars(
      const std::vector<Token>& t) {
    static const std::unordered_set<std::string> kUnordered = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset",
    };
    std::set<std::string> vars;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent || kUnordered.count(t[i].text) == 0)
        continue;
      if (i + 1 >= t.size() || !is_punct(t[i + 1], "<")) continue;
      std::size_t j = skip_angles(t, i + 1);
      // Skip cv/ref/ptr decoration between the type and the declarator.
      while (j < t.size() &&
             (is_punct(t[j], "*") || is_punct(t[j], "&") ||
              is_ident(t[j], "const")))
        ++j;
      if (j >= t.size() || t[j].kind != TokKind::kIdent) continue;
      // `type name(` is a function declaration, not a variable.
      if (j + 1 < t.size() && is_punct(t[j + 1], "(")) continue;
      vars.insert(t[j].text);
    }
    return vars;
  }
};

// ---------------------------------------------------------------------------
// pointer-ordering: a std::map/std::set keyed by a raw pointer iterates in
// allocation-address order, which differs run to run — anything derived
// from that order (event scheduling, serialized bytes, report rows) breaks
// determinism. Key by a stable id (oid, index, name) instead.
class PointerOrdering : public Rule {
 public:
  const char* name() const override { return "pointer-ordering"; }

  void check(const ProjectView& p, std::vector<Finding>* out) const override {
    static const std::unordered_set<std::string> kOrdered = {
        "map", "set", "multimap", "multiset",
    };
    for (const SourceFile& f : p.files) {
      if (!p.cfg.applies(name(), f.path)) continue;
      const auto& t = f.tokens;
      for (std::size_t i = 1; i + 1 < t.size(); ++i) {
        if (t[i].kind != TokKind::kIdent || kOrdered.count(t[i].text) == 0)
          continue;
        if (!is_punct(t[i - 1], "::")) continue;  // only std::/qualified use
        if (!is_punct(t[i + 1], "<")) continue;
        // Walk the first template argument (the key type) at depth 1.
        int depth = 0;
        std::size_t last_meaningful = 0;
        for (std::size_t j = i + 1; j < t.size(); ++j) {
          if (is_punct(t[j], "<")) {
            ++depth;
            continue;
          }
          if (is_punct(t[j], ">")) {
            if (--depth == 0) break;
            continue;
          }
          if (is_punct(t[j], ",") && depth == 1) break;
          if (is_punct(t[j], ";")) break;  // malformed
          last_meaningful = j;
        }
        if (last_meaningful != 0 && is_punct(t[last_meaningful], "*")) {
          out->push_back(
              {name(), f.path, t[i].line,
               "std::" + t[i].text +
                   " keyed by a raw pointer iterates in allocation-address "
                   "order, which varies run to run — key by a stable id "
                   "(oid, index, name) instead"});
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// snapshot-coverage: the static counterpart of the runtime --audit
// invariants. For each configured audit, every instance field of the
// serialized struct must be mentioned by at least one of its codec files —
// a field added to the struct but not to save/load silently resets on
// --resume, breaking kill-9/clean-run byte identity.
class SnapshotCoverage : public Rule {
 public:
  const char* name() const override { return "snapshot-coverage"; }

  void check(const ProjectView& p, std::vector<Finding>* out) const override {
    for (const SnapshotAudit& audit : p.cfg.audits) {
      const SourceFile* header = find(p, audit.header);
      if (header == nullptr) {
        out->push_back({name(), audit.header, 1,
                        "audit for struct '" + audit.strct +
                            "': header not found or unreadable"});
        continue;
      }
      if (!p.cfg.applies(name(), header->path)) continue;
      std::vector<Token> fields;
      if (!collect_fields(header->tokens, audit.strct, &fields)) {
        out->push_back({name(), audit.header, 1,
                        "audit: struct '" + audit.strct +
                            "' not found in " + audit.header});
        continue;
      }
      std::unordered_set<std::string> mentioned;
      for (const std::string& impl : audit.impl) {
        const SourceFile* f = find(p, impl);
        if (f == nullptr) {
          out->push_back({name(), impl, 1,
                          "audit for struct '" + audit.strct +
                              "': codec file not found or unreadable"});
          continue;
        }
        for (const Token& tok : f->tokens)
          if (tok.kind == TokKind::kIdent) mentioned.insert(tok.text);
      }
      // v2: a codec may delegate ("write_header(out, s)" in another TU).
      // Resolve every function defined in the impl files through the call
      // graph and count identifiers in all transitively-reached bodies as
      // codec mentions — a field serialized by a shared helper is covered.
      if (p.index != nullptr) collect_delegated(p, audit, &mentioned);
      for (const Token& field : fields) {
        if (mentioned.count(field.text) != 0) continue;
        out->push_back({name(), header->path, field.line,
                        "field '" + audit.strct + "::" + field.text +
                            "' is never mentioned by its serialization "
                            "code (" + join(audit.impl) +
                            ") — an unserialized field silently resets on "
                            "restore, breaking --resume byte identity"});
      }
    }
  }

 private:
  static const SourceFile* find(const ProjectView& p,
                                const std::string& path) {
    for (const SourceFile& f : p.files)
      if (f.path == path) return &f;
    return nullptr;
  }

  static void collect_delegated(const ProjectView& p,
                                const SnapshotAudit& audit,
                                std::unordered_set<std::string>* mentioned) {
    const Index& idx = *p.index;
    std::set<std::size_t> impl_ids;
    for (std::size_t fi = 0; fi < idx.files.size(); ++fi)
      for (const std::string& impl : audit.impl)
        if (idx.files[fi] == impl) impl_ids.insert(fi);
    std::vector<char> seen(idx.symbols.size(), 0);
    std::vector<std::size_t> work;
    for (std::size_t s = 0; s < idx.symbols.size(); ++s)
      for (const std::size_t d : idx.symbols[s].defs)
        if (impl_ids.count(idx.defs[d].file) != 0 && seen[s] == 0) {
          seen[s] = 1;
          work.push_back(s);
        }
    while (!work.empty()) {
      const std::size_t s = work.back();
      work.pop_back();
      for (const std::size_t d : idx.symbols[s].defs) {
        const FunctionDef& def = idx.defs[d];
        const auto& toks = p.files[def.file].tokens;
        for (std::size_t k = def.tok_begin; k < def.tok_end; ++k)
          if (toks[k].kind == TokKind::kIdent)
            mentioned->insert(toks[k].text);
      }
      for (const std::size_t c : idx.symbols[s].callees)
        if (seen[c] == 0) {
          seen[c] = 1;
          work.push_back(c);
        }
    }
  }

  static std::string join(const std::vector<std::string>& v) {
    std::string out;
    for (const std::string& s : v) {
      if (!out.empty()) out += ", ";
      out += s;
    }
    return out;
  }

  // Collects the instance-field name tokens of `struct_name`. Heuristic
  // statement scanner: inside the struct body at depth 1, a statement
  // without parentheses is a data member; its name is the identifier
  // before '=' / '[' / '{', else the last identifier. Nested types,
  // functions, usings, and static/constexpr members are skipped.
  static bool collect_fields(const std::vector<Token>& t,
                             const std::string& struct_name,
                             std::vector<Token>* fields) {
    std::size_t body = t.size();
    for (std::size_t i = 1; i + 1 < t.size(); ++i) {
      if (t[i].kind == TokKind::kIdent && t[i].text == struct_name &&
          (is_ident(t[i - 1], "struct") || is_ident(t[i - 1], "class"))) {
        std::size_t j = i + 1;
        while (j < t.size() && !is_punct(t[j], "{") && !is_punct(t[j], ";"))
          ++j;  // base clause / final
        if (j < t.size() && is_punct(t[j], "{")) {
          body = j + 1;
          break;
        }
      }
    }
    if (body >= t.size()) return false;

    std::vector<Token> stmt;
    const auto flush = [&]() {
      if (!stmt.empty()) emit_field(stmt, fields);
      stmt.clear();
    };
    for (std::size_t i = body; i < t.size();) {
      const Token& tok = t[i];
      if (is_punct(tok, "}")) break;  // end of struct body
      if (is_punct(tok, ";")) {
        flush();
        ++i;
        continue;
      }
      // Access specifiers are statement noise.
      if (tok.kind == TokKind::kIdent &&
          (tok.text == "public" || tok.text == "private" ||
           tok.text == "protected") &&
          i + 1 < t.size() && is_punct(t[i + 1], ":")) {
        i += 2;
        continue;
      }
      if (is_punct(tok, "{")) {
        const bool function_or_type =
            has_paren(stmt) || starts_type(stmt);
        i = skip_braces(t, i);
        if (function_or_type) {
          stmt.clear();  // body/nested type consumed; drop the statement
          if (i < t.size() && is_punct(t[i], ";")) ++i;
        }
        continue;  // brace-init members keep their statement alive
      }
      if (is_punct(tok, "<")) {
        // Template arguments never name the declarator.
        const std::size_t next = skip_angles(t, i);
        i = next > i ? next : i + 1;
        continue;
      }
      stmt.push_back(tok);
      ++i;
    }
    flush();
    return true;
  }

  static bool has_paren(const std::vector<Token>& stmt) {
    for (const Token& t : stmt)
      if (is_punct(t, "(")) return true;
    return false;
  }

  static bool starts_type(const std::vector<Token>& stmt) {
    if (stmt.empty()) return true;
    const std::string& s = stmt.front().text;
    return s == "struct" || s == "class" || s == "enum" || s == "union";
  }

  static void emit_field(const std::vector<Token>& stmt,
                         std::vector<Token>* fields) {
    if (stmt.empty() || has_paren(stmt)) return;
    static const std::unordered_set<std::string> kNotFields = {
        "using", "typedef", "static", "constexpr", "friend", "template",
        "struct", "class", "enum", "union",
    };
    for (const Token& t : stmt)
      if (t.kind == TokKind::kIdent && kNotFields.count(t.text) != 0) return;
    const Token* name = nullptr;
    for (std::size_t i = 0; i < stmt.size(); ++i) {
      if (is_punct(stmt[i], "=") || is_punct(stmt[i], "[")) break;
      if (stmt[i].kind == TokKind::kIdent) name = &stmt[i];
    }
    if (name != nullptr) fields->push_back(*name);
  }
};

// ---------------------------------------------------------------------------
// atomic-spin: the reactor engine's liveness contract says cross-shard
// waits either make progress (poll another shard) or park in a futex-backed
// std::atomic::wait. A raw busy-wait loop on an atomic burns the core a
// sibling reactor needs, melts the cooperative single-core path, and hides
// lost-wakeup bugs behind 100% CPU. Flags while/for loop *conditions* that
// call an atomic read-or-RMW member; the SPSC ring (whose acquire/release
// protocol is the reviewed exception and never loops on a peer) is
// allowlisted in lint.toml, and genuinely parked or bounded waits carry a
// justified NOLINT.
class AtomicSpin : public Rule {
 public:
  const char* name() const override { return "atomic-spin"; }

  void check(const ProjectView& p, std::vector<Finding>* out) const override {
    static const std::unordered_set<std::string> kSpinCalls = {
        "load",
        "exchange",
        "test_and_set",
        "compare_exchange_weak",
        "compare_exchange_strong",
    };
    for (const SourceFile& f : p.files) {
      if (!p.cfg.applies(name(), f.path)) continue;
      const auto& t = f.tokens;
      for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        const bool is_while = is_ident(t[i], "while");
        const bool is_for = is_ident(t[i], "for");
        if ((!is_while && !is_for) || !is_punct(t[i + 1], "(")) continue;
        int depth = 0;
        int semis = 0;  // for(init; cond; step): only cond is a spin site
        for (std::size_t j = i + 1; j < t.size(); ++j) {
          if (is_punct(t[j], "(")) {
            ++depth;
            continue;
          }
          if (is_punct(t[j], ")")) {
            if (--depth == 0) break;
            continue;
          }
          if (is_for && depth == 1 && is_punct(t[j], ";")) {
            ++semis;
            continue;
          }
          if (is_for && semis != 1) continue;  // init/step/range-for: skip
          if (t[j].kind != TokKind::kIdent ||
              kSpinCalls.count(t[j].text) == 0)
            continue;
          const bool member = j > 0 && (is_punct(t[j - 1], ".") ||
                                        is_punct(t[j - 1], "->"));
          if (!member || j + 1 >= t.size() || !is_punct(t[j + 1], "("))
            continue;
          out->push_back(
              {name(), f.path, t[i].line,
               "busy-wait on atomic '" + t[j].text +
                   "()' in a loop condition — a raw spin starves sibling "
                   "reactors on the cooperative path and hides lost-wakeup "
                   "bugs; park in a futex-backed std::atomic::wait (or "
                   "bound the spin) and annotate with "
                   "NOLINT(spineless-atomic-spin): <why>"});
          break;  // one finding per loop header
        }
      }
    }
  }
};

}  // namespace

std::string wall_clock_site(const std::vector<Token>& t, std::size_t i) {
  static const std::unordered_set<std::string> kClocks = {
      "steady_clock",  "system_clock", "high_resolution_clock",
      "gettimeofday",  "clock_gettime", "timespec_get",
  };
  if (t[i].kind != TokKind::kIdent) return "";
  if (kClocks.count(t[i].text) != 0) return t[i].text;
  // std::time(...) / time(nullptr) / time(0): require the call shape so
  // fields and methods merely named `time` stay quiet.
  if (t[i].text == "time" && i + 1 < t.size() && is_punct(t[i + 1], "(")) {
    const bool qualified = i > 0 && is_punct(t[i - 1], "::");
    const bool member =
        i > 0 && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->"));
    const bool classic_arg =
        i + 2 < t.size() &&
        (is_ident(t[i + 2], "nullptr") || t[i + 2].text == "0" ||
         is_ident(t[i + 2], "NULL"));
    if (!member && (qualified || classic_arg)) return "time()";
  }
  return "";
}

std::string raw_rand_site(const std::vector<Token>& t, std::size_t i) {
  static const std::unordered_set<std::string> kTypes = {
      "random_device", "mt19937",      "mt19937_64", "minstd_rand",
      "minstd_rand0",  "default_random_engine",      "knuth_b",
      "ranlux24",      "ranlux48",
  };
  static const std::unordered_set<std::string> kCalls = {
      "rand", "srand", "random", "srandom", "drand48", "lrand48",
  };
  if (t[i].kind != TokKind::kIdent) return "";
  const bool member =
      i > 0 && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->"));
  if (member) return "";
  if (kTypes.count(t[i].text) != 0) return t[i].text;
  if (kCalls.count(t[i].text) != 0 && i + 1 < t.size() &&
      is_punct(t[i + 1], "("))
    return t[i].text + "()";
  return "";
}

const std::vector<std::unique_ptr<Rule>>& all_rules() {
  static const std::vector<std::unique_ptr<Rule>>* kRules = [] {
    auto* rules = new std::vector<std::unique_ptr<Rule>>();
    rules->push_back(std::make_unique<NoWallClock>());
    rules->push_back(std::make_unique<NoRawRand>());
    rules->push_back(std::make_unique<UnorderedIteration>());
    rules->push_back(std::make_unique<PointerOrdering>());
    rules->push_back(std::make_unique<SnapshotCoverage>());
    rules->push_back(std::make_unique<AtomicSpin>());
    rules->push_back(make_taint_wall_clock_rule());
    rules->push_back(make_taint_raw_rand_rule());
    rules->push_back(make_layering_rule());
    return rules;
  }();
  return *kRules;
}

}  // namespace spineless::lint
