// A lightweight C++ tokenizer for spineless_lint. Deliberately not a real
// C++ front end: the lint rules only need identifier streams with line
// numbers, balanced punctuation, and comment text (for NOLINT
// suppressions). String/char literals are tokenized as opaque units so
// their contents can never produce a false identifier match; preprocessor
// directives are kept as single tokens for the same reason.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace spineless::lint {

enum class TokKind {
  kIdent,    // identifiers and keywords
  kNumber,   // numeric literals (incl. hex/float suffixes)
  kPunct,    // operators / punctuation; "::" and "->" are single tokens
  kString,   // "..." / R"(...)" (text excludes quotes)
  kCharLit,  // '...'
  kComment,  // // and /* */ (text excludes the comment markers)
  kPreproc,  // a whole #... directive line (incl. continuations)
};

struct Token {
  TokKind kind;
  std::string text;
  int line;  // 1-based line of the token's first character
};

// Tokenizes `src`. Comment tokens are returned in `comments` (in order);
// all other tokens land in the returned stream. Unterminated constructs
// are tolerated (the remainder becomes one token) — the linter must never
// crash on the code it audits.
std::vector<Token> tokenize(std::string_view src, std::vector<Token>* comments);

// If `t` is an #include directive (a kPreproc token), extracts the
// included path. `angled` (optional) reports <...> vs "..." form.
// Returns std::nullopt for every other token or malformed directive —
// the include-graph builder silently skips what it cannot parse.
std::optional<std::string> include_path(const Token& t, bool* angled);

}  // namespace spineless::lint
