// spinelessd — the always-on what-if service.
//
//   spinelessd --socket=/tmp/spineless.sock [--snapshot_dir=DIR] ...
//       Serve requests over a Unix socket. SIGTERM drains gracefully
//       (in-flight requests finish, new ones get `draining`, exit 0).
//
//   spinelessd --replay=trace.jsonl [--out=answers.jsonl] ...
//       Deterministic offline replay of a request trace through the same
//       engine (no admission control, auto fidelity = packet). Two replays
//       of the same trace — including across a kill -9 and a warm-snapshot
//       restart — produce byte-identical output.
//
//   spinelessd --connect=/tmp/spineless.sock
//       Built-in lockstep client: stdin request lines -> stdout responses.
//
//   spinelessd --warm_only --snapshot_dir=DIR
//       Build and persist the warm state, print its hash, exit.
#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "service/daemon.h"
#include "service/engine.h"
#include "service/warm_state.h"
#include "util/flags.h"

namespace spineless::service {
namespace {

Daemon* g_daemon = nullptr;

void on_signal(int) {
  if (g_daemon != nullptr) g_daemon->request_shutdown();
}

ServiceConfig service_config(const Flags& flags) {
  ServiceConfig cfg;
  cfg.topology = flags.get("topology", cfg.topology);
  cfg.scenario.seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 1));
  cfg.utilization = flags.get_double("utilization", cfg.utilization);
  cfg.horizon = static_cast<Time>(
      flags.get_double("horizon_ms", 8.0) * units::kMillisecond);
  cfg.warm_time = static_cast<Time>(
      flags.get_double("warm_us", 500.0) * units::kMicrosecond);
  cfg.snapshot_dir = flags.get("snapshot_dir", "");
  return cfg;
}

EngineConfig engine_config(const Flags& flags) {
  EngineConfig cfg;
  cfg.workers = static_cast<int>(flags.get_int("workers", 2));
  cfg.queue_limit =
      static_cast<std::size_t>(flags.get_int("queue_limit", 16));
  cfg.degrade_depth =
      static_cast<std::size_t>(flags.get_int("degrade_depth", 8));
  cfg.default_deadline_ms = flags.get_double("default_deadline_ms", 0);
  cfg.journal_path = flags.get("journal", "");
  cfg.retry.max_attempts = 1;
  cfg.retry.wall_timeout_s = flags.get_double("request_timeout_s", 0);
  return cfg;
}

int run(int argc, char** argv) {
  const Flags flags(argc, argv);

  if (flags.has("connect")) return run_client(flags.get("connect", ""));

  std::fprintf(stderr, "spinelessd: building warm state...\n");
  const std::unique_ptr<WarmState> warm =
      WarmState::build(service_config(flags));
  std::fprintf(stderr, "spinelessd: warm state ready (%s)\n",
               warm->restored_from_disk() ? "restored from snapshot"
                                          : "built fresh");

  if (flags.has("warm_only")) {
    std::printf("spinelessd: warm_hash=%016llx restored=%d\n",
                static_cast<unsigned long long>(warm->warm_hash()),
                warm->restored_from_disk() ? 1 : 0);
    return 0;
  }

  Engine engine(*warm, engine_config(flags));

  if (flags.has("replay")) {
    std::ifstream in(flags.get("replay", ""));
    if (!in) {
      std::fprintf(stderr, "spinelessd: cannot open replay trace\n");
      return 2;
    }
    const std::string out_path = flags.get("out", "");
    std::FILE* out =
        out_path.empty() ? stdout : std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "spinelessd: cannot open --out file\n");
      return 2;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      const std::string response = engine.handle_line(line);
      std::fprintf(out, "%s\n", response.c_str());
    }
    if (out != stdout) std::fclose(out);
    return 0;
  }

  const std::string socket_path = flags.get("socket", "");
  if (socket_path.empty()) {
    std::fprintf(stderr,
                 "usage: spinelessd --socket=PATH | --replay=FILE "
                 "[--out=FILE] | --connect=PATH | --warm_only\n");
    return 2;
  }

  Daemon daemon(engine, socket_path);
  if (!daemon.listen_on_socket()) return 1;
  g_daemon = &daemon;
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  // The ready line is the machine-readable startup handshake the smoke
  // test and the bench wait for before sending traffic.
  std::printf("spinelessd: ready socket=%s restored=%d\n",
              socket_path.c_str(), warm->restored_from_disk() ? 1 : 0);
  std::fflush(stdout);

  const int rc = daemon.serve();
  g_daemon = nullptr;
  std::fprintf(stderr, "spinelessd: drained, exiting %d\n", rc);
  return rc;
}

}  // namespace
}  // namespace spineless::service

int main(int argc, char** argv) {
  try {
    return spineless::service::run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "spinelessd: fatal: %s\n", e.what());
    return 1;
  }
}
