// spinelessd serving-layer tests: JSON parsing, request canonicalization,
// warm-checkpoint identity (empty what-if == baseline), snapshot
// restore determinism, the result cache, and the robustness ladder
// (overload shedding, fluid degradation, queue-deadline sheds, drain).
// Process-level SIGTERM / kill -9 coverage lives in
// scripts/service_drain_smoke.sh (ctest: service_drain_smoke).
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "service/engine.h"
#include "service/jsonin.h"
#include "service/request.h"
#include "service/warm_state.h"
#include "util/error.h"
#include "util/fsio.h"

namespace spineless::service {
namespace {

// One shared warm state for the whole suite: building it runs the warm
// prefix + baseline simulations once (~100 ms) instead of per-test.
const WarmState& shared_warm() {
  static const std::unique_ptr<WarmState> warm = [] {
    ServiceConfig cfg;
    return WarmState::build(cfg);
  }();
  return *warm;
}

EngineConfig quiet_engine(int workers = 1) {
  EngineConfig cfg;
  cfg.workers = workers;
  return cfg;
}

// Collects async responses and blocks until all arrive.
struct Collector {
  std::function<void(std::string)> sink() {
    return [this](std::string r) {
      std::lock_guard<std::mutex> l(mu);
      responses.push_back(std::move(r));
      cv.notify_all();
    };
  }
  void wait_for(std::size_t n) {
    std::unique_lock<std::mutex> l(mu);
    cv.wait(l, [&] { return responses.size() >= n; });
  }
  std::size_t count_containing(const std::string& needle) {
    std::lock_guard<std::mutex> l(mu);
    std::size_t n = 0;
    for (const auto& r : responses)
      if (r.find(needle) != std::string::npos) ++n;
    return n;
  }
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::string> responses;
};

TEST(Jsonin, ParsesScalarsStringsAndNesting) {
  const JsonValue v = parse_json(
      R"({"a":1,"b":-2.5e2,"c":"x\"\nA","d":[true,false,null],"e":{"k":3}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("a")->as_int(), 1);
  EXPECT_DOUBLE_EQ(v.find("b")->as_number(), -250.0);
  EXPECT_EQ(v.find("c")->as_string(), "x\"\nA");
  ASSERT_TRUE(v.find("d")->is_array());
  EXPECT_EQ(v.find("d")->as_array().size(), 3u);
  EXPECT_TRUE(v.find("d")->as_array()[0].as_bool());
  EXPECT_EQ(v.find("e")->find("k")->as_int(), 3);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Jsonin, RejectsMalformedInputWithBytePosition) {
  const auto expect_error = [](const std::string& doc) {
    try {
      parse_json(doc);
      FAIL() << "expected a parse error for: " << doc;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("json:"), std::string::npos);
      EXPECT_NE(std::string(e.what()).find("at byte"), std::string::npos);
    }
  };
  expect_error("");
  expect_error("{");
  expect_error("{\"a\":}");
  expect_error("{\"a\":1,}");
  expect_error("[1 2]");
  expect_error("{\"a\":01}");
  expect_error("\"unterminated");
  expect_error("{\"a\":1} trailing");
}

TEST(Request, ParsesAndCanonicalizes) {
  const Request r = parse_request(
      R"({"id":7,"kind":"whatif_fault","spec":"fail link=1 at=1ms",)"
      R"("fidelity":"fluid","deadline_ms":50,"seed_salt":9})");
  EXPECT_EQ(r.id, 7);
  EXPECT_EQ(r.kind, RequestKind::kWhatIfFault);
  EXPECT_EQ(r.fidelity, Fidelity::kFluid);
  EXPECT_EQ(r.seed_salt, 9u);
  // The body excludes id and deadline_ms: two requests asking the same
  // question have byte-equal bodies regardless of scheduling fields.
  Request r2 = r;
  r2.id = 99;
  r2.deadline_ms = 0;
  EXPECT_EQ(canonical_request_body(r), canonical_request_body(r2));
  EXPECT_NE(canonical_request_line(r), canonical_request_line(r2));
  // A canonical line reparses to the same body.
  const Request r3 = parse_request(canonical_request_line(r));
  EXPECT_EQ(canonical_request_body(r3), canonical_request_body(r));
}

TEST(Request, RejectsBadFields) {
  EXPECT_THROW(parse_request("[]"), Error);
  EXPECT_THROW(parse_request(R"({"kind":"status"})"), Error);  // no id
  EXPECT_THROW(parse_request(R"({"id":1,"kind":"nope"})"), Error);
  EXPECT_THROW(parse_request(R"({"id":1,"kind":"whatif_fault"})"), Error);
  EXPECT_THROW(parse_request(R"({"id":1,"kind":"whatif_tm","tm":"zipf"})"),
               Error);
  EXPECT_THROW(parse_request(
                   R"({"id":1,"kind":"whatif_tm","tm":"skewed","load_scale":9})"),
               Error);
  EXPECT_THROW(
      parse_request(R"({"id":1,"kind":"status","deadline_ms":-1})"), Error);
}

TEST(WarmState, EmptyWhatIfReproducesBaselineExactly) {
  const WarmState& warm = shared_warm();
  // Restoring the warm checkpoint and running an empty fault plan to the
  // horizon must land on the identical trajectory the baseline took —
  // exact float equality, not tolerance.
  const WhatIfResult r = warm.whatif_fault_packet("", 0, nullptr);
  EXPECT_TRUE(r.finished);
  EXPECT_EQ(r.p50_ms, warm.baseline_packet().p50_ms);
  EXPECT_EQ(r.p99_ms, warm.baseline_packet().p99_ms);
  EXPECT_EQ(r.completed, warm.baseline_packet().completed);
  EXPECT_EQ(r.delta_p50_ms, 0.0);
  EXPECT_EQ(r.outages, 0u);

  const WhatIfResult f = warm.whatif_fault_fluid("", 0);
  EXPECT_EQ(f.p50_ms, warm.baseline_fluid().p50_ms);
  EXPECT_EQ(f.p99_ms, warm.baseline_fluid().p99_ms);
}

TEST(WarmState, FaultWhatIfDetectsAndReportsOutage) {
  const WhatIfResult r =
      shared_warm().whatif_fault_packet("fail link=3 at=1ms", 0, nullptr);
  EXPECT_TRUE(r.finished);
  EXPECT_EQ(r.outages, 1u);
  EXPECT_GT(r.blackhole_s, 0.0);
  EXPECT_GT(r.detect_ms, 0.0);
  EXPECT_GT(r.goodput_recovery, 0.5);
}

TEST(WarmState, FaultInsideWarmPrefixIsRejected) {
  // warm_time defaults to 500us: a what-if fault cannot land inside the
  // already-simulated prefix.
  EXPECT_THROW(
      shared_warm().whatif_fault_packet("fail link=0 at=100us", 0, nullptr),
      Error);
}

TEST(WarmState, SnapshotRestoreGivesByteIdenticalAnswers) {
  const std::string dir = ::testing::TempDir() + "spineless_service_snap";
  ServiceConfig cfg;
  cfg.snapshot_dir = dir;
  util::remove_file(dir + "/service_warm.snap");
  util::remove_file(dir + "/service_baseline.snap");

  const auto fresh = WarmState::build(cfg);
  ASSERT_FALSE(fresh->restored_from_disk());
  const auto restored = WarmState::build(cfg);
  ASSERT_TRUE(restored->restored_from_disk());
  EXPECT_EQ(fresh->warm_hash(), restored->warm_hash());
  EXPECT_EQ(fresh->baseline_packet().p50_ms, restored->baseline_packet().p50_ms);

  // Answers computed against the restored state are byte-identical.
  Engine a(*fresh, quiet_engine());
  Engine b(*restored, quiet_engine());
  const std::vector<std::string> lines = {
      R"({"id":1,"kind":"whatif_fault","spec":"flap link=5 down=1ms up=3ms"})",
      R"({"id":2,"kind":"whatif_tm","tm":"permutation","seed_salt":3,"fidelity":"fluid"})",
      R"({"id":3,"kind":"affected","link":2,"down":true})",
  };
  for (const auto& line : lines)
    EXPECT_EQ(a.handle_line(line), b.handle_line(line)) << line;
}

TEST(Engine, RepeatedRequestIsCachedByteIdentical) {
  Engine engine(shared_warm(), quiet_engine());
  const std::string line =
      R"({"id":4,"kind":"whatif_fault","spec":"fail link=7 at=2ms"})";
  const std::string first = engine.handle_line(line);
  const std::string second = engine.handle_line(line);
  EXPECT_EQ(first, second);
  EXPECT_EQ(engine.stats().cache_hits, 1u);
  // Same question under a different id: cache hit, only the id differs.
  const std::string third = engine.handle_line(
      R"({"id":5,"kind":"whatif_fault","spec":"fail link=7 at=2ms"})");
  EXPECT_EQ(engine.stats().cache_hits, 2u);
  EXPECT_EQ(third.substr(third.find("\"status\"")),
            first.substr(first.find("\"status\"")));
}

TEST(Engine, BadRequestsYieldErrorResponsesAndEngineSurvives) {
  Engine engine(shared_warm(), quiet_engine());
  // Unparseable line, unknown link, overlapping fault clauses: all must
  // come back as `error` responses, never take the engine down.
  EXPECT_NE(engine.handle_line("not json").find("\"status\":\"error\""),
            std::string::npos);
  EXPECT_NE(engine
                .handle_line(
                    R"({"id":1,"kind":"whatif_fault","spec":"fail link=9999 at=1ms"})")
                .find("\"status\":\"error\""),
            std::string::npos);
  const std::string overlap = engine.handle_line(
      R"({"id":2,"kind":"whatif_fault","spec":"fail link=1 at=1ms; fail link=1 at=2ms"})");
  EXPECT_NE(overlap.find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(overlap.find("disjoint time windows"), std::string::npos);
  // The engine still answers real questions afterwards.
  EXPECT_NE(engine
                .handle_line(
                    R"({"id":3,"kind":"whatif_fault","spec":"fail link=1 at=1ms"})")
                .find("\"status\":\"ok\""),
            std::string::npos);
  EXPECT_EQ(engine.stats().errors, 3u);
}

TEST(Engine, OverloadShedsExplicitlyAndStaysUp) {
  EngineConfig cfg = quiet_engine(/*workers=*/1);
  cfg.queue_limit = 1;
  Engine engine(shared_warm(), cfg);
  Collector c;
  const int n = 8;
  for (int i = 0; i < n; ++i) {
    engine.submit(R"({"id":)" + std::to_string(i) +
                      R"(,"kind":"whatif_tm","tm":"skewed","seed_salt":)" +
                      std::to_string(i) + "}",
                  c.sink());
  }
  c.wait_for(n);
  const std::size_t shed = c.count_containing("\"status\":\"overloaded\"");
  const std::size_t ok = c.count_containing("\"status\":\"ok\"");
  EXPECT_GE(shed, 1u) << "a 1-deep queue must reject most of an 8-burst";
  EXPECT_GE(ok, 1u);
  EXPECT_EQ(shed + ok, static_cast<std::size_t>(n));
  // And the engine still serves after the burst.
  EXPECT_NE(engine.handle_line(R"({"id":99,"kind":"status"})")
                .find("\"status\":\"ok\""),
            std::string::npos);
}

TEST(Engine, DeepQueueDegradesAutoRequestsToFluid) {
  EngineConfig cfg = quiet_engine(/*workers=*/1);
  cfg.degrade_depth = 0;  // any queued depth > 0 triggers degradation
  cfg.queue_limit = 64;
  Engine engine(shared_warm(), cfg);
  Collector c;
  const int n = 6;
  for (int i = 0; i < n; ++i) {
    engine.submit(R"({"id":)" + std::to_string(i) +
                      R"(,"kind":"whatif_fault","spec":"fail link=)" +
                      std::to_string(i) + R"( at=1ms"})",
                  c.sink());
  }
  c.wait_for(n);
  EXPECT_EQ(c.count_containing("\"status\":\"ok\""),
            static_cast<std::size_t>(n));
  // The first request may run at packet fidelity (empty queue when it was
  // popped); the burst behind it must have degraded.
  EXPECT_GE(engine.stats().degraded, 1u);
  EXPECT_GE(c.count_containing("\"fidelity\":\"fluid\",\"degraded\":true"), 1u);
}

TEST(Engine, QueuedDeadlineExpiryIsShed) {
  EngineConfig cfg = quiet_engine(/*workers=*/1);
  Engine engine(shared_warm(), cfg);
  Collector c;
  // A slow packet request occupies the single worker...
  engine.submit(R"({"id":1,"kind":"whatif_tm","tm":"skewed","seed_salt":1})",
                c.sink());
  // ...so this one's 1ms deadline burns down in the queue and it is shed
  // without ever simulating.
  engine.submit(
      R"({"id":2,"kind":"whatif_fault","spec":"fail link=1 at=1ms","deadline_ms":0.01})",
      c.sink());
  c.wait_for(2);
  EXPECT_EQ(c.count_containing("\"reason\":\"deadline_expired\""), 1u);
}

TEST(Engine, DrainRefusesNewAndFinishesInFlight) {
  Engine engine(shared_warm(), quiet_engine());
  Collector c;
  engine.submit(
      R"({"id":1,"kind":"whatif_fault","spec":"fail link=2 at=1ms"})",
      c.sink());
  engine.begin_drain();
  engine.submit(
      R"({"id":2,"kind":"whatif_fault","spec":"fail link=3 at=1ms"})",
      c.sink());
  c.wait_for(2);
  EXPECT_EQ(c.count_containing("\"status\":\"draining\""), 1u);
  // The pre-drain request still completed.
  EXPECT_EQ(c.count_containing("\"status\":\"ok\""), 1u);
  engine.stop();
}

TEST(Engine, StatusReportsCountersAndNoWallClock) {
  Engine engine(shared_warm(), quiet_engine());
  (void)engine.handle_line(
      R"({"id":1,"kind":"whatif_fault","spec":"fail link=1 at=1ms"})");
  const std::string status =
      engine.handle_line(R"({"id":2,"kind":"status"})");
  EXPECT_NE(status.find("\"kind\":\"status\""), std::string::npos);
  EXPECT_NE(status.find("\"completed\":1"), std::string::npos);
  EXPECT_NE(status.find("\"warm_hash\":\"0x"), std::string::npos);
}

}  // namespace
}  // namespace spineless::service
