// Tests for spineless_lint itself: the tokenizer, the lint.toml parser,
// every rule against a known-bad and a known-good fixture, the NOLINT
// suppression contract, the JSON reporter, and the self-check that the
// shipped tree is lint-clean (the static mirror of the determinism suite).
#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "index.h"
#include "lint.h"
#include "rules.h"
#include "token.h"

namespace spineless::lint {
namespace {

// Paths injected by tests/CMakeLists.txt.
const char* const kSourceDir = SPINELESS_SOURCE_DIR;
const char* const kFixtureDir = SPINELESS_LINT_FIXTURES;

std::vector<Finding> findings_for(const LintResult& r,
                                  const std::string& rule) {
  std::vector<Finding> out;
  for (const Finding& f : r.findings)
    if (f.rule == rule) out.push_back(f);
  return out;
}

// Fixture runs use an explicit config (every rule everywhere) so the
// fixtures stay independent of the shipped lint.toml's path scoping.
Config fixture_config() {
  Config cfg;
  cfg.scan = {"."};
  return cfg;
}

LintResult lint_fixture(const std::string& file) {
  return run_lint(kFixtureDir, fixture_config(), {file});
}

std::string shipped_config_text() {
  std::ifstream in(std::string(kSourceDir) + "/tools/lint/lint.toml");
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Tokenizer, ClassifiesAndCountsLines) {
  std::vector<Token> comments;
  const auto toks = tokenize(
      "// top comment\n"
      "int a = 7;  /* mid\ncomment */\n"
      "const char* s = \"steady_clock\";\n"
      "char c = 'x';\n"
      "#include <chrono>\n"
      "auto r = R\"(rand() inside raw)\";\n",
      &comments);
  ASSERT_EQ(comments.size(), 2u);
  EXPECT_EQ(comments[0].line, 1);
  EXPECT_EQ(comments[1].line, 2);

  // Nothing inside strings, chars, comments, or preprocessor lines may
  // surface as an identifier token.
  for (const Token& t : toks) {
    if (t.kind != TokKind::kIdent) continue;
    EXPECT_NE(t.text, "steady_clock") << "identifier leaked from a string";
    EXPECT_NE(t.text, "rand") << "identifier leaked from a raw string";
    EXPECT_NE(t.text, "include") << "identifier leaked from a directive";
  }
  // Line numbers survive the multi-line block comment.
  const auto s_tok = std::find_if(toks.begin(), toks.end(), [](const Token& t) {
    return t.kind == TokKind::kIdent && t.text == "s";
  });
  ASSERT_NE(s_tok, toks.end());
  EXPECT_EQ(s_tok->line, 4);
}

TEST(Tokenizer, FusesQualifierAndArrowOnly) {
  const auto toks = tokenize("a->b; std::x; c >> d;", nullptr);
  int arrows = 0;
  int quals = 0;
  int gts = 0;
  for (const Token& t : toks) {
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "->") ++arrows;
    if (t.text == "::") ++quals;
    if (t.text == ">") ++gts;
  }
  EXPECT_EQ(arrows, 1);
  EXPECT_EQ(quals, 1);
  EXPECT_EQ(gts, 2) << "'>>' must stay two tokens for template tracking";
}

TEST(Tokenizer, DigitSeparatorsStayOneLiteral) {
  const auto toks = tokenize(
      "long n = 1'000'000; auto h = 0xFF'FF; char c = 'q';", nullptr);
  std::vector<std::string> nums;
  int chars = 0;
  for (const Token& t : toks) {
    if (t.kind == TokKind::kNumber) nums.push_back(t.text);
    if (t.kind == TokKind::kCharLit) ++chars;
  }
  ASSERT_EQ(nums.size(), 2u);
  EXPECT_EQ(nums[0], "1'000'000");
  EXPECT_EQ(nums[1], "0xFF'FF");
  EXPECT_EQ(chars, 1) << "'q' must still lex as a char literal";
}

TEST(Tokenizer, EncodingPrefixedStringsDontLeakIdents) {
  const auto toks = tokenize(
      "auto a = u8\"steady_clock\"; auto b = u\"rand\"; auto c = U\"time\"; "
      "auto d = L\"mt19937\"; auto e = u8R\"(drand48)\";",
      nullptr);
  int strings = 0;
  for (const Token& t : toks) {
    if (t.kind == TokKind::kString) ++strings;
    if (t.kind != TokKind::kIdent) continue;
    EXPECT_NE(t.text, "steady_clock") << "u8 prefix not attached";
    EXPECT_NE(t.text, "rand") << "u prefix not attached";
    EXPECT_NE(t.text, "time") << "U prefix not attached";
    EXPECT_NE(t.text, "mt19937") << "L prefix not attached";
    EXPECT_NE(t.text, "drand48") << "u8R raw prefix not attached";
  }
  EXPECT_EQ(strings, 5);
}

TEST(Tokenizer, IncludePathCapture) {
  const auto toks = tokenize(
      "#include \"sim/network.h\"\n"
      "#include <chrono>\n"
      "#include SOME_MACRO\n"
      "#define X 1\n",
      nullptr);
  ASSERT_EQ(toks.size(), 4u);
  bool angled = true;
  const auto quoted = include_path(toks[0], &angled);
  ASSERT_TRUE(quoted.has_value());
  EXPECT_EQ(*quoted, "sim/network.h");
  EXPECT_FALSE(angled);
  const auto system = include_path(toks[1], &angled);
  ASSERT_TRUE(system.has_value());
  EXPECT_EQ(*system, "chrono");
  EXPECT_TRUE(angled);
  EXPECT_FALSE(include_path(toks[2], nullptr).has_value())
      << "computed includes are not paths";
  EXPECT_FALSE(include_path(toks[3], nullptr).has_value());
}

TEST(Config, ParsesShippedToml) {
  std::string error;
  const auto cfg = parse_config(shipped_config_text(), &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  EXPECT_EQ(cfg->scan,
            (std::vector<std::string>{"src", "bench", "tools"}));
  // The watchdog may read wall time; the simulator may not.
  EXPECT_FALSE(cfg->applies("no-wall-clock", "src/util/resilient.cc"));
  EXPECT_TRUE(cfg->applies("no-wall-clock", "src/sim/network.cc"));
  // unordered-iteration is scoped to the determinism-critical layers.
  EXPECT_TRUE(cfg->applies("unordered-iteration", "src/sim/checkpoint.h"));
  EXPECT_FALSE(cfg->applies("unordered-iteration", "src/util/rng.cc"));
  // The Packet <-> PacketCodec audit is wired up.
  ASSERT_FALSE(cfg->audits.empty());
  EXPECT_EQ(cfg->audits[0].strct, "Packet");
  EXPECT_EQ(cfg->audits[0].header, "src/sim/packet.h");
}

TEST(Config, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(parse_config("[rule.x\nallow = []", &error).has_value());
  EXPECT_FALSE(parse_config("scan = [\"src\"\n", &error).has_value());
  EXPECT_FALSE(parse_config("[audit.x]\nstruct = \"S\"", &error).has_value())
      << "audits without header/impl must be rejected";
  EXPECT_FALSE(parse_config("mystery = true", &error).has_value());
}

TEST(NoWallClock, FlagsBadFixture) {
  const auto r = lint_fixture("bad_wall_clock.cc");
  const auto f = findings_for(r, "no-wall-clock");
  ASSERT_EQ(f.size(), 4u) << report_text(r);
  EXPECT_NE(f[0].message.find("steady_clock"), std::string::npos);
  EXPECT_NE(f[1].message.find("system_clock"), std::string::npos);
  EXPECT_NE(f[2].message.find("time()"), std::string::npos);
  EXPECT_NE(f[3].message.find("time()"), std::string::npos);
}

TEST(NoWallClock, QuietOnGoodFixture) {
  const auto r = lint_fixture("good_wall_clock.cc");
  EXPECT_TRUE(r.findings.empty()) << report_text(r);
}

TEST(NoRawRand, FlagsBadFixture) {
  const auto r = lint_fixture("bad_raw_rand.cc");
  const auto f = findings_for(r, "no-raw-rand");
  ASSERT_EQ(f.size(), 4u) << report_text(r);
  EXPECT_NE(f[0].message.find("'rand()'"), std::string::npos);
  EXPECT_NE(f[1].message.find("'srand()'"), std::string::npos);
  EXPECT_NE(f[2].message.find("random_device"), std::string::npos);
  EXPECT_NE(f[3].message.find("mt19937"), std::string::npos);
}

TEST(NoRawRand, QuietOnGoodFixture) {
  const auto r = lint_fixture("good_raw_rand.cc");
  EXPECT_TRUE(r.findings.empty()) << report_text(r);
}

TEST(UnorderedIteration, FlagsBadFixture) {
  const auto r = lint_fixture("bad_unordered_iter.cc");
  const auto f = findings_for(r, "unordered-iteration");
  ASSERT_EQ(f.size(), 2u) << report_text(r);
  EXPECT_NE(f[0].message.find("'scores'"), std::string::npos);
  EXPECT_NE(f[1].message.find("'live'"), std::string::npos);
}

TEST(UnorderedIteration, QuietOnGoodFixture) {
  const auto r = lint_fixture("good_unordered_iter.cc");
  EXPECT_TRUE(r.findings.empty()) << report_text(r);
}

TEST(PointerOrdering, FlagsBadFixture) {
  const auto r = lint_fixture("bad_pointer_ordering.cc");
  const auto f = findings_for(r, "pointer-ordering");
  ASSERT_EQ(f.size(), 2u) << report_text(r);
  EXPECT_NE(f[0].message.find("std::set"), std::string::npos);
  EXPECT_NE(f[1].message.find("std::map"), std::string::npos);
}

TEST(PointerOrdering, QuietOnGoodFixture) {
  const auto r = lint_fixture("good_pointer_ordering.cc");
  EXPECT_TRUE(r.findings.empty()) << report_text(r);
}

TEST(AtomicSpin, FlagsBadFixture) {
  const auto r = lint_fixture("bad_atomic_spin.cc");
  const auto f = findings_for(r, "atomic-spin");
  ASSERT_EQ(f.size(), 5u) << report_text(r);
  EXPECT_NE(f[0].message.find("'load()'"), std::string::npos);
  EXPECT_NE(f[1].message.find("'exchange()'"), std::string::npos);
  EXPECT_NE(f[2].message.find("'test_and_set()'"), std::string::npos);
  EXPECT_NE(f[3].message.find("'compare_exchange_weak()'"),
            std::string::npos);
  EXPECT_NE(f[4].message.find("'load()'"), std::string::npos)
      << "the for-loop condition spin must flag too";
}

TEST(AtomicSpin, QuietOnGoodFixture) {
  const auto r = lint_fixture("good_atomic_spin.cc");
  EXPECT_TRUE(r.findings.empty()) << report_text(r);
  // Both parked waits are justified-suppressed, not silently missed.
  EXPECT_EQ(r.suppressed, 2u);
}

TEST(SnapshotCoverage, FlagsUnserializedField) {
  Config cfg = fixture_config();
  cfg.audits.push_back({"BadState", "snap_bad.h", {"snap_bad_codec.cc"}});
  const auto r = run_lint(kFixtureDir, cfg, {"snap_bad.h"});
  const auto f = findings_for(r, "snapshot-coverage");
  ASSERT_EQ(f.size(), 1u) << report_text(r);
  EXPECT_NE(f[0].message.find("BadState::skew_ns"), std::string::npos);
  EXPECT_EQ(f[0].path, "snap_bad.h");
  EXPECT_EQ(f[0].line, 10);  // the field's own line, not the struct's
}

TEST(SnapshotCoverage, QuietWhenCodecCoversEveryField) {
  Config cfg = fixture_config();
  cfg.audits.push_back({"GoodState", "snap_good.h", {"snap_good_codec.cc"}});
  const auto r = run_lint(kFixtureDir, cfg, {"snap_good.h"});
  EXPECT_TRUE(r.findings.empty()) << report_text(r);
}

TEST(SnapshotCoverage, ReportsMissingStructOrFiles) {
  Config cfg = fixture_config();
  cfg.audits.push_back({"NoSuchStruct", "snap_good.h", {"snap_good_codec.cc"}});
  const auto r = run_lint(kFixtureDir, cfg, {"snap_good.h"});
  const auto f = findings_for(r, "snapshot-coverage");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_NE(f[0].message.find("not found"), std::string::npos);
}

// --- Graph rules (phase 2, over the symbol index) ------------------------

// The taint fixtures isolate call-graph propagation: the per-file rules
// are switched off, so only the graph rules can see the hazards.
Config taint_fixture_config() {
  Config cfg;
  cfg.scan = {"."};
  cfg.rules["no-wall-clock"].enabled = false;
  cfg.rules["no-raw-rand"].enabled = false;
  cfg.rules["taint-wall-clock"].paths = {"src/sim/"};
  cfg.rules["taint-raw-rand"].paths = {"src/sim/"};
  return cfg;
}

const std::vector<std::string> kTaintFiles = {
    "src/sim/entry.cc", "src/util/helper.cc", "src/util/helper.h"};

TEST(TaintRules, FlagTransitiveReachThroughHelper) {
  const auto r = run_lint(std::string(kFixtureDir) + "/taint",
                          taint_fixture_config(), kTaintFiles);
  const auto wall = findings_for(r, "taint-wall-clock");
  ASSERT_EQ(wall.size(), 2u) << report_text(r);
  // stamp() is one hop from the seed, indirect() two — both must taint,
  // and the chain in the message names every hop.
  EXPECT_EQ(wall[0].path, "src/sim/entry.cc");
  EXPECT_NE(wall[0].message.find("'app::stamp'"), std::string::npos);
  EXPECT_NE(wall[0].message.find("steady_clock"), std::string::npos);
  EXPECT_NE(wall[0].message.find("app::stamp -> app::helper_now"),
            std::string::npos);
  EXPECT_NE(wall[1].message.find(
                "app::indirect -> app::stamp -> app::helper_now"),
            std::string::npos);
  const auto rnd = findings_for(r, "taint-raw-rand");
  ASSERT_EQ(rnd.size(), 1u) << report_text(r);
  EXPECT_NE(rnd[0].message.find("'app::jitter'"), std::string::npos);
  EXPECT_NE(rnd[0].message.find("mt19937"), std::string::npos);
}

TEST(TaintRules, AllowlistedBarrierBlocksPropagation) {
  Config cfg = taint_fixture_config();
  // The helper file is now the reviewed home of both hazards: it neither
  // seeds nor propagates, so the whole tree is clean.
  cfg.rules["taint-wall-clock"].allow = {"src/util/helper."};
  cfg.rules["taint-raw-rand"].allow = {"src/util/helper."};
  const auto r =
      run_lint(std::string(kFixtureDir) + "/taint", cfg, kTaintFiles);
  EXPECT_TRUE(r.findings.empty()) << report_text(r);
}

TEST(Layering, FlagsBackEdgeAndCycleOnce) {
  Config cfg = fixture_config();
  cfg.layers = {{0, "src/util/"}, {1, "src/core/"}};
  const auto r = run_lint(std::string(kFixtureDir) + "/layers", cfg,
                          {"src/util/a.h", "src/util/bad.h", "src/core/b.h",
                           "src/util/cyc_a.h", "src/util/cyc_b.h"});
  const auto f = findings_for(r, "layering");
  ASSERT_EQ(f.size(), 2u) << report_text(r);
  // core/b.h -> util/a.h points down the DAG and stays quiet; the
  // up-reaching include and the cycle are the only findings.
  EXPECT_EQ(f[0].path, "src/util/bad.h");
  EXPECT_NE(f[0].message.find("src/core/b.h"), std::string::npos);
  EXPECT_NE(f[0].message.find("back-edge"), std::string::npos);
  EXPECT_NE(f[0].message.find("rank 0 -> rank 1"), std::string::npos);
  EXPECT_EQ(f[1].path, "src/util/cyc_a.h");
  EXPECT_NE(f[1].message.find("include cycle: src/util/cyc_a.h -> "
                              "src/util/cyc_b.h -> src/util/cyc_a.h"),
            std::string::npos);
}

TEST(SnapshotCoverage, DelegatedCodecCoversFields) {
  Config cfg = fixture_config();
  cfg.audits.push_back({"DelState", "snap.h", {"codec.cc"}});
  // codec.cc names no field at all; the helper in another TU writes both.
  const auto r = run_lint(std::string(kFixtureDir) + "/delegated", cfg,
                          {"snap.h", "codec.cc", "helper_full.cc"});
  EXPECT_TRUE(r.findings.empty()) << report_text(r);
}

TEST(SnapshotCoverage, DelegatedCodecMissingFieldStillFlags) {
  Config cfg = fixture_config();
  cfg.audits.push_back({"DelState", "snap.h", {"codec.cc"}});
  const auto r = run_lint(std::string(kFixtureDir) + "/delegated", cfg,
                          {"snap.h", "codec.cc", "helper_partial.cc"});
  const auto f = findings_for(r, "snapshot-coverage");
  ASSERT_EQ(f.size(), 1u) << report_text(r);
  EXPECT_NE(f[0].message.find("DelState::skew"), std::string::npos);
}

// --- Baseline (accept-then-ratchet) ---------------------------------------

TEST(Baseline, RoundTripMatchesByRulePathMessage) {
  LintResult r;
  r.findings.push_back({"no-raw-rand", "src/a.cc", 3, "msg one"});
  r.findings.push_back({"layering", "src/b.h", 9, "msg two"});
  std::vector<std::string> keys;
  std::string error;
  ASSERT_TRUE(parse_baseline(write_baseline(r), &keys, &error)) << error;
  ASSERT_EQ(keys.size(), 2u);
  apply_baseline(keys, &r);
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.baselined, 2u);
  EXPECT_EQ(r.baseline_stale, 0u);

  // Line numbers are not part of the key: an edit above the finding does
  // not resurrect it. A fixed finding leaves its entry stale; a new
  // finding is never absorbed.
  LintResult next;
  next.findings.push_back({"no-raw-rand", "src/a.cc", 41, "msg one"});
  next.findings.push_back({"taint-raw-rand", "src/c.cc", 1, "fresh"});
  apply_baseline(keys, &next);
  ASSERT_EQ(next.findings.size(), 1u);
  EXPECT_EQ(next.findings[0].rule, "taint-raw-rand");
  EXPECT_EQ(next.baselined, 1u);
  EXPECT_EQ(next.baseline_stale, 1u) << "'msg two' no longer fires";
}

TEST(Baseline, RejectsMalformedAcceptsCommentsAndBlanks) {
  std::vector<std::string> keys;
  std::string error;
  EXPECT_FALSE(parse_baseline("bogus line\n", &keys, &error));
  EXPECT_NE(error.find("baseline:1"), std::string::npos);
  keys.clear();
  ASSERT_TRUE(parse_baseline("# header\n\nspineless-x\tp\tm\n", &keys,
                             &error))
      << error;
  EXPECT_EQ(keys.size(), 1u);
}

TEST(Suppressions, JustifiedNolintSuppressesBothForms) {
  const auto r = lint_fixture("suppress_ok.cc");
  EXPECT_TRUE(r.findings.empty()) << report_text(r);
  EXPECT_EQ(r.suppressed, 2u);
}

TEST(Suppressions, BareOrWrongRuleNolintIsIgnored) {
  const auto r = lint_fixture("suppress_bare.cc");
  const auto f = findings_for(r, "no-raw-rand");
  ASSERT_EQ(f.size(), 2u) << report_text(r);
  EXPECT_EQ(r.suppressed, 0u);
  // The justification-less NOLINT is called out; the wrong-rule NOLINT
  // simply does not apply.
  EXPECT_NE(f[0].message.find("NOLINT ignored"), std::string::npos);
  EXPECT_EQ(f[1].message.find("NOLINT ignored"), std::string::npos);
}

// Acceptance demo: a seeded hazard — rand() appearing in src/sim/tcp.cc —
// must fail the gate under the *shipped* configuration.
TEST(SeededHazard, RandInTcpIsCaughtByShippedConfig) {
  std::string error;
  auto cfg = parse_config(shipped_config_text(), &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  cfg->audits.clear();  // audits read the real tree; not under test here

  std::vector<SourceFile> files;
  files.push_back(make_source(
      "src/sim/tcp.cc",
      "#include <cstdlib>\n"
      "int jitter() { return rand() % 3; }\n"));
  const auto r = lint_files(kSourceDir, *cfg, std::move(files));
  const auto f = findings_for(r, "no-raw-rand");
  ASSERT_EQ(f.size(), 1u) << report_text(r);
  EXPECT_EQ(f[0].path, "src/sim/tcp.cc");
  EXPECT_EQ(f[0].line, 2);
}

// Acceptance demo for the reactor engine: an unjustified raw atomic spin
// appearing in src/sim must fail the gate under the *shipped*
// configuration — the engine's own parked waits pass only because they
// carry justified NOLINTs.
TEST(SeededHazard, AtomicSpinInSimIsCaughtByShippedConfig) {
  std::string error;
  auto cfg = parse_config(shipped_config_text(), &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  cfg->audits.clear();

  std::vector<SourceFile> files;
  files.push_back(make_source(
      "src/sim/sharded_engine.cc",
      "#include <atomic>\n"
      "void wait_ready(std::atomic<bool>& ready) {\n"
      "  while (!ready.load(std::memory_order_acquire)) {}\n"
      "}\n"));
  const auto r = lint_files(kSourceDir, *cfg, std::move(files));
  const auto f = findings_for(r, "atomic-spin");
  ASSERT_EQ(f.size(), 1u) << report_text(r);
  EXPECT_EQ(f[0].path, "src/sim/sharded_engine.cc");
  EXPECT_EQ(f[0].line, 3);
}

// And the same hazard inside util/rng (the sanctioned randomness home) or
// a wall-clock read inside util/resilient (the watchdog) must NOT flag:
// the allowlists carry the rule-to-invariant mapping.
TEST(SeededHazard, AllowlistedPathsStayQuiet) {
  std::string error;
  auto cfg = parse_config(shipped_config_text(), &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  cfg->audits.clear();

  std::vector<SourceFile> files;
  files.push_back(make_source("src/util/rng.cc",
                              "unsigned seed() { return rand(); }\n"));
  files.push_back(make_source(
      "src/util/resilient.cc",
      "#include <chrono>\n"
      "auto t0 = std::chrono::steady_clock::now();\n"));
  // The SPSC ring's lock-free protocol is the reviewed atomic-spin
  // exception (it never loops on a peer in shipped code, but the
  // allowlist is what carries that review decision).
  files.push_back(make_source(
      "src/util/spsc_ring.h",
      "#include <atomic>\n"
      "void drain_all(std::atomic<bool>& empty) {\n"
      "  while (!empty.load(std::memory_order_acquire)) {}\n"
      "}\n"));
  const auto r = lint_files(kSourceDir, *cfg, std::move(files));
  EXPECT_TRUE(r.findings.empty()) << report_text(r);
}

// Acceptance demo for the taint tentpole: a wall-clock read in a src/sim
// helper that the caller only reaches transitively. The per-file rule
// flags the helper line; taint-wall-clock must additionally flag the
// caller — under the *shipped* configuration.
TEST(SeededHazard, TransitiveWallClockInSimHelperIsCaught) {
  std::string error;
  auto cfg = parse_config(shipped_config_text(), &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  cfg->audits.clear();

  std::vector<SourceFile> files;
  files.push_back(make_source(
      "src/sim/timing_helper.cc",
      "#include <chrono>\n"
      "namespace spineless::sim {\n"
      "double now_s() {\n"
      "  return std::chrono::duration<double>(\n"
      "             std::chrono::steady_clock::now().time_since_epoch())\n"
      "      .count();\n"
      "}\n"
      "}  // namespace spineless::sim\n"));
  files.push_back(make_source(
      "src/sim/stepper.cc",
      "namespace spineless::sim {\n"
      "double now_s();\n"
      "void advance() { double t = now_s(); (void)t; }\n"
      "}  // namespace spineless::sim\n"));
  const auto r = lint_files(kSourceDir, *cfg, std::move(files));
  const auto direct = findings_for(r, "no-wall-clock");
  ASSERT_EQ(direct.size(), 1u) << report_text(r);
  EXPECT_EQ(direct[0].path, "src/sim/timing_helper.cc");
  const auto taint = findings_for(r, "taint-wall-clock");
  ASSERT_EQ(taint.size(), 1u) << report_text(r);
  EXPECT_EQ(taint[0].path, "src/sim/stepper.cc");
  EXPECT_EQ(taint[0].line, 3);
  EXPECT_NE(taint[0].message.find(
                "spineless::sim::advance -> spineless::sim::now_s"),
            std::string::npos);
}

// Acceptance demo for layering: src/core reaching up into src/service is
// a back-edge under the shipped [layers] DAG.
TEST(SeededHazard, CoreIncludingServiceIsLayeringViolation) {
  std::string error;
  auto cfg = parse_config(shipped_config_text(), &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  cfg->audits.clear();

  std::vector<SourceFile> files;
  files.push_back(make_source("src/service/api.h", "#pragma once\n"));
  files.push_back(
      make_source("src/core/consumer.cc", "#include \"service/api.h\"\n"));
  const auto r = lint_files(kSourceDir, *cfg, std::move(files));
  const auto f = findings_for(r, "layering");
  ASSERT_EQ(f.size(), 1u) << report_text(r);
  EXPECT_EQ(f[0].path, "src/core/consumer.cc");
  EXPECT_EQ(f[0].line, 1);
  EXPECT_NE(f[0].message.find("back-edge"), std::string::npos);
}

// The shipped sanctioned sibling edges (flowsim/ctrl -> routing) must
// keep working, and an unsanctioned sibling edge must not.
TEST(SeededHazard, SiblingEdgesFollowTheSanctionList) {
  std::string error;
  auto cfg = parse_config(shipped_config_text(), &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  cfg->audits.clear();

  std::vector<SourceFile> files;
  files.push_back(make_source("src/routing/paths2.h", "#pragma once\n"));
  files.push_back(make_source("src/workload/gen2.h", "#pragma once\n"));
  files.push_back(make_source("src/flowsim/uses_routing.cc",
                              "#include \"routing/paths2.h\"\n"));
  files.push_back(make_source("src/flowsim/uses_workload.cc",
                              "#include \"workload/gen2.h\"\n"));
  const auto r = lint_files(kSourceDir, *cfg, std::move(files));
  const auto f = findings_for(r, "layering");
  ASSERT_EQ(f.size(), 1u) << report_text(r);
  EXPECT_EQ(f[0].path, "src/flowsim/uses_workload.cc");
  EXPECT_NE(f[0].message.find("sibling edge"), std::string::npos);
}

TEST(Reports, JsonShapeAndEscaping) {
  LintResult r;
  r.files_scanned = 2;
  r.suppressed = 1;
  r.findings.push_back(
      {"no-raw-rand", "src/a.cc", 3, "message with \"quotes\"\nand newline"});
  const std::string json = report_json(r);
  EXPECT_NE(json.find("\"finding_count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"spineless-no-raw-rand\""),
            std::string::npos);
  EXPECT_NE(json.find("\\\"quotes\\\"\\nand newline"), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\": 1"), std::string::npos);
  // CI consumers key on the schema version; bump it when fields change.
  EXPECT_NE(json.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"baselined\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"baseline_stale\": 0"), std::string::npos);
}

TEST(Reports, OutputIsDeterministic) {
  const auto a = lint_fixture("bad_wall_clock.cc");
  const auto b = lint_fixture("bad_wall_clock.cc");
  EXPECT_EQ(report_text(a), report_text(b));
  EXPECT_EQ(report_json(a), report_json(b));
}

// The tier-1 self-check: the shipped tree under the shipped config has
// zero findings. Every hazard is either fixed or carries a justified
// annotation — this is the "build refuses new hazards" guarantee.
TEST(SelfCheck, ShippedTreeIsLintClean) {
  std::string error;
  const auto cfg = parse_config(shipped_config_text(), &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  const auto r = run_lint(kSourceDir, *cfg);
  EXPECT_GT(r.files_scanned, 100u) << "scan roots look wrong";
  EXPECT_TRUE(r.findings.empty()) << report_text(r);
  // Exactly three justified suppressions remain: the reactor engine's two
  // parked waits and the watchdog's poll loop (all atomic-spin). The six
  // wall-clock NOLINTs that used to annotate table-build/setup timing are
  // gone — that timing now routes through the util/walltime barrier,
  // where the taint rule verifies the edge instead. An exact count makes
  // both a new suppression and a dead one show up here.
  EXPECT_EQ(r.suppressed, 3u);
}

// The index rides on every run: the shipped tree must produce a
// deterministic, non-trivial symbol graph, and the shipped baseline must
// be empty — the ratchet is fully tightened.
TEST(SelfCheck, ShippedTreeIndexAndBaseline) {
  std::string error;
  const auto cfg = parse_config(shipped_config_text(), &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  auto r = run_lint(kSourceDir, *cfg);
  ASSERT_NE(r.index, nullptr);
  EXPECT_GT(r.index->symbols.size(), 500u);
  EXPECT_GT(r.index->call_edges, 1000u);
  EXPECT_GT(r.index->includes.size(), 300u);
  // Unresolved/ambiguous calls are assumed clean but must stay *counted* —
  // zero would mean the policy accounting broke, not that we got lucky.
  EXPECT_GT(r.index->unresolved_calls, 0u);
  EXPECT_GT(r.index->ambiguous_calls, 0u);

  const auto again = run_lint(kSourceDir, *cfg);
  EXPECT_EQ(dump_index_json(*r.index), dump_index_json(*again.index))
      << "--index-dump must be byte-stable for the same tree";

  std::ifstream in(std::string(kSourceDir) + "/tools/lint/lint_baseline.txt");
  ASSERT_TRUE(in.good()) << "shipped baseline file missing";
  std::stringstream ss;
  ss << in.rdbuf();
  std::vector<std::string> keys;
  ASSERT_TRUE(parse_baseline(ss.str(), &keys, &error)) << error;
  EXPECT_TRUE(keys.empty()) << "shipped baseline must be empty";
  apply_baseline(keys, &r);
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.baselined, 0u);
  EXPECT_EQ(r.baseline_stale, 0u);
}

}  // namespace
}  // namespace spineless::lint
