// Tests for spineless_lint itself: the tokenizer, the lint.toml parser,
// every rule against a known-bad and a known-good fixture, the NOLINT
// suppression contract, the JSON reporter, and the self-check that the
// shipped tree is lint-clean (the static mirror of the determinism suite).
#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "lint.h"
#include "rules.h"
#include "token.h"

namespace spineless::lint {
namespace {

// Paths injected by tests/CMakeLists.txt.
const char* const kSourceDir = SPINELESS_SOURCE_DIR;
const char* const kFixtureDir = SPINELESS_LINT_FIXTURES;

std::vector<Finding> findings_for(const LintResult& r,
                                  const std::string& rule) {
  std::vector<Finding> out;
  for (const Finding& f : r.findings)
    if (f.rule == rule) out.push_back(f);
  return out;
}

// Fixture runs use an explicit config (every rule everywhere) so the
// fixtures stay independent of the shipped lint.toml's path scoping.
Config fixture_config() {
  Config cfg;
  cfg.scan = {"."};
  return cfg;
}

LintResult lint_fixture(const std::string& file) {
  return run_lint(kFixtureDir, fixture_config(), {file});
}

std::string shipped_config_text() {
  std::ifstream in(std::string(kSourceDir) + "/tools/lint/lint.toml");
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Tokenizer, ClassifiesAndCountsLines) {
  std::vector<Token> comments;
  const auto toks = tokenize(
      "// top comment\n"
      "int a = 7;  /* mid\ncomment */\n"
      "const char* s = \"steady_clock\";\n"
      "char c = 'x';\n"
      "#include <chrono>\n"
      "auto r = R\"(rand() inside raw)\";\n",
      &comments);
  ASSERT_EQ(comments.size(), 2u);
  EXPECT_EQ(comments[0].line, 1);
  EXPECT_EQ(comments[1].line, 2);

  // Nothing inside strings, chars, comments, or preprocessor lines may
  // surface as an identifier token.
  for (const Token& t : toks) {
    if (t.kind != TokKind::kIdent) continue;
    EXPECT_NE(t.text, "steady_clock") << "identifier leaked from a string";
    EXPECT_NE(t.text, "rand") << "identifier leaked from a raw string";
    EXPECT_NE(t.text, "include") << "identifier leaked from a directive";
  }
  // Line numbers survive the multi-line block comment.
  const auto s_tok = std::find_if(toks.begin(), toks.end(), [](const Token& t) {
    return t.kind == TokKind::kIdent && t.text == "s";
  });
  ASSERT_NE(s_tok, toks.end());
  EXPECT_EQ(s_tok->line, 4);
}

TEST(Tokenizer, FusesQualifierAndArrowOnly) {
  const auto toks = tokenize("a->b; std::x; c >> d;", nullptr);
  int arrows = 0;
  int quals = 0;
  int gts = 0;
  for (const Token& t : toks) {
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "->") ++arrows;
    if (t.text == "::") ++quals;
    if (t.text == ">") ++gts;
  }
  EXPECT_EQ(arrows, 1);
  EXPECT_EQ(quals, 1);
  EXPECT_EQ(gts, 2) << "'>>' must stay two tokens for template tracking";
}

TEST(Config, ParsesShippedToml) {
  std::string error;
  const auto cfg = parse_config(shipped_config_text(), &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  EXPECT_EQ(cfg->scan,
            (std::vector<std::string>{"src", "bench", "tools"}));
  // The watchdog may read wall time; the simulator may not.
  EXPECT_FALSE(cfg->applies("no-wall-clock", "src/util/resilient.cc"));
  EXPECT_TRUE(cfg->applies("no-wall-clock", "src/sim/network.cc"));
  // unordered-iteration is scoped to the determinism-critical layers.
  EXPECT_TRUE(cfg->applies("unordered-iteration", "src/sim/checkpoint.h"));
  EXPECT_FALSE(cfg->applies("unordered-iteration", "src/util/rng.cc"));
  // The Packet <-> PacketCodec audit is wired up.
  ASSERT_FALSE(cfg->audits.empty());
  EXPECT_EQ(cfg->audits[0].strct, "Packet");
  EXPECT_EQ(cfg->audits[0].header, "src/sim/packet.h");
}

TEST(Config, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(parse_config("[rule.x\nallow = []", &error).has_value());
  EXPECT_FALSE(parse_config("scan = [\"src\"\n", &error).has_value());
  EXPECT_FALSE(parse_config("[audit.x]\nstruct = \"S\"", &error).has_value())
      << "audits without header/impl must be rejected";
  EXPECT_FALSE(parse_config("mystery = true", &error).has_value());
}

TEST(NoWallClock, FlagsBadFixture) {
  const auto r = lint_fixture("bad_wall_clock.cc");
  const auto f = findings_for(r, "no-wall-clock");
  ASSERT_EQ(f.size(), 4u) << report_text(r);
  EXPECT_NE(f[0].message.find("steady_clock"), std::string::npos);
  EXPECT_NE(f[1].message.find("system_clock"), std::string::npos);
  EXPECT_NE(f[2].message.find("time()"), std::string::npos);
  EXPECT_NE(f[3].message.find("time()"), std::string::npos);
}

TEST(NoWallClock, QuietOnGoodFixture) {
  const auto r = lint_fixture("good_wall_clock.cc");
  EXPECT_TRUE(r.findings.empty()) << report_text(r);
}

TEST(NoRawRand, FlagsBadFixture) {
  const auto r = lint_fixture("bad_raw_rand.cc");
  const auto f = findings_for(r, "no-raw-rand");
  ASSERT_EQ(f.size(), 4u) << report_text(r);
  EXPECT_NE(f[0].message.find("'rand()'"), std::string::npos);
  EXPECT_NE(f[1].message.find("'srand()'"), std::string::npos);
  EXPECT_NE(f[2].message.find("random_device"), std::string::npos);
  EXPECT_NE(f[3].message.find("mt19937"), std::string::npos);
}

TEST(NoRawRand, QuietOnGoodFixture) {
  const auto r = lint_fixture("good_raw_rand.cc");
  EXPECT_TRUE(r.findings.empty()) << report_text(r);
}

TEST(UnorderedIteration, FlagsBadFixture) {
  const auto r = lint_fixture("bad_unordered_iter.cc");
  const auto f = findings_for(r, "unordered-iteration");
  ASSERT_EQ(f.size(), 2u) << report_text(r);
  EXPECT_NE(f[0].message.find("'scores'"), std::string::npos);
  EXPECT_NE(f[1].message.find("'live'"), std::string::npos);
}

TEST(UnorderedIteration, QuietOnGoodFixture) {
  const auto r = lint_fixture("good_unordered_iter.cc");
  EXPECT_TRUE(r.findings.empty()) << report_text(r);
}

TEST(PointerOrdering, FlagsBadFixture) {
  const auto r = lint_fixture("bad_pointer_ordering.cc");
  const auto f = findings_for(r, "pointer-ordering");
  ASSERT_EQ(f.size(), 2u) << report_text(r);
  EXPECT_NE(f[0].message.find("std::set"), std::string::npos);
  EXPECT_NE(f[1].message.find("std::map"), std::string::npos);
}

TEST(PointerOrdering, QuietOnGoodFixture) {
  const auto r = lint_fixture("good_pointer_ordering.cc");
  EXPECT_TRUE(r.findings.empty()) << report_text(r);
}

TEST(AtomicSpin, FlagsBadFixture) {
  const auto r = lint_fixture("bad_atomic_spin.cc");
  const auto f = findings_for(r, "atomic-spin");
  ASSERT_EQ(f.size(), 5u) << report_text(r);
  EXPECT_NE(f[0].message.find("'load()'"), std::string::npos);
  EXPECT_NE(f[1].message.find("'exchange()'"), std::string::npos);
  EXPECT_NE(f[2].message.find("'test_and_set()'"), std::string::npos);
  EXPECT_NE(f[3].message.find("'compare_exchange_weak()'"),
            std::string::npos);
  EXPECT_NE(f[4].message.find("'load()'"), std::string::npos)
      << "the for-loop condition spin must flag too";
}

TEST(AtomicSpin, QuietOnGoodFixture) {
  const auto r = lint_fixture("good_atomic_spin.cc");
  EXPECT_TRUE(r.findings.empty()) << report_text(r);
  // Both parked waits are justified-suppressed, not silently missed.
  EXPECT_EQ(r.suppressed, 2u);
}

TEST(SnapshotCoverage, FlagsUnserializedField) {
  Config cfg = fixture_config();
  cfg.audits.push_back({"BadState", "snap_bad.h", {"snap_bad_codec.cc"}});
  const auto r = run_lint(kFixtureDir, cfg, {"snap_bad.h"});
  const auto f = findings_for(r, "snapshot-coverage");
  ASSERT_EQ(f.size(), 1u) << report_text(r);
  EXPECT_NE(f[0].message.find("BadState::skew_ns"), std::string::npos);
  EXPECT_EQ(f[0].path, "snap_bad.h");
  EXPECT_EQ(f[0].line, 10);  // the field's own line, not the struct's
}

TEST(SnapshotCoverage, QuietWhenCodecCoversEveryField) {
  Config cfg = fixture_config();
  cfg.audits.push_back({"GoodState", "snap_good.h", {"snap_good_codec.cc"}});
  const auto r = run_lint(kFixtureDir, cfg, {"snap_good.h"});
  EXPECT_TRUE(r.findings.empty()) << report_text(r);
}

TEST(SnapshotCoverage, ReportsMissingStructOrFiles) {
  Config cfg = fixture_config();
  cfg.audits.push_back({"NoSuchStruct", "snap_good.h", {"snap_good_codec.cc"}});
  const auto r = run_lint(kFixtureDir, cfg, {"snap_good.h"});
  const auto f = findings_for(r, "snapshot-coverage");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_NE(f[0].message.find("not found"), std::string::npos);
}

TEST(Suppressions, JustifiedNolintSuppressesBothForms) {
  const auto r = lint_fixture("suppress_ok.cc");
  EXPECT_TRUE(r.findings.empty()) << report_text(r);
  EXPECT_EQ(r.suppressed, 2u);
}

TEST(Suppressions, BareOrWrongRuleNolintIsIgnored) {
  const auto r = lint_fixture("suppress_bare.cc");
  const auto f = findings_for(r, "no-raw-rand");
  ASSERT_EQ(f.size(), 2u) << report_text(r);
  EXPECT_EQ(r.suppressed, 0u);
  // The justification-less NOLINT is called out; the wrong-rule NOLINT
  // simply does not apply.
  EXPECT_NE(f[0].message.find("NOLINT ignored"), std::string::npos);
  EXPECT_EQ(f[1].message.find("NOLINT ignored"), std::string::npos);
}

// Acceptance demo: a seeded hazard — rand() appearing in src/sim/tcp.cc —
// must fail the gate under the *shipped* configuration.
TEST(SeededHazard, RandInTcpIsCaughtByShippedConfig) {
  std::string error;
  auto cfg = parse_config(shipped_config_text(), &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  cfg->audits.clear();  // audits read the real tree; not under test here

  std::vector<SourceFile> files;
  files.push_back(make_source(
      "src/sim/tcp.cc",
      "#include <cstdlib>\n"
      "int jitter() { return rand() % 3; }\n"));
  const auto r = lint_files(kSourceDir, *cfg, std::move(files));
  const auto f = findings_for(r, "no-raw-rand");
  ASSERT_EQ(f.size(), 1u) << report_text(r);
  EXPECT_EQ(f[0].path, "src/sim/tcp.cc");
  EXPECT_EQ(f[0].line, 2);
}

// Acceptance demo for the reactor engine: an unjustified raw atomic spin
// appearing in src/sim must fail the gate under the *shipped*
// configuration — the engine's own parked waits pass only because they
// carry justified NOLINTs.
TEST(SeededHazard, AtomicSpinInSimIsCaughtByShippedConfig) {
  std::string error;
  auto cfg = parse_config(shipped_config_text(), &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  cfg->audits.clear();

  std::vector<SourceFile> files;
  files.push_back(make_source(
      "src/sim/sharded_engine.cc",
      "#include <atomic>\n"
      "void wait_ready(std::atomic<bool>& ready) {\n"
      "  while (!ready.load(std::memory_order_acquire)) {}\n"
      "}\n"));
  const auto r = lint_files(kSourceDir, *cfg, std::move(files));
  const auto f = findings_for(r, "atomic-spin");
  ASSERT_EQ(f.size(), 1u) << report_text(r);
  EXPECT_EQ(f[0].path, "src/sim/sharded_engine.cc");
  EXPECT_EQ(f[0].line, 3);
}

// And the same hazard inside util/rng (the sanctioned randomness home) or
// a wall-clock read inside util/resilient (the watchdog) must NOT flag:
// the allowlists carry the rule-to-invariant mapping.
TEST(SeededHazard, AllowlistedPathsStayQuiet) {
  std::string error;
  auto cfg = parse_config(shipped_config_text(), &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  cfg->audits.clear();

  std::vector<SourceFile> files;
  files.push_back(make_source("src/util/rng.cc",
                              "unsigned seed() { return rand(); }\n"));
  files.push_back(make_source(
      "src/util/resilient.cc",
      "#include <chrono>\n"
      "auto t0 = std::chrono::steady_clock::now();\n"));
  // The SPSC ring's lock-free protocol is the reviewed atomic-spin
  // exception (it never loops on a peer in shipped code, but the
  // allowlist is what carries that review decision).
  files.push_back(make_source(
      "src/util/spsc_ring.h",
      "#include <atomic>\n"
      "void drain_all(std::atomic<bool>& empty) {\n"
      "  while (!empty.load(std::memory_order_acquire)) {}\n"
      "}\n"));
  const auto r = lint_files(kSourceDir, *cfg, std::move(files));
  EXPECT_TRUE(r.findings.empty()) << report_text(r);
}

TEST(Reports, JsonShapeAndEscaping) {
  LintResult r;
  r.files_scanned = 2;
  r.suppressed = 1;
  r.findings.push_back(
      {"no-raw-rand", "src/a.cc", 3, "message with \"quotes\"\nand newline"});
  const std::string json = report_json(r);
  EXPECT_NE(json.find("\"finding_count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"spineless-no-raw-rand\""),
            std::string::npos);
  EXPECT_NE(json.find("\\\"quotes\\\"\\nand newline"), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\": 1"), std::string::npos);
}

TEST(Reports, OutputIsDeterministic) {
  const auto a = lint_fixture("bad_wall_clock.cc");
  const auto b = lint_fixture("bad_wall_clock.cc");
  EXPECT_EQ(report_text(a), report_text(b));
  EXPECT_EQ(report_json(a), report_json(b));
}

// The tier-1 self-check: the shipped tree under the shipped config has
// zero findings. Every hazard is either fixed or carries a justified
// annotation — this is the "build refuses new hazards" guarantee.
TEST(SelfCheck, ShippedTreeIsLintClean) {
  std::string error;
  const auto cfg = parse_config(shipped_config_text(), &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  const auto r = run_lint(kSourceDir, *cfg);
  EXPECT_GT(r.files_scanned, 100u) << "scan roots look wrong";
  EXPECT_TRUE(r.findings.empty()) << report_text(r);
  // The four table-build timing sites in network.cc, the reactor engine's
  // two parked waits, and the watchdog's poll loop are annotated, not
  // silently skipped — prove the suppressions are actually exercised.
  EXPECT_GE(r.suppressed, 7u);
}

}  // namespace
}  // namespace spineless::lint
