// Fixture: a serialized struct whose codec covers every field —
// spineless-snapshot-coverage must stay quiet.
#pragma once
#include <cstdint>

struct GoodState {
  std::uint64_t seq = 0;
  std::uint32_t flags = 0;
  double ratio = 1.0;
};
