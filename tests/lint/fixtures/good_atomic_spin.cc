// Fixture: atomic uses spineless-atomic-spin must stay quiet on — parked
// waits with justified suppressions, and atomic reads outside loop
// conditions (plain branches, loop bodies, for-loop init/step).
#include <atomic>

std::atomic<bool> ready{false};
std::atomic<std::uint64_t> gen{0};
std::atomic<int> count{0};

void parked_wait() {
  // NOLINTNEXTLINE(spineless-atomic-spin): parks in the futex-backed atomic wait — not a busy spin
  while (!ready.load(std::memory_order_acquire)) ready.wait(false);
}

void parked_gate(std::uint64_t seen) {
  while (gen.load(std::memory_order_acquire) == seen) gen.wait(seen);  // NOLINT(spineless-atomic-spin): round gate, parks between rounds
}

bool branch_not_loop() {
  // An atomic read in a plain branch is not a spin.
  if (ready.load(std::memory_order_acquire)) return true;
  return false;
}

int load_in_body_not_condition(int n) {
  int sum = 0;
  for (int i = 0; i < n; ++i) sum += count.load(std::memory_order_relaxed);
  return sum;
}

void load_in_for_init() {
  for (int c = count.load(std::memory_order_relaxed); c > 0; --c) {
  }
}
