// Fixture: justified suppressions in both forms — the findings underneath
// must be suppressed (and counted as suppressed, not findings).
#include <chrono>
#include <cstdlib>

double watchdog_elapsed() {
  return std::chrono::duration<double>(
             // NOLINTNEXTLINE(spineless-no-wall-clock): watchdog heartbeat, never feeds sim state
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int legacy_shim() {
  return rand();  // NOLINT(spineless-no-raw-rand): fixture-only justification text
}
