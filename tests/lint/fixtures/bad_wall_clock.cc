// Fixture: every wall-clock shape spineless-no-wall-clock must flag.
// Never compiled — tokenized by tests/lint/lint_test.cc.
#include <chrono>
#include <ctime>

double bad_steady() {
  const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

long bad_system() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

long bad_classic() { return time(nullptr); }

long bad_qualified() { return std::time(0); }
