// Fixture: pointer-keyed ordered containers spineless-pointer-ordering
// must flag — iteration order is allocation-address order.
#include <map>
#include <set>

struct Flow {
  int id = 0;
};

using FlowOrder = std::set<Flow*>;

std::map<const Flow*, int> bad_weights;

int size_of(const FlowOrder& order) { return static_cast<int>(order.size()); }
