// Fixture codec for snap_bad.h: serializes seq, flags, and ratio but not
// skew_ns.
#include "snap_bad.h"

struct Writer {
  void u64(std::uint64_t v);
  void u32(std::uint32_t v);
  void f64(double v);
};

void save_bad(const BadState& s, Writer& w) {
  w.u64(s.seq);
  w.u32(s.flags);
  w.f64(s.ratio);
}
