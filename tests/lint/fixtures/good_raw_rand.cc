// Fixture: shapes spineless-no-raw-rand must stay quiet on — the repo's
// seeded Rng, and identifiers that merely contain/equal the banned names.
struct Rng {
  unsigned long next();
  double uniform_real();
};

unsigned long fine_seeded(Rng& rng) { return rng.next(); }

int fine_identifier(int rand) { return rand + 1; }

struct Sampler {
  int draw(int n) const { return n; }
};

// Member access to a field named like a banned call stays quiet.
struct Legacy {
  int rand = 0;
};

int fine_member(const Sampler& s, const Legacy& l) {
  return s.draw(3) + l.rand;
}
