// Fixture: shapes spineless-no-wall-clock must stay quiet on — sim time
// from the event loop, identifiers merely named `time`, member calls.
using Time = long long;

struct Sim {
  Time now() const { return now_; }
  Time now_ = 0;
};

double fine_sim_time(const Sim& s) { return static_cast<double>(s.now()); }

long fine_parameter(long time_budget) { return time_budget; }

struct Clock {
  long time(int scale) const { return scale; }
};

long fine_member_call(const Clock& c) { return c.time(0); }

const char* fine_in_string() { return "steady_clock in a string literal"; }
