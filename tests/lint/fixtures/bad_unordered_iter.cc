// Fixture: hash-order iteration shapes spineless-unordered-iteration must
// flag — a range-for over an unordered_map and an explicit begin() walk.
#include <cstddef>
#include <unordered_map>
#include <unordered_set>

std::size_t bad_range_for(const std::unordered_map<int, int>& scores) {
  std::size_t sum = 0;
  for (const auto& [key, value] : scores) {
    sum += static_cast<std::size_t>(value);
  }
  return sum;
}

int bad_begin() {
  std::unordered_set<int> live;
  live.insert(3);
  return *live.begin();
}
