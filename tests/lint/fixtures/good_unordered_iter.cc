// Fixture: unordered-container uses spineless-unordered-iteration must
// stay quiet on — point lookups, membership tests, and range-fors over
// ordered containers.
#include <cstddef>
#include <unordered_map>
#include <vector>

int fine_lookup(const std::unordered_map<int, int>& scores, int key) {
  const auto it = scores.find(key);
  return it == scores.end() ? 0 : it->second;
}

bool fine_membership(const std::unordered_map<int, int>& scores, int key) {
  return scores.count(key) != 0;
}

std::size_t fine_vector_walk(const std::vector<int>& ordered) {
  std::size_t sum = 0;
  for (const int v : ordered) sum += static_cast<std::size_t>(v);
  return sum;
}
