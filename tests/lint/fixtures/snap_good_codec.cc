// Fixture codec for snap_good.h: every field is saved and loaded.
#include "snap_good.h"

struct Writer {
  void u64(std::uint64_t v);
  void u32(std::uint32_t v);
  void f64(double v);
};

struct Reader {
  std::uint64_t u64();
  std::uint32_t u32();
  double f64();
};

void save_good(const GoodState& s, Writer& w) {
  w.u64(s.seq);
  w.u32(s.flags);
  w.f64(s.ratio);
}

GoodState load_good(Reader& r) {
  GoodState s;
  s.seq = r.u64();
  s.flags = r.u32();
  s.ratio = r.f64();
  return s;
}
