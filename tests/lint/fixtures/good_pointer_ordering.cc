// Fixture: ordered-container uses spineless-pointer-ordering must stay
// quiet on — stable-id keys, and pointers as mapped VALUES (only the key
// drives iteration order).
#include <cstdint>
#include <map>
#include <set>
#include <string>

std::map<std::uint32_t, int> fine_weights_by_oid;

std::set<std::string> fine_names;

std::map<std::string, std::set<int>*> fine_pointer_values;
