// The protected layer: none of these functions touch a clock or an RNG
// directly — only the taint rules can see the hazard behind the helpers.
#include "util/helper.h"

namespace app {

double stamp() { return helper_now(); }

long jitter() { return helper_draw(); }

// Two hops from the seed: taint must propagate through stamp().
double indirect() { return stamp() * 2.0; }

}  // namespace app
