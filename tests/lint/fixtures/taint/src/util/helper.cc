#include "util/helper.h"

#include <chrono>
#include <random>

namespace app {

double helper_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

long helper_draw() {
  std::mt19937 gen(7);
  return static_cast<long>(gen());
}

}  // namespace app
