// Taint fixture: helpers whose hazards the sim entry points reach only
// transitively. The per-file rules are disabled in the fixture config so
// the tests isolate the call-graph propagation.
#pragma once

namespace app {

double helper_now();
long helper_draw();

}  // namespace app
