// Writes epoch but forgets skew: the delegated closure must still flag
// the missing field.
#include "snap.h"

#include <ostream>

void write_parts(std::ostream& os, const DelState& s) { os << s.epoch; }
