// Delegated-codec fixture: the codec file forwards to a helper in another
// TU; snapshot-coverage v2 must resolve the call to count the helper's
// field mentions.
#pragma once
#include <iosfwd>

struct DelState {
  int epoch = 0;
  double skew = 0.0;
};
