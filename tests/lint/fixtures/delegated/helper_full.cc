#include "snap.h"

#include <ostream>

void write_parts(std::ostream& os, const DelState& s) {
  os << s.epoch << s.skew;
}
