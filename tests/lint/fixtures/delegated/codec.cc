// The codec itself never names a field — everything is delegated.
#include "snap.h"

#include <ostream>

void write_parts(std::ostream& os, const DelState& s);

void save_del(std::ostream& os, const DelState& s) { write_parts(os, s); }
