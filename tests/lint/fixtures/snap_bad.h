// Fixture: a serialized struct with a field its codec never mentions —
// spineless-snapshot-coverage must flag `skew_ns` (and only it).
#pragma once
#include <cstdint>

struct BadState {
  std::uint64_t seq = 0;
  std::uint32_t flags = 0;
  double ratio = 1.0;
  std::int64_t skew_ns = 0;  // added after the codec; never serialized

  bool ok() const { return flags == 0; }  // functions are not fields
};
