// Fixture: suppressions that must NOT take effect — a NOLINT without
// justification text, and a NOLINT naming the wrong rule.
#include <cstdlib>

int no_reason() {
  return rand();  // NOLINT(spineless-no-raw-rand)
}

int wrong_rule() {
  return rand();  // NOLINT(spineless-no-wall-clock): justification for the wrong rule
}
