// Fixture: every busy-wait shape spineless-atomic-spin must flag — a raw
// spin on an atomic in a loop condition, with no justification.
#include <atomic>

std::atomic<bool> ready{false};
std::atomic<bool> lock{false};
std::atomic_flag latch = ATOMIC_FLAG_INIT;
std::atomic<int> head{0};
std::atomic<bool> done{false};

void spin_on_load() {
  while (!ready.load(std::memory_order_acquire)) {
  }
}

void spin_on_exchange() {
  while (lock.exchange(true, std::memory_order_acquire)) {
  }
}

void spin_on_test_and_set() {
  while (latch.test_and_set(std::memory_order_acquire)) {
  }
}

void spin_on_cas() {
  int h = head.load(std::memory_order_relaxed);
  while (!head.compare_exchange_weak(h, h + 1, std::memory_order_acq_rel)) {
  }
}

void spin_in_for_condition() {
  for (int i = 0; !done.load(std::memory_order_acquire); ++i) {
  }
}
