// Include cycle fixture: cyc_a -> cyc_b -> cyc_a. Intra-layer, so only
// the cycle detector (not the rank check) may report it — exactly once.
#pragma once
#include "util/cyc_b.h"

namespace l {
int cyc_a();
}  // namespace l
