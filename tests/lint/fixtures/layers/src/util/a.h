#pragma once

namespace l {
int low();
}  // namespace l
