#pragma once
#include "util/cyc_a.h"

namespace l {
int cyc_b();
}  // namespace l
