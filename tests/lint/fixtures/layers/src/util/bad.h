// Layering fixture: util (rank 0) reaching up into core (rank 1) is a
// back-edge.
#pragma once
#include "core/b.h"

namespace l {
int bad();
}  // namespace l
