// core (rank 1) -> util (rank 0) points down the DAG: allowed.
#pragma once
#include "util/a.h"

namespace l {
int high();
}  // namespace l
