// Fixture: every raw-randomness shape spineless-no-raw-rand must flag.
#include <cstdlib>
#include <random>

int bad_rand() { return rand() % 7; }

void bad_srand() { srand(42); }

unsigned bad_device() {
  std::random_device rd;
  return rd();
}

unsigned bad_twister() {
  std::mt19937 gen;
  return gen();
}
