// Tests for the phase-1 cross-TU symbol index: definition scanning,
// call-edge resolution (and its explicit assume-clean-but-counted policy
// for unresolved/ambiguous calls), the #include graph, and the
// deterministic JSON dump.
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "index.h"
#include "lint.h"

namespace spineless::lint {
namespace {

Index build(const std::vector<SourceFile>& files) {
  return build_index(Config{}, files);
}

const Symbol* sym(const Index& idx, const std::string& qname) {
  return idx.find(qname);
}

bool has_edge(const Index& idx, const std::string& from,
              const std::string& to) {
  const Symbol* f = idx.find(from);
  const Symbol* t = idx.find(to);
  if (f == nullptr || t == nullptr) return false;
  const auto t_id = static_cast<std::size_t>(t - idx.symbols.data());
  for (const std::size_t c : f->callees)
    if (c == t_id) return true;
  return false;
}

TEST(IndexDefs, ScopesMethodsCtorsAndTrailingReturns) {
  std::vector<SourceFile> files;
  files.push_back(make_source(
      "a.h",
      "namespace ns {\n"
      "class Widget {\n"
      " public:\n"
      "  Widget() : x_(0) {}\n"
      "  int get() const { return x_; }\n"
      "  auto compute(int v) -> int { return v + x_; }\n"
      " private:\n"
      "  int x_ = 0;\n"
      "};\n"
      "int free_fn();\n"
      "}  // namespace ns\n"));
  files.push_back(make_source(
      "b.cc",
      "#include \"a.h\"\n"
      "namespace ns {\n"
      "struct Gadget {\n"
      "  explicit Gadget(int v);\n"
      "  int v_;\n"
      "};\n"
      "Gadget::Gadget(int v) : v_(v) {}\n"
      "}  // namespace ns\n"));
  const Index idx = build(files);

  ASSERT_NE(sym(idx, "ns::Widget::Widget"), nullptr);
  ASSERT_NE(sym(idx, "ns::Widget::get"), nullptr);
  ASSERT_NE(sym(idx, "ns::Widget::compute"), nullptr)
      << "trailing-return definitions must be recognized";
  ASSERT_NE(sym(idx, "ns::Gadget::Gadget"), nullptr)
      << "out-of-class ctor with init list must be recognized";
  // Declarations are not definitions.
  EXPECT_EQ(sym(idx, "ns::free_fn"), nullptr);
  // Symbols are emitted in qualified-name order (dump determinism).
  for (std::size_t i = 1; i < idx.symbols.size(); ++i)
    EXPECT_LT(idx.symbols[i - 1].qname, idx.symbols[i].qname);
}

TEST(IndexCalls, QualifiedSuffixAndUnqualifiedUniqueResolve) {
  std::vector<SourceFile> files;
  files.push_back(make_source(
      "lib.cc",
      "namespace ns {\n"
      "int helper() { return 1; }\n"
      "int free_fn() { return helper(); }\n"
      "}  // namespace ns\n"));
  files.push_back(make_source(
      "main.cc",
      "namespace ns { int free_fn(); }\n"
      "int main() { return ns::free_fn(); }\n"));
  const Index idx = build(files);
  EXPECT_TRUE(has_edge(idx, "ns::free_fn", "ns::helper"))
      << "unqualified call with a unique candidate must resolve";
  EXPECT_TRUE(has_edge(idx, "main", "ns::free_fn"))
      << "qualified call must resolve by suffix match";
}

TEST(IndexCalls, PolicyCountsUnresolvedAndAmbiguous) {
  std::vector<SourceFile> files;
  files.push_back(
      make_source("m1.cc", "namespace a { int mk() { return 1; } }\n"));
  files.push_back(
      make_source("m2.cc", "namespace b { int mk() { return 2; } }\n"));
  files.push_back(make_source(
      "use.cc",
      "#include <cstdio>\n"
      "int use_both() { return mk() + printf(\"\"); }\n"));
  files.push_back(make_source(
      "pref.cc",
      "namespace c { int mk() { return 3; } }\n"
      "int prefer() { return mk(); }\n"));
  const Index idx = build(files);

  // mk() from use.cc has two candidates in other files and none here:
  // ambiguous — assumed clean, counted. printf has no candidate at all:
  // unresolved — assumed clean, counted.
  const Symbol* use = sym(idx, "use_both");
  ASSERT_NE(use, nullptr);
  EXPECT_EQ(use->ambiguous_calls, 1u);
  EXPECT_EQ(use->unresolved_calls, 1u);
  EXPECT_TRUE(use->callees.empty());

  // mk() from pref.cc has three candidates but exactly one in the same
  // file: the same-file definition wins.
  EXPECT_TRUE(has_edge(idx, "prefer", "c::mk"));
  const Symbol* prefer = sym(idx, "prefer");
  ASSERT_NE(prefer, nullptr);
  EXPECT_EQ(prefer->ambiguous_calls, 0u);

  EXPECT_GE(idx.ambiguous_calls, 1u);
  EXPECT_GE(idx.unresolved_calls, 1u);
}

TEST(IndexIncludes, ResolvesAgainstScannedSetOnly) {
  std::vector<SourceFile> files;
  files.push_back(make_source("src/x/dep.h", "#pragma once\n"));
  files.push_back(make_source(
      "src/x/top.h",
      "#pragma once\n"
      "#include \"x/dep.h\"\n"
      "#include <vector>\n"
      "#include \"not/in/tree.h\"\n"));
  const Index idx = build(files);
  ASSERT_EQ(idx.includes.size(), 1u)
      << "system and out-of-tree includes must not create edges";
  EXPECT_EQ(idx.files[idx.includes[0].from], "src/x/top.h");
  EXPECT_EQ(idx.files[idx.includes[0].to], "src/x/dep.h");
  EXPECT_EQ(idx.includes[0].line, 2);
}

TEST(IndexIncludes, LayerAssignmentFollowsConfig) {
  Config cfg;
  cfg.layers = {{0, "src/util/"}, {1, "src/sim/"}};
  std::vector<SourceFile> files;
  files.push_back(make_source("src/util/u.h", "#pragma once\n"));
  files.push_back(make_source("src/sim/s.h", "#pragma once\n"));
  files.push_back(make_source("doc/readme.h", "#pragma once\n"));
  const Index idx = build_index(cfg, files);
  ASSERT_EQ(idx.files.size(), 3u);
  for (std::size_t i = 0; i < idx.files.size(); ++i) {
    if (idx.files[i] == "src/util/u.h") {
      EXPECT_EQ(idx.file_rank[i], 0);
      EXPECT_EQ(idx.file_layer[i], "src/util/");
    } else if (idx.files[i] == "src/sim/s.h") {
      EXPECT_EQ(idx.file_rank[i], 1);
    } else {
      EXPECT_EQ(idx.file_rank[i], -1) << "unlayered files get rank -1";
    }
  }
}

TEST(IndexDump, ByteStableAndCarriesPolicyCounters) {
  std::vector<SourceFile> files;
  files.push_back(make_source(
      "z.cc",
      "int callee() { return 0; }\n"
      "int caller() { return callee() + unknown_fn(); }\n"));
  const Index a = build(files);
  const Index b = build(files);
  const std::string dump = dump_index_json(a);
  EXPECT_EQ(dump, dump_index_json(b));
  EXPECT_NE(dump.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(dump.find("\"unresolved_calls\": 1"), std::string::npos)
      << "the assume-clean-but-counted policy must surface in the dump";
  EXPECT_NE(dump.find("\"call_edges\": 1"), std::string::npos);
}

}  // namespace
}  // namespace spineless::lint
