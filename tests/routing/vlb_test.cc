#include "routing/vlb.h"

#include <gtest/gtest.h>

#include <set>

#include "routing/paths.h"
#include "topo/builders.h"

namespace spineless::routing {
namespace {

TEST(Vlb, PathsAreValidAndSimple) {
  const Graph g = topo::make_dring(6, 2, 1).graph;
  for (NodeId dst = 1; dst < 6; ++dst) {
    const auto paths = vlb_paths(g, 0, dst, 8, 1);
    EXPECT_FALSE(paths.empty());
    EXPECT_TRUE(paths_valid(g, 0, dst, paths));
  }
}

TEST(Vlb, DeterministicForSeed) {
  const Graph g = topo::make_rrg(14, 4, 1, 3);
  EXPECT_EQ(vlb_paths(g, 0, 7, 6, 42), vlb_paths(g, 0, 7, 6, 42));
}

TEST(Vlb, IntermediateCountCapRespected) {
  const Graph g = topo::make_rrg(20, 4, 1, 3);
  const auto paths = vlb_paths(g, 0, 10, 4, 1);
  EXPECT_LE(paths.size(), 4u);
}

TEST(Vlb, ProvidesDetourDiversityForAdjacentRacks) {
  // Like Shortest-Union, VLB gives adjacent flat-network racks more than
  // the single direct path.
  const Graph g = topo::make_dring(6, 3, 1).graph;
  const NodeId v = g.neighbors(0)[0].neighbor;
  const auto paths = vlb_paths(g, 0, v, 16, 5);
  EXPECT_GT(paths.size(), 1u);
}

TEST(Vlb, NoDuplicatePaths) {
  const Graph g = topo::make_rrg(16, 5, 1, 9);
  const auto paths = vlb_paths(g, 0, 9, 14, 2);
  const std::set<Path> dedup(paths.begin(), paths.end());
  EXPECT_EQ(dedup.size(), paths.size());
}

}  // namespace
}  // namespace spineless::routing
