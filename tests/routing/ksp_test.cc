#include "routing/ksp.h"

#include <gtest/gtest.h>

#include <set>

#include "routing/paths.h"
#include "topo/analysis.h"
#include "topo/builders.h"

namespace spineless::routing {
namespace {

Graph cycle_graph(int n) {
  Graph g(n);
  for (NodeId i = 0; i < n; ++i) g.add_link(i, (i + 1) % n);
  return g;
}

TEST(YenKsp, FirstPathIsShortest) {
  const Graph g = topo::make_rrg(16, 4, 1, 21);
  const auto dist = topo::bfs_distances(g, 0);
  for (NodeId dst = 1; dst < 16; ++dst) {
    const auto paths = yen_ksp(g, 0, dst, 1);
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_EQ(path_length(paths[0]), dist[static_cast<std::size_t>(dst)]);
  }
}

TEST(YenKsp, CycleHasExactlyTwoSimplePaths) {
  const Graph g = cycle_graph(8);
  const auto paths = yen_ksp(g, 0, 3, 10);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(path_length(paths[0]), 3);
  EXPECT_EQ(path_length(paths[1]), 5);
}

TEST(YenKsp, PathsAreDistinctSimpleAndValid) {
  const Graph g = topo::make_dring(6, 2, 1).graph;
  for (NodeId dst = 1; dst < 6; ++dst) {
    const auto paths = yen_ksp(g, 0, dst, 8);
    EXPECT_TRUE(paths_valid(g, 0, dst, paths));
    const std::set<Path> dedup(paths.begin(), paths.end());
    EXPECT_EQ(dedup.size(), paths.size());
  }
}

TEST(YenKsp, NonDecreasingLengths) {
  const Graph g = topo::make_rrg(14, 4, 1, 13);
  const auto paths = yen_ksp(g, 0, 7, 12);
  for (std::size_t i = 1; i < paths.size(); ++i)
    EXPECT_LE(paths[i - 1].size(), paths[i].size());
}

TEST(YenKsp, LeafSpineKShortest) {
  // Leaf to leaf in leaf-spine(4, 3): exactly 3 two-hop paths, then
  // longer 4-hop paths through another leaf.
  const Graph g = topo::make_leaf_spine(4, 3);
  const auto paths = yen_ksp(g, 0, 1, 4);
  ASSERT_EQ(paths.size(), 4u);
  EXPECT_EQ(path_length(paths[0]), 2);
  EXPECT_EQ(path_length(paths[2]), 2);
  EXPECT_EQ(path_length(paths[3]), 4);
}

TEST(YenKsp, UnreachableGivesEmpty) {
  Graph g(3);
  g.add_link(0, 1);
  EXPECT_TRUE(yen_ksp(g, 0, 2, 3).empty());
}

TEST(YenKsp, KLargerThanPathCountReturnsAll) {
  const Graph g = cycle_graph(5);
  EXPECT_EQ(yen_ksp(g, 0, 2, 100).size(), 2u);
}

TEST(YenKsp, MatchesExhaustiveEnumerationOnSmallGraph) {
  // On a small dense graph, Yen with huge k must find every simple path,
  // in length order, matching bounded DFS enumeration.
  const Graph g = topo::make_rrg(8, 3, 1, 7);
  for (NodeId dst = 1; dst < 8; ++dst) {
    auto all = enumerate_bounded_paths(g, 0, dst, 7, 100000);
    std::sort(all.begin(), all.end(), [](const Path& a, const Path& b) {
      return a.size() < b.size();
    });
    const auto yen = yen_ksp(g, 0, dst, all.size());
    ASSERT_EQ(yen.size(), all.size()) << "dst " << dst;
    for (std::size_t i = 0; i < yen.size(); ++i)
      EXPECT_EQ(yen[i].size(), all[i].size());
  }
}

}  // namespace
}  // namespace spineless::routing
