#include "routing/disjoint.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "routing/paths.h"
#include "topo/analysis.h"
#include "topo/builders.h"

namespace spineless::routing {
namespace {

Graph cycle_graph(int n) {
  Graph g(n);
  for (NodeId i = 0; i < n; ++i) g.add_link(i, (i + 1) % n);
  return g;
}

TEST(CommonNeighbors, LeafSpineLeafPairSharesAllSpines) {
  const Graph g = topo::make_leaf_spine(4, 3);
  EXPECT_EQ(common_neighbor_count(g, 0, 1), 3);
  // A leaf and a spine share the other leaves as neighbors... a leaf's
  // neighbors are spines only; a spine's neighbors are leaves only.
  EXPECT_EQ(common_neighbor_count(
                g, 0, topo::leaf_spine_num_leaves(4, 3)),
            0);
}

TEST(CommonNeighbors, DRingAdjacentPairHasTwoNPlusZero) {
  for (int n : {1, 2, 3}) {
    const auto d = topo::make_dring(7, n, 1);
    const NodeId v = d.graph.neighbors(0)[0].neighbor;
    EXPECT_EQ(common_neighbor_count(d.graph, 0, v), 2 * n) << "n=" << n;
  }
}

TEST(MaxDisjointSu2, LeafSpineLeafPairsEqualSpineCount) {
  for (int y : {1, 2, 4}) {
    const Graph g = topo::make_leaf_spine(6, y);
    EXPECT_EQ(max_disjoint_su2_paths(g, 0, 1), y);
  }
}

TEST(MaxDisjointSu2, CycleValues) {
  const Graph g = cycle_graph(8);
  // Adjacent: direct link, no common neighbors.
  EXPECT_EQ(max_disjoint_su2_paths(g, 0, 1), 1);
  // Distance 2: single shortest path through node 1.
  EXPECT_EQ(max_disjoint_su2_paths(g, 0, 2), 1);
  // Antipodal: two vertex-disjoint shortest paths.
  EXPECT_EQ(max_disjoint_su2_paths(g, 0, 4), 2);
}

TEST(MaxDisjointSu2, TriangleAdjacent) {
  Graph g(3);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(0, 2);
  // Direct + detour via the single common neighbor.
  EXPECT_EQ(max_disjoint_su2_paths(g, 0, 1), 2);
}

TEST(MaxDisjointSu2, AtLeastGreedyEverywhere) {
  const Graph g = topo::make_rrg(16, 5, 1, 41);
  for (NodeId a = 0; a < g.num_switches(); ++a) {
    for (NodeId b = a + 1; b < g.num_switches(); ++b) {
      const auto su = shortest_union_paths(g, a, b, 2, 8192);
      EXPECT_GE(max_disjoint_su2_paths(g, a, b), greedy_disjoint_count(su))
          << a << "->" << b;
    }
  }
}

// The §4 claim ("Shortest-Union(2) provides at least (n+1) disjoint paths
// between any two racks"), measured exactly. Our counter shows the claim
// as stated holds only for rings of m <= 8 supernodes: for m >= 9, racks
// four supernodes apart see exactly ONE common supernode, so the tight
// bound is n, not n+1 (verified empirically below and recorded in
// EXPERIMENTS.md as a deviation).
struct DRingClaim {
  int m, n;
};

class ExactDisjointClaim : public ::testing::TestWithParam<DRingClaim> {};

TEST_P(ExactDisjointClaim, Su2DisjointPathBoundIsTight) {
  const auto [m, n] = GetParam();
  const Graph g = topo::make_dring(m, n, 1).graph;
  const int bound = m <= 8 ? n + 1 : n;
  int min_disjoint = 1 << 30;
  for (NodeId a = 0; a < g.num_switches(); ++a) {
    for (NodeId b = a + 1; b < g.num_switches(); ++b) {
      const int v = max_disjoint_su2_paths(g, a, b);
      EXPECT_GE(v, bound) << "pair " << a << "->" << b;
      min_disjoint = std::min(min_disjoint, v);
    }
  }
  // Tightness: for m >= 7 some pair achieves the bound exactly.
  if (m >= 7) {
    EXPECT_EQ(min_disjoint, bound);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExactDisjointClaim,
                         ::testing::Values(DRingClaim{5, 2}, DRingClaim{7, 3},
                                           DRingClaim{8, 2},
                                           DRingClaim{10, 2},
                                           DRingClaim{10, 4},
                                           DRingClaim{12, 3},
                                           DRingClaim{14, 2}));

TEST(MaxDisjointSu2, RejectsSamePair) {
  const Graph g = cycle_graph(4);
  EXPECT_THROW(max_disjoint_su2_paths(g, 1, 1), Error);
}

}  // namespace
}  // namespace spineless::routing
