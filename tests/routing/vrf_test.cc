#include "routing/vrf.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "routing/paths.h"
#include "topo/analysis.h"
#include "topo/builders.h"

namespace spineless::routing {
namespace {

// Theorem 1, verified exhaustively: for all router pairs, the VRF-graph
// distance between (VRF K, R1) and (VRF K, R2) is max(L, K).
struct VrfCase {
  enum Family { kLeafSpine, kDRing, kRrg, kCycle } family;
  int a, b;  // family parameters
  int k;
};

Graph build(const VrfCase& c) {
  switch (c.family) {
    case VrfCase::kLeafSpine:
      return topo::make_leaf_spine(c.a, c.b);
    case VrfCase::kDRing:
      return topo::make_dring(c.a, c.b, 1).graph;
    case VrfCase::kRrg:
      return topo::make_rrg(c.a, c.b, 1, 17);
    case VrfCase::kCycle: {
      Graph g(c.a, 0, "cycle");
      for (NodeId i = 0; i < c.a; ++i) g.add_link(i, (i + 1) % c.a);
      return g;
    }
  }
  throw Error("unreachable");
}

class Theorem1 : public ::testing::TestWithParam<VrfCase> {};

TEST_P(Theorem1, VrfDistanceIsMaxOfLAndK) {
  const Graph g = build(GetParam());
  const auto table = VrfTable::compute(g, GetParam().k);
  for (NodeId src = 0; src < g.num_switches(); ++src) {
    const auto dist = topo::bfs_distances(g, src);
    for (NodeId dst = 0; dst < g.num_switches(); ++dst) {
      if (src == dst) continue;
      EXPECT_EQ(table.source_distance(src, dst),
                std::max(dist[static_cast<std::size_t>(dst)], GetParam().k))
          << src << "->" << dst << " k=" << GetParam().k;
      EXPECT_TRUE(table.theorem1_holds(g, src, dst));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Theorem1,
    ::testing::Values(VrfCase{VrfCase::kLeafSpine, 4, 2, 2},
                      VrfCase{VrfCase::kLeafSpine, 6, 2, 3},
                      VrfCase{VrfCase::kDRing, 5, 2, 2},
                      VrfCase{VrfCase::kDRing, 6, 2, 2},
                      VrfCase{VrfCase::kDRing, 8, 2, 3},
                      VrfCase{VrfCase::kDRing, 10, 2, 2},
                      VrfCase{VrfCase::kRrg, 16, 4, 2},
                      VrfCase{VrfCase::kRrg, 20, 3, 3},
                      VrfCase{VrfCase::kRrg, 12, 4, 4},
                      VrfCase{VrfCase::kCycle, 9, 0, 2},
                      VrfCase{VrfCase::kCycle, 12, 0, 3},
                      VrfCase{VrfCase::kCycle, 7, 0, 1}));

// The central equivalence: projecting the minimum-cost VRF-graph paths
// yields exactly the Shortest-Union(K) path set.
class VrfEquivalence : public ::testing::TestWithParam<VrfCase> {};

TEST_P(VrfEquivalence, ProjectedPathsEqualShortestUnion) {
  const Graph g = build(GetParam());
  const int k = GetParam().k;
  const auto table = VrfTable::compute(g, k);
  for (NodeId src = 0; src < g.num_switches(); ++src) {
    for (NodeId dst = 0; dst < g.num_switches(); ++dst) {
      if (src == dst) continue;
      const auto projected = table.project_paths(src, dst, 8192);
      const auto su = shortest_union_paths(g, src, dst, k, 8192);
      EXPECT_EQ(projected, su) << src << "->" << dst << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VrfEquivalence,
    ::testing::Values(VrfCase{VrfCase::kLeafSpine, 4, 2, 2},
                      VrfCase{VrfCase::kDRing, 5, 2, 2},
                      VrfCase{VrfCase::kDRing, 6, 2, 2},
                      VrfCase{VrfCase::kRrg, 14, 4, 2},
                      VrfCase{VrfCase::kCycle, 8, 0, 2}));

TEST(VrfTable, K1IsPlainShortestPathRouting) {
  const Graph g = topo::make_dring(6, 2, 1).graph;
  const auto table = VrfTable::compute(g, 1);
  for (NodeId src = 0; src < g.num_switches(); ++src) {
    for (NodeId dst = 0; dst < g.num_switches(); ++dst) {
      if (src == dst) continue;
      EXPECT_EQ(table.project_paths(src, dst),
                enumerate_shortest_paths(g, src, dst));
    }
  }
}

TEST(VrfTable, NextHopsNonEmptyAtEveryReachableState) {
  const Graph g = topo::make_dring(6, 2, 1).graph;
  const auto table = VrfTable::compute(g, 2);
  for (NodeId dst = 0; dst < g.num_switches(); ++dst) {
    for (NodeId u = 0; u < g.num_switches(); ++u) {
      if (u == dst) continue;
      // Sources enter at VRF K; its next hops must exist.
      EXPECT_FALSE(table.next_hops(u, 2, dst).empty());
    }
  }
}

TEST(VrfTable, NextHopsStrictlyDecreaseCostToGo) {
  const Graph g = topo::make_rrg(12, 4, 1, 5);
  const auto table = VrfTable::compute(g, 2);
  for (NodeId dst = 0; dst < g.num_switches(); ++dst) {
    for (NodeId u = 0; u < g.num_switches(); ++u) {
      for (int vrf = 1; vrf <= 2; ++vrf) {
        if (u == dst && vrf == 2) continue;
        for (const VrfHop& h : table.next_hops(u, vrf, dst)) {
          EXPECT_EQ(table.distance(h.port.neighbor, h.next_vrf, dst) + h.cost,
                    table.distance(u, vrf, dst));
          EXPECT_GT(h.cost, 0);
        }
      }
    }
  }
}

TEST(VrfTable, AdjacentRacksGetThePathDiversityEcmpLacks) {
  // §4: SU(2) fixes the single-shortest-path problem for adjacent racks.
  const int n = 3;
  const Graph g = topo::make_dring(6, n, 1).graph;
  const auto table = VrfTable::compute(g, 2);
  const NodeId u = 0;
  const NodeId v = g.neighbors(u)[0].neighbor;
  const auto projected = table.project_paths(u, v);
  EXPECT_GE(static_cast<int>(projected.size()), 2 * n + 1)
      << "direct link + one 2-hop path per common neighbor";
}

TEST(VrfTable, DirectNeighborCostsExactlyK) {
  const Graph g = topo::make_dring(5, 2, 1).graph;
  for (int k = 1; k <= 4; ++k) {
    const auto table = VrfTable::compute(g, k);
    const NodeId v = g.neighbors(0)[0].neighbor;
    EXPECT_EQ(table.source_distance(0, v), k);
  }
}

TEST(VrfTable, RejectsNonPositiveK) {
  const Graph g = topo::make_leaf_spine(3, 1);
  EXPECT_THROW(VrfTable::compute(g, 0), Error);
}

TEST(VrfTable, HopWeightsCountContinuations) {
  // Leaf-spine, K=1: leaf 0 -> leaf 1 has y next hops (the spines), each
  // carrying exactly one continuation.
  const Graph g = topo::make_leaf_spine(4, 3);
  const auto t = VrfTable::compute(g, 1);
  for (const VrfHop& h : t.next_hops(0, 1, 1)) EXPECT_EQ(h.weight, 1);
}

TEST(VrfTable, WeightsSumToPathCount) {
  // At the source state, hop weights sum to the number of SU(K) paths
  // (when no physical path revisits a node, i.e. K = 2).
  const Graph g = topo::make_dring(6, 2, 1).graph;
  const auto t = VrfTable::compute(g, 2);
  for (NodeId src = 0; src < g.num_switches(); ++src) {
    for (NodeId dst = 0; dst < g.num_switches(); ++dst) {
      if (src == dst) continue;
      std::int64_t total = 0;
      for (const VrfHop& h : t.next_hops(src, 2, dst)) total += h.weight;
      EXPECT_EQ(total,
                static_cast<std::int64_t>(t.project_paths(src, dst).size()))
          << src << "->" << dst;
    }
  }
}

TEST(VrfTable, DirectLinkWeightOneDetoursWeightOne) {
  // Adjacent DRing racks under SU(2): the direct edge carries 1 path and
  // each 2-hop detour's first edge carries 1 — equal weights here, but the
  // bookkeeping distinguishes multi-continuation edges elsewhere.
  const Graph g = topo::make_dring(6, 3, 1).graph;
  const auto t = VrfTable::compute(g, 2);
  const NodeId v = g.neighbors(0)[0].neighbor;
  for (const VrfHop& h : t.next_hops(0, 2, v)) EXPECT_EQ(h.weight, 1);
}

TEST(VrfTable, DeadLinkFilterRemovesOnlyAffectedPaths) {
  const Graph g = topo::make_dring(6, 2, 1).graph;
  const LinkSet dead{0};
  const auto full = VrfTable::compute(g, 2);
  const auto filtered = VrfTable::compute(g, 2, &dead);
  for (NodeId src = 0; src < g.num_switches(); ++src) {
    for (NodeId dst = 0; dst < g.num_switches(); ++dst) {
      if (src == dst) continue;
      for (int vrf = 1; vrf <= 2; ++vrf) {
        for (const VrfHop& h : filtered.next_hops(src, vrf, dst))
          EXPECT_NE(h.port.link, 0);
      }
      // Routing still succeeds everywhere (DRing is richly connected).
      EXPECT_FALSE(filtered.next_hops(src, 2, dst).empty());
      (void)full;
    }
  }
}

// Incremental repair: recomputing only the affected destinations after a
// fail/restore sequence must reproduce the full rebuild, across every VRF
// level (the gadget makes "affected" subtler than plain BFS — a link can
// matter to a destination only through a detour VRF).
TEST(VrfTable, IncrementalRepairMatchesFullRebuild) {
  const Graph g = topo::make_dring(5, 2, 1).graph;
  const int k = 2;
  VrfTable t = VrfTable::compute(g, k);
  LinkSet dead;
  const std::pair<LinkId, bool> toggles[] = {
      {2, true}, {6, true}, {2, false}, {6, false}};
  for (const auto& [link, down] : toggles) {
    SCOPED_TRACE("link " + std::to_string(link) + (down ? " down" : " up"));
    const auto dsts = t.destinations_affected_by(g, link, down);
    if (down) {
      dead.insert(link);
    } else {
      dead.erase(link);
    }
    t.recompute_destinations(g, &dead, dsts);
    const VrfTable full = VrfTable::compute(g, k, &dead);
    for (NodeId d = 0; d < g.num_switches(); ++d) {
      for (NodeId u = 0; u < g.num_switches(); ++u) {
        for (int vrf = 1; vrf <= k; ++vrf) {
          ASSERT_EQ(t.distance(u, vrf, d), full.distance(u, vrf, d))
              << "(" << u << ", vrf " << vrf << ") -> " << d;
          const auto& a = t.next_hops(u, vrf, d);
          const auto& b = full.next_hops(u, vrf, d);
          ASSERT_EQ(a.size(), b.size())
              << "(" << u << ", vrf " << vrf << ") -> " << d;
          for (std::size_t i = 0; i < a.size(); ++i) {
            ASSERT_EQ(a[i].port.link, b[i].port.link);
            ASSERT_EQ(a[i].port.neighbor, b[i].port.neighbor);
            ASSERT_EQ(a[i].next_vrf, b[i].next_vrf);
            ASSERT_EQ(a[i].cost, b[i].cost);
            ASSERT_EQ(a[i].weight, b[i].weight);
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace spineless::routing
