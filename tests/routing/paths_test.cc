#include "routing/paths.h"

#include <gtest/gtest.h>

#include <set>

#include "topo/analysis.h"
#include "topo/builders.h"

namespace spineless::routing {
namespace {

Graph cycle_graph(int n) {
  Graph g(n);
  for (NodeId i = 0; i < n; ++i) g.add_link(i, (i + 1) % n);
  return g;
}

TEST(ShortestPaths, CountMatchesDpCount) {
  const Graph g = topo::make_rrg(16, 4, 1, 11);
  for (NodeId src = 0; src < 6; ++src) {
    for (NodeId dst = 10; dst < 16; ++dst) {
      const auto paths = enumerate_shortest_paths(g, src, dst);
      EXPECT_EQ(static_cast<std::int64_t>(paths.size()),
                topo::count_shortest_paths(g, src, dst))
          << src << "->" << dst;
    }
  }
}

TEST(ShortestPaths, AllHaveMinimalLength) {
  const Graph g = topo::make_dring(6, 2, 1).graph;
  const auto dist = topo::all_pairs_distances(g);
  for (NodeId src = 0; src < g.num_switches(); ++src) {
    for (NodeId dst = 0; dst < g.num_switches(); ++dst) {
      if (src == dst) continue;
      for (const Path& p : enumerate_shortest_paths(g, src, dst)) {
        EXPECT_EQ(path_length(p),
                  dist[static_cast<std::size_t>(src)]
                      [static_cast<std::size_t>(dst)]);
      }
    }
  }
}

TEST(ShortestPaths, CapLimitsOutput) {
  const Graph g = topo::make_leaf_spine(4, 4);
  EXPECT_EQ(enumerate_shortest_paths(g, 0, 1, 2).size(), 2u);
}

TEST(BoundedPaths, CycleHasExactlyExpectedPaths) {
  const Graph g = cycle_graph(6);
  // 0 -> 2: clockwise length 2 or counter-clockwise length 4.
  EXPECT_EQ(enumerate_bounded_paths(g, 0, 2, 2).size(), 1u);
  EXPECT_EQ(enumerate_bounded_paths(g, 0, 2, 4).size(), 2u);
  EXPECT_EQ(enumerate_bounded_paths(g, 0, 2, 3).size(), 1u);
}

TEST(BoundedPaths, AreSimpleAndValid) {
  const Graph g = topo::make_rrg(12, 4, 1, 3);
  for (NodeId dst = 1; dst < 6; ++dst) {
    const auto paths = enumerate_bounded_paths(g, 0, dst, 3);
    EXPECT_TRUE(paths_valid(g, 0, dst, paths));
  }
}

TEST(BoundedPaths, ZeroBudgetFindsNothing) {
  const Graph g = cycle_graph(4);
  EXPECT_TRUE(enumerate_bounded_paths(g, 0, 1, 0).empty());
}

// Shortest-Union semantics: shortest paths for distant pairs, all <=K paths
// for close pairs.
TEST(ShortestUnion, EqualsShortestForDistantPairs) {
  const Graph g = cycle_graph(10);
  // 0 -> 5 has distance 5 > K=2: exactly the 2 shortest paths.
  const auto su = shortest_union_paths(g, 0, 5, 2);
  const auto sp = enumerate_shortest_paths(g, 0, 5);
  EXPECT_EQ(su, sp);
}

TEST(ShortestUnion, AddsNonShortestForAdjacentPairs) {
  const Graph g = topo::make_dring(5, 2, 1).graph;
  // Pick an adjacent ToR pair: one shortest path, but SU(2) adds all
  // 2-hop detours through common neighbors.
  const NodeId u = 0;
  const NodeId v = g.neighbors(0)[0].neighbor;
  const auto sp = enumerate_shortest_paths(g, u, v);
  const auto su = shortest_union_paths(g, u, v, 2);
  EXPECT_EQ(sp.size(), 1u);
  EXPECT_GT(su.size(), sp.size());
}

TEST(ShortestUnion, ContainsAllShortestPaths) {
  const Graph g = topo::make_rrg(14, 4, 1, 9);
  for (NodeId dst = 7; dst < 14; ++dst) {
    const auto su = shortest_union_paths(g, 0, dst, 2);
    const std::set<Path> su_set(su.begin(), su.end());
    for (const Path& p : enumerate_shortest_paths(g, 0, dst))
      EXPECT_TRUE(su_set.count(p)) << "missing shortest path";
  }
}

TEST(ShortestUnion, SortedByLengthThenLex) {
  const Graph g = topo::make_dring(5, 3, 1).graph;
  const auto su = shortest_union_paths(g, 0, g.neighbors(0)[0].neighbor, 2);
  for (std::size_t i = 1; i < su.size(); ++i)
    EXPECT_LE(su[i - 1].size(), su[i].size());
}

TEST(ShortestUnion, NoDuplicates) {
  const Graph g = topo::make_dring(6, 3, 1).graph;
  for (NodeId dst = 1; dst < 8; ++dst) {
    const auto su = shortest_union_paths(g, 0, dst, 2);
    const std::set<Path> dedup(su.begin(), su.end());
    EXPECT_EQ(dedup.size(), su.size());
  }
}

// The paper's §4 claim: "For DRing, Shortest-Union(2) provides at least
// (n + 1) disjoint paths between any two racks".
struct DRingClaim {
  int m, n;
};

class DisjointPathsClaim : public ::testing::TestWithParam<DRingClaim> {};

TEST_P(DisjointPathsClaim, ShortestUnion2GivesAtLeastNPlusOne) {
  const auto [m, n] = GetParam();
  const Graph g = topo::make_dring(m, n, 1).graph;
  for (NodeId src = 0; src < g.num_switches(); ++src) {
    for (NodeId dst = 0; dst < g.num_switches(); ++dst) {
      if (src == dst) continue;
      const auto su = shortest_union_paths(g, src, dst, 2, 8192);
      EXPECT_GE(greedy_disjoint_count(su), n + 1)
          << "pair " << src << "->" << dst;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DisjointPathsClaim,
                         ::testing::Values(DRingClaim{5, 1}, DRingClaim{5, 2},
                                           DRingClaim{6, 2}, DRingClaim{7, 3},
                                           DRingClaim{8, 2}));

TEST(GreedyDisjoint, DirectPathAlwaysCounted) {
  EXPECT_EQ(greedy_disjoint_count({{0, 1}}), 1);
}

TEST(GreedyDisjoint, SharedInteriorExcluded) {
  // Two 2-hop paths through the same relay: only one counts.
  EXPECT_EQ(greedy_disjoint_count({{0, 2, 1}, {0, 2, 1}}), 1);
  EXPECT_EQ(greedy_disjoint_count({{0, 2, 1}, {0, 3, 1}}), 2);
}

TEST(PathsValid, DetectsBrokenPaths) {
  const Graph g = cycle_graph(4);
  EXPECT_TRUE(paths_valid(g, 0, 2, {{0, 1, 2}}));
  EXPECT_FALSE(paths_valid(g, 0, 2, {{0, 2}}));        // not a link
  EXPECT_FALSE(paths_valid(g, 0, 2, {{1, 2}}));        // wrong source
  EXPECT_FALSE(paths_valid(g, 0, 2, {{0, 1}}));        // wrong dest
  EXPECT_FALSE(paths_valid(g, 0, 2, {{0, 1, 0, 1, 2}}));  // not simple
}

}  // namespace
}  // namespace spineless::routing
