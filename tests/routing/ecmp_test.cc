#include "routing/ecmp.h"

#include <gtest/gtest.h>

#include <utility>

#include "topo/analysis.h"
#include "topo/builders.h"

namespace spineless::routing {
namespace {

TEST(EcmpTable, LeafSpineNextHops) {
  const Graph g = topo::make_leaf_spine(4, 2);
  const auto t = EcmpTable::compute(g);
  // Leaf 0 to leaf 1: both spines are valid next hops.
  EXPECT_EQ(t.next_hops(0, 1).size(), 2u);
  EXPECT_EQ(t.distance(0, 1), 2);
  // Leaf to spine: single direct hop.
  const NodeId spine = topo::leaf_spine_num_leaves(4, 2);
  EXPECT_EQ(t.next_hops(0, spine).size(), 1u);
  EXPECT_EQ(t.next_hops(0, spine)[0].neighbor, spine);
  EXPECT_EQ(t.distance(0, spine), 1);
}

TEST(EcmpTable, DistancesMatchBfs) {
  const Graph g = topo::make_dring(6, 2, 1).graph;
  const auto t = EcmpTable::compute(g);
  for (NodeId dst = 0; dst < g.num_switches(); ++dst) {
    const auto d = topo::bfs_distances(g, dst);
    for (NodeId u = 0; u < g.num_switches(); ++u)
      EXPECT_EQ(t.distance(u, dst), d[static_cast<std::size_t>(u)]);
  }
}

// Validity (loop-freedom + completeness) across the three §5.1 families.
class EcmpValidity : public ::testing::TestWithParam<int> {};

TEST_P(EcmpValidity, TableValidOnAllFamilies) {
  const int i = GetParam();
  const Graph graphs[] = {
      topo::make_leaf_spine(6 + i, 2),
      topo::make_dring(5 + i, 2, 1).graph,
      topo::make_rrg(12 + 2 * i, 4, 1, static_cast<std::uint64_t>(i)),
  };
  for (const Graph& g : graphs) {
    const auto t = EcmpTable::compute(g);
    EXPECT_TRUE(ecmp_table_valid(g, t)) << g.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EcmpValidity, ::testing::Range(0, 5));

TEST(EcmpTable, DirectNeighborHasSingleNextHopInFlatNetworks) {
  // The §4 motivation: adjacent racks in a flat network have exactly one
  // shortest path, so ECMP cannot spread their traffic.
  const Graph g = topo::make_dring(6, 2, 1).graph;
  const auto t = EcmpTable::compute(g);
  for (NodeId u = 0; u < g.num_switches(); ++u)
    for (const Port& p : g.neighbors(u))
      EXPECT_EQ(t.next_hops(u, p.neighbor).size(), 1u);
}

TEST(EcmpTable, LeafSpineLeavesAlwaysHaveYNextHops) {
  // The contrast: leaf-spine leaves are never directly connected, so ECMP
  // always sees all y spines.
  const int y = 3;
  const Graph g = topo::make_leaf_spine(6, y);
  const auto t = EcmpTable::compute(g);
  const NodeId leaves = topo::leaf_spine_num_leaves(6, y);
  for (NodeId a = 0; a < leaves; ++a)
    for (NodeId b = 0; b < leaves; ++b)
      if (a != b) {
        EXPECT_EQ(t.next_hops(a, b).size(), static_cast<std::size_t>(y));
      }
}

TEST(EcmpTable, DisconnectedGraphRejected) {
  Graph g(3);
  g.add_link(0, 1);
  EXPECT_THROW(EcmpTable::compute(g), spineless::Error);
}

// Incremental repair (the fault injector's reconvergence path): after a
// sequence of fail/restore toggles, recomputing only the affected
// destinations must land on exactly the table a full rebuild produces.
TEST(EcmpTable, IncrementalRepairMatchesFullRebuild) {
  const Graph g = topo::make_rrg(16, 4, 1, /*seed=*/7);
  EcmpTable t = EcmpTable::compute(g);
  LinkSet dead;
  const std::pair<LinkId, bool> toggles[] = {
      {0, true}, {5, true}, {0, false}, {9, true}, {5, false}, {9, false}};
  for (const auto& [link, down] : toggles) {
    SCOPED_TRACE("link " + std::to_string(link) + (down ? " down" : " up"));
    const auto dsts = t.destinations_affected_by(g, link, down);
    if (down) {
      dead.insert(link);
    } else {
      dead.erase(link);
    }
    t.recompute_destinations(g, &dead, dsts);
    const EcmpTable full = EcmpTable::compute(g, &dead);
    for (NodeId d = 0; d < g.num_switches(); ++d) {
      for (NodeId u = 0; u < g.num_switches(); ++u) {
        ASSERT_EQ(t.distance(u, d), full.distance(u, d)) << u << "->" << d;
        const auto a = t.next_hops(u, d);
        const auto b = full.next_hops(u, d);
        ASSERT_EQ(a.size(), b.size()) << u << "->" << d;
        for (std::size_t i = 0; i < a.size(); ++i) {
          ASSERT_EQ(a[i].neighbor, b[i].neighbor);
          ASSERT_EQ(a[i].link, b[i].link);
        }
      }
    }
    EXPECT_TRUE(ecmp_table_valid(g, t, &dead));
  }
}

TEST(EcmpTable, RestoreRepairIsSoundOnACycle) {
  // Restoring a cycle link changes some destinations (the far side gets a
  // second equal-cost path) and leaves others alone; the affected-set plus
  // incremental recompute must still reproduce the full rebuild exactly.
  Graph g(4);
  for (NodeId i = 0; i < 4; ++i) g.add_link(i, (i + 1) % 4);
  g.set_servers(0, 1);
  LinkSet dead{0};
  EcmpTable t = EcmpTable::compute(g, &dead);
  const auto dsts = t.destinations_affected_by(g, 0, /*now_dead=*/false);
  dead.erase(0);
  t.recompute_destinations(g, &dead, dsts);
  const EcmpTable full = EcmpTable::compute(g);
  for (NodeId d = 0; d < 4; ++d)
    for (NodeId u = 0; u < 4; ++u)
      EXPECT_EQ(t.distance(u, d), full.distance(u, d));
  EXPECT_TRUE(ecmp_table_valid(g, t));
}

TEST(EcmpTable, ValidityCheckerCatchesCorruption) {
  // A hand-built table with a wrong next hop must fail validation: build a
  // valid table on a cycle, then check a *different* graph against it.
  Graph cyc(4);
  for (NodeId i = 0; i < 4; ++i) cyc.add_link(i, (i + 1) % 4);
  Graph line(4);
  line.add_link(0, 1);
  line.add_link(1, 2);
  line.add_link(2, 3);
  const auto t_line = EcmpTable::compute(line);
  EXPECT_FALSE(ecmp_table_valid(cyc, t_line));
}

}  // namespace
}  // namespace spineless::routing
