// Parallel route-table construction must be byte-identical to serial: the
// per-destination fan-out writes into pre-sized slots, so the worker count
// (and scheduling order) can never change the result.
#include <gtest/gtest.h>

#include "routing/ecmp.h"
#include "routing/vrf.h"
#include "topo/builders.h"
#include "util/rng.h"
#include "util/runner.h"

namespace spineless::routing {
namespace {

LinkSet random_dead_links(const topo::Graph& g, std::uint64_t seed,
                          int count) {
  Rng rng(seed);
  LinkSet dead;
  for (int i = 0; i < count; ++i) {
    dead.insert(static_cast<LinkId>(
        rng.uniform(static_cast<std::uint64_t>(g.num_links()))));
  }
  return dead;
}

void expect_same_ecmp(const topo::Graph& g, const EcmpTable& a,
                      const EcmpTable& b) {
  ASSERT_EQ(a.num_switches(), b.num_switches());
  for (NodeId dst = 0; dst < g.num_switches(); ++dst) {
    for (NodeId u = 0; u < g.num_switches(); ++u) {
      EXPECT_EQ(a.distance(u, dst), b.distance(u, dst));
      const auto ha = a.next_hops(u, dst);
      const auto hb = b.next_hops(u, dst);
      ASSERT_EQ(ha.size(), hb.size()) << "u=" << u << " dst=" << dst;
      for (std::size_t i = 0; i < ha.size(); ++i) {
        EXPECT_EQ(ha[i].neighbor, hb[i].neighbor);
        EXPECT_EQ(ha[i].link, hb[i].link);
      }
    }
  }
}

void expect_same_vrf(const topo::Graph& g, int k, const VrfTable& a,
                     const VrfTable& b) {
  ASSERT_EQ(a.num_switches(), b.num_switches());
  for (NodeId dst = 0; dst < g.num_switches(); ++dst) {
    for (NodeId u = 0; u < g.num_switches(); ++u) {
      for (int vrf = 1; vrf <= k; ++vrf) {
        EXPECT_EQ(a.distance(u, vrf, dst), b.distance(u, vrf, dst));
        const auto& ha = a.next_hops(u, vrf, dst);
        const auto& hb = b.next_hops(u, vrf, dst);
        ASSERT_EQ(ha.size(), hb.size());
        for (std::size_t i = 0; i < ha.size(); ++i) {
          EXPECT_EQ(ha[i].port.neighbor, hb[i].port.neighbor);
          EXPECT_EQ(ha[i].port.link, hb[i].port.link);
          EXPECT_EQ(ha[i].next_vrf, hb[i].next_vrf);
          EXPECT_EQ(ha[i].cost, hb[i].cost);
          EXPECT_EQ(ha[i].weight, hb[i].weight);
        }
      }
    }
  }
}

TEST(ParallelTables, EcmpMatchesSerialOnHealthyGraphs) {
  util::Runner pool(4, util::Runner::Nested::kAllow);
  for (const auto& g : {topo::make_leaf_spine(6, 2),
                        topo::make_dring(5, 2, 4).graph,
                        topo::make_rrg(12, 4, 4, /*seed=*/3)}) {
    const auto serial = EcmpTable::compute(g);
    const auto parallel = EcmpTable::compute(g, nullptr, &pool);
    expect_same_ecmp(g, serial, parallel);
    EXPECT_TRUE(ecmp_table_valid(g, parallel));
  }
}

TEST(ParallelTables, EcmpMatchesSerialUnderRandomFailures) {
  util::Runner pool(4, util::Runner::Nested::kAllow);
  const auto g = topo::make_dring(6, 2, 4).graph;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const LinkSet dead =
        random_dead_links(g, seed, static_cast<int>(seed) % 5 + 1);
    const auto serial = EcmpTable::compute(g, &dead);
    const auto parallel = EcmpTable::compute(g, &dead, &pool);
    expect_same_ecmp(g, serial, parallel);
    EXPECT_TRUE(ecmp_table_valid(g, parallel, &dead));
  }
}

TEST(ParallelTables, VrfMatchesSerialIncludingWeights) {
  util::Runner pool(4, util::Runner::Nested::kAllow);
  const auto g = topo::make_dring(5, 2, 2).graph;
  for (const int k : {1, 2, 3}) {
    const auto serial = VrfTable::compute(g, k);
    const auto parallel = VrfTable::compute(g, k, nullptr, &pool);
    expect_same_vrf(g, k, serial, parallel);
  }
}

TEST(ParallelTables, VrfMatchesSerialUnderRandomFailures) {
  util::Runner pool(4, util::Runner::Nested::kAllow);
  const auto g = topo::make_rrg(10, 4, 2, /*seed=*/9);
  for (std::uint64_t seed = 21; seed <= 26; ++seed) {
    const LinkSet dead =
        random_dead_links(g, seed, static_cast<int>(seed) % 4 + 1);
    const auto serial = VrfTable::compute(g, 2, &dead);
    const auto parallel = VrfTable::compute(g, 2, &dead, &pool);
    expect_same_vrf(g, 2, serial, parallel);
  }
}

TEST(ParallelTables, SingleJobRunnerTakesSerialPath) {
  util::Runner one(1);
  const auto g = topo::make_leaf_spine(4, 2);
  expect_same_ecmp(g, EcmpTable::compute(g), EcmpTable::compute(g, nullptr, &one));
}

}  // namespace
}  // namespace spineless::routing
