#include "topo/analysis.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "topo/builders.h"

namespace spineless::topo {
namespace {

Graph path_graph(int n) {
  Graph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.add_link(i, i + 1);
  for (NodeId i = 0; i < n; ++i) g.set_servers(i, 1);
  return g;
}

Graph cycle_graph(int n) {
  Graph g(n);
  for (NodeId i = 0; i < n; ++i) g.add_link(i, (i + 1) % n);
  for (NodeId i = 0; i < n; ++i) g.set_servers(i, 1);
  return g;
}

TEST(Nsr, LeafSpineMatchesClosedForm) {
  for (const auto& [x, y] : std::vector<std::pair<int, int>>{
           {3, 1}, {6, 2}, {12, 4}, {48, 16}, {9, 3}}) {
    const Graph g = make_leaf_spine(x, y);
    const auto nsr = network_server_ratio(g);
    EXPECT_DOUBLE_EQ(nsr.mean, leaf_spine_nsr(x, y)) << x << "," << y;
    EXPECT_DOUBLE_EQ(nsr.min, nsr.max);  // homogeneous leaves
  }
}

// §3.1 headline: UDF(leaf-spine) == 2 for ALL (x, y).
class UdfClosedForm
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(UdfClosedForm, AlwaysTwo) {
  const auto [x, y] = GetParam();
  EXPECT_DOUBLE_EQ(leaf_spine_udf(x, y), 2.0);
  EXPECT_DOUBLE_EQ(leaf_spine_flat_nsr(x, y), 2.0 * y / x);
}

INSTANTIATE_TEST_SUITE_P(Sweep, UdfClosedForm,
                         ::testing::Values(std::pair{3, 1}, std::pair{4, 2},
                                           std::pair{6, 2}, std::pair{12, 4},
                                           std::pair{24, 8},
                                           std::pair{48, 16},
                                           std::pair{30, 10},
                                           std::pair{100, 7}));

TEST(Udf, ConstructedFlatTransformApproachesTwo) {
  // The constructed F(T) quantizes servers to integers, so the measured
  // UDF is close to (and, with the parity tweak, at least) 2.
  for (const auto& [x, y] : std::vector<std::pair<int, int>>{
           {12, 4}, {24, 8}, {48, 16}}) {
    const Graph ls = make_leaf_spine(x, y);
    const Graph flat = flatten_leaf_spine(x, y, 1);
    EXPECT_NEAR(udf(ls, flat), 2.0, 0.1) << x << "," << y;
  }
}

TEST(Nsr, ThrowsWithoutServers) {
  Graph g(2);
  g.add_link(0, 1);
  EXPECT_THROW(network_server_ratio(g), Error);
}

TEST(Bfs, DistancesOnPath) {
  const Graph g = path_graph(5);
  const auto d = bfs_distances(g, 0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(d[static_cast<std::size_t>(i)], i);
}

TEST(Bfs, UnreachableIsMinusOne) {
  Graph g(3);
  g.add_link(0, 1);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[2], -1);
}

TEST(AllPairs, SymmetricOnUndirectedGraph) {
  const Graph g = cycle_graph(7);
  const auto d = all_pairs_distances(g);
  for (NodeId a = 0; a < 7; ++a)
    for (NodeId b = 0; b < 7; ++b)
      EXPECT_EQ(d[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)],
                d[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)]);
}

TEST(PathLengthStats, CycleDiameter) {
  EXPECT_EQ(path_length_stats(cycle_graph(8)).diameter, 4);
  EXPECT_EQ(path_length_stats(cycle_graph(9)).diameter, 4);
}

TEST(PathLengthStats, LeafSpineMean) {
  // Leaf-spine: leaf->spine = 1, leaf->leaf = 2, spine->spine = 2.
  const Graph g = make_leaf_spine(4, 2);
  const auto stats = path_length_stats(g);
  EXPECT_EQ(stats.diameter, 2);
  // 6 leaves, 2 spines: ordered pairs = 8*7 = 56. Distance-1 pairs:
  // leaf-spine both directions = 6*2*2 = 24; rest are 2.
  EXPECT_NEAR(stats.mean, (24 * 1 + 32 * 2) / 56.0, 1e-12);
}

TEST(PathLengthStats, DisconnectedThrows) {
  Graph g(3);
  g.add_link(0, 1);
  EXPECT_THROW(path_length_stats(g), Error);
}

TEST(CountShortestPaths, LeafSpineLeafPairs) {
  // Between two leaves there are y shortest 2-hop paths (one per spine).
  for (int y : {1, 2, 4}) {
    const Graph g = make_leaf_spine(4, y);
    EXPECT_EQ(count_shortest_paths(g, 0, 1), y);
  }
}

TEST(CountShortestPaths, AdjacentPairHasOne) {
  const Graph g = cycle_graph(6);
  EXPECT_EQ(count_shortest_paths(g, 0, 1), 1);
}

TEST(CountShortestPaths, EvenCycleAntipodalHasTwo) {
  const Graph g = cycle_graph(6);
  EXPECT_EQ(count_shortest_paths(g, 0, 3), 2);
}

TEST(CountShortestPaths, CapRespected) {
  const Graph g = make_leaf_spine(4, 4);
  EXPECT_EQ(count_shortest_paths(g, 0, 1, /*cap=*/2), 2);
}

TEST(Bisection, CycleIsTwo) {
  EXPECT_EQ(bisection_upper_bound(cycle_graph(10), 50, 1), 2);
}

TEST(Bisection, PathIsOne) {
  EXPECT_EQ(bisection_upper_bound(path_graph(10), 50, 1), 1);
}

TEST(HostPathLength, WeightsByServers) {
  // Path graph 0-1-2 with servers only at the ends: mean host path = 2.
  Graph g = path_graph(3);
  g.set_servers(1, 0);
  EXPECT_DOUBLE_EQ(mean_host_path_length(g), 2.0);
}

TEST(HostPathLength, LeafSpineIsTwoBetweenLeaves) {
  // Only leaves host servers, and every leaf pair is 2 hops apart.
  const Graph g = make_leaf_spine(4, 2);
  EXPECT_DOUBLE_EQ(mean_host_path_length(g), 2.0);
}

TEST(ThroughputBounds, LeafSpineDistanceBoundIsOversubscription) {
  // 2L/(H d) = 2 (x+y) y / (x (x+y) 2) = y/x: exactly the 1/3 the 3:1
  // oversubscription allows.
  const Graph g = make_leaf_spine(12, 4);
  const auto b = uniform_throughput_bounds(g, 100, 1);
  EXPECT_NEAR(b.distance_bound, 4.0 / 12.0, 1e-12);
  EXPECT_GT(b.bisection_bound, 0.0);
  EXPECT_DOUBLE_EQ(b.combined(),
                   std::min(b.distance_bound, b.bisection_bound));
}

TEST(ThroughputBounds, FlatTransformGainIsModestForUniformTraffic) {
  // Instructive counterpoint to UDF=2: for UNIFORM all-to-all the flat
  // rewiring's capacity bound improves only by the path-length ratio
  // (2 / ~1.68 ~ 1.19x) — the same links, slightly shorter paths. This is
  // exactly why Figure 4 shows flat ~ leaf-spine on uniform TMs; the 2x
  // UDF gain materializes when traffic is skewed and rack egress is the
  // bottleneck, not in aggregate uniform capacity.
  const Graph ls = make_leaf_spine(24, 8);
  const Graph flat = flatten_leaf_spine(24, 8, 1);
  const auto b_ls = uniform_throughput_bounds(ls, 100, 1);
  const auto b_flat = uniform_throughput_bounds(flat, 100, 1);
  EXPECT_GT(b_flat.distance_bound, 1.1 * b_ls.distance_bound);
  EXPECT_LT(b_flat.distance_bound, 1.4 * b_ls.distance_bound);
}

TEST(ThroughputBounds, DRingBisectionBoundDecaysWithScale) {
  const auto small = uniform_throughput_bounds(
      make_dring(6, 2, 4).graph, 200, 1);
  const auto large = uniform_throughput_bounds(
      make_dring(18, 2, 4).graph, 200, 1);
  EXPECT_LT(large.bisection_bound, small.bisection_bound / 2);
}

TEST(Bisection, DRingConstantButRrgGrows) {
  // The paper's §6.3 argument: DRing bisection is O(n) worse — adding
  // supernodes does not add bisection links, while the equal-degree RRG's
  // bisection keeps growing.
  const int dring_small =
      bisection_upper_bound(make_dring(6, 2, 1).graph, 300, 1);
  const int dring_large =
      bisection_upper_bound(make_dring(18, 2, 1).graph, 300, 1);
  EXPECT_LE(dring_large, dring_small + 2);  // essentially flat

  const int rrg_small = bisection_upper_bound(make_rrg(12, 8, 1, 1), 300, 1);
  const int rrg_large = bisection_upper_bound(make_rrg(36, 8, 1, 1), 300, 1);
  EXPECT_GT(rrg_large, rrg_small);
}

}  // namespace
}  // namespace spineless::topo
