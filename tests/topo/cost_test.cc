#include "topo/cost.h"

#include <gtest/gtest.h>

#include "topo/builders.h"

namespace spineless::topo {
namespace {

TEST(CostReport, ClassifiesCablesByReach) {
  // Three racks in a row, 1 m apart: link 0-1 is DAC, a long link to a
  // far rack is AOC.
  Graph g(3);
  g.add_link(0, 1);
  g.add_link(0, 2);
  g.set_servers(0, 1);
  LayoutConfig layout;
  layout.racks_per_row = 100;
  layout.rack_pitch_m = 1.0;
  layout.slack_m = 2.0;
  CostModel model;
  model.dac_reach_m = 4.0;  // 0-1: 3 m -> DAC; 0-2: 4 m -> DAC edge
  auto pos = row_major_layout(g, layout);
  const auto r = cost_report(g, pos, layout, model);
  EXPECT_EQ(r.cables, 2);
  EXPECT_EQ(r.dac, 2);
  EXPECT_EQ(r.aoc + r.optics, 0);

  model.dac_reach_m = 3.5;  // now 0-2 (4 m) becomes AOC
  const auto r2 = cost_report(g, pos, layout, model);
  EXPECT_EQ(r2.dac, 1);
  EXPECT_EQ(r2.aoc, 1);
  EXPECT_GT(r2.cable_usd, r.cable_usd);
  EXPECT_GT(r2.power_w, r.power_w);  // optics burn watts
}

TEST(CostReport, SwitchCostCountsPorts) {
  const Graph g = make_leaf_spine(4, 2);
  LayoutConfig layout;
  const auto r = cost_report(g, row_major_layout(g, layout), layout,
                             CostModel{});
  // 8 switches; ports used = leaves (2 net + 4 srv) x 6 + spines 6 x 2.
  const int ports = 6 * 6 + 6 * 2;
  const CostModel m;
  EXPECT_DOUBLE_EQ(r.switch_usd,
                   8 * m.switch_base_usd + ports * m.per_port_usd);
  EXPECT_EQ(r.cables, g.num_links());
  EXPECT_GT(r.usd_per_server, 0.0);
}

TEST(CostReport, EqualEquipmentScenarioSwitchCostsMatch) {
  // The §3.1 premise in dollars: leaf-spine and its flat rewiring price
  // identically on switches (same boxes, same ports in use up to the
  // parity adjustment).
  const Graph ls = make_leaf_spine(12, 4);
  const Graph flat = flatten_leaf_spine(12, 4, 1);
  LayoutConfig layout;
  const CostModel m;
  const auto a = cost_report(ls, row_major_layout(ls, layout), layout, m);
  const auto b =
      cost_report(flat, row_major_layout(flat, layout), layout, m);
  EXPECT_EQ(a.switches, b.switches);
  EXPECT_NEAR(a.switch_usd, b.switch_usd, 2 * m.per_port_usd);
  EXPECT_EQ(a.cables, b.cables);  // same port budget -> same cable count
}

}  // namespace
}  // namespace spineless::topo
