#include "topo/expand.h"

#include <gtest/gtest.h>

#include <set>

#include "topo/analysis.h"

namespace spineless::topo {
namespace {

TEST(MetadataBuilder, MatchesDirectBuilderForIdentityOrder) {
  const DRing d = make_dring(7, 3, 2);
  std::vector<int> servers;
  for (NodeId t = 0; t < d.graph.num_switches(); ++t)
    servers.push_back(d.graph.servers(t));
  const Graph rebuilt = dring_graph_from_metadata(
      d.supernode_of, d.ring_order, 0, servers);
  ASSERT_EQ(rebuilt.num_links(), d.graph.num_links());
  for (NodeId a = 0; a < d.graph.num_switches(); ++a)
    for (NodeId b = a + 1; b < d.graph.num_switches(); ++b)
      EXPECT_EQ(rebuilt.adjacent(a, b), d.graph.adjacent(a, b));
}

TEST(MetadataBuilder, RejectsBadRingOrder) {
  EXPECT_THROW(dring_graph_from_metadata({0, 1, 2}, {0, 1, 1}, 0, {1, 1, 1}),
               Error);
  EXPECT_THROW(dring_graph_from_metadata({0, 1}, {0, 1}, 0, {1, 1}), Error);
}

TEST(ExpandDRing, PreservesExistingIdsAndServers) {
  const DRing base = make_dring(6, 2, 4);
  const auto exp = expand_dring(base, /*new_tors=*/2, /*servers=*/4,
                                /*after_position=*/2);
  const DRing& d = exp.dring;
  EXPECT_EQ(d.supernodes, 7);
  EXPECT_EQ(d.graph.num_switches(), base.graph.num_switches() + 2);
  for (NodeId t = 0; t < base.graph.num_switches(); ++t) {
    EXPECT_EQ(d.supernode_of[static_cast<std::size_t>(t)],
              base.supernode_of[static_cast<std::size_t>(t)]);
    EXPECT_EQ(d.graph.servers(t), base.graph.servers(t));
  }
  EXPECT_EQ(d.graph.total_servers(), base.graph.total_servers() + 8);
}

TEST(ExpandDRing, OnlyInsertionPointChordsRemoved) {
  // Inserting S between ring positions p and p+1 removes exactly the two
  // +2 chords spanning the gap: (p-1, p+1) and (p, p+2) — n*n cables each.
  const int n = 3;
  const DRing base = make_dring(8, n, 2);
  const auto exp = expand_dring(base, n, 2, /*after_position=*/4);
  EXPECT_EQ(exp.stats.links_removed, 2 * n * n);
  // The new supernode wires to 4 neighbors on each side: 4 * n * n.
  EXPECT_EQ(exp.stats.links_added, 4 * n * n);
  EXPECT_EQ(exp.stats.links_kept,
            base.graph.num_links() - exp.stats.links_removed);
}

TEST(ExpandDRing, ResultIsAValidDRing) {
  const DRing base = make_dring(6, 2, 3);
  const auto exp = expand_dring(base, 2, 3, 0);
  const Graph& g = exp.dring.graph;
  EXPECT_TRUE(g.connected());
  // Every switch's degree matches a fresh DRing of the same shape.
  const DRing fresh = make_dring(7, 2, 3);
  EXPECT_EQ(g.num_links(), fresh.graph.num_links());
  for (NodeId t = 0; t < g.num_switches(); ++t)
    EXPECT_EQ(g.network_degree(t), 8);
}

TEST(ExpandDRing, RepeatedExpansionGrowsRing) {
  DRing d = make_dring(5, 2, 1);
  for (int step = 0; step < 5; ++step) {
    const auto exp = expand_dring(d, 2, 1, step % d.supernodes);
    d = exp.dring;
  }
  EXPECT_EQ(d.supernodes, 10);
  EXPECT_EQ(d.graph.num_switches(), 20);
  EXPECT_TRUE(d.graph.connected());
  // Structure equivalent to a fresh 10-supernode DRing.
  EXPECT_EQ(d.graph.num_links(), make_dring(10, 2, 1).graph.num_links());
}

TEST(ExpandDRing, KeptFractionApproachesOneForLargeRings) {
  // §3.2's expandability: the disruption is O(n^2) while the network is
  // O(m n^2) — the untouched fraction grows with m.
  const DRing small = make_dring(6, 2, 1);
  const DRing large = make_dring(16, 2, 1);
  const auto exp_small = expand_dring(small, 2, 1, 0);
  const auto exp_large = expand_dring(large, 2, 1, 0);
  const auto kept_fraction = [](const ExpansionStats& s, int before) {
    return static_cast<double>(s.links_kept) / before;
  };
  EXPECT_GT(kept_fraction(exp_large.stats, large.graph.num_links()),
            kept_fraction(exp_small.stats, small.graph.num_links()));
  EXPECT_GT(kept_fraction(exp_large.stats, large.graph.num_links()), 0.85);
}

TEST(ExpandRandom, JellyfishGrowthInvariants) {
  const Graph base = make_rrg(20, 6, 4, 7);
  const auto exp = expand_random(base, 6, 4, 11);
  const Graph& g = exp.graph;
  EXPECT_EQ(g.num_switches(), 21);
  EXPECT_EQ(g.network_degree(20), 6);
  // Every split removes one link and adds two.
  EXPECT_EQ(exp.stats.links_removed, 3);
  EXPECT_EQ(exp.stats.links_added, 6);
  EXPECT_EQ(exp.stats.links_kept, base.num_links() - 3);
  // Degrees of existing switches unchanged; graph stays simple+connected.
  for (NodeId n = 0; n < 20; ++n)
    EXPECT_EQ(g.network_degree(n), base.network_degree(n));
  EXPECT_TRUE(g.connected());
  std::set<NodeId> nbrs;
  for (const Port& p : g.neighbors(20))
    EXPECT_TRUE(nbrs.insert(p.neighbor).second);
}

TEST(ExpandRandom, PreservesServersAndIds) {
  const Graph base = make_rrg(12, 4, 3, 2);
  const auto exp = expand_random(base, 4, 5, 3);
  for (NodeId n = 0; n < 12; ++n)
    EXPECT_EQ(exp.graph.servers(n), base.servers(n));
  EXPECT_EQ(exp.graph.servers(12), 5);
  EXPECT_EQ(exp.graph.total_servers(), base.total_servers() + 5);
}

TEST(ExpandRandom, DeterministicPerSeed) {
  const Graph base = make_rrg(12, 4, 1, 2);
  const auto a = expand_random(base, 4, 1, 9);
  const auto b = expand_random(base, 4, 1, 9);
  ASSERT_EQ(a.graph.num_links(), b.graph.num_links());
  for (LinkId l = 0; l < a.graph.num_links(); ++l) {
    EXPECT_EQ(a.graph.link(l).a, b.graph.link(l).a);
    EXPECT_EQ(a.graph.link(l).b, b.graph.link(l).b);
  }
}

TEST(ExpandRandom, RepeatedGrowthKeepsRegularityOfOldSwitches) {
  Graph g = make_rrg(10, 4, 1, 1);
  for (int step = 0; step < 6; ++step)
    g = expand_random(g, 4, 1, static_cast<std::uint64_t>(step)).graph;
  EXPECT_EQ(g.num_switches(), 16);
  EXPECT_TRUE(g.connected());
  for (NodeId n = 0; n < g.num_switches(); ++n)
    EXPECT_EQ(g.network_degree(n), 4);
}

TEST(ExpandRandom, RejectsOddOrTinyDegree) {
  const Graph base = make_rrg(8, 4, 1, 1);
  EXPECT_THROW(expand_random(base, 3, 1, 1), Error);
  EXPECT_THROW(expand_random(base, 0, 1, 1), Error);
}

TEST(ExpandDRing, InvalidArgumentsRejected) {
  const DRing base = make_dring(5, 2, 1);
  EXPECT_THROW(expand_dring(base, 0, 1, 0), Error);
  EXPECT_THROW(expand_dring(base, 2, 1, 5), Error);
  EXPECT_THROW(expand_dring(base, 2, 1, -1), Error);
}

}  // namespace
}  // namespace spineless::topo
