#include "topo/export.h"

#include <gtest/gtest.h>

#include <sstream>

#include "topo/builders.h"

namespace spineless::topo {
namespace {

TEST(DotExport, ContainsAllNodesAndEdges) {
  const Graph g = make_leaf_spine(3, 1);
  const auto dot = to_dot(g);
  for (NodeId n = 0; n < g.num_switches(); ++n) {
    EXPECT_NE(dot.find("s" + std::to_string(n) + " ["), std::string::npos);
  }
  std::size_t edges = 0, pos = 0;
  while ((pos = dot.find(" -- ", pos)) != std::string::npos) {
    ++edges;
    pos += 4;
  }
  EXPECT_EQ(edges, static_cast<std::size_t>(g.num_links()));
}

TEST(DotExport, GroupColoringUsesPalette) {
  const DRing d = make_dring(5, 2, 1);
  const auto dot = to_dot(d.graph, &d.supernode_of);
  // Two switches in the same supernode share a fill color; switches in
  // different supernodes of the first two groups don't.
  EXPECT_NE(dot.find("#4e79a7"), std::string::npos);
  EXPECT_NE(dot.find("#f28e2b"), std::string::npos);
}

TEST(DotExport, WellFormedBraces) {
  const auto dot = to_dot(make_rrg(8, 3, 1, 1));
  EXPECT_EQ(dot.front(), 'g');
  EXPECT_EQ(dot[dot.size() - 2], '}');
}

TEST(EdgeList, OneLinePerLinkPlusServerComments) {
  const Graph g = make_leaf_spine(3, 1);  // 4 leaves w/ servers + 1 spine
  const auto txt = to_edge_list(g);
  std::istringstream in(txt);
  std::string line;
  int links = 0, server_lines = 0;
  while (std::getline(in, line)) {
    if (line.rfind("# servers", 0) == 0) {
      ++server_lines;
    } else if (!line.empty() && line[0] != '#') {
      ++links;
    }
  }
  EXPECT_EQ(links, g.num_links());
  EXPECT_EQ(server_lines, 4);
}

TEST(EdgeList, RoundTripsAdjacency) {
  const Graph g = make_rrg(10, 4, 2, 9);
  std::istringstream in(to_edge_list(g));
  Graph rebuilt(g.num_switches());
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    int a, b;
    ls >> a >> b;
    rebuilt.add_link(static_cast<NodeId>(a), static_cast<NodeId>(b));
  }
  ASSERT_EQ(rebuilt.num_links(), g.num_links());
  for (NodeId a = 0; a < g.num_switches(); ++a)
    for (NodeId b = 0; b < g.num_switches(); ++b)
      EXPECT_EQ(rebuilt.adjacent(a, b), g.adjacent(a, b));
}

}  // namespace
}  // namespace spineless::topo
