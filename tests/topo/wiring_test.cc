#include "topo/wiring.h"

#include <gtest/gtest.h>

#include "topo/builders.h"

namespace spineless::topo {
namespace {

TEST(Layout, RowMajorPositions) {
  Graph g(5);
  LayoutConfig cfg;
  cfg.racks_per_row = 3;
  cfg.rack_pitch_m = 1.0;
  cfg.row_pitch_m = 10.0;
  const auto pos = row_major_layout(g, cfg);
  ASSERT_EQ(pos.size(), 5u);
  EXPECT_DOUBLE_EQ(pos[0].x, 0.0);
  EXPECT_DOUBLE_EQ(pos[2].x, 2.0);
  EXPECT_DOUBLE_EQ(pos[3].x, 0.0);
  EXPECT_DOUBLE_EQ(pos[3].y, 10.0);
  EXPECT_DOUBLE_EQ(pos[4].y, 10.0);
}

TEST(Layout, CableLengthManhattanPlusSlack) {
  LayoutConfig cfg;
  cfg.slack_m = 2.0;
  EXPECT_DOUBLE_EQ(
      cable_length_m(RackPosition{0, 0}, RackPosition{3, 4}, cfg), 9.0);
  EXPECT_DOUBLE_EQ(
      cable_length_m(RackPosition{1, 1}, RackPosition{1, 1}, cfg), 2.0);
}

TEST(WiringReport, CountsCablesAndBundles) {
  Graph g(3);
  g.add_link(0, 1);
  g.add_link(0, 1);  // second cable in the same bundle
  g.add_link(1, 2);
  LayoutConfig cfg;
  const auto pos = row_major_layout(g, cfg);
  const auto rep = wiring_report(g, pos, cfg);
  EXPECT_EQ(rep.cables, 3);
  EXPECT_EQ(rep.bundles, 2);
  EXPECT_GT(rep.total_m, 0.0);
  EXPECT_GE(rep.max_m, rep.mean_m);
  EXPECT_EQ(rep.lengths.count(), 3u);
}

TEST(WiringReport, LocalFractionBounds) {
  const Graph g = topo::make_dring(8, 2, 1).graph;
  LayoutConfig cfg;
  const auto pos = row_major_layout(g, cfg);
  const auto rep = wiring_report(g, pos, cfg);
  EXPECT_GE(rep.local_fraction, 0.0);
  EXPECT_LE(rep.local_fraction, 1.0);
}

TEST(WiringReport, DRingCablesMoreLocalThanRrg) {
  // The operational claim: DRing ToRs only talk to neighboring supernodes,
  // so with supernodes laid out contiguously its cable-length distribution
  // is tighter than an equal-degree random graph's.
  const int racks = 32;
  const DRing dring = make_dring(8, 4, 1);
  const Graph rrg = make_rrg(racks, 16, 1, 3);
  LayoutConfig cfg;
  cfg.racks_per_row = 8;
  const auto d_rep =
      wiring_report(dring.graph, row_major_layout(dring.graph, cfg), cfg);
  const auto r_rep = wiring_report(rrg, row_major_layout(rrg, cfg), cfg);
  EXPECT_EQ(d_rep.cables, r_rep.cables);  // same equipment
  EXPECT_LT(d_rep.mean_m, r_rep.mean_m);
  EXPECT_LT(d_rep.lengths.p99(), r_rep.lengths.p99());
}

TEST(WiringReport, PositionSizeMismatchRejected) {
  Graph g(3);
  g.add_link(0, 1);
  LayoutConfig cfg;
  EXPECT_THROW(wiring_report(g, {RackPosition{}}, cfg), Error);
}

}  // namespace
}  // namespace spineless::topo
