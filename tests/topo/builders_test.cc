#include "topo/builders.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "topo/analysis.h"

namespace spineless::topo {
namespace {

// ---------------------------------------------------------------- leaf-spine

struct LeafSpineCase {
  int x, y;
};

class LeafSpineProperties : public ::testing::TestWithParam<LeafSpineCase> {};

TEST_P(LeafSpineProperties, StructureMatchesDefinition) {
  const auto [x, y] = GetParam();
  const Graph g = make_leaf_spine(x, y);
  ASSERT_EQ(g.num_switches(), x + 2 * y);
  EXPECT_EQ(g.num_links(), (x + y) * y);  // every leaf to every spine
  EXPECT_EQ(g.total_servers(), x * (x + y));
  // Leaves: y network ports + x servers; spines: x+y network ports.
  for (NodeId leaf = 0; leaf < leaf_spine_num_leaves(x, y); ++leaf) {
    EXPECT_EQ(g.network_degree(leaf), y);
    EXPECT_EQ(g.servers(leaf), x);
  }
  for (NodeId s = leaf_spine_num_leaves(x, y); s < g.num_switches(); ++s) {
    EXPECT_EQ(g.network_degree(s), x + y);
    EXPECT_EQ(g.servers(s), 0);
  }
  EXPECT_TRUE(g.connected());
  EXPECT_NO_THROW(g.validate_ports());
}

TEST_P(LeafSpineProperties, LeavesNeverDirectlyConnected) {
  const auto [x, y] = GetParam();
  const Graph g = make_leaf_spine(x, y);
  for (NodeId a = 0; a < leaf_spine_num_leaves(x, y); ++a)
    for (NodeId b = a + 1; b < leaf_spine_num_leaves(x, y); ++b)
      EXPECT_FALSE(g.adjacent(a, b));
}

TEST_P(LeafSpineProperties, DiameterIsTwo) {
  const auto [x, y] = GetParam();
  const Graph g = make_leaf_spine(x, y);
  EXPECT_EQ(path_length_stats(g).diameter, 2);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LeafSpineProperties,
                         ::testing::Values(LeafSpineCase{3, 1},
                                           LeafSpineCase{4, 2},
                                           LeafSpineCase{6, 2},
                                           LeafSpineCase{12, 4},
                                           LeafSpineCase{9, 3},
                                           LeafSpineCase{48, 16}));

TEST(LeafSpine, RejectsNonPositiveParams) {
  EXPECT_THROW(make_leaf_spine(0, 1), Error);
  EXPECT_THROW(make_leaf_spine(1, 0), Error);
}

// -------------------------------------------------------------------- DRing

struct DRingCase {
  int m, n;
};

class DRingProperties : public ::testing::TestWithParam<DRingCase> {};

TEST_P(DRingProperties, AllSwitchesSymmetricAndCorrectDegree) {
  const auto [m, n] = GetParam();
  const DRing d = make_dring(m, n, /*servers_per_tor=*/4);
  const Graph& g = d.graph;
  ASSERT_EQ(g.num_switches(), m * n);
  EXPECT_TRUE(g.connected());
  // For m >= 5 every ToR sees 4 adjacent-supernode neighborhoods of n ToRs.
  const int expected_degree = m >= 5 ? 4 * n : (m == 4 ? 3 * n : 2 * n);
  for (NodeId t = 0; t < g.num_switches(); ++t) {
    EXPECT_EQ(g.network_degree(t), expected_degree) << "tor " << t;
    EXPECT_EQ(g.servers(t), 4);
  }
}

TEST_P(DRingProperties, AdjacencyFollowsSupergraph) {
  const auto [m, n] = GetParam();
  const DRing d = make_dring(m, n, 1);
  const Graph& g = d.graph;
  for (NodeId a = 0; a < g.num_switches(); ++a) {
    for (NodeId b = a + 1; b < g.num_switches(); ++b) {
      const int sa = d.supernode_of[static_cast<std::size_t>(a)];
      const int sb = d.supernode_of[static_cast<std::size_t>(b)];
      const int fwd = (sb - sa + m) % m;
      const int diff = std::min(fwd, m - fwd);
      const bool should_link = diff == 1 || diff == 2;
      EXPECT_EQ(g.adjacent(a, b), should_link)
          << "tors " << a << "," << b << " supernodes " << sa << "," << sb;
    }
  }
}

TEST_P(DRingProperties, SameSupernodeNeverLinked) {
  const auto [m, n] = GetParam();
  const DRing d = make_dring(m, n, 1);
  for (NodeId a = 0; a < d.graph.num_switches(); ++a)
    for (NodeId b = a + 1; b < d.graph.num_switches(); ++b)
      if (d.supernode_of[static_cast<std::size_t>(a)] ==
          d.supernode_of[static_cast<std::size_t>(b)]) {
        EXPECT_FALSE(d.graph.adjacent(a, b));
      }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DRingProperties,
                         ::testing::Values(DRingCase{3, 2}, DRingCase{4, 2},
                                           DRingCase{5, 1}, DRingCase{5, 3},
                                           DRingCase{8, 2}, DRingCase{10, 2},
                                           DRingCase{12, 4}));

TEST(DRing, DiameterGrowsLinearlyWithSupernodes) {
  // Ring supergraph with +1/+2 chords: supernode distance ~ m/4, so the
  // switch-level diameter grows with m — the structural reason DRing
  // deteriorates at scale (§6.3).
  const int d10 = path_length_stats(make_dring(10, 2, 1).graph).diameter;
  const int d20 = path_length_stats(make_dring(20, 2, 1).graph).diameter;
  EXPECT_GT(d20, d10);
}

TEST(DRing, RejectsTooFewSupernodes) {
  EXPECT_THROW(make_dring(2, 2, 1), Error);
}

TEST(DRing, PortBudgetEnforced) {
  // 5 supernodes x 2 ToRs: degree 8, so 10 ports cannot host 4 servers.
  EXPECT_THROW(make_dring(5, 2, 4, /*ports_per_switch=*/10), Error);
  EXPECT_NO_THROW(make_dring(5, 2, 2, /*ports_per_switch=*/10));
}

TEST(DRingEquipment, PaperConfigMatchesPublishedNumbers) {
  // §5.1: 80 switches of 64 ports in 12 supernodes -> 80 racks, ~2988
  // servers ("about 2.8% fewer" than the 3072-server leaf-spine). The
  // exact count depends on how the uneven supernode sizes are arranged
  // around the ring (2982..2992 across arrangements); our Bresenham
  // interleaving gives 2992, within 0.15% of the paper's 2988.
  const DRing d = make_dring_equipment(80, 64, -1, 12);
  EXPECT_EQ(d.graph.num_switches(), 80);
  EXPECT_EQ(d.graph.total_servers(), 2992);
  EXPECT_NEAR(d.graph.total_servers(), 2988, 6);
  EXPECT_TRUE(d.graph.connected());
  EXPECT_NO_THROW(d.graph.validate_ports());
}

TEST(DRingEquipment, ExplicitServerCountHonored) {
  const DRing d = make_dring_equipment(20, 16, 100, 10);
  EXPECT_EQ(d.graph.total_servers(), 100);
  EXPECT_NO_THROW(d.graph.validate_ports());
}

TEST(DRingEquipment, OverCapacityRejected) {
  EXPECT_THROW(make_dring_equipment(20, 16, 10'000, 10), Error);
}

TEST(DRingEquipment, ServersSpreadEvenly) {
  const DRing d = make_dring_equipment(20, 16, 100, 10);
  int lo = 1 << 30, hi = 0;
  for (NodeId t = 0; t < d.graph.num_switches(); ++t) {
    lo = std::min(lo, d.graph.servers(t));
    hi = std::max(hi, d.graph.servers(t));
  }
  EXPECT_LE(hi - lo, 1);
}

// ---------------------------------------------------------------------- RRG

struct RrgCase {
  int n, degree;
  std::uint64_t seed;
};

class RrgProperties : public ::testing::TestWithParam<RrgCase> {};

TEST_P(RrgProperties, RegularSimpleConnected) {
  const auto [n, degree, seed] = GetParam();
  const Graph g = make_rrg(n, degree, /*servers=*/2, seed);
  ASSERT_EQ(g.num_switches(), n);
  EXPECT_TRUE(g.connected());
  for (NodeId u = 0; u < g.num_switches(); ++u)
    EXPECT_EQ(g.network_degree(u), degree);
  // Simple: no duplicate neighbor entries.
  for (NodeId u = 0; u < g.num_switches(); ++u) {
    std::set<NodeId> nbrs;
    for (const Port& p : g.neighbors(u)) {
      EXPECT_NE(p.neighbor, u);
      EXPECT_TRUE(nbrs.insert(p.neighbor).second)
          << "duplicate edge at " << u;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RrgProperties,
    ::testing::Values(RrgCase{8, 3, 1}, RrgCase{10, 4, 2}, RrgCase{16, 5, 3},
                      RrgCase{20, 8, 4}, RrgCase{40, 12, 5},
                      RrgCase{80, 26, 6}, RrgCase{9, 4, 7}));

TEST(Rrg, DeterministicForSameSeed) {
  const Graph a = make_rrg(20, 4, 1, 99);
  const Graph b = make_rrg(20, 4, 1, 99);
  ASSERT_EQ(a.num_links(), b.num_links());
  for (LinkId l = 0; l < a.num_links(); ++l) {
    EXPECT_EQ(a.link(l).a, b.link(l).a);
    EXPECT_EQ(a.link(l).b, b.link(l).b);
  }
}

TEST(Rrg, DifferentSeedsGiveDifferentWirings) {
  const Graph a = make_rrg(20, 4, 1, 1);
  const Graph b = make_rrg(20, 4, 1, 2);
  bool any_different = false;
  for (LinkId l = 0; l < a.num_links() && !any_different; ++l)
    any_different = a.link(l).a != b.link(l).a || a.link(l).b != b.link(l).b;
  EXPECT_TRUE(any_different);
}

TEST(Rrg, DegreeMustBeLessThanNodes) {
  EXPECT_THROW(make_rrg(4, 4, 1, 1), Error);
}

TEST(Rrg, OddTotalDegreeRejected) {
  // 3 nodes of degree 3 -> odd stub total.
  EXPECT_THROW(make_rrg_with_degrees({3, 3, 3}, {1, 1, 1}, 1), Error);
}

TEST(Rrg, DegreeSequenceRealized) {
  const std::vector<int> degrees{3, 3, 2, 2, 2, 2};
  const Graph g = make_rrg_with_degrees(degrees, {1, 1, 1, 1, 1, 1}, 5);
  for (NodeId u = 0; u < g.num_switches(); ++u)
    EXPECT_EQ(g.network_degree(u), degrees[static_cast<std::size_t>(u)]);
}

// ------------------------------------------------------------ flat transform

class FlattenProperties
    : public ::testing::TestWithParam<LeafSpineCase> {};

TEST_P(FlattenProperties, SameEquipmentAsBaseline) {
  const auto [x, y] = GetParam();
  const Graph flat = flatten_leaf_spine(x, y, 7);
  EXPECT_EQ(flat.num_switches(), x + 2 * y);
  // Server count matches up to the single parity adjustment.
  EXPECT_GE(flat.total_servers(), x * (x + y) - 1);
  EXPECT_LE(flat.total_servers(), x * (x + y));
  // No switch exceeds the x+y port budget.
  for (NodeId u = 0; u < flat.num_switches(); ++u)
    EXPECT_LE(flat.ports_used(u), x + y);
  EXPECT_TRUE(flat.connected());
}

TEST_P(FlattenProperties, EverySwitchHostsServers) {
  const auto [x, y] = GetParam();
  const Graph flat = flatten_leaf_spine(x, y, 7);
  for (NodeId u = 0; u < flat.num_switches(); ++u)
    EXPECT_GT(flat.servers(u), 0);
}

TEST_P(FlattenProperties, ServersSpreadWithinOne) {
  const auto [x, y] = GetParam();
  const Graph flat = flatten_leaf_spine(x, y, 7);
  int lo = 1 << 30, hi = 0;
  for (NodeId u = 0; u < flat.num_switches(); ++u) {
    lo = std::min(lo, flat.servers(u));
    hi = std::max(hi, flat.servers(u));
  }
  EXPECT_LE(hi - lo, 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FlattenProperties,
                         ::testing::Values(LeafSpineCase{6, 2},
                                           LeafSpineCase{12, 4},
                                           LeafSpineCase{24, 8},
                                           LeafSpineCase{48, 16}));

// ------------------------------------------------------------------ Xpander

TEST(Xpander, LiftStructure) {
  const Graph g = make_xpander(/*net_degree=*/4, /*lift=*/6,
                               /*servers=*/2, /*seed=*/3);
  EXPECT_EQ(g.num_switches(), 5 * 6);
  EXPECT_TRUE(g.connected());
  for (NodeId u = 0; u < g.num_switches(); ++u)
    EXPECT_EQ(g.network_degree(u), 4);
  // No edges within a lifted column.
  for (NodeId u = 0; u < g.num_switches(); ++u)
    for (const Port& p : g.neighbors(u))
      EXPECT_NE(u / 6, p.neighbor / 6);
}

TEST(Xpander, LiftOneIsCompleteGraph) {
  const Graph g = make_xpander(3, 1, 1, 1);
  EXPECT_EQ(g.num_switches(), 4);
  EXPECT_EQ(g.num_links(), 6);
}

// ---------------------------------------------------------------- Dragonfly

TEST(Dragonfly, BalancedConfigStructure) {
  // a=4, h=1, groups = a*h+1 = 5: one global link per group pair.
  const Graph g = make_dragonfly(5, 4, 1, 2);
  EXPECT_EQ(g.num_switches(), 20);
  EXPECT_TRUE(g.connected());
  // Links: 5 groups x C(4,2) intra + C(5,2) global.
  EXPECT_EQ(g.num_links(), 5 * 6 + 10);
  // Every switch: 3 intra + exactly 1 global port used.
  for (NodeId u = 0; u < g.num_switches(); ++u)
    EXPECT_EQ(g.network_degree(u), 4);
  EXPECT_EQ(path_length_stats(g).diameter, 3);
}

TEST(Dragonfly, IntraGroupIsComplete) {
  const Graph g = make_dragonfly(4, 3, 1, 1);
  for (NodeId u = 0; u < g.num_switches(); ++u) {
    for (NodeId v = u + 1; v < g.num_switches(); ++v) {
      if (dragonfly_group_of(u, 3) == dragonfly_group_of(v, 3)) {
        EXPECT_TRUE(g.adjacent(u, v)) << u << "," << v;
      }
    }
  }
}

TEST(Dragonfly, EveryGroupPairLinked) {
  const int a = 5, groups = 8;
  const Graph g = make_dragonfly(groups, a, 2, 4);
  std::vector<std::vector<bool>> pair(static_cast<std::size_t>(groups),
                                      std::vector<bool>(static_cast<std::size_t>(groups), false));
  for (const Link& l : g.links()) {
    const int gi = dragonfly_group_of(l.a, a);
    const int gj = dragonfly_group_of(l.b, a);
    pair[static_cast<std::size_t>(gi)][static_cast<std::size_t>(gj)] = true;
    pair[static_cast<std::size_t>(gj)][static_cast<std::size_t>(gi)] = true;
  }
  for (int i = 0; i < groups; ++i)
    for (int j = 0; j < groups; ++j)
      if (i != j) {
        EXPECT_TRUE(pair[static_cast<std::size_t>(i)]
                        [static_cast<std::size_t>(j)]);
      }
}

TEST(Dragonfly, GlobalPortBudgetRespected) {
  const int a = 5, h = 2, groups = 8;
  const Graph g = make_dragonfly(groups, a, h, 0);
  for (NodeId u = 0; u < g.num_switches(); ++u) {
    int global = 0;
    for (const Port& p : g.neighbors(u))
      global += dragonfly_group_of(p.neighbor, a) != dragonfly_group_of(u, a);
    EXPECT_LE(global, h);
  }
}

TEST(Dragonfly, RejectsUnderConnectedConfig) {
  // a*h = 2 < groups-1 = 4: some pairs could never be linked.
  EXPECT_THROW(make_dragonfly(5, 2, 1, 1), Error);
}

}  // namespace
}  // namespace spineless::topo
