#include "topo/graph.h"

#include <gtest/gtest.h>

namespace spineless::topo {
namespace {

TEST(Graph, AddLinkUpdatesAdjacency) {
  Graph g(3);
  const LinkId l = g.add_link(0, 1);
  EXPECT_EQ(g.num_links(), 1);
  EXPECT_EQ(g.link(l).a, 0);
  EXPECT_EQ(g.link(l).b, 1);
  EXPECT_TRUE(g.adjacent(0, 1));
  EXPECT_TRUE(g.adjacent(1, 0));
  EXPECT_FALSE(g.adjacent(0, 2));
  EXPECT_EQ(g.network_degree(0), 1);
  EXPECT_EQ(g.network_degree(2), 0);
}

TEST(Graph, LinkOtherEndpoint) {
  Graph g(2);
  const LinkId l = g.add_link(0, 1);
  EXPECT_EQ(g.link(l).other(0), 1);
  EXPECT_EQ(g.link(l).other(1), 0);
}

TEST(Graph, SelfLoopRejected) {
  Graph g(2);
  EXPECT_THROW(g.add_link(1, 1), Error);
}

TEST(Graph, OutOfRangeEndpointsRejected) {
  Graph g(2);
  EXPECT_THROW(g.add_link(0, 2), Error);
  EXPECT_THROW(g.add_link(-1, 0), Error);
}

TEST(Graph, ParallelLinksAllowed) {
  Graph g(2);
  g.add_link(0, 1);
  g.add_link(0, 1);
  EXPECT_EQ(g.num_links(), 2);
  EXPECT_EQ(g.network_degree(0), 2);
}

TEST(Graph, ServerAccounting) {
  Graph g(3);
  g.set_servers(0, 4);
  g.set_servers(2, 2);
  EXPECT_EQ(g.total_servers(), 6);
  g.set_servers(0, 1);  // reassignment adjusts the total
  EXPECT_EQ(g.total_servers(), 3);
  EXPECT_EQ(g.servers(1), 0);
}

TEST(Graph, HostMappingContiguousPerSwitch) {
  Graph g(3);
  g.set_servers(0, 2);
  g.set_servers(1, 0);
  g.set_servers(2, 3);
  EXPECT_EQ(g.first_host_of(0), 0);
  EXPECT_EQ(g.first_host_of(2), 2);
  EXPECT_EQ(g.tor_of_host(0), 0);
  EXPECT_EQ(g.tor_of_host(1), 0);
  EXPECT_EQ(g.tor_of_host(2), 2);
  EXPECT_EQ(g.tor_of_host(4), 2);
  EXPECT_THROW(g.tor_of_host(5), Error);
  EXPECT_THROW(g.tor_of_host(-1), Error);
}

TEST(Graph, HostIndexRebuildsAfterServerChange) {
  Graph g(2);
  g.set_servers(0, 1);
  g.set_servers(1, 1);
  EXPECT_EQ(g.tor_of_host(1), 1);
  g.set_servers(0, 3);
  EXPECT_EQ(g.tor_of_host(1), 0);
  EXPECT_EQ(g.tor_of_host(3), 1);
}

TEST(Graph, ConnectivityDetection) {
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(2, 3);
  EXPECT_FALSE(g.connected());
  g.add_link(1, 2);
  EXPECT_TRUE(g.connected());
}

TEST(Graph, SingleNodeIsConnected) {
  Graph g(1);
  EXPECT_TRUE(g.connected());
}

TEST(Graph, PortBudgetValidation) {
  Graph g(2, /*ports_per_switch=*/3);
  g.add_link(0, 1);
  g.set_servers(0, 2);
  EXPECT_NO_THROW(g.validate_ports());
  g.set_servers(0, 3);  // 1 net + 3 servers > 3 ports
  EXPECT_THROW(g.validate_ports(), Error);
}

TEST(Graph, ZeroPortBudgetDisablesCheck) {
  Graph g(2, 0);
  g.add_link(0, 1);
  g.set_servers(0, 1000);
  EXPECT_NO_THROW(g.validate_ports());
}

TEST(Graph, PortsUsedCountsBoth) {
  Graph g(2);
  g.add_link(0, 1);
  g.set_servers(0, 5);
  EXPECT_EQ(g.ports_used(0), 6);
  EXPECT_EQ(g.ports_used(1), 1);
}

}  // namespace
}  // namespace spineless::topo
