#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace spineless {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 5);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(3);
  for (int bound : {1, 2, 3, 10, 1000}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.uniform(static_cast<std::uint64_t>(bound)),
                static_cast<std::uint64_t>(bound));
    }
  }
}

TEST(Rng, UniformCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform_real();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, ParetoRespectsScaleFloor) {
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) EXPECT_GE(rng.pareto(1.5, 10.0), 10.0);
}

TEST(Rng, ParetoWithMeanHasApproximatelyThatMean) {
  // Use a tamer alpha so the sample mean converges at this sample size.
  Rng rng(19);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.pareto_with_mean(3.0, 100.0);
  EXPECT_NEAR(sum / n, 100.0, 3.0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(23);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(29);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.shuffle(v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(31);
  for (std::size_t k : {0u, 1u, 5u, 50u, 100u}) {
    const auto sample = rng.sample_without_replacement(100, k);
    std::set<std::size_t> s(sample.begin(), sample.end());
    EXPECT_EQ(s.size(), k);
    for (auto v : sample) EXPECT_LT(v, 100u);
  }
}

TEST(Rng, SampleWithoutReplacementFullRange) {
  Rng rng(37);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> s(sample.begin(), sample.end());
  EXPECT_EQ(s.size(), 10u);
}

TEST(Rng, SampleRejectsOversizedRequest) {
  Rng rng(41);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), Error);
}

TEST(Splitmix, IsDeterministicAndMixing) {
  EXPECT_EQ(splitmix64(1), splitmix64(1));
  EXPECT_NE(splitmix64(1), splitmix64(2));
  // Avalanche smoke check: flipping one input bit flips many output bits.
  const auto diff = splitmix64(0) ^ splitmix64(1);
  EXPECT_GT(__builtin_popcountll(diff), 10);
}

TEST(ZipfSampler, ProbabilitiesSumToOneAndDecrease) {
  ZipfSampler zipf(50, 1.2);
  double sum = 0;
  for (std::size_t i = 0; i < zipf.size(); ++i) {
    sum += zipf.probability(i);
    if (i > 0) {
      EXPECT_LE(zipf.probability(i), zipf.probability(i - 1));
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfSampler, EmpiricalMatchesProbabilities) {
  ZipfSampler zipf(10, 1.0);
  Rng rng(43);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf(rng)];
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, zipf.probability(i),
                0.01);
  }
}

TEST(ZipfSampler, SingleElement) {
  ZipfSampler zipf(1, 2.0);
  Rng rng(47);
  EXPECT_EQ(zipf(rng), 0u);
  EXPECT_DOUBLE_EQ(zipf.probability(0), 1.0);
}

}  // namespace
}  // namespace spineless
