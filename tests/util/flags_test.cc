#include "util/flags.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace spineless {
namespace {

Flags make_flags(std::vector<std::string> args) {
  std::vector<char*> argv{const_cast<char*>("prog")};
  for (auto& a : args) argv.push_back(a.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, ParsesKeyValuePairs) {
  auto f = make_flags({"--alpha=1", "--name=dring"});
  EXPECT_TRUE(f.has("alpha"));
  EXPECT_EQ(f.get_int("alpha", 0), 1);
  EXPECT_EQ(f.get("name", ""), "dring");
}

TEST(Flags, BareFlagIsTrue) {
  auto f = make_flags({"--verbose"});
  EXPECT_TRUE(f.get_bool("verbose", false));
}

TEST(Flags, DefaultsWhenAbsent) {
  auto f = make_flags({});
  EXPECT_FALSE(f.has("missing"));
  EXPECT_EQ(f.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(f.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(f.get("missing", "dflt"), "dflt");
  EXPECT_TRUE(f.get_bool("missing", true));
}

TEST(Flags, NonFlagArgumentsIgnored) {
  auto f = make_flags({"positional", "-x", "--real=3.5"});
  EXPECT_FALSE(f.has("positional"));
  EXPECT_FALSE(f.has("x"));
  EXPECT_DOUBLE_EQ(f.get_double("real", 0), 3.5);
}

TEST(Flags, PaperScaleViaFlag) {
  EXPECT_TRUE(make_flags({"--scale=paper"}).paper_scale());
  EXPECT_FALSE(make_flags({"--scale=small"}).paper_scale());
}

TEST(Flags, PaperScaleViaEnv) {
  ::setenv("SPINELESS_PAPER_SCALE", "1", 1);
  EXPECT_TRUE(make_flags({}).paper_scale());
  ::setenv("SPINELESS_PAPER_SCALE", "0", 1);
  EXPECT_FALSE(make_flags({}).paper_scale());
  ::unsetenv("SPINELESS_PAPER_SCALE");
}

TEST(Flags, BoolSpellings) {
  EXPECT_TRUE(make_flags({"--a=yes"}).get_bool("a", false));
  EXPECT_TRUE(make_flags({"--a=1"}).get_bool("a", false));
  EXPECT_FALSE(make_flags({"--a=no"}).get_bool("a", true));
}

}  // namespace
}  // namespace spineless
