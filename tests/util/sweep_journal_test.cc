// Sweep-journal tests: record round-trips (including tab/newline/equals
// escaping), crash relics (partial trailing line), and header hygiene (a
// journal from a different bench or configuration is never reused).
#include <gtest/gtest.h>

#include <string>

#include "util/fsio.h"
#include "util/sweep_journal.h"

namespace spineless::util {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "spineless_journal_" + name;
}

TEST(SweepJournal, RecordsRoundTripAcrossReopen) {
  const std::string path = tmp_path("roundtrip");
  remove_file(path);
  {
    SweepJournal j(path, "fig6", "x=24 y=8", /*resume=*/false);
    j.record("cell0", {{"label", "DRing m=5"}, {"p99_ms", "1.25"}});
    j.record("cell1", {{"label", "RRG m=5"}, {"events", "123456"}});
  }
  SweepJournal j(path, "fig6", "x=24 y=8", /*resume=*/true);
  EXPECT_EQ(j.loaded(), 2u);
  ASSERT_TRUE(j.has("cell0"));
  ASSERT_TRUE(j.has("cell1"));
  EXPECT_EQ(j.get("cell0")->at("label"), "DRing m=5");
  EXPECT_EQ(j.get("cell0")->at("p99_ms"), "1.25");
  EXPECT_EQ(j.get("cell1")->at("events"), "123456");
  EXPECT_FALSE(j.has("cell2"));
  remove_file(path);
}

TEST(SweepJournal, EscapesSeparatorsInKeysAndValues) {
  const std::string path = tmp_path("escape");
  remove_file(path);
  const std::string nasty = "a\tb\nc=d\\e";
  {
    SweepJournal j(path, "b\tench", "sig=1", false);
    j.record("k=ey\t1", {{nasty, nasty}});
  }
  SweepJournal j(path, "b\tench", "sig=1", true);
  ASSERT_EQ(j.loaded(), 1u);
  ASSERT_TRUE(j.has("k=ey\t1"));
  EXPECT_EQ(j.get("k=ey\t1")->at(nasty), nasty);
  remove_file(path);
}

TEST(SweepJournal, LastRecordWinsForRewrittenCell) {
  const std::string path = tmp_path("lastwins");
  remove_file(path);
  {
    SweepJournal j(path, "bench", "sig", false);
    j.record("cell0", {{"v", "first"}});
    j.record("cell0", {{"v", "second"}});
  }
  SweepJournal j(path, "bench", "sig", true);
  EXPECT_EQ(j.loaded(), 1u);
  EXPECT_EQ(j.get("cell0")->at("v"), "second");
  remove_file(path);
}

TEST(SweepJournal, PartialTrailingLineIsIgnored) {
  const std::string path = tmp_path("partial");
  remove_file(path);
  {
    SweepJournal j(path, "bench", "sig", false);
    j.record("cell0", {{"v", "ok"}});
  }
  // Simulate a crash mid-append: a record with no trailing newline.
  std::string contents;
  ASSERT_TRUE(read_file(path, &contents));
  contents += "cell\tcell1\tv=torn";
  ASSERT_TRUE(atomic_write_file(path, contents));

  SweepJournal j(path, "bench", "sig", true);
  EXPECT_EQ(j.loaded(), 1u);
  EXPECT_TRUE(j.has("cell0"));
  EXPECT_FALSE(j.has("cell1"));  // the torn record costs only itself
  remove_file(path);
}

TEST(SweepJournal, MismatchedConfigDiscardsJournal) {
  const std::string path = tmp_path("mismatch");
  remove_file(path);
  {
    SweepJournal j(path, "bench", "intra=1", false);
    j.record("cell0", {{"v", "stale"}});
  }
  // Same bench, different configuration: the records cannot be reused.
  SweepJournal j(path, "bench", "intra=4", /*resume=*/true);
  EXPECT_EQ(j.loaded(), 0u);
  EXPECT_FALSE(j.has("cell0"));
  EXPECT_FALSE(file_exists(path));  // stale file was dropped
  remove_file(path);
}

TEST(SweepJournal, NonResumeOpenTruncatesExistingJournal) {
  const std::string path = tmp_path("truncate");
  remove_file(path);
  {
    SweepJournal j(path, "bench", "sig", false);
    j.record("cell0", {{"v", "old"}});
  }
  {
    SweepJournal j(path, "bench", "sig", /*resume=*/false);
    EXPECT_EQ(j.loaded(), 0u);
    EXPECT_FALSE(j.has("cell0"));
  }
  remove_file(path);
}

}  // namespace
}  // namespace spineless::util
