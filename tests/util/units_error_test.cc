#include <gtest/gtest.h>

#include "util/error.h"
#include "util/units.h"

namespace spineless {
namespace {

TEST(Units, ConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(units::to_seconds(units::kSecond), 1.0);
  EXPECT_DOUBLE_EQ(units::to_millis(units::kMillisecond), 1.0);
  EXPECT_DOUBLE_EQ(units::to_micros(units::kMicrosecond), 1.0);
  EXPECT_DOUBLE_EQ(units::to_millis(units::kSecond), 1000.0);
  EXPECT_EQ(units::kSecond, 1000 * units::kMillisecond);
  EXPECT_EQ(units::kMillisecond, 1000 * units::kMicrosecond);
  EXPECT_EQ(units::kMicrosecond, 1000 * units::kNanosecond);
}

TEST(Units, SerializationTimeRoundsUp) {
  // 1 byte at 3 bits/s: 8/3 s -> ceil in ps.
  EXPECT_EQ(units::serialization_time(1, 3),
            (8 * units::kSecond + 2) / 3);
  // Exact division stays exact.
  EXPECT_EQ(units::serialization_time(1500, units::gbps(10)),
            1'200 * units::kNanosecond);
  // Scales linearly in bytes.
  EXPECT_EQ(units::serialization_time(3000, units::gbps(10)),
            2 * units::serialization_time(1500, units::gbps(10)));
}

TEST(Units, GbpsHelper) {
  EXPECT_EQ(units::gbps(10), 10'000'000'000LL);
  EXPECT_EQ(units::gbps(400), 400'000'000'000LL);
}

TEST(Units, SerializationTimeNoOverflowAtLargeSizes) {
  // 1 GB at 1 Gbps = 8 s; the 128-bit intermediate must not wrap.
  EXPECT_EQ(units::serialization_time(1'000'000'000, units::gbps(1)),
            8 * units::kSecond);
}

TEST(Check, ThrowsWithLocationAndMessage) {
  try {
    SPINELESS_CHECK_MSG(1 == 2, "custom detail " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom detail 42"), std::string::npos);
    EXPECT_NE(what.find("units_error_test.cc"), std::string::npos);
  }
}

TEST(Check, PassingConditionIsSilent) {
  EXPECT_NO_THROW(SPINELESS_CHECK(2 + 2 == 4));
  EXPECT_NO_THROW(SPINELESS_CHECK_MSG(true, "never shown"));
}

TEST(Check, ErrorIsARuntimeError) {
  // Call sites can catch std::exception generically.
  try {
    SPINELESS_CHECK(false);
  } catch (const std::runtime_error&) {
    SUCCEED();
    return;
  }
  FAIL();
}

}  // namespace
}  // namespace spineless
