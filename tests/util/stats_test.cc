#include "util/stats.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace spineless {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(Summary, PercentileInterpolates) {
  Summary s;
  for (double v : {10.0, 20.0, 30.0, 40.0, 50.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 50.0);
  EXPECT_DOUBLE_EQ(s.median(), 30.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 20.0);
  EXPECT_DOUBLE_EQ(s.percentile(12.5), 15.0);  // halfway between ranks 0, 1
}

TEST(Summary, PercentileAfterUnsortedInsertions) {
  Summary s;
  for (double v : {5.0, 1.0, 4.0, 2.0, 3.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  s.add(0.0);  // re-dirty after a percentile query
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
}

TEST(Summary, SingleSample) {
  Summary s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.median(), 7.0);
  EXPECT_DOUBLE_EQ(s.p99(), 7.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, EmptyThrows) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.mean(), Error);
  EXPECT_THROW(s.percentile(50), Error);
}

TEST(Summary, P99OnLargeUniformSample) {
  Summary s;
  for (int i = 0; i < 1000; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.p99(), 989.0, 1.0);
}

TEST(Summary, StddevKnownValue) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(Summary, AddAllMatchesAdd) {
  Summary a, b;
  std::vector<double> xs{1, 2, 3, 4, 5};
  a.add_all(xs);
  for (double x : xs) b.add(x);
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
  EXPECT_DOUBLE_EQ(a.p99(), b.p99());
}

TEST(Summary, BriefMentionsCount) {
  Summary s;
  s.add(1.0);
  EXPECT_NE(s.brief().find("n=1"), std::string::npos);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-5.0);   // clamps to bin 0
  h.add(100.0);  // clamps to bin 4
  h.add(5.0);    // bin 2
  EXPECT_DOUBLE_EQ(h.bin_weight(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(2), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_weight(4), 2.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 5.0);
}

TEST(Histogram, WeightedSamples) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.5, 2.5);
  EXPECT_DOUBLE_EQ(h.bin_weight(1), 2.5);
  EXPECT_DOUBLE_EQ(h.total_weight(), 2.5);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, AsciiRendersOneLinePerBin) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  const auto art = h.ascii();
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 2);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
}

}  // namespace
}  // namespace spineless
