// Self-healing runner tests: retries on crashing cells, watchdog
// cancellation of hung cells, and graceful degradation — a sweep with one
// crashing and one hanging cell still finishes, reporting both as failed
// while every other cell's result is intact.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

#include "core/runner.h"
#include "util/resilient.h"

namespace spineless::util {
namespace {

using core::Runner;

TEST(RetryPolicy, BackoffIsCappedExponential) {
  RetryPolicy p;
  p.backoff_base_s = 0.25;
  p.backoff_cap_s = 1.0;
  EXPECT_DOUBLE_EQ(p.backoff_for(1), 0.25);
  EXPECT_DOUBLE_EQ(p.backoff_for(2), 0.5);
  EXPECT_DOUBLE_EQ(p.backoff_for(3), 1.0);
  EXPECT_DOUBLE_EQ(p.backoff_for(10), 1.0);  // capped
}

TEST(RunCellAttempts, FlakyCellSucceedsOnRetrySameInputs) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_base_s = 0.001;
  Watchdog dog(1, policy);
  int calls = 0;
  const auto out = run_cell_attempts(
      dog.slot(0), policy, "cell0", [&](CellContext&) {
        if (++calls < 3) throw std::runtime_error("transient");
        return 42;
      });
  EXPECT_TRUE(out.status.ok());
  EXPECT_EQ(out.value, 42);
  EXPECT_EQ(out.status.attempts, 3);
  EXPECT_EQ(calls, 3);
}

TEST(RunCellAttempts, CrashingCellReportsFailedWithError) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.backoff_base_s = 0.001;
  Watchdog dog(1, policy);
  const auto out = run_cell_attempts(
      dog.slot(0), policy, "cell m=7 seed=3", [&](CellContext&) -> int {
        throw std::runtime_error("segfault simulated");
      });
  EXPECT_EQ(out.status.state, CellState::kFailed);
  EXPECT_EQ(out.status.attempts, 2);
  // The error names the cell and the final attempt.
  EXPECT_NE(out.status.error.find("cell m=7 seed=3"), std::string::npos);
  EXPECT_NE(out.status.error.find("attempt 2/2"), std::string::npos);
  EXPECT_NE(out.status.error.find("segfault simulated"), std::string::npos);
}

TEST(RunCellAttempts, WatchdogCancelsHangingCell) {
  RetryPolicy policy;
  policy.max_attempts = 1;
  policy.progress_timeout_s = 0.05;  // no progress for 50ms => stuck
  Watchdog dog(1, policy);
  const auto out = run_cell_attempts(
      dog.slot(0), policy, "hung", [&](CellContext& ctx) {
        // A "hung" cell: heartbeats with a progress counter that never
        // advances, polling cancellation like run_fct_experiment does.
        while (!ctx.canceled()) {
          ctx.heartbeat(1);
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        return 0;
      });
  EXPECT_EQ(out.status.state, CellState::kFailed);
  EXPECT_TRUE(out.status.timed_out);
  EXPECT_NE(out.status.error.find("watchdog"), std::string::npos);
}

TEST(RunCellAttempts, AdvancingProgressKeepsWatchdogQuiet) {
  RetryPolicy policy;
  policy.max_attempts = 1;
  policy.progress_timeout_s = 0.2;
  Watchdog dog(1, policy);
  const auto out = run_cell_attempts(
      dog.slot(0), policy, "busy", [&](CellContext& ctx) {
        for (std::uint64_t i = 1; i <= 50; ++i) {
          ctx.heartbeat(i);  // strictly advancing => never stuck
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        return 7;
      });
  EXPECT_TRUE(out.status.ok());
  EXPECT_EQ(out.value, 7);
}

TEST(RunCellAttempts, ExternalInterruptIsNotRetried) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  std::atomic<bool> sigint{false};
  policy.interrupted = [&] { return sigint.load(); };
  Watchdog dog(1, policy);
  int calls = 0;
  const auto out = run_cell_attempts(
      dog.slot(0), policy, "cell0", [&](CellContext& ctx) {
        ++calls;
        sigint.store(true);  // ^C arrives mid-cell
        while (!ctx.canceled()) {
        }
        return 0;
      });
  EXPECT_EQ(out.status.state, CellState::kInterrupted);
  EXPECT_EQ(calls, 1);  // an interrupt never burns retry attempts
}

TEST(RunCells, MixedSweepDegradesGracefully) {
  // One crashing cell, one hanging cell, six healthy cells: the sweep must
  // finish, mark exactly the two bad cells failed, and return every
  // healthy result intact in index order.
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.backoff_base_s = 0.001;
  policy.progress_timeout_s = 0.05;
  Runner runner(4);
  const auto outcomes = run_cells(
      runner, 8, policy,
      [&](std::size_t i, CellContext& ctx) -> int {
        if (i == 2) throw std::runtime_error("boom");
        if (i == 5) {
          while (!ctx.canceled()) {
            ctx.heartbeat(1);
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
          }
          return -1;
        }
        return static_cast<int>(i) * 10;
      },
      [](std::size_t i) { return "cell " + std::to_string(i); });
  ASSERT_EQ(outcomes.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    if (i == 2 || i == 5) {
      EXPECT_EQ(outcomes[i].status.state, CellState::kFailed);
      EXPECT_EQ(outcomes[i].status.attempts, 2);
      EXPECT_FALSE(outcomes[i].status.error.empty());
    } else {
      EXPECT_TRUE(outcomes[i].status.ok());
      EXPECT_EQ(outcomes[i].value, static_cast<int>(i) * 10);
    }
  }
}

TEST(Watchdog, WallClockTimeoutCancelsLongCell) {
  RetryPolicy policy;
  policy.max_attempts = 1;
  policy.wall_timeout_s = 0.05;
  Watchdog dog(1, policy);
  const auto start = std::chrono::steady_clock::now();
  const auto out = run_cell_attempts(
      dog.slot(0), policy, "slow", [&](CellContext& ctx) {
        while (!ctx.canceled()) {
          // Progress advances, but the wall-clock budget still applies.
          ctx.heartbeat(static_cast<std::uint64_t>(
              std::chrono::steady_clock::now().time_since_epoch().count()));
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        return 0;
      });
  EXPECT_EQ(out.status.state, CellState::kFailed);
  EXPECT_TRUE(out.status.timed_out);
  // Canceled promptly, not after some multiple of the timeout.
  EXPECT_LT(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count(),
            5.0);
}

}  // namespace
}  // namespace spineless::util
