#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.h"

namespace spineless {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"}).add_row({"beta", "22"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("beta"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ColumnsAreAligned) {
  Table t({"a", "b"});
  t.add_row({"xxxxxxxx", "1"});
  t.add_row({"y", "2"});
  std::istringstream in(t.to_string());
  std::string header, sep, row1, row2;
  std::getline(in, header);
  std::getline(in, sep);
  std::getline(in, row1);
  std::getline(in, row2);
  // The second column starts at the same offset in both rows.
  EXPECT_EQ(row1.find('1'), row2.find('2'));
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), Error);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
  EXPECT_EQ(Table::fmt(0.5), "0.500");
}

TEST(Heatmap, RendersLabelsAndCells) {
  const auto s = render_heatmap({{1.0, 2.0}, {3.0, 4.0}}, {"r0", "r1"},
                                {"c0", "c1"}, "C\\S");
  EXPECT_NE(s.find("r0"), std::string::npos);
  EXPECT_NE(s.find("c1"), std::string::npos);
  EXPECT_NE(s.find("4.00"), std::string::npos);
}

TEST(Heatmap, ShapeMismatchThrows) {
  EXPECT_THROW(render_heatmap({{1.0}}, {"r0", "r1"}, {"c0"}, ""), Error);
  EXPECT_THROW(render_heatmap({{1.0, 2.0}}, {"r0"}, {"c0"}, ""), Error);
}

}  // namespace
}  // namespace spineless
