#include "flowsim/maxmin.h"

#include <gtest/gtest.h>

#include <limits>

#include "util/error.h"
#include "util/rng.h"

namespace spineless::flowsim {
namespace {

TEST(MaxMin, SingleLinkEqualShare) {
  MaxMinProblem p({10.0});
  p.add_flow({0});
  p.add_flow({0});
  p.add_flow({0});
  const auto r = p.solve();
  for (double v : r) EXPECT_NEAR(v, 10.0 / 3, 1e-9);
  EXPECT_TRUE(p.is_max_min_fair(r));
}

TEST(MaxMin, ClassicTwoLinkExample) {
  // Flow A crosses both links, B only link 0, C only link 1.
  // cap(0)=1, cap(1)=2: A and B split link 0 at 0.5; C gets 1.5 on link 1.
  MaxMinProblem p({1.0, 2.0});
  const int a = p.add_flow({0, 1});
  const int b = p.add_flow({0});
  const int c = p.add_flow({1});
  const auto r = p.solve();
  EXPECT_NEAR(r[static_cast<std::size_t>(a)], 0.5, 1e-9);
  EXPECT_NEAR(r[static_cast<std::size_t>(b)], 0.5, 1e-9);
  EXPECT_NEAR(r[static_cast<std::size_t>(c)], 1.5, 1e-9);
  EXPECT_TRUE(p.is_max_min_fair(r));
}

TEST(MaxMin, BottleneckChain) {
  // Three serial links, the tightest one governs.
  MaxMinProblem p({5.0, 1.0, 9.0});
  p.add_flow({0, 1, 2});
  EXPECT_NEAR(p.solve()[0], 1.0, 1e-9);
}

TEST(MaxMin, FlowCrossingResourceTwiceConsumesDouble) {
  MaxMinProblem p({2.0});
  p.add_flow({0, 0});
  EXPECT_NEAR(p.solve()[0], 1.0, 1e-9);
}

TEST(MaxMin, EmptyFlowGetsZeroAndNoCrash) {
  MaxMinProblem p({1.0});
  p.add_flow({});
  p.add_flow({0});
  const auto r = p.solve();
  EXPECT_DOUBLE_EQ(r[0], 0.0);
  EXPECT_NEAR(r[1], 1.0, 1e-9);
}

TEST(MaxMin, ZeroCapacityResource) {
  MaxMinProblem p({0.0, 5.0});
  p.add_flow({0, 1});
  p.add_flow({1});
  const auto r = p.solve();
  EXPECT_NEAR(r[0], 0.0, 1e-9);
  EXPECT_NEAR(r[1], 5.0, 1e-6);
}

TEST(MaxMin, InvalidResourceRejected) {
  MaxMinProblem p({1.0});
  EXPECT_THROW(p.add_flow({1}), Error);
  EXPECT_THROW(p.add_flow({-1}), Error);
}

TEST(MaxMin, NegativeCapacityRejected) {
  EXPECT_THROW(MaxMinProblem({-1.0}), Error);
}

TEST(MaxMin, NanCapacityRejected) {
  EXPECT_THROW(MaxMinProblem({std::numeric_limits<double>::quiet_NaN()}),
               Error);
}

// solve_capped input hardening: a silent caps-size mismatch would index
// past the vector; negative or NaN caps stall the filling loop. Each is a
// structured Error up front, and +infinity remains a valid "uncapped".
TEST(MaxMin, CapsSizeMismatchRejected) {
  MaxMinProblem p({10.0});
  p.add_flow({0});
  p.add_flow({0});
  EXPECT_THROW(p.solve_capped({1.0}), Error);            // too few
  EXPECT_THROW(p.solve_capped({1.0, 1.0, 1.0}), Error);  // too many
}

TEST(MaxMin, NegativeCapRejected) {
  MaxMinProblem p({10.0});
  p.add_flow({0});
  EXPECT_THROW(p.solve_capped({-1.0}), Error);
}

TEST(MaxMin, NanCapRejected) {
  MaxMinProblem p({10.0});
  p.add_flow({0});
  EXPECT_THROW(p.solve_capped({std::numeric_limits<double>::quiet_NaN()}),
               Error);
}

TEST(MaxMin, InfiniteCapMeansUncapped) {
  MaxMinProblem p({10.0});
  p.add_flow({0});
  p.add_flow({0});
  const auto r = p.solve_capped(
      {std::numeric_limits<double>::infinity(), 2.0});
  EXPECT_NEAR(r[1], 2.0, 1e-6);   // capped flow freezes at its cap...
  EXPECT_NEAR(r[0], 8.0, 1e-6);   // ...uncapped flow absorbs the headroom
}

TEST(MaxMin, CertificateRejectsUnfairAllocation) {
  MaxMinProblem p({2.0});
  p.add_flow({0});
  p.add_flow({0});
  EXPECT_FALSE(p.is_max_min_fair({0.5, 1.5}));   // unfair split
  EXPECT_FALSE(p.is_max_min_fair({1.5, 1.5}));   // infeasible
  EXPECT_FALSE(p.is_max_min_fair({0.5, 0.5}));   // link not saturated
  EXPECT_TRUE(p.is_max_min_fair({1.0, 1.0}));
}

// Property test: random problems always produce feasible max-min fair
// allocations, and total throughput never exceeds total capacity.
class MaxMinRandom : public ::testing::TestWithParam<int> {};

TEST_P(MaxMinRandom, SolveSatisfiesCertificate) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int resources = 3 + static_cast<int>(rng.uniform(20));
  std::vector<double> caps;
  double total_cap = 0;
  for (int r = 0; r < resources; ++r) {
    caps.push_back(1.0 + rng.uniform_real() * 9.0);
    total_cap += caps.back();
  }
  MaxMinProblem p(caps);
  const int flows = 1 + static_cast<int>(rng.uniform(60));
  for (int f = 0; f < flows; ++f) {
    const int len = 1 + static_cast<int>(rng.uniform(4));
    std::vector<int> route;
    for (int i = 0; i < len; ++i)
      route.push_back(static_cast<int>(rng.uniform(
          static_cast<std::uint64_t>(resources))));
    p.add_flow(std::move(route));
  }
  const auto rates = p.solve();
  EXPECT_TRUE(p.is_max_min_fair(rates));
  double total = 0;
  for (double r : rates) total += r;
  EXPECT_LE(total, total_cap + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxMinRandom, ::testing::Range(1, 21));

}  // namespace
}  // namespace spineless::flowsim
