#include "flowsim/fluid_network.h"

#include <gtest/gtest.h>

#include "topo/builders.h"
#include "util/error.h"

namespace spineless::flowsim {
namespace {

using topo::Graph;
using topo::NodeId;

TEST(FluidNetwork, SingleFlowGetsLineRate) {
  Graph g(2);
  g.add_link(0, 1);
  g.set_servers(0, 1);
  g.set_servers(1, 1);
  FluidNetwork net(g, 10e9);
  net.add_flow(0, 1, {0, 1});
  const auto r = net.solve();
  EXPECT_NEAR(r[0], 10e9, 1);
}

TEST(FluidNetwork, NicLimitsIncast) {
  // Two senders to one receiver: the receiver's NIC is the bottleneck.
  Graph g(2);
  g.add_link(0, 1);
  g.set_servers(0, 2);
  g.set_servers(1, 1);
  FluidNetwork net(g, 10e9);
  net.add_flow(0, 2, {0, 1});
  net.add_flow(1, 2, {0, 1});
  const auto r = net.solve();
  EXPECT_NEAR(r[0], 5e9, 1);
  EXPECT_NEAR(r[1], 5e9, 1);
}

TEST(FluidNetwork, IntraRackFlowOnlyUsesNics) {
  Graph g(1);
  g.set_servers(0, 2);
  FluidNetwork net(g, 10e9);
  net.add_flow(0, 1, {0});
  EXPECT_NEAR(net.solve()[0], 10e9, 1);
}

TEST(FluidNetwork, DirectionsAreIndependent) {
  // Opposite-direction flows on one cable don't share capacity.
  Graph g(2);
  g.add_link(0, 1);
  g.set_servers(0, 1);
  g.set_servers(1, 1);
  FluidNetwork net(g, 10e9);
  net.add_flow(0, 1, {0, 1});
  net.add_flow(1, 0, {1, 0});
  const auto r = net.solve();
  EXPECT_NEAR(r[0], 10e9, 1);
  EXPECT_NEAR(r[1], 10e9, 1);
}

TEST(FluidNetwork, LeafSpineOversubscriptionVisible) {
  // leaf-spine(4, 2): 4 servers per leaf, 2 uplinks. All 4 servers of
  // leaf 0 sending to distinct remote leaves share 2 x 10G of uplink.
  const Graph g = topo::make_leaf_spine(4, 2);
  FluidNetwork net(g, 10e9);
  const NodeId spine0 = topo::leaf_spine_num_leaves(4, 2);
  for (int i = 0; i < 4; ++i) {
    const topo::HostId src = i;  // hosts 0..3 on leaf 0
    const topo::HostId dst = g.first_host_of(1 + i) + 1;
    net.add_flow(src, dst, {0, spine0, static_cast<NodeId>(1 + i)});
  }
  const auto r = net.solve();
  double total = 0;
  for (double v : r) total += v;
  // All four flows hash onto spine 0's uplink: 10G shared.
  EXPECT_NEAR(total, 10e9, 1e3);
}

TEST(FluidNetwork, RejectsPathNotMatchingHosts) {
  const Graph g = topo::make_leaf_spine(3, 1);
  FluidNetwork net(g, 10e9);
  // Host 0 is on leaf 0; a path starting at leaf 1 must throw.
  EXPECT_THROW(net.add_flow(0, 4, {1, 3, 2}), Error);
}

TEST(FluidNetwork, RejectsNonAdjacentHop) {
  const Graph g = topo::make_leaf_spine(3, 1);
  FluidNetwork net(g, 10e9);
  // Leaves 0 and 1 are not directly connected.
  EXPECT_THROW(net.add_flow(0, 3, {0, 1}), Error);
}

TEST(FluidNetwork, MeanAndTotalHelpers) {
  EXPECT_DOUBLE_EQ(FluidNetwork::total({1.0, 2.0, 3.0}), 6.0);
  EXPECT_DOUBLE_EQ(FluidNetwork::mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_THROW(FluidNetwork::mean({}), Error);
}

}  // namespace
}  // namespace spineless::flowsim
