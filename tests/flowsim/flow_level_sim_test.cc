#include "flowsim/flow_level_sim.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/tcp.h"
#include "topo/builders.h"
#include "util/error.h"

namespace spineless::flowsim {
namespace {

topo::Graph two_tor() {
  topo::Graph g(2);
  g.add_link(0, 1);
  g.set_servers(0, 4);
  g.set_servers(1, 4);
  return g;
}

TEST(FlowLevelSim, SingleFlowFinishesAtLineRate) {
  const auto g = two_tor();
  FlowLevelSimulator sim(g, 10e9);
  sim.add_flow(0, 4, 10'000'000, 0, {0, 1});  // 10 MB = 8 ms at 10G
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_NEAR(units::to_millis(sim.results()[0].fct()), 8.0, 0.01);
}

TEST(FlowLevelSim, TwoEqualFlowsShareThenNothing) {
  // Both start at 0 with equal sizes: each runs at 5G and they finish
  // together at 2x the solo time.
  const auto g = two_tor();
  FlowLevelSimulator sim(g, 10e9);
  sim.add_flow(0, 4, 5'000'000, 0, {0, 1});
  sim.add_flow(1, 5, 5'000'000, 0, {0, 1});
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_NEAR(units::to_millis(sim.results()[0].fct()), 8.0, 0.01);
  EXPECT_NEAR(units::to_millis(sim.results()[1].fct()), 8.0, 0.01);
}

TEST(FlowLevelSim, ShortFlowDepartsAndLongFlowSpeedsUp) {
  // Flow A: 10 MB; flow B: 2.5 MB. Shared 10G until B leaves at t = 4 ms
  // (2.5 MB at 5G), then A runs at 10G: total A time = 4 + 6 = 10 ms.
  const auto g = two_tor();
  FlowLevelSimulator sim(g, 10e9);
  sim.add_flow(0, 4, 10'000'000, 0, {0, 1});
  sim.add_flow(1, 5, 2'500'000, 0, {0, 1});
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_NEAR(units::to_millis(sim.results()[1].fct()), 4.0, 0.01);
  EXPECT_NEAR(units::to_millis(sim.results()[0].fct()), 10.0, 0.02);
}

TEST(FlowLevelSim, LateArrivalSlowsTheIncumbent) {
  // A (10 MB) alone for 4 ms (5 MB done), then B (5 MB) arrives: both at
  // 5G. A needs 8 more ms -> finishes at 12 ms; B finishes at 4+8=12 ms.
  const auto g = two_tor();
  FlowLevelSimulator sim(g, 10e9);
  sim.add_flow(0, 4, 10'000'000, 0, {0, 1});
  sim.add_flow(1, 5, 5'000'000, 4 * units::kMillisecond, {0, 1});
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_NEAR(units::to_millis(sim.results()[0].fct()), 12.0, 0.02);
  EXPECT_NEAR(units::to_millis(sim.results()[1].fct()), 8.0, 0.02);
}

TEST(FlowLevelSim, NicBoundIncast) {
  const auto g = two_tor();
  FlowLevelSimulator sim(g, 10e9);
  for (int i = 0; i < 3; ++i)
    sim.add_flow(i, 4, 1'000'000, 0, {0, 1});  // all to host 4
  EXPECT_EQ(sim.run(), 3u);
  // 3 MB through one 10G NIC: last finisher at 2.4 ms.
  double last = 0;
  for (const auto& r : sim.results())
    last = std::max(last, units::to_millis(r.fct()));
  EXPECT_NEAR(last, 2.4, 0.01);
}

TEST(FlowLevelSim, DeadlineLeavesFlowsIncomplete) {
  const auto g = two_tor();
  FlowLevelSimulator sim(g, 10e9);
  sim.add_flow(0, 4, 100'000'000, 0, {0, 1});  // 80 ms at line rate
  EXPECT_EQ(sim.run(10 * units::kMillisecond), 0u);
  EXPECT_FALSE(sim.results()[0].completed());
}

TEST(FlowLevelSim, ValidatesPathsEagerly) {
  const auto g = two_tor();
  FlowLevelSimulator sim(g, 10e9);
  EXPECT_THROW(sim.add_flow(0, 4, 1000, 0, {1, 0}), Error);  // wrong ends
  EXPECT_THROW(sim.add_flow(0, 4, 0, 0, {0, 1}), Error);
}

TEST(FlowLevelSim, TracksPacketSimOnSharedBottleneck) {
  // Cross-fidelity check: the flow-level FCTs should approximate the
  // packet simulator's within ~20% on a clean shared-bottleneck scenario.
  const auto g = two_tor();

  FlowLevelSimulator fluid(g, 10e9);
  for (int i = 0; i < 4; ++i)
    fluid.add_flow(i, 4 + i, 4'000'000, 0, {0, 1});
  ASSERT_EQ(fluid.run(), 4u);
  const double fluid_last = fluid.fct_ms().max();

  sim::Simulator psim;
  sim::NetworkConfig cfg;
  sim::Network net(g, cfg);
  sim::FlowDriver driver(net, sim::TcpConfig{});
  for (int i = 0; i < 4; ++i) driver.add_flow(psim, i, 4 + i, 4'000'000, 0);
  psim.run_until(60 * units::kSecond);
  ASSERT_EQ(driver.completed_flows(), 4u);
  const double packet_last = driver.fct_ms().max();

  EXPECT_NEAR(fluid_last, packet_last, 0.2 * packet_last);
}

}  // namespace
}  // namespace spineless::flowsim
