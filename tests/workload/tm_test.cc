#include "workload/tm.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "topo/builders.h"
#include "util/error.h"

namespace spineless::workload {
namespace {

TEST(RackTm, UniformWeightsProportionalToServerProducts) {
  const Graph g = topo::make_leaf_spine(4, 2);
  const RackTm tm = RackTm::uniform(g);
  const NodeId leaves = topo::leaf_spine_num_leaves(4, 2);
  for (NodeId a = 0; a < leaves; ++a) {
    for (NodeId b = 0; b < leaves; ++b) {
      if (a == b) {
        EXPECT_DOUBLE_EQ(tm.at(a, b), 0.0);
      } else {
        EXPECT_DOUBLE_EQ(tm.at(a, b), 16.0);
      }
    }
  }
  // Spines host no servers: zero weight.
  EXPECT_DOUBLE_EQ(tm.at(leaves, 0), 0.0);
  EXPECT_DOUBLE_EQ(tm.at(0, leaves), 0.0);
}

TEST(RackTm, SendingRacksCount) {
  const Graph g = topo::make_leaf_spine(4, 2);
  EXPECT_EQ(RackTm::uniform(g).sending_racks(), 6);
  EXPECT_EQ(RackTm::rack_to_rack(g, 0, 1).sending_racks(), 1);
}

TEST(RackTm, RackToRackSingleEntry) {
  const Graph g = topo::make_leaf_spine(4, 2);
  const RackTm tm = RackTm::rack_to_rack(g, 2, 5);
  EXPECT_DOUBLE_EQ(tm.total(), 1.0);
  EXPECT_DOUBLE_EQ(tm.at(2, 5), 1.0);
}

TEST(RackTm, RackToRackRejectsSpines) {
  const Graph g = topo::make_leaf_spine(4, 2);
  const NodeId spine = topo::leaf_spine_num_leaves(4, 2);
  EXPECT_THROW(RackTm::rack_to_rack(g, 0, spine), Error);
  EXPECT_THROW(RackTm::rack_to_rack(g, 0, 0), Error);
}

TEST(RackTm, FbUniformIsNearUniform) {
  const Graph g = topo::flatten_leaf_spine(12, 4, 1);
  const RackTm tm = RackTm::fb_like_uniform(g, 7);
  double lo = 1e18, hi = 0;
  for (NodeId a = 0; a < g.num_switches(); ++a) {
    for (NodeId b = 0; b < g.num_switches(); ++b) {
      if (a == b) continue;
      lo = std::min(lo, tm.at(a, b));
      hi = std::max(hi, tm.at(a, b));
    }
  }
  EXPECT_GT(lo, 0.0);
  EXPECT_LT(hi / lo, 20.0);  // mild variation only
}

TEST(RackTm, FbSkewedConcentratesTraffic) {
  const Graph g = topo::flatten_leaf_spine(12, 4, 1);
  const RackTm tm = RackTm::fb_like_skewed(g, 7);
  // Top 10% of rack pairs carry most of the traffic.
  std::vector<double> weights;
  for (NodeId a = 0; a < g.num_switches(); ++a)
    for (NodeId b = 0; b < g.num_switches(); ++b)
      if (a != b) weights.push_back(tm.at(a, b));
  std::sort(weights.rbegin(), weights.rend());
  double top = 0, total = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    total += weights[i];
    if (i < weights.size() / 10) top += weights[i];
  }
  EXPECT_GT(top / total, 0.5);
}

TEST(RackTm, GeneratorsDeterministicPerSeed) {
  const Graph g = topo::flatten_leaf_spine(6, 2, 1);
  const RackTm a = RackTm::fb_like_skewed(g, 3);
  const RackTm b = RackTm::fb_like_skewed(g, 3);
  const RackTm c = RackTm::fb_like_skewed(g, 4);
  bool all_same = true, any_diff_c = false;
  for (NodeId i = 0; i < g.num_switches(); ++i) {
    for (NodeId j = 0; j < g.num_switches(); ++j) {
      all_same &= a.at(i, j) == b.at(i, j);
      any_diff_c |= a.at(i, j) != c.at(i, j);
    }
  }
  EXPECT_TRUE(all_same);
  EXPECT_TRUE(any_diff_c);
}

TEST(TmSampler, RespectsRackWeights) {
  const Graph g = topo::make_leaf_spine(4, 2);
  RackTm tm(g.num_switches());
  tm.at(0, 1) = 3.0;
  tm.at(2, 3) = 1.0;
  TmSampler sampler(g, tm);
  Rng rng(5);
  std::map<std::pair<NodeId, NodeId>, int> counts;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto [s, d] = sampler.sample(rng);
    ++counts[{g.tor_of_host(s), g.tor_of_host(d)}];
  }
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_NEAR(static_cast<double>(counts[{0, 1}]) / n, 0.75, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[{2, 3}]) / n, 0.25, 0.02);
}

TEST(TmSampler, HostsAlwaysDistinctAndInRightRacks) {
  const Graph g = topo::make_dring(5, 2, 3).graph;
  const RackTm tm = RackTm::uniform(g);
  TmSampler sampler(g, tm);
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    const auto [s, d] = sampler.sample(rng);
    EXPECT_NE(s, d);
    EXPECT_NE(g.tor_of_host(s), g.tor_of_host(d));  // diagonal excluded
  }
}

TEST(TmSampler, RandomPlacementPreservesHostUniverse) {
  const Graph g = topo::make_dring(5, 2, 3).graph;
  const RackTm tm = RackTm::uniform(g);
  TmSampler sampler(g, tm);
  Rng rng(11);
  sampler.apply_random_placement(rng);
  std::set<topo::HostId> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto [s, d] = sampler.sample(rng);
    EXPECT_NE(s, d);
    seen.insert(s);
    seen.insert(d);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, g.total_servers());
  }
  // With 30 hosts and 10k draws we should see every host.
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(g.total_servers()));
}

TEST(TmSampler, RandomPlacementBreaksRackLocality) {
  // After RP, a rack-to-rack matrix no longer maps to a single rack pair.
  const Graph g = topo::make_dring(5, 2, 3).graph;
  const RackTm tm = RackTm::rack_to_rack(g, 0, 5);
  TmSampler sampler(g, tm);
  Rng rng(13);
  sampler.apply_random_placement(rng);
  std::set<std::pair<NodeId, NodeId>> rack_pairs;
  for (int i = 0; i < 2000; ++i) {
    const auto [s, d] = sampler.sample(rng);
    rack_pairs.insert({g.tor_of_host(s), g.tor_of_host(d)});
  }
  EXPECT_GT(rack_pairs.size(), 1u);
}

TEST(TmSampler, EmptyTmRejected) {
  const Graph g = topo::make_leaf_spine(3, 1);
  RackTm tm(g.num_switches());
  EXPECT_THROW(TmSampler(g, tm), Error);
}

TEST(TmSampler, WeightOnServerlessSwitchRejected) {
  const Graph g = topo::make_leaf_spine(3, 1);
  RackTm tm(g.num_switches());
  const NodeId spine = topo::leaf_spine_num_leaves(3, 1);
  tm.at(0, spine) = 1.0;
  EXPECT_THROW(TmSampler(g, tm), Error);
}

}  // namespace
}  // namespace spineless::workload
