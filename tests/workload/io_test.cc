#include "workload/io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "topo/builders.h"
#include "util/error.h"

namespace spineless::workload {
namespace {

std::vector<FlowSpec> sample_flows() {
  const Graph g = topo::make_dring(5, 2, 4).graph;
  TmSampler sampler(g, RackTm::uniform(g));
  Rng rng(3);
  FlowGenConfig cfg;
  cfg.offered_load_bps = 2e9;
  cfg.window = 5 * units::kMillisecond;
  return generate_flows(sampler, cfg, rng);
}

TEST(FlowIo, CsvRoundTripsExactly) {
  const auto flows = sample_flows();
  const auto parsed = flows_from_csv(flows_to_csv(flows));
  ASSERT_EQ(parsed.size(), flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_EQ(parsed[i].src, flows[i].src);
    EXPECT_EQ(parsed[i].dst, flows[i].dst);
    EXPECT_EQ(parsed[i].bytes, flows[i].bytes);
    EXPECT_EQ(parsed[i].start, flows[i].start);
  }
}

TEST(FlowIo, FileRoundTrip) {
  const auto flows = sample_flows();
  const std::string path = ::testing::TempDir() + "/flows_io_test.csv";
  write_flows_csv(path, flows);
  const auto parsed = read_flows_csv(path);
  EXPECT_EQ(parsed.size(), flows.size());
  std::remove(path.c_str());
}

TEST(FlowIo, RejectsBadHeader) {
  EXPECT_THROW(flows_from_csv("nope\n1,2,3,4\n"), Error);
}

TEST(FlowIo, RejectsMalformedLine) {
  EXPECT_THROW(flows_from_csv("src,dst,bytes,start_ps\n1,2,3\n"), Error);
  EXPECT_THROW(flows_from_csv("src,dst,bytes,start_ps\n1;2;3;4\n"), Error);
}

TEST(FlowIo, RejectsInvalidFlows) {
  // Zero bytes, negative start, self-flow.
  EXPECT_THROW(flows_from_csv("src,dst,bytes,start_ps\n1,2,0,5\n"), Error);
  EXPECT_THROW(flows_from_csv("src,dst,bytes,start_ps\n1,2,9,-1\n"), Error);
  EXPECT_THROW(flows_from_csv("src,dst,bytes,start_ps\n3,3,9,5\n"), Error);
}

TEST(FlowIo, EmptyFlowListIsJustHeader) {
  EXPECT_EQ(flows_to_csv({}), "src,dst,bytes,start_ps\n");
  EXPECT_TRUE(flows_from_csv("src,dst,bytes,start_ps\n").empty());
}

TEST(PermutationTm, IsADerangementWithServerWeights) {
  const Graph g = topo::make_dring(6, 2, 4).graph;
  const RackTm tm = RackTm::permutation(g, 5);
  int senders = 0;
  for (topo::NodeId a = 0; a < g.num_switches(); ++a) {
    int dests = 0;
    for (topo::NodeId b = 0; b < g.num_switches(); ++b) {
      if (tm.at(a, b) <= 0) continue;
      ++dests;
      EXPECT_NE(a, b);  // derangement: nobody sends to itself
      EXPECT_DOUBLE_EQ(tm.at(a, b), 4.0);
    }
    EXPECT_LE(dests, 1);  // permutation: at most one destination
    senders += dests;
  }
  EXPECT_EQ(senders, 12);  // every rack sends
}

TEST(PermutationTm, EveryRackAlsoReceivesOnce) {
  const Graph g = topo::make_dring(6, 2, 4).graph;
  const RackTm tm = RackTm::permutation(g, 7);
  for (topo::NodeId b = 0; b < g.num_switches(); ++b) {
    int sources = 0;
    for (topo::NodeId a = 0; a < g.num_switches(); ++a)
      sources += tm.at(a, b) > 0;
    EXPECT_EQ(sources, 1);
  }
}

TEST(PermutationTm, DifferentSeedsDifferentMappings) {
  const Graph g = topo::make_dring(8, 2, 4).graph;
  const RackTm a = RackTm::permutation(g, 1);
  const RackTm b = RackTm::permutation(g, 2);
  bool differ = false;
  for (topo::NodeId i = 0; i < g.num_switches() && !differ; ++i)
    for (topo::NodeId j = 0; j < g.num_switches() && !differ; ++j)
      differ = (a.at(i, j) > 0) != (b.at(i, j) > 0);
  EXPECT_TRUE(differ);
}

}  // namespace
}  // namespace spineless::workload
