#include "workload/cs_model.h"

#include <gtest/gtest.h>

#include <set>

#include "topo/builders.h"
#include "util/error.h"

namespace spineless::workload {
namespace {

TEST(CsModel, SizesAndDisjointness) {
  const Graph g = topo::make_dring(6, 2, 4).graph;  // 48 hosts
  Rng rng(1);
  const CsSets sets = make_cs_sets(g, 10, 20, rng);
  EXPECT_EQ(sets.clients.size(), 10u);
  EXPECT_EQ(sets.servers.size(), 20u);
  std::set<topo::HostId> c(sets.clients.begin(), sets.clients.end());
  std::set<topo::HostId> s(sets.servers.begin(), sets.servers.end());
  EXPECT_EQ(c.size(), 10u);
  EXPECT_EQ(s.size(), 20u);
  for (auto h : c) EXPECT_FALSE(s.count(h));
}

TEST(CsModel, ClientAndServerRacksDisjoint) {
  const Graph g = topo::make_dring(6, 2, 4).graph;
  Rng rng(2);
  const CsSets sets = make_cs_sets(g, 9, 9, rng);
  std::set<NodeId> cr(sets.client_racks.begin(), sets.client_racks.end());
  for (NodeId r : sets.server_racks) EXPECT_FALSE(cr.count(r));
}

TEST(CsModel, PacksIntoFewestRacks) {
  // 4 servers per rack: 10 clients need exactly 3 racks (ceil(10/4)).
  const Graph g = topo::make_dring(6, 2, 4).graph;
  Rng rng(3);
  const CsSets sets = make_cs_sets(g, 10, 4, rng);
  EXPECT_EQ(sets.client_racks.size(), 3u);
  EXPECT_EQ(sets.server_racks.size(), 1u);
}

TEST(CsModel, IncastCase) {
  // C = 1, S = 1: the incast/outcast corner of the heatmap.
  const Graph g = topo::make_dring(5, 2, 2).graph;
  Rng rng(4);
  const CsSets sets = make_cs_sets(g, 1, 1, rng);
  EXPECT_EQ(sets.clients.size(), 1u);
  EXPECT_EQ(sets.servers.size(), 1u);
  EXPECT_NE(g.tor_of_host(sets.clients[0]), g.tor_of_host(sets.servers[0]));
}

TEST(CsModel, OverflowRejected) {
  const Graph g = topo::make_dring(5, 2, 2).graph;  // 20 hosts
  Rng rng(5);
  EXPECT_THROW(make_cs_sets(g, 15, 10, rng), Error);
}

TEST(CsModel, RandomRackChoiceVariesWithSeed) {
  const Graph g = topo::make_dring(8, 2, 4).graph;
  Rng r1(1), r2(2);
  const auto a = make_cs_sets(g, 4, 4, r1);
  const auto b = make_cs_sets(g, 4, 4, r2);
  EXPECT_TRUE(a.client_racks != b.client_racks ||
              a.server_racks != b.server_racks);
}

TEST(CsRackTm, WeightsProportionalToMembership) {
  const Graph g = topo::make_dring(6, 2, 4).graph;
  Rng rng(6);
  const CsSets sets = make_cs_sets(g, 6, 8, rng);
  const RackTm tm = cs_rack_tm(g, sets);
  // Total weight = |C| x |S|.
  EXPECT_DOUBLE_EQ(tm.total(), 48.0);
  // Only client->server rack entries are nonzero.
  for (NodeId a = 0; a < g.num_switches(); ++a) {
    for (NodeId b = 0; b < g.num_switches(); ++b) {
      if (tm.at(a, b) > 0) {
        EXPECT_TRUE(std::count(sets.client_racks.begin(),
                               sets.client_racks.end(), a));
        EXPECT_TRUE(std::count(sets.server_racks.begin(),
                               sets.server_racks.end(), b));
      }
    }
  }
}

TEST(CsFlowPairs, FullProductWhenSmall) {
  const Graph g = topo::make_dring(6, 2, 4).graph;
  Rng rng(7);
  const CsSets sets = make_cs_sets(g, 3, 5, rng);
  const auto pairs = cs_flow_pairs(sets, 100, rng);
  EXPECT_EQ(pairs.size(), 15u);
  std::set<std::pair<topo::HostId, topo::HostId>> dedup(pairs.begin(),
                                                        pairs.end());
  EXPECT_EQ(dedup.size(), 15u);
}

TEST(CsFlowPairs, DownsamplesLargeProducts) {
  const Graph g = topo::make_dring(8, 3, 8).graph;  // 192 hosts
  Rng rng(8);
  const CsSets sets = make_cs_sets(g, 40, 40, rng);
  const auto pairs = cs_flow_pairs(sets, 100, rng);
  EXPECT_EQ(pairs.size(), 100u);
  std::set<std::pair<topo::HostId, topo::HostId>> dedup(pairs.begin(),
                                                        pairs.end());
  EXPECT_EQ(dedup.size(), 100u);  // sampling without replacement
  for (const auto& [c, s] : pairs) {
    EXPECT_TRUE(std::count(sets.clients.begin(), sets.clients.end(), c));
    EXPECT_TRUE(std::count(sets.servers.begin(), sets.servers.end(), s));
  }
}

}  // namespace
}  // namespace spineless::workload
