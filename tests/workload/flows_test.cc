#include "workload/flows.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "topo/builders.h"

namespace spineless::workload {
namespace {

FlowGenConfig small_config() {
  FlowGenConfig cfg;
  cfg.offered_load_bps = 1e9;
  cfg.window = 10 * units::kMillisecond;
  return cfg;
}

TEST(GenerateFlows, FlowCountMatchesOfferedLoad) {
  const Graph g = topo::make_dring(5, 2, 4).graph;
  TmSampler sampler(g, RackTm::uniform(g));
  Rng rng(1);
  const auto cfg = small_config();
  const auto flows = generate_flows(sampler, cfg, rng);
  const double target = cfg.offered_load_bps / 8.0 * 0.010;
  const auto expected_n = static_cast<std::size_t>(
      std::round(target / expected_truncated_flow_bytes(cfg)));
  EXPECT_EQ(flows.size(), expected_n);
  // Realized volume is heavy-tailed but should land within a loose band
  // around the target.
  double bytes = 0;
  for (const auto& f : flows) bytes += static_cast<double>(f.bytes);
  EXPECT_GT(bytes, 0.1 * target);
  EXPECT_LT(bytes, 10.0 * target);
}

TEST(GenerateFlows, ExpectedTruncatedMeanBelowNominal) {
  // Truncation at 30 MB trims the alpha=1.05 tail, so the effective mean
  // sits below the nominal 100 KB but stays the right order of magnitude.
  const FlowGenConfig cfg;
  const double m = expected_truncated_flow_bytes(cfg);
  EXPECT_LT(m, 100e3);
  EXPECT_GT(m, 20e3);
}

TEST(GenerateFlows, StartTimesWithinWindowAndSorted) {
  const Graph g = topo::make_dring(5, 2, 4).graph;
  TmSampler sampler(g, RackTm::uniform(g));
  Rng rng(2);
  const auto cfg = small_config();
  const auto flows = generate_flows(sampler, cfg, rng);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_GE(flows[i].start, 0);
    EXPECT_LT(flows[i].start, cfg.window);
    if (i > 0) {
      EXPECT_GE(flows[i].start, flows[i - 1].start);
    }
  }
}

TEST(GenerateFlows, SizesWithinTruncationBounds) {
  const Graph g = topo::make_dring(5, 2, 4).graph;
  TmSampler sampler(g, RackTm::uniform(g));
  Rng rng(3);
  const auto cfg = small_config();
  for (const auto& f : generate_flows(sampler, cfg, rng)) {
    EXPECT_GE(f.bytes, cfg.min_flow_bytes);
    EXPECT_LE(f.bytes, cfg.max_flow_bytes);
  }
}

TEST(GenerateFlows, MeanSizeRoughlyPareto) {
  // alpha=1.05 truncated at 30 MB has a fat but bounded tail; the sample
  // mean should land within a loose band around 100 KB.
  const Graph g = topo::make_dring(5, 2, 4).graph;
  TmSampler sampler(g, RackTm::uniform(g));
  Rng rng(4);
  auto cfg = small_config();
  cfg.offered_load_bps = 40e9;  // many flows for a stable estimate
  const auto flows = generate_flows(sampler, cfg, rng);
  double bytes = 0;
  for (const auto& f : flows) bytes += static_cast<double>(f.bytes);
  const double mean = bytes / static_cast<double>(flows.size());
  EXPECT_GT(mean, 20e3);
  EXPECT_LT(mean, 400e3);
}

TEST(GenerateFlows, DeterministicPerSeed) {
  const Graph g = topo::make_dring(5, 2, 4).graph;
  TmSampler sampler(g, RackTm::uniform(g));
  Rng r1(7), r2(7);
  const auto cfg = small_config();
  const auto a = generate_flows(sampler, cfg, r1);
  const auto b = generate_flows(sampler, cfg, r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].bytes, b[i].bytes);
    EXPECT_EQ(a[i].start, b[i].start);
  }
}

TEST(SpineOfferedLoad, ClosedForm) {
  // leaf-spine(48, 16): 64 leaves x 16 uplinks x 10G, at 30%.
  EXPECT_DOUBLE_EQ(spine_offered_load_bps(48, 16, 10e9, 0.3),
                   0.3 * 64 * 16 * 10e9);
}

TEST(ParticipatingFraction, RackToRackVsUniform) {
  const Graph g = topo::make_dring(5, 2, 4).graph;  // 10 racks
  EXPECT_DOUBLE_EQ(
      participating_fraction(g, RackTm::rack_to_rack(g, 0, 5)), 0.1);
  EXPECT_DOUBLE_EQ(participating_fraction(g, RackTm::uniform(g)), 1.0);
}

TEST(ParticipatingFraction, IgnoresServerlessSwitches) {
  const Graph g = topo::make_leaf_spine(4, 2);  // 6 leaves + 2 spines
  EXPECT_DOUBLE_EQ(
      participating_fraction(g, RackTm::rack_to_rack(g, 0, 1)),
      1.0 / 6.0);
}

}  // namespace
}  // namespace spineless::workload
