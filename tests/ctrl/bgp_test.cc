#include "ctrl/bgp.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "routing/paths.h"
#include "routing/vrf.h"
#include "topo/analysis.h"
#include "topo/builders.h"

namespace spineless::ctrl {
namespace {

Graph cycle_graph(int n) {
  Graph g(n);
  for (NodeId i = 0; i < n; ++i) g.add_link(i, (i + 1) % n);
  return g;
}

// The prototype's headline property: after convergence, the BGP best-path
// length at the host VRF equals Theorem 1's max(L, K).
struct BgpCase {
  enum Family { kLeafSpine, kDRing, kRrg, kCycle } family;
  int a, b;
  int k;
};

Graph build(const BgpCase& c) {
  switch (c.family) {
    case BgpCase::kLeafSpine:
      return topo::make_leaf_spine(c.a, c.b);
    case BgpCase::kDRing:
      return topo::make_dring(c.a, c.b, 1).graph;
    case BgpCase::kRrg:
      return topo::make_rrg(c.a, c.b, 1, 23);
    case BgpCase::kCycle:
      return cycle_graph(c.a);
  }
  throw spineless::Error("unreachable");
}

class BgpTheorem1 : public ::testing::TestWithParam<BgpCase> {};

TEST_P(BgpTheorem1, ConvergedBestPathLengthIsMaxLK) {
  const Graph g = build(GetParam());
  const int k = GetParam().k;
  BgpVrfNetwork bgp(g, k);
  bgp.converge();
  for (NodeId src = 0; src < g.num_switches(); ++src) {
    const auto dist = topo::bfs_distances(g, src);
    for (NodeId dst = 0; dst < g.num_switches(); ++dst) {
      if (src == dst) continue;
      EXPECT_EQ(bgp.best_path_length(src, k, dst),
                std::max(dist[static_cast<std::size_t>(dst)], k))
          << src << "->" << dst;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BgpTheorem1,
    ::testing::Values(BgpCase{BgpCase::kLeafSpine, 4, 2, 2},
                      BgpCase{BgpCase::kDRing, 5, 2, 2},
                      BgpCase{BgpCase::kDRing, 6, 2, 3},
                      BgpCase{BgpCase::kRrg, 14, 4, 2},
                      BgpCase{BgpCase::kCycle, 9, 0, 2},
                      BgpCase{BgpCase::kCycle, 7, 0, 1}));

// The prototype end-to-end check: the converged FIBs realize exactly the
// Shortest-Union(K) path sets — "the first implementation of a routing
// scheme on standard hardware for ... flat networks".
class BgpEquivalence : public ::testing::TestWithParam<BgpCase> {};

TEST_P(BgpEquivalence, FibPathsEqualShortestUnion) {
  const Graph g = build(GetParam());
  const int k = GetParam().k;
  BgpVrfNetwork bgp(g, k);
  bgp.converge();
  for (NodeId src = 0; src < g.num_switches(); ++src) {
    for (NodeId dst = 0; dst < g.num_switches(); ++dst) {
      if (src == dst) continue;
      EXPECT_EQ(bgp.fib_paths(src, dst, 8192),
                routing::shortest_union_paths(g, src, dst, k, 8192))
          << src << "->" << dst;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BgpEquivalence,
    ::testing::Values(BgpCase{BgpCase::kLeafSpine, 4, 2, 2},
                      BgpCase{BgpCase::kDRing, 5, 2, 2},
                      BgpCase{BgpCase::kRrg, 12, 4, 2},
                      BgpCase{BgpCase::kCycle, 8, 0, 2}));

TEST(Bgp, FibMatchesVrfDijkstraNextHops) {
  // Control-plane (path-vector) and analytic (Dijkstra) realizations agree
  // hop by hop for K=2.
  const Graph g = topo::make_dring(6, 2, 1).graph;
  const int k = 2;
  BgpVrfNetwork bgp(g, k);
  bgp.converge();
  const auto table = routing::VrfTable::compute(g, k);
  for (NodeId dst = 0; dst < g.num_switches(); ++dst) {
    for (NodeId u = 0; u < g.num_switches(); ++u) {
      if (u == dst) continue;
      const auto fib = bgp.fib(u, k, dst);
      const auto& dij = table.next_hops(u, k, dst);
      ASSERT_EQ(fib.size(), dij.size()) << u << "->" << dst;
      // Compare as multisets of (link, next_vrf).
      auto key = [](const auto& e) {
        return std::pair<int, int>(e.port.link, e.next_vrf);
      };
      std::multiset<std::pair<int, int>> a, b;
      for (const auto& e : fib) a.insert(key(e));
      for (const auto& e : dij) b.insert(key(e));
      EXPECT_EQ(a, b);
    }
  }
}

TEST(Bgp, ConvergesInDiameterOrderRounds) {
  const Graph g = topo::make_dring(8, 2, 1).graph;
  BgpVrfNetwork bgp(g, 2);
  const int rounds = bgp.converge();
  const int diameter = topo::path_length_stats(g).diameter;
  EXPECT_GT(rounds, 0);
  EXPECT_LE(rounds, diameter + 4);
}

TEST(Bgp, SecondConvergeIsNoOp) {
  const Graph g = topo::make_leaf_spine(3, 1);
  BgpVrfNetwork bgp(g, 2);
  bgp.converge();
  EXPECT_EQ(bgp.converge(), 0);
}

TEST(Bgp, LinkFailureReroutesAroundIt) {
  const Graph g = cycle_graph(6);
  BgpVrfNetwork bgp(g, 2);
  bgp.converge();
  ASSERT_EQ(bgp.best_path_length(0, 2, 1), 2);  // max(1, K=2)
  // Fail the direct 0-1 link; the only remaining route is the long way.
  LinkId direct = topo::kInvalidLink;
  for (const Port& p : g.neighbors(0))
    if (p.neighbor == 1) direct = p.link;
  ASSERT_NE(direct, topo::kInvalidLink);
  bgp.fail_link(direct);
  const int rounds = bgp.converge();
  EXPECT_GT(rounds, 0);
  EXPECT_EQ(bgp.failed_links(), 1u);
  EXPECT_TRUE(bgp.reachable(0, 1));
  EXPECT_EQ(bgp.best_path_length(0, 2, 1), 5);  // around the cycle
  // All FIB paths must avoid the failed link.
  for (const auto& path : bgp.fib_paths(0, 1)) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i)
      EXPECT_FALSE((path[i] == 0 && path[i + 1] == 1) ||
                   (path[i] == 1 && path[i + 1] == 0));
  }
}

TEST(Bgp, RestoreLinkRecoversOriginalRoutes) {
  const Graph g = cycle_graph(6);
  BgpVrfNetwork bgp(g, 2);
  bgp.converge();
  LinkId direct = g.neighbors(0)[0].link;
  bgp.fail_link(direct);
  bgp.converge();
  bgp.restore_link(direct);
  bgp.converge();
  EXPECT_EQ(bgp.failed_links(), 0u);
  const NodeId v = g.neighbors(0)[0].neighbor;
  EXPECT_EQ(bgp.best_path_length(0, 2, v), 2);
}

TEST(Bgp, PartitionMakesPrefixUnreachable) {
  // A 2-node graph with a single link: failing it partitions the network.
  Graph g(2);
  const LinkId l = g.add_link(0, 1);
  BgpVrfNetwork bgp(g, 2);
  bgp.converge();
  EXPECT_TRUE(bgp.reachable(0, 1));
  bgp.fail_link(l);
  bgp.converge();
  EXPECT_FALSE(bgp.reachable(0, 1));
  EXPECT_EQ(bgp.best_path_length(0, 2, 1), -1);
}

TEST(Bgp, InstalledRoutesPopulatedAfterConvergence) {
  const Graph g = topo::make_leaf_spine(3, 1);
  BgpVrfNetwork bgp(g, 2);
  EXPECT_EQ(bgp.installed_routes(), 0u);
  bgp.converge();
  EXPECT_GT(bgp.installed_routes(), 0u);
}

TEST(Bgp, K1DegeneratesToShortestPathEcmp) {
  const Graph g = topo::make_leaf_spine(4, 2);
  BgpVrfNetwork bgp(g, 1);
  bgp.converge();
  // Leaf 0 -> leaf 1: two equal routes (one per spine).
  EXPECT_EQ(bgp.fib(0, 1, 1).size(), 2u);
  EXPECT_EQ(bgp.best_path_length(0, 1, 1), 2);
}

}  // namespace
}  // namespace spineless::ctrl
