// Deeper BGP+VRF mechanics: prepend arithmetic, multipath widths,
// withdrawal propagation, and determinism.
#include <gtest/gtest.h>

#include "ctrl/bgp.h"
#include "topo/builders.h"

namespace spineless::ctrl {
namespace {

TEST(BgpMechanics, DirectNeighborRouteCostsKPrepends) {
  // Theorem 1's L=1 case seen as AS-path arithmetic: the best route to a
  // directly-attached prefix at the host VRF carries exactly K AS hops
  // (the cost-K session prepends K-1 extra copies + the advertiser's own).
  const auto d = topo::make_dring(5, 2, 1);
  for (int k = 1; k <= 3; ++k) {
    BgpVrfNetwork bgp(d.graph, k);
    bgp.converge();
    const topo::NodeId v = d.graph.neighbors(0)[0].neighbor;
    EXPECT_EQ(bgp.best_path_length(0, k, v), k) << "k=" << k;
  }
}

TEST(BgpMechanics, LeafSpineMultipathWidths) {
  // Leaf-spine under K=2: a leaf's host VRF reaches another leaf through
  // all y spines; since L = 2 = K, SU(2) adds nothing beyond the shortest
  // paths, so the FIB width equals y.
  const int y = 4;
  const auto g = topo::make_leaf_spine(8, y);
  BgpVrfNetwork bgp(g, 2);
  bgp.converge();
  EXPECT_EQ(bgp.fib(0, 2, 1).size(), static_cast<std::size_t>(y));
}

TEST(BgpMechanics, DRingAdjacentMultipathWidth) {
  // Adjacent racks, K=2: direct session + one per common neighbor (2n).
  const int n = 3;
  const auto d = topo::make_dring(6, n, 1);
  BgpVrfNetwork bgp(d.graph, 2);
  bgp.converge();
  const topo::NodeId v = d.graph.neighbors(0)[0].neighbor;
  EXPECT_EQ(bgp.fib(0, 2, v).size(), static_cast<std::size_t>(2 * n + 1));
}

TEST(BgpMechanics, WithdrawalPropagatesBeyondNeighbors) {
  // Fail a link on a path graph: routers several hops away must drop the
  // now-dead route (no count-to-infinity thanks to AS-path loops).
  topo::Graph g(4);
  g.add_link(0, 1);
  const topo::LinkId mid = g.add_link(1, 2);
  g.add_link(2, 3);
  BgpVrfNetwork bgp(g, 1);
  bgp.converge();
  ASSERT_EQ(bgp.best_path_length(0, 1, 3), 3);
  bgp.fail_link(mid);
  bgp.converge();
  EXPECT_EQ(bgp.best_path_length(0, 1, 3), -1);
  EXPECT_FALSE(bgp.reachable(0, 3));
  EXPECT_TRUE(bgp.reachable(0, 1));  // near side unaffected
}

TEST(BgpMechanics, ConvergenceIsDeterministic) {
  const auto g = topo::make_rrg(12, 4, 1, 77);
  auto run_once = [&] {
    BgpVrfNetwork bgp(g, 2);
    bgp.converge();
    std::vector<int> lengths;
    for (topo::NodeId a = 0; a < g.num_switches(); ++a)
      for (topo::NodeId b = 0; b < g.num_switches(); ++b)
        if (a != b) lengths.push_back(bgp.best_path_length(a, 2, b));
    return lengths;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(BgpMechanics, IntermediateVrfsHoldRoutesToo) {
  // VRF 1 on every router carries routes (the transit plane); lengths are
  // consistent with the ascending gadget: from (VRF 1, u) a prefix at
  // distance L costs max(L, K) - (K - 1) hops... concretely for K=2 and a
  // neighbor's prefix, VRF 1 is one ascend away: length 1.
  const auto d = topo::make_dring(5, 2, 1);
  BgpVrfNetwork bgp(d.graph, 2);
  bgp.converge();
  const topo::NodeId v = d.graph.neighbors(0)[0].neighbor;
  EXPECT_EQ(bgp.best_path_length(0, 1, v), 1);
}

TEST(BgpMechanics, InstalledRoutesScaleWithPrefixes) {
  // Doubling the topology size should grow total installed routes
  // superlinearly (more prefixes x more sessions).
  const auto small = topo::make_dring(5, 2, 1);
  const auto large = topo::make_dring(10, 2, 1);
  BgpVrfNetwork a(small.graph, 2), b(large.graph, 2);
  a.converge();
  b.converge();
  EXPECT_GT(b.installed_routes(), 2 * a.installed_routes());
}

TEST(BgpMechanics, FibEmptyAtOriginHostVrf) {
  // A router's host VRF has no FIB entry for its own prefix (it is the
  // origin; traffic terminates locally).
  const auto g = topo::make_leaf_spine(3, 1);
  BgpVrfNetwork bgp(g, 2);
  bgp.converge();
  EXPECT_TRUE(bgp.fib(0, 2, 0).empty());
}

}  // namespace
}  // namespace spineless::ctrl
