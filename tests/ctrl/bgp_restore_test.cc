// BGP mesh under churn: simultaneous fail+restore batches must land on the
// same routes as a fresh mesh built over the surviving topology, and
// exhausting max_rounds reports non-convergence instead of looping.
#include <gtest/gtest.h>

#include "ctrl/bgp.h"
#include "topo/builders.h"

namespace spineless::ctrl {
namespace {

// The incrementally-churned mesh must agree with a mesh built from scratch
// on the graph minus the currently-failed links — same best-path lengths
// and the same FIB path sets (paths are node sequences, so the subgraph's
// link renumbering is invisible).
void expect_matches_fresh(const BgpVrfNetwork& bgp, const Graph& g, int k,
                          const std::vector<LinkId>& down) {
  const Graph survivor = topo::subgraph_without_links(g, down);
  BgpVrfNetwork fresh(survivor, k);
  fresh.converge();
  for (NodeId u = 0; u < g.num_switches(); ++u) {
    for (NodeId d = 0; d < g.num_switches(); ++d) {
      if (u == d) continue;
      ASSERT_EQ(bgp.best_path_length(u, k, d),
                fresh.best_path_length(u, k, d))
          << u << " -> " << d;
      ASSERT_EQ(bgp.fib_paths(u, d), fresh.fib_paths(u, d))
          << u << " -> " << d;
    }
  }
}

TEST(BgpRestore, SimultaneousFailAndRestoreBatchesConverge) {
  const Graph g = topo::make_dring(5, 2, 1).graph;
  const int k = 2;
  BgpVrfNetwork bgp(g, k);
  bgp.converge();

  // Batch 1: two links fail at once.
  bgp.fail_link(0);
  bgp.fail_link(4);
  bgp.converge();
  expect_matches_fresh(bgp, g, k, {0, 4});

  // Batch 2: one restores while another fails — in the same batch.
  bgp.restore_link(0);
  bgp.fail_link(7);
  bgp.converge();
  expect_matches_fresh(bgp, g, k, {4, 7});

  // Batch 3: everything comes back.
  bgp.restore_link(4);
  bgp.restore_link(7);
  bgp.converge();
  expect_matches_fresh(bgp, g, k, {});
  EXPECT_EQ(bgp.failed_links(), 0u);
}

TEST(BgpRestore, MaxRoundsExhaustionReportsNonConvergence) {
  const Graph g = topo::make_dring(5, 2, 1).graph;
  BgpVrfNetwork bgp(g, 2);
  // One round cannot reach the fixpoint on a fresh mesh: with the flag
  // form, the caller gets converged=false and the round budget back.
  bool converged = true;
  EXPECT_EQ(bgp.converge(1, &converged), 1);
  EXPECT_FALSE(converged);
  // Without the flag, exhaustion throws (the pre-existing contract).
  BgpVrfNetwork bgp2(g, 2);
  EXPECT_THROW(bgp2.converge(1), Error);
  // A sane budget converges and reports it.
  BgpVrfNetwork bgp3(g, 2);
  converged = false;
  bgp3.converge(10'000, &converged);
  EXPECT_TRUE(converged);
}

TEST(BgpRestore, SubgraphWithoutLinksPreservesNodesAndServers) {
  const Graph g = topo::make_dring(4, 2, 2).graph;
  const Graph s = topo::subgraph_without_links(g, {1, 3});
  EXPECT_EQ(s.num_switches(), g.num_switches());
  EXPECT_EQ(s.num_links(), g.num_links() - 2);
  EXPECT_EQ(s.total_servers(), g.total_servers());
  for (NodeId n = 0; n < g.num_switches(); ++n)
    EXPECT_EQ(s.servers(n), g.servers(n));
  // Surviving links keep their endpoints and relative order.
  LinkId src = 0;
  for (LinkId l = 0; l < g.num_links(); ++l) {
    if (l == 1 || l == 3) continue;
    EXPECT_EQ(s.link(src).a, g.link(l).a);
    EXPECT_EQ(s.link(src).b, g.link(l).b);
    ++src;
  }
  EXPECT_THROW(topo::subgraph_without_links(g, {g.num_links()}), Error);
}

}  // namespace
}  // namespace spineless::ctrl
