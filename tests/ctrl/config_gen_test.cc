#include "ctrl/config_gen.h"

#include <gtest/gtest.h>

#include <regex>

#include "topo/builders.h"

namespace spineless::ctrl {
namespace {

int count_occurrences(const std::string& haystack, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++n;
  return n;
}

TEST(ConfigGen, DefinesKVrfsAndBgpProcess) {
  const auto d = topo::make_dring(5, 2, 4);
  ConfigGenOptions opts;
  opts.k = 2;
  const auto cfg = router_config(d.graph, 0, opts);
  EXPECT_NE(cfg.find("hostname r0"), std::string::npos);
  EXPECT_NE(cfg.find("vrf definition VRF1"), std::string::npos);
  EXPECT_NE(cfg.find("vrf definition VRF2"), std::string::npos);
  EXPECT_EQ(cfg.find("vrf definition VRF3"), std::string::npos);
  EXPECT_NE(cfg.find("router bgp 64512"), std::string::npos);
  EXPECT_NE(cfg.find("maximum-paths 32"), std::string::npos);
}

TEST(ConfigGen, HostInterfaceLivesInVrfK) {
  const auto d = topo::make_dring(5, 2, 4);
  const auto cfg = router_config(d.graph, 3, ConfigGenOptions{});
  const auto host_if = cfg.find("GigabitEthernet0/0");
  ASSERT_NE(host_if, std::string::npos);
  // The vrf line for the host interface names VRF2 (= K).
  EXPECT_NE(cfg.find("vrf forwarding VRF2", host_if), std::string::npos);
  // Its rack subnet is announced in the VRF-K address family.
  EXPECT_NE(cfg.find("network 10.128.3.0 mask"), std::string::npos);
}

TEST(ConfigGen, SpinesGetNoHostInterface) {
  const auto g = topo::make_leaf_spine(3, 1);
  const topo::NodeId spine = topo::leaf_spine_num_leaves(3, 1);
  const auto cfg = router_config(g, spine, ConfigGenOptions{});
  EXPECT_EQ(cfg.find("GigabitEthernet0/0\n"), std::string::npos);
  EXPECT_EQ(cfg.find("network 10."), std::string::npos);
}

TEST(ConfigGen, SessionCountMatchesGadget) {
  // Per physical link: 2 directions x (K rule-1 + (K-1) rule-2 + 1 rule-3)
  // sessions; each session = one neighbor statement pair (activate too).
  const auto d = topo::make_dring(5, 1, 2);  // every router: 4 links
  ConfigGenOptions opts;
  opts.k = 2;
  const auto cfg = router_config(d.graph, 0, opts);
  // Router 0 participates in every session of its 4 links, on one side:
  // 4 links x 8 sessions = 32 'neighbor ... remote-as' lines.
  EXPECT_EQ(count_occurrences(cfg, " remote-as "), 32);
  // Each session got a dot1q subinterface on our side.
  EXPECT_EQ(count_occurrences(cfg, "encapsulation dot1Q"), 32);
}

TEST(ConfigGen, PrependRouteMapsMatchCosts) {
  const auto d = topo::make_dring(5, 1, 2);
  ConfigGenOptions opts;
  opts.k = 3;
  const auto cfg = router_config(d.graph, 2, opts);
  // Cost-2 and cost-3 maps exist; cost-1 advertisements use none.
  EXPECT_NE(cfg.find("route-map PREPEND_2 permit 10"), std::string::npos);
  EXPECT_NE(cfg.find("route-map PREPEND_3 permit 10"), std::string::npos);
  // PREPEND_3 prepends the AS twice (eBGP adds the third).
  const std::regex two_prepends(
      "route-map PREPEND_3 permit 10\\n set as-path prepend 64514 64514\\n");
  EXPECT_TRUE(std::regex_search(cfg, two_prepends));
}

TEST(ConfigGen, PeerAddressesPairUpAcrossRouters) {
  // The /31 a-side and b-side of every session must appear once in each
  // endpoint's config: my interface IP is my peer's neighbor IP.
  topo::Graph g(2);
  g.add_link(0, 1);
  g.set_servers(0, 1);
  g.set_servers(1, 1);
  ConfigGenOptions opts;
  opts.k = 2;
  const auto cfg0 = router_config(g, 0, opts);
  const auto cfg1 = router_config(g, 1, opts);
  // Extract every 'ip address 172...' from cfg0 and find it as a neighbor
  // in cfg1, and vice versa.
  const std::regex ip_re("ip address (172\\.[0-9.]+) 255.255.255.254");
  for (const auto& [mine, theirs] :
       {std::pair{&cfg0, &cfg1}, std::pair{&cfg1, &cfg0}}) {
    for (std::sregex_iterator it(mine->begin(), mine->end(), ip_re), end;
         it != end; ++it) {
      const std::string addr = (*it)[1];
      EXPECT_NE(theirs->find("neighbor " + addr + " remote-as"),
                std::string::npos)
          << addr << " not a neighbor on the peer";
    }
  }
}

TEST(ConfigGen, FullDeploymentCoversEveryRouter) {
  const auto d = topo::make_dring(5, 2, 1);
  const auto all = full_deployment_config(d.graph, ConfigGenOptions{});
  for (topo::NodeId r = 0; r < d.graph.num_switches(); ++r)
    EXPECT_NE(all.find("hostname r" + std::to_string(r) + "\n"),
              std::string::npos);
}

TEST(ConfigGen, K1NeedsNoRouteMaps) {
  const auto g = topo::make_leaf_spine(3, 1);
  ConfigGenOptions opts;
  opts.k = 1;
  const auto cfg = router_config(g, 0, opts);
  EXPECT_EQ(cfg.find("route-map PREPEND"), std::string::npos);
  EXPECT_NE(cfg.find("vrf definition VRF1"), std::string::npos);
}

}  // namespace
}  // namespace spineless::ctrl
