#include "ctrl/ospf.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ctrl/bgp.h"
#include "routing/ecmp.h"
#include "topo/analysis.h"
#include "topo/builders.h"

namespace spineless::ctrl {
namespace {

Graph cycle_graph(int n) {
  Graph g(n);
  for (NodeId i = 0; i < n; ++i) g.add_link(i, (i + 1) % n);
  return g;
}

// After flooding, every router's SPF must equal the analytic EcmpTable.
struct OspfCase {
  enum Family { kLeafSpine, kDRing, kRrg, kCycle } family;
  int a, b;
};

Graph build(const OspfCase& c) {
  switch (c.family) {
    case OspfCase::kLeafSpine:
      return topo::make_leaf_spine(c.a, c.b);
    case OspfCase::kDRing:
      return topo::make_dring(c.a, c.b, 1).graph;
    case OspfCase::kRrg:
      return topo::make_rrg(c.a, c.b, 1, 51);
    case OspfCase::kCycle:
      return cycle_graph(c.a);
  }
  throw spineless::Error("unreachable");
}

class OspfEquivalence : public ::testing::TestWithParam<OspfCase> {};

TEST_P(OspfEquivalence, SpfMatchesAnalyticEcmpTable) {
  const Graph g = build(GetParam());
  OspfNetwork ospf(g);
  ospf.flood();
  ASSERT_TRUE(ospf.converged());
  const auto table = routing::EcmpTable::compute(g);
  for (NodeId r = 0; r < g.num_switches(); ++r) {
    for (NodeId dst = 0; dst < g.num_switches(); ++dst) {
      if (r == dst) continue;
      EXPECT_EQ(ospf.distance(r, dst), table.distance(r, dst));
      auto mine = ospf.next_hops(r, dst);
      const auto want_span = table.next_hops(r, dst);
      std::vector<Port> want(want_span.begin(), want_span.end());
      auto key = [](const Port& p) { return p.link; };
      std::sort(mine.begin(), mine.end(),
                [&](const Port& x, const Port& y) { return key(x) < key(y); });
      std::sort(want.begin(), want.end(),
                [&](const Port& x, const Port& y) { return key(x) < key(y); });
      ASSERT_EQ(mine.size(), want.size()) << r << "->" << dst;
      for (std::size_t i = 0; i < mine.size(); ++i)
        EXPECT_EQ(mine[i].link, want[i].link);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OspfEquivalence,
    ::testing::Values(OspfCase{OspfCase::kLeafSpine, 4, 2},
                      OspfCase{OspfCase::kDRing, 6, 2},
                      OspfCase{OspfCase::kRrg, 14, 4},
                      OspfCase{OspfCase::kCycle, 9, 0}));

TEST(Ospf, FloodingRoundsTrackDiameter) {
  const Graph g = cycle_graph(12);  // diameter 6
  OspfNetwork ospf(g);
  const int rounds = ospf.flood();
  EXPECT_GE(rounds, 6);
  EXPECT_LE(rounds, 8);
}

TEST(Ospf, SecondFloodIsNoOp) {
  const Graph g = topo::make_leaf_spine(3, 1);
  OspfNetwork ospf(g);
  ospf.flood();
  EXPECT_EQ(ospf.flood(), 0);
  EXPECT_TRUE(ospf.converged());
}

TEST(Ospf, MessagesCountUsefulInstalls) {
  // Every router must install N-1 foreign LSAs at least once.
  const Graph g = topo::make_dring(5, 2, 1).graph;
  OspfNetwork ospf(g);
  ospf.flood();
  const auto n = static_cast<std::int64_t>(g.num_switches());
  EXPECT_GE(ospf.messages_sent(), n * (n - 1));
}

TEST(Ospf, LinkFailureReroutes) {
  const Graph g = cycle_graph(6);
  OspfNetwork ospf(g);
  ospf.flood();
  ASSERT_EQ(ospf.distance(0, 1), 1);
  LinkId direct = g.neighbors(0)[0].link;
  NodeId victim = g.neighbors(0)[0].neighbor;
  ospf.fail_link(direct);
  EXPECT_FALSE(ospf.converged());  // stale LSDBs elsewhere
  const int rounds = ospf.flood();
  EXPECT_GT(rounds, 0);
  EXPECT_TRUE(ospf.converged());
  EXPECT_EQ(ospf.distance(0, victim), 5);  // around the ring
  const auto hops = ospf.next_hops(0, victim);
  ASSERT_EQ(hops.size(), 1u);
  EXPECT_NE(hops[0].link, direct);
}

TEST(Ospf, RestoreRecovers) {
  const Graph g = cycle_graph(6);
  OspfNetwork ospf(g);
  ospf.flood();
  const LinkId direct = g.neighbors(0)[0].link;
  const NodeId victim = g.neighbors(0)[0].neighbor;
  ospf.fail_link(direct);
  ospf.flood();
  ospf.restore_link(direct);
  ospf.flood();
  EXPECT_EQ(ospf.distance(0, victim), 1);
}

TEST(Ospf, PartitionIsDetectedPerSide) {
  Graph g(2);
  const LinkId l = g.add_link(0, 1);
  OspfNetwork ospf(g);
  ospf.flood();
  ospf.fail_link(l);
  ospf.flood();
  EXPECT_EQ(ospf.distance(0, 1), -1);
  EXPECT_TRUE(ospf.next_hops(0, 1).empty());
}

TEST(Ospf, MatchesBgpK1FibEverywhere) {
  // Cross-protocol check (§2 "BGP or OSPF"): plain shortest-path ECMP must
  // come out identical from the link-state SPF and the path-vector K=1
  // BGP mesh — same next-hop link sets at every (router, dst).
  const Graph g = topo::make_dring(6, 2, 1).graph;
  OspfNetwork ospf(g);
  ospf.flood();
  BgpVrfNetwork bgp(g, /*k=*/1);
  bgp.converge();
  for (NodeId r = 0; r < g.num_switches(); ++r) {
    for (NodeId dst = 0; dst < g.num_switches(); ++dst) {
      if (r == dst) continue;
      std::multiset<LinkId> from_ospf, from_bgp;
      for (const Port& p : ospf.next_hops(r, dst)) from_ospf.insert(p.link);
      for (const auto& e : bgp.fib(r, 1, dst)) from_bgp.insert(e.port.link);
      EXPECT_EQ(from_ospf, from_bgp) << r << "->" << dst;
    }
  }
}

TEST(Ospf, TwoWayCheckIgnoresOneSidedClaims) {
  // Before the remote endpoint's new LSA floods back, SPF must not use a
  // link only one side claims. Fail a link, flood only partially, and
  // assert no router forwards into the dead link from the far side view.
  const Graph g = topo::make_dring(5, 2, 1).graph;
  OspfNetwork ospf(g);
  ospf.flood();
  const LinkId dead = g.neighbors(0)[0].link;
  ospf.fail_link(dead);
  ospf.flood();
  for (NodeId r = 0; r < g.num_switches(); ++r) {
    for (NodeId dst = 0; dst < g.num_switches(); ++dst) {
      if (r == dst) continue;
      for (const Port& p : ospf.next_hops(r, dst)) EXPECT_NE(p.link, dead);
    }
  }
}

}  // namespace
}  // namespace spineless::ctrl
