// End-to-end forwarding validation via path tracing: the packets a mode
// actually forwards must use exactly the path sets the routing layer
// promises — the strongest cross-layer check in the suite. Also
// cross-validates the packet simulator against the fluid model.
#include <gtest/gtest.h>

#include <algorithm>

#include "flowsim/fluid_network.h"
#include "routing/paths.h"
#include "sim/tcp.h"
#include "topo/analysis.h"
#include "topo/builders.h"

namespace spineless::sim {
namespace {

struct TraceRig {
  TraceRig(const topo::Graph& graph_in, RoutingMode mode)
      : graph(graph_in), net(graph, make_cfg(mode)), driver(net, TcpConfig{}) {}

  static NetworkConfig make_cfg(RoutingMode mode) {
    NetworkConfig cfg;
    cfg.mode = mode;
    cfg.trace_paths = true;
    return cfg;
  }

  topo::Graph graph;
  Simulator sim;
  Network net;
  FlowDriver driver;
};

TEST(Tracing, EcmpPacketsFollowShortestPaths) {
  TraceRig rig(topo::make_dring(6, 2, 2).graph, RoutingMode::kEcmp);
  const auto& g = rig.graph;
  const auto dist = topo::all_pairs_distances(g);
  std::vector<std::pair<topo::HostId, topo::HostId>> endpoints;
  for (int i = 0; i < 20; ++i) {
    const topo::HostId src = i % g.total_servers();
    const topo::HostId dst = (i * 7 + 3) % g.total_servers();
    if (g.tor_of_host(src) == g.tor_of_host(dst)) continue;
    endpoints.emplace_back(src, dst);
    rig.driver.add_flow(rig.sim, src, dst, 10'000, i * units::kMicrosecond);
  }
  rig.sim.run_until(units::kSecond);
  for (std::size_t f = 0; f < endpoints.size(); ++f) {
    const auto path = rig.net.traced_path(static_cast<std::int32_t>(f));
    const auto [src, dst] = endpoints[f];
    const auto a = g.tor_of_host(src);
    const auto b = g.tor_of_host(dst);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), a);
    EXPECT_EQ(path.back(), b);
    EXPECT_EQ(routing::path_length(path),
              dist[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)]);
    EXPECT_TRUE(routing::paths_valid(g, a, b, {path}));
  }
}

TEST(Tracing, ShortestUnionPacketsStayInSuSet) {
  TraceRig rig(topo::make_dring(5, 3, 2).graph, RoutingMode::kShortestUnion);
  const auto& g = rig.graph;
  std::vector<std::pair<topo::HostId, topo::HostId>> endpoints;
  for (int i = 0; i < 30; ++i) {
    const topo::HostId src = (i * 3) % g.total_servers();
    const topo::HostId dst = (i * 11 + 5) % g.total_servers();
    if (g.tor_of_host(src) == g.tor_of_host(dst)) continue;
    endpoints.emplace_back(src, dst);
    rig.driver.add_flow(rig.sim, src, dst, 10'000, i * units::kMicrosecond);
  }
  rig.sim.run_until(units::kSecond);
  for (std::size_t f = 0; f < endpoints.size(); ++f) {
    const auto path = rig.net.traced_path(static_cast<std::int32_t>(f));
    const auto [src, dst] = endpoints[f];
    const auto a = g.tor_of_host(src);
    const auto b = g.tor_of_host(dst);
    const auto su = routing::shortest_union_paths(g, a, b, 2, 8192);
    EXPECT_TRUE(std::find(su.begin(), su.end(), path) != su.end())
        << "flow " << f << " took a path outside Shortest-Union(2)";
  }
}

TEST(Tracing, SourceRoutedPacketsFollowExactPin) {
  topo::Graph g(4);
  g.add_link(0, 1);
  g.add_link(0, 2);
  g.add_link(1, 3);
  g.add_link(2, 3);
  g.set_servers(0, 1);
  g.set_servers(3, 1);
  TraceRig rig(g, RoutingMode::kSourceRouted);
  const auto id = rig.driver.add_flow(rig.sim, 0, 1, 10'000, 0);
  rig.net.set_flow_routes(id, {0, 2, 3});
  rig.sim.run_until(units::kSecond);
  EXPECT_EQ(rig.net.traced_path(id), (routing::Path{0, 2, 3}));
}

TEST(Tracing, OffByDefaultCostsNothing) {
  topo::Graph g(2);
  g.add_link(0, 1);
  g.set_servers(0, 1);
  g.set_servers(1, 1);
  NetworkConfig cfg;  // trace_paths = false
  Simulator sim;
  Network net(g, cfg);
  FlowDriver driver(net, TcpConfig{});
  driver.add_flow(sim, 0, 1, 10'000, 0);
  sim.run_until(units::kSecond);
  EXPECT_TRUE(net.traced_path(0).empty());
}

TEST(FluidVsPacket, AgreeOnSharedBottleneck) {
  // 4 long flows across one 10G link: fluid model says 2.5 Gbps each;
  // packet-level TCP should land within ~20% (header overhead + slow
  // start + imperfect fairness).
  topo::Graph g(2);
  g.add_link(0, 1);
  g.set_servers(0, 4);
  g.set_servers(1, 4);

  flowsim::FluidNetwork fluid(g, 10e9);
  for (int i = 0; i < 4; ++i) fluid.add_flow(i, 4 + i, {0, 1});
  const auto rates = fluid.solve();
  for (double r : rates) EXPECT_NEAR(r, 2.5e9, 1);

  NetworkConfig cfg;
  Simulator sim;
  Network net(g, cfg);
  FlowDriver driver(net, TcpConfig{});
  const std::int64_t bytes = 4'000'000;
  for (int i = 0; i < 4; ++i) driver.add_flow(sim, i, 4 + i, bytes, 0);
  sim.run_until(60 * units::kSecond);
  ASSERT_EQ(driver.completed_flows(), 4u);
  // Early finishers free capacity, so per-flow FCT goodput overestimates
  // the fair share; the honest comparisons are (a) the slowest flow's
  // goodput ~ the max-min share, and (b) aggregate goodput ~ link rate.
  Time last = 0;
  for (std::size_t i = 0; i < 4; ++i)
    last = std::max(last, driver.flow(i).record().finish);
  const double slowest_goodput =
      static_cast<double>(bytes) * 8 / units::to_seconds(last);
  EXPECT_NEAR(slowest_goodput, rates[0], 0.3 * rates[0]);
  const double aggregate =
      4.0 * static_cast<double>(bytes) * 8 / units::to_seconds(last);
  EXPECT_NEAR(aggregate, 10e9, 0.2 * 10e9);
}

TEST(FluidVsPacket, AgreeOnAsymmetricShares) {
  // Flow A alone on link 0->1; flows B,C share 1->2... build a path graph
  // where the fluid model predicts unequal rates and check the ordering
  // survives in the packet world.
  topo::Graph g(3);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.set_servers(0, 2);
  g.set_servers(1, 1);
  g.set_servers(2, 2);
  // hosts: 0,1 on tor0; 2 on tor1; 3,4 on tor2.
  flowsim::FluidNetwork fluid(g, 10e9);
  fluid.add_flow(0, 3, {0, 1, 2});  // crosses both links
  fluid.add_flow(2, 4, {1, 2});     // only second link
  const auto rates = fluid.solve();
  EXPECT_NEAR(rates[0], 5e9, 1);
  EXPECT_NEAR(rates[1], 5e9, 1);

  NetworkConfig cfg;
  Simulator sim;
  Network net(g, cfg);
  FlowDriver driver(net, TcpConfig{});
  const std::int64_t bytes = 4'000'000;
  driver.add_flow(sim, 0, 3, bytes, 0);
  driver.add_flow(sim, 2, 4, bytes, 0);
  sim.run_until(60 * units::kSecond);
  ASSERT_EQ(driver.completed_flows(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    const double goodput =
        static_cast<double>(bytes) * 8 /
        units::to_seconds(driver.flow(i).record().fct());
    EXPECT_NEAR(goodput, rates[i], 0.3 * rates[i]);
  }
}

}  // namespace
}  // namespace spineless::sim
