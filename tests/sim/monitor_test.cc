#include "sim/monitor.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/tcp.h"
#include "topo/builders.h"

namespace spineless::sim {
namespace {

struct Rig {
  Rig() : graph(make_graph()), net(graph, NetworkConfig{}),
          driver(net, TcpConfig{}) {}
  static topo::Graph make_graph() {
    topo::Graph g(2);
    g.add_link(0, 1);
    g.set_servers(0, 4);
    g.set_servers(1, 4);
    return g;
  }
  topo::Graph graph;
  Simulator sim;
  Network net;
  FlowDriver driver;
};

TEST(QueueMonitor, SamplesAtRequestedCadence) {
  Rig rig;
  QueueMonitor mon(rig.net, 100 * units::kMicrosecond);
  mon.start(rig.sim, 0, units::kMillisecond);
  rig.sim.run_until(10 * units::kMillisecond);
  ASSERT_EQ(mon.samples().size(), 11u);  // t = 0, 100us, ..., 1000us
  for (std::size_t i = 0; i < mon.samples().size(); ++i)
    EXPECT_EQ(mon.samples()[i].t,
              static_cast<Time>(i) * 100 * units::kMicrosecond);
}

TEST(QueueMonitor, SeesCongestionBuildUp) {
  Rig rig;
  for (int i = 0; i < 4; ++i)
    rig.driver.add_flow(rig.sim, i, 4 + i, 4'000'000, 0);
  QueueMonitor mon(rig.net, 50 * units::kMicrosecond);
  mon.start(rig.sim, 0, 10 * units::kMillisecond);
  rig.sim.run_until(60 * units::kSecond);
  EXPECT_EQ(rig.driver.completed_flows(), 4u);
  // Four Reno flows into one 10G pipe: the monitor must observe deep
  // queues at some point.
  EXPECT_GT(mon.max_queue_pkts().max(), 30.0);
  EXPECT_GT(mon.mean_total_bytes(), 0.0);
}

TEST(QueueMonitor, IdleNetworkReadsZero) {
  Rig rig;
  QueueMonitor mon(rig.net, units::kMillisecond);
  mon.start(rig.sim, 0, 5 * units::kMillisecond);
  rig.sim.run_until(units::kSecond);
  for (const auto& s : mon.samples()) {
    EXPECT_EQ(s.total_bytes, 0);
    EXPECT_EQ(s.max_bytes, 0);
  }
}

TEST(QueueMonitor, CsvHasHeaderAndRows) {
  Rig rig;
  QueueMonitor mon(rig.net, units::kMillisecond);
  mon.start(rig.sim, 0, 2 * units::kMillisecond);
  rig.sim.run_until(units::kSecond);
  const auto csv = mon.to_csv();
  EXPECT_EQ(csv.rfind("t_ps,total_bytes,max_bytes\n", 0), 0u);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);  // header + 3
}

TEST(QueueMonitor, DctcpHoldsQueuesWhereRenoFillsThem) {
  // The monitoring claim end-to-end: run the same incast with Reno and
  // DCTCP, compare the observed p99 of the hottest queue.
  auto run = [](bool dctcp) {
    topo::Graph g = Rig::make_graph();
    NetworkConfig net_cfg;
    net_cfg.ecn_threshold_bytes = dctcp ? 20 * kDataPacketBytes : 0;
    TcpConfig tcp_cfg;
    tcp_cfg.dctcp = dctcp;
    Simulator sim;
    Network net(g, net_cfg);
    FlowDriver driver(net, tcp_cfg);
    for (int i = 0; i < 4; ++i)
      driver.add_flow(sim, i, 4 + i, 4'000'000, 0);
    QueueMonitor mon(net, 20 * units::kMicrosecond);
    mon.start(sim, 0, 12 * units::kMillisecond);
    sim.run_until(60 * units::kSecond);
    EXPECT_EQ(driver.completed_flows(), 4u);
    return mon.max_queue_pkts().p99();
  };
  const double reno = run(false);
  const double dctcp = run(true);
  EXPECT_LT(dctcp, reno * 0.6);
}

}  // namespace
}  // namespace spineless::sim
