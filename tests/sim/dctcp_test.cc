// DCTCP extension tests: ECN marking at queues, precise ECE echo, and the
// proportional window law keeping queues near the marking threshold.
#include <gtest/gtest.h>

#include "sim/tcp.h"
#include "topo/builders.h"

namespace spineless::sim {
namespace {

struct Rig {
  Rig(std::int64_t ecn_threshold, bool dctcp, int hosts_per_tor = 4)
      : graph(make_graph(hosts_per_tor)),
        net(graph, make_net_cfg(ecn_threshold)),
        driver(net, make_tcp_cfg(dctcp)) {}

  static topo::Graph make_graph(int hosts) {
    topo::Graph g(2);
    g.add_link(0, 1);
    g.set_servers(0, hosts);
    g.set_servers(1, hosts);
    return g;
  }
  static NetworkConfig make_net_cfg(std::int64_t thresh) {
    NetworkConfig cfg;
    cfg.ecn_threshold_bytes = thresh;
    return cfg;
  }
  static TcpConfig make_tcp_cfg(bool dctcp) {
    TcpConfig cfg;
    cfg.dctcp = dctcp;
    return cfg;
  }

  topo::Graph graph;
  Simulator sim;
  Network net;
  FlowDriver driver;
};

constexpr std::int64_t kThresh = 20 * kDataPacketBytes;

TEST(Dctcp, FlowsCompleteWithEcnOn) {
  Rig rig(kThresh, /*dctcp=*/true);
  for (int i = 0; i < 4; ++i)
    rig.driver.add_flow(rig.sim, i, 4 + i, 2'000'000, 0);
  rig.sim.run_until(60 * units::kSecond);
  EXPECT_EQ(rig.driver.completed_flows(), 4u);
}

TEST(Dctcp, KeepsQueuesNearThreshold) {
  // Four competing Reno flows fill the 100-packet buffer; DCTCP holds the
  // queue near the 20-packet marking point.
  auto max_queue = [](bool dctcp) {
    Rig rig(dctcp ? kThresh : 0, dctcp);
    for (int i = 0; i < 4; ++i)
      rig.driver.add_flow(rig.sim, i, 4 + i, 4'000'000, 0);
    rig.sim.run_until(60 * units::kSecond);
    EXPECT_EQ(rig.driver.completed_flows(), 4u);
    return rig.net.max_network_queue_bytes();
  };
  const auto reno = max_queue(false);
  const auto dctcp = max_queue(true);
  EXPECT_EQ(reno, 100 * kDataPacketBytes);  // Reno fills the buffer
  // DCTCP's peak = the synchronized 4 x IW10 start burst plus one RTT of
  // slow-start growth before the first marks bite (~60 pkts here), well
  // under Reno's; steady state then hovers at the 20-packet threshold.
  EXPECT_LT(dctcp, (reno * 7) / 10);
  EXPECT_LE(dctcp, kThresh + 50 * kDataPacketBytes);
}

TEST(Dctcp, ComparableGoodputToReno) {
  auto total_fct = [](bool dctcp) {
    Rig rig(dctcp ? kThresh : 0, dctcp);
    for (int i = 0; i < 4; ++i)
      rig.driver.add_flow(rig.sim, i, 4 + i, 4'000'000, 0);
    rig.sim.run_until(60 * units::kSecond);
    Time last = 0;
    for (std::size_t i = 0; i < 4; ++i)
      last = std::max(last, rig.driver.flow(i).record().finish);
    return last;
  };
  // DCTCP should not be more than ~20% slower in aggregate.
  EXPECT_LT(total_fct(true),
            static_cast<Time>(1.2 * static_cast<double>(total_fct(false))));
}

TEST(Dctcp, AlphaRisesUnderPersistentCongestion) {
  Rig rig(kThresh, /*dctcp=*/true);
  for (int i = 0; i < 4; ++i)
    rig.driver.add_flow(rig.sim, i, 4 + i, 6'000'000, 0);
  rig.sim.run_until(60 * units::kSecond);
  double max_alpha = 0;
  for (std::size_t i = 0; i < 4; ++i)
    max_alpha = std::max(max_alpha, rig.driver.flow(i).dctcp_alpha());
  EXPECT_GT(max_alpha, 0.01);
  EXPECT_LE(max_alpha, 1.0);
}

TEST(Dctcp, NoMarksWithoutCongestion) {
  Rig rig(kThresh, /*dctcp=*/true);
  rig.driver.add_flow(rig.sim, 0, 4, 50'000, 0);  // single small flow
  rig.sim.run_until(units::kSecond);
  EXPECT_EQ(rig.driver.completed_flows(), 1u);
  EXPECT_DOUBLE_EQ(rig.driver.flow(0).dctcp_alpha(), 0.0);
}

TEST(Dctcp, RenoIgnoresMarks) {
  // ECN marking on but DCTCP off: marks flow through without window cuts;
  // TCP still behaves like drop-tail Reno and completes.
  Rig rig(kThresh, /*dctcp=*/false);
  for (int i = 0; i < 4; ++i)
    rig.driver.add_flow(rig.sim, i, 4 + i, 2'000'000, 0);
  rig.sim.run_until(60 * units::kSecond);
  EXPECT_EQ(rig.driver.completed_flows(), 4u);
}

TEST(Ecn, MarksOnlyAboveThreshold) {
  // Drive a queue past the threshold and check marks got counted.
  Rig rig(kThresh, /*dctcp=*/true);
  for (int i = 0; i < 4; ++i)
    rig.driver.add_flow(rig.sim, i, 4 + i, 3'000'000, 0);
  rig.sim.run_until(60 * units::kSecond);
  // At least some data packets were marked during slow-start overshoot.
  // (Marks are visible via alpha > 0, checked above; here we check the
  // pipeline end-to-end: a DCTCP run with a huge threshold sees none.)
  Rig calm(1'000'000'000, /*dctcp=*/true);
  calm.driver.add_flow(calm.sim, 0, 4, 3'000'000, 0);
  calm.sim.run_until(60 * units::kSecond);
  EXPECT_DOUBLE_EQ(calm.driver.flow(0).dctcp_alpha(), 0.0);
}

}  // namespace
}  // namespace spineless::sim
