// Partition-aggregate workload + driver tests: generation invariants, QCT
// accounting, fan-in scaling, and DCTCP's incast advantage.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sim/incast_driver.h"
#include "topo/builders.h"

namespace spineless::sim {
namespace {

TEST(IncastGen, WorkersDistinctAndOffAggregatorRack) {
  const auto g = topo::make_dring(6, 2, 4).graph;
  Rng rng(3);
  const auto queries = workload::generate_incast_queries(
      g, /*queries=*/20, /*workers=*/8, /*bytes=*/50'000,
      units::kMillisecond, rng);
  ASSERT_EQ(queries.size(), 20u);
  for (const auto& q : queries) {
    EXPECT_EQ(q.workers.size(), 8u);
    std::set<topo::HostId> uniq(q.workers.begin(), q.workers.end());
    EXPECT_EQ(uniq.size(), 8u);
    for (topo::HostId w : q.workers) {
      EXPECT_NE(w, q.aggregator);
      EXPECT_NE(g.tor_of_host(w), g.tor_of_host(q.aggregator));
    }
    EXPECT_GE(q.start, 0);
    EXPECT_LT(q.start, units::kMillisecond);
  }
}

TEST(IncastGen, RejectsImpossibleFanIn) {
  const auto g = topo::make_dring(5, 2, 2).graph;  // 20 hosts
  Rng rng(1);
  EXPECT_THROW(workload::generate_incast_queries(g, 1, 20, 1000,
                                                 units::kMillisecond, rng),
               Error);
}

TEST(IncastDriver, QueryCompletesAndQctIsLastResponse) {
  const auto g = topo::make_dring(5, 2, 4).graph;
  NetworkConfig cfg;
  Simulator sim;
  Network net(g, cfg);
  IncastDriver driver(net, TcpConfig{});
  Rng rng(5);
  const auto queries = workload::generate_incast_queries(
      g, 4, 6, 100'000, units::kMillisecond, rng);
  for (const auto& q : queries) driver.add_query(sim, q);
  sim.run_until(10 * units::kSecond);
  EXPECT_EQ(driver.completed_queries(), 4u);
  const auto qct = driver.qct_ms();
  ASSERT_EQ(qct.count(), 4u);
  // 6 workers x 100 KB into one 10G NIC: at least 0.48 ms of serialization.
  EXPECT_GT(qct.min(), 0.45);
}

TEST(IncastDriver, QctGrowsWithFanIn) {
  auto p50 = [](int workers) {
    const auto g = topo::make_dring(6, 2, 8).graph;
    NetworkConfig cfg;
    Simulator sim;
    Network net(g, cfg);
    IncastDriver driver(net, TcpConfig{});
    Rng rng(7);
    const auto queries = workload::generate_incast_queries(
        g, 6, workers, 50'000, units::kMillisecond, rng);
    for (const auto& q : queries) driver.add_query(sim, q);
    sim.run_until(30 * units::kSecond);
    EXPECT_EQ(driver.completed_queries(), 6u);
    return driver.qct_ms().median();
  };
  EXPECT_LT(p50(4), p50(16));
}

TEST(IncastDriver, DctcpBeatsRenoAtHighFanIn) {
  // 32-to-1 with shallow buffers: Reno overflows and pays RTOs; DCTCP's
  // early marks keep the burst under control. The classic result.
  auto p99 = [](bool dctcp) {
    const auto g = topo::make_dring(6, 2, 8).graph;
    NetworkConfig cfg;
    cfg.queue_bytes = 40 * kDataPacketBytes;
    cfg.ecn_threshold_bytes = dctcp ? 10 * kDataPacketBytes : 0;
    TcpConfig tcp;
    tcp.dctcp = dctcp;
    Simulator sim;
    Network net(g, cfg);
    IncastDriver driver(net, tcp);
    Rng rng(11);
    const auto queries = workload::generate_incast_queries(
        g, 8, 32, 30'000, 2 * units::kMillisecond, rng);
    for (const auto& q : queries) driver.add_query(sim, q);
    sim.run_until(60 * units::kSecond);
    EXPECT_EQ(driver.completed_queries(), 8u);
    return driver.qct_ms().p99();
  };
  const double reno = p99(false);
  const double dctcp = p99(true);
  EXPECT_LT(dctcp, reno);
}

}  // namespace
}  // namespace spineless::sim
