#include "sim/network.h"

#include <gtest/gtest.h>

#include "sim/tcp.h"
#include "topo/builders.h"

namespace spineless::sim {
namespace {

// End-to-end delivery across each topology family and routing mode.
struct NetCase {
  enum Family { kLeafSpine, kDRing, kRrg } family;
  RoutingMode mode;
};

topo::Graph build(NetCase::Family family) {
  switch (family) {
    case NetCase::kLeafSpine:
      return topo::make_leaf_spine(4, 2);
    case NetCase::kDRing:
      return topo::make_dring(5, 2, 2).graph;
    case NetCase::kRrg:
      return topo::make_rrg(10, 4, 2, 31);
  }
  throw spineless::Error("unreachable");
}

class NetworkDelivery : public ::testing::TestWithParam<NetCase> {};

TEST_P(NetworkDelivery, AllFlowsCompleteWithoutLoops) {
  const topo::Graph g = build(GetParam().family);
  NetworkConfig cfg;
  cfg.mode = GetParam().mode;
  Simulator sim;
  Network net(g, cfg);
  FlowDriver driver(net, TcpConfig{});
  // One flow between every pair of racks (first host each).
  int flows = 0;
  for (topo::NodeId a = 0; a < g.num_switches(); ++a) {
    for (topo::NodeId b = 0; b < g.num_switches(); ++b) {
      if (a == b || g.servers(a) == 0 || g.servers(b) == 0) continue;
      driver.add_flow(sim, g.first_host_of(a), g.first_host_of(b), 30'000,
                      flows * units::kMicrosecond);
      ++flows;
    }
  }
  sim.run_until(10 * units::kSecond);
  EXPECT_EQ(driver.completed_flows(), static_cast<std::size_t>(flows));
  EXPECT_EQ(net.stats().ttl_drops, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NetworkDelivery,
    ::testing::Values(NetCase{NetCase::kLeafSpine, RoutingMode::kEcmp},
                      NetCase{NetCase::kLeafSpine,
                              RoutingMode::kShortestUnion},
                      NetCase{NetCase::kDRing, RoutingMode::kEcmp},
                      NetCase{NetCase::kDRing, RoutingMode::kShortestUnion},
                      NetCase{NetCase::kRrg, RoutingMode::kEcmp},
                      NetCase{NetCase::kRrg, RoutingMode::kShortestUnion}));

TEST(Network, IntraRackTrafficNeverTouchesNetworkLinks) {
  topo::Graph g(2);
  g.add_link(0, 1);
  g.set_servers(0, 2);
  g.set_servers(1, 1);
  NetworkConfig cfg;
  Simulator sim;
  Network net(g, cfg);
  FlowDriver driver(net, TcpConfig{});
  driver.add_flow(sim, 0, 1, 100'000, 0);  // both hosts on ToR 0
  sim.run_until(units::kSecond);
  EXPECT_EQ(driver.completed_flows(), 1u);
  EXPECT_EQ(net.max_network_queue_bytes(), 0);
}

TEST(Network, EcmpHashingSpreadsFlowsAcrossSpines) {
  // Many flows between two leaves: with 4 spines and per-flow hashing,
  // every spine should carry some of them. We detect spreading via the
  // aggregate: one spine path alone couldn't finish this volume in the
  // observed time.
  const topo::Graph g = topo::make_leaf_spine(8, 4);
  NetworkConfig cfg;
  Simulator sim;
  Network net(g, cfg);
  FlowDriver driver(net, TcpConfig{});
  const std::int64_t bytes = 2'000'000;
  const int n_flows = 8;
  for (int i = 0; i < n_flows; ++i)
    driver.add_flow(sim, i, g.first_host_of(1) + i, bytes, 0);
  sim.run_until(10 * units::kSecond);
  ASSERT_EQ(driver.completed_flows(), static_cast<std::size_t>(n_flows));
  Time last_finish = 0;
  for (int i = 0; i < n_flows; ++i)
    last_finish = std::max(last_finish, driver.flow(static_cast<std::size_t>(i))
                                            .record()
                                            .finish);
  // All 8 flows x 2 MB over one 10G path would need >= 12.8 ms; with
  // hashing across 4 spines it finishes much sooner.
  EXPECT_LT(last_finish, 10 * units::kMillisecond);
}

TEST(Network, VrfModeUsesDetoursForAdjacentRacks) {
  // Rack-to-rack between adjacent DRing racks: ECMP is stuck on the single
  // direct 10G link; Shortest-Union(2) spreads over 2n+1 paths and must
  // finish decisively faster.
  const topo::DRing d = topo::make_dring(5, 3, 4);
  auto run = [&](RoutingMode mode) {
    NetworkConfig cfg;
    cfg.mode = mode;
    Simulator sim;
    Network net(d.graph, cfg);
    FlowDriver driver(net, TcpConfig{});
    const topo::NodeId a = 0;
    const topo::NodeId b = d.graph.neighbors(0)[0].neighbor;
    // All 4 hosts of a send 4 MB to all 4 hosts of b.
    for (int i = 0; i < 4; ++i)
      for (int j = 0; j < 4; ++j)
        driver.add_flow(sim, d.graph.first_host_of(a) + i,
                        d.graph.first_host_of(b) + j, 4'000'000, 0);
    sim.run_until(60 * units::kSecond);
    EXPECT_EQ(driver.completed_flows(), 16u);
    Time last = 0;
    for (std::size_t i = 0; i < 16; ++i)
      last = std::max(last, driver.flow(i).record().finish);
    return last;
  };
  const Time ecmp = run(RoutingMode::kEcmp);
  const Time su2 = run(RoutingMode::kShortestUnion);
  EXPECT_LT(su2, ecmp / 2);
}

TEST(Network, StatsAggregateDrops) {
  topo::Graph g(2);
  g.add_link(0, 1);
  g.set_servers(0, 4);
  g.set_servers(1, 4);
  NetworkConfig cfg;
  cfg.queue_bytes = 4 * kDataPacketBytes;
  Simulator sim;
  Network net(g, cfg);
  FlowDriver driver(net, TcpConfig{});
  for (int i = 0; i < 4; ++i)
    driver.add_flow(sim, i, 4 + i, 1'000'000, 0);
  sim.run_until(60 * units::kSecond);
  EXPECT_EQ(driver.completed_flows(), 4u);
  EXPECT_GT(net.stats().queue_drops, 0);
  EXPECT_GT(net.stats().delivered, 0);
}

TEST(Network, DeterministicForIdenticalConfig) {
  auto run_once = [] {
    const topo::Graph g = topo::make_dring(5, 2, 2).graph;
    NetworkConfig cfg;
    cfg.mode = RoutingMode::kShortestUnion;
    Simulator sim;
    Network net(g, cfg);
    FlowDriver driver(net, TcpConfig{});
    for (int i = 0; i < 10; ++i)
      driver.add_flow(sim, i, (i + 7) % g.total_servers(), 200'000,
                      i * units::kMicrosecond);
    sim.run_until(10 * units::kSecond);
    std::vector<Time> fcts;
    for (std::size_t i = 0; i < driver.num_flows(); ++i)
      fcts.push_back(driver.flow(i).record().fct());
    return fcts;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace spineless::sim
