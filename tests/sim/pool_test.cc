#include "sim/packet_pool.h"

#include <gtest/gtest.h>

#include "core/fct_experiment.h"
#include "sim/network.h"
#include "sim/tcp.h"
#include "topo/builders.h"
#include "workload/tm.h"

namespace spineless::sim {
namespace {

TEST(PacketPool, RecyclesNodesThroughFreeList) {
  PacketPool pool;
  Packet p;
  p.seq = 42;
  PacketNode* a = pool.alloc(p);
  EXPECT_EQ(a->pkt.seq, 42);
  EXPECT_EQ(pool.in_use(), 1u);
  pool.release(a);
  EXPECT_EQ(pool.in_use(), 0u);
  // The freed node comes straight back.
  PacketNode* b = pool.alloc(p);
  EXPECT_EQ(b, a);
  pool.release(b);
  EXPECT_EQ(pool.blocks_allocated(), 1u);
}

TEST(PacketPool, GrowsInBlocks) {
  PacketPool pool;
  Packet p;
  std::vector<PacketNode*> nodes;
  for (int i = 0; i < 600; ++i) nodes.push_back(pool.alloc(p));
  EXPECT_EQ(pool.in_use(), 600u);
  EXPECT_GE(pool.total_nodes(), 600u);
  const std::size_t blocks = pool.blocks_allocated();
  for (PacketNode* n : nodes) pool.release(n);
  EXPECT_EQ(pool.in_use(), 0u);
  // Releasing never frees blocks; capacity is retained for reuse.
  EXPECT_EQ(pool.blocks_allocated(), blocks);
}

// Steady state: running a second experiment on the same Network must not
// allocate new blocks — every buffer the second run needs was already
// pooled by the first, and nothing leaked in between.
TEST(PacketPool, NetworkAllocationPlateausAcrossExperiments) {
  const topo::Graph g = topo::make_leaf_spine(4, 2);
  NetworkConfig ncfg;
  Network net(g, ncfg);

  auto run_once = [&] {
    Simulator sim;
    TcpConfig tcfg;
    FlowDriver driver(net, tcfg);
    for (topo::HostId h = 0; h < 8; ++h) {
      driver.add_flow(sim, h, (h + 5) % g.total_servers(),
                      /*bytes=*/200 * kMss, /*start=*/0);
    }
    sim.run();
    EXPECT_EQ(driver.completed_flows(), 8u);
  };

  run_once();
  EXPECT_EQ(net.packet_pool().in_use(), 0u)
      << "packets leaked after the queues drained";
  const std::size_t blocks_after_first = net.packet_pool().blocks_allocated();
  EXPECT_GT(blocks_after_first, 0u);

  run_once();
  EXPECT_EQ(net.packet_pool().in_use(), 0u);
  EXPECT_EQ(net.packet_pool().blocks_allocated(), blocks_after_first)
      << "second identical experiment should reuse pooled buffers";
}

// Dropped packets (drop-tail and blackholed links) must return to the pool.
TEST(PacketPool, DropsReleaseNodes) {
  const topo::Graph g = topo::make_leaf_spine(3, 1);
  NetworkConfig ncfg;
  ncfg.queue_bytes = 2 * kDataPacketBytes;  // tiny queues force drops
  Network net(g, ncfg);

  Simulator sim;
  TcpConfig tcfg;
  FlowDriver driver(net, tcfg);
  for (topo::HostId h = 0; h < 3; ++h)
    driver.add_flow(sim, h, (h + 4) % g.total_servers(), 100 * kMss, 0);
  sim.run();
  EXPECT_GT(net.stats().queue_drops, 0) << "test needs drops to be meaningful";
  EXPECT_EQ(net.packet_pool().in_use(), 0u);
}

}  // namespace
}  // namespace spineless::sim
