// Checkpoint/restore and invariant-auditor tests.
//
// The headline contract: a run segmented at quiescent boundaries — with or
// without a save + restore in the middle — is byte-identical to one
// uninterrupted run_until, for every intra_jobs split, including with an
// active FaultPlan. "Byte-identical" is asserted through exact equality of
// event counts, per-flow records, drop counters, and the injector/monitor
// JSON reports (which carry no wall-clock content).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/fct_experiment.h"
#include "fault/degradation.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "sim/checkpoint.h"
#include "sim/sharded_engine.h"
#include "sim/snapshot.h"
#include "sim/tcp.h"
#include "topo/builders.h"
#include "util/error.h"
#include "util/fsio.h"
#include "workload/flows.h"

namespace spineless::sim {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "spineless_ckpt_" + name;
}

// --- FCT experiment round trips --------------------------------------------

struct FctPrint {
  std::uint64_t events = 0;
  std::size_t flows = 0, completed = 0;
  std::int64_t drops = 0, retransmits = 0, max_queue = 0;
  double p50 = 0, p99 = 0;
  bool operator==(const FctPrint&) const = default;
};

FctPrint print(const core::FctResult& r) {
  return FctPrint{r.events,      r.flows,  r.completed,
                  r.queue_drops, r.retransmits, r.max_queue_bytes,
                  r.median_ms(), r.p99_ms()};
}

core::FctConfig small_cfg(int intra) {
  core::FctConfig cfg;
  cfg.flowgen.offered_load_bps = workload::spine_offered_load_bps(
      6, 2, 10e9, /*utilization=*/0.3);
  cfg.flowgen.window = units::kMillisecond;
  cfg.drain_factor = 8.0;
  cfg.seed = 7;
  cfg.net.intra_jobs = intra;
  return cfg;
}

TEST(Checkpoint, SegmentedAuditedRunMatchesOneShot) {
  for (const bool dring : {false, true}) {
    SCOPED_TRACE(dring ? "dring" : "leaf-spine");
    const topo::Graph g =
        dring ? topo::make_dring(6, 2, 2).graph : topo::make_leaf_spine(6, 2);
    const auto tm = workload::RackTm::uniform(g);
    const FctPrint base = print(core::run_fct_experiment(g, tm, small_cfg(1)));
    ASSERT_GT(base.completed, 0u);
    for (const int intra : {1, 2, 4, 7}) {
      SCOPED_TRACE("intra_jobs=" + std::to_string(intra));
      auto cfg = small_cfg(intra);
      cfg.checkpoint.audit = true;  // forces the segmented loop + auditor
      EXPECT_EQ(base, print(core::run_fct_experiment(g, tm, cfg)));
    }
  }
}

TEST(Checkpoint, KillAndResumeIsByteIdentical) {
  const topo::Graph g = topo::make_dring(6, 2, 2).graph;
  const auto tm = workload::RackTm::uniform(g);
  const FctPrint base = print(core::run_fct_experiment(g, tm, small_cfg(1)));
  for (const int intra : {1, 2, 4, 7}) {
    SCOPED_TRACE("intra_jobs=" + std::to_string(intra));
    const std::string path = tmp_path("fct" + std::to_string(intra));
    util::remove_file(path);
    // The intra=4 cell saves and restores across *real* reactor threads
    // (reactor_threads is deliberately outside the config hash, so the
    // snapshot is portable between cooperative and threaded runs).
    const int threads = intra == 4 ? 4 : 0;

    // First run: cancel at the first boundary, right after the snapshot.
    auto cfg = small_cfg(intra);
    cfg.net.reactor_threads = threads;
    cfg.checkpoint.path = path;
    cfg.checkpoint.audit = true;
    cfg.checkpoint.cancel = [] { return true; };
    const auto partial = core::run_fct_experiment(g, tm, cfg);
    EXPECT_FALSE(partial.finished);
    ASSERT_TRUE(util::file_exists(path));

    // Second run: restore and continue to the deadline.
    auto cfg2 = small_cfg(intra);
    cfg2.net.reactor_threads = threads;
    cfg2.checkpoint.path = path;
    cfg2.checkpoint.resume = true;
    cfg2.checkpoint.audit = true;
    const auto resumed = core::run_fct_experiment(g, tm, cfg2);
    EXPECT_TRUE(resumed.finished);
    EXPECT_EQ(base, print(resumed));
    util::remove_file(path);
  }
}

TEST(Checkpoint, ResumeWithoutSnapshotStartsFromScratch) {
  const topo::Graph g = topo::make_leaf_spine(6, 2);
  const auto tm = workload::RackTm::uniform(g);
  const FctPrint base = print(core::run_fct_experiment(g, tm, small_cfg(1)));
  auto cfg = small_cfg(1);
  cfg.checkpoint.path = tmp_path("missing");
  util::remove_file(cfg.checkpoint.path);
  cfg.checkpoint.resume = true;
  cfg.checkpoint.cancel = [] { return false; };  // run to completion
  const auto r = core::run_fct_experiment(g, tm, cfg);
  EXPECT_TRUE(r.finished);
  EXPECT_EQ(base, print(r));
  util::remove_file(cfg.checkpoint.path);
}

TEST(Checkpoint, ConfigHashMismatchIsRefused) {
  const topo::Graph g = topo::make_leaf_spine(6, 2);
  const auto tm = workload::RackTm::uniform(g);
  const std::string path = tmp_path("hash");
  util::remove_file(path);
  auto cfg = small_cfg(1);
  cfg.checkpoint.path = path;
  cfg.checkpoint.cancel = [] { return true; };
  ASSERT_FALSE(core::run_fct_experiment(g, tm, cfg).finished);

  auto other = small_cfg(1);
  other.seed = 8;  // different experiment -> different config hash
  other.checkpoint.path = path;
  other.checkpoint.resume = true;
  try {
    core::run_fct_experiment(g, tm, other);
    FAIL() << "restore accepted a snapshot from a different configuration";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("configuration hash"),
              std::string::npos)
        << e.what();
  }
  util::remove_file(path);
}

// --- Auditor negative tests -------------------------------------------------
// Corrupt one summary field of a real snapshot (checksum re-sealed, so only
// the cross-check can catch it) and assert the restore throws the *named*
// invariant.

class CheckpointAuditNegative : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs each TEST_F as its own process, possibly
    // concurrently — a shared snapshot path is a cross-process race.
    path_ = tmp_path(std::string("audit_") +
                     ::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name());
    util::remove_file(path_);
    auto cfg = small_cfg(1);
    cfg.checkpoint.path = path_;
    cfg.checkpoint.cancel = [] { return true; };
    ASSERT_FALSE(core::run_fct_experiment(g_, tm_, cfg).finished);
    ASSERT_TRUE(util::read_file(path_, &pristine_));
  }
  void TearDown() override { util::remove_file(path_); }

  void expect_violation(SummaryField field, std::uint64_t value,
                        const std::string& invariant) {
    ASSERT_TRUE(util::atomic_write_file(path_, pristine_));
    snapshot_patch_u64(path_, kSectionSummary, field, value);
    auto cfg = small_cfg(1);
    cfg.checkpoint.path = path_;
    cfg.checkpoint.resume = true;
    try {
      core::run_fct_experiment(g_, tm_, cfg);
      FAIL() << "restore accepted a snapshot with corrupted " << invariant;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("[" + invariant + "]"),
                std::string::npos)
          << e.what();
    }
  }

  topo::Graph g_ = topo::make_leaf_spine(6, 2);
  workload::RackTm tm_ = workload::RackTm::uniform(g_);
  std::string path_;
  std::string pristine_;
};

TEST_F(CheckpointAuditNegative, CorruptedClockNamesMonotonicEventTime) {
  expect_violation(kSummaryNow, 1, "monotonic_event_time");
}

TEST_F(CheckpointAuditNegative, CorruptedEventCountNamesMonotonicEventTime) {
  expect_violation(kSummaryProcessed, 1, "monotonic_event_time");
}

TEST_F(CheckpointAuditNegative, CorruptedInFlightNamesPacketConservation) {
  expect_violation(kSummaryPacketEvents, 1 << 20, "packet_conservation");
}

TEST_F(CheckpointAuditNegative, CorruptedQueueCountNamesPacketConservation) {
  expect_violation(kSummaryQueuedNodes, 1 << 20, "packet_conservation");
}

TEST_F(CheckpointAuditNegative, CorruptedQueueBytesNamesQueueOccupancy) {
  expect_violation(kSummaryQueuedBytes, 1 << 30, "queue_occupancy");
}

TEST_F(CheckpointAuditNegative, CorruptedHopCountNamesTtl) {
  expect_violation(kSummaryMaxHops, 1000, "ttl");
}

TEST_F(CheckpointAuditNegative, BitFlipFailsTheChecksum) {
  std::string bytes = pristine_;
  bytes[bytes.size() / 2] ^= 0x40;
  ASSERT_TRUE(util::atomic_write_file(path_, bytes));
  auto cfg = small_cfg(1);
  cfg.checkpoint.path = path_;
  cfg.checkpoint.resume = true;
  EXPECT_THROW(core::run_fct_experiment(g_, tm_, cfg), Error);
}

// --- Fault-injection round trip ---------------------------------------------
// The bench_failures part-3 shape: Network + FlowDriver + FaultInjector +
// DegradationMonitor driven through a CheckpointSession. A run saved and
// restored mid-flap must replay identically to an uninterrupted one.

constexpr Time kFaultDeadline = 12 * units::kMillisecond;

struct FaultPrint {
  std::uint64_t events = 0;
  std::int64_t queue_drops = 0, gray_drops = 0, corrupt_drops = 0;
  std::int64_t delivered_bytes = 0;
  std::string injector_json;
  std::string monitor_json;
  std::vector<std::int64_t> flow_finish;
  bool operator==(const FaultPrint&) const = default;
};

// interrupt_at: boundary index after which to save + stop (-1 = never).
FaultPrint run_fault_cell(int intra, int interrupt_at,
                          const std::string& path, bool resume) {
  const auto d = topo::make_dring(6, 2, 2);
  NetworkConfig cfg;
  cfg.mode = RoutingMode::kShortestUnion;
  cfg.intra_jobs = intra;
  Network net(d.graph, cfg);
  FlowDriver driver(net, TcpConfig{});
  const auto plan = fault::FaultPlan::parse(
      "flap link=0 down=2ms up=6ms;"
      " gray link=5 drop=0.05 corrupt=0.01 from=1ms until=9ms",
      d.graph, 42);
  fault::FaultInjector inj(net, plan, fault::FaultInjectorConfig{});
  fault::DegradationMonitor mon(net, 250 * units::kMicrosecond);

  HashChain h;
  h.mix(42).mix(static_cast<std::uint64_t>(intra));
  CheckpointSession session(net, h.value());
  session.add(&driver);
  session.add(&inj);
  session.add(&mon);

  const auto setup = [&](Simulator& sim) {
    const int hosts = d.graph.total_servers();
    for (int i = 0; i < 12; ++i)
      driver.add_flow(sim, i % hosts, (i * 5 + 3) % hosts, 4'000'000,
                      i * units::kMicrosecond);
    inj.arm(sim, kFaultDeadline);
    mon.start(sim, 0, kFaultDeadline);
  };
  const auto drive = [&](auto& eng) {
    if (resume) session.restore(path, eng);
    const Time step = kFaultDeadline / 6;
    Time t = eng.now();
    int boundary = 0;
    while (t < kFaultDeadline) {
      t = std::min<Time>(kFaultDeadline, t + step);
      eng.run_until(t);
      const AuditReport report = session.audit(eng);
      if (!report.ok()) throw Error(report.to_string());
      if (t >= kFaultDeadline) break;
      if (++boundary == interrupt_at) {
        session.save(path, eng);
        return false;
      }
    }
    return true;
  };

  FaultPrint out;
  bool finished = false;
  if (intra == 1) {
    Simulator sim;
    setup(sim);
    finished = drive(sim);
    out.events = sim.events_processed();
  } else {
    ShardedEngine engine(net);
    setup(engine.control());
    finished = drive(engine);
    out.events = engine.events_processed();
  }
  if (!finished) return out;  // caller resumes; counters are partial

  const auto stats = net.stats();
  out.queue_drops = stats.queue_drops;
  out.gray_drops = stats.gray_drops;
  out.corrupt_drops = stats.corrupt_drops;
  out.delivered_bytes = stats.delivered_bytes;
  out.injector_json = inj.report_json(kFaultDeadline);
  out.monitor_json = mon.to_json();
  for (std::size_t i = 0; i < driver.num_flows(); ++i)
    out.flow_finish.push_back(
        driver.flow(static_cast<std::int32_t>(i)).record().finish);
  return out;
}

TEST(Checkpoint, FaultPlanKillAndResumeIsByteIdentical) {
  const FaultPrint base = run_fault_cell(1, -1, "", false);
  ASSERT_GT(base.gray_drops + base.corrupt_drops, 0);
  for (const int intra : {1, 2, 4, 7}) {
    SCOPED_TRACE("intra_jobs=" + std::to_string(intra));
    const std::string path = tmp_path("fault" + std::to_string(intra));
    util::remove_file(path);
    // Boundary 2 lands mid-flap (t=4ms of a 2-6ms outage): the snapshot
    // carries down links, armed BFD timers, and half-delivered flows.
    run_fault_cell(intra, 2, path, false);
    ASSERT_TRUE(util::file_exists(path));
    const FaultPrint resumed = run_fault_cell(intra, -1, path, true);
    EXPECT_EQ(base, resumed);
    util::remove_file(path);
  }
}

}  // namespace
}  // namespace spineless::sim
