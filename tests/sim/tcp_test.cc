#include "sim/tcp.h"

#include <gtest/gtest.h>

#include "topo/builders.h"

namespace spineless::sim {
namespace {

// Two hosts on directly linked ToRs — the minimal end-to-end network.
struct TwoHostFixture {
  TwoHostFixture(NetworkConfig net_cfg = {})
      : graph(make_graph()), net(graph, net_cfg), driver(net, TcpConfig{}) {}

  static topo::Graph make_graph() {
    topo::Graph g(2);
    g.add_link(0, 1);
    g.set_servers(0, 2);
    g.set_servers(1, 2);
    return g;
  }

  topo::Graph graph;
  Simulator sim;
  Network net;
  FlowDriver driver;
};

TEST(Tcp, SingleFlowCompletesAndDeliversAllBytes) {
  TwoHostFixture f;
  f.driver.add_flow(f.sim, /*src=*/0, /*dst=*/2, /*bytes=*/100'000,
                    /*start=*/0);
  f.sim.run_until(units::kSecond);
  ASSERT_EQ(f.driver.completed_flows(), 1u);
  const auto& rec = f.driver.flow(0).record();
  EXPECT_GT(rec.fct(), 0);
  EXPECT_EQ(f.net.stats().queue_drops, 0);
}

TEST(Tcp, FctScalesWithFlowSize) {
  TwoHostFixture f;
  f.driver.add_flow(f.sim, 0, 2, 10'000, 0);
  f.driver.add_flow(f.sim, 1, 3, 10'000'000, 0);
  f.sim.run_until(100 * units::kSecond);
  ASSERT_EQ(f.driver.completed_flows(), 2u);
  EXPECT_LT(f.driver.flow(0).record().fct(),
            f.driver.flow(1).record().fct());
}

TEST(Tcp, LongFlowApproachesLineRate) {
  TwoHostFixture f;
  const std::int64_t bytes = 20'000'000;  // 20 MB
  f.driver.add_flow(f.sim, 0, 2, bytes, 0);
  f.sim.run_until(60 * units::kSecond);
  ASSERT_EQ(f.driver.completed_flows(), 1u);
  const double fct_s = units::to_seconds(f.driver.flow(0).record().fct());
  const double goodput = static_cast<double>(bytes) * 8 / fct_s;
  // Within 25% of the 10G line rate (header overhead + slow start).
  EXPECT_GT(goodput, 7.5e9);
  EXPECT_LT(goodput, 10e9);
}

TEST(Tcp, TinyFlowCompletesInFewRtts) {
  TwoHostFixture f;
  f.driver.add_flow(f.sim, 0, 2, 1460, 0);  // single segment
  f.sim.run_until(units::kSecond);
  ASSERT_EQ(f.driver.completed_flows(), 1u);
  // Base RTT here is ~2 * (2 links * (1.2us + 1us)) ~ 9 us; one segment
  // should finish well under 100 us.
  EXPECT_LT(f.driver.flow(0).record().fct(), 100 * units::kMicrosecond);
}

TEST(Tcp, TwoCompetingFlowsShareFairly) {
  // Both flows cross the single inter-ToR link.
  TwoHostFixture f;
  const std::int64_t bytes = 5'000'000;
  f.driver.add_flow(f.sim, 0, 2, bytes, 0);
  f.driver.add_flow(f.sim, 1, 3, bytes, 0);
  f.sim.run_until(60 * units::kSecond);
  ASSERT_EQ(f.driver.completed_flows(), 2u);
  const double a = units::to_seconds(f.driver.flow(0).record().fct());
  const double b = units::to_seconds(f.driver.flow(1).record().fct());
  EXPECT_LT(std::max(a, b) / std::min(a, b), 1.6);  // rough fairness
  // Together they can't beat the shared 10G bottleneck.
  const double sum_goodput = static_cast<double>(bytes) * 8 *
                             (1 / a + 1 / b);
  EXPECT_LT(sum_goodput, 10.5e9);
}

TEST(Tcp, RecoversFromCongestionDrops) {
  // A tiny queue forces drops during slow start; TCP must still complete.
  NetworkConfig cfg;
  cfg.queue_bytes = 8 * kDataPacketBytes;
  TwoHostFixture f(cfg);
  f.driver.add_flow(f.sim, 0, 2, 2'000'000, 0);
  f.driver.add_flow(f.sim, 1, 3, 2'000'000, 0);
  f.sim.run_until(60 * units::kSecond);
  EXPECT_EQ(f.driver.completed_flows(), 2u);
  EXPECT_GT(f.net.stats().queue_drops, 0);
  EXPECT_GT(f.driver.total_retransmits(), 0);
}

TEST(Tcp, RtoTimerFollowsShrinkingDeadline) {
  // Regression: after a string of backed-off timeouts the pending RTO
  // event sits far in the future (now + rto << backoff). A new ACK resets
  // the backoff and pulls rto_deadline_ EARLIER; the timer must then fire
  // near the new deadline — if only the stale backed-off event remains,
  // the next loss is detected up to ~64x late.
  TwoHostFixture f;
  const auto id = f.driver.add_flow(f.sim, 0, 2, 2'000'000, 0);
  // Blackhole the inter-ToR link mid-transfer; timeouts back off until a
  // pending timer sits ~64ms out.
  f.sim.run_until(100 * units::kMicrosecond);
  f.net.take_link_down(0);
  f.sim.run_until(45 * units::kMillisecond);
  f.net.bring_link_up(0);
  // The ~63ms backed-off retransmit gets through; ACKs reset the backoff
  // and pull the deadline in to ~now + 1ms. Blackhole again mid-recovery.
  f.sim.run_until(64 * units::kMillisecond + 500 * units::kMicrosecond);
  f.net.take_link_down(0);
  f.sim.run_until(70 * units::kMillisecond);
  f.net.bring_link_up(0);
  f.sim.run_until(units::kSecond);
  const auto& rec = f.driver.flow(static_cast<std::size_t>(id)).record();
  ASSERT_TRUE(rec.completed());
  // The second loss must be detected ~1ms after it happens, so the flow
  // finishes well before the stale backed-off fire time (~127ms) a
  // single-event timer would have waited for.
  EXPECT_LT(rec.finish, 100 * units::kMillisecond);
}

TEST(Tcp, StartTimeHonored) {
  TwoHostFixture f;
  const Time start = 5 * units::kMillisecond;
  f.driver.add_flow(f.sim, 0, 2, 10'000, start);
  f.sim.run_until(units::kSecond);
  const auto& rec = f.driver.flow(0).record();
  EXPECT_EQ(rec.start, start);
  EXPECT_GT(rec.finish, start);
}

TEST(Tcp, RejectsInvalidFlows) {
  TwoHostFixture f;
  EXPECT_THROW(f.driver.add_flow(f.sim, 0, 0, 100, 0), Error);
  EXPECT_THROW(f.driver.add_flow(f.sim, 0, 2, 0, 0), Error);
}

TEST(Tcp, FctSummaryInMilliseconds) {
  TwoHostFixture f;
  f.driver.add_flow(f.sim, 0, 2, 100'000, 0);
  f.sim.run_until(units::kSecond);
  const auto s = f.driver.fct_ms();
  ASSERT_EQ(s.count(), 1u);
  EXPECT_NEAR(s.mean(), units::to_millis(f.driver.flow(0).record().fct()),
              1e-12);
}

TEST(Tcp, ManyParallelSmallFlowsAllComplete) {
  TwoHostFixture f;
  for (int i = 0; i < 40; ++i) {
    f.driver.add_flow(f.sim, i % 2, 2 + i % 2, 20'000,
                      i * 100 * units::kMicrosecond);
  }
  f.sim.run_until(10 * units::kSecond);
  EXPECT_EQ(f.driver.completed_flows(), 40u);
}

TEST(Tcp, DeterministicAcrossRuns) {
  auto run_once = [] {
    TwoHostFixture f;
    f.driver.add_flow(f.sim, 0, 2, 1'000'000, 0);
    f.driver.add_flow(f.sim, 1, 3, 500'000, 100 * units::kMicrosecond);
    f.sim.run_until(10 * units::kSecond);
    return std::pair(f.driver.flow(0).record().fct(),
                     f.driver.flow(1).record().fct());
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace spineless::sim
