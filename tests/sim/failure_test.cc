// Mid-simulation link failures: blackholing during the convergence window,
// recovery after reconvergence, and partition behavior.
#include <gtest/gtest.h>

#include "sim/tcp.h"
#include "topo/builders.h"

namespace spineless::sim {
namespace {

topo::Graph diamond() {
  // Two disjoint 2-hop paths between ToR 0 and ToR 3.
  topo::Graph g(4);
  g.add_link(0, 1);  // link 0
  g.add_link(0, 2);  // link 1
  g.add_link(1, 3);  // link 2
  g.add_link(2, 3);  // link 3
  g.set_servers(0, 2);
  g.set_servers(3, 2);
  return g;
}

TEST(MidSimFailure, FlowSurvivesWhenAlternatePathExists) {
  const topo::Graph g = diamond();
  NetworkConfig cfg;
  Simulator sim;
  Network net(g, cfg);
  FlowDriver driver(net, TcpConfig{});
  driver.add_flow(sim, 0, 2, 20'000'000, 0);  // ~16 ms at line rate
  // Fail one branch 2 ms in; reconverge after 1 ms of blackholing.
  net.schedule_link_failure(sim, /*link=*/0, 2 * units::kMillisecond,
                            1 * units::kMillisecond);
  sim.run_until(120 * units::kSecond);
  EXPECT_EQ(driver.completed_flows(), 1u);
}

TEST(MidSimFailure, ReconvergenceDelayCostsTime) {
  // The same failure with a longer convergence window must hurt: the flow
  // either blackholes into RTOs (if hashed onto the dead path) or is
  // unaffected — so compare against instant reconvergence for the flow
  // that IS on the failed branch.
  auto fct_with_delay = [](Time delay) {
    const topo::Graph g = diamond();
    NetworkConfig cfg;
    cfg.trace_paths = true;
    Simulator sim;
    Network net(g, cfg);
    FlowDriver driver(net, TcpConfig{});
    driver.add_flow(sim, 0, 2, 20'000'000, 0);
    // Find which branch the flow hashed to by probing after a moment;
    // fail whichever link its path uses.
    sim.run_until(100 * units::kMicrosecond);
    const auto path = net.traced_path(0);
    const topo::LinkId victim = path[1] == 1 ? 0 : 1;
    net.schedule_link_failure(sim, victim, sim.now(), delay);
    sim.run_until(120 * units::kSecond);
    EXPECT_EQ(driver.completed_flows(), 1u);
    return driver.flow(0).record().fct();
  };
  const Time fast = fct_with_delay(100 * units::kMicrosecond);
  const Time slow = fct_with_delay(20 * units::kMillisecond);
  EXPECT_GT(slow, fast + 10 * units::kMillisecond);
}

TEST(MidSimFailure, NoRouteDropsWhenPartitioned) {
  topo::Graph g(2);
  g.add_link(0, 1);
  g.set_servers(0, 1);
  g.set_servers(1, 1);
  NetworkConfig cfg;
  Simulator sim;
  Network net(g, cfg);
  FlowDriver driver(net, TcpConfig{});
  driver.add_flow(sim, 0, 1, 5'000'000, 0);
  net.schedule_link_failure(sim, 0, units::kMillisecond,
                            units::kMillisecond);
  sim.run_until(200 * units::kMillisecond);
  EXPECT_EQ(driver.completed_flows(), 0u);
  EXPECT_GT(net.stats().queue_drops, 0);     // blackhole phase
  EXPECT_GT(net.stats().no_route_drops, 0);  // post-reconvergence phase
}

TEST(MidSimFailure, BringLinkUpRestores) {
  const topo::Graph g = diamond();
  NetworkConfig cfg;
  Simulator sim;
  Network net(g, cfg);
  FlowDriver driver(net, TcpConfig{});
  net.take_link_down(0);
  net.take_link_down(1);  // ToR 0 fully cut off
  net.reconverge_tables();
  driver.add_flow(sim, 0, 2, 50'000, 0);
  sim.run_until(50 * units::kMillisecond);
  EXPECT_EQ(driver.completed_flows(), 0u);
  net.bring_link_up(0);
  net.bring_link_up(1);
  net.reconverge_tables();
  sim.run_until(10 * units::kSecond);  // RTO retries find the route again
  EXPECT_EQ(driver.completed_flows(), 1u);
}

TEST(MidSimFailure, SurvivingPathsStillShortestUnion) {
  // After reconvergence on a DRing with one failed link, SU(2) traffic must
  // stick to the surviving links (no packets offered to the dead one).
  const auto d = topo::make_dring(6, 2, 2);
  NetworkConfig cfg;
  cfg.mode = RoutingMode::kShortestUnion;
  Simulator sim;
  Network net(d.graph, cfg);
  FlowDriver driver(net, TcpConfig{});
  net.take_link_down(0);
  net.reconverge_tables();
  for (int i = 0; i < 12; ++i)
    driver.add_flow(sim, i % d.graph.total_servers(),
                    (i * 5 + 3) % d.graph.total_servers(), 50'000,
                    i * units::kMicrosecond);
  sim.run_until(10 * units::kSecond);
  EXPECT_EQ(driver.completed_flows(), 12u);
  // The dead link transmitted nothing and dropped nothing (nobody even
  // tried it after reconvergence happened before any traffic).
  EXPECT_EQ(net.stats().queue_drops, 0);
}

}  // namespace
}  // namespace spineless::sim
