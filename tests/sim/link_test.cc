#include "sim/link.h"

#include <gtest/gtest.h>

#include <vector>

namespace spineless::sim {
namespace {

class CollectingDevice : public Device {
 public:
  explicit CollectingDevice(PacketPool* pool) : pool_(pool) {}
  void receive(Simulator& sim, PacketNode* node) override {
    arrivals.emplace_back(sim.now(), node->pkt);
    pool_->release(node);
  }
  std::vector<std::pair<Time, Packet>> arrivals;

 private:
  PacketPool* pool_;
};

Packet data_packet(std::int64_t seq, std::int32_t size = kDataPacketBytes) {
  Packet p;
  p.seq = seq;
  p.size_bytes = size;
  return p;
}

TEST(Link, SinglePacketLatencyIsSerializationPlusPropagation) {
  Simulator sim;
  PacketPool pool;
  CollectingDevice dev(&pool);
  // 10 Gbps, 1 us propagation: 1500 B serializes in 1.2 us.
  Link link(units::gbps(10), units::kMicrosecond, 15000, &dev, &pool);
  link.enqueue(sim, data_packet(0));
  sim.run();
  ASSERT_EQ(dev.arrivals.size(), 1u);
  EXPECT_EQ(dev.arrivals[0].first,
            units::serialization_time(kDataPacketBytes, units::gbps(10)) +
                units::kMicrosecond);
}

TEST(Link, BackToBackPacketsSpacedBySerialization) {
  Simulator sim;
  PacketPool pool;
  CollectingDevice dev(&pool);
  Link link(units::gbps(10), units::kMicrosecond, 150000, &dev, &pool);
  for (int i = 0; i < 5; ++i) link.enqueue(sim, data_packet(i));
  sim.run();
  ASSERT_EQ(dev.arrivals.size(), 5u);
  const Time ser =
      units::serialization_time(kDataPacketBytes, units::gbps(10));
  for (int i = 1; i < 5; ++i) {
    EXPECT_EQ(dev.arrivals[static_cast<std::size_t>(i)].first -
                  dev.arrivals[static_cast<std::size_t>(i - 1)].first,
              ser);
  }
}

TEST(Link, FifoOrderPreserved) {
  Simulator sim;
  PacketPool pool;
  CollectingDevice dev(&pool);
  Link link(units::gbps(10), units::kMicrosecond, 150000, &dev, &pool);
  for (int i = 0; i < 20; ++i) link.enqueue(sim, data_packet(i));
  sim.run();
  ASSERT_EQ(dev.arrivals.size(), 20u);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(dev.arrivals[static_cast<std::size_t>(i)].second.seq, i);
}

TEST(Link, DropTailWhenQueueFull) {
  Simulator sim;
  PacketPool pool;
  CollectingDevice dev(&pool);
  // Queue capacity: 3 full packets.
  Link link(units::gbps(10), units::kMicrosecond, 3 * kDataPacketBytes, &dev, &pool);
  for (int i = 0; i < 5; ++i) link.enqueue(sim, data_packet(i));
  sim.run();
  EXPECT_EQ(dev.arrivals.size(), 3u);
  EXPECT_EQ(link.stats().drops, 2);
  EXPECT_EQ(link.stats().packets_tx, 3);
}

TEST(Link, QueueDrainsAndAcceptsAgain) {
  Simulator sim;
  PacketPool pool;
  CollectingDevice dev(&pool);
  Link link(units::gbps(10), units::kMicrosecond, 2 * kDataPacketBytes, &dev, &pool);
  link.enqueue(sim, data_packet(0));
  link.enqueue(sim, data_packet(1));
  link.enqueue(sim, data_packet(2));  // dropped
  sim.run();
  EXPECT_EQ(link.stats().drops, 1);
  link.enqueue(sim, data_packet(3));  // space again
  sim.run();
  EXPECT_EQ(dev.arrivals.size(), 3u);
  EXPECT_EQ(dev.arrivals.back().second.seq, 3);
}

TEST(Link, SmallPacketsSerializeFaster) {
  Simulator sim;
  PacketPool pool;
  CollectingDevice dev(&pool);
  Link link(units::gbps(10), 0, 150000, &dev, &pool);
  link.enqueue(sim, data_packet(0, kAckPacketBytes));
  sim.run();
  EXPECT_EQ(dev.arrivals[0].first,
            units::serialization_time(kAckPacketBytes, units::gbps(10)));
}

TEST(Link, StatsCountBytes) {
  Simulator sim;
  PacketPool pool;
  CollectingDevice dev(&pool);
  Link link(units::gbps(10), 0, 150000, &dev, &pool);
  link.enqueue(sim, data_packet(0));
  link.enqueue(sim, data_packet(1, kAckPacketBytes));
  sim.run();
  EXPECT_EQ(link.stats().bytes_tx, kDataPacketBytes + kAckPacketBytes);
  EXPECT_EQ(link.stats().max_queue_bytes,
            kDataPacketBytes + kAckPacketBytes);
}

TEST(Link, InvalidConstruction) {
  PacketPool pool;
  CollectingDevice dev(&pool);
  EXPECT_THROW(Link(0, 0, 100, &dev, &pool), Error);
  EXPECT_THROW(Link(1, 0, 0, &dev, &pool), Error);
  EXPECT_THROW(Link(1, 0, 100, nullptr, &pool), Error);
  EXPECT_THROW(Link(1, 0, 100, &dev, nullptr), Error);
}

TEST(SerializationTime, ExactFor10G) {
  // 1500 B at 10 Gbps = 1200 ns exactly.
  EXPECT_EQ(units::serialization_time(1500, units::gbps(10)),
            1200 * units::kNanosecond);
  // 40 B ack = 32 ns.
  EXPECT_EQ(units::serialization_time(40, units::gbps(10)),
            32 * units::kNanosecond);
}

}  // namespace
}  // namespace spineless::sim
