#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace spineless::sim {
namespace {

// Records (time, ctx) of every delivery.
class Recorder : public EventSink {
 public:
  void on_event(Simulator& sim, std::uint64_t ctx) override {
    log.emplace_back(sim.now(), ctx);
  }
  std::vector<std::pair<Time, std::uint64_t>> log;
};

TEST(Simulator, DeliversInTimeOrder) {
  Simulator sim;
  Recorder r;
  sim.schedule_at(30, &r, 3);
  sim.schedule_at(10, &r, 1);
  sim.schedule_at(20, &r, 2);
  sim.run();
  ASSERT_EQ(r.log.size(), 3u);
  EXPECT_EQ(r.log[0], (std::pair<Time, std::uint64_t>{10, 1}));
  EXPECT_EQ(r.log[1], (std::pair<Time, std::uint64_t>{20, 2}));
  EXPECT_EQ(r.log[2], (std::pair<Time, std::uint64_t>{30, 3}));
}

TEST(Simulator, TiesBreakByScheduleOrder) {
  Simulator sim;
  Recorder r;
  for (std::uint64_t i = 0; i < 10; ++i) sim.schedule_at(5, &r, i);
  sim.run();
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(r.log[i].second, i);
}

TEST(Simulator, ClockAdvancesMonotonically) {
  Simulator sim;
  Recorder r;
  sim.schedule_at(100, &r, 0);
  EXPECT_EQ(sim.now(), 0);
  sim.run();
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  // An event that schedules a follow-up relative to its own firing time.
  class Chained : public EventSink {
   public:
    void on_event(Simulator& sim, std::uint64_t ctx) override {
      fired.push_back(sim.now());
      if (ctx > 0) sim.schedule_after(50, this, ctx - 1);
    }
    std::vector<Time> fired;
  } chain;
  sim.schedule_at(10, &chain, 2);
  sim.run();
  ASSERT_EQ(chain.fired.size(), 3u);
  EXPECT_EQ(chain.fired[1], 60);
  EXPECT_EQ(chain.fired[2], 110);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  Recorder r;
  sim.schedule_at(10, &r, 0);
  sim.schedule_at(100, &r, 1);
  EXPECT_TRUE(sim.run_until(50));
  EXPECT_EQ(r.log.size(), 1u);
  EXPECT_EQ(sim.now(), 50);
  EXPECT_FALSE(sim.run_until(200));
  EXPECT_EQ(r.log.size(), 2u);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, EventsProcessedCounter) {
  Simulator sim;
  Recorder r;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, &r, 0);
  sim.run();
  EXPECT_EQ(sim.events_processed(), 7u);
}

TEST(Simulator, EventAtDeadlineIsDelivered) {
  Simulator sim;
  Recorder r;
  sim.schedule_at(50, &r, 0);
  sim.run_until(50);
  EXPECT_EQ(r.log.size(), 1u);
}

}  // namespace
}  // namespace spineless::sim
