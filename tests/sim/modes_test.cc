// Tests for the extended forwarding modes: source routing, MPTCP-style
// striping, flowlet switching, and heterogeneous host NIC rates.
#include <gtest/gtest.h>

#include "routing/ksp.h"
#include "sim/striping.h"
#include "topo/builders.h"

namespace spineless::sim {
namespace {

topo::Graph two_path_graph() {
  // 0 -- 1 -- 3 and 0 -- 2 -- 3: two disjoint 2-hop paths.
  topo::Graph g(4);
  g.add_link(0, 1);
  g.add_link(0, 2);
  g.add_link(1, 3);
  g.add_link(2, 3);
  g.set_servers(0, 2);
  g.set_servers(3, 2);
  return g;
}

TEST(SourceRouting, FlowFollowsPinnedPath) {
  const topo::Graph g = two_path_graph();
  NetworkConfig cfg;
  cfg.mode = RoutingMode::kSourceRouted;
  Simulator sim;
  Network net(g, cfg);
  FlowDriver driver(net, TcpConfig{});
  const auto id = driver.add_flow(sim, 0, 2, 500'000, 0);
  net.set_flow_routes(id, {0, 1, 3});
  sim.run_until(units::kSecond);
  EXPECT_EQ(driver.completed_flows(), 1u);
  EXPECT_EQ(net.stats().ttl_drops, 0);
}

TEST(SourceRouting, MissingRouteIsRejected) {
  const topo::Graph g = two_path_graph();
  NetworkConfig cfg;
  cfg.mode = RoutingMode::kSourceRouted;
  Simulator sim;
  Network net(g, cfg);
  FlowDriver driver(net, TcpConfig{});
  driver.add_flow(sim, 0, 2, 10'000, 0);
  EXPECT_THROW(sim.run_until(units::kSecond), Error);
}

TEST(SourceRouting, TwoPathsCarryTwiceTheBandwidth) {
  // Two flows pinned to disjoint paths finish in about the time one flow
  // needs for the same bytes on one path.
  const topo::Graph g = two_path_graph();
  NetworkConfig cfg;
  cfg.mode = RoutingMode::kSourceRouted;
  Simulator sim;
  Network net(g, cfg);
  FlowDriver driver(net, TcpConfig{});
  const std::int64_t bytes = 4'000'000;
  const auto a = driver.add_flow(sim, 0, 2, bytes, 0);
  const auto b = driver.add_flow(sim, 1, 3, bytes, 0);
  net.set_flow_routes(a, {0, 1, 3});
  net.set_flow_routes(b, {0, 2, 3});
  sim.run_until(60 * units::kSecond);
  ASSERT_EQ(driver.completed_flows(), 2u);
  const Time fct_a = driver.flow(0).record().fct();
  const Time fct_b = driver.flow(1).record().fct();
  // No shared bottleneck: both within 25% of solo line-rate time.
  const double solo_s = static_cast<double>(bytes) * 8 / 10e9;
  EXPECT_LT(units::to_seconds(std::max(fct_a, fct_b)), solo_s * 1.25);
}

TEST(Striping, SplitsBytesAndCompletesFaster) {
  // One 8 MB flow: striped across both disjoint paths it should finish in
  // roughly half the single-path time. The host NIC must outrun the fabric
  // for multipath to matter (MPTCP's whole premise).
  const topo::Graph g = two_path_graph();
  const routing::PathSet paths{{0, 1, 3}, {0, 2, 3}};

  auto run = [&](int subflows) {
    NetworkConfig cfg;
    cfg.host_rate_bps = units::gbps(40);
    cfg.mode = RoutingMode::kSourceRouted;
    Simulator sim;
    Network net(g, cfg);
    StripedFlowDriver striped(net, TcpConfig{});
    striped.add_flow(sim, 0, 2, 8'000'000, 0, paths, subflows);
    sim.run_until(60 * units::kSecond);
    EXPECT_EQ(striped.completed_flows(), 1u);
    return striped.fct_ms().mean();
  };
  const double one = run(1);
  const double two = run(2);
  EXPECT_LT(two, 0.65 * one);
}

TEST(Striping, SubflowCountCappedByPathCount) {
  const topo::Graph g = two_path_graph();
  NetworkConfig cfg;
  cfg.mode = RoutingMode::kSourceRouted;
  Simulator sim;
  Network net(g, cfg);
  StripedFlowDriver striped(net, TcpConfig{});
  striped.add_flow(sim, 0, 2, 100'000, 0, {{0, 1, 3}}, 8);
  sim.run_until(units::kSecond);
  EXPECT_EQ(striped.completed_flows(), 1u);
}

TEST(Striping, IncompleteGroupNotCountedInFct) {
  // One subflow pinned through a link that goes down mid-run: the striped
  // flow must not appear in the FCT summary until every subflow finishes.
  const topo::Graph g = two_path_graph();
  NetworkConfig cfg;
  cfg.mode = RoutingMode::kSourceRouted;
  Simulator sim;
  Network net(g, cfg);
  StripedFlowDriver striped(net, TcpConfig{});
  striped.add_flow(sim, 0, 2, 2'000'000, 0, {{0, 1, 3}, {0, 2, 3}}, 2);
  // Kill the 0-1 branch immediately and never reconverge: the subflow on
  // it can never finish.
  net.take_link_down(0);
  sim.run_until(5 * units::kSecond);
  EXPECT_EQ(striped.completed_flows(), 0u);
  EXPECT_EQ(striped.fct_ms().count(), 0u);
  EXPECT_EQ(striped.num_flows(), 1u);
}

TEST(Striping, TinyFlowsStillSplitToAtLeastOneByte) {
  const topo::Graph g = two_path_graph();
  NetworkConfig cfg;
  cfg.mode = RoutingMode::kSourceRouted;
  Simulator sim;
  Network net(g, cfg);
  StripedFlowDriver striped(net, TcpConfig{});
  // 3 bytes over 2 subflows: split 1 + 2, both valid TCP flows.
  striped.add_flow(sim, 0, 2, 3, 0, {{0, 1, 3}, {0, 2, 3}}, 2);
  sim.run_until(units::kSecond);
  EXPECT_EQ(striped.completed_flows(), 1u);
}

TEST(Striping, RequiresSourceRoutedMode) {
  const topo::Graph g = two_path_graph();
  NetworkConfig cfg;  // default kEcmp
  Simulator sim;
  Network net(g, cfg);
  EXPECT_THROW(StripedFlowDriver(net, TcpConfig{}), Error);
}

TEST(Flowlets, IdleGapRebalancesAndStillDelivers) {
  // With flowlet switching on, everything must still arrive (reordering
  // within TCP is handled by the sink) and loops must not appear.
  const topo::Graph g = topo::make_leaf_spine(4, 4);
  NetworkConfig cfg;
  cfg.flowlet_gap = 50 * units::kMicrosecond;
  Simulator sim;
  Network net(g, cfg);
  FlowDriver driver(net, TcpConfig{});
  for (int i = 0; i < 8; ++i)
    driver.add_flow(sim, i % 4, g.first_host_of(1) + i % 4, 1'000'000,
                    i * 200 * units::kMicrosecond);
  sim.run_until(60 * units::kSecond);
  EXPECT_EQ(driver.completed_flows(), 8u);
  EXPECT_EQ(net.stats().ttl_drops, 0);
}

TEST(Flowlets, DeterministicForSameConfig) {
  auto run_once = [] {
    const topo::Graph g = topo::make_dring(5, 2, 2).graph;
    NetworkConfig cfg;
    cfg.mode = RoutingMode::kShortestUnion;
    cfg.flowlet_gap = 100 * units::kMicrosecond;
    Simulator sim;
    Network net(g, cfg);
    FlowDriver driver(net, TcpConfig{});
    for (int i = 0; i < 6; ++i)
      driver.add_flow(sim, i, (i + 9) % g.total_servers(), 400'000, 0);
    sim.run_until(10 * units::kSecond);
    std::vector<Time> fcts;
    for (std::size_t i = 0; i < driver.num_flows(); ++i)
      fcts.push_back(driver.flow(i).record().fct());
    return fcts;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(HostRate, SlowerNicCapsSingleFlowThroughput) {
  topo::Graph g(2);
  g.add_link(0, 1);
  g.set_servers(0, 1);
  g.set_servers(1, 1);
  NetworkConfig cfg;
  cfg.link_rate_bps = units::gbps(40);  // fast fabric
  cfg.host_rate_bps = units::gbps(10);  // 10G NICs
  Simulator sim;
  Network net(g, cfg);
  FlowDriver driver(net, TcpConfig{});
  const std::int64_t bytes = 10'000'000;
  driver.add_flow(sim, 0, 1, bytes, 0);
  sim.run_until(60 * units::kSecond);
  ASSERT_EQ(driver.completed_flows(), 1u);
  const double goodput =
      static_cast<double>(bytes) * 8 /
      units::to_seconds(driver.flow(0).record().fct());
  EXPECT_LT(goodput, 10e9);
  EXPECT_GT(goodput, 7e9);
}

TEST(HostRate, FastFabricRemovesTransitBottleneck) {
  // 4 hosts on ToR 0 send through one inter-ToR cable. At 10G fabric the
  // cable is a 4x bottleneck; at 40G it is not.
  auto run = [](std::int64_t fabric_bps) {
    topo::Graph g(2);
    g.add_link(0, 1);
    g.set_servers(0, 4);
    g.set_servers(1, 4);
    NetworkConfig cfg;
    cfg.link_rate_bps = fabric_bps;
    cfg.host_rate_bps = units::gbps(10);
    Simulator sim;
    Network net(g, cfg);
    FlowDriver driver(net, TcpConfig{});
    for (int i = 0; i < 4; ++i)
      driver.add_flow(sim, i, 4 + i, 2'000'000, 0);
    sim.run_until(60 * units::kSecond);
    EXPECT_EQ(driver.completed_flows(), 4u);
    Time last = 0;
    for (std::size_t i = 0; i < 4; ++i)
      last = std::max(last, driver.flow(i).record().finish);
    return last;
  };
  EXPECT_LT(run(units::gbps(40)), run(units::gbps(10)) / 2);
}

}  // namespace
}  // namespace spineless::sim
