// The sharded conservative engine's core guarantee: for any intra_jobs,
// a sharded run executes the identical event sequence as the serial
// engine — same per-flow finish times and retransmits, same drop and
// delivery counters, same total event count, same monitor samples.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "core/fct_experiment.h"
#include "sim/monitor.h"
#include "sim/sharded_engine.h"
#include "sim/tcp.h"
#include "topo/builders.h"
#include "workload/tm.h"

namespace spineless::sim {
namespace {

constexpr int kIntraSweep[] = {2, 4, 7};

// --- Full-experiment equality across topology families and modes ---------

core::FctResult run_cell(const topo::Graph& g, RoutingMode mode, int intra,
                         int reactor_threads = 0) {
  core::FctConfig cfg;
  cfg.net.mode = mode;
  cfg.net.intra_jobs = intra;
  cfg.net.reactor_threads = reactor_threads;
  cfg.flowgen.offered_load_bps =
      0.6e9 * static_cast<double>(g.total_servers());
  cfg.flowgen.window = units::kMillisecond;
  cfg.seed = 11;
  return core::run_fct_experiment(g, workload::RackTm::uniform(g), cfg);
}

void expect_identical(const core::FctResult& serial,
                      const core::FctResult& sharded, int intra) {
  SCOPED_TRACE("intra_jobs=" + std::to_string(intra));
  EXPECT_EQ(serial.flows, sharded.flows);
  EXPECT_EQ(serial.completed, sharded.completed);
  EXPECT_EQ(serial.events, sharded.events);
  EXPECT_EQ(serial.queue_drops, sharded.queue_drops);
  EXPECT_EQ(serial.retransmits, sharded.retransmits);
  EXPECT_EQ(serial.max_queue_bytes, sharded.max_queue_bytes);
  EXPECT_DOUBLE_EQ(serial.median_ms(), sharded.median_ms());
  EXPECT_DOUBLE_EQ(serial.p99_ms(), sharded.p99_ms());
}

TEST(ShardedDeterminism, MatchesSerialOnDRing) {
  const auto g = topo::make_dring(5, 2, 4).graph;
  for (const auto mode : {RoutingMode::kEcmp, RoutingMode::kShortestUnion}) {
    const auto serial = run_cell(g, mode, 1);
    EXPECT_EQ(serial.intra_jobs, 1);
    for (const int intra : kIntraSweep)
      expect_identical(serial, run_cell(g, mode, intra), intra);
  }
}

TEST(ShardedDeterminism, MatchesSerialOnRrg) {
  const auto g = topo::make_rrg(10, 4, 4, /*seed=*/3);
  for (const auto mode : {RoutingMode::kEcmp, RoutingMode::kShortestUnion}) {
    const auto serial = run_cell(g, mode, 1);
    for (const int intra : kIntraSweep)
      expect_identical(serial, run_cell(g, mode, intra), intra);
  }
}

TEST(ShardedDeterminism, MatchesSerialOnLeafSpine) {
  const auto g = topo::make_leaf_spine(6, 2);
  const auto serial = run_cell(g, RoutingMode::kEcmp, 1);
  for (const int intra : kIntraSweep)
    expect_identical(serial, run_cell(g, RoutingMode::kEcmp, intra), intra);
}

// On a single-core host the auto resolve backs every shard with the
// caller thread (cooperative reactors); forcing one real reactor thread
// per shard must not change a byte. This is the cell the TSAN preset
// actually interleaves — without the override, a 1-CPU CI box would
// never exercise the cross-thread ring handoff.
TEST(ShardedDeterminism, ForcedReactorThreadsMatchSerial) {
  const auto g = topo::make_dring(5, 2, 4).graph;
  const auto serial = run_cell(g, RoutingMode::kEcmp, 1);
  for (const int intra : kIntraSweep) {
    expect_identical(
        serial, run_cell(g, RoutingMode::kEcmp, intra, /*reactor_threads=*/intra),
        intra);
  }
}

// --- Exact per-flow and per-sample equality under global events ----------

struct FlowPrint {
  Time start = 0;
  Time finish = 0;
  std::int64_t retransmits = 0;
  std::int64_t timeouts = 0;
  bool operator==(const FlowPrint&) const = default;
};

struct RunPrint {
  std::vector<FlowPrint> flows;
  std::int64_t queue_drops = 0;
  std::int64_t ttl_drops = 0;
  std::int64_t no_route_drops = 0;
  std::int64_t delivered = 0;
  std::uint64_t events = 0;
  std::vector<QueueMonitor::Sample> samples;
};

// A mid-run link failure (blackhole + reconvergence) plus a periodic
// whole-network monitor: both are kShardGlobal sinks, so this exercises
// the engine's exact global interleaving (run_until_key), not just the
// steady-state window protocol.
RunPrint run_failure_scenario(int intra, int reactor_threads = 0) {
  const auto d = topo::make_dring(6, 2, 2);
  NetworkConfig cfg;
  cfg.mode = RoutingMode::kShortestUnion;
  cfg.intra_jobs = intra;
  cfg.reactor_threads = reactor_threads;
  Network net(d.graph, cfg);
  FlowDriver driver(net, TcpConfig{});
  QueueMonitor mon(net, 50 * units::kMicrosecond);

  const auto setup = [&](Simulator& sim) {
    const auto hosts = d.graph.total_servers();
    for (int i = 0; i < 16; ++i) {
      driver.add_flow(sim, i % hosts, (i * 5 + 3) % hosts, 200'000,
                      i * units::kMicrosecond);
    }
    net.schedule_link_failure(sim, /*link=*/0, 300 * units::kMicrosecond,
                              200 * units::kMicrosecond);
    mon.start(sim, 0, 2 * units::kMillisecond);
  };
  const Time deadline = 5 * units::kSecond;

  RunPrint out;
  if (intra == 1) {
    Simulator sim;
    setup(sim);
    sim.run_until(deadline);
    out.events = sim.events_processed();
  } else {
    ShardedEngine engine(net);
    EXPECT_EQ(engine.num_shards(), net.num_shards());
    setup(engine.control());
    engine.run_until(deadline);
    out.events = engine.events_processed();
  }

  for (std::size_t i = 0; i < driver.num_flows(); ++i) {
    const auto& rec = driver.flow(static_cast<std::int32_t>(i)).record();
    out.flows.push_back(
        FlowPrint{rec.start, rec.finish, rec.retransmits, rec.timeouts});
  }
  const auto stats = net.stats();
  out.queue_drops = stats.queue_drops;
  out.ttl_drops = stats.ttl_drops;
  out.no_route_drops = stats.no_route_drops;
  out.delivered = stats.delivered;
  out.samples = mon.samples();
  return out;
}

TEST(ShardedDeterminism, FailureAndMonitorInterleaveExactly) {
  const RunPrint serial = run_failure_scenario(1);
  ASSERT_EQ(serial.flows.size(), 16u);
  for (const int intra : kIntraSweep) {
    SCOPED_TRACE("intra_jobs=" + std::to_string(intra));
    const RunPrint sharded = run_failure_scenario(intra);
    EXPECT_EQ(serial.events, sharded.events);
    EXPECT_EQ(serial.queue_drops, sharded.queue_drops);
    EXPECT_EQ(serial.ttl_drops, sharded.ttl_drops);
    EXPECT_EQ(serial.no_route_drops, sharded.no_route_drops);
    EXPECT_EQ(serial.delivered, sharded.delivered);
    ASSERT_EQ(serial.flows.size(), sharded.flows.size());
    for (std::size_t i = 0; i < serial.flows.size(); ++i) {
      SCOPED_TRACE("flow " + std::to_string(i));
      EXPECT_EQ(serial.flows[i], sharded.flows[i]);
    }
    ASSERT_EQ(serial.samples.size(), sharded.samples.size());
    for (std::size_t i = 0; i < serial.samples.size(); ++i) {
      EXPECT_EQ(serial.samples[i].t, sharded.samples[i].t);
      EXPECT_EQ(serial.samples[i].total_bytes, sharded.samples[i].total_bytes);
      EXPECT_EQ(serial.samples[i].max_bytes, sharded.samples[i].max_bytes);
    }
  }
}

// The same failure + monitor scenario with real reactor threads forced:
// global (kShardGlobal) sinks rendezvous across actual threads here, so
// this is where TSAN sees the central-plan handoff and the per-flow and
// per-sample bytes still may not move.
TEST(ShardedDeterminism, FailureInterleaveWithForcedReactorThreads) {
  const RunPrint serial = run_failure_scenario(1);
  const RunPrint threaded = run_failure_scenario(4, /*reactor_threads=*/4);
  EXPECT_EQ(serial.events, threaded.events);
  EXPECT_EQ(serial.queue_drops, threaded.queue_drops);
  EXPECT_EQ(serial.ttl_drops, threaded.ttl_drops);
  EXPECT_EQ(serial.no_route_drops, threaded.no_route_drops);
  EXPECT_EQ(serial.delivered, threaded.delivered);
  ASSERT_EQ(serial.flows.size(), threaded.flows.size());
  for (std::size_t i = 0; i < serial.flows.size(); ++i) {
    SCOPED_TRACE("flow " + std::to_string(i));
    EXPECT_EQ(serial.flows[i], threaded.flows[i]);
  }
  ASSERT_EQ(serial.samples.size(), threaded.samples.size());
  for (std::size_t i = 0; i < serial.samples.size(); ++i) {
    EXPECT_EQ(serial.samples[i].t, threaded.samples[i].t);
    EXPECT_EQ(serial.samples[i].total_bytes, threaded.samples[i].total_bytes);
    EXPECT_EQ(serial.samples[i].max_bytes, threaded.samples[i].max_bytes);
  }
}

// Repeated run_until calls on the engine (the incremental-deadline pattern
// tests and monitors use) must land on the same state as one big run.
TEST(ShardedDeterminism, IncrementalDeadlinesMatchSingleRun) {
  const auto run_with = [](bool incremental) {
    const auto g = topo::make_leaf_spine(4, 2);
    NetworkConfig cfg;
    cfg.intra_jobs = 3;
    Network net(g, cfg);
    FlowDriver driver(net, TcpConfig{});
    ShardedEngine engine(net);
    for (int i = 0; i < 6; ++i)
      driver.add_flow(engine.control(), i % g.total_servers(),
                      (i + 3) % g.total_servers(), 100'000, 0);
    if (incremental) {
      for (Time t = units::kMillisecond; t <= 50 * units::kMillisecond;
           t += units::kMillisecond) {
        engine.run_until(t);
      }
    } else {
      engine.run_until(50 * units::kMillisecond);
    }
    std::vector<Time> finishes;
    for (std::size_t i = 0; i < driver.num_flows(); ++i)
      finishes.push_back(
          driver.flow(static_cast<std::int32_t>(i)).record().finish);
    return std::pair(engine.events_processed(), finishes);
  };
  EXPECT_EQ(run_with(false), run_with(true));
}

}  // namespace
}  // namespace spineless::sim
