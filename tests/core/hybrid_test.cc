// Hybrid packet/fluid co-simulation suite (core/hybrid_experiment):
//  * determinism — identical result bytes across --intra_jobs {1,2,4,7} and
//    with real reactor threads forced,
//  * crash safety — a run cancelled at a boundary window and resumed from
//    its HYBR snapshot matches an uninterrupted run byte-for-byte,
//  * degenerate region — hot set = whole graph reduces the co-simulation to
//    the pure packet experiment exactly (same per-flow FCTs),
//  * calibration — with a partial hot region, hybrid FCTs stay within the
//    documented envelope of pure-packet on the bench_fidelity small cell
//    (bench_hybrid measures the error precisely; this test pins the bound).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/fct_experiment.h"
#include "core/hybrid_experiment.h"
#include "topo/builders.h"
#include "topo/region.h"
#include "util/fsio.h"
#include "workload/flows.h"
#include "workload/tm.h"

namespace spineless::core {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "spineless_hybrid_" + name;
}

struct HybridPrint {
  std::uint64_t result_hash = 0;
  std::uint64_t packet_events = 0;
  std::uint64_t fluid_windows = 0;
  std::uint64_t fluid_solves = 0;
  std::uint64_t fluid_solves_skipped = 0;
  std::size_t flows = 0, completed = 0;
  std::size_t internal = 0, boundary = 0, external = 0;
  std::int64_t drops = 0, retransmits = 0;
  double p50 = 0, p99 = 0;
  bool operator==(const HybridPrint&) const = default;
};

HybridPrint print(const HybridResult& r) {
  return HybridPrint{r.result_hash,    r.packet_events,
                     r.fluid_windows,  r.fluid_solves,
                     r.fluid_solves_skipped,
                     r.flows,          r.completed,
                     r.internal_flows, r.boundary_flows,
                     r.external_flows, r.queue_drops,
                     r.retransmits,    r.median_ms(),
                     r.p99_ms()};
}

// The bench_fidelity-style small cell: a 6x2 DRing, uniform TM at moderate
// load, hot region = two adjacent supernodes (a DRing has no intra-
// supernode links, so a single supernode would be a disconnected region; a
// +1-adjacent pair is the smallest connected "congested supernodes" cut).
// Internal, boundary, and external flows all occur.
HybridConfig small_cfg(int intra, int reactor_threads = 0) {
  HybridConfig cfg;
  cfg.fct.seed = 7;
  cfg.fct.net.intra_jobs = intra;
  cfg.fct.net.reactor_threads = reactor_threads;
  cfg.fct.flowgen.offered_load_bps =
      workload::spine_offered_load_bps(6, 2, 10e9, /*utilization=*/0.3);
  cfg.fct.flowgen.window = units::kMillisecond;
  cfg.fct.drain_factor = 8.0;
  cfg.region_mode = RegionMode::kSupernodes;
  cfg.region_supernodes = {0, 1};
  // Small cell, short flows: a fine co-simulation window keeps the
  // window-granularity loss recovery out of the FCT tail.
  cfg.window = 50 * units::kMicrosecond;
  return cfg;
}

TEST(Hybrid, MixesAllThreeFlowKinds) {
  const auto d = topo::make_dring(6, 2, 2);
  const auto tm = workload::RackTm::uniform(d.graph);
  const auto r =
      run_hybrid_experiment(d.graph, tm, small_cfg(1), &d.supernode_of);
  EXPECT_TRUE(r.finished);
  EXPECT_GT(r.flows, 0u);
  EXPECT_EQ(r.internal_flows + r.boundary_flows + r.external_flows, r.flows);
  EXPECT_GT(r.internal_flows, 0u);
  EXPECT_GT(r.boundary_flows, 0u);
  EXPECT_GT(r.external_flows, 0u);
  EXPECT_GT(r.completed, 0u);
  EXPECT_GT(r.packet_events, 0u);
  EXPECT_GT(r.fluid_windows, 0u);
  EXPECT_GT(r.fluid_solves, 0u);
  EXPECT_EQ(r.region_switches, 4);
}

// The incremental-solve trigger: once the active flow set is stable and no
// boundary cap clamps, windows reuse the previous rates instead of
// re-solving — the property that keeps 100k-switch sweeps from paying a
// max-min solve every 200us of simulated time. A handful of long flows with
// a common start gives a long steady phase, so most windows must skip.
TEST(Hybrid, IncrementalTriggerSkipsSteadyWindows) {
  const auto d = topo::make_dring(6, 2, 2);
  std::vector<workload::FlowSpec> specs;
  const auto hosts = d.graph.total_servers();
  for (int i = 0; i < 6; ++i) {
    specs.push_back(workload::FlowSpec{
        static_cast<topo::HostId>(i % hosts),
        static_cast<topo::HostId>((i * 7 + 5) % hosts), 2'000'000, 0});
  }
  HybridConfig cfg;
  cfg.fct.seed = 3;
  cfg.fct.flowgen.window = units::kMillisecond;
  cfg.fct.drain_factor = 20.0;
  cfg.region_mode = RegionMode::kSupernodes;
  cfg.region_supernodes = {0, 1};
  const auto r =
      run_hybrid_experiment_flows(d.graph, specs, cfg, &d.supernode_of);
  EXPECT_EQ(r.completed, specs.size());
  EXPECT_GT(r.fluid_solves, 0u);
  EXPECT_GT(r.fluid_solves_skipped, r.fluid_solves);
}

TEST(Hybrid, ByteIdenticalAcrossIntraJobs) {
  const auto d = topo::make_dring(6, 2, 2);
  const auto tm = workload::RackTm::uniform(d.graph);
  const HybridPrint base =
      print(run_hybrid_experiment(d.graph, tm, small_cfg(1), &d.supernode_of));
  ASSERT_GT(base.completed, 0u);
  for (const int intra : {2, 4, 7}) {
    SCOPED_TRACE("intra_jobs=" + std::to_string(intra));
    EXPECT_EQ(base, print(run_hybrid_experiment(d.graph, tm, small_cfg(intra),
                                                &d.supernode_of)));
  }
}

// On a 1-core CI box the auto reactor resolve multiplexes every shard onto
// the caller; forcing one thread per shard exercises the real cross-thread
// handoff under the hybrid window loop (the TSAN preset interleaves this).
TEST(Hybrid, ByteIdenticalWithForcedReactorThreads) {
  const auto d = topo::make_dring(6, 2, 2);
  const auto tm = workload::RackTm::uniform(d.graph);
  const HybridPrint base =
      print(run_hybrid_experiment(d.graph, tm, small_cfg(1), &d.supernode_of));
  EXPECT_EQ(base,
            print(run_hybrid_experiment(
                d.graph, tm, small_cfg(4, /*reactor_threads=*/4),
                &d.supernode_of)));
}

TEST(Hybrid, KillAndResumeThroughBoundaryWindow) {
  const auto d = topo::make_dring(6, 2, 2);
  const auto tm = workload::RackTm::uniform(d.graph);
  const HybridPrint base =
      print(run_hybrid_experiment(d.graph, tm, small_cfg(1), &d.supernode_of));
  for (const int intra : {1, 2, 4}) {
    SCOPED_TRACE("intra_jobs=" + std::to_string(intra));
    const std::string path = tmp_path("resume" + std::to_string(intra));
    util::remove_file(path);

    // First run: cancel at the first checkpointed window boundary — the
    // snapshot is taken mid-run, with boundary sources holding live pacing
    // state and fluid flows partially drained.
    auto cfg = small_cfg(intra);
    cfg.fct.checkpoint.path = path;
    cfg.fct.checkpoint.cancel = [] { return true; };
    const auto cancelled =
        run_hybrid_experiment(d.graph, tm, cfg, &d.supernode_of);
    EXPECT_FALSE(cancelled.finished);
    ASSERT_TRUE(util::file_exists(path));

    auto cfg2 = small_cfg(intra);
    cfg2.fct.checkpoint.path = path;
    cfg2.fct.checkpoint.resume = true;
    const auto resumed =
        run_hybrid_experiment(d.graph, tm, cfg2, &d.supernode_of);
    EXPECT_TRUE(resumed.finished);
    EXPECT_EQ(base, print(resumed));
    util::remove_file(path);
  }
}

TEST(Hybrid, AuditedSegmentedRunMatches) {
  const auto d = topo::make_dring(6, 2, 2);
  const auto tm = workload::RackTm::uniform(d.graph);
  const HybridPrint base =
      print(run_hybrid_experiment(d.graph, tm, small_cfg(1), &d.supernode_of));
  auto cfg = small_cfg(2);
  cfg.fct.checkpoint.audit = true;
  EXPECT_EQ(base,
            print(run_hybrid_experiment(d.graph, tm, cfg, &d.supernode_of)));
}

// Hot set = the whole graph: every flow is internal, the boundary layer and
// fluid solver never engage, and the per-flow FCTs must equal the pure
// packet experiment exactly (same seed protocol, same construction order).
TEST(Hybrid, WholeGraphRegionReducesToPurePacket) {
  const auto d = topo::make_dring(6, 2, 2);
  const auto tm = workload::RackTm::uniform(d.graph);

  auto cfg = small_cfg(1);
  cfg.region_mode = RegionMode::kSwitches;
  cfg.region_switches.clear();
  for (topo::NodeId n = 0; n < d.graph.num_switches(); ++n)
    cfg.region_switches.push_back(n);
  const auto hybrid = run_hybrid_experiment(d.graph, tm, cfg);
  EXPECT_EQ(hybrid.internal_flows, hybrid.flows);
  EXPECT_EQ(hybrid.boundary_flows, 0u);
  EXPECT_EQ(hybrid.external_flows, 0u);
  EXPECT_EQ(hybrid.region_switches, d.graph.num_switches());
  EXPECT_EQ(hybrid.cut_links, 0);

  FctConfig fcfg = cfg.fct;
  const auto packet = run_fct_experiment(d.graph, tm, fcfg);
  EXPECT_EQ(hybrid.flows, packet.flows);
  EXPECT_EQ(hybrid.completed, packet.completed);
  EXPECT_DOUBLE_EQ(hybrid.median_ms(), packet.median_ms());
  EXPECT_DOUBLE_EQ(hybrid.p99_ms(), packet.p99_ms());
  EXPECT_EQ(hybrid.queue_drops, packet.queue_drops);
  EXPECT_EQ(hybrid.retransmits, packet.retransmits);
}

// Calibration envelope: with a real partial region, the hybrid median and
// p99 FCT stay within 2x of pure-packet on the small cell, and neither side
// loses flows. bench_hybrid measures the actual error (typically well under
// this bound — see results/BENCH_hybrid.json); the test pins the documented
// worst case so a regression in the boundary layer cannot hide.
TEST(Hybrid, CalibrationWithinDocumentedTolerance) {
  const auto d = topo::make_dring(6, 2, 2);
  const auto tm = workload::RackTm::uniform(d.graph);
  const auto cfg = small_cfg(1);
  const auto hybrid = run_hybrid_experiment(d.graph, tm, cfg, &d.supernode_of);
  const auto packet = run_fct_experiment(d.graph, tm, cfg.fct);
  ASSERT_GT(packet.completed, 0u);
  EXPECT_EQ(hybrid.flows, packet.flows);
  // The fluid halves have no loss or slow start, so hybrid may complete
  // flows the packet run strands in the drain window — but never fewer.
  EXPECT_GE(hybrid.completed, packet.completed);
  const double kTol = 2.0;  // documented calibration envelope (ratio)
  EXPECT_GT(hybrid.median_ms(), packet.median_ms() / kTol);
  EXPECT_LT(hybrid.median_ms(), packet.median_ms() * kTol);
  EXPECT_GT(hybrid.p99_ms(), packet.p99_ms() / kTol);
  EXPECT_LT(hybrid.p99_ms(), packet.p99_ms() * kTol);
}

// kAuto grows a connected hot set of the requested size from the demand of
// a prior fluid pass, deterministically.
TEST(Hybrid, AutoRegionIsConnectedAndDeterministic) {
  const auto g = topo::make_rrg(12, 4, 2, /*seed=*/3);
  const auto tm = workload::RackTm::uniform(g);
  HybridConfig cfg;
  cfg.fct.seed = 5;
  cfg.fct.flowgen.offered_load_bps = 20e9;
  cfg.fct.flowgen.window = units::kMillisecond;
  cfg.fct.drain_factor = 8.0;
  cfg.region_mode = RegionMode::kAuto;
  cfg.auto_region_switches = 4;
  const auto a = run_hybrid_experiment(g, tm, cfg);
  const auto b = run_hybrid_experiment(g, tm, cfg);
  EXPECT_EQ(a.region_switches, 4);
  EXPECT_GT(a.cut_links, 0);
  EXPECT_EQ(print(a), print(b));
}

// The region-cut primitives themselves: exact cut-link sets and gateway
// host placement on a hand-checkable topology.
TEST(Hybrid, RegionCutAndGateways) {
  const auto g = topo::make_leaf_spine(4, 2);  // leaves 0..5, spines 6..7
  const auto cut = topo::region_from_switches(g, {6});
  EXPECT_EQ(cut.hot, (std::vector<topo::NodeId>{6}));
  // Spine 6 links to every leaf: 6 cut links, inside endpoint always 6.
  EXPECT_EQ(cut.cut.size(), 6u);
  for (const auto& c : cut.cut) EXPECT_EQ(c.inside, 6);

  const auto rg = topo::build_region_graph(g, cut);
  EXPECT_EQ(rg.graph.num_switches(), 1);
  EXPECT_TRUE(rg.graph.connected());
  // Spines carry no servers, so every region host is a gateway.
  EXPECT_EQ(rg.graph.total_servers(), 6);
  EXPECT_EQ(rg.gateway_host.size(), 6u);
  for (std::size_t i = 0; i < rg.gateway_host.size(); ++i)
    EXPECT_EQ(rg.gateway_host[i], static_cast<topo::HostId>(i));
}

}  // namespace
}  // namespace spineless::core
