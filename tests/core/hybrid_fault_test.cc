// Whole-network fault tolerance for the hybrid engine
// (core/hybrid_experiment + core/hybrid_fault.h): a FaultPlan spanning
// region-internal, cut, and external links must produce
//  * determinism — byte-identical result hashes AND string-equal unified
//    fault reports across --intra_jobs {1,2,4,7} and forced reactor threads,
//  * crash safety — kill + --resume from a snapshot taken mid-outage (link
//    down, tables already repaired) matches an uninterrupted run exactly,
//  * severed regions — failing every cut link demotes boundary flows to
//    stalled fluid with honest stall/blackhole accounting,
//  * cross-half agreement — the fluid outage model's nominal detection +
//    repair times match what packet BFD measures for the same plan when the
//    region covers the whole graph,
//  * version skew — a pre-PR-8 (version-forged) HYBR section is rejected
//    with an error naming the section and both versions.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/hybrid_experiment.h"
#include "sim/checkpoint.h"
#include "sim/snapshot.h"
#include "topo/builders.h"
#include "topo/region.h"
#include "util/fsio.h"
#include "workload/flows.h"
#include "workload/tm.h"

namespace spineless::core {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "spineless_hybrid_fault_" + name;
}

// First i64 following `"key":` in a (spineless-emitted, unspaced) JSON
// document — enough to pull one timing field out of a unified fault report.
std::int64_t extract_i64(const std::string& json, const std::string& key) {
  const auto pos = json.find("\"" + key + "\":");
  if (pos == std::string::npos) return -999;
  return std::stoll(json.substr(pos + key.size() + 3));
}

// The hybrid_test small cell (6x2 DRing, supernodes {0,1} hot) plus a
// whole-network fault schedule. Link classes are picked from the cut:
// cut.cut[0] is the boundary link; the internal/external picks scan for
// the lowest link id of each class.
struct Cell {
  topo::DRing d = topo::make_dring(6, 2, 2);
  topo::RegionCut cut;
  topo::LinkId internal_link = topo::kInvalidLink;
  topo::LinkId cut_link = topo::kInvalidLink;
  topo::LinkId external_link = topo::kInvalidLink;

  Cell() {
    cut = topo::region_from_supernodes(d.graph, d.supernode_of, {0, 1});
    cut_link = cut.cut[0].link;
    for (topo::LinkId l = 0; l < d.graph.num_links(); ++l) {
      const auto& lk = d.graph.link(l);
      const bool a_hot = cut.contains(lk.a);
      const bool b_hot = cut.contains(lk.b);
      if (a_hot && b_hot && internal_link == topo::kInvalidLink)
        internal_link = l;
      if (!a_hot && !b_hot && external_link == topo::kInvalidLink)
        external_link = l;
    }
  }
};

HybridConfig fault_cfg(int intra, const std::string& fault_spec,
                       int reactor_threads = 0) {
  HybridConfig cfg;
  cfg.fct.seed = 7;
  cfg.fct.net.intra_jobs = intra;
  cfg.fct.net.reactor_threads = reactor_threads;
  cfg.fct.flowgen.offered_load_bps =
      workload::spine_offered_load_bps(6, 2, 10e9, /*utilization=*/0.3);
  cfg.fct.flowgen.window = units::kMillisecond;
  cfg.fct.drain_factor = 8.0;
  cfg.region_mode = RegionMode::kSupernodes;
  cfg.region_supernodes = {0, 1};
  cfg.window = 50 * units::kMicrosecond;
  cfg.fault_spec = fault_spec;
  return cfg;
}

// One clause per link class: a region-internal flap (packet BFD), a cut
// link failure (boundary re-pin), an external failure (fluid re-path).
std::string three_way_spec(const Cell& c) {
  return "flap link=" + std::to_string(c.internal_link) +
         " down=1ms up=3ms; fail link=" + std::to_string(c.cut_link) +
         " at=1500us; fail link=" + std::to_string(c.external_link) +
         " at=2ms";
}

TEST(HybridFault, UnifiedReportSpansBothHalves) {
  const Cell c;
  const auto tm = workload::RackTm::uniform(c.d.graph);
  const auto r = run_hybrid_experiment(
      c.d.graph, tm, fault_cfg(1, three_way_spec(c)), &c.d.supernode_of);
  EXPECT_TRUE(r.finished);
  EXPECT_GT(r.completed, 0u);
  // Two fluid-side outages (cut + external), each permanent.
  EXPECT_EQ(r.fluid_outages, 2u);
  EXPECT_GT(r.fluid_blackhole_seconds, 0.0);
  // The packet half detected the internal flap.
  ASSERT_FALSE(r.fault_report.empty());
  EXPECT_NE(r.fault_report.find("\"packet\":"), std::string::npos);
  EXPECT_NE(r.fault_report.find("\"fluid\":"), std::string::npos);
  EXPECT_NE(r.fault_report.find("\"boundary\":"), std::string::npos);
  EXPECT_NE(r.fault_report.find("\"goodput_recovery\":"), std::string::npos);
  // Packet outages are reported with FULL-graph link ids: the internal
  // link's id appears even though the injector saw a renumbered region id.
  EXPECT_NE(
      r.fault_report.find("\"link\":" + std::to_string(c.internal_link)),
      std::string::npos)
      << r.fault_report;
  EXPECT_GT(extract_i64(r.fault_report, "blackhole_seconds"), -999);
}

TEST(HybridFault, ReportAndHashByteIdenticalAcrossIntraJobs) {
  const Cell c;
  const auto tm = workload::RackTm::uniform(c.d.graph);
  const auto base = run_hybrid_experiment(
      c.d.graph, tm, fault_cfg(1, three_way_spec(c)), &c.d.supernode_of);
  ASSERT_FALSE(base.fault_report.empty());
  for (const int intra : {2, 4, 7}) {
    SCOPED_TRACE("intra_jobs=" + std::to_string(intra));
    const auto r = run_hybrid_experiment(
        c.d.graph, tm, fault_cfg(intra, three_way_spec(c)),
        &c.d.supernode_of);
    EXPECT_EQ(base.result_hash, r.result_hash);
    EXPECT_EQ(base.fault_report, r.fault_report);
  }
}

TEST(HybridFault, ReportAndHashByteIdenticalWithForcedReactorThreads) {
  const Cell c;
  const auto tm = workload::RackTm::uniform(c.d.graph);
  const auto base = run_hybrid_experiment(
      c.d.graph, tm, fault_cfg(1, three_way_spec(c)), &c.d.supernode_of);
  const auto r = run_hybrid_experiment(
      c.d.graph, tm,
      fault_cfg(4, three_way_spec(c), /*reactor_threads=*/4),
      &c.d.supernode_of);
  EXPECT_EQ(base.result_hash, r.result_hash);
  EXPECT_EQ(base.fault_report, r.fault_report);
}

TEST(HybridFault, KillAndResumeMidOutageByteIdentical) {
  const Cell c;
  const auto tm = workload::RackTm::uniform(c.d.graph);
  const std::string spec = three_way_spec(c);
  const auto base =
      run_hybrid_experiment(c.d.graph, tm, fault_cfg(1, spec),
                            &c.d.supernode_of);
  for (const int intra : {1, 2}) {
    SCOPED_TRACE("intra_jobs=" + std::to_string(intra));
    const std::string path = tmp_path("resume" + std::to_string(intra));
    util::remove_file(path);

    // Cancel ~2ms in: the internal link is down and routed out, the cut
    // link's boundary flows are mid-re-pin, and the external failure is
    // about to land — the hairiest instant to snapshot.
    auto cfg = fault_cfg(intra, spec);
    cfg.fct.checkpoint.path = path;
    int windows = 0;
    cfg.fct.checkpoint.cancel = [&windows] { return ++windows >= 40; };
    const auto cancelled =
        run_hybrid_experiment(c.d.graph, tm, cfg, &c.d.supernode_of);
    EXPECT_FALSE(cancelled.finished);
    ASSERT_TRUE(util::file_exists(path));

    auto cfg2 = fault_cfg(intra, spec);
    cfg2.fct.checkpoint.path = path;
    cfg2.fct.checkpoint.resume = true;
    const auto resumed =
        run_hybrid_experiment(c.d.graph, tm, cfg2, &c.d.supernode_of);
    EXPECT_TRUE(resumed.finished);
    EXPECT_EQ(base.result_hash, resumed.result_hash);
    EXPECT_EQ(base.fault_report, resumed.fault_report);
    util::remove_file(path);
  }
}

// Fail every cut link: the region is severed, and every boundary flow that
// had not finished must be demoted to stalled fluid — recorded re-pins with
// to_cut = -1, nonzero stall time, and no silent completions.
TEST(HybridFault, SeveredRegionStallsBoundaryFlows) {
  const Cell c;
  std::string spec;
  for (const auto& cl : c.cut.cut) {
    if (!spec.empty()) spec += "; ";
    spec += "fail link=" + std::to_string(cl.link) + " at=500us";
  }
  // Hand-built boundary flows: hot-src -> cold-dst, big enough that none
  // can finish before the 500us failure + ~800us detection/repair settle.
  std::vector<workload::FlowSpec> specs;
  const topo::NodeId hot_tor = c.cut.hot[0];
  topo::NodeId cold_tor = topo::kInvalidNode;
  for (topo::NodeId n = c.d.graph.num_switches(); n-- > 0;) {
    if (!c.cut.contains(n) && c.d.graph.servers(n) > 0) {
      cold_tor = n;
      break;
    }
  }
  ASSERT_NE(cold_tor, topo::kInvalidNode);
  for (int i = 0; i < 4; ++i) {
    specs.push_back(workload::FlowSpec{
        static_cast<topo::HostId>(c.d.graph.first_host_of(hot_tor) +
                                  i % c.d.graph.servers(hot_tor)),
        static_cast<topo::HostId>(c.d.graph.first_host_of(cold_tor) +
                                  i % c.d.graph.servers(cold_tor)),
        5'000'000, 0});
  }
  auto cfg = fault_cfg(1, spec);
  const auto r =
      run_hybrid_experiment_flows(c.d.graph, specs, cfg, &c.d.supernode_of);
  EXPECT_EQ(r.boundary_flows, specs.size());
  EXPECT_EQ(r.completed, 0u);
  EXPECT_EQ(r.stalled_flows, specs.size());
  EXPECT_GT(r.stalled_seconds, 0.0);
  EXPECT_GT(r.boundary_repins, 0u);
  EXPECT_GT(r.fluid_blackhole_seconds, 0.0);
  EXPECT_NE(r.fault_report.find("\"to_cut\":-1"), std::string::npos)
      << r.fault_report;
}

// The fluid outage model's nominal routed-out instant is t_down +
// hold_count * hello_interval + repair_delay exactly; a permanent external
// failure must therefore report precisely that much blackhole time.
TEST(HybridFault, FluidBlackholeMatchesBfdTiming) {
  const Cell c;
  const auto tm = workload::RackTm::uniform(c.d.graph);
  const auto cfg = fault_cfg(
      1, "fail link=" + std::to_string(c.external_link) + " at=1ms");
  const auto r =
      run_hybrid_experiment(c.d.graph, tm, cfg, &c.d.supernode_of);
  ASSERT_EQ(r.fluid_outages, 1u);
  const Time hold =
      static_cast<Time>(cfg.fault.hold_count) * cfg.fault.hello_interval;
  EXPECT_NEAR(r.fluid_blackhole_seconds,
              units::to_seconds(hold + cfg.fault.repair_delay), 1e-12);
  EXPECT_EQ(extract_i64(r.fault_report, "t_routed_out"),
            units::kMillisecond + hold + cfg.fault.repair_delay);
}

// A restored external flap: flows re-path around the outage and re-converge
// once the link returns, so post-repair goodput recovers most of the
// pre-fault peak (check.sh pins the >= 0.95 bound on its smoke scenario).
TEST(HybridFault, GoodputRecoversAfterExternalFlap) {
  const Cell c;
  // Long-lived flows so traffic spans the whole fault cycle: the peak
  // post-repair goodput must climb back toward the pre-fault peak.
  std::vector<workload::FlowSpec> specs;
  const auto hosts = c.d.graph.total_servers();
  for (int i = 0; i < 8; ++i) {
    const auto src = static_cast<topo::HostId>((i * 3 + 1) % hosts);
    auto dst = static_cast<topo::HostId>((i * 7 + 5) % hosts);
    if (dst == src) dst = static_cast<topo::HostId>((dst + 1) % hosts);
    specs.push_back(workload::FlowSpec{src, dst, 6'000'000, 0});
  }
  auto cfg = fault_cfg(1, "flap link=" + std::to_string(c.external_link) +
                              " down=1ms up=2ms");
  cfg.fct.drain_factor = 40.0;
  const auto r =
      run_hybrid_experiment_flows(c.d.graph, specs, cfg, &c.d.supernode_of);
  EXPECT_EQ(r.fluid_outages, 1u);
  EXPECT_EQ(r.completed, specs.size());
  EXPECT_GT(r.goodput_recovery, 0.5);
  // Restored cycle: both routed-out and routed-in are recorded.
  EXPECT_GT(extract_i64(r.fault_report, "t_routed_in"), 0);
}

// Whole-graph hot set: the identical plan runs entirely through packet BFD.
// The fluid model's nominal timing must agree with what BFD measures to
// within the hello quantization (detection waits for the hold to expire
// from the LAST hello, so the measured instant may lag the nominal one by
// up to one interval plus queueing).
TEST(HybridFault, FluidOutageTimingAgreesWithPacketBfd) {
  const Cell c;
  const auto tm = workload::RackTm::uniform(c.d.graph);
  const std::string spec =
      "flap link=" + std::to_string(c.external_link) + " down=1ms up=3ms";

  const auto fluid_run = run_hybrid_experiment(
      c.d.graph, tm, fault_cfg(1, spec), &c.d.supernode_of);
  ASSERT_EQ(fluid_run.fluid_outages, 1u);

  auto whole = fault_cfg(1, spec);
  whole.region_mode = RegionMode::kSwitches;
  whole.region_supernodes.clear();
  for (topo::NodeId n = 0; n < c.d.graph.num_switches(); ++n)
    whole.region_switches.push_back(n);
  const auto packet_run = run_hybrid_experiment(c.d.graph, tm, whole);
  EXPECT_EQ(packet_run.fluid_outages, 0u);
  ASSERT_NE(packet_run.fault_report.find("\"t_routed_out\":"),
            std::string::npos);

  const std::int64_t fluid_out =
      extract_i64(fluid_run.fault_report, "t_routed_out");
  const std::int64_t packet_out =
      extract_i64(packet_run.fault_report, "t_routed_out");
  const std::int64_t fluid_in =
      extract_i64(fluid_run.fault_report, "t_routed_in");
  const std::int64_t packet_in =
      extract_i64(packet_run.fault_report, "t_routed_in");
  const auto tol =
      static_cast<std::int64_t>(2 * fault_cfg(1, spec).fault.hello_interval);
  EXPECT_GE(packet_out, fluid_out - tol);
  EXPECT_LE(packet_out, fluid_out + tol);
  EXPECT_GE(packet_in, fluid_in - tol);
  EXPECT_LE(packet_in, fluid_in + tol);
}

// Snapshot version skew: a HYBR payload whose leading version word was
// written by a different build (or predates versioning entirely) must be
// rejected with an error naming the section and both versions — not
// misparsed into silent corruption.
TEST(HybridFault, SnapshotVersionSkewRejected) {
  const Cell c;
  const auto tm = workload::RackTm::uniform(c.d.graph);
  const std::string path = tmp_path("version_skew");
  util::remove_file(path);
  auto cfg = fault_cfg(1, three_way_spec(c));
  cfg.fct.checkpoint.path = path;
  int windows = 0;
  cfg.fct.checkpoint.cancel = [&windows] { return ++windows >= 40; };
  ASSERT_FALSE(run_hybrid_experiment(c.d.graph, tm, cfg, &c.d.supernode_of)
                   .finished);
  std::string pristine;
  ASSERT_TRUE(util::read_file(path, &pristine));

  const auto resume = [&] {
    auto cfg2 = fault_cfg(1, three_way_spec(c));
    cfg2.fct.checkpoint.path = path;
    cfg2.fct.checkpoint.resume = true;
    return run_hybrid_experiment(c.d.graph, tm, cfg2, &c.d.supernode_of);
  };

  // Forward-compat negative test: forge "version 1" (a pre-PR-8 layout).
  sim::snapshot_patch_u64(
      path, sim::kSectionHybrid, 0,
      (static_cast<std::uint64_t>(sim::kSectionHybrid) << 32) | 1u);
  try {
    resume();
    FAIL() << "restore accepted a version-1 HYBR section";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("HYBR"), std::string::npos) << what;
    EXPECT_NE(what.find("version 1"), std::string::npos) << what;
    EXPECT_NE(what.find("expected 2"), std::string::npos) << what;
  }

  // A payload with no version word at all (pre-versioning build).
  ASSERT_TRUE(util::atomic_write_file(path, pristine));
  sim::snapshot_patch_u64(path, sim::kSectionHybrid, 0, 7);
  try {
    resume();
    FAIL() << "restore accepted an unversioned HYBR section";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("HYBR"), std::string::npos) << what;
    EXPECT_NE(what.find("predates"), std::string::npos) << what;
  }
  util::remove_file(path);
}

// Fault-free configs must hash independently of the (inert) fault timing
// knobs, so pre-fault snapshots stay loadable and fault-free sweeps keep
// their journal identity across this feature's introduction.
TEST(HybridFault, FaultFreeConfigHashIgnoresFaultKnobs) {
  const Cell c;
  std::vector<workload::FlowSpec> specs{
      workload::FlowSpec{0, 5, 1'000'000, 0}};
  HybridConfig a = fault_cfg(1, "");
  HybridConfig b = fault_cfg(1, "");
  b.fault.hello_interval *= 2;
  b.fault.hold_count += 1;
  b.fault.repair_delay *= 3;
  EXPECT_EQ(hybrid_config_hash(c.d.graph, specs, a),
            hybrid_config_hash(c.d.graph, specs, b));
  // ...but armed configs must not collide across different schedules.
  HybridConfig f1 = fault_cfg(1, "fail link=0 at=1ms");
  HybridConfig f2 = fault_cfg(1, "fail link=1 at=1ms");
  EXPECT_NE(hybrid_config_hash(c.d.graph, specs, f1),
            hybrid_config_hash(c.d.graph, specs, f2));
}

// Invalid fault timing must be rejected at arm time through
// FaultInjectorConfig::validate — the same path the packet injector takes.
TEST(HybridFault, InvalidFaultConfigRejected) {
  const Cell c;
  const auto tm = workload::RackTm::uniform(c.d.graph);
  auto cfg = fault_cfg(1, "fail link=0 at=1ms");
  cfg.fault.repair_delay = 0;  // below the network link delay
  EXPECT_THROW(
      run_hybrid_experiment(c.d.graph, tm, cfg, &c.d.supernode_of), Error);
}

}  // namespace
}  // namespace spineless::core
