#include "core/adaptive.h"

#include <gtest/gtest.h>

#include "topo/builders.h"

namespace spineless::core {
namespace {

TEST(Adaptive, RackToRackOnFlatNetworkSelectsShortestUnion) {
  const auto d = topo::make_dring(6, 2, 4);
  const topo::NodeId a = 0;
  const topo::NodeId b = d.graph.neighbors(0)[0].neighbor;
  const auto tm = workload::RackTm::rack_to_rack(d.graph, a, b);
  // Adjacent racks: exactly one shortest path.
  EXPECT_DOUBLE_EQ(weighted_path_diversity(d.graph, tm), 1.0);
  EXPECT_EQ(choose_routing(d.graph, tm), sim::RoutingMode::kShortestUnion);
}

TEST(Adaptive, UniformOnLeafSpineSelectsEcmp) {
  const auto g = topo::make_leaf_spine(12, 4);
  const auto tm = workload::RackTm::uniform(g);
  // Every leaf pair has y = 4 shortest paths... threshold tuned so the
  // leaf-spine's uniform diversity (4) stays under SU only when below it.
  AdaptiveConfig cfg;
  cfg.diversity_threshold = 3.0;
  EXPECT_EQ(choose_routing(g, tm, cfg), sim::RoutingMode::kEcmp);
}

TEST(Adaptive, UniformDiversityHigherThanRackToRack) {
  const auto d = topo::make_dring(6, 3, 4);
  const auto uniform = workload::RackTm::uniform(d.graph);
  const auto r2r = workload::RackTm::rack_to_rack(
      d.graph, 0, d.graph.neighbors(0)[0].neighbor);
  EXPECT_GT(weighted_path_diversity(d.graph, uniform),
            weighted_path_diversity(d.graph, r2r));
}

TEST(Adaptive, ThresholdBoundarySwitchesDecision) {
  const auto d = topo::make_dring(6, 2, 4);
  const auto tm = workload::RackTm::uniform(d.graph);
  const double div = weighted_path_diversity(d.graph, tm);
  AdaptiveConfig below, above;
  below.diversity_threshold = div - 0.01;
  above.diversity_threshold = div + 0.01;
  EXPECT_EQ(choose_routing(d.graph, tm, below), sim::RoutingMode::kEcmp);
  EXPECT_EQ(choose_routing(d.graph, tm, above),
            sim::RoutingMode::kShortestUnion);
}

TEST(Adaptive, LeafSpineUniformDiversityEqualsSpineCount) {
  const auto g = topo::make_leaf_spine(8, 4);
  const auto tm = workload::RackTm::uniform(g);
  EXPECT_DOUBLE_EQ(weighted_path_diversity(g, tm), 4.0);
}

TEST(Adaptive, ConcentrationExtremes) {
  const auto d = topo::make_dring(10, 2, 4);  // 20 racks
  // Single-rack burst: the top 10% (2 racks) carry everything.
  const auto burst = workload::RackTm::rack_to_rack(
      d.graph, 0, d.graph.neighbors(0)[0].neighbor);
  EXPECT_DOUBLE_EQ(demand_concentration(d.graph, burst), 1.0);
  // Uniform: top 2 of 20 racks carry ~10%.
  const auto uniform = workload::RackTm::uniform(d.graph);
  EXPECT_NEAR(demand_concentration(d.graph, uniform), 0.1, 1e-9);
}

TEST(Adaptive, SkewedTmTriggersShortestUnionViaConcentration) {
  // FB-like skew has high diversity between hot distant racks but strong
  // sender concentration — the concentration term must pick SU.
  const auto d = topo::make_dring(10, 4, 16);
  const auto tm = workload::RackTm::fb_like_skewed(d.graph, 11);
  EXPECT_GT(demand_concentration(d.graph, tm), 0.3);
  EXPECT_EQ(choose_routing(d.graph, tm), sim::RoutingMode::kShortestUnion);
}

}  // namespace
}  // namespace spineless::core
