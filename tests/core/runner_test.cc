#include "core/runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/fct_experiment.h"
#include "topo/builders.h"
#include "workload/tm.h"

namespace spineless::core {
namespace {

TEST(Runner, MapReturnsResultsInIndexOrder) {
  Runner runner(4);
  const auto out = runner.map(100, [](std::size_t i) { return 3 * i + 1; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 3 * i + 1);
}

TEST(Runner, SingleJobRunsInline) {
  Runner runner(1);
  EXPECT_EQ(runner.jobs(), 1);
  // Serial execution visits cells strictly in order.
  std::vector<std::size_t> order;
  runner.map(10, [&](std::size_t i) {
    order.push_back(i);
    return i;
  });
  std::vector<std::size_t> want(10);
  std::iota(want.begin(), want.end(), 0u);
  EXPECT_EQ(order, want);
}

TEST(Runner, AllCellsRunExactlyOnce) {
  Runner runner(8);
  std::vector<std::atomic<int>> hits(1000);
  runner.map(hits.size(), [&](std::size_t i) { return ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Runner, EmptyBatchIsNoOp) {
  Runner runner(4);
  EXPECT_TRUE(runner.map(0, [](std::size_t i) { return i; }).empty());
}

TEST(Runner, ReusableAcrossBatches) {
  Runner runner(3);
  for (int round = 0; round < 5; ++round) {
    const auto out =
        runner.map(17, [round](std::size_t i) { return i + 100 * round; });
    for (std::size_t i = 0; i < out.size(); ++i)
      EXPECT_EQ(out[i], i + 100 * static_cast<std::size_t>(round));
  }
}

TEST(Runner, BackToBackBatchStress) {
  // Regression: a straggler worker from batch k can still be spinning in
  // try_take() when batch k+1's tasks are pushed, and may run one of them
  // immediately — it must observe the new batch's body and count, never
  // the stale (nulled) state from its own batch. Many tiny batches
  // maximize the overlap window.
  Runner runner(8);
  for (int round = 0; round < 2000; ++round) {
    std::atomic<int> sum{0};
    runner.map(16, [&](std::size_t i) {
      sum += static_cast<int>(i);
      return 0;
    });
    EXPECT_EQ(sum.load(), 120);
  }
}

TEST(Runner, FirstExceptionPropagates) {
  Runner runner(4);
  EXPECT_THROW(runner.map(50,
                          [](std::size_t i) {
                            if (i == 13) throw std::runtime_error("cell 13");
                            return i;
                          }),
               std::runtime_error);
}

TEST(Runner, DeriveCellSeedIsThreadCountInvariantByConstruction) {
  // The seed depends only on (base, index) — decorrelated across indices,
  // stable across processes.
  const std::uint64_t a = derive_cell_seed(1, 0);
  const std::uint64_t b = derive_cell_seed(1, 1);
  const std::uint64_t c = derive_cell_seed(2, 0);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, derive_cell_seed(1, 0));
}

TEST(Runner, DefaultJobsHonorsEnvironment) {
  // Cannot mutate the environment safely under the test runner, but the
  // value must at least be a positive worker count.
  EXPECT_GE(default_jobs(), 1);
}

// The tentpole guarantee: a sweep of real packet-level experiment cells
// produces identical FctResults with 1 worker and with 8, because each
// cell's randomness derives only from its index.
TEST(Runner, FctSweepIsDeterministicAcrossThreadCounts) {
  const topo::Graph g = topo::make_leaf_spine(6, 2);
  const workload::RackTm tm = workload::RackTm::uniform(g);

  auto run_cells = [&](int jobs) {
    Runner runner(jobs);
    return runner.map(6, [&](std::size_t i) {
      FctConfig cfg;
      cfg.flowgen.offered_load_bps = 0.2 * 12 * units::gbps(10);
      cfg.flowgen.window = 2 * units::kMillisecond;
      cfg.seed = derive_cell_seed(7, i);
      return run_fct_experiment(g, tm, cfg);
    });
  };

  const auto serial = run_cells(1);
  const auto parallel = run_cells(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].flows, parallel[i].flows) << "cell " << i;
    EXPECT_EQ(serial[i].completed, parallel[i].completed) << "cell " << i;
    EXPECT_EQ(serial[i].events, parallel[i].events) << "cell " << i;
    EXPECT_EQ(serial[i].queue_drops, parallel[i].queue_drops) << "cell " << i;
    EXPECT_EQ(serial[i].retransmits, parallel[i].retransmits) << "cell " << i;
    EXPECT_EQ(serial[i].max_queue_bytes, parallel[i].max_queue_bytes)
        << "cell " << i;
    // FCT distributions must match bit-for-bit, not within tolerance.
    EXPECT_EQ(serial[i].fct_ms.median(), parallel[i].fct_ms.median())
        << "cell " << i;
    EXPECT_EQ(serial[i].fct_ms.p99(), parallel[i].fct_ms.p99())
        << "cell " << i;
    EXPECT_EQ(serial[i].fct_ms.mean(), parallel[i].fct_ms.mean())
        << "cell " << i;
  }
}

}  // namespace
}  // namespace spineless::core
