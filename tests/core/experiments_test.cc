// Integration tests: small but complete runs of the paper's experiments,
// asserting the *qualitative* claims (who wins) rather than absolute
// numbers.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/fct_experiment.h"
#include "routing/paths.h"
#include "topo/analysis.h"
#include "core/scenario.h"
#include "core/throughput_experiment.h"
#include "workload/flows.h"

namespace spineless::core {
namespace {

FctConfig tiny_fct_config() {
  FctConfig cfg;
  cfg.flowgen.offered_load_bps = workload::spine_offered_load_bps(
      6, 2, 10e9, /*utilization=*/0.3);
  cfg.flowgen.window = 2 * units::kMillisecond;
  cfg.seed = 7;
  return cfg;
}

TEST(FctExperiment, CompletesNearlyAllFlowsOnLeafSpine) {
  const auto g = topo::make_leaf_spine(6, 2);
  const auto tm = workload::RackTm::uniform(g);
  const auto r = run_fct_experiment(g, tm, tiny_fct_config());
  EXPECT_GT(r.flows, 50u);
  EXPECT_GE(static_cast<double>(r.completed),
            0.95 * static_cast<double>(r.flows));
  EXPECT_GT(r.median_ms(), 0.0);
  EXPECT_GE(r.p99_ms(), r.median_ms());
}

TEST(FctExperiment, DeterministicForSeed) {
  const auto g = topo::make_leaf_spine(6, 2);
  const auto tm = workload::RackTm::uniform(g);
  const auto a = run_fct_experiment(g, tm, tiny_fct_config());
  const auto b = run_fct_experiment(g, tm, tiny_fct_config());
  EXPECT_EQ(a.flows, b.flows);
  EXPECT_DOUBLE_EQ(a.median_ms(), b.median_ms());
  EXPECT_DOUBLE_EQ(a.p99_ms(), b.p99_ms());
}

TEST(FctExperiment, RandomPlacementChangesOutcome) {
  const auto g = topo::flatten_leaf_spine(6, 2, 1);
  const auto tm = workload::RackTm::fb_like_skewed(g, 3);
  auto cfg = tiny_fct_config();
  const auto base = run_fct_experiment(g, tm, cfg);
  cfg.random_placement = true;
  const auto rp = run_fct_experiment(g, tm, cfg);
  // RP shuffles the host identity space (and advances the RNG), so the
  // realized flow set and FCTs differ; the experiment itself still runs
  // to (near-)completion in both variants.
  EXPECT_NE(base.median_ms(), rp.median_ms());
  EXPECT_GE(static_cast<double>(base.completed),
            0.9 * static_cast<double>(base.flows));
  EXPECT_GE(static_cast<double>(rp.completed),
            0.9 * static_cast<double>(rp.flows));
}

// One hot rack sending to every other rack — the bursting-rack pattern of
// §3 ("micro bursts where a rack has a lot of traffic to send ... very few
// racks are bursting at any given point").
workload::RackTm outcast_tm(const topo::Graph& g, topo::NodeId hot) {
  workload::RackTm tm(g.num_switches());
  for (topo::NodeId j = 0; j < g.num_switches(); ++j) {
    if (j == hot || g.servers(j) == 0) continue;
    tm.at(hot, j) = static_cast<double>(g.servers(j));
  }
  return tm;
}

TEST(FctExperiment, FlatMedianBeatsLeafSpineWhenOneRackBursts) {
  // §3's oversubscription-masking argument in isolation: a single rack
  // bursting at 44 Gbps — above the leaf-spine rack's 4x10G uplinks,
  // below the flat rack's ~6-7 network links. The flat network's median
  // FCT wins decisively. (The p99 at this toy scale is dominated by
  // single elephant flows, which are path-rate-limited on every topology;
  // the tail claims are exercised by the Figure-4 reproduction below.)
  const Scenario s = Scenario::small();  // x=12, y=4
  FctConfig cfg;
  cfg.flowgen.offered_load_bps = 44e9;
  cfg.flowgen.window = 2 * units::kMillisecond;
  cfg.seed = 7;
  cfg.net.mode = sim::RoutingMode::kEcmp;

  const auto ls = s.leaf_spine();
  const auto ls_res = run_fct_experiment(ls, outcast_tm(ls, 0), cfg);

  const auto rrg = s.rrg();
  cfg.net.mode = sim::RoutingMode::kShortestUnion;
  const auto rrg_res = run_fct_experiment(rrg, outcast_tm(rrg, 0), cfg);

  EXPECT_LT(rrg_res.median_ms(), ls_res.median_ms());
  EXPECT_LT(rrg_res.p99_ms(), 2.0 * ls_res.p99_ms());  // tail sanity bound
}

TEST(FctExperiment, Figure4ShapeOnSkewedWorkload) {
  // The full Figure-4 shape at medium scale, FB-like skewed TM at 30%
  // spine utilization:
  //  * flat topologies beat leaf-spine on median FCT,
  //  * DRing with plain ECMP has a catastrophic p99 (too few paths),
  //  * Shortest-Union(2) repairs DRing's tail below leaf-spine's.
  const Scenario s{.x = 24, .y = 8, .dring_supernodes = 10, .seed = 1};
  FctConfig cfg;
  cfg.flowgen.offered_load_bps =
      workload::spine_offered_load_bps(s.x, s.y, 10e9, 0.3);
  cfg.flowgen.window = 2 * units::kMillisecond;
  cfg.seed = 7;

  const auto ls = s.leaf_spine();
  cfg.net.mode = sim::RoutingMode::kEcmp;
  const auto ls_res =
      run_fct_experiment(ls, workload::RackTm::fb_like_skewed(ls, 11), cfg);

  const auto dring = s.dring();
  const auto dring_tm = workload::RackTm::fb_like_skewed(dring.graph, 11);
  cfg.net.mode = sim::RoutingMode::kEcmp;
  const auto dr_ecmp = run_fct_experiment(dring.graph, dring_tm, cfg);
  cfg.net.mode = sim::RoutingMode::kShortestUnion;
  const auto dr_su2 = run_fct_experiment(dring.graph, dring_tm, cfg);

  // Flat medians win.
  EXPECT_LT(dr_ecmp.median_ms(), ls_res.median_ms());
  EXPECT_LT(dr_su2.median_ms(), ls_res.median_ms());
  // ECMP's missing path diversity shows in DRing's tail; SU(2) fixes it.
  EXPECT_LT(dr_su2.p99_ms(), dr_ecmp.p99_ms());
  EXPECT_LT(dr_su2.p99_ms(), ls_res.p99_ms());
}

TEST(CsThroughput, FlowCountAndRatesPositive) {
  const auto g = topo::make_dring(5, 2, 4).graph;
  ThroughputConfig cfg;
  const auto r = run_cs_throughput(g, 8, 8, cfg);
  EXPECT_EQ(r.flows, 64u);
  EXPECT_GT(r.mean_bps, 0.0);
  EXPECT_LE(r.mean_bps, 10e9 + 1);
}

TEST(CsThroughput, IncastBottlenecksAtReceiverNic) {
  const auto g = topo::make_dring(5, 2, 4).graph;
  ThroughputConfig cfg;
  // Many clients, one server: total capped by the server NIC.
  const auto r = run_cs_throughput(g, 12, 1, cfg);
  EXPECT_NEAR(r.total_bps, 10e9, 1e6);
}

TEST(CsThroughput, ShortestUnionHelpsSkewedCell) {
  // A skewed C-S cell on DRing: few client racks bursting. SU(2) should
  // match or beat ECMP.
  const auto g = topo::make_dring(6, 2, 6).graph;
  ThroughputConfig ecmp, su;
  ecmp.mode = sim::RoutingMode::kEcmp;
  su.mode = sim::RoutingMode::kShortestUnion;
  const auto a = run_cs_throughput(g, 6, 30, ecmp);
  const auto b = run_cs_throughput(g, 6, 30, su);
  EXPECT_GE(b.total_bps, 0.95 * a.total_bps);
}

TEST(CsThroughput, DRingBeatsLeafSpineOnSkewedCells) {
  // Figure 5's shape: for |C| << |S| the flat DRing outperforms the
  // equal-equipment leaf-spine, approaching the 2x UDF prediction.
  const Scenario s{.x = 6, .y = 2, .dring_supernodes = 10, .seed = 1};
  const auto ls = s.leaf_spine();
  const auto dr = s.dring().graph;
  ThroughputConfig cfg;
  cfg.mode = sim::RoutingMode::kShortestUnion;
  // One bursting rack's worth of clients, servers spread wide.
  const int c = 4, srv = 24;
  const auto ls_res = run_cs_throughput(ls, c, srv, cfg);
  const auto dr_res = run_cs_throughput(dr, c, srv, cfg);
  EXPECT_GT(dr_res.total_bps, ls_res.total_bps);
}

TEST(PathSampler, EcmpPathsAreShortest) {
  const auto g = topo::make_dring(6, 2, 1).graph;
  PathSampler sampler(g, sim::RoutingMode::kEcmp, 2);
  Rng rng(3);
  const auto dist = topo::all_pairs_distances(g);
  for (int trial = 0; trial < 200; ++trial) {
    const auto src = static_cast<topo::NodeId>(rng.uniform(
        static_cast<std::uint64_t>(g.num_switches())));
    const auto dst = static_cast<topo::NodeId>(rng.uniform(
        static_cast<std::uint64_t>(g.num_switches())));
    if (src == dst) continue;
    const auto p = sampler.sample(src, dst, rng);
    EXPECT_EQ(routing::path_length(p),
              dist[static_cast<std::size_t>(src)]
                  [static_cast<std::size_t>(dst)]);
  }
}

TEST(PathSampler, ShortestUnionPathsWithinSuSet) {
  const auto g = topo::make_dring(5, 2, 1).graph;
  PathSampler sampler(g, sim::RoutingMode::kShortestUnion, 2);
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    const auto src = static_cast<topo::NodeId>(rng.uniform(
        static_cast<std::uint64_t>(g.num_switches())));
    const auto dst = static_cast<topo::NodeId>(rng.uniform(
        static_cast<std::uint64_t>(g.num_switches())));
    if (src == dst) continue;
    const auto p = sampler.sample(src, dst, rng);
    const auto su = routing::shortest_union_paths(g, src, dst, 2, 8192);
    EXPECT_TRUE(std::find(su.begin(), su.end(), p) != su.end());
  }
}

TEST(FluidFctExperiment, CompletesAndTracksPacketOrdering) {
  const auto g = topo::make_dring(6, 2, 6).graph;
  core::FctConfig cfg;
  cfg.net.mode = sim::RoutingMode::kShortestUnion;
  cfg.flowgen.offered_load_bps = 1e9 * g.total_servers() * 0.3;
  cfg.flowgen.window = 2 * units::kMillisecond;
  cfg.seed = 9;
  const auto tm = workload::RackTm::uniform(g);
  const auto fluid = core::run_fct_experiment_fluid(g, tm, cfg);
  const auto packet = core::run_fct_experiment(g, tm, cfg);
  EXPECT_EQ(fluid.flows, packet.flows);  // identical generated workload
  EXPECT_GE(static_cast<double>(fluid.completed),
            0.99 * static_cast<double>(fluid.flows));
  // No slow start / RTT in the fluid model: its FCTs lower-bound TCP's.
  EXPECT_LE(fluid.median_ms(), packet.median_ms());
  EXPECT_GT(fluid.median_ms(), 0.0);
}

TEST(FluidFctExperiment, DeterministicPerSeed) {
  const auto g = topo::make_dring(5, 2, 4).graph;
  core::FctConfig cfg;
  cfg.flowgen.offered_load_bps = 20e9;
  cfg.flowgen.window = units::kMillisecond;
  cfg.seed = 4;
  const auto tm = workload::RackTm::uniform(g);
  const auto a = core::run_fct_experiment_fluid(g, tm, cfg);
  const auto b = core::run_fct_experiment_fluid(g, tm, cfg);
  EXPECT_DOUBLE_EQ(a.median_ms(), b.median_ms());
  EXPECT_DOUBLE_EQ(a.p99_ms(), b.p99_ms());
}

TEST(CsThroughputPacket, TracksFluidRatio) {
  // The packet-measured DRing/leaf-spine ratio for a skewed cell lands
  // near the fluid model's (the paper's own Fig. 5 methodology).
  const Scenario s{.x = 12, .y = 4, .dring_supernodes = 10, .seed = 1};
  const auto ls = s.leaf_spine();
  const auto dr = s.dring().graph;
  core::ThroughputConfig cfg;
  cfg.seed = 3;
  cfg.max_pairs = 500;
  const Time duration = 3 * units::kMillisecond;
  const int c = 8, srv = 40;

  cfg.mode = sim::RoutingMode::kEcmp;
  const double ls_fluid = core::run_cs_throughput(ls, c, srv, cfg).mean_bps;
  const double ls_packet =
      core::run_cs_throughput_packet(ls, c, srv, cfg, duration).mean_bps;
  cfg.mode = sim::RoutingMode::kShortestUnion;
  const double dr_fluid = core::run_cs_throughput(dr, c, srv, cfg).mean_bps;
  const double dr_packet =
      core::run_cs_throughput_packet(dr, c, srv, cfg, duration).mean_bps;

  const double fluid_ratio = dr_fluid / ls_fluid;
  const double packet_ratio = dr_packet / ls_packet;
  EXPECT_GT(packet_ratio, 1.0);  // flat wins the skewed cell in both
  EXPECT_NEAR(packet_ratio, fluid_ratio, 0.35 * fluid_ratio);
  // TCP goodput is below the fluid ideal but the same order.
  EXPECT_LT(dr_packet, dr_fluid * 1.05);
  EXPECT_GT(dr_packet, dr_fluid * 0.5);
}

TEST(PathSampler, SameTorReturnsTrivialPath) {
  const auto g = topo::make_dring(5, 2, 2).graph;
  PathSampler sampler(g, sim::RoutingMode::kEcmp, 2);
  Rng rng(1);
  EXPECT_EQ(sampler.sample(3, 3, rng), routing::Path{3});
}

}  // namespace
}  // namespace spineless::core
