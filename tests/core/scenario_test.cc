#include "core/scenario.h"

#include <gtest/gtest.h>

#include "core/udf_report.h"
#include "topo/analysis.h"

namespace spineless::core {
namespace {

TEST(Scenario, SmallDefaultsAreConsistent) {
  const Scenario s = Scenario::small();
  EXPECT_EQ(s.x / s.y, 3);  // industry 3:1 oversubscription
  const auto ls = s.leaf_spine();
  EXPECT_EQ(ls.num_switches(), s.num_switches());
  EXPECT_EQ(ls.total_servers(), s.leaf_spine_servers());
}

TEST(Scenario, PaperConfigMatchesSection51) {
  const Scenario p = Scenario::paper();
  EXPECT_EQ(p.x, 48);
  EXPECT_EQ(p.y, 16);
  const auto ls = p.leaf_spine();
  EXPECT_EQ(ls.total_servers(), 3072);             // "3072 servers"
  EXPECT_EQ(topo::leaf_spine_num_leaves(p.x, p.y), 64);  // "64 racks"
  const auto d = p.dring();
  EXPECT_EQ(d.graph.num_switches(), 80);  // "80 racks"
  // "2988 servers overall" — exact count depends on the ring arrangement
  // of the uneven supernodes (see builders_test); ours lands at 2992.
  EXPECT_NEAR(d.graph.total_servers(), 2988, 6);
  EXPECT_EQ(d.supernodes, 12);  // "12 supernodes"
}

TEST(Scenario, EqualEquipmentAcrossTopologies) {
  const Scenario s = Scenario::small();
  const auto ls = s.leaf_spine();
  const auto rrg = s.rrg();
  EXPECT_EQ(rrg.num_switches(), ls.num_switches());
  // Same port budget everywhere.
  for (topo::NodeId n = 0; n < rrg.num_switches(); ++n)
    EXPECT_LE(rrg.ports_used(n), s.ports_per_switch());
}

TEST(UdfReport, ClosedFormIsTwoAndMeasuredClose) {
  const UdfReport rep = make_udf_report(Scenario::small());
  EXPECT_DOUBLE_EQ(rep.udf_closed_form, 2.0);
  EXPECT_NEAR(rep.udf_rrg, 2.0, 0.15);
  // DRing trades some server ports for ring links; its UDF is in the same
  // ballpark (flatness is what matters, not the exact wiring).
  EXPECT_GT(rep.udf_dring, 1.2);
}

TEST(UdfReport, FlatTopologiesHaveHigherNsr) {
  const UdfReport rep = make_udf_report(Scenario::small());
  EXPECT_GT(rep.rrg.nsr.mean, rep.leaf_spine.nsr.mean);
  EXPECT_GT(rep.dring.nsr.mean, rep.leaf_spine.nsr.mean);
}

TEST(UdfReport, PopulatesStructuralStats) {
  const UdfReport rep = make_udf_report(Scenario::small());
  EXPECT_EQ(rep.leaf_spine.paths.diameter, 2);
  EXPECT_GT(rep.rrg.bisection_upper, 0);
  EXPECT_GT(rep.dring.servers, 0);
}

}  // namespace
}  // namespace spineless::core
