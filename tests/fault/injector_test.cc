// In-band failure detection: BFD hello/hold timing, gray-failure
// (non-)detection, checksum discard, and port degradation.
#include "fault/injector.h"

#include <gtest/gtest.h>

#include "fault/degradation.h"
#include "sim/tcp.h"
#include "topo/builders.h"

namespace spineless::fault {
namespace {

using sim::FlowDriver;
using sim::NetworkConfig;
using sim::TcpConfig;

topo::Graph diamond() {
  topo::Graph g(4);
  g.add_link(0, 1);  // link 0
  g.add_link(0, 2);  // link 1
  g.add_link(1, 3);  // link 2
  g.add_link(2, 3);  // link 3
  g.set_servers(0, 2);
  g.set_servers(3, 2);
  return g;
}

topo::Graph pair_graph() {
  topo::Graph g(2);
  g.add_link(0, 1);
  g.set_servers(0, 1);
  g.set_servers(1, 1);
  return g;
}

TEST(FaultInjector, OutageWindowIsDetectionPlusRepairDelay) {
  const topo::Graph g = diamond();
  NetworkConfig ncfg;
  sim::Network net(g, ncfg);
  const auto plan = FaultPlan::parse("flap link=0 down=2ms up=8ms", g, 1);
  FaultInjectorConfig cfg;
  FaultInjector inj(net, plan, cfg);
  sim::Simulator sim;
  inj.arm(sim, 20 * units::kMillisecond);
  sim.run_until(20 * units::kMillisecond);

  const auto r = inj.report(20 * units::kMillisecond);
  ASSERT_EQ(r.outages.size(), 1u);
  const auto& o = r.outages[0];
  EXPECT_EQ(o.link, 0);
  EXPECT_EQ(o.t_down, 2 * units::kMillisecond);
  // Detection = hold expiry: after the last pre-failure hello plus the hold
  // time, at most one hello interval (plus the in-flight slack) late.
  EXPECT_GT(o.t_detected, o.t_down);
  EXPECT_LE(o.t_detected, o.t_down + inj.hold_time() + cfg.hello_interval +
                              2 * ncfg.link_delay);
  // The measured outage window decomposes exactly into detection delay plus
  // the control-plane reaction (incremental reconvergence) time.
  EXPECT_EQ(o.t_routed_out, o.t_detected + cfg.repair_delay);
  EXPECT_EQ(o.t_routed_out - o.t_down,
            (o.t_detected - o.t_down) + cfg.repair_delay);
  // Restore path: first hello across the revived link drives re-insertion.
  EXPECT_EQ(o.t_restored, 8 * units::kMillisecond);
  EXPECT_GE(o.t_up_detected, o.t_restored);
  EXPECT_LE(o.t_up_detected,
            o.t_restored + cfg.hello_interval + 2 * ncfg.link_delay);
  EXPECT_EQ(o.t_routed_in, o.t_up_detected + cfg.repair_delay);
  // Blackhole window = failure until the tables stopped using the link.
  EXPECT_DOUBLE_EQ(r.blackhole_seconds,
                   units::to_seconds(o.t_routed_out - o.t_down));
}

TEST(FaultInjector, FlapShorterThanHoldGoesUndetectedButBlackholes) {
  const topo::Graph g = diamond();
  sim::Network net(g, NetworkConfig{});
  // 80us < one hello interval: each direction loses at most one hello, so
  // no gap can reach the hold time (flaps near hold - interval can still
  // trip a session whose hellos straddle the window).
  const auto plan = FaultPlan::parse("flap link=0 down=2ms up=2.08ms", g, 1);
  FaultInjector inj(net, plan, FaultInjectorConfig{});
  ASSERT_GT(inj.hold_time(), parse_time("80us"));
  sim::Simulator sim;
  inj.arm(sim, 10 * units::kMillisecond);
  sim.run_until(10 * units::kMillisecond);

  const auto r = inj.report(10 * units::kMillisecond);
  ASSERT_EQ(r.outages.size(), 1u);
  EXPECT_EQ(r.outages[0].t_detected, -1);    // control plane never noticed
  EXPECT_EQ(r.outages[0].t_routed_out, -1);
  EXPECT_EQ(r.outages[0].t_restored,
            2 * units::kMillisecond + 80 * units::kMicrosecond);
  EXPECT_DOUBLE_EQ(r.blackhole_seconds, 80e-6);  // but packets still died
}

TEST(FaultInjector, MildGrayFailurePassesHellosUndetected) {
  const topo::Graph g = diamond();
  sim::Network net(g, NetworkConfig{});
  const auto plan =
      FaultPlan::parse("gray link=0 drop=0.02 from=1ms until=9ms", g, 42);
  FaultInjector inj(net, plan, FaultInjectorConfig{});
  sim::Simulator sim;
  inj.arm(sim, 12 * units::kMillisecond);
  sim.run_until(12 * units::kMillisecond);

  const auto r = inj.report(12 * units::kMillisecond);
  EXPECT_TRUE(r.outages.empty());  // 2% loss never breaks the hold window
  ASSERT_EQ(r.gray_windows.size(), 1u);
  EXPECT_FALSE(r.gray_windows[0].detected);
  EXPECT_EQ(r.gray_windows[0].from, units::kMillisecond);
  EXPECT_EQ(r.gray_windows[0].until, 9 * units::kMillisecond);
  EXPECT_EQ(r.undetected_gray_windows, 1);
}

TEST(FaultInjector, TotalGrayLossTripsBfdWithoutPhysicalFailure) {
  const topo::Graph g = diamond();
  sim::Network net(g, NetworkConfig{});
  const auto plan =
      FaultPlan::parse("gray link=0 drop=1.0 from=1ms until=5ms", g, 42);
  FaultInjectorConfig cfg;
  FaultInjector inj(net, plan, cfg);
  sim::Simulator sim;
  inj.arm(sim, 15 * units::kMillisecond);
  sim.run_until(15 * units::kMillisecond);

  const auto r = inj.report(15 * units::kMillisecond);
  ASSERT_EQ(r.outages.size(), 1u);
  const auto& o = r.outages[0];
  EXPECT_EQ(o.t_down, -1);  // the link never went physically down
  EXPECT_GT(o.t_detected, units::kMillisecond);
  EXPECT_EQ(o.t_routed_out, o.t_detected + cfg.repair_delay);
  EXPECT_GE(o.t_up_detected, 5 * units::kMillisecond);  // hellos resumed
  EXPECT_EQ(o.t_routed_in, o.t_up_detected + cfg.repair_delay);
  ASSERT_EQ(r.gray_windows.size(), 1u);
  EXPECT_TRUE(r.gray_windows[0].detected);
  EXPECT_EQ(r.undetected_gray_windows, 0);
  EXPECT_DOUBLE_EQ(r.blackhole_seconds, 0.0);  // drops were gray, not blackhole
}

TEST(FaultInjector, CorruptedPacketsFailReceiverChecksumAndFlowRecovers) {
  const topo::Graph g = pair_graph();
  sim::Network net(g, NetworkConfig{});
  FlowDriver driver(net, TcpConfig{});
  const auto plan =
      FaultPlan::parse("gray link=0 corrupt=1.0 drop=0 from=1ms until=3ms", g,
                       9);
  FaultInjector inj(net, plan, FaultInjectorConfig{});
  sim::Simulator sim;
  driver.add_flow(sim, 0, 1, 2'000'000, 0);
  inj.arm(sim, 200 * units::kMillisecond);
  sim.run_until(200 * units::kMillisecond);

  // Corrupted data crossed the fabric but was discarded by the checksum;
  // corrupted hellos count as lost, so BFD tripped even though nothing was
  // dropped in-network.
  EXPECT_GT(net.stats().corrupt_drops, 0);
  const auto r = inj.report(200 * units::kMillisecond);
  ASSERT_EQ(r.outages.size(), 1u);
  EXPECT_EQ(r.outages[0].t_down, -1);
  EXPECT_GE(r.outages[0].t_routed_in, 0);
  // The flow stalls through the corruption window and is rescued by its
  // retransmission timer once the link is clean again.
  EXPECT_EQ(driver.completed_flows(), 1u);
  EXPECT_EQ(DegradationMonitor::flows_rescued_by_rto(driver), 1u);
}

TEST(FaultInjector, DegradedPortSlowsTheFlowDown) {
  const auto fct_with = [](const std::string& spec) {
    const topo::Graph g = pair_graph();
    sim::Network net(g, NetworkConfig{});
    FlowDriver driver(net, TcpConfig{});
    sim::Simulator sim;
    driver.add_flow(sim, 0, 1, 5'000'000, 0);
    FaultPlan plan = FaultPlan::parse(spec, g, 0);
    FaultInjector inj(net, plan, FaultInjectorConfig{});
    inj.arm(sim, 500 * units::kMillisecond);
    sim.run_until(500 * units::kMillisecond);
    EXPECT_EQ(driver.completed_flows(), 1u);
    return driver.flow(0).record().fct();
  };
  const Time clean = fct_with("");
  const Time degraded = fct_with("degrade link=0 rate=0.25 from=0ns");
  EXPECT_GT(degraded, 2 * clean);
}

// Config validation: a structured error naming the offending value, not a
// silent nondeterministic run. Each clause of validate() fires on its own.
TEST(FaultInjectorConfig, ValidateRejectsRepairDelayBelowLinkDelay) {
  FaultInjectorConfig cfg;
  cfg.repair_delay = 10;  // ps, far below any real link delay
  try {
    cfg.validate(/*link_delay=*/units::kMicrosecond);
    FAIL() << "validate accepted repair_delay < link_delay";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("repair_delay"), std::string::npos) << what;
    EXPECT_NE(what.find("10ps"), std::string::npos) << what;
    EXPECT_NE(what.find("lookahead"), std::string::npos) << what;
  }
}

TEST(FaultInjectorConfig, ValidateRejectsNonPositiveHelloInterval) {
  FaultInjectorConfig cfg;
  cfg.hello_interval = 0;
  try {
    cfg.validate(/*link_delay=*/0);
    FAIL() << "validate accepted hello_interval == 0";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("hello_interval must be positive"),
              std::string::npos)
        << e.what();
  }
}

TEST(FaultInjectorConfig, ValidateRejectsHoldCountBelowOne) {
  FaultInjectorConfig cfg;
  cfg.hold_count = 0;
  try {
    cfg.validate(/*link_delay=*/0);
    FAIL() << "validate accepted hold_count == 0";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("hold_count must be >= 1"),
              std::string::npos)
        << e.what();
  }
}

// arm() is the enforcement point: a live injector with a bad config must
// throw before scheduling anything.
TEST(FaultInjectorConfig, ArmValidates) {
  const topo::Graph g = pair_graph();
  sim::Network net(g, NetworkConfig{});
  const auto plan = FaultPlan::parse("fail link=0 at=1ms", g, 1);
  FaultInjectorConfig cfg;
  cfg.repair_delay = 0;
  FaultInjector inj(net, plan, cfg);
  sim::Simulator sim;
  EXPECT_THROW(inj.arm(sim, 10 * units::kMillisecond), Error);
}

TEST(FaultInjectorConfig, ValidateAcceptsDefaults) {
  FaultInjectorConfig cfg;
  EXPECT_NO_THROW(cfg.validate(/*link_delay=*/units::kMicrosecond));
}

}  // namespace
}  // namespace spineless::fault
