// A FaultPlan run — BFD detections, gray-link RNG draws, incremental table
// repairs, degradation samples — must replay byte-identically under any
// intra_jobs split. The reports are JSON strings with no wall-clock
// content, so the comparison is literal string equality.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/degradation.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "sim/sharded_engine.h"
#include "sim/tcp.h"
#include "topo/builders.h"

namespace spineless::fault {
namespace {

using sim::FlowDriver;
using sim::Network;
using sim::NetworkConfig;
using sim::ShardedEngine;
using sim::TcpConfig;

constexpr Time kDeadline = 20 * units::kMillisecond;

struct FlowPrint {
  Time start = 0;
  Time finish = 0;
  std::int64_t retransmits = 0;
  std::int64_t timeouts = 0;
  bool operator==(const FlowPrint&) const = default;
};

struct RunPrint {
  std::uint64_t events = 0;
  std::int64_t queue_drops = 0;
  std::int64_t blackhole_drops = 0;
  std::int64_t gray_drops = 0;
  std::int64_t corrupt_drops = 0;
  std::int64_t delivered_bytes = 0;
  std::vector<FlowPrint> flows;
  std::string injector_json;
  std::string monitor_json;
  bool operator==(const RunPrint&) const = default;
};

RunPrint run_fault_scenario(int intra, int reactor_threads = 0) {
  const auto d = topo::make_dring(6, 2, 2);
  NetworkConfig cfg;
  cfg.mode = sim::RoutingMode::kShortestUnion;
  cfg.intra_jobs = intra;
  cfg.reactor_threads = reactor_threads;
  Network net(d.graph, cfg);
  FlowDriver driver(net, TcpConfig{});
  const auto plan = FaultPlan::parse(
      "flap link=0 down=2ms up=6ms;"
      " gray link=5 drop=0.05 corrupt=0.01 from=1ms until=9ms;"
      " degrade link=9 rate=0.5 from=3ms until=12ms",
      d.graph, 42);
  FaultInjector inj(net, plan, FaultInjectorConfig{});
  DegradationMonitor mon(net, 250 * units::kMicrosecond);

  const auto setup = [&](sim::Simulator& sim) {
    const int hosts = d.graph.total_servers();
    // Flows large enough to still be in flight across the gray window
    // (1-9ms) — otherwise the gray RNG never draws and the test is
    // vacuous.
    for (int i = 0; i < 16; ++i)
      driver.add_flow(sim, i % hosts, (i * 5 + 3) % hosts, 10'000'000,
                      i * units::kMicrosecond);
    inj.arm(sim, kDeadline);
    mon.start(sim, 0, kDeadline);
  };

  RunPrint out;
  if (intra == 1) {
    sim::Simulator sim;
    setup(sim);
    sim.run_until(kDeadline);
    out.events = sim.events_processed();
  } else {
    ShardedEngine engine(net);
    setup(engine.control());
    engine.run_until(kDeadline);
    out.events = engine.events_processed();
  }

  const auto stats = net.stats();
  out.queue_drops = stats.queue_drops;
  out.blackhole_drops = stats.blackhole_drops;
  out.gray_drops = stats.gray_drops;
  out.corrupt_drops = stats.corrupt_drops;
  out.delivered_bytes = stats.delivered_bytes;
  for (std::size_t i = 0; i < driver.num_flows(); ++i) {
    const auto& rec = driver.flow(static_cast<std::int32_t>(i)).record();
    out.flows.push_back(
        FlowPrint{rec.start, rec.finish, rec.retransmits, rec.timeouts});
  }
  out.injector_json = inj.report_json(kDeadline);
  out.monitor_json = mon.to_json();
  return out;
}

TEST(FaultDeterminism, PlanReplaysByteIdenticallyAcrossIntraJobs) {
  const RunPrint serial = run_fault_scenario(1);
  // The scenario must actually exercise the fault machinery, or the
  // determinism claim is vacuous.
  ASSERT_GT(serial.gray_drops + serial.corrupt_drops, 0);
  ASSERT_NE(serial.injector_json.find("\"t_routed_in\""), std::string::npos);

  for (const int intra : {2, 4, 7}) {
    SCOPED_TRACE("intra_jobs=" + std::to_string(intra));
    const RunPrint sharded = run_fault_scenario(intra);
    EXPECT_EQ(serial.injector_json, sharded.injector_json);
    EXPECT_EQ(serial.monitor_json, sharded.monitor_json);
    EXPECT_EQ(serial.events, sharded.events);
    ASSERT_EQ(serial.flows.size(), sharded.flows.size());
    for (std::size_t i = 0; i < serial.flows.size(); ++i) {
      SCOPED_TRACE("flow " + std::to_string(i));
      EXPECT_EQ(serial.flows[i], sharded.flows[i]);
    }
    EXPECT_EQ(serial, sharded);
  }

  // Fault plans over real reactor threads (forced past the single-core
  // auto resolve): the cell the TSAN pass interleaves.
  EXPECT_EQ(serial, run_fault_scenario(4, /*reactor_threads=*/4));
}

}  // namespace
}  // namespace spineless::fault
