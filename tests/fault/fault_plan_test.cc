// FaultPlan spec parsing: grammar, expansion, ordering, and validation.
#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include "topo/builders.h"
#include "util/error.h"

namespace spineless::fault {
namespace {

using Kind = FaultAction::Kind;

topo::Graph square() {
  topo::Graph g(4);
  g.add_link(0, 1);  // link 0
  g.add_link(1, 2);  // link 1
  g.add_link(2, 3);  // link 2
  g.add_link(3, 0);  // link 3
  return g;
}

TEST(ParseTime, SuffixesAndFractions) {
  EXPECT_EQ(parse_time("250ns"), 250 * units::kNanosecond);
  EXPECT_EQ(parse_time("1.5us"), 1'500 * units::kNanosecond);
  EXPECT_EQ(parse_time("2ms"), 2 * units::kMillisecond);
  EXPECT_EQ(parse_time("0.01s"), 10 * units::kMillisecond);
  EXPECT_EQ(parse_time("0ns"), 0);
}

TEST(ParseTime, RejectsMalformed) {
  EXPECT_THROW(parse_time("2"), Error);       // no suffix
  EXPECT_THROW(parse_time("2m"), Error);      // unknown suffix
  EXPECT_THROW(parse_time("-1ms"), Error);    // negative
  EXPECT_THROW(parse_time("fast"), Error);    // not a number
}

TEST(FaultPlan, FlapExpandsToDownAndUp) {
  const auto g = square();
  const auto plan = FaultPlan::parse("flap link=1 down=2ms up=6ms", g, 7);
  ASSERT_EQ(plan.actions().size(), 2u);
  EXPECT_EQ(plan.actions()[0].kind, Kind::kLinkDown);
  EXPECT_EQ(plan.actions()[0].at, 2 * units::kMillisecond);
  EXPECT_EQ(plan.actions()[0].link, 1);
  EXPECT_EQ(plan.actions()[1].kind, Kind::kLinkUp);
  EXPECT_EQ(plan.actions()[1].at, 6 * units::kMillisecond);
  EXPECT_EQ(plan.seed(), 7u);
}

TEST(FaultPlan, FailNeverRecovers) {
  const auto plan = FaultPlan::parse("fail link=2 at=1ms", square(), 0);
  ASSERT_EQ(plan.actions().size(), 1u);
  EXPECT_EQ(plan.actions()[0].kind, Kind::kLinkDown);
  EXPECT_EQ(plan.actions()[0].link, 2);
}

TEST(FaultPlan, SwitchFlapsEveryIncidentLink) {
  const auto g = square();
  const auto plan = FaultPlan::parse("switch node=0 down=1ms up=2ms", g, 0);
  // Node 0 touches links 0 and 3: two downs then two ups.
  ASSERT_EQ(plan.actions().size(), 4u);
  EXPECT_EQ(plan.actions()[0].kind, Kind::kLinkDown);
  EXPECT_EQ(plan.actions()[1].kind, Kind::kLinkDown);
  EXPECT_EQ(plan.actions()[2].kind, Kind::kLinkUp);
  EXPECT_EQ(plan.actions()[3].kind, Kind::kLinkUp);
  EXPECT_EQ(plan.actions()[0].link, 0);
  EXPECT_EQ(plan.actions()[1].link, 3);
}

TEST(FaultPlan, GrayDefaultsAndBounds) {
  const auto g = square();
  const auto plan =
      FaultPlan::parse("gray link=0 drop=0.01 from=1ms", g, 0);
  ASSERT_EQ(plan.actions().size(), 1u);  // no until => active forever
  EXPECT_EQ(plan.actions()[0].kind, Kind::kGrayOn);
  EXPECT_DOUBLE_EQ(plan.actions()[0].drop_prob, 0.01);
  EXPECT_DOUBLE_EQ(plan.actions()[0].corrupt_prob, 0.0);

  const auto timed = FaultPlan::parse(
      "gray link=0 drop=0.01 corrupt=0.001 from=1ms until=9ms", g, 0);
  ASSERT_EQ(timed.actions().size(), 2u);
  EXPECT_DOUBLE_EQ(timed.actions()[0].corrupt_prob, 0.001);
  EXPECT_EQ(timed.actions()[1].kind, Kind::kGrayOff);
  EXPECT_EQ(timed.actions()[1].at, 9 * units::kMillisecond);
}

TEST(FaultPlan, DegradeScalesRate) {
  const auto plan = FaultPlan::parse(
      "degrade link=3 rate=0.5 from=1ms until=8ms", square(), 0);
  ASSERT_EQ(plan.actions().size(), 2u);
  EXPECT_EQ(plan.actions()[0].kind, Kind::kDegradeOn);
  EXPECT_DOUBLE_EQ(plan.actions()[0].rate_factor, 0.5);
  EXPECT_EQ(plan.actions()[1].kind, Kind::kDegradeOff);
}

TEST(FaultPlan, ActionsSortedByTimeStably) {
  const auto g = square();
  // Clauses deliberately out of time order; a tie at 2ms must keep spec
  // order (gray before the flap's down).
  const auto plan = FaultPlan::parse(
      "flap link=1 down=2ms up=6ms; gray link=0 drop=0.1 from=2ms;"
      " fail link=2 at=1ms",
      g, 0);
  ASSERT_EQ(plan.actions().size(), 4u);
  EXPECT_EQ(plan.actions()[0].at, 1 * units::kMillisecond);
  EXPECT_EQ(plan.actions()[0].kind, Kind::kLinkDown);  // the fail
  EXPECT_EQ(plan.actions()[1].at, 2 * units::kMillisecond);
  EXPECT_EQ(plan.actions()[1].kind, Kind::kLinkDown);  // flap: spec order
  EXPECT_EQ(plan.actions()[2].at, 2 * units::kMillisecond);
  EXPECT_EQ(plan.actions()[2].kind, Kind::kGrayOn);
  EXPECT_EQ(plan.actions()[3].at, 6 * units::kMillisecond);
}

TEST(FaultPlan, EmptyClausesIgnored) {
  const auto plan = FaultPlan::parse("; fail link=0 at=1ms ;", square(), 0);
  EXPECT_EQ(plan.actions().size(), 1u);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  const auto g = square();
  EXPECT_THROW(FaultPlan::parse("explode link=0 at=1ms", g, 0), Error);
  EXPECT_THROW(FaultPlan::parse("fail link=9 at=1ms", g, 0), Error);
  EXPECT_THROW(FaultPlan::parse("fail at=1ms", g, 0), Error);
  EXPECT_THROW(FaultPlan::parse("fail link at=1ms", g, 0), Error);
  EXPECT_THROW(FaultPlan::parse("flap link=0 down=2ms up=2ms", g, 0), Error);
  EXPECT_THROW(FaultPlan::parse("switch node=7 down=1ms up=2ms", g, 0), Error);
  EXPECT_THROW(FaultPlan::parse("gray link=0 drop=1.5 from=0ms", g, 0), Error);
  EXPECT_THROW(
      FaultPlan::parse("gray link=0 drop=0.6 corrupt=0.6 from=0ms", g, 0),
      Error);
  EXPECT_THROW(FaultPlan::parse("degrade link=0 rate=0 from=0ms", g, 0),
               Error);
  EXPECT_THROW(FaultPlan::parse("degrade link=0 rate=2 from=0ms", g, 0),
               Error);
}

}  // namespace
}  // namespace spineless::fault
