// FaultPlan spec parsing: grammar, expansion, ordering, and validation.
#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include "topo/builders.h"
#include "util/error.h"

namespace spineless::fault {
namespace {

using Kind = FaultAction::Kind;

topo::Graph square() {
  topo::Graph g(4);
  g.add_link(0, 1);  // link 0
  g.add_link(1, 2);  // link 1
  g.add_link(2, 3);  // link 2
  g.add_link(3, 0);  // link 3
  return g;
}

TEST(ParseTime, SuffixesAndFractions) {
  EXPECT_EQ(parse_time("250ns"), 250 * units::kNanosecond);
  EXPECT_EQ(parse_time("1.5us"), 1'500 * units::kNanosecond);
  EXPECT_EQ(parse_time("2ms"), 2 * units::kMillisecond);
  EXPECT_EQ(parse_time("0.01s"), 10 * units::kMillisecond);
  EXPECT_EQ(parse_time("0ns"), 0);
}

TEST(ParseTime, RejectsMalformed) {
  EXPECT_THROW(parse_time("2"), Error);       // no suffix
  EXPECT_THROW(parse_time("2m"), Error);      // unknown suffix
  EXPECT_THROW(parse_time("-1ms"), Error);    // negative
  EXPECT_THROW(parse_time("fast"), Error);    // not a number
}

TEST(FaultPlan, FlapExpandsToDownAndUp) {
  const auto g = square();
  const auto plan = FaultPlan::parse("flap link=1 down=2ms up=6ms", g, 7);
  ASSERT_EQ(plan.actions().size(), 2u);
  EXPECT_EQ(plan.actions()[0].kind, Kind::kLinkDown);
  EXPECT_EQ(plan.actions()[0].at, 2 * units::kMillisecond);
  EXPECT_EQ(plan.actions()[0].link, 1);
  EXPECT_EQ(plan.actions()[1].kind, Kind::kLinkUp);
  EXPECT_EQ(plan.actions()[1].at, 6 * units::kMillisecond);
  EXPECT_EQ(plan.seed(), 7u);
}

TEST(FaultPlan, FailNeverRecovers) {
  const auto plan = FaultPlan::parse("fail link=2 at=1ms", square(), 0);
  ASSERT_EQ(plan.actions().size(), 1u);
  EXPECT_EQ(plan.actions()[0].kind, Kind::kLinkDown);
  EXPECT_EQ(plan.actions()[0].link, 2);
}

TEST(FaultPlan, SwitchFlapsEveryIncidentLink) {
  const auto g = square();
  const auto plan = FaultPlan::parse("switch node=0 down=1ms up=2ms", g, 0);
  // Node 0 touches links 0 and 3: two downs then two ups.
  ASSERT_EQ(plan.actions().size(), 4u);
  EXPECT_EQ(plan.actions()[0].kind, Kind::kLinkDown);
  EXPECT_EQ(plan.actions()[1].kind, Kind::kLinkDown);
  EXPECT_EQ(plan.actions()[2].kind, Kind::kLinkUp);
  EXPECT_EQ(plan.actions()[3].kind, Kind::kLinkUp);
  EXPECT_EQ(plan.actions()[0].link, 0);
  EXPECT_EQ(plan.actions()[1].link, 3);
}

TEST(FaultPlan, GrayDefaultsAndBounds) {
  const auto g = square();
  const auto plan =
      FaultPlan::parse("gray link=0 drop=0.01 from=1ms", g, 0);
  ASSERT_EQ(plan.actions().size(), 1u);  // no until => active forever
  EXPECT_EQ(plan.actions()[0].kind, Kind::kGrayOn);
  EXPECT_DOUBLE_EQ(plan.actions()[0].drop_prob, 0.01);
  EXPECT_DOUBLE_EQ(plan.actions()[0].corrupt_prob, 0.0);

  const auto timed = FaultPlan::parse(
      "gray link=0 drop=0.01 corrupt=0.001 from=1ms until=9ms", g, 0);
  ASSERT_EQ(timed.actions().size(), 2u);
  EXPECT_DOUBLE_EQ(timed.actions()[0].corrupt_prob, 0.001);
  EXPECT_EQ(timed.actions()[1].kind, Kind::kGrayOff);
  EXPECT_EQ(timed.actions()[1].at, 9 * units::kMillisecond);
}

TEST(FaultPlan, DegradeScalesRate) {
  const auto plan = FaultPlan::parse(
      "degrade link=3 rate=0.5 from=1ms until=8ms", square(), 0);
  ASSERT_EQ(plan.actions().size(), 2u);
  EXPECT_EQ(plan.actions()[0].kind, Kind::kDegradeOn);
  EXPECT_DOUBLE_EQ(plan.actions()[0].rate_factor, 0.5);
  EXPECT_EQ(plan.actions()[1].kind, Kind::kDegradeOff);
}

TEST(FaultPlan, ActionsSortedByTimeStably) {
  const auto g = square();
  // Clauses deliberately out of time order; a tie at 2ms must keep spec
  // order (gray before the flap's down).
  const auto plan = FaultPlan::parse(
      "flap link=1 down=2ms up=6ms; gray link=0 drop=0.1 from=2ms;"
      " fail link=2 at=1ms",
      g, 0);
  ASSERT_EQ(plan.actions().size(), 4u);
  EXPECT_EQ(plan.actions()[0].at, 1 * units::kMillisecond);
  EXPECT_EQ(plan.actions()[0].kind, Kind::kLinkDown);  // the fail
  EXPECT_EQ(plan.actions()[1].at, 2 * units::kMillisecond);
  EXPECT_EQ(plan.actions()[1].kind, Kind::kLinkDown);  // flap: spec order
  EXPECT_EQ(plan.actions()[2].at, 2 * units::kMillisecond);
  EXPECT_EQ(plan.actions()[2].kind, Kind::kGrayOn);
  EXPECT_EQ(plan.actions()[3].at, 6 * units::kMillisecond);
}

TEST(FaultPlan, EmptyClausesIgnored) {
  const auto plan = FaultPlan::parse("; fail link=0 at=1ms ;", square(), 0);
  EXPECT_EQ(plan.actions().size(), 1u);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  const auto g = square();
  EXPECT_THROW(FaultPlan::parse("explode link=0 at=1ms", g, 0), Error);
  EXPECT_THROW(FaultPlan::parse("fail link=9 at=1ms", g, 0), Error);
  EXPECT_THROW(FaultPlan::parse("fail at=1ms", g, 0), Error);
  EXPECT_THROW(FaultPlan::parse("fail link at=1ms", g, 0), Error);
  EXPECT_THROW(FaultPlan::parse("flap link=0 down=2ms up=2ms", g, 0), Error);
  EXPECT_THROW(FaultPlan::parse("switch node=7 down=1ms up=2ms", g, 0), Error);
  EXPECT_THROW(FaultPlan::parse("gray link=0 drop=1.5 from=0ms", g, 0), Error);
  EXPECT_THROW(
      FaultPlan::parse("gray link=0 drop=0.6 corrupt=0.6 from=0ms", g, 0),
      Error);
  EXPECT_THROW(FaultPlan::parse("degrade link=0 rate=0 from=0ms", g, 0),
               Error);
  EXPECT_THROW(FaultPlan::parse("degrade link=0 rate=2 from=0ms", g, 0),
               Error);
}

// Duplicate clauses targeting the same link with overlapping windows used
// to resolve silently as last-writer-wins; the parser now rejects them with
// an error naming both clauses, the link, and the fault channel.
TEST(FaultPlan, RejectsOverlappingClausesOnSameLink) {
  const auto g = square();
  const auto expect_overlap = [&](const std::string& spec,
                                  const std::string& needle) {
    try {
      FaultPlan::parse(spec, g, 0);
      FAIL() << "expected overlap rejection for: " << spec;
    } catch (const Error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("overlaps clause"), std::string::npos) << msg;
      EXPECT_NE(msg.find("disjoint time windows"), std::string::npos) << msg;
      EXPECT_NE(msg.find(needle), std::string::npos) << msg;
    }
  };
  // Two flaps of the same link with intersecting [down, up) windows.
  expect_overlap("flap link=1 down=2ms up=6ms; flap link=1 down=4ms up=8ms",
                 "link 1 (physical channel)");
  // fail never recovers, so ANY later physical clause on that link overlaps.
  expect_overlap("fail link=2 at=1ms; flap link=2 down=5ms up=6ms",
                 "link 2 (physical channel)");
  // A switch clause claims every incident link; a flap of one of them
  // inside the same window double-drives it.
  expect_overlap("switch node=0 down=1ms up=4ms; flap link=3 down=2ms up=3ms",
                 "link 3 (physical channel)");
  // Unbounded gray (no until=) overlaps any later gray on the same link.
  expect_overlap("gray link=0 drop=0.1 from=1ms; gray link=0 drop=0.2 from=5ms",
                 "link 0 (gray channel)");
  expect_overlap(
      "degrade link=0 rate=0.5 from=1ms until=9ms;"
      " degrade link=0 rate=0.25 from=8ms until=10ms",
      "link 0 (degrade channel)");
}

TEST(FaultPlan, DisjointOrCrossChannelClausesOnSameLinkAreLegal) {
  const auto g = square();
  // Back-to-back flaps: the first window's exclusive end may touch the
  // second's start.
  const auto seq = FaultPlan::parse(
      "flap link=1 down=2ms up=6ms; flap link=1 down=6ms up=8ms", g, 0);
  EXPECT_EQ(seq.actions().size(), 4u);
  // Physical, gray, and degrade are independent channels in the injector,
  // so one link may carry all three at once.
  const auto cross = FaultPlan::parse(
      "flap link=0 down=2ms up=6ms; gray link=0 drop=0.1 from=1ms until=9ms;"
      " degrade link=0 rate=0.5 from=1ms until=9ms",
      g, 0);
  EXPECT_EQ(cross.actions().size(), 6u);
}

TEST(FaultPlan, OverlapErrorNamesBothClauses) {
  const auto g = square();
  try {
    FaultPlan::parse("fail link=0 at=1ms; fail link=0 at=2ms", g, 0);
    FAIL() << "expected overlap rejection";
  } catch (const Error& e) {
    const std::string msg = e.what();
    // The later clause is reported as overlapping the earlier one.
    EXPECT_NE(msg.find("' fail link=0 at=2ms' overlaps clause 'fail link=0 "
                       "at=1ms'"),
              std::string::npos)
        << msg;
  }
}

}  // namespace
}  // namespace spineless::fault
