// Tier-1 smoke: one flap plus one gray window on a small DRing must
// produce a measurable blackhole, degrade gracefully, and recover to
// pre-fault goodput once the link is restored and re-detected.
#include <gtest/gtest.h>

#include "fault/degradation.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "sim/tcp.h"
#include "topo/builders.h"

namespace spineless::fault {
namespace {

using sim::FlowDriver;
using sim::NetworkConfig;
using sim::TcpConfig;

TEST(FaultSmoke, DRingFlapAndGrayDegradeGracefully) {
  const auto d = topo::make_dring(6, 2, 2);
  NetworkConfig cfg;
  cfg.mode = sim::RoutingMode::kShortestUnion;
  sim::Network net(d.graph, cfg);
  FlowDriver driver(net, TcpConfig{});

  const auto plan = FaultPlan::parse(
      "flap link=0 down=2ms up=6ms; gray link=5 drop=0.05 from=1ms until=8ms",
      d.graph, 7);
  FaultInjector inj(net, plan, FaultInjectorConfig{});
  DegradationMonitor mon(net, 200 * units::kMicrosecond);

  sim::Simulator sim;
  const int hosts = d.graph.total_servers();
  for (int i = 0; i < 12; ++i) {
    driver.add_flow(sim, (i * 2) % hosts, (i * 5 + 7) % hosts, 40'000'000, 0);
  }
  // Hellos must outlive the run: once they stop, every hold timer expires
  // and the "control plane" dutifully routes the whole fabric out.
  const Time deadline = 400 * units::kMillisecond;
  inj.arm(sim, deadline);
  mon.start(sim, 0, 40 * units::kMillisecond);
  sim.run_until(40 * units::kMillisecond);

  // The flap blackholed traffic for the detection + reconvergence window.
  const auto r = inj.report(40 * units::kMillisecond);
  EXPECT_GT(r.blackhole_seconds, 0.0);
  ASSERT_FALSE(r.outages.empty());
  EXPECT_GE(r.outages[0].t_routed_in, 0);  // link is back in the tables

  // Graceful degradation, not collapse: goodput after restore returns to
  // within 5% of the pre-fault baseline.
  // Post window: after the ~6.6ms routed-in instant but before the first
  // flows complete (so both windows see the same offered load).
  const double pre = mon.mean_goodput_bps(0, units::kMillisecond);
  const double post = mon.mean_goodput_bps(10 * units::kMillisecond,
                                           25 * units::kMillisecond);
  ASSERT_GT(pre, 0.0);
  EXPECT_GE(post, 0.95 * pre);

  // Every flow survives the faults (some via RTO rescue).
  sim.run_until(deadline);
  EXPECT_EQ(driver.completed_flows(), driver.num_flows());
}

}  // namespace
}  // namespace spineless::fault
