#!/usr/bin/env bash
# Full reproduction driver: build, test, run every bench, and capture the
# outputs the repository's EXPERIMENTS.md is written from.
#
#   scripts/reproduce.sh            # medium scale (seconds per bench)
#   scripts/reproduce.sh --paper    # the paper's full-scale configuration
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE_ENV=()
if [[ "${1:-}" == "--paper" ]]; then
  SCALE_ENV=(SPINELESS_PAPER_SCALE=1)
  echo "== paper-scale reproduction =="
fi

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  [[ -x "$b" && -f "$b" ]] || continue
  echo "===== $(basename "$b") =====" | tee -a bench_output.txt
  env "${SCALE_ENV[@]}" "$b" 2>/dev/null | tee -a bench_output.txt
done

echo
echo "Wrote test_output.txt and bench_output.txt"
