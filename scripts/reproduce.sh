#!/usr/bin/env bash
# Full reproduction driver: build, test, run every bench, and capture the
# outputs the repository's EXPERIMENTS.md is written from.
#
#   scripts/reproduce.sh              # medium scale (seconds per bench)
#   scripts/reproduce.sh --paper      # the paper's full-scale configuration
#   scripts/reproduce.sh --jobs=8     # fan experiment cells over 8 workers
#
# Parallelism: every bench accepts --jobs=N (default: all hardware threads,
# or the SPINELESS_JOBS environment variable when set). Results are
# byte-identical for every jobs value — per-cell seeds are pure functions
# of the cell's identity, never of scheduling order.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE_ENV=()
JOBS_FLAG=()
for arg in "$@"; do
  case "$arg" in
    --paper)
      SCALE_ENV=(SPINELESS_PAPER_SCALE=1)
      echo "== paper-scale reproduction =="
      ;;
    --jobs=*)
      JOBS_FLAG=("$arg")
      ;;
  esac
done

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  [[ -x "$b" && -f "$b" ]] || continue
  name="$(basename "$b")"
  echo "===== $name =====" | tee -a bench_output.txt
  if [[ "$name" == bench_micro ]]; then
    # google-benchmark harness: no --jobs; the JSON smoke mode is the
    # machine-readable artifact.
    env "${SCALE_ENV[@]}" "$b" --json=BENCH_micro.json \
      2>/dev/null | tee -a bench_output.txt
  else
    env "${SCALE_ENV[@]}" "$b" "${JOBS_FLAG[@]}" \
      2>/dev/null | tee -a bench_output.txt
  fi
done

echo
echo "Wrote test_output.txt, bench_output.txt, and per-bench BENCH_*.json"
