#!/usr/bin/env bash
# Full reproduction driver: build, test, run every bench, and capture the
# outputs the repository's EXPERIMENTS.md is written from.
#
#   scripts/reproduce.sh              # medium scale (seconds per bench)
#   scripts/reproduce.sh --paper      # the paper's full-scale configuration
#   scripts/reproduce.sh --jobs=8     # fan experiment cells over 8 workers
#   scripts/reproduce.sh --tsan       # ThreadSanitizer pass over the
#                                     # concurrency + fault + robustness
#                                     # + service test suites
#   scripts/reproduce.sh --asan       # Address/UB-sanitizer pass over the
#                                     # full test suite
#   scripts/reproduce.sh --ubsan      # UBSan-only pass (trap-on-UB, no
#                                     # ASAN overhead) over the
#                                     # concurrency + fault + robustness
#                                     # suites
#   scripts/reproduce.sh --resume     # re-run after a crash/^C: benches
#                                     # skip journaled cells and restart
#                                     # in-flight ones from their last
#                                     # checkpoint
#
# Parallelism: every bench accepts --jobs=N (default: all hardware threads,
# or the SPINELESS_JOBS environment variable when set) and --intra_jobs=N
# (shards per simulated cell; see doc/architecture.md). Results are
# byte-identical for every jobs and intra_jobs value — per-cell seeds are
# pure functions of the cell's identity, never of scheduling order, and the
# sharded engine replays the serial event order exactly.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE_ENV=()
JOBS_FLAG=()
RESUME_FLAG=()
TSAN=0
ASAN=0
UBSAN=0
for arg in "$@"; do
  case "$arg" in
    --paper)
      SCALE_ENV=(SPINELESS_PAPER_SCALE=1)
      echo "== paper-scale reproduction =="
      ;;
    --jobs=*)
      JOBS_FLAG=("$arg")
      ;;
    --resume)
      RESUME_FLAG=(--resume)
      echo "== resuming: finished cells come from sweep journals =="
      ;;
    --tsan)
      TSAN=1
      ;;
    --asan)
      ASAN=1
      ;;
    --ubsan)
      UBSAN=1
      ;;
  esac
done

if [[ "$TSAN" == 1 ]]; then
  # Race detection over everything that spawns threads: the experiment
  # runner, parallel table construction, the sharded engine, the fault
  # subsystem's sharded BFD sessions / incremental repairs, the
  # checkpoint/watchdog machinery, and the hybrid co-simulation window
  # loop (boundary reprogramming against live reactor threads).
  cmake -B build-tsan -G Ninja -DSPINELESS_TSAN=ON
  cmake --build build-tsan
  ctest --test-dir build-tsan -L 'concurrency|fault|robustness|hybrid|service' --output-on-failure
  exit 0
fi

if [[ "$UBSAN" == 1 ]]; then
  # UBSan alone (SPINELESS_UBSAN, -fno-sanitize-recover=all) over the same
  # label set as the TSAN pass: cheap enough to run routinely, and the
  # trap-on-UB build catches signed-overflow / misaligned-load bugs the
  # combined ASAN preset would only warn about.
  cmake -B build-ubsan -G Ninja -DSPINELESS_UBSAN=ON
  cmake --build build-ubsan
  ctest --test-dir build-ubsan -L 'concurrency|fault|robustness|hybrid|service' --output-on-failure
  exit 0
fi

if [[ "$ASAN" == 1 ]]; then
  # Address + UB sanitizers (the SPINELESS_SANITIZE CMake option) over the
  # full suite — the fault injector's dynamic session arrays and the
  # incremental CSR splicing are the newest memory-layout risks.
  cmake -B build-asan -G Ninja -DSPINELESS_SANITIZE=ON
  cmake --build build-asan
  ctest --test-dir build-asan --output-on-failure
  exit 0
fi

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  [[ -x "$b" && -f "$b" ]] || continue
  name="$(basename "$b")"
  echo "===== $name =====" | tee -a bench_output.txt
  if [[ "$name" == bench_micro ]]; then
    # google-benchmark harness: no --jobs; the JSON smoke mode is the
    # machine-readable artifact. Run serial and the intra_jobs=2 reactor
    # cell, then refresh the committed results/BENCH_micro.json baseline
    # (the pre-reactor numbers are frozen — that engine no longer exists).
    env "${SCALE_ENV[@]}" "$b" --json=BENCH_micro.json \
      2>/dev/null | tee -a bench_output.txt
    env "${SCALE_ENV[@]}" "$b" --intra_jobs=2 --json=BENCH_micro_intra2.json \
      2>/dev/null | tee -a bench_output.txt
    mkdir -p results
    {
      printf '{\n  "bench": "micro_baseline",\n'
      printf '  "scenario": "simulator_event_throughput dring(5,2,4) 50 flows x 200KB, 1s",\n'
      printf '  "before_reactor": {"engine": "two-barrier lockstep windows",\n'
      printf '                     "serial_events_per_sec": 10.7e6,\n'
      printf '                     "intra2_events_per_sec": 5.5e6,\n'
      printf '                     "intra2_overhead_pct": 48.6},\n'
      printf '  "serial": %s,\n' "$(cat BENCH_micro.json)"
      printf '  "intra_jobs_2": %s\n}\n' "$(cat BENCH_micro_intra2.json)"
    } > results/BENCH_micro.json
  elif [[ "$name" == bench_scaling ]]; then
    # Scaling sweep over intra_jobs; no --jobs (the sweep IS the
    # parallelism axis under test).
    env "${SCALE_ENV[@]}" "$b" --json=BENCH_scaling.json \
      2>/dev/null | tee -a bench_output.txt
  else
    env "${SCALE_ENV[@]}" "$b" "${JOBS_FLAG[@]}" "${RESUME_FLAG[@]}" \
      2>/dev/null | tee -a bench_output.txt
  fi
done

echo
echo "Wrote test_output.txt, bench_output.txt, and per-bench BENCH_*.json"
