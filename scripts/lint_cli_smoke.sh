#!/usr/bin/env bash
# CLI-contract smoke test for spineless_lint, run as a ctest (label lint).
# Asserts the documented exit codes (0 clean / 1 findings / 2 config-or-IO
# error), the JSON schema_version, index-dump byte determinism, and the
# accept-then-ratchet baseline behavior.
#
#   scripts/lint_cli_smoke.sh <spineless_lint-binary> <repo-root>
set -u

BIN=$1
ROOT=$2
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "lint_cli_smoke: FAIL: $1" >&2
  exit 1
}

# --- exit 0: the shipped tree is clean against the (empty) baseline ------
"$BIN" --root="$ROOT" --baseline="$ROOT/tools/lint/lint_baseline.txt" \
  --json="$TMP/findings.json" --index-dump="$TMP/idx1.json" >/dev/null \
  || fail "clean tree must exit 0"
grep -q '"schema_version": 2' "$TMP/findings.json" \
  || fail "findings JSON must carry schema_version 2"
grep -q '"schema_version": 2' "$TMP/idx1.json" \
  || fail "index dump must carry schema_version 2"

"$BIN" --root="$ROOT" --index-dump="$TMP/idx2.json" >/dev/null \
  || fail "second clean run must exit 0"
cmp -s "$TMP/idx1.json" "$TMP/idx2.json" \
  || fail "index dump must be byte-identical across runs"

# --- exit 1: a seeded hazard in a scratch tree ---------------------------
mkdir -p "$TMP/tree/src/sim" "$TMP/tree/tools/lint"
cp "$ROOT/tools/lint/lint.toml" "$TMP/tree/tools/lint/"
echo 'int jitter() { return rand() % 3; }' > "$TMP/tree/src/sim/bad.cc"
"$BIN" --root="$TMP/tree" >/dev/null
[ $? -eq 1 ] || fail "a finding must exit 1"

# --- baseline accept-then-ratchet ----------------------------------------
"$BIN" --root="$TMP/tree" --write-baseline="$TMP/base.txt" >/dev/null \
  || fail "--write-baseline must exit 0"
"$BIN" --root="$TMP/tree" --baseline="$TMP/base.txt" >/dev/null \
  || fail "a fully baselined tree must exit 0"
# A second identical hazard must NOT be absorbed by the single baseline
# entry (the match budget is a multiset, not a set).
echo 'int jitter2() { return rand() % 5; }' >> "$TMP/tree/src/sim/bad.cc"
"$BIN" --root="$TMP/tree" --baseline="$TMP/base.txt" >/dev/null
[ $? -eq 1 ] || fail "a new finding must exit 1 despite the baseline"

# --- exit 2: config / IO errors ------------------------------------------
"$BIN" --root="$TMP/no-such-dir" >/dev/null 2>&1
[ $? -eq 2 ] || fail "missing config must exit 2"
echo 'not a baseline line' > "$TMP/garbage.txt"
"$BIN" --root="$ROOT" --baseline="$TMP/garbage.txt" >/dev/null 2>&1
[ $? -eq 2 ] || fail "malformed baseline must exit 2"
"$BIN" --no-such-flag >/dev/null 2>&1
[ $? -eq 2 ] || fail "unknown flag must exit 2"

echo "lint_cli_smoke: OK"
