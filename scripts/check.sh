#!/usr/bin/env bash
# One-shot CI gate: configure + build (warnings are errors), static
# analysis (ctest -L lint, with the machine-readable findings written to
# lint_findings.json for CI to consume), then the full tier-1 test suite.
#
#   scripts/check.sh              # the whole gate
#   scripts/check.sh --no-werror  # triage mode for new toolchains
#
# Exits non-zero on the first failing stage. The lint stage runs before
# the (much slower) test suite so a determinism hazard fails in seconds.
set -euo pipefail
cd "$(dirname "$0")/.."

WERROR=ON
for arg in "$@"; do
  case "$arg" in
    --no-werror)
      WERROR=OFF
      ;;
    *)
      echo "usage: scripts/check.sh [--no-werror]" >&2
      exit 2
      ;;
  esac
done

echo "== configure + build (SPINELESS_WERROR=$WERROR) =="
cmake -B build -G Ninja -DSPINELESS_WERROR="$WERROR"
cmake --build build

echo "== static checks (spineless_lint) =="
# The JSON artifact is written even when the run is clean, so CI always
# has a machine-readable record; the exit code is the gate.
./build/tools/lint/spineless_lint --root=. --json=lint_findings.json
ctest --test-dir build -L lint --output-on-failure

echo "== tier-1 test suite =="
ctest --test-dir build --output-on-failure

echo "check.sh: all gates green (findings: lint_findings.json)"
