#!/usr/bin/env bash
# One-shot CI gate: configure + build (warnings are errors), static
# analysis (ctest -L lint, with the machine-readable findings written to
# lint_findings.json for CI to consume), then the full tier-1 test suite.
#
#   scripts/check.sh              # the whole gate
#   scripts/check.sh --no-werror  # triage mode for new toolchains
#
# Exits non-zero on the first failing stage. The lint stage runs before
# the (much slower) test suite so a determinism hazard fails in seconds.
set -euo pipefail
cd "$(dirname "$0")/.."

WERROR=ON
for arg in "$@"; do
  case "$arg" in
    --no-werror)
      WERROR=OFF
      ;;
    *)
      echo "usage: scripts/check.sh [--no-werror]" >&2
      exit 2
      ;;
  esac
done

echo "== configure + build (SPINELESS_WERROR=$WERROR) =="
cmake -B build -G Ninja -DSPINELESS_WERROR="$WERROR"
cmake --build build

echo "== static checks (spineless_lint) =="
# The JSON artifacts (findings + cross-TU symbol index) are written even
# when the run is clean, so CI always has a machine-readable record; the
# exit code is the gate. --baseline makes the gate a ratchet: any finding
# not explicitly accepted in tools/lint/lint_baseline.txt (shipped empty)
# fails the run.
./build/tools/lint/spineless_lint --root=. --json=lint_findings.json \
  --index-dump=build/lint_index.json \
  --baseline=tools/lint/lint_baseline.txt
ctest --test-dir build -L lint --output-on-failure

echo "== perf smoke (reactor-engine overhead) =="
# The sharded reactor engine must stay within 10% of the serial engine on
# one core at intra_jobs=2 (the ROADMAP steady-state target is 5%; the
# gate leaves headroom for shared-CI noise). Both runs report the best of
# three timed passes, so a single descheduling blip does not fail CI.
./build/bench/bench_micro --json=perf_smoke_serial.json
./build/bench/bench_micro --intra_jobs=2 --json=perf_smoke_intra2.json
serial_eps=$(sed -n 's/.*"events_per_sec":\([0-9.eE+-]*\).*/\1/p' perf_smoke_serial.json)
intra2_eps=$(sed -n 's/.*"events_per_sec":\([0-9.eE+-]*\).*/\1/p' perf_smoke_intra2.json)
awk -v s="$serial_eps" -v p="$intra2_eps" 'BEGIN {
  if (s <= 0 || p <= 0) { print "perf smoke: missing events_per_sec"; exit 1 }
  overhead = (s - p) / s * 100
  printf "serial %.2fM events/s, intra_jobs=2 %.2fM events/s, overhead %.1f%%\n", \
         s / 1e6, p / 1e6, overhead
  if (overhead > 10.0) { print "perf smoke: 1-core overhead above 10% gate"; exit 1 }
}'

echo "== hybrid smoke (packet/fluid co-simulation) =="
# A small hybrid cell (48-switch DRing): the binary itself asserts the
# result hash is byte-identical across intra_jobs={1,2} (exits nonzero on
# divergence); on top of that the smoke requires genuinely hybrid
# execution — nonzero packet events AND nonzero fluid windows/solves in
# every scale cell, so a regression that silently degenerates one half to
# a no-op cannot pass.
./build/bench/bench_hybrid --m=12 --hot_flows=64 --bg_flows=32 \
  --json_out=hybrid_smoke.json
awk '
  /"result_hash":/   { if ($NF + 0 != 0) hash_ok = 1 }
  /"events":/        { if ($NF + 0 > 0) pkt_ok = 1 }
  /"fluid_windows":/ { if ($NF + 0 > 0) windows_ok = 1 }
  /"fluid_solves":/  { if ($NF + 0 > 0) solves_ok = 1 }
  END {
    if (!hash_ok)    { print "hybrid smoke: no nonzero result_hash"; exit 1 }
    if (!pkt_ok)     { print "hybrid smoke: zero packet events"; exit 1 }
    if (!windows_ok) { print "hybrid smoke: zero fluid windows"; exit 1 }
    if (!solves_ok)  { print "hybrid smoke: zero fluid solves"; exit 1 }
    print "hybrid smoke: determinism hash ok, packet + fluid halves live"
  }' RS=',|\n' FS=':' hybrid_smoke.json

echo "== hybrid-fault smoke (whole-network fault tolerance) =="
# Flap a seed-sampled set of whole-graph links (region, cut, and external
# alike) under long-lived flows on a 48-switch cell. The binary gates
# flow accounting (completed + stalled == flows), nonzero blackhole, and
# result-hash identity across intra_jobs; the smoke additionally requires
# that the fluid half actually saw outages in every cell AND that
# post-repair goodput recovered to >= 95% of the pre-fault peak — a
# regression that strands flows after reconvergence cannot pass.
./build/bench/bench_hybrid --faults --m=12 --m_big=12 --hot_flows=32 \
  --bg_flows=16 --flow_bytes=2000000 --flap_ms=1 \
  --json_out=hybrid_fault_smoke.json
awk '
  /"fluid_outages":/    { cells++; if ($NF + 0 > 0) outage_ok++ }
  /"goodput_recovery":/ { if ($NF + 0 >= 0.95) recov_ok++ }
  END {
    if (cells == 0)        { print "hybrid-fault smoke: no fault cells"; exit 1 }
    if (outage_ok < cells) { print "hybrid-fault smoke: a cell saw no fluid outage"; exit 1 }
    if (recov_ok < cells)  { print "hybrid-fault smoke: goodput recovery below 95%"; exit 1 }
    printf "hybrid-fault smoke: %d cells, fluid outages live, recovery >= 95%%\n", cells
  }' RS=',|\n' FS=':' hybrid_fault_smoke.json

echo "== serving smoke (spinelessd) =="
# The full robustness ladder at process level: SIGTERM graceful drain with
# an in-flight request, then kill -9 -> restart -> replay byte-identity
# against the persisted warm snapshot (scripts/service_drain_smoke.sh).
bash scripts/service_drain_smoke.sh ./build/tools/spinelessd/spinelessd \
  check_service_smoke
# Overload behavior over the socket: a 1-worker, 2-deep daemon hit by 12
# concurrent clients (valid, invalid, and repeated bodies — the built-in
# --connect client is deliberately lockstep, so concurrency comes from
# parallel clients) must answer every line — some `ok`, at least one
# explicit `overloaded`, the bad request as `error` — and drain cleanly
# afterwards. No crash, no hang, no silence.
SOCK=check_service_smoke/overload.sock
./build/tools/spinelessd/spinelessd --socket="$SOCK" --workers=1 \
  --queue_limit=2 > check_service_smoke/overload.out 2>&1 &
DPID=$!
for _ in $(seq 1 100); do
  grep -q '^spinelessd: ready' check_service_smoke/overload.out && break
  sleep 0.1
done
CPIDS=()
for i in $(seq 1 11); do
  printf '{"id":%d,"kind":"whatif_tm","tm":"skewed","seed_salt":%d}\n' \
    "$i" "$((i % 3))" |
    ./build/tools/spinelessd/spinelessd --connect="$SOCK" \
      > "check_service_smoke/overload_c$i.txt" &
  CPIDS+=($!)
done
printf '{"id":12,"kind":"whatif_fault"}\n' |
  ./build/tools/spinelessd/spinelessd --connect="$SOCK" \
    > check_service_smoke/overload_c12.txt &
CPIDS+=($!)
for pid in "${CPIDS[@]}"; do wait "$pid"; done
kill -TERM "$DPID" && wait "$DPID"
cat check_service_smoke/overload_c*.txt \
  > check_service_smoke/overload_answers.txt
awk '
  /"status":"ok"/         { ok++ }
  /"status":"overloaded"/ { shed++ }
  /"status":"error"/      { err++ }
  END {
    printf "serving smoke: %d ok, %d overloaded, %d error\n", ok, shed, err
    if (ok + shed + err != 12) { print "serving smoke: missing answers"; exit 1 }
    if (ok < 1)   { print "serving smoke: no ok answers"; exit 1 }
    if (shed < 1) { print "serving smoke: overload never shed"; exit 1 }
    if (err != 1) { print "serving smoke: bad request not an error"; exit 1 }
  }' check_service_smoke/overload_answers.txt

echo "== tier-1 test suite =="
ctest --test-dir build --output-on-failure

echo "check.sh: all gates green (findings: lint_findings.json)"
