#!/usr/bin/env bash
# Process-level robustness checks for spinelessd, run as a ctest (label
# `service`):
#
#   1. SIGTERM graceful drain: a daemon serving a request over its socket
#      is SIGTERMed; it must answer the in-flight request, log the drain,
#      and exit 0.
#   2. kill -9 -> restart -> replay byte-identity: a daemon with a
#      snapshot_dir is killed uncleanly mid-trace; a restarted process must
#      report restoring the warm snapshot and replaying the full trace must
#      produce answers byte-identical to the pre-crash golden replay
#      (status responses excluded: they carry live counters by design).
#
# Usage: service_drain_smoke.sh <spinelessd-binary> <workdir>
set -euo pipefail

BIN="$1"
WORK="$2"
rm -rf "$WORK"
mkdir -p "$WORK"
SNAP="$WORK/snap"
SOCK="$WORK/sock"

fail() { echo "service_drain_smoke: FAIL: $*" >&2; exit 1; }

wait_ready() {  # wait_ready <stdout-file> <pid>
  for _ in $(seq 1 100); do
    grep -q '^spinelessd: ready' "$1" 2>/dev/null && return 0
    kill -0 "$2" 2>/dev/null || fail "daemon died before ready (see $1)"
    sleep 0.1
  done
  fail "daemon never became ready (see $1)"
}

# The deterministic request trace: a mix of what-if kinds including a
# deliberate repeat (cache hit) and a bad request (error response).
TRACE="$WORK/trace.txt"
cat > "$TRACE" <<'EOF'
{"id":1,"kind":"whatif_fault","spec":"fail link=3 at=1ms"}
{"id":2,"kind":"whatif_fault","spec":"flap link=5 down=1ms up=3ms"}
{"id":3,"kind":"whatif_tm","tm":"skewed","seed_salt":2,"fidelity":"fluid"}
{"id":4,"kind":"affected","link":2,"down":true}
{"id":5,"kind":"whatif_fault","spec":"fail link=3 at=1ms"}
{"id":6,"kind":"whatif_fault","spec":"fail link=9999 at=1ms"}
{"id":7,"kind":"status"}
EOF

# ---- Test 1: SIGTERM graceful drain -----------------------------------
"$BIN" --socket="$SOCK" --workers=2 > "$WORK/d1.out" 2> "$WORK/d1.err" &
DPID=$!
wait_ready "$WORK/d1.out" "$DPID"

# A client holding a request in flight when the SIGTERM lands.
printf '%s\n' '{"id":10,"kind":"whatif_fault","spec":"fail link=4 at=2ms"}' |
  "$BIN" --connect="$SOCK" > "$WORK/c1.out" 2> "$WORK/c1.err" &
CPID=$!
sleep 0.3
kill -TERM "$DPID"
wait "$CPID" || fail "client failed during drain"
wait "$DPID" || fail "daemon exit code nonzero after SIGTERM"
grep -q '"id":10' "$WORK/c1.out" || fail "in-flight request unanswered"
grep -q '"status":"ok"' "$WORK/c1.out" || fail "in-flight request not ok"
grep -q 'drained' "$WORK/d1.err" || fail "no drain log line"
[ -S "$SOCK" ] && fail "socket not removed after drain"
echo "service_drain_smoke: SIGTERM drain ok"

# ---- Test 2: kill -9 -> restart -> replay byte-identity ----------------
# Golden answers: a fresh process builds the warm state, persists it into
# SNAP, and replays the trace synchronously.
"$BIN" --snapshot_dir="$SNAP" --replay="$TRACE" --out="$WORK/golden.txt" \
  > "$WORK/g.out" 2> "$WORK/g.err" || fail "golden replay failed"
grep -q 'built fresh' "$WORK/g.err" || fail "golden run unexpectedly restored"

# A serving daemon on the same snapshot dir, killed uncleanly mid-stream.
"$BIN" --socket="$SOCK" --snapshot_dir="$SNAP" --workers=2 \
  > "$WORK/d2.out" 2> "$WORK/d2.err" &
DPID=$!
wait_ready "$WORK/d2.out" "$DPID"
grep -q 'restored=1' "$WORK/d2.out" || fail "daemon did not restore snapshot"
head -3 "$TRACE" | "$BIN" --connect="$SOCK" > "$WORK/c2.out" \
  2> "$WORK/c2.err" &
CPID=$!
sleep 0.3
kill -9 "$DPID"
wait "$DPID" 2>/dev/null && fail "kill -9 reported clean exit"
wait "$CPID" 2>/dev/null || true  # the client may see the connection die

# Restart: must restore from the snapshot and answer byte-identically.
"$BIN" --snapshot_dir="$SNAP" --replay="$TRACE" --out="$WORK/replayed.txt" \
  > "$WORK/r.out" 2> "$WORK/r.err" || fail "post-crash replay failed"
grep -q 'restored from snapshot' "$WORK/r.err" ||
  fail "post-crash replay did not restore the warm snapshot"
grep -v '"kind":"status"' "$WORK/golden.txt" > "$WORK/golden.cmp"
grep -v '"kind":"status"' "$WORK/replayed.txt" > "$WORK/replayed.cmp"
cmp "$WORK/golden.cmp" "$WORK/replayed.cmp" ||
  fail "post-crash answers differ from golden"
echo "service_drain_smoke: kill -9 recovery byte-identical"
echo "service_drain_smoke: PASS"
