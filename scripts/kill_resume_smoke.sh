#!/usr/bin/env bash
# SIGKILL-mid-run recovery smoke test.
#
# Runs a small bench_fig6_scale sweep three ways:
#   1. clean, uninterrupted;
#   2. with --resume, SIGKILLed partway through (leaving a sweep journal
#      and/or per-cell checkpoints behind);
#   3. rerun with --resume, which must complete from the relics.
# The resumed BENCH JSON must equal the clean one modulo wall-clock timing
# fields (wall_s, total_wall_s, events_per_sec, table_build_s).
#
# Usage: kill_resume_smoke.sh <bench_fig6_scale binary> <work dir>
set -u

BENCH="$1"
DIR="$2"
ARGS=(--m_lo=5 --m_hi=6 --window_ms=1)

rm -rf "$DIR"
mkdir -p "$DIR"
cd "$DIR"

echo "== clean run =="
"$BENCH" "${ARGS[@]}" --json_out=clean.json >/dev/null 2>&1 \
  || { echo "FAIL: clean run exited non-zero"; exit 1; }

echo "== killed run =="
rm -f kill.json kill.json.sweep.journal*
"$BENCH" "${ARGS[@]}" --json_out=kill.json --resume >/dev/null 2>&1 &
PID=$!
# Give it long enough to write a checkpoint or journal entry, then kill -9.
# On very fast machines the run may finish first; that degenerates into the
# resume-from-journal (or from-scratch) case, which must still match.
sleep 0.4
kill -9 "$PID" 2>/dev/null
wait "$PID" 2>/dev/null

echo "== resumed run =="
"$BENCH" "${ARGS[@]}" --json_out=kill.json --resume >/dev/null 2>&1 \
  || { echo "FAIL: resumed run exited non-zero"; exit 1; }

# Recovery artifacts must be cleaned up after a completed sweep.
if ls kill.json.sweep.journal* >/dev/null 2>&1; then
  echo "FAIL: journal/checkpoints left behind after a completed sweep"
  exit 1
fi

python3 - <<'EOF'
import json, sys

STRIP = {"wall_s", "total_wall_s", "events_per_sec", "table_build_s"}

def norm(path):
    with open(path) as f:
        d = json.load(f)
    d.pop("total_wall_s", None)
    for cell in d["cells"]:
        for k in list(cell):
            if k in STRIP:
                del cell[k]
    return d

clean, resumed = norm("clean.json"), norm("kill.json")
if clean != resumed:
    print("FAIL: resumed BENCH JSON differs from the clean run")
    print("clean:  ", json.dumps(clean, indent=1)[:2000])
    print("resumed:", json.dumps(resumed, indent=1)[:2000])
    sys.exit(1)
print("PASS: resumed run identical to clean run (modulo timing fields)")
EOF
