#include "flowsim/fluid_network.h"

#include <numeric>

#include "util/error.h"

namespace spineless::flowsim {
namespace {

std::vector<double> build_capacities(const Graph& g, double rate) {
  const auto hosts = static_cast<std::size_t>(g.total_servers());
  const auto links = static_cast<std::size_t>(g.num_links());
  return std::vector<double>(2 * hosts + 2 * links, rate);
}

}  // namespace

FluidNetwork::FluidNetwork(const Graph& g, double link_rate_bps)
    : graph_(g),
      num_hosts_(g.total_servers()),
      problem_(build_capacities(g, link_rate_bps)) {}

int FluidNetwork::add_flow(HostId src, HostId dst, const Path& path) {
  SPINELESS_CHECK(src != dst);
  SPINELESS_CHECK(!path.empty());
  SPINELESS_CHECK_MSG(path.front() == graph_.tor_of_host(src) &&
                          path.back() == graph_.tor_of_host(dst),
                      "path endpoints do not match host ToRs");
  std::vector<int> resources;
  resources.reserve(path.size() + 1);
  resources.push_back(host_up(src));
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    // Find the link for this hop; with parallel links pick the first (the
    // fluid model aggregates parallel capacity onto one of them — our
    // builders never produce parallel links in practice).
    const auto& ports = graph_.neighbors(path[i]);
    topo::LinkId link = topo::kInvalidLink;
    for (const topo::Port& p : ports) {
      if (p.neighbor == path[i + 1]) {
        link = p.link;
        break;
      }
    }
    SPINELESS_CHECK_MSG(link != topo::kInvalidLink,
                        "path hop " << path[i] << "->" << path[i + 1]
                                    << " is not a link");
    const bool a_to_b = graph_.link(link).a == path[i];
    resources.push_back(net_link(link, a_to_b));
  }
  resources.push_back(host_down(dst));
  return problem_.add_flow(std::move(resources));
}

double FluidNetwork::total(const std::vector<double>& rates) {
  return std::accumulate(rates.begin(), rates.end(), 0.0);
}

double FluidNetwork::mean(const std::vector<double>& rates) {
  SPINELESS_CHECK(!rates.empty());
  return total(rates) / static_cast<double>(rates.size());
}

}  // namespace spineless::flowsim
