// Maps a data-center topology onto a MaxMinProblem: host NICs (uplink and
// downlink) and each direction of every switch-switch link are resources of
// the configured line rate. Flows follow explicit switch-level paths, the
// way a hashed ECMP/Shortest-Union flow does.
#pragma once

#include <cstdint>
#include <vector>

#include "flowsim/maxmin.h"
#include "routing/types.h"
#include "topo/graph.h"

namespace spineless::flowsim {

using routing::Path;
using topo::Graph;
using topo::HostId;
using topo::NodeId;

class FluidNetwork {
 public:
  FluidNetwork(const Graph& g, double link_rate_bps);

  // Adds a long-running flow from host src to host dst along `path`, which
  // must run from tor_of(src) to tor_of(dst). Hosts on the same ToR pass an
  // intra-rack path of the single element {tor}. Returns the flow id.
  int add_flow(HostId src, HostId dst, const Path& path);

  int num_flows() const { return problem_.num_flows(); }

  // Max-min fair rate per flow, bits/sec.
  std::vector<double> solve() const { return problem_.solve(); }

  // Aggregate and mean throughput helpers.
  static double total(const std::vector<double>& rates);
  static double mean(const std::vector<double>& rates);

 private:
  int host_up(HostId h) const { return h; }
  int host_down(HostId h) const { return num_hosts_ + h; }
  int net_link(topo::LinkId l, bool a_to_b) const {
    return 2 * num_hosts_ + 2 * l + (a_to_b ? 0 : 1);
  }

  const Graph& graph_;
  int num_hosts_;
  MaxMinProblem problem_;
};

}  // namespace spineless::flowsim
