#include "flowsim/maxmin.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace spineless::flowsim {

MaxMinProblem::MaxMinProblem(std::vector<double> capacities)
    : capacity_(std::move(capacities)) {
  for (std::size_t r = 0; r < capacity_.size(); ++r) {
    // NaN fails every comparison, so `>= 0` alone would admit it and the
    // filling loop would silently never saturate the resource.
    SPINELESS_CHECK_MSG(capacity_[r] >= 0 && !std::isnan(capacity_[r]),
                        "MaxMinProblem: capacity[" << r << "] = "
                            << capacity_[r]
                            << " — capacities must be >= 0 and not NaN");
  }
}

int MaxMinProblem::add_flow(std::vector<int> resources) {
  for (int r : resources)
    SPINELESS_CHECK_MSG(r >= 0 && r < num_resources(),
                        "add_flow: resource " << r << " outside [0, "
                                              << num_resources() << ")");
  flows_.push_back(std::move(resources));
  return static_cast<int>(flows_.size()) - 1;
}

std::vector<double> MaxMinProblem::solve() const { return solve_capped({}); }

std::vector<double> MaxMinProblem::solve_capped(
    const std::vector<double>& caps) const {
  const std::size_t nf = flows_.size();
  const std::size_t nr = capacity_.size();
  const bool capped = !caps.empty();
  if (capped) {
    SPINELESS_CHECK_MSG(caps.size() == nf,
                        "solve_capped: " << caps.size() << " caps for " << nf
                                         << " flows — pass one cap per flow "
                                            "or an empty vector for no caps");
    for (std::size_t f = 0; f < nf; ++f) {
      // A negative cap would make `caps[f] - rate[f]` negative and stall
      // the filling; NaN poisons every min(). +infinity means uncapped.
      SPINELESS_CHECK_MSG(caps[f] >= 0 && !std::isnan(caps[f]),
                          "solve_capped: caps[" << f << "] = " << caps[f]
                              << " — caps must be >= 0 and not NaN");
    }
  }
  std::vector<double> rate(nf, 0.0);
  std::vector<double> remaining = capacity_;
  // Active consumption count per resource.
  std::vector<double> load(nr, 0.0);
  std::vector<char> active(nf, 0);
  std::size_t num_active = 0;
  for (std::size_t f = 0; f < nf; ++f) {
    if (flows_[f].empty()) continue;  // unconstrained: leave at rate 0
    active[f] = 1;
    ++num_active;
    for (int r : flows_[f]) load[static_cast<std::size_t>(r)] += 1.0;
  }
  // Compact list of resources any flow crosses: every scan below walks this
  // list instead of the full capacity array, so sparse problems on huge
  // networks (the hybrid windowed solve) cost O(touched) per filling round.
  std::vector<int> touched;
  for (std::size_t r = 0; r < nr; ++r) {
    if (load[r] > 0.0) touched.push_back(static_cast<int>(r));
  }

  constexpr double kEps = 1e-12;
  // Allocated once; only touched entries are ever set, and they are cleared
  // again before the next round (an O(nr) refill per round would undo the
  // compact-iteration win).
  std::vector<char> saturated(nr, 0);
  while (num_active > 0) {
    // Drop resources whose last crossing flow froze — keeps the scans
    // shrinking as the filling proceeds.
    std::erase_if(touched,
                  [&](int r) { return load[static_cast<std::size_t>(r)] <= kEps; });

    // Bottleneck increment: the smallest per-flow headroom across loaded
    // resources, further limited by the nearest active flow cap.
    double inc = std::numeric_limits<double>::infinity();
    for (int r : touched) {
      const auto ri = static_cast<std::size_t>(r);
      inc = std::min(inc, remaining[ri] / load[ri]);
    }
    if (capped) {
      for (std::size_t f = 0; f < nf; ++f) {
        if (active[f]) inc = std::min(inc, caps[f] - rate[f]);
      }
    }
    SPINELESS_CHECK(std::isfinite(inc));
    inc = std::max(inc, 0.0);

    for (int r : touched) {
      const auto ri = static_cast<std::size_t>(r);
      remaining[ri] -= inc * load[ri];
    }

    // Freeze every active flow crossing a saturated resource or pinned at
    // its cap. (Tolerance is relative to the original capacity scale.)
    for (int r : touched) {
      const auto ri = static_cast<std::size_t>(r);
      if (remaining[ri] <= 1e-9 * std::max(1.0, capacity_[ri]))
        saturated[ri] = 1;
    }
    bool any_frozen = false;
    for (std::size_t f = 0; f < nf; ++f) {
      if (!active[f]) continue;
      rate[f] += inc;
      bool freeze =
          capped && rate[f] >= caps[f] - 1e-9 * std::max(1.0, caps[f]);
      if (!freeze) {
        for (int r : flows_[f]) {
          if (saturated[static_cast<std::size_t>(r)]) {
            freeze = true;
            break;
          }
        }
      }
      if (freeze) {
        active[f] = 0;
        --num_active;
        any_frozen = true;
        for (int r : flows_[f]) load[static_cast<std::size_t>(r)] -= 1.0;
      }
    }
    SPINELESS_CHECK_MSG(any_frozen || num_active == 0,
                        "water-filling made no progress");
    for (int r : touched) saturated[static_cast<std::size_t>(r)] = 0;
  }
  return rate;
}

bool MaxMinProblem::is_max_min_fair(const std::vector<double>& rates,
                                    double tol) const {
  if (rates.size() != flows_.size()) return false;
  const std::size_t nr = capacity_.size();
  std::vector<double> used(nr, 0.0);
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    for (int r : flows_[f]) used[static_cast<std::size_t>(r)] += rates[f];
  }
  // Feasibility.
  for (std::size_t r = 0; r < nr; ++r) {
    if (used[r] > capacity_[r] + tol * std::max(1.0, capacity_[r]))
      return false;
  }
  // Max-min certificate: every flow crosses some saturated resource where
  // no other flow has a strictly larger rate.
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    if (flows_[f].empty()) continue;
    bool certified = false;
    for (int r : flows_[f]) {
      const auto ri = static_cast<std::size_t>(r);
      if (used[ri] < capacity_[ri] - tol * std::max(1.0, capacity_[ri]))
        continue;  // not saturated
      bool maximal = true;
      for (std::size_t g = 0; g < flows_.size() && maximal; ++g) {
        if (g == f) continue;
        const bool crosses =
            std::find(flows_[g].begin(), flows_[g].end(), r) !=
            flows_[g].end();
        if (crosses && rates[g] > rates[f] + tol) maximal = false;
      }
      if (maximal) {
        certified = true;
        break;
      }
    }
    if (!certified) return false;
  }
  return true;
}

}  // namespace spineless::flowsim
