#include "flowsim/maxmin.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace spineless::flowsim {

MaxMinProblem::MaxMinProblem(std::vector<double> capacities)
    : capacity_(std::move(capacities)) {
  for (double c : capacity_) SPINELESS_CHECK(c >= 0);
}

int MaxMinProblem::add_flow(std::vector<int> resources) {
  for (int r : resources)
    SPINELESS_CHECK(r >= 0 && r < num_resources());
  flows_.push_back(std::move(resources));
  return static_cast<int>(flows_.size()) - 1;
}

std::vector<double> MaxMinProblem::solve() const {
  const std::size_t nf = flows_.size();
  const std::size_t nr = capacity_.size();
  std::vector<double> rate(nf, 0.0);
  std::vector<double> remaining = capacity_;
  // Active consumption count per resource.
  std::vector<double> load(nr, 0.0);
  std::vector<char> active(nf, 0);
  std::size_t num_active = 0;
  for (std::size_t f = 0; f < nf; ++f) {
    if (flows_[f].empty()) continue;  // unconstrained: leave at rate 0
    active[f] = 1;
    ++num_active;
    for (int r : flows_[f]) load[static_cast<std::size_t>(r)] += 1.0;
  }

  constexpr double kEps = 1e-12;
  while (num_active > 0) {
    // Bottleneck increment: the smallest per-flow headroom across loaded
    // resources.
    double inc = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < nr; ++r) {
      if (load[r] > kEps) inc = std::min(inc, remaining[r] / load[r]);
    }
    SPINELESS_CHECK(std::isfinite(inc));
    inc = std::max(inc, 0.0);

    for (std::size_t r = 0; r < nr; ++r) remaining[r] -= inc * load[r];

    // Freeze every active flow crossing a saturated resource.
    // (Tolerance is relative to the original capacity scale.)
    std::vector<char> saturated(nr, 0);
    for (std::size_t r = 0; r < nr; ++r) {
      if (load[r] > kEps &&
          remaining[r] <= 1e-9 * std::max(1.0, capacity_[r]))
        saturated[r] = 1;
    }
    bool any_frozen = false;
    for (std::size_t f = 0; f < nf; ++f) {
      if (!active[f]) continue;
      rate[f] += inc;
      bool freeze = false;
      for (int r : flows_[f]) {
        if (saturated[static_cast<std::size_t>(r)]) {
          freeze = true;
          break;
        }
      }
      if (freeze) {
        active[f] = 0;
        --num_active;
        any_frozen = true;
        for (int r : flows_[f]) load[static_cast<std::size_t>(r)] -= 1.0;
      }
    }
    SPINELESS_CHECK_MSG(any_frozen || num_active == 0,
                        "water-filling made no progress");
  }
  return rate;
}

bool MaxMinProblem::is_max_min_fair(const std::vector<double>& rates,
                                    double tol) const {
  if (rates.size() != flows_.size()) return false;
  const std::size_t nr = capacity_.size();
  std::vector<double> used(nr, 0.0);
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    for (int r : flows_[f]) used[static_cast<std::size_t>(r)] += rates[f];
  }
  // Feasibility.
  for (std::size_t r = 0; r < nr; ++r) {
    if (used[r] > capacity_[r] + tol * std::max(1.0, capacity_[r]))
      return false;
  }
  // Max-min certificate: every flow crosses some saturated resource where
  // no other flow has a strictly larger rate.
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    if (flows_[f].empty()) continue;
    bool certified = false;
    for (int r : flows_[f]) {
      const auto ri = static_cast<std::size_t>(r);
      if (used[ri] < capacity_[ri] - tol * std::max(1.0, capacity_[ri]))
        continue;  // not saturated
      bool maximal = true;
      for (std::size_t g = 0; g < flows_.size() && maximal; ++g) {
        if (g == f) continue;
        const bool crosses =
            std::find(flows_[g].begin(), flows_[g].end(), r) !=
            flows_[g].end();
        if (crosses && rates[g] > rates[f] + tol) maximal = false;
      }
      if (maximal) {
        certified = true;
        break;
      }
    }
    if (!certified) return false;
  }
  return true;
}

}  // namespace spineless::flowsim
