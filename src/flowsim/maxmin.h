// Max-min fair rate allocation by progressive filling — the fluid model of
// long-running TCP flows. Used for the paper's Figure 5 C-S throughput
// heatmaps, where packet-simulating all 256 heatmap cells would be
// prohibitive (§5.2: "all flows were long-running").
#pragma once

#include <vector>

namespace spineless::flowsim {

// Generic resource-constrained max-min problem: each flow consumes unit
// rate on every resource it crosses; solve() returns the max-min fair rate
// vector (progressive filling / water-filling).
class MaxMinProblem {
 public:
  explicit MaxMinProblem(std::vector<double> capacities);

  // Adds a flow crossing the given resources (duplicates allowed — a flow
  // crossing a resource twice consumes twice the rate there). Returns the
  // flow id.
  int add_flow(std::vector<int> resources);

  int num_flows() const { return static_cast<int>(flows_.size()); }
  int num_resources() const { return static_cast<int>(capacity_.size()); }

  // Max-min fair rates, one per flow. Flows crossing no resources get rate
  // +infinity is not meaningful; they are assigned 0 and reported via
  // unconstrained_flows().
  std::vector<double> solve() const;

  // Max-min fair rates with per-flow rate caps (the hybrid boundary layer's
  // demand limits): a flow whose fair share reaches caps[f] freezes there
  // and releases its claim on further headroom, exactly as if it crossed a
  // private resource of capacity caps[f]. Pass an empty vector for no caps
  // (solve() delegates here). Infinite entries mean uncapped. Iteration
  // cost is proportional to the resources flows actually cross, not
  // num_resources() — a 100k-switch network has ~10^5..10^6 resources but a
  // windowed hybrid solve touches only the few thousand on active paths.
  // Inputs are validated (throws spineless::Error): when non-empty, `caps`
  // must have exactly one entry per flow and every entry must be >= 0 and
  // not NaN — a silent size mismatch or NaN cap would otherwise stall the
  // filling loop or index past the cap vector.
  std::vector<double> solve_capped(const std::vector<double>& caps) const;

  // Property-test hook: verifies a rate vector is feasible and max-min fair
  // (every flow is bottlenecked at some saturated resource where it has the
  // maximal rate), within tolerance.
  bool is_max_min_fair(const std::vector<double>& rates,
                       double tol = 1e-6) const;

 private:
  std::vector<double> capacity_;
  std::vector<std::vector<int>> flows_;
};

}  // namespace spineless::flowsim
