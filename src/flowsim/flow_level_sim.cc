#include "flowsim/flow_level_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.h"

namespace spineless::flowsim {

FlowLevelSimulator::FlowLevelSimulator(const Graph& g, double link_rate_bps)
    : graph_(g), link_rate_(link_rate_bps), num_hosts_(g.total_servers()) {
  SPINELESS_CHECK(link_rate_bps > 0);
}

std::vector<int> FlowLevelSimulator::resources_for(HostId src, HostId dst,
                                                   const Path& path) const {
  SPINELESS_CHECK(!path.empty());
  SPINELESS_CHECK(path.front() == graph_.tor_of_host(src) &&
                  path.back() == graph_.tor_of_host(dst));
  std::vector<int> res;
  res.push_back(src);                // host uplink
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    topo::LinkId link = topo::kInvalidLink;
    for (const topo::Port& p : graph_.neighbors(path[i])) {
      if (p.neighbor == path[i + 1]) {
        link = p.link;
        break;
      }
    }
    SPINELESS_CHECK_MSG(link != topo::kInvalidLink, "path hop is not a link");
    const bool a_to_b = graph_.link(link).a == path[i];
    res.push_back(2 * num_hosts_ + 2 * link + (a_to_b ? 0 : 1));
  }
  res.push_back(num_hosts_ + dst);   // host downlink
  return res;
}

int FlowLevelSimulator::add_flow(HostId src, HostId dst, std::int64_t bytes,
                                 Time start, const Path& path) {
  SPINELESS_CHECK(src != dst && bytes > 0 && start >= 0);
  (void)resources_for(src, dst, path);  // validate eagerly
  FlowResult r;
  r.src = src;
  r.dst = dst;
  r.bytes = bytes;
  r.start = start;
  results_.push_back(r);
  paths_.push_back(path);
  return static_cast<int>(results_.size()) - 1;
}

void FlowLevelSimulator::recompute_rates(
    std::vector<ActiveFlow>& active) const {
  // Progressive filling, same algorithm as MaxMinProblem::solve but
  // in-place over the active set.
  const std::size_t nr = static_cast<std::size_t>(
      2 * num_hosts_ + 2 * graph_.num_links());
  std::vector<double> remaining(nr, link_rate_);
  std::vector<double> load(nr, 0.0);
  std::vector<char> frozen(active.size(), 0);
  for (auto& f : active) {
    f.rate = 0;
    for (int r : f.resources) load[static_cast<std::size_t>(r)] += 1.0;
  }
  std::size_t live = active.size();
  constexpr double kEps = 1e-12;
  while (live > 0) {
    double inc = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < nr; ++r)
      if (load[r] > kEps) inc = std::min(inc, remaining[r] / load[r]);
    SPINELESS_CHECK(std::isfinite(inc));
    inc = std::max(inc, 0.0);
    for (std::size_t r = 0; r < nr; ++r) remaining[r] -= inc * load[r];
    std::vector<char> saturated(nr, 0);
    for (std::size_t r = 0; r < nr; ++r)
      if (load[r] > kEps && remaining[r] <= 1e-9 * link_rate_)
        saturated[r] = 1;
    bool any = false;
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (frozen[i]) continue;
      active[i].rate += inc;
      bool freeze = false;
      for (int r : active[i].resources)
        if (saturated[static_cast<std::size_t>(r)]) {
          freeze = true;
          break;
        }
      if (freeze) {
        frozen[i] = 1;
        --live;
        any = true;
        for (int r : active[i].resources)
          load[static_cast<std::size_t>(r)] -= 1.0;
      }
    }
    SPINELESS_CHECK_MSG(any || live == 0, "water-filling stalled");
  }
}

std::size_t FlowLevelSimulator::run(Time deadline) {
  // Arrival order.
  std::vector<std::size_t> order(results_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return results_[a].start < results_[b].start;
  });

  std::vector<ActiveFlow> active;
  std::size_t next_arrival = 0;
  Time now = 0;
  std::size_t completed = 0;

  auto drain = [&](Time dt) {
    const double secs = units::to_seconds(dt);
    for (auto& f : active)
      f.remaining_bytes -= f.rate / 8.0 * secs;
  };

  while ((next_arrival < order.size() || !active.empty()) &&
         now <= deadline) {
    // Next completion among active flows.
    Time completion = std::numeric_limits<Time>::max();
    for (const auto& f : active) {
      if (f.rate <= 0) continue;
      const double secs = f.remaining_bytes * 8.0 / f.rate;
      const Time t =
          now + static_cast<Time>(std::ceil(secs * units::kSecond));
      completion = std::min(completion, t);
    }
    const Time arrival = next_arrival < order.size()
                             ? results_[order[next_arrival]].start
                             : std::numeric_limits<Time>::max();

    const Time next_event = std::min(arrival, completion);
    if (next_event > deadline) break;  // nothing more inside the horizon
    if (arrival <= completion) {
      drain(arrival - now);
      now = arrival;
      const std::size_t id = order[next_arrival++];
      ActiveFlow f;
      f.id = id;
      f.resources = resources_for(results_[id].src, results_[id].dst,
                                  paths_[id]);
      f.remaining_bytes = static_cast<double>(results_[id].bytes);
      active.push_back(std::move(f));
    } else {
      drain(completion - now);
      now = completion;
      // Retire every flow that drained (tolerance: one bit).
      for (std::size_t i = 0; i < active.size();) {
        if (active[i].remaining_bytes <= 0.125) {
          results_[active[i].id].finish = now;
          ++completed;
          active[i] = active.back();
          active.pop_back();
        } else {
          ++i;
        }
      }
    }
    recompute_rates(active);
  }
  return completed;
}

Summary FlowLevelSimulator::fct_ms() const {
  Summary s;
  for (const auto& r : results_)
    if (r.completed()) s.add(units::to_millis(r.fct()));
  return s;
}

}  // namespace spineless::flowsim
