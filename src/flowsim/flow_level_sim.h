// Event-driven flow-level simulation: flows arrive, share the fabric at
// max-min fair rates, and depart when their bytes drain. Rates are
// recomputed at every arrival/departure (the standard fluid FCT model).
// Orders of magnitude faster than the packet simulator at the cost of
// abstracting away queues, RTTs, and loss — tests/flowsim cross-validate
// it against packet-level TCP on shared-bottleneck scenarios.
//
// Use it for quick what-if sweeps; use sim/ for anything where transport
// dynamics matter (tails, incast, DCTCP).
#pragma once

#include <cstdint>
#include <vector>

#include "routing/types.h"
#include "topo/graph.h"
#include "util/stats.h"
#include "util/units.h"

namespace spineless::flowsim {

using routing::Path;
using topo::Graph;
using topo::HostId;

class FlowLevelSimulator {
 public:
  struct FlowResult {
    HostId src = 0;
    HostId dst = 0;
    std::int64_t bytes = 0;
    Time start = 0;
    Time finish = -1;
    bool completed() const noexcept { return finish >= 0; }
    Time fct() const noexcept { return finish - start; }
  };

  FlowLevelSimulator(const Graph& g, double link_rate_bps);

  // Adds a finite flow routed along `path` (ToR(src) .. ToR(dst)).
  int add_flow(HostId src, HostId dst, std::int64_t bytes, Time start,
               const Path& path);

  // Runs to completion (or `deadline`); returns flows completed.
  std::size_t run(Time deadline = 3'600 * units::kSecond);

  const std::vector<FlowResult>& results() const noexcept { return results_; }
  Summary fct_ms() const;

 private:
  struct ActiveFlow {
    std::size_t id;                // index into results_
    std::vector<int> resources;    // resource ids (see fluid_network.cc)
    double remaining_bytes = 0;
    double rate = 0;
  };

  void recompute_rates(std::vector<ActiveFlow>& active) const;
  std::vector<int> resources_for(HostId src, HostId dst,
                                 const Path& path) const;

  const Graph& graph_;
  double link_rate_;
  int num_hosts_;
  std::vector<FlowResult> results_;
  std::vector<Path> paths_;  // per flow
};

}  // namespace spineless::flowsim
