// Exact disjoint-path counting for Shortest-Union(2) path sets, used to
// verify the paper's §4 claim that SU(2) gives at least n+1 internally-
// vertex-disjoint paths between any two DRing racks. (greedy_disjoint_count
// in paths.h is a cheap lower bound; it can miss the optimum on
// distance-3+ pairs.)
//
// K = 2 decomposes cleanly:
//  * adjacent racks (L = 1): SU(2) = the direct link plus one 2-hop path
//    per common neighbor, all trivially disjoint -> 1 + |common neighbors|;
//  * L >= 2: SU(2) is exactly the shortest paths, whose union is the BFS
//    DAG; the max number of vertex-disjoint a->b paths in a DAG is a
//    node-split unit-capacity max flow.
#pragma once

#include "routing/types.h"

namespace spineless::routing {

// Number of common neighbors of a and b.
int common_neighbor_count(const Graph& g, NodeId a, NodeId b);

// Maximum number of internally-vertex-disjoint Shortest-Union(2) paths
// between a and b (exact).
int max_disjoint_su2_paths(const Graph& g, NodeId a, NodeId b);

}  // namespace spineless::routing
