// Shared routing types: switch-level paths and path sets.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "topo/graph.h"

namespace spineless::routing {

using topo::Graph;
using topo::LinkId;
using topo::NodeId;
using topo::Port;

// Set of link ids as a growable bitset: O(1) membership on the forwarding
// and table-computation hot paths (replaces std::set<LinkId>, whose
// tree walk dominated BFS inner loops at paper scale).
class LinkSet {
 public:
  LinkSet() = default;
  LinkSet(std::initializer_list<LinkId> links) {
    for (LinkId l : links) insert(l);
  }

  void insert(LinkId l) {
    const auto i = static_cast<std::size_t>(l);
    if (words_.size() <= i / 64) words_.resize(i / 64 + 1, 0);
    const std::uint64_t mask = 1ULL << (i % 64);
    if (!(words_[i / 64] & mask)) {
      words_[i / 64] |= mask;
      ++count_;
    }
  }
  void erase(LinkId l) {
    const auto i = static_cast<std::size_t>(l);
    if (words_.size() <= i / 64) return;
    const std::uint64_t mask = 1ULL << (i % 64);
    if (words_[i / 64] & mask) {
      words_[i / 64] &= ~mask;
      --count_;
    }
  }
  bool contains(LinkId l) const noexcept {
    const auto i = static_cast<std::size_t>(l);
    return i / 64 < words_.size() && (words_[i / 64] >> (i % 64)) & 1;
  }
  bool empty() const noexcept { return count_ == 0; }
  std::size_t size() const noexcept { return count_; }
  void clear() noexcept {
    words_.clear();
    count_ = 0;
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t count_ = 0;
};

// A path is the inclusive switch sequence from source ToR to destination ToR.
// Length (hop count) is path.size() - 1; a direct link has length 1.
using Path = std::vector<NodeId>;

// All admissible paths for one ToR pair under some routing scheme.
using PathSet = std::vector<Path>;

inline int path_length(const Path& p) {
  return static_cast<int>(p.size()) - 1;
}

}  // namespace spineless::routing
