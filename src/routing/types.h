// Shared routing types: switch-level paths and path sets.
#pragma once

#include <vector>

#include "topo/graph.h"

namespace spineless::routing {

using topo::Graph;
using topo::LinkId;
using topo::NodeId;
using topo::Port;

// A path is the inclusive switch sequence from source ToR to destination ToR.
// Length (hop count) is path.size() - 1; a direct link has length 1.
using Path = std::vector<NodeId>;

// All admissible paths for one ToR pair under some routing scheme.
using PathSet = std::vector<Path>;

inline int path_length(const Path& p) {
  return static_cast<int>(p.size()) - 1;
}

}  // namespace spineless::routing
