#include "routing/ecmp.h"

#include <algorithm>
#include <deque>

#include "topo/analysis.h"
#include "util/runner.h"

namespace spineless::routing {

namespace {

// BFS distances honoring a dead-link set. The no-failures case dispatches
// to the plain BFS up front so the inner loop never tests for it.
std::vector<int> bfs_avoiding(const Graph& g, NodeId src,
                              const LinkSet* dead) {
  if (dead == nullptr || dead->empty()) return topo::bfs_distances(g, src);
  std::vector<int> dist(static_cast<std::size_t>(g.num_switches()), -1);
  std::deque<NodeId> queue{src};
  dist[static_cast<std::size_t>(src)] = 0;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    const int next = dist[static_cast<std::size_t>(u)] + 1;
    for (const Port& p : g.neighbors(u)) {
      if (dead->contains(p.link)) continue;
      auto& d = dist[static_cast<std::size_t>(p.neighbor)];
      if (d < 0) {
        d = next;
        queue.push_back(p.neighbor);
      }
    }
  }
  return dist;
}

}  // namespace

EcmpTable EcmpTable::compute(const Graph& g, const LinkSet* dead,
                             util::Runner* runner) {
  const bool filtering = dead != nullptr && !dead->empty();
  EcmpTable t;
  t.n_ = g.num_switches();
  const auto n = static_cast<std::size_t>(g.num_switches());
  t.dist_.resize(n * n, -1);
  t.off_.assign(n * n + 1, 0);

  // Pass 1 — per destination (independent slices of dist_ and off_): BFS,
  // store the distance row, and count the tight next hops per (dst, node)
  // into off_[index + 1].
  auto count_for_dst = [&](std::size_t d) {
    const auto dst = static_cast<NodeId>(d);
    const auto dist = bfs_avoiding(g, dst, dead);
    int* dist_row = t.dist_.data() + d * n;
    std::uint32_t* count_row = t.off_.data() + d * n + 1;
    for (NodeId u = 0; u < g.num_switches(); ++u) {
      const int du = dist[static_cast<std::size_t>(u)];
      dist_row[static_cast<std::size_t>(u)] = du;
      if (u == dst) continue;
      if (du < 0) {
        SPINELESS_CHECK_MSG(filtering, "disconnected graph in EcmpTable");
        continue;
      }
      std::uint32_t c = 0;
      for (const Port& p : g.neighbors(u)) {
        if (filtering && dead->contains(p.link)) continue;
        if (dist[static_cast<std::size_t>(p.neighbor)] == du - 1) ++c;
      }
      count_row[static_cast<std::size_t>(u)] = c;
    }
  };

  // Pass 2 — exclusive prefix sum over the counts (serial, cheap) turns
  // off_ into the CSR offset table, then the ports fill re-derives the
  // tight sets from the stored distance rows — again per-destination into
  // disjoint ranges, so parallel order cannot change the layout.
  auto fill_for_dst = [&](std::size_t d) {
    const auto dst = static_cast<NodeId>(d);
    const int* dist_row = t.dist_.data() + d * n;
    for (NodeId u = 0; u < g.num_switches(); ++u) {
      if (u == dst) continue;
      const int du = dist_row[static_cast<std::size_t>(u)];
      if (du < 0) continue;
      Port* out = t.ports_.data() + t.off_[d * n + static_cast<std::size_t>(u)];
      for (const Port& p : g.neighbors(u)) {
        if (filtering && dead->contains(p.link)) continue;
        if (dist_row[static_cast<std::size_t>(p.neighbor)] == du - 1)
          *out++ = p;
      }
    }
  };

  if (runner != nullptr && runner->jobs() > 1 && n > 1) {
    runner->run_batch(n, count_for_dst);
    for (std::size_t i = 1; i <= n * n; ++i) t.off_[i] += t.off_[i - 1];
    t.ports_.resize(t.off_.back());
    runner->run_batch(n, fill_for_dst);
  } else {
    for (std::size_t d = 0; d < n; ++d) count_for_dst(d);
    for (std::size_t i = 1; i <= n * n; ++i) t.off_[i] += t.off_[i - 1];
    t.ports_.resize(t.off_.back());
    for (std::size_t d = 0; d < n; ++d) fill_for_dst(d);
  }
  return t;
}

void EcmpTable::recompute_destinations(const Graph& g, const LinkSet* dead,
                                       const std::vector<NodeId>& dsts,
                                       util::Runner* runner) {
  if (dsts.empty()) return;
  const bool filtering = dead != nullptr && !dead->empty();
  const auto n = static_cast<std::size_t>(n_);
  std::vector<char> affected(n, 0);
  for (const NodeId d : dsts) affected[static_cast<std::size_t>(d)] = 1;

  // The old CSR stays alive so unaffected destinations' slices (which are
  // contiguous per destination) can be copied over verbatim; dist_ is
  // updated in place because only affected rows change.
  const std::vector<Port> old_ports = std::move(ports_);
  const std::vector<std::uint32_t> old_off = std::move(off_);
  ports_ = {};
  off_.assign(n * n + 1, 0);

  // Pass 1: fresh BFS + next-hop counts for each affected destination;
  // unaffected destinations re-derive their counts from the old offsets.
  auto count_affected = [&](std::size_t i) {
    const NodeId dst = dsts[i];
    const auto d = static_cast<std::size_t>(dst);
    const auto dist = bfs_avoiding(g, dst, dead);
    int* dist_row = dist_.data() + d * n;
    std::uint32_t* count_row = off_.data() + d * n + 1;
    for (NodeId u = 0; u < n_; ++u) {
      const int du = dist[static_cast<std::size_t>(u)];
      dist_row[static_cast<std::size_t>(u)] = du;
      if (u == dst) continue;
      if (du < 0) {
        SPINELESS_CHECK_MSG(filtering, "disconnected graph in EcmpTable");
        continue;
      }
      std::uint32_t c = 0;
      for (const Port& p : g.neighbors(u)) {
        if (filtering && dead->contains(p.link)) continue;
        if (dist[static_cast<std::size_t>(p.neighbor)] == du - 1) ++c;
      }
      count_row[static_cast<std::size_t>(u)] = c;
    }
  };
  if (runner != nullptr && runner->jobs() > 1 && dsts.size() > 1) {
    runner->run_batch(dsts.size(), count_affected);
  } else {
    for (std::size_t i = 0; i < dsts.size(); ++i) count_affected(i);
  }
  for (std::size_t d = 0; d < n; ++d) {
    if (affected[d]) continue;
    const std::uint32_t* old_row = old_off.data() + d * n;
    std::uint32_t* count_row = off_.data() + d * n + 1;
    for (std::size_t u = 0; u < n; ++u)
      count_row[u] = old_row[u + 1] - old_row[u];
  }

  for (std::size_t i = 1; i <= n * n; ++i) off_[i] += off_[i - 1];
  ports_.resize(off_.back());

  // Pass 2: fill affected slices from the fresh dist rows, copy unaffected
  // slices wholesale (per-destination ranges are disjoint, so parallel
  // order cannot change the layout).
  auto fill_dst = [&](std::size_t d) {
    if (!affected[d]) {
      std::copy(old_ports.begin() + old_off[d * n],
                old_ports.begin() + old_off[(d + 1) * n],
                ports_.begin() + off_[d * n]);
      return;
    }
    const auto dst = static_cast<NodeId>(d);
    const int* dist_row = dist_.data() + d * n;
    for (NodeId u = 0; u < n_; ++u) {
      if (u == dst) continue;
      const int du = dist_row[static_cast<std::size_t>(u)];
      if (du < 0) continue;
      Port* out = ports_.data() + off_[d * n + static_cast<std::size_t>(u)];
      for (const Port& p : g.neighbors(u)) {
        if (filtering && dead->contains(p.link)) continue;
        if (dist_row[static_cast<std::size_t>(p.neighbor)] == du - 1)
          *out++ = p;
      }
    }
  };
  if (runner != nullptr && runner->jobs() > 1 && n > 1) {
    runner->run_batch(n, fill_dst);
  } else {
    for (std::size_t d = 0; d < n; ++d) fill_dst(d);
  }
}

std::vector<NodeId> EcmpTable::destinations_affected_by(const Graph& g,
                                                        topo::LinkId link,
                                                        bool now_dead) const {
  const NodeId a = g.link(link).a;
  const NodeId b = g.link(link).b;
  std::vector<NodeId> out;
  for (NodeId d = 0; d < n_; ++d) {
    if (now_dead) {
      // Removal: d is affected iff the link sits on some shortest path
      // toward d, i.e. either endpoint's next-hop set references it.
      bool used = false;
      for (const Port& p : next_hops(a, d))
        if (p.link == link) { used = true; break; }
      if (!used)
        for (const Port& p : next_hops(b, d))
          if (p.link == link) { used = true; break; }
      if (used) out.push_back(d);
    } else {
      // Restore: a link joining nodes at equal distance to d creates no
      // new shortest path; one joining a reachable to an unreachable node
      // (or nodes at different distances) can.
      const int da = distance(a, d);
      const int db = distance(b, d);
      if (da < 0 && db < 0) continue;
      if (da < 0 || db < 0 || da != db) out.push_back(d);
    }
  }
  return out;
}

std::vector<NodeId> EcmpTable::splice_link_change(const Graph& g,
                                                  LinkSet& dead,
                                                  topo::LinkId link,
                                                  bool now_dead,
                                                  util::Runner* runner) {
  std::vector<NodeId> dsts = destinations_affected_by(g, link, now_dead);
  if (now_dead) {
    dead.insert(link);
  } else {
    dead.erase(link);
  }
  recompute_destinations(g, &dead, dsts, runner);
  return dsts;
}

bool ecmp_table_valid(const Graph& g, const EcmpTable& table,
                      const LinkSet* dead) {
  if (table.num_switches() != g.num_switches()) return false;
  const bool filtering = dead != nullptr && !dead->empty();
  for (NodeId dst = 0; dst < g.num_switches(); ++dst) {
    // Table distances must be the true hop distances of the surviving graph.
    const auto bfs = bfs_avoiding(g, dst, dead);
    for (NodeId u = 0; u < g.num_switches(); ++u) {
      if (u == dst) continue;
      if (table.distance(u, dst) != bfs[static_cast<std::size_t>(u)])
        return false;
      const auto hops = table.next_hops(u, dst);
      if (bfs[static_cast<std::size_t>(u)] < 0) {
        // Cut off by failures: the empty set is the only valid answer.
        if (!hops.empty()) return false;
        continue;
      }
      if (hops.empty()) return false;
      for (const Port& p : hops) {
        if (!g.adjacent(u, p.neighbor)) return false;
        if (filtering && dead->contains(p.link)) return false;
        if (table.distance(p.neighbor, dst) != table.distance(u, dst) - 1)
          return false;
      }
    }
  }
  return true;
}

}  // namespace spineless::routing
