#include "routing/ecmp.h"

#include <deque>

#include "topo/analysis.h"

namespace spineless::routing {

namespace {

// BFS distances honoring a dead-link set.
std::vector<int> bfs_avoiding(const Graph& g, NodeId src,
                              const std::set<LinkId>* dead) {
  if (dead == nullptr || dead->empty()) return topo::bfs_distances(g, src);
  std::vector<int> dist(static_cast<std::size_t>(g.num_switches()), -1);
  std::deque<NodeId> queue{src};
  dist[static_cast<std::size_t>(src)] = 0;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (const Port& p : g.neighbors(u)) {
      if (dead->count(p.link)) continue;
      auto& d = dist[static_cast<std::size_t>(p.neighbor)];
      if (d < 0) {
        d = dist[static_cast<std::size_t>(u)] + 1;
        queue.push_back(p.neighbor);
      }
    }
  }
  return dist;
}

}  // namespace

EcmpTable EcmpTable::compute(const Graph& g, const std::set<LinkId>* dead) {
  const bool filtering = dead != nullptr && !dead->empty();
  EcmpTable t;
  const auto n = static_cast<std::size_t>(g.num_switches());
  t.nh_.resize(n);
  t.dist_.resize(n);
  for (NodeId dst = 0; dst < g.num_switches(); ++dst) {
    auto dist = bfs_avoiding(g, dst, dead);
    auto& per_node = t.nh_[static_cast<std::size_t>(dst)];
    per_node.resize(n);
    for (NodeId u = 0; u < g.num_switches(); ++u) {
      if (u == dst) continue;
      if (dist[static_cast<std::size_t>(u)] < 0) {
        SPINELESS_CHECK_MSG(filtering, "disconnected graph in EcmpTable");
        continue;  // unreachable after failures: empty next-hop set
      }
      for (const Port& p : g.neighbors(u)) {
        if (filtering && dead->count(p.link)) continue;
        if (dist[static_cast<std::size_t>(p.neighbor)] ==
            dist[static_cast<std::size_t>(u)] - 1) {
          per_node[static_cast<std::size_t>(u)].push_back(p);
        }
      }
    }
    t.dist_[static_cast<std::size_t>(dst)] = std::move(dist);
  }
  return t;
}

bool ecmp_table_valid(const Graph& g, const EcmpTable& table) {
  if (table.num_switches() != g.num_switches()) return false;
  for (NodeId dst = 0; dst < g.num_switches(); ++dst) {
    // Table distances must be the true hop distances in g.
    const auto bfs = topo::bfs_distances(g, dst);
    for (NodeId u = 0; u < g.num_switches(); ++u) {
      if (u == dst) continue;
      if (table.distance(u, dst) != bfs[static_cast<std::size_t>(u)])
        return false;
      const auto& hops = table.next_hops(u, dst);
      if (hops.empty()) return false;
      for (const Port& p : hops) {
        if (!g.adjacent(u, p.neighbor)) return false;
        if (table.distance(p.neighbor, dst) != table.distance(u, dst) - 1)
          return false;
      }
    }
  }
  return true;
}

}  // namespace spineless::routing
