#include "routing/ecmp.h"

#include <deque>

#include "topo/analysis.h"

namespace spineless::routing {

namespace {

// BFS distances honoring a dead-link set. The no-failures case dispatches
// to the plain BFS up front so the inner loop never tests for it.
std::vector<int> bfs_avoiding(const Graph& g, NodeId src,
                              const LinkSet* dead) {
  if (dead == nullptr || dead->empty()) return topo::bfs_distances(g, src);
  std::vector<int> dist(static_cast<std::size_t>(g.num_switches()), -1);
  std::deque<NodeId> queue{src};
  dist[static_cast<std::size_t>(src)] = 0;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    const int next = dist[static_cast<std::size_t>(u)] + 1;
    for (const Port& p : g.neighbors(u)) {
      if (dead->contains(p.link)) continue;
      auto& d = dist[static_cast<std::size_t>(p.neighbor)];
      if (d < 0) {
        d = next;
        queue.push_back(p.neighbor);
      }
    }
  }
  return dist;
}

}  // namespace

EcmpTable EcmpTable::compute(const Graph& g, const LinkSet* dead) {
  const bool filtering = dead != nullptr && !dead->empty();
  EcmpTable t;
  t.n_ = g.num_switches();
  const auto n = static_cast<std::size_t>(g.num_switches());
  t.dist_.resize(n * n, -1);
  t.off_.reserve(n * n + 1);
  t.off_.push_back(0);
  // Each directed edge is a tight next hop toward at most one distance
  // class per destination, so 2 * links * dsts bounds the pool exactly.
  t.ports_.reserve(2 * static_cast<std::size_t>(g.num_links()) * n);
  for (NodeId dst = 0; dst < g.num_switches(); ++dst) {
    const auto dist = bfs_avoiding(g, dst, dead);
    int* dist_row = t.dist_.data() + static_cast<std::size_t>(dst) * n;
    for (NodeId u = 0; u < g.num_switches(); ++u) {
      dist_row[static_cast<std::size_t>(u)] =
          dist[static_cast<std::size_t>(u)];
      if (u != dst) {
        const int du = dist[static_cast<std::size_t>(u)];
        if (du < 0) {
          SPINELESS_CHECK_MSG(filtering, "disconnected graph in EcmpTable");
        } else if (filtering) {
          for (const Port& p : g.neighbors(u)) {
            if (dead->contains(p.link)) continue;
            if (dist[static_cast<std::size_t>(p.neighbor)] == du - 1)
              t.ports_.push_back(p);
          }
        } else {
          for (const Port& p : g.neighbors(u)) {
            if (dist[static_cast<std::size_t>(p.neighbor)] == du - 1)
              t.ports_.push_back(p);
          }
        }
      }
      t.off_.push_back(static_cast<std::uint32_t>(t.ports_.size()));
    }
  }
  return t;
}

bool ecmp_table_valid(const Graph& g, const EcmpTable& table,
                      const LinkSet* dead) {
  if (table.num_switches() != g.num_switches()) return false;
  const bool filtering = dead != nullptr && !dead->empty();
  for (NodeId dst = 0; dst < g.num_switches(); ++dst) {
    // Table distances must be the true hop distances of the surviving graph.
    const auto bfs = bfs_avoiding(g, dst, dead);
    for (NodeId u = 0; u < g.num_switches(); ++u) {
      if (u == dst) continue;
      if (table.distance(u, dst) != bfs[static_cast<std::size_t>(u)])
        return false;
      const auto hops = table.next_hops(u, dst);
      if (bfs[static_cast<std::size_t>(u)] < 0) {
        // Cut off by failures: the empty set is the only valid answer.
        if (!hops.empty()) return false;
        continue;
      }
      if (hops.empty()) return false;
      for (const Port& p : hops) {
        if (!g.adjacent(u, p.neighbor)) return false;
        if (filtering && dead->contains(p.link)) return false;
        if (table.distance(p.neighbor, dst) != table.distance(u, dst) - 1)
          return false;
      }
    }
  }
  return true;
}

}  // namespace spineless::routing
