#include "routing/paths.h"

#include <algorithm>
#include <set>

#include "topo/analysis.h"

namespace spineless::routing {
namespace {

// DFS over the BFS DAG toward dst collecting complete shortest paths.
void walk_shortest(const Graph& g, NodeId u, NodeId dst,
                   const std::vector<int>& dist_to_dst, Path& prefix,
                   PathSet& out, std::size_t cap) {
  if (out.size() >= cap) return;
  if (u == dst) {
    out.push_back(prefix);
    return;
  }
  for (const Port& p : g.neighbors(u)) {
    if (dist_to_dst[static_cast<std::size_t>(p.neighbor)] ==
        dist_to_dst[static_cast<std::size_t>(u)] - 1) {
      prefix.push_back(p.neighbor);
      walk_shortest(g, p.neighbor, dst, dist_to_dst, prefix, out, cap);
      prefix.pop_back();
    }
  }
}

void walk_bounded(const Graph& g, NodeId u, NodeId dst, int budget,
                  std::vector<char>& on_path, Path& prefix, PathSet& out,
                  std::size_t cap) {
  if (out.size() >= cap) return;
  if (u == dst) {
    out.push_back(prefix);
    return;
  }
  if (budget == 0) return;
  for (const Port& p : g.neighbors(u)) {
    if (on_path[static_cast<std::size_t>(p.neighbor)]) continue;
    on_path[static_cast<std::size_t>(p.neighbor)] = 1;
    prefix.push_back(p.neighbor);
    walk_bounded(g, p.neighbor, dst, budget - 1, on_path, prefix, out, cap);
    prefix.pop_back();
    on_path[static_cast<std::size_t>(p.neighbor)] = 0;
  }
}

}  // namespace

PathSet enumerate_shortest_paths(const Graph& g, NodeId src, NodeId dst,
                                 std::size_t cap) {
  SPINELESS_CHECK(src != dst);
  const auto dist = topo::bfs_distances(g, dst);
  SPINELESS_CHECK(dist[static_cast<std::size_t>(src)] >= 0);
  PathSet out;
  Path prefix{src};
  walk_shortest(g, src, dst, dist, prefix, out, cap);
  return out;
}

PathSet enumerate_bounded_paths(const Graph& g, NodeId src, NodeId dst,
                                int max_len, std::size_t cap) {
  SPINELESS_CHECK(src != dst);
  PathSet out;
  Path prefix{src};
  std::vector<char> on_path(static_cast<std::size_t>(g.num_switches()), 0);
  on_path[static_cast<std::size_t>(src)] = 1;
  walk_bounded(g, src, dst, max_len, on_path, prefix, out, cap);
  return out;
}

PathSet shortest_union_paths(const Graph& g, NodeId src, NodeId dst, int k,
                             std::size_t cap) {
  PathSet bounded = enumerate_bounded_paths(g, src, dst, k, cap);
  PathSet shortest = enumerate_shortest_paths(g, src, dst, cap);
  std::set<Path> dedup(bounded.begin(), bounded.end());
  for (auto& p : shortest) dedup.insert(std::move(p));
  PathSet out(dedup.begin(), dedup.end());
  // Deterministic order: by length, then lexicographic (std::set on Path
  // already gives lexicographic; re-sort with length as primary key).
  std::sort(out.begin(), out.end(), [](const Path& a, const Path& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    return a < b;
  });
  if (out.size() > cap) out.resize(cap);
  return out;
}

int greedy_disjoint_count(const PathSet& paths) {
  PathSet sorted = paths;
  std::sort(sorted.begin(), sorted.end(),
            [](const Path& a, const Path& b) { return a.size() < b.size(); });
  std::set<NodeId> used;  // interior nodes of selected paths
  int count = 0;
  for (const Path& p : sorted) {
    bool ok = true;
    for (std::size_t i = 1; i + 1 < p.size(); ++i) {
      if (used.count(p[i])) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    for (std::size_t i = 1; i + 1 < p.size(); ++i) used.insert(p[i]);
    ++count;
  }
  return count;
}

bool paths_valid(const Graph& g, NodeId src, NodeId dst,
                 const PathSet& paths) {
  for (const Path& p : paths) {
    if (p.size() < 2 || p.front() != src || p.back() != dst) return false;
    std::set<NodeId> seen(p.begin(), p.end());
    if (seen.size() != p.size()) return false;  // not simple
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      if (!g.adjacent(p[i], p[i + 1])) return false;
    }
  }
  return true;
}

}  // namespace spineless::routing
