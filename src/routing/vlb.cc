#include "routing/vlb.h"

#include <algorithm>
#include <set>

#include "routing/ksp.h"
#include "util/rng.h"

namespace spineless::routing {
namespace {

// First shortest path by BFS (deterministic port order).
Path one_shortest_path(const Graph& g, NodeId src, NodeId dst) {
  return yen_ksp(g, src, dst, 1).at(0);
}

}  // namespace

PathSet vlb_paths(const Graph& g, NodeId src, NodeId dst,
                  std::size_t max_intermediates, std::uint64_t seed) {
  SPINELESS_CHECK(src != dst);
  Rng rng(seed);
  std::vector<NodeId> mids;
  for (NodeId w = 0; w < g.num_switches(); ++w)
    if (w != src && w != dst) mids.push_back(w);
  rng.shuffle(mids);
  if (mids.size() > max_intermediates) mids.resize(max_intermediates);

  std::set<Path> dedup;
  for (NodeId w : mids) {
    Path a = one_shortest_path(g, src, w);
    const Path b = one_shortest_path(g, w, dst);
    a.insert(a.end(), b.begin() + 1, b.end());
    const std::set<NodeId> uniq(a.begin(), a.end());
    if (uniq.size() == a.size()) dedup.insert(std::move(a));
  }
  PathSet out(dedup.begin(), dedup.end());
  std::sort(out.begin(), out.end(), [](const Path& x, const Path& y) {
    if (x.size() != y.size()) return x.size() < y.size();
    return x < y;
  });
  return out;
}

}  // namespace spineless::routing
