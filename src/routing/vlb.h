// Valiant load balancing path sets — the other non-standard routing that
// prior expander work (Kassing et al.) combined with ECMP and flowlet
// switching. Included as a comparison baseline and for the adaptive-routing
// extension bench.
#pragma once

#include <cstdint>

#include "routing/types.h"

namespace spineless::routing {

// VLB paths from src to dst: for up to `max_intermediates` randomly chosen
// intermediate switches w (w != src, dst), the concatenation of a shortest
// src->w path and a shortest w->dst path, kept only if simple. Deterministic
// given the seed.
PathSet vlb_paths(const Graph& g, NodeId src, NodeId dst,
                  std::size_t max_intermediates, std::uint64_t seed);

}  // namespace spineless::routing
