#include "routing/ksp.h"

#include <algorithm>
#include <deque>
#include <set>

namespace spineless::routing {
namespace {

// BFS shortest path honoring banned nodes and banned directed edges;
// returns an empty path if unreachable. Deterministic: neighbors scanned in
// port order.
Path bfs_path(const Graph& g, NodeId src, NodeId dst,
              const std::set<NodeId>& banned_nodes,
              const std::set<std::pair<NodeId, NodeId>>& banned_edges) {
  if (banned_nodes.count(src) || banned_nodes.count(dst)) return {};
  std::vector<NodeId> parent(static_cast<std::size_t>(g.num_switches()),
                             topo::kInvalidNode);
  std::vector<char> seen(static_cast<std::size_t>(g.num_switches()), 0);
  std::deque<NodeId> queue{src};
  seen[static_cast<std::size_t>(src)] = 1;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    if (u == dst) break;
    for (const Port& p : g.neighbors(u)) {
      const NodeId v = p.neighbor;
      if (seen[static_cast<std::size_t>(v)] || banned_nodes.count(v)) continue;
      if (banned_edges.count({u, v})) continue;
      seen[static_cast<std::size_t>(v)] = 1;
      parent[static_cast<std::size_t>(v)] = u;
      queue.push_back(v);
    }
  }
  if (!seen[static_cast<std::size_t>(dst)]) return {};
  Path path;
  for (NodeId v = dst; v != topo::kInvalidNode;
       v = parent[static_cast<std::size_t>(v)]) {
    path.push_back(v);
    if (v == src) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

bool path_less(const Path& a, const Path& b) {
  if (a.size() != b.size()) return a.size() < b.size();
  return a < b;
}

}  // namespace

PathSet yen_ksp(const Graph& g, NodeId src, NodeId dst, std::size_t k) {
  SPINELESS_CHECK(src != dst);
  SPINELESS_CHECK(k >= 1);
  PathSet result;
  Path first = bfs_path(g, src, dst, {}, {});
  if (first.empty()) return result;
  result.push_back(std::move(first));

  std::set<Path, decltype(&path_less)> candidates(&path_less);
  while (result.size() < k) {
    const Path& prev = result.back();
    for (std::size_t i = 0; i + 1 < prev.size(); ++i) {
      const NodeId spur = prev[i];
      const Path root(prev.begin(), prev.begin() + static_cast<long>(i) + 1);

      std::set<std::pair<NodeId, NodeId>> banned_edges;
      for (const Path& p : result) {
        if (p.size() > i + 1 &&
            std::equal(root.begin(), root.end(), p.begin()))
          banned_edges.insert({p[i], p[i + 1]});
      }
      std::set<NodeId> banned_nodes(root.begin(), root.end());
      banned_nodes.erase(spur);

      Path spur_path = bfs_path(g, spur, dst, banned_nodes, banned_edges);
      if (spur_path.empty()) continue;
      Path total = root;
      total.insert(total.end(), spur_path.begin() + 1, spur_path.end());
      if (std::find(result.begin(), result.end(), total) == result.end())
        candidates.insert(std::move(total));
    }
    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return result;
}

}  // namespace spineless::routing
