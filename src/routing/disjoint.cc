#include "routing/disjoint.h"

#include <algorithm>
#include <deque>
#include <set>
#include <vector>

#include "topo/analysis.h"

namespace spineless::routing {

int common_neighbor_count(const Graph& g, NodeId a, NodeId b) {
  std::set<NodeId> na;
  for (const Port& p : g.neighbors(a)) na.insert(p.neighbor);
  std::set<NodeId> seen;  // dedupe parallel links
  int count = 0;
  for (const Port& p : g.neighbors(b)) {
    if (na.count(p.neighbor) && seen.insert(p.neighbor).second) ++count;
  }
  return count;
}

namespace {

// Unit-capacity max flow (Edmonds-Karp on an adjacency-matrix-free residual
// list) — graphs here are small (node-split BFS DAGs).
class UnitFlow {
 public:
  explicit UnitFlow(int n) : head_(static_cast<std::size_t>(n), -1) {}

  void add_edge(int u, int v) {
    edges_.push_back({v, head_[static_cast<std::size_t>(u)], 1});
    head_[static_cast<std::size_t>(u)] = static_cast<int>(edges_.size()) - 1;
    edges_.push_back({u, head_[static_cast<std::size_t>(v)], 0});  // reverse
    head_[static_cast<std::size_t>(v)] = static_cast<int>(edges_.size()) - 1;
  }

  int max_flow(int s, int t) {
    int flow = 0;
    while (augment(s, t)) ++flow;
    return flow;
  }

 private:
  struct Edge {
    int to;
    int next;
    int cap;
  };

  bool augment(int s, int t) {
    std::vector<int> parent_edge(head_.size(), -1);
    std::vector<char> seen(head_.size(), 0);
    std::deque<int> queue{s};
    seen[static_cast<std::size_t>(s)] = 1;
    while (!queue.empty() && !seen[static_cast<std::size_t>(t)]) {
      const int u = queue.front();
      queue.pop_front();
      for (int e = head_[static_cast<std::size_t>(u)]; e != -1;
           e = edges_[static_cast<std::size_t>(e)].next) {
        const Edge& edge = edges_[static_cast<std::size_t>(e)];
        if (edge.cap <= 0 || seen[static_cast<std::size_t>(edge.to)])
          continue;
        seen[static_cast<std::size_t>(edge.to)] = 1;
        parent_edge[static_cast<std::size_t>(edge.to)] = e;
        queue.push_back(edge.to);
      }
    }
    if (!seen[static_cast<std::size_t>(t)]) return false;
    for (int v = t; v != s;) {
      const int e = parent_edge[static_cast<std::size_t>(v)];
      edges_[static_cast<std::size_t>(e)].cap -= 1;
      edges_[static_cast<std::size_t>(e ^ 1)].cap += 1;
      v = edges_[static_cast<std::size_t>(e ^ 1)].to;
    }
    return true;
  }

  std::vector<int> head_;
  std::vector<Edge> edges_;
};

}  // namespace

int max_disjoint_su2_paths(const Graph& g, NodeId a, NodeId b) {
  SPINELESS_CHECK(a != b);
  if (g.adjacent(a, b)) {
    // Direct link + one 2-hop detour per common neighbor, all internally
    // disjoint (and SU(2) contains nothing else).
    return 1 + common_neighbor_count(g, a, b);
  }
  // L >= 2: vertex-disjoint shortest paths = node-split max flow on the
  // BFS DAG toward b. Flow node ids: 2*u = u_in, 2*u+1 = u_out.
  const auto dist = topo::bfs_distances(g, b);
  SPINELESS_CHECK_MSG(dist[static_cast<std::size_t>(a)] > 0, "unreachable");
  const int n = g.num_switches();
  UnitFlow flow(2 * n);
  for (NodeId u = 0; u < n; ++u) {
    if (u == a || u == b) {
      // Endpoints are not internal: give them unbounded splitter capacity
      // via parallel unit edges (at most degree many are useful).
      for (int i = 0; i < g.network_degree(u); ++i)
        flow.add_edge(2 * u, 2 * u + 1);
    } else {
      flow.add_edge(2 * u, 2 * u + 1);
    }
  }
  std::set<std::pair<NodeId, NodeId>> added;  // dedupe parallel links
  for (NodeId u = 0; u < n; ++u) {
    for (const Port& p : g.neighbors(u)) {
      if (dist[static_cast<std::size_t>(p.neighbor)] ==
              dist[static_cast<std::size_t>(u)] - 1 &&
          added.insert({u, p.neighbor}).second) {
        flow.add_edge(2 * u + 1, 2 * p.neighbor);
      }
    }
  }
  return flow.max_flow(2 * a, 2 * b + 1);
}

}  // namespace spineless::routing
