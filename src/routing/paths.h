// Path enumeration: shortest paths, bounded-length paths, and the paper's
// Shortest-Union(K) scheme (§4) — all paths that are shortest OR of length
// <= K between a ToR pair.
#pragma once

#include <cstdint>

#include "routing/types.h"

namespace spineless::routing {

// All shortest paths from src to dst, up to `cap` paths (enumeration walks
// the BFS DAG; cap guards against combinatorial blowup on dense graphs).
PathSet enumerate_shortest_paths(const Graph& g, NodeId src, NodeId dst,
                                 std::size_t cap = 4096);

// All simple paths from src to dst with hop count <= max_len, up to `cap`.
PathSet enumerate_bounded_paths(const Graph& g, NodeId src, NodeId dst,
                                int max_len, std::size_t cap = 4096);

// Shortest-Union(K): union of the two sets above, deduplicated.
PathSet shortest_union_paths(const Graph& g, NodeId src, NodeId dst, int k,
                             std::size_t cap = 4096);

// Number of pairwise internally-vertex-disjoint paths that a greedy pass
// selects from `paths` (shortest-first). A lower bound on the true disjoint
// path count; used to check the paper's claim that Shortest-Union(2) gives
// at least n+1 disjoint paths between any two DRing racks.
int greedy_disjoint_count(const PathSet& paths);

// True if every path starts at src, ends at dst, is simple, and uses only
// existing links.
bool paths_valid(const Graph& g, NodeId src, NodeId dst, const PathSet& paths);

}  // namespace spineless::routing
