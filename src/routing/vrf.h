// The paper's §4 routing design: realizing Shortest-Union(K) with K VRFs
// per router and shortest-path routing over a virtual "VRF graph".
//
// Virtual-connection gadget. For every *directed* physical link R1 -> R2:
//   (1) (VRF K, R1) -> (VRF i, R2)   cost i,  for i = 1..K
//   (2) (VRF i, R1) -> (VRF i+1, R2) cost 1,  for i = 1..K-1
//   (3) (VRF 1, R1) -> (VRF 1, R2)   cost 1
// Host interfaces live in VRF K, so a flow travels from (VRF K, src ToR) to
// (VRF K, dst ToR). A physical path of length L <= K costs exactly K (jump
// to VRF K-L+1, then ascend); a longer path costs its length (drop to VRF 1,
// walk, ascend at the end). Hence the VRF-graph distance is max(L, K)
// (Theorem 1) and the VRF-shortest paths project to exactly the
// Shortest-Union(K) physical path set.
//
// NOTE on the paper text: rule (2) as printed in the paper reads
// "(VRF (i+1), R1) -> (VRF i, R2)" (descending), which contradicts the
// Theorem 1 proof, where paths *ascend* through VRF levels towards the
// destination (and with only descending rules (VRF K, dst) would be
// unreachable except via the cost-K direct jump). We implement the
// ascending orientation, which is the one the proof and Figure 3 use; all
// of Theorem 1 is verified against it in tests and bench_vrf_bgp.
#pragma once

#include <cstdint>
#include <limits>

#include "routing/types.h"

namespace spineless::util {
class Runner;
}

namespace spineless::routing {

// One forwarding choice in the VRF scheme: which physical port to take and
// which VRF the packet belongs to at the next router.
struct VrfHop {
  Port port;
  int next_vrf = 0;  // 1-based VRF index at the neighbor
  int cost = 0;      // virtual-link cost (for diagnostics)
  // Number of minimum-cost VRF-graph continuations through this edge
  // (saturating). Equal-cost ECMP ignores it; weighted (WCMP-style)
  // forwarding splits traffic proportionally, so a direct link is not
  // drowned out by its many single-use detours.
  std::int64_t weight = 1;
};

// Per-destination forwarding state over the VRF graph, computed by Dijkstra
// on the reversed virtual edges. next_hops(node, vrf, dst) yields every
// virtual edge on a minimum-cost path — the set BGP multipath would install.
class VrfTable {
 public:
  // dead: links to treat as absent (failure modeling); the gadget is built
  // only over surviving links. Unreachable states get empty next-hop sets.
  //
  // runner: optional pool to fan the per-destination Dijkstra over. Each
  // destination writes only dist_[dst] / nh_[dst] (pre-sized), so the
  // result is byte-identical to the serial build.
  static VrfTable compute(const Graph& g, int k, const LinkSet* dead = nullptr,
                          util::Runner* runner = nullptr);

  // distance() value for unreachable states.
  static constexpr int kInfCost = std::numeric_limits<int>::max() / 4;

  // Incremental repair (fault injection): rerun the per-destination
  // Dijkstra + tight-edge DP only for the destinations in `dsts` against
  // the new dead set; every other destination's dist_/nh_ slot is left
  // untouched. Pair with destinations_affected_by for a sound `dsts` set.
  void recompute_destinations(const Graph& g, const LinkSet* dead,
                              const std::vector<NodeId>& dsts,
                              util::Runner* runner = nullptr);

  // Destinations whose VRF-graph distances or next-hop sets can change
  // when `link` fails (now_dead = true) or is restored (now_dead = false),
  // judged against this (pre-change) table. Removal: d is affected iff
  // some tight edge toward d crosses the link. Restore: iff some gadget
  // edge over the link would be tight-or-better under the current
  // distances (c + dist(v-state) <= dist(u-state)).
  std::vector<NodeId> destinations_affected_by(const Graph& g,
                                               topo::LinkId link,
                                               bool now_dead) const;

  // One-call incremental splice, mirroring EcmpTable::splice_link_change:
  // affected set against the pre-change table, then the transition, then
  // the targeted recompute. Returns the affected destinations.
  std::vector<NodeId> splice_link_change(const Graph& g, LinkSet& dead,
                                         topo::LinkId link, bool now_dead,
                                         util::Runner* runner = nullptr);

  int k() const noexcept { return k_; }

  // Minimum VRF-graph cost from (vrf, node) to (VRF K, dst).
  int distance(NodeId node, int vrf, NodeId dst) const {
    return dist_[static_cast<std::size_t>(dst)][index(node, vrf)];
  }
  // Entry distance for traffic sourced at `node` (hosts live in VRF K).
  int source_distance(NodeId node, NodeId dst) const {
    return distance(node, k_, dst);
  }

  const std::vector<VrfHop>& next_hops(NodeId node, int vrf, NodeId dst) const {
    return nh_[static_cast<std::size_t>(dst)][index(node, vrf)];
  }

  NodeId num_switches() const noexcept { return num_switches_; }

  // Theorem 1 check for one pair: VRF distance == max(L, K) where L is the
  // physical hop distance.
  bool theorem1_holds(const Graph& g, NodeId src, NodeId dst) const;

  // All physical paths realizable as minimum-cost VRF-graph paths from
  // (VRF K, src) to (VRF K, dst), deduplicated and sorted — for equivalence
  // testing against shortest_union_paths().
  PathSet project_paths(NodeId src, NodeId dst, std::size_t cap = 4096) const;

 private:
  // Dijkstra + tight-edge DP for one destination, writing dist_[dst] and
  // nh_[dst] only (parallel-safe across destinations).
  void compute_destination(const Graph& g, const LinkSet* dead, NodeId dst);

  std::size_t index(NodeId node, int vrf) const {
    SPINELESS_DCHECK(vrf >= 1 && vrf <= k_);
    return static_cast<std::size_t>(node) * static_cast<std::size_t>(k_) +
           static_cast<std::size_t>(vrf - 1);
  }

  int k_ = 0;
  NodeId num_switches_ = 0;
  // dist_[dst][(node,vrf)], nh_[dst][(node,vrf)].
  std::vector<std::vector<int>> dist_;
  std::vector<std::vector<std::vector<VrfHop>>> nh_;
};

}  // namespace spineless::routing
