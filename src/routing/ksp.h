// Yen's K-shortest simple paths — the routing used by Jellyfish/Xpander
// (k-shortest-path routing with MPTCP). Included as the non-standard-
// hardware comparison baseline the paper argues against deploying.
#pragma once

#include "routing/types.h"

namespace spineless::routing {

// The k shortest simple paths from src to dst in increasing length order
// (ties broken lexicographically). Returns fewer than k paths if the graph
// does not contain k simple paths.
PathSet yen_ksp(const Graph& g, NodeId src, NodeId dst, std::size_t k);

}  // namespace spineless::routing
