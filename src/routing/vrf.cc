#include "routing/vrf.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>

#include "topo/analysis.h"
#include "util/runner.h"

namespace spineless::routing {
namespace {

constexpr int kInf = VrfTable::kInfCost;

// Forward virtual edges out of VRF level j over one physical link, per the
// gadget in vrf.h. Calls fn(next_vrf, cost).
template <typename Fn>
void for_each_virtual_edge(int j, int k, Fn&& fn) {
  if (j == k) {
    for (int i = 1; i <= k; ++i) fn(i, i);  // rule (1)
  }
  if (j < k) fn(j + 1, 1);       // rule (2), ascending
  if (j == 1 && k > 1) fn(1, 1);  // rule (3); for k == 1 rule (1) covers it
}

}  // namespace

void VrfTable::compute_destination(const Graph& g, const LinkSet* dead,
                                   NodeId dst) {
  const bool filtering = dead != nullptr && !dead->empty();
  auto link_dead = [&](LinkId l) { return filtering && dead->contains(l); };
  const int k = k_;
  const std::size_t states =
      static_cast<std::size_t>(num_switches_) * static_cast<std::size_t>(k);
  auto& h = dist_[static_cast<std::size_t>(dst)];
  h.assign(states, kInf);
  // Dijkstra on reversed virtual edges from the goal state (VRF K, dst).
  using Entry = std::pair<int, std::size_t>;  // (cost, state)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  const std::size_t goal = index(dst, k);
  h[goal] = 0;
  pq.emplace(0, goal);
  while (!pq.empty()) {
    const auto [cost, state] = pq.top();
    pq.pop();
    if (cost > h[state]) continue;
    const auto v = static_cast<NodeId>(state / static_cast<std::size_t>(k));
    const int jv = static_cast<int>(state % static_cast<std::size_t>(k)) + 1;
    // Relax predecessors: states (ju, u) with a virtual edge into (jv, v).
    for (const Port& p : g.neighbors(v)) {
      if (link_dead(p.link)) continue;
      const NodeId u = p.neighbor;
      auto relax = [&](int ju, int c) {
        const std::size_t s = index(u, ju);
        if (cost + c < h[s]) {
          h[s] = cost + c;
          pq.emplace(h[s], s);
        }
      };
      // Incoming edges to (jv, v): rule (1) from (K, u) at cost jv;
      // rule (2) from (jv-1, u) at cost 1 when jv >= 2;
      // rule (3) from (1, u) at cost 1 when jv == 1.
      relax(k, jv);
      if (jv >= 2) relax(jv - 1, 1);
      if (jv == 1 && k > 1) relax(1, 1);
    }
  }

  // Tight forward edges become the multipath next-hop sets.
  auto& nh = nh_[static_cast<std::size_t>(dst)];
  nh.assign(states, {});
  // Count minimum-cost continuations per state (DP over the tight-edge
  // DAG in ascending cost-to-go order; saturate to avoid overflow).
  constexpr std::int64_t kWaysCap = 1'000'000;
  std::vector<std::int64_t> ways(states, 0);
  ways[goal] = 1;
  std::vector<std::size_t> order;
  order.reserve(states);
  for (std::size_t s = 0; s < states; ++s)
    if (h[s] < kInf) order.push_back(s);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return h[a] < h[b]; });
  for (const std::size_t s : order) {
    const auto u = static_cast<NodeId>(s / static_cast<std::size_t>(k));
    const int ju = static_cast<int>(s % static_cast<std::size_t>(k)) + 1;
    if (h[s] >= kInf || (u == dst && ju == k)) continue;
    for (const Port& p : g.neighbors(u)) {
      if (link_dead(p.link)) continue;
      for_each_virtual_edge(ju, k, [&](int jv, int c) {
        const std::size_t sv = index(p.neighbor, jv);
        if (h[sv] < kInf && c + h[sv] == h[s]) {
          ways[s] = std::min(kWaysCap, ways[s] + ways[sv]);
          nh[s].push_back(VrfHop{p, jv, c, std::max<std::int64_t>(
                                               1, ways[sv])});
        }
      });
    }
  }
}

VrfTable VrfTable::compute(const Graph& g, int k, const LinkSet* dead,
                           util::Runner* runner) {
  SPINELESS_CHECK(k >= 1);
  VrfTable t;
  t.k_ = k;
  t.num_switches_ = g.num_switches();
  t.dist_.resize(static_cast<std::size_t>(g.num_switches()));
  t.nh_.resize(static_cast<std::size_t>(g.num_switches()));

  // Each destination's Dijkstra + tight-edge DP reads only the graph and
  // writes only its own dist_[dst] / nh_[dst] slots, so destinations fan
  // over the pool with byte-identical results.
  const auto n = static_cast<std::size_t>(g.num_switches());
  auto compute_dst = [&](std::size_t d) {
    t.compute_destination(g, dead, static_cast<NodeId>(d));
  };
  if (runner != nullptr && runner->jobs() > 1 && n > 1) {
    runner->run_batch(n, compute_dst);
  } else {
    for (std::size_t d = 0; d < n; ++d) compute_dst(d);
  }
  return t;
}

void VrfTable::recompute_destinations(const Graph& g, const LinkSet* dead,
                                      const std::vector<NodeId>& dsts,
                                      util::Runner* runner) {
  if (dsts.empty()) return;
  auto compute_dst = [&](std::size_t i) { compute_destination(g, dead, dsts[i]); };
  if (runner != nullptr && runner->jobs() > 1 && dsts.size() > 1) {
    runner->run_batch(dsts.size(), compute_dst);
  } else {
    for (std::size_t i = 0; i < dsts.size(); ++i) compute_dst(i);
  }
}

std::vector<NodeId> VrfTable::destinations_affected_by(const Graph& g,
                                                       topo::LinkId link,
                                                       bool now_dead) const {
  const NodeId a = g.link(link).a;
  const NodeId b = g.link(link).b;
  std::vector<NodeId> out;
  for (NodeId d = 0; d < num_switches_; ++d) {
    bool hit = false;
    if (now_dead) {
      // Removal: some installed next hop toward d crosses the link.
      for (const NodeId u : {a, b}) {
        for (int j = 1; j <= k_ && !hit; ++j)
          for (const VrfHop& hop : next_hops(u, j, d))
            if (hop.port.link == link) {
              hit = true;
              break;
            }
        if (hit) break;
      }
    } else {
      // Restore: a gadget edge (ju, u) -> (jv, v) over the link would be
      // tight or improving under the current distances. Check both
      // physical directions.
      const auto& dist = dist_[static_cast<std::size_t>(d)];
      auto direction_matters = [&](NodeId u, NodeId v) {
        for (int ju = 1; ju <= k_ && !hit; ++ju) {
          const int du = dist[index(u, ju)];
          for_each_virtual_edge(ju, k_, [&](int jv, int c) {
            const int dv = dist[index(v, jv)];
            if (dv < kInf && c + dv <= du) hit = true;
          });
        }
      };
      direction_matters(a, b);
      if (!hit) direction_matters(b, a);
    }
    if (hit) out.push_back(d);
  }
  return out;
}

std::vector<NodeId> VrfTable::splice_link_change(const Graph& g,
                                                 LinkSet& dead,
                                                 topo::LinkId link,
                                                 bool now_dead,
                                                 util::Runner* runner) {
  std::vector<NodeId> dsts = destinations_affected_by(g, link, now_dead);
  if (now_dead) {
    dead.insert(link);
  } else {
    dead.erase(link);
  }
  recompute_destinations(g, &dead, dsts, runner);
  return dsts;
}

bool VrfTable::theorem1_holds(const Graph& g, NodeId src, NodeId dst) const {
  if (src == dst) return true;
  const auto dist = topo::bfs_distances(g, src);
  const int l = dist[static_cast<std::size_t>(dst)];
  if (l < 0) return false;
  return source_distance(src, dst) == std::max(l, k_);
}

PathSet VrfTable::project_paths(NodeId src, NodeId dst, std::size_t cap) const {
  SPINELESS_CHECK(src != dst);
  std::set<Path> dedup;
  // DFS over tight virtual edges; costs are >= 1 so the tight-edge graph is
  // a DAG and the walk terminates.
  struct Frame {
    NodeId node;
    int vrf;
  };
  Path prefix{src};
  std::vector<Frame> stack;
  // Recursive lambda via explicit recursion.
  auto walk = [&](auto&& self, NodeId node, int vrf) -> void {
    if (dedup.size() >= cap) return;
    if (node == dst && vrf == k_) {
      dedup.insert(prefix);
      return;
    }
    for (const VrfHop& hop : next_hops(node, vrf, dst)) {
      // BGP loop prevention: every router is its own AS, so a route whose
      // AS-path revisits a router is never admitted. Enumerate only simple
      // physical paths (matters for K >= 3).
      if (std::find(prefix.begin(), prefix.end(), hop.port.neighbor) !=
          prefix.end())
        continue;
      prefix.push_back(hop.port.neighbor);
      self(self, hop.port.neighbor, hop.next_vrf);
      prefix.pop_back();
    }
  };
  walk(walk, src, k_);
  PathSet out(dedup.begin(), dedup.end());
  std::sort(out.begin(), out.end(), [](const Path& a, const Path& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    return a < b;
  });
  return out;
}

}  // namespace spineless::routing
