// Standard shortest-path ECMP: the routing leaf-spine networks run today
// (BGP/OSPF + equal-cost multipath), and the paper's baseline routing for
// flat networks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "routing/types.h"

namespace spineless::util {
class Runner;
}

namespace spineless::routing {

// Per-destination next-hop sets: at switch `node`, packets for destination
// ToR `dst` may take any port whose neighbor is one hop closer to dst.
//
// Storage is a flat CSR layout — one contiguous Port pool plus an offset
// table indexed by (dst, node) — instead of n^2 individual vectors, so
// per-packet lookups are two loads from contiguous arrays and table
// construction performs O(1) allocations.
class EcmpTable {
 public:
  // dead: links to treat as absent (failure modeling) — next hops never use
  // them and distances route around them. Unreachable destinations get an
  // empty next-hop set and distance -1.
  //
  // runner: optional pool to fan the per-destination BFS over. Destinations
  // are independent and every write lands in a pre-sized per-destination
  // slice, so the result is byte-identical to the serial build (nullptr or
  // a 1-job runner).
  static EcmpTable compute(const Graph& g, const LinkSet* dead = nullptr,
                           util::Runner* runner = nullptr);

  // Incremental repair (fault injection): recompute only the destinations
  // in `dsts` against the new dead set, splicing every other destination's
  // existing rows into the rebuilt CSR unchanged. BFS cost is
  // O(|dsts| * (V+E)) instead of O(V * (V+E)) for a full compute; pair
  // with destinations_affected_by to pick a sound `dsts` set.
  void recompute_destinations(const Graph& g, const LinkSet* dead,
                              const std::vector<NodeId>& dsts,
                              util::Runner* runner = nullptr);

  // Destinations whose distances or next-hop sets can change when `link`
  // fails (now_dead = true) or is restored (now_dead = false), judged
  // against this (pre-change) table. Exact for removals: a link is on some
  // shortest path toward d iff an endpoint's next-hop set references it.
  // For restores the criterion is the endpoints' distance gap (a link
  // joining equal-distance nodes creates no new shortest path).
  std::vector<NodeId> destinations_affected_by(const Graph& g,
                                               topo::LinkId link,
                                               bool now_dead) const;

  // One-call incremental splice (the serving layer's what-if queries):
  // find the destinations a single link transition can touch, apply the
  // transition to `dead`, and recompute exactly those destinations against
  // the updated set. Returns the affected destination list. Equivalent to
  // destinations_affected_by + dead.insert/erase + recompute_destinations,
  // packaged so callers cannot get the ordering wrong (the affected set
  // must be computed against the PRE-change table).
  std::vector<NodeId> splice_link_change(const Graph& g, LinkSet& dead,
                                         topo::LinkId link, bool now_dead,
                                         util::Runner* runner = nullptr);

  std::span<const Port> next_hops(NodeId node, NodeId dst) const {
    const std::size_t i = index(node, dst);
    return {ports_.data() + off_[i], off_[i + 1] - off_[i]};
  }
  int distance(NodeId node, NodeId dst) const {
    return dist_[index(node, dst)];
  }
  NodeId num_switches() const noexcept { return n_; }

 private:
  std::size_t index(NodeId node, NodeId dst) const {
    return static_cast<std::size_t>(dst) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(node);
  }

  NodeId n_ = 0;
  // CSR over (dst, node): ports_[off_[dst*n+node] .. off_[dst*n+node+1])
  // are the next hops of `node` toward `dst`; dist_ uses the same index.
  std::vector<Port> ports_;
  std::vector<std::uint32_t> off_;
  std::vector<int> dist_;
};

// Sanity checker used by tests and (behind NetworkConfig::validate_tables)
// by reconvergence: every next hop strictly decreases the distance to the
// destination (hence forwarding is loop-free), every switch that can still
// reach dst has at least one next hop, and table distances equal the true
// BFS distances of the surviving topology. `dead` names failed links, so
// post-failure tables validate against the degraded graph.
bool ecmp_table_valid(const Graph& g, const EcmpTable& table,
                      const LinkSet* dead = nullptr);

}  // namespace spineless::routing
