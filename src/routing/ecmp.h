// Standard shortest-path ECMP: the routing leaf-spine networks run today
// (BGP/OSPF + equal-cost multipath), and the paper's baseline routing for
// flat networks.
#pragma once

#include <set>
#include <vector>

#include "routing/types.h"

namespace spineless::routing {

// Per-destination next-hop sets: at switch `node`, packets for destination
// ToR `dst` may take any port whose neighbor is one hop closer to dst.
class EcmpTable {
 public:
  // dead: links to treat as absent (failure modeling) — next hops never use
  // them and distances route around them. Unreachable destinations get an
  // empty next-hop set and distance -1.
  static EcmpTable compute(const Graph& g,
                           const std::set<LinkId>* dead = nullptr);

  const std::vector<Port>& next_hops(NodeId node, NodeId dst) const {
    return nh_[static_cast<std::size_t>(dst)][static_cast<std::size_t>(node)];
  }
  int distance(NodeId node, NodeId dst) const {
    return dist_[static_cast<std::size_t>(dst)][static_cast<std::size_t>(node)];
  }
  NodeId num_switches() const {
    return static_cast<NodeId>(nh_.size());
  }

 private:
  // nh_[dst][node]; dist_[dst][node] = hops from node to dst.
  std::vector<std::vector<std::vector<Port>>> nh_;
  std::vector<std::vector<int>> dist_;
};

// Sanity checker used by tests: every next hop strictly decreases the
// distance to the destination (hence forwarding is loop-free), and every
// switch other than dst has at least one next hop.
bool ecmp_table_valid(const Graph& g, const EcmpTable& table);

}  // namespace spineless::routing
