// Deterministic, seed-driven fault schedules.
//
// A FaultPlan is parsed from a small spec string (benches and tests embed
// it next to the scenario it describes) into a time-sorted list of
// primitive actions over topology links. Everything downstream — which
// packets a gray link eats, when a BFD session trips, what the repaired
// tables look like — is a pure function of (spec, seed, topology), so a
// plan replays byte-identically under any --jobs / --intra_jobs split.
//
// Grammar: clauses separated by ';', tokens by whitespace, values as
// key=value. Times take ns/us/ms/s suffixes (fractions allowed).
//
//   flap    link=L down=2ms up=6ms            link L fails, then recovers
//   fail    link=L at=2ms                     fails and never recovers
//   switch  node=N down=2ms up=6ms            every link incident to N flaps
//   gray    link=L drop=0.01 corrupt=0.001 from=1ms until=9ms
//   degrade link=L rate=0.5 from=1ms until=8ms
//
// `corrupt=`, `until=` are optional (0 / forever). Gray drop/corruption is
// per-packet i.i.d. with a per-(seed, link, direction) RNG stream;
// corrupted packets cross the fabric and are discarded by the receiver's
// checksum. Degrade scales the port serialization rate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topo/graph.h"
#include "util/units.h"

namespace spineless::fault {

struct FaultAction {
  enum class Kind {
    kLinkDown,    // physical blackhole begins (both directions)
    kLinkUp,      // physical recovery
    kGrayOn,      // probabilistic drop / corruption begins
    kGrayOff,
    kDegradeOn,   // port rate scaled by rate_factor
    kDegradeOff,  // rate restored
  };
  Kind kind = Kind::kLinkDown;
  Time at = 0;
  topo::LinkId link = 0;
  double drop_prob = 0;      // kGrayOn
  double corrupt_prob = 0;   // kGrayOn
  double rate_factor = 1.0;  // kDegradeOn
};

class FaultPlan {
 public:
  // Parses `spec` against `g` (link/node ids are validated). Throws
  // spineless::Error on malformed specs. `seed` feeds every stochastic
  // element (gray-link RNG streams).
  static FaultPlan parse(const std::string& spec, const topo::Graph& g,
                         std::uint64_t seed);

  // Programmatic construction for derived plans — the hybrid engine
  // partitions a full-graph plan into a region sub-plan (link ids
  // renumbered into the region graph) and fluid/boundary event lists.
  // Actions are stable-sorted by time, same as parse.
  static FaultPlan from_actions(std::vector<FaultAction> actions,
                                std::uint64_t seed);

  // Sorted by (time, clause order) — the order the injector applies them.
  const std::vector<FaultAction>& actions() const noexcept { return actions_; }
  std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::vector<FaultAction> actions_;
  std::uint64_t seed_ = 0;
};

// "2ms", "1.5us", "250ns", "0.01s" -> picoseconds. Exposed for tests.
Time parse_time(const std::string& s);

}  // namespace spineless::fault
