#include "fault/fault_plan.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "util/error.h"

namespace spineless::fault {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::vector<std::string> tokens(const std::string& s) {
  std::istringstream in(s);
  std::vector<std::string> out;
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

// key=value pairs after the clause keyword.
std::map<std::string, std::string> keyvals(
    const std::vector<std::string>& toks, const std::string& clause) {
  std::map<std::string, std::string> kv;
  for (std::size_t i = 1; i < toks.size(); ++i) {
    const auto eq = toks[i].find('=');
    SPINELESS_CHECK_MSG(eq != std::string::npos && eq > 0,
                        "FaultPlan: expected key=value in clause '" + clause +
                            "', got '" + toks[i] + "'");
    kv[toks[i].substr(0, eq)] = toks[i].substr(eq + 1);
  }
  return kv;
}

const std::string& require(const std::map<std::string, std::string>& kv,
                           const std::string& key, const std::string& clause) {
  const auto it = kv.find(key);
  SPINELESS_CHECK_MSG(it != kv.end(), "FaultPlan: clause '" + clause +
                                          "' is missing " + key + "=");
  return it->second;
}

double parse_real(const std::string& s) {
  std::size_t used = 0;
  const double v = std::stod(s, &used);
  SPINELESS_CHECK_MSG(used == s.size(),
                      "FaultPlan: bad number '" + s + "'");
  return v;
}

topo::LinkId parse_link(const std::string& s, const topo::Graph& g) {
  const double v = parse_real(s);
  const auto l = static_cast<topo::LinkId>(v);
  SPINELESS_CHECK_MSG(static_cast<double>(l) == v && l >= 0 &&
                          l < g.num_links(),
                      "FaultPlan: link id out of range: " + s);
  return l;
}

}  // namespace

Time parse_time(const std::string& s) {
  std::size_t used = 0;
  double v = 0;
  try {
    v = std::stod(s, &used);
  } catch (const std::exception&) {
    throw Error("FaultPlan: bad time '" + s + "'");
  }
  const std::string suffix = s.substr(used);
  Time mult = 0;
  if (suffix == "ns") {
    mult = units::kNanosecond;
  } else if (suffix == "us") {
    mult = units::kMicrosecond;
  } else if (suffix == "ms") {
    mult = units::kMillisecond;
  } else if (suffix == "s") {
    mult = units::kSecond;
  } else {
    throw Error("FaultPlan: time '" + s + "' needs an ns/us/ms/s suffix");
  }
  SPINELESS_CHECK_MSG(v >= 0, "FaultPlan: negative time '" + s + "'");
  return static_cast<Time>(std::llround(v * static_cast<double>(mult)));
}

FaultPlan FaultPlan::parse(const std::string& spec, const topo::Graph& g,
                           std::uint64_t seed) {
  FaultPlan plan;
  plan.seed_ = seed;
  for (const std::string& clause : split(spec, ';')) {
    const auto toks = tokens(clause);
    if (toks.empty()) continue;  // empty clause (trailing ';')
    const std::string& kind = toks[0];
    const auto kv = keyvals(toks, clause);
    auto flap_links = [&](const std::vector<topo::LinkId>& links) {
      const Time down = parse_time(require(kv, "down", clause));
      const Time up = parse_time(require(kv, "up", clause));
      SPINELESS_CHECK_MSG(up > down,
                          "FaultPlan: up must follow down in '" + clause + "'");
      for (const topo::LinkId l : links) {
        plan.actions_.push_back({FaultAction::Kind::kLinkDown, down, l});
        plan.actions_.push_back({FaultAction::Kind::kLinkUp, up, l});
      }
    };
    if (kind == "flap") {
      flap_links({parse_link(require(kv, "link", clause), g)});
    } else if (kind == "fail") {
      plan.actions_.push_back({FaultAction::Kind::kLinkDown,
                               parse_time(require(kv, "at", clause)),
                               parse_link(require(kv, "link", clause), g)});
    } else if (kind == "switch") {
      const double nv = parse_real(require(kv, "node", clause));
      const auto node = static_cast<topo::NodeId>(nv);
      SPINELESS_CHECK_MSG(static_cast<double>(node) == nv && node >= 0 &&
                              node < g.num_switches(),
                          "FaultPlan: node id out of range in '" + clause +
                              "'");
      std::vector<topo::LinkId> incident;
      for (const topo::Port& p : g.neighbors(node))
        incident.push_back(p.link);
      SPINELESS_CHECK_MSG(!incident.empty(),
                          "FaultPlan: switch clause on isolated node");
      flap_links(incident);
    } else if (kind == "gray") {
      const topo::LinkId l = parse_link(require(kv, "link", clause), g);
      FaultAction on{FaultAction::Kind::kGrayOn,
                     parse_time(require(kv, "from", clause)), l};
      on.drop_prob = parse_real(require(kv, "drop", clause));
      const auto cit = kv.find("corrupt");
      on.corrupt_prob = cit != kv.end() ? parse_real(cit->second) : 0.0;
      SPINELESS_CHECK_MSG(on.drop_prob >= 0 && on.corrupt_prob >= 0 &&
                              on.drop_prob + on.corrupt_prob <= 1.0,
                          "FaultPlan: gray probabilities out of range in '" +
                              clause + "'");
      plan.actions_.push_back(on);
      const auto uit = kv.find("until");
      if (uit != kv.end()) {
        const Time until = parse_time(uit->second);
        SPINELESS_CHECK_MSG(until > on.at,
                            "FaultPlan: until must follow from in '" + clause +
                                "'");
        plan.actions_.push_back({FaultAction::Kind::kGrayOff, until, l});
      }
    } else if (kind == "degrade") {
      const topo::LinkId l = parse_link(require(kv, "link", clause), g);
      FaultAction on{FaultAction::Kind::kDegradeOn,
                     parse_time(require(kv, "from", clause)), l};
      on.rate_factor = parse_real(require(kv, "rate", clause));
      SPINELESS_CHECK_MSG(on.rate_factor > 0 && on.rate_factor <= 1.0,
                          "FaultPlan: rate factor out of (0, 1] in '" +
                              clause + "'");
      plan.actions_.push_back(on);
      const auto uit = kv.find("until");
      if (uit != kv.end()) {
        const Time until = parse_time(uit->second);
        SPINELESS_CHECK_MSG(until > on.at,
                            "FaultPlan: until must follow from in '" + clause +
                                "'");
        FaultAction off{FaultAction::Kind::kDegradeOff, until, l};
        plan.actions_.push_back(off);
      }
    } else {
      throw Error("FaultPlan: unknown clause kind '" + kind + "'");
    }
  }
  // Stable: simultaneous actions apply in spec order.
  std::stable_sort(
      plan.actions_.begin(), plan.actions_.end(),
      [](const FaultAction& a, const FaultAction& b) { return a.at < b.at; });
  return plan;
}

FaultPlan FaultPlan::from_actions(std::vector<FaultAction> actions,
                                  std::uint64_t seed) {
  FaultPlan plan;
  plan.seed_ = seed;
  plan.actions_ = std::move(actions);
  // Stable: simultaneous actions apply in caller order.
  std::stable_sort(
      plan.actions_.begin(), plan.actions_.end(),
      [](const FaultAction& a, const FaultAction& b) { return a.at < b.at; });
  return plan;
}

}  // namespace spineless::fault
