#include "fault/fault_plan.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>

#include "util/error.h"

namespace spineless::fault {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::vector<std::string> tokens(const std::string& s) {
  std::istringstream in(s);
  std::vector<std::string> out;
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

// key=value pairs after the clause keyword.
std::map<std::string, std::string> keyvals(
    const std::vector<std::string>& toks, const std::string& clause) {
  std::map<std::string, std::string> kv;
  for (std::size_t i = 1; i < toks.size(); ++i) {
    const auto eq = toks[i].find('=');
    SPINELESS_CHECK_MSG(eq != std::string::npos && eq > 0,
                        "FaultPlan: expected key=value in clause '" + clause +
                            "', got '" + toks[i] + "'");
    kv[toks[i].substr(0, eq)] = toks[i].substr(eq + 1);
  }
  return kv;
}

const std::string& require(const std::map<std::string, std::string>& kv,
                           const std::string& key, const std::string& clause) {
  const auto it = kv.find(key);
  SPINELESS_CHECK_MSG(it != kv.end(), "FaultPlan: clause '" + clause +
                                          "' is missing " + key + "=");
  return it->second;
}

double parse_real(const std::string& s) {
  std::size_t used = 0;
  const double v = std::stod(s, &used);
  SPINELESS_CHECK_MSG(used == s.size(),
                      "FaultPlan: bad number '" + s + "'");
  return v;
}

topo::LinkId parse_link(const std::string& s, const topo::Graph& g) {
  const double v = parse_real(s);
  const auto l = static_cast<topo::LinkId>(v);
  SPINELESS_CHECK_MSG(static_cast<double>(l) == v && l >= 0 &&
                          l < g.num_links(),
                      "FaultPlan: link id out of range: " + s);
  return l;
}

}  // namespace

Time parse_time(const std::string& s) {
  std::size_t used = 0;
  double v = 0;
  try {
    v = std::stod(s, &used);
  } catch (const std::exception&) {
    throw Error("FaultPlan: bad time '" + s + "'");
  }
  const std::string suffix = s.substr(used);
  Time mult = 0;
  if (suffix == "ns") {
    mult = units::kNanosecond;
  } else if (suffix == "us") {
    mult = units::kMicrosecond;
  } else if (suffix == "ms") {
    mult = units::kMillisecond;
  } else if (suffix == "s") {
    mult = units::kSecond;
  } else {
    throw Error("FaultPlan: time '" + s + "' needs an ns/us/ms/s suffix");
  }
  SPINELESS_CHECK_MSG(v >= 0, "FaultPlan: negative time '" + s + "'");
  return static_cast<Time>(std::llround(v * static_cast<double>(mult)));
}

namespace {

// One clause's claim on a link: which fault channel it drives (physical
// up/down, gray loss, or rate degrade — independent state machines in the
// injector) and over what [start, end) window. Two clauses may target the
// same link only on different channels or disjoint windows; overlapping
// claims used to resolve silently as last-writer-wins, which turns a spec
// typo into a quietly different experiment.
struct ClauseWindow {
  topo::LinkId link;
  int channel;  // 0 = physical, 1 = gray, 2 = degrade
  Time start;
  Time end;  // exclusive; kForever when the clause never releases the link
  std::string clause;
};

constexpr Time kForever = std::numeric_limits<Time>::max();

const char* channel_name(int channel) {
  switch (channel) {
    case 0: return "physical";
    case 1: return "gray";
    default: return "degrade";
  }
}

void reject_overlaps(std::vector<ClauseWindow> windows) {
  // Sort by (link, channel, start); spec order breaks start ties so the
  // error always names the earlier clause first.
  std::stable_sort(windows.begin(), windows.end(),
                   [](const ClauseWindow& a, const ClauseWindow& b) {
                     if (a.link != b.link) return a.link < b.link;
                     if (a.channel != b.channel) return a.channel < b.channel;
                     return a.start < b.start;
                   });
  for (std::size_t i = 1; i < windows.size(); ++i) {
    const ClauseWindow& prev = windows[i - 1];
    const ClauseWindow& cur = windows[i];
    if (prev.link != cur.link || prev.channel != cur.channel) continue;
    if (prev.end > cur.start) {
      throw Error("FaultPlan: clause '" + cur.clause + "' overlaps clause '" +
                  prev.clause + "' on link " + std::to_string(cur.link) +
                  " (" + std::string(channel_name(cur.channel)) +
                  " channel): duplicate clauses targeting the same link must "
                  "use disjoint time windows");
    }
  }
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec, const topo::Graph& g,
                           std::uint64_t seed) {
  FaultPlan plan;
  plan.seed_ = seed;
  std::vector<ClauseWindow> windows;
  for (const std::string& clause : split(spec, ';')) {
    const auto toks = tokens(clause);
    if (toks.empty()) continue;  // empty clause (trailing ';')
    const std::string& kind = toks[0];
    const auto kv = keyvals(toks, clause);
    auto note = [&](topo::LinkId l, int channel, Time start, Time end) {
      windows.push_back({l, channel, start, end, clause});
    };
    auto flap_links = [&](const std::vector<topo::LinkId>& links) {
      const Time down = parse_time(require(kv, "down", clause));
      const Time up = parse_time(require(kv, "up", clause));
      SPINELESS_CHECK_MSG(up > down,
                          "FaultPlan: up must follow down in '" + clause + "'");
      for (const topo::LinkId l : links) {
        plan.actions_.push_back({FaultAction::Kind::kLinkDown, down, l});
        plan.actions_.push_back({FaultAction::Kind::kLinkUp, up, l});
        note(l, 0, down, up);
      }
    };
    if (kind == "flap") {
      flap_links({parse_link(require(kv, "link", clause), g)});
    } else if (kind == "fail") {
      const Time at = parse_time(require(kv, "at", clause));
      const topo::LinkId l = parse_link(require(kv, "link", clause), g);
      plan.actions_.push_back({FaultAction::Kind::kLinkDown, at, l});
      note(l, 0, at, kForever);
    } else if (kind == "switch") {
      const double nv = parse_real(require(kv, "node", clause));
      const auto node = static_cast<topo::NodeId>(nv);
      SPINELESS_CHECK_MSG(static_cast<double>(node) == nv && node >= 0 &&
                              node < g.num_switches(),
                          "FaultPlan: node id out of range in '" + clause +
                              "'");
      std::vector<topo::LinkId> incident;
      for (const topo::Port& p : g.neighbors(node))
        incident.push_back(p.link);
      SPINELESS_CHECK_MSG(!incident.empty(),
                          "FaultPlan: switch clause on isolated node");
      flap_links(incident);
    } else if (kind == "gray") {
      const topo::LinkId l = parse_link(require(kv, "link", clause), g);
      FaultAction on{FaultAction::Kind::kGrayOn,
                     parse_time(require(kv, "from", clause)), l};
      on.drop_prob = parse_real(require(kv, "drop", clause));
      const auto cit = kv.find("corrupt");
      on.corrupt_prob = cit != kv.end() ? parse_real(cit->second) : 0.0;
      SPINELESS_CHECK_MSG(on.drop_prob >= 0 && on.corrupt_prob >= 0 &&
                              on.drop_prob + on.corrupt_prob <= 1.0,
                          "FaultPlan: gray probabilities out of range in '" +
                              clause + "'");
      plan.actions_.push_back(on);
      const auto uit = kv.find("until");
      Time gray_end = kForever;
      if (uit != kv.end()) {
        const Time until = parse_time(uit->second);
        SPINELESS_CHECK_MSG(until > on.at,
                            "FaultPlan: until must follow from in '" + clause +
                                "'");
        plan.actions_.push_back({FaultAction::Kind::kGrayOff, until, l});
        gray_end = until;
      }
      note(l, 1, on.at, gray_end);
    } else if (kind == "degrade") {
      const topo::LinkId l = parse_link(require(kv, "link", clause), g);
      FaultAction on{FaultAction::Kind::kDegradeOn,
                     parse_time(require(kv, "from", clause)), l};
      on.rate_factor = parse_real(require(kv, "rate", clause));
      SPINELESS_CHECK_MSG(on.rate_factor > 0 && on.rate_factor <= 1.0,
                          "FaultPlan: rate factor out of (0, 1] in '" +
                              clause + "'");
      plan.actions_.push_back(on);
      const auto uit = kv.find("until");
      Time degrade_end = kForever;
      if (uit != kv.end()) {
        const Time until = parse_time(uit->second);
        SPINELESS_CHECK_MSG(until > on.at,
                            "FaultPlan: until must follow from in '" + clause +
                                "'");
        FaultAction off{FaultAction::Kind::kDegradeOff, until, l};
        plan.actions_.push_back(off);
        degrade_end = until;
      }
      note(l, 2, on.at, degrade_end);
    } else {
      throw Error("FaultPlan: unknown clause kind '" + kind + "'");
    }
  }
  reject_overlaps(std::move(windows));
  // Stable: simultaneous actions apply in spec order.
  std::stable_sort(
      plan.actions_.begin(), plan.actions_.end(),
      [](const FaultAction& a, const FaultAction& b) { return a.at < b.at; });
  return plan;
}

FaultPlan FaultPlan::from_actions(std::vector<FaultAction> actions,
                                  std::uint64_t seed) {
  FaultPlan plan;
  plan.seed_ = seed;
  plan.actions_ = std::move(actions);
  // Stable: simultaneous actions apply in caller order.
  std::stable_sort(
      plan.actions_.begin(), plan.actions_.end(),
      [](const FaultAction& a, const FaultAction& b) { return a.at < b.at; });
  return plan;
}

}  // namespace spineless::fault
