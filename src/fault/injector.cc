#include "fault/injector.h"

#include <algorithm>

#include "util/json.h"

namespace spineless::fault {

// Hello transmitter for one directed link. Lives in the transmitting
// switch's shard; re-schedules itself every hello_interval and enqueues a
// control packet on the link — which drops it if the link is down, exactly
// like a real hello into a dead port.
class FaultInjector::HelloTx : public sim::EventSink {
 public:
  void init(FaultInjector* inj, topo::LinkId link, int dir) {
    inj_ = inj;
    link_ = link;
    dir_ = dir;
  }
  void on_event(Simulator& sim, std::uint64_t) override {
    if (sim.now() + inj_->cfg_.hello_interval <= inj_->hello_until_)
      sim.schedule_after(inj_->cfg_.hello_interval, this, 0);
    inj_->net_.send_hello(sim, link_, dir_);
  }

 private:
  FaultInjector* inj_ = nullptr;
  topo::LinkId link_ = 0;
  int dir_ = 0;
};

// Hold-timer state for one directed link, owned by the receiving switch's
// shard. Deadline-checked: every valid hello arms a check at now + hold;
// a check that finds no hello within the hold window declares the link
// down. Declarations are handed to the injector as global events at
// now + repair_delay — never by touching injector state from shard
// context.
class FaultInjector::BfdRx : public sim::EventSink {
 public:
  void init(FaultInjector* inj, topo::LinkId link) {
    inj_ = inj;
    link_ = link;
  }
  void hello(Simulator& sim) {
    last_rx_ = sim.now();
    if (down_) {
      down_ = false;
      inj_->schedule_repair(sim, link_, /*up=*/true);
    }
    sim.schedule_after(inj_->hold_time(), this, 0);
  }
  // Prime the session at arm time as if a hello had just been seen, so a
  // link that dies before the first real hello still gets detected.
  void prime(Simulator& sim, Time check_at) {
    last_rx_ = sim.now();
    sim.schedule_at(check_at, this, 0);
  }
  void on_event(Simulator& sim, std::uint64_t) override {
    if (down_) return;  // stale check from before the declaration
    if (sim.now() - last_rx_ >= inj_->hold_time()) {
      down_ = true;
      inj_->schedule_repair(sim, link_, /*up=*/false);
    }
  }
  void save_state(sim::SnapshotWriter& w) const {
    w.i64(last_rx_);
    w.u8(down_ ? 1 : 0);
  }
  void load_state(sim::SnapshotReader& r) {
    last_rx_ = r.i64();
    down_ = r.u8() != 0;
  }

 private:
  FaultInjector* inj_ = nullptr;
  topo::LinkId link_ = 0;
  Time last_rx_ = 0;
  bool down_ = false;
};

void FaultInjectorConfig::validate(Time link_delay) const {
  if (repair_delay < link_delay) {
    throw Error("FaultInjectorConfig: repair_delay (" +
                std::to_string(repair_delay) + "ps) is below the network "
                "link delay (" + std::to_string(link_delay) +
                "ps) — repair events would land inside the sharded engine's "
                "lookahead horizon and break cross-shard determinism");
  }
  if (hello_interval <= 0) {
    throw Error("FaultInjectorConfig: hello_interval must be positive, got " +
                std::to_string(hello_interval) + "ps");
  }
  if (hold_count < 1) {
    throw Error("FaultInjectorConfig: hold_count must be >= 1, got " +
                std::to_string(hold_count));
  }
}

FaultInjector::FaultInjector(Network& net, const FaultPlan& plan,
                             const FaultInjectorConfig& cfg)
    : net_(net), plan_(plan), cfg_(cfg) {
  net_.register_global_sink(this);
  net_.set_hello_handler(this);

  const topo::Graph& g = net_.graph();
  num_sessions_ = 2 * static_cast<std::size_t>(g.num_links());
  tx_ = std::make_unique<HelloTx[]>(num_sessions_);
  rx_ = std::make_unique<BfdRx[]>(num_sessions_);
  for (topo::LinkId l = 0; l < g.num_links(); ++l) {
    for (int dir = 0; dir < 2; ++dir) {
      const std::size_t idx = 2 * static_cast<std::size_t>(l) +
                              static_cast<std::size_t>(dir);
      const topo::NodeId tx_node = dir == 0 ? g.link(l).a : g.link(l).b;
      const topo::NodeId rx_node = dir == 0 ? g.link(l).b : g.link(l).a;
      tx_[idx].init(this, l, dir);
      tx_[idx].set_event_identity(net_.next_oid(),
                                  net_.shard_of_switch(tx_node));
      rx_[idx].init(this, l);
      rx_[idx].set_event_identity(net_.next_oid(),
                                  net_.shard_of_switch(rx_node));
    }
  }
  link_log_.resize(static_cast<std::size_t>(g.num_links()));
}

FaultInjector::~FaultInjector() { net_.set_hello_handler(nullptr); }

void FaultInjector::arm(Simulator& sim, Time until) {
  cfg_.validate(net_.config().link_delay);
  hello_until_ = until;
  arm_actions(sim);
  // Stagger hello start times evenly across one interval so the fabric is
  // not probed in lockstep (and the stagger is a pure function of the
  // session index — deterministic).
  const Time start = sim.now();
  for (std::size_t idx = 0; idx < num_sessions_; ++idx) {
    const Time offset =
        static_cast<Time>(static_cast<std::size_t>(cfg_.hello_interval) * idx /
                          num_sessions_);
    sim.schedule_at(start + offset, &tx_[idx], 0);
    rx_[idx].prime(sim, start + offset + hold_time());
  }
}

void FaultInjector::arm_actions(Simulator& sim) {
  cfg_.validate(net_.config().link_delay);
  for (std::size_t i = 0; i < plan_.actions().size(); ++i) {
    SPINELESS_CHECK_MSG(plan_.actions()[i].at >= sim.now(),
                        "FaultInjector: plan action at t="
                            << plan_.actions()[i].at
                            << " is before the engine clock " << sim.now()
                            << " (what-if faults must start after the warm "
                               "checkpoint)");
    sim.schedule_at(plan_.actions()[i].at, this, i);
  }
}

void FaultInjector::on_hello(Simulator& sim, const sim::Packet& pkt) {
  const auto idx = static_cast<std::size_t>(pkt.seq);
  SPINELESS_DCHECK(idx < num_sessions_);
  rx_[idx].hello(sim);
}

void FaultInjector::schedule_repair(Simulator& sim, topo::LinkId link,
                                    bool up) {
  // ctx layout: plain indexes are plan actions; repair events set the high
  // bit and pack (link, direction-of-change) below it. The encoding must
  // not depend on the plan size: a warm checkpoint saved under one plan is
  // restored into an experiment armed with another (the serving layer's
  // what-if requests), and an in-flight repair whose ctx were
  // `actions.size() + k` would silently re-decode as a plan action there.
  const std::uint64_t ctx = kRepairCtxBit |
                            (2 * static_cast<std::uint64_t>(link) +
                             (up ? 1 : 0));
  sim.schedule_at(sim.now() + cfg_.repair_delay, this, ctx);
}

void FaultInjector::on_event(Simulator& sim, std::uint64_t ctx) {
  if ((ctx & kRepairCtxBit) == 0) {
    SPINELESS_DCHECK(ctx < plan_.actions().size());
    apply_action(plan_.actions()[ctx], sim.now());
    return;
  }
  const std::uint64_t rest = ctx & ~kRepairCtxBit;
  apply_repair(static_cast<topo::LinkId>(rest / 2), (rest % 2) != 0,
               sim.now());
}

void FaultInjector::apply_action(const FaultAction& a, Time now) {
  LinkLog& log = link_log_[static_cast<std::size_t>(a.link)];
  switch (a.kind) {
    case FaultAction::Kind::kLinkDown:
      net_.set_link_phys(a.link, /*up=*/false);
      if (log.open_outage < 0) {
        log.open_outage = static_cast<int>(outages_.size());
        outages_.push_back({});
        outages_.back().link = a.link;
      }
      outages_[static_cast<std::size_t>(log.open_outage)].t_down = now;
      break;
    case FaultAction::Kind::kLinkUp:
      net_.set_link_phys(a.link, /*up=*/true);
      if (log.open_outage >= 0) {
        Outage& o = outages_[static_cast<std::size_t>(log.open_outage)];
        o.t_restored = now;
        // If the control plane never reacted (flap shorter than the hold
        // window), the cycle is complete now.
        if (o.t_routed_out < 0) log.open_outage = -1;
      }
      break;
    case FaultAction::Kind::kGrayOn:
      net_.set_link_gray(a.link, a.drop_prob, a.corrupt_prob,
                         splitmix64(plan_.seed() ^
                                    static_cast<std::uint64_t>(a.link)));
      if (log.open_gray < 0) {
        log.open_gray = static_cast<int>(gray_windows_.size());
        gray_windows_.push_back({a.link, now, -1, false});
      }
      break;
    case FaultAction::Kind::kGrayOff:
      net_.clear_link_gray(a.link);
      if (log.open_gray >= 0) {
        gray_windows_[static_cast<std::size_t>(log.open_gray)].until = now;
        log.open_gray = -1;
      }
      break;
    case FaultAction::Kind::kDegradeOn:
      net_.set_link_rate_factor(a.link, a.rate_factor);
      break;
    case FaultAction::Kind::kDegradeOff:
      net_.set_link_rate_factor(a.link, 1.0);
      break;
  }
}

void FaultInjector::apply_repair(topo::LinkId link, bool up, Time now) {
  LinkLog& log = link_log_[static_cast<std::size_t>(link)];
  if (!up) {
    // Both directions can trip: the first declaration wins, the second is
    // a no-op because the link is already routed out.
    if (net_.link_routed_out(link)) return;
    net_.set_link_routed_out(link, true);
    net_.repair_tables();
    if (log.open_outage < 0) {
      // No physical outage on record: a gray link tripped BFD (or a
      // detection raced a very short flap's recovery).
      log.open_outage = static_cast<int>(outages_.size());
      outages_.push_back({});
      outages_.back().link = link;
    }
    Outage& o = outages_[static_cast<std::size_t>(log.open_outage)];
    o.t_detected = now - cfg_.repair_delay;  // the hold-expiry instant
    o.t_routed_out = now;
    if (log.open_gray >= 0)
      gray_windows_[static_cast<std::size_t>(log.open_gray)].detected = true;
    return;
  }
  // Up-detection: a valid hello crossed a routed-out link. Ignore if the
  // link has gone physically down again since the hello was seen.
  if (!net_.link_routed_out(link) || net_.link_phys_down(link)) return;
  net_.set_link_routed_out(link, false);
  net_.repair_tables();
  if (log.open_outage >= 0) {
    Outage& o = outages_[static_cast<std::size_t>(log.open_outage)];
    o.t_up_detected = now - cfg_.repair_delay;
    o.t_routed_in = now;
    log.open_outage = -1;
  }
}

void FaultInjector::collect_sinks(sim::SinkRegistry& reg) {
  reg.add(this, sim::CtxKind::kPlain);
  for (std::size_t idx = 0; idx < num_sessions_; ++idx) {
    reg.add(&tx_[idx], sim::CtxKind::kPlain);
    reg.add(&rx_[idx], sim::CtxKind::kPlain);
  }
}

void FaultInjector::save_state(sim::SnapshotWriter& w) const {
  w.i64(hello_until_);
  w.u64(num_sessions_);
  for (std::size_t idx = 0; idx < num_sessions_; ++idx)
    rx_[idx].save_state(w);
  w.u64(link_log_.size());
  for (const LinkLog& log : link_log_) {
    w.u32(static_cast<std::uint32_t>(log.open_outage));
    w.u32(static_cast<std::uint32_t>(log.open_gray));
  }
  w.u64(outages_.size());
  for (const Outage& o : outages_) {
    w.i64(static_cast<std::int64_t>(o.link));
    w.i64(o.t_down);
    w.i64(o.t_detected);
    w.i64(o.t_routed_out);
    w.i64(o.t_restored);
    w.i64(o.t_up_detected);
    w.i64(o.t_routed_in);
  }
  w.u64(gray_windows_.size());
  for (const GrayWindow& g : gray_windows_) {
    w.i64(static_cast<std::int64_t>(g.link));
    w.i64(g.from);
    w.i64(g.until);
    w.u8(g.detected ? 1 : 0);
  }
}

void FaultInjector::load_state(sim::SnapshotReader& r) {
  hello_until_ = r.i64();
  SPINELESS_CHECK_MSG(
      r.u64() == num_sessions_,
      "snapshot BFD session count does not match the reconstructed fabric");
  for (std::size_t idx = 0; idx < num_sessions_; ++idx)
    rx_[idx].load_state(r);
  SPINELESS_CHECK(r.u64() == link_log_.size());
  for (LinkLog& log : link_log_) {
    log.open_outage = static_cast<int>(r.u32());
    log.open_gray = static_cast<int>(r.u32());
  }
  outages_.resize(r.u64());
  for (Outage& o : outages_) {
    o.link = static_cast<topo::LinkId>(r.i64());
    o.t_down = r.i64();
    o.t_detected = r.i64();
    o.t_routed_out = r.i64();
    o.t_restored = r.i64();
    o.t_up_detected = r.i64();
    o.t_routed_in = r.i64();
  }
  gray_windows_.resize(r.u64());
  for (GrayWindow& g : gray_windows_) {
    g.link = static_cast<topo::LinkId>(r.i64());
    g.from = r.i64();
    g.until = r.i64();
    g.detected = r.u8() != 0;
  }
}

FaultInjector::Report FaultInjector::report(Time end) const {
  Report r;
  r.outages = outages_;
  r.gray_windows = gray_windows_;
  for (const Outage& o : r.outages) {
    if (o.t_down < 0) continue;  // gray-triggered: nothing blackholed
    Time stop = end;
    if (o.t_routed_out >= 0) stop = std::min(stop, o.t_routed_out);
    if (o.t_restored >= 0) stop = std::min(stop, o.t_restored);
    if (stop > o.t_down) r.blackhole_seconds += units::to_seconds(stop - o.t_down);
  }
  for (const GrayWindow& w : r.gray_windows)
    if (!w.detected) ++r.undetected_gray_windows;
  return r;
}

std::string FaultInjector::report_json(Time end) const {
  const Report r = report(end);
  JsonWriter w;
  w.begin_object();
  w.kv("blackhole_seconds", r.blackhole_seconds);
  w.kv("undetected_gray_windows", r.undetected_gray_windows);
  w.key("outages");
  w.begin_array();
  for (const Outage& o : r.outages) {
    w.begin_object();
    w.kv("link", static_cast<std::int64_t>(o.link));
    w.kv("t_down", static_cast<std::int64_t>(o.t_down));
    w.kv("t_detected", static_cast<std::int64_t>(o.t_detected));
    w.kv("t_routed_out", static_cast<std::int64_t>(o.t_routed_out));
    w.kv("t_restored", static_cast<std::int64_t>(o.t_restored));
    w.kv("t_up_detected", static_cast<std::int64_t>(o.t_up_detected));
    w.kv("t_routed_in", static_cast<std::int64_t>(o.t_routed_in));
    w.end_object();
  }
  w.end_array();
  w.key("gray_windows");
  w.begin_array();
  for (const GrayWindow& g : r.gray_windows) {
    w.begin_object();
    w.kv("link", static_cast<std::int64_t>(g.link));
    w.kv("from", static_cast<std::int64_t>(g.from));
    w.kv("until", static_cast<std::int64_t>(g.until));
    w.kv("detected", g.detected);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace spineless::fault
