// Graceful-degradation metrics: what the network actually delivered while
// faults were active.
//
// The DegradationMonitor samples the network's cumulative fault counters
// (delivered payload bytes, blackholed / gray-dropped / checksum-discarded
// / unroutable packets) on a fixed cadence, giving a goodput timeline
// across each fault event: the dip when a link blackholes, the partial
// loss under a gray failure, and the recovery after restore. Pair with
// FaultInjector::report for the control-plane view (detection and outage
// windows); together they answer "how gracefully did the fabric degrade".
//
// Global sink (samples read whole-network state), same determinism story
// as QueueMonitor: samples are byte-identical for any intra_jobs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/checkpoint.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace spineless::sim {
class FlowDriver;
}

namespace spineless::fault {

using sim::Simulator;

class DegradationMonitor : public sim::EventSink, public sim::Checkpointable {
 public:
  struct Sample {
    Time t = 0;
    // Cumulative since the start of the run.
    std::int64_t delivered_bytes = 0;
    std::int64_t blackhole_drops = 0;
    std::int64_t gray_drops = 0;
    std::int64_t corrupt_drops = 0;
    std::int64_t no_route_drops = 0;
  };

  DegradationMonitor(sim::Network& net, Time interval);

  // Samples at `from` and every interval after, until `until`.
  void start(Simulator& sim, Time from, Time until);

  void on_event(Simulator& sim, std::uint64_t ctx) override;

  // sim::Checkpointable.
  void collect_sinks(sim::SinkRegistry& reg) override {
    reg.add(this, sim::CtxKind::kPlain);
  }
  void save_state(sim::SnapshotWriter& w) const override;
  void load_state(sim::SnapshotReader& r) override;

  const std::vector<Sample>& samples() const noexcept { return samples_; }

  // Mean goodput (payload bits per second actually delivered) between the
  // samples nearest `from` and `to` — e.g. pre-fault vs. post-restore to
  // measure recovery. Returns 0 when fewer than two samples cover the
  // range.
  double mean_goodput_bps(Time from, Time to) const;

  // Flows that hit at least one RTO but still completed — rescued by the
  // retransmission timer rather than fast recovery.
  static std::size_t flows_rescued_by_rto(const sim::FlowDriver& driver);

  // "t_ps,delivered_bytes,blackhole,gray,corrupt,no_route" per line.
  std::string to_csv() const;
  // Timeline as JSON (no wall times: byte-identical serial vs. sharded).
  std::string to_json() const;

 private:
  sim::Network& net_;
  Time interval_;
  Time until_ = 0;
  std::vector<Sample> samples_;
};

}  // namespace spineless::fault
