#include "fault/degradation.h"

#include <sstream>

#include "sim/tcp.h"
#include "util/json.h"

namespace spineless::fault {

DegradationMonitor::DegradationMonitor(sim::Network& net, Time interval)
    : net_(net), interval_(interval) {
  SPINELESS_CHECK(interval > 0);
  // A sample sums every shard's counter stripe and every link's stats, so
  // it must fire barrier-synchronized between shard windows.
  net.register_global_sink(this);
}

void DegradationMonitor::start(Simulator& sim, Time from, Time until) {
  SPINELESS_CHECK(until > from);
  until_ = until;
  sim.schedule_at(from, this, 0);
}

void DegradationMonitor::on_event(Simulator& sim, std::uint64_t /*ctx*/) {
  const sim::Network::NetStats stats = net_.stats();
  Sample s;
  s.t = sim.now();
  s.delivered_bytes = stats.delivered_bytes;
  s.blackhole_drops = stats.blackhole_drops;
  s.gray_drops = stats.gray_drops;
  s.corrupt_drops = stats.corrupt_drops;
  s.no_route_drops = stats.no_route_drops;
  samples_.push_back(s);
  if (sim.now() + interval_ <= until_) sim.schedule_after(interval_, this, 0);
}

void DegradationMonitor::save_state(sim::SnapshotWriter& w) const {
  w.i64(until_);
  w.u64(samples_.size());
  for (const Sample& s : samples_) {
    w.i64(s.t);
    w.i64(s.delivered_bytes);
    w.i64(s.blackhole_drops);
    w.i64(s.gray_drops);
    w.i64(s.corrupt_drops);
    w.i64(s.no_route_drops);
  }
}

void DegradationMonitor::load_state(sim::SnapshotReader& r) {
  until_ = r.i64();
  samples_.resize(r.u64());
  for (Sample& s : samples_) {
    s.t = r.i64();
    s.delivered_bytes = r.i64();
    s.blackhole_drops = r.i64();
    s.gray_drops = r.i64();
    s.corrupt_drops = r.i64();
    s.no_route_drops = r.i64();
  }
}

double DegradationMonitor::mean_goodput_bps(Time from, Time to) const {
  // The last sample at or before each bound; goodput is the delivered-byte
  // delta over the actual sample-time delta.
  const Sample* lo = nullptr;
  const Sample* hi = nullptr;
  for (const Sample& s : samples_) {
    if (s.t <= from) lo = &s;
    if (s.t <= to) hi = &s;
  }
  if (lo == nullptr || hi == nullptr || hi->t <= lo->t) return 0;
  return static_cast<double>(hi->delivered_bytes - lo->delivered_bytes) * 8.0 /
         units::to_seconds(hi->t - lo->t);
}

std::size_t DegradationMonitor::flows_rescued_by_rto(
    const sim::FlowDriver& driver) {
  std::size_t rescued = 0;
  for (std::size_t i = 0; i < driver.num_flows(); ++i) {
    const sim::FlowRecord& r = driver.flow(i).record();
    if (r.completed() && r.timeouts > 0) ++rescued;
  }
  return rescued;
}

std::string DegradationMonitor::to_csv() const {
  std::ostringstream os;
  os << "t_ps,delivered_bytes,blackhole,gray,corrupt,no_route\n";
  for (const Sample& s : samples_) {
    os << s.t << ',' << s.delivered_bytes << ',' << s.blackhole_drops << ','
       << s.gray_drops << ',' << s.corrupt_drops << ',' << s.no_route_drops
       << "\n";
  }
  return os.str();
}

std::string DegradationMonitor::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("samples");
  w.begin_array();
  for (const Sample& s : samples_) {
    w.begin_object();
    w.kv("t", static_cast<std::int64_t>(s.t));
    w.kv("delivered_bytes", s.delivered_bytes);
    w.kv("blackhole_drops", s.blackhole_drops);
    w.kv("gray_drops", s.gray_drops);
    w.kv("corrupt_drops", s.corrupt_drops);
    w.kv("no_route_drops", s.no_route_drops);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace spineless::fault
