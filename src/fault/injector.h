// FaultInjector: applies a FaultPlan to a live Network and replaces the
// oracle reconvergence trigger with in-band detection.
//
// Detection model (BFD-style): every directed link runs a hello
// transmitter at the sending switch (a 64-byte control packet each
// hello_interval, sharing the data path — so it queues, serializes, and
// dies with the link like real BFD) and a hold timer at the receiving
// switch. When no valid hello has arrived for hold_count * hello_interval,
// the receiver declares the link down; the "control plane" routes the link
// out of the forwarding tables repair_delay later (detection + incremental
// reconvergence = the measured outage window). A hello arriving on a link
// that was declared down starts the symmetric restore path. Gray links
// that still pass hellos are — correctly — never detected: the traffic
// they eat is visible only in the degradation metrics.
//
// Determinism: hello transmitters and hold timers are ordinary simulator
// events with construction-order oids; per-link gray RNG streams are pure
// functions of (plan seed, link). Shard-side detections never touch
// injector state directly — they schedule a global (barrier-synchronized)
// event at now + repair_delay, which is also why repair_delay must be at
// least the network's link delay (the sharded engine's lookahead horizon).
// The whole run — reports included — is byte-identical for any intra_jobs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "sim/checkpoint.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace spineless::fault {

using sim::Network;
using sim::Simulator;

struct FaultInjectorConfig {
  Time hello_interval = 100 * units::kMicrosecond;
  // Hold time = hold_count * hello_interval without a valid hello before
  // the receiver declares the link down (BFD detect multiplier).
  int hold_count = 3;
  // Detection -> repaired tables: the control-plane reaction time
  // (incremental reconvergence + FIB install). Must be >= the network's
  // link delay (sharded-engine lookahead).
  Time repair_delay = 500 * units::kMicrosecond;

  // Throws spineless::Error naming the offending value when the config
  // cannot run deterministically: repair_delay below `link_delay` would
  // schedule global repair events inside the sharded engine's lookahead
  // horizon (silent cross-shard nondeterminism), and a non-positive
  // hello_interval / hold_count < 1 degenerates the BFD machinery.
  // FaultInjector::arm() calls this; callers embedding the config elsewhere
  // (the hybrid fluid outage model) validate through the same path.
  void validate(Time link_delay) const;
};

class FaultInjector : public sim::EventSink,
                      public sim::HelloHandler,
                      public sim::Checkpointable {
 public:
  // Registers itself as the network's hello handler and draws oids for
  // every per-directed-link BFD session — construct in the same order as
  // every other dynamic sink to keep runs comparable.
  FaultInjector(Network& net, const FaultPlan& plan,
                const FaultInjectorConfig& cfg = {});
  ~FaultInjector() override;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Schedules every plan action and starts the BFD machinery (hello
  // transmissions stop after `until`). Call once, before running.
  void arm(Simulator& sim, Time until);

  // Restore-safe arming: schedules ONLY the plan actions, leaving the BFD
  // machinery alone. This is the entry point for experiments that restore
  // a warm checkpoint whose event arrays already contain the hello/hold
  // events (re-running arm() would duplicate them): construct the injector
  // with the request's plan, restore, then arm_actions. Throws when any
  // action predates the engine clock — a what-if fault cannot land inside
  // the already-simulated warm prefix.
  void arm_actions(Simulator& sim);

  // One routed-out/routed-in cycle of a link. Times are -1 when the
  // corresponding transition never happened. A gray link that trips BFD
  // (e.g. drop=1.0) produces an outage with t_down == -1: the data plane
  // never went physically down, yet the control plane reacted.
  struct Outage {
    topo::LinkId link = 0;
    Time t_down = -1;        // physical failure
    Time t_detected = -1;    // BFD hold expiry (first direction to trip)
    Time t_routed_out = -1;  // repaired tables installed (detection +
                             // repair_delay)
    Time t_restored = -1;    // physical recovery
    Time t_up_detected = -1;   // first valid hello after routed-out
    Time t_routed_in = -1;     // link back in the tables
  };

  struct GrayWindow {
    topo::LinkId link = 0;
    Time from = 0;
    Time until = -1;        // -1: still active at report time
    bool detected = false;  // BFD tripped during the window
  };

  struct Report {
    std::vector<Outage> outages;
    std::vector<GrayWindow> gray_windows;
    // Seconds during which packets offered to a failed-but-still-routed
    // link were blackholed, summed over links: for each outage,
    // min(t_routed_out, t_restored, end) - t_down.
    double blackhole_seconds = 0;
    int undetected_gray_windows = 0;
  };
  // `end`: horizon for still-open windows (normally the run deadline).
  Report report(Time end) const;
  // The report as JSON — contains no wall-clock times, so serial and
  // sharded runs of the same plan produce byte-identical strings.
  std::string report_json(Time end) const;

  const FaultInjectorConfig& config() const noexcept { return cfg_; }
  Time hold_time() const noexcept {
    return cfg_.hold_count * cfg_.hello_interval;
  }

  // sim::HelloHandler (runs in the receiving switch's shard).
  void on_hello(Simulator& sim, const sim::Packet& pkt) override;
  // Global sink: plan actions and detection-driven repairs.
  void on_event(Simulator& sim, std::uint64_t ctx) override;

  // sim::Checkpointable: self, then every (tx, rx) BFD session pair in
  // construction order. State covers the hold timers, the per-link logs,
  // and the outage/gray-window records; hello transmitters are stateless.
  void collect_sinks(sim::SinkRegistry& reg) override;
  void save_state(sim::SnapshotWriter& w) const override;
  void load_state(sim::SnapshotReader& r) override;

 private:
  class HelloTx;
  class BfdRx;
  friend class BfdRx;

  // High bit of a global-event ctx marks a detection-driven repair; the
  // low bits pack (link, up). Plan actions use their plain index. Keeping
  // the two spaces disjoint — independent of the plan size — lets a warm
  // checkpoint with in-flight repairs be restored under a different plan.
  static constexpr std::uint64_t kRepairCtxBit = 1ULL << 63;

  // Called by a BFD session (shard context): queue a global repair event.
  void schedule_repair(Simulator& sim, topo::LinkId link, bool up);
  void apply_action(const FaultAction& a, Time now);
  void apply_repair(topo::LinkId link, bool up, Time now);

  // Per-link bookkeeping, touched only from global events.
  struct LinkLog {
    int open_outage = -1;  // index into outages_, -1 = none
    int open_gray = -1;    // index into gray_windows_, -1 = none
  };

  Network& net_;
  const FaultPlan& plan_;
  FaultInjectorConfig cfg_;
  Time hello_until_ = 0;  // written once in arm(), read by tx events

  std::unique_ptr<HelloTx[]> tx_;  // [2 * link + dir]
  std::unique_ptr<BfdRx[]> rx_;    // [2 * link + dir]
  std::size_t num_sessions_ = 0;

  std::vector<LinkLog> link_log_;
  std::vector<Outage> outages_;
  std::vector<GrayWindow> gray_windows_;
};

}  // namespace spineless::fault
