#include "topo/export.h"

#include <sstream>

namespace spineless::topo {
namespace {

// A small qualitative palette cycled over group ids.
const char* kPalette[] = {"#4e79a7", "#f28e2b", "#59a14f", "#e15759",
                          "#76b7b2", "#edc948", "#b07aa1", "#ff9da7",
                          "#9c755f", "#bab0ac"};

}  // namespace

std::string to_dot(const Graph& g, const std::vector<int>* group_of) {
  std::ostringstream os;
  os << "graph " << '"' << g.name() << '"' << " {\n";
  os << "  layout=circo;\n  node [shape=circle, style=filled];\n";
  for (NodeId n = 0; n < g.num_switches(); ++n) {
    os << "  s" << n << " [label=\"s" << n << "\\n" << g.servers(n) << "\"";
    if (group_of != nullptr) {
      const int grp = group_of->at(static_cast<std::size_t>(n));
      os << ", fillcolor=\"" << kPalette[static_cast<std::size_t>(grp) % 10]
         << "\"";
    } else {
      os << ", fillcolor=\"" << (g.servers(n) > 0 ? "#cfe8ff" : "#eeeeee")
         << "\"";
    }
    os << "];\n";
  }
  for (const Link& l : g.links()) os << "  s" << l.a << " -- s" << l.b << ";\n";
  os << "}\n";
  return os.str();
}

std::string to_edge_list(const Graph& g) {
  std::ostringstream os;
  os << "# " << g.name() << ": " << g.num_switches() << " switches, "
     << g.num_links() << " links, " << g.total_servers() << " servers\n";
  for (NodeId n = 0; n < g.num_switches(); ++n) {
    if (g.servers(n) > 0) os << "# servers " << n << " " << g.servers(n) << "\n";
  }
  for (const Link& l : g.links()) os << l.a << " " << l.b << "\n";
  return os.str();
}

}  // namespace spineless::topo
