// Cabling-complexity model — the §1/§7 "wiring and management complexity"
// axis that has blocked large-scale expander adoption, and on which flat
// ring-like designs may hold an operational edge.
//
// Model: racks stand in rows on a machine-room floor (row-major by switch
// id, `racks_per_row` per row). A switch-to-switch cable runs rack to rack
// with Manhattan routing through the overhead tray plus fixed slack.
// Cables between the same rack pair can share a trunk bundle; the number
// of distinct bundles approximates patch-panel/labeling effort.
#pragma once

#include <vector>

#include "topo/graph.h"
#include "util/stats.h"

namespace spineless::topo {

struct LayoutConfig {
  int racks_per_row = 16;
  double rack_pitch_m = 0.6;  // rack-to-rack spacing within a row
  double row_pitch_m = 2.4;   // row-to-row spacing (aisle included)
  double slack_m = 2.0;       // per-cable service loop + vertical runs
};

struct RackPosition {
  double x = 0;
  double y = 0;
};

// Row-major floor positions for every switch.
std::vector<RackPosition> row_major_layout(const Graph& g,
                                           const LayoutConfig& cfg);

// Cable length of one link under the layout (Manhattan + slack).
double cable_length_m(const RackPosition& a, const RackPosition& b,
                      const LayoutConfig& cfg);

struct WiringReport {
  int cables = 0;
  int bundles = 0;           // distinct rack pairs carrying >= 1 cable
  double total_m = 0;
  double mean_m = 0;
  double max_m = 0;
  // Fraction of cables no longer than `local_threshold_m`.
  double local_fraction = 0;
  Summary lengths;           // full distribution for percentiles
};

// Wiring census for a topology under a layout. local_threshold_m defaults
// to one row pitch — "stays in the neighborhood".
WiringReport wiring_report(const Graph& g,
                           const std::vector<RackPosition>& pos,
                           const LayoutConfig& cfg,
                           double local_threshold_m = 5.0);

}  // namespace spineless::topo
