#include "topo/expand.h"

#include "util/rng.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

namespace spineless::topo {
namespace {

// Unordered ToR-id link set of a graph, for diffing.
std::set<std::pair<NodeId, NodeId>> link_set(const Graph& g) {
  std::set<std::pair<NodeId, NodeId>> s;
  for (const Link& l : g.links())
    s.insert({std::min(l.a, l.b), std::max(l.a, l.b)});
  return s;
}

}  // namespace

Graph dring_graph_from_metadata(const std::vector<int>& supernode_of,
                                const std::vector<int>& ring_order,
                                int ports_per_switch,
                                const std::vector<int>& servers) {
  const int total = static_cast<int>(supernode_of.size());
  const int m = static_cast<int>(ring_order.size());
  SPINELESS_CHECK_MSG(m >= 3, "DRing needs >= 3 supernodes");
  SPINELESS_CHECK(servers.size() == supernode_of.size());

  // position_of[supernode id] = index in the ring.
  std::vector<int> position_of(static_cast<std::size_t>(m), -1);
  for (int p = 0; p < m; ++p) {
    const int sn = ring_order[static_cast<std::size_t>(p)];
    SPINELESS_CHECK_MSG(sn >= 0 && sn < m && position_of[static_cast<std::size_t>(sn)] < 0,
                        "ring_order must be a permutation of supernode ids");
    position_of[static_cast<std::size_t>(sn)] = p;
  }

  Graph g(static_cast<NodeId>(total), ports_per_switch, "dring");
  for (NodeId a = 0; a < total; ++a) {
    for (NodeId b = a + 1; b < total; ++b) {
      const int pa = position_of[static_cast<std::size_t>(
          supernode_of[static_cast<std::size_t>(a)])];
      const int pb = position_of[static_cast<std::size_t>(
          supernode_of[static_cast<std::size_t>(b)])];
      if (pa == pb) continue;
      const int fwd = (pb - pa + m) % m;
      const int diff = std::min(fwd, m - fwd);
      if (diff == 1 || diff == 2) g.add_link(a, b);
    }
  }
  for (NodeId t = 0; t < total; ++t)
    g.set_servers(t, servers[static_cast<std::size_t>(t)]);
  g.validate_ports();
  return g;
}

DRingExpansion expand_dring(const DRing& base, int new_tors,
                            int servers_per_tor, int after_position) {
  SPINELESS_CHECK(new_tors > 0 && servers_per_tor >= 0);
  SPINELESS_CHECK(after_position >= 0 &&
                  after_position < static_cast<int>(base.ring_order.size()));

  const int new_sn = base.supernodes;

  std::vector<int> supernode_of = base.supernode_of;
  for (int i = 0; i < new_tors; ++i) supernode_of.push_back(new_sn);

  std::vector<int> ring_order = base.ring_order;
  ring_order.insert(
      ring_order.begin() + static_cast<long>(after_position) + 1, new_sn);

  std::vector<int> servers;
  servers.reserve(supernode_of.size());
  for (NodeId t = 0; t < base.graph.num_switches(); ++t)
    servers.push_back(base.graph.servers(t));
  for (int i = 0; i < new_tors; ++i) servers.push_back(servers_per_tor);

  Graph graph = dring_graph_from_metadata(
      supernode_of, ring_order, base.graph.ports_per_switch(), servers);

  DRingExpansion out{DRing{std::move(graph), base.supernodes + 1,
                           std::move(supernode_of), std::move(ring_order)},
                     {}};
  const DRing& d = out.dring;

  const auto before = link_set(base.graph);
  const auto after = link_set(d.graph);
  for (const auto& l : before)
    out.stats.links_removed += after.count(l) == 0;
  for (const auto& l : after) {
    if (before.count(l))
      ++out.stats.links_kept;
    else
      ++out.stats.links_added;
  }
  return out;
}

GraphExpansion expand_random(const Graph& base, int net_degree,
                             int servers_on_new, std::uint64_t seed) {
  SPINELESS_CHECK(net_degree >= 2 && net_degree % 2 == 0);
  SPINELESS_CHECK_MSG(net_degree / 2 <= base.num_links(),
                      "not enough links to split");
  const NodeId fresh = base.num_switches();

  // Work on an edge list; Graph has no removal.
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(base.num_links()));
  for (const Link& l : base.links()) edges.emplace_back(l.a, l.b);
  std::set<NodeId> fresh_neighbors;

  Rng rng(seed);
  int splits = 0;
  int attempts = 0;
  while (splits < net_degree / 2) {
    SPINELESS_CHECK_MSG(++attempts < 100'000,
                        "expand_random: no splittable links left");
    const std::size_t idx = rng.uniform(edges.size());
    const auto [a, b] = edges[idx];
    // The new switch must not already link to either endpoint (keeps the
    // graph simple).
    if (fresh_neighbors.count(a) || fresh_neighbors.count(b)) continue;
    edges[idx] = edges.back();
    edges.pop_back();
    edges.emplace_back(fresh, a);
    edges.emplace_back(fresh, b);
    fresh_neighbors.insert(a);
    fresh_neighbors.insert(b);
    ++splits;
  }

  Graph graph(base.num_switches() + 1, base.ports_per_switch(), base.name());
  for (const auto& [a, b] : edges) graph.add_link(a, b);
  for (NodeId n = 0; n < base.num_switches(); ++n)
    graph.set_servers(n, base.servers(n));
  graph.set_servers(fresh, servers_on_new);

  GraphExpansion out{std::move(graph), {}};
  const auto before = link_set(base);
  const auto after = link_set(out.graph);
  for (const auto& l : before)
    out.stats.links_removed += after.count(l) == 0;
  for (const auto& l : after) {
    if (before.count(l))
      ++out.stats.links_kept;
    else
      ++out.stats.links_added;
  }
  return out;
}

}  // namespace spineless::topo
