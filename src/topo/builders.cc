#include "topo/builders.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <utility>

#include "util/rng.h"

namespace spineless::topo {
namespace {

// Edge set under construction for the randomized builders: supports O(log d)
// adjacency queries and edge removal, then materializes into a Graph.
class EdgeBuilder {
 public:
  explicit EdgeBuilder(int n) : adj_(static_cast<std::size_t>(n)) {}

  bool adjacent(int u, int v) const {
    return adj_[static_cast<std::size_t>(u)].count(v) > 0;
  }
  void add(int u, int v) {
    SPINELESS_DCHECK(u != v && !adjacent(u, v));
    adj_[static_cast<std::size_t>(u)].insert(v);
    adj_[static_cast<std::size_t>(v)].insert(u);
    edges_.emplace_back(u, v);
  }
  void remove_edge_at(std::size_t idx) {
    const auto [u, v] = edges_[idx];
    adj_[static_cast<std::size_t>(u)].erase(v);
    adj_[static_cast<std::size_t>(v)].erase(u);
    edges_[idx] = edges_.back();
    edges_.pop_back();
  }
  const std::vector<std::pair<int, int>>& edges() const { return edges_; }

 private:
  std::vector<std::set<int>> adj_;
  std::vector<std::pair<int, int>> edges_;
};

// Core random-graph wiring: connect stubs given per-node degree targets.
// Returns false if it could not realize the sequence this attempt.
bool wire_random(EdgeBuilder& eb, std::vector<int> free, Rng& rng) {
  const int n = static_cast<int>(free.size());
  std::int64_t remaining = std::accumulate(free.begin(), free.end(), 0LL);
  SPINELESS_CHECK_MSG(remaining % 2 == 0, "odd total network degree");

  auto add_edge = [&](int u, int v) {
    eb.add(u, v);
    --free[static_cast<std::size_t>(u)];
    --free[static_cast<std::size_t>(v)];
    remaining -= 2;
  };
  auto remove_edge = [&](std::size_t idx) {
    const auto [a, b] = eb.edges()[idx];
    eb.remove_edge_at(idx);
    ++free[static_cast<std::size_t>(a)];
    ++free[static_cast<std::size_t>(b)];
    remaining += 2;
  };

  while (remaining > 0) {
    // Fast path: random picks among nodes with free ports.
    std::vector<int> open;
    for (int i = 0; i < n; ++i)
      if (free[static_cast<std::size_t>(i)] > 0) open.push_back(i);

    bool added = false;
    if (open.size() >= 2) {
      for (int attempt = 0; attempt < 64 && !added; ++attempt) {
        const int u = open[rng.uniform(open.size())];
        const int v = open[rng.uniform(open.size())];
        if (u != v && !eb.adjacent(u, v)) {
          add_edge(u, v);
          added = true;
        }
      }
      if (!added) {
        // Exhaustive scan for any addable pair among open nodes.
        for (std::size_t i = 0; i < open.size() && !added; ++i) {
          for (std::size_t j = i + 1; j < open.size() && !added; ++j) {
            if (!eb.adjacent(open[i], open[j])) {
              add_edge(open[i], open[j]);
              added = true;
            }
          }
        }
      }
    }
    if (added) continue;

    // Stuck: all open nodes are pairwise adjacent (or only one open node).
    // Jellyfish-style repairs.
    if (open.size() == 1 && free[static_cast<std::size_t>(open[0])] >= 2) {
      // Split an existing edge (a,b) not touching u: (a,b) -> (u,a),(u,b).
      const int u = open[0];
      bool repaired = false;
      for (int attempt = 0; attempt < 4096 && !repaired; ++attempt) {
        const std::size_t idx = rng.uniform(eb.edges().size());
        const auto [a, b] = eb.edges()[idx];
        if (a == u || b == u || eb.adjacent(u, a) || eb.adjacent(u, b))
          continue;
        remove_edge(idx);
        add_edge(u, a);
        add_edge(u, b);
        repaired = true;
      }
      if (!repaired) return false;
      continue;
    }
    if (open.size() >= 2) {
      // Pick two open (mutually adjacent) nodes u, v and rewire an edge
      // (a,b): remove it, add (u,a) and (v,b).
      bool repaired = false;
      for (int attempt = 0; attempt < 4096 && !repaired; ++attempt) {
        const int u = open[rng.uniform(open.size())];
        const int v = open[rng.uniform(open.size())];
        if (u == v) continue;
        const std::size_t idx = rng.uniform(eb.edges().size());
        const auto [a, b] = eb.edges()[idx];
        if (a == u || a == v || b == u || b == v) continue;
        if (eb.adjacent(u, a) || eb.adjacent(v, b)) continue;
        remove_edge(idx);
        add_edge(u, a);
        add_edge(v, b);
        repaired = true;
      }
      if (!repaired) return false;
      continue;
    }
    return false;  // single open node with one stub: unsatisfiable parity
  }
  return true;
}

Graph materialize(const EdgeBuilder& eb, int n, int ports,
                  const std::vector<int>& servers, const std::string& name) {
  Graph g(static_cast<NodeId>(n), ports, name);
  for (const auto& [u, v] : eb.edges())
    g.add_link(static_cast<NodeId>(u), static_cast<NodeId>(v));
  for (int i = 0; i < n; ++i)
    g.set_servers(static_cast<NodeId>(i), servers[static_cast<std::size_t>(i)]);
  g.validate_ports();
  return g;
}

}  // namespace

Graph make_leaf_spine(int x, int y) {
  SPINELESS_CHECK(x > 0 && y > 0);
  const NodeId leaves = leaf_spine_num_leaves(x, y);
  const NodeId spines = leaf_spine_num_spines(x, y);
  Graph g(leaves + spines, x + y, "leaf-spine");
  for (NodeId leaf = 0; leaf < leaves; ++leaf) {
    for (NodeId s = 0; s < spines; ++s) g.add_link(leaf, leaves + s);
    g.set_servers(leaf, x);
  }
  g.validate_ports();
  return g;
}

namespace {

// Shared supernode-linking core for the two DRing builders: `size[i]` ToRs
// in supernode i; ToR ids assigned consecutively per supernode.
DRing build_dring(const std::vector<int>& size, int ports, std::string name) {
  const int m = static_cast<int>(size.size());
  SPINELESS_CHECK_MSG(m >= 3, "DRing needs >= 3 supernodes");
  const int total = std::accumulate(size.begin(), size.end(), 0);

  DRing d{Graph(static_cast<NodeId>(total), ports, std::move(name)), m, {}, {}};
  d.ring_order.resize(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) d.ring_order[static_cast<std::size_t>(i)] = i;
  d.supernode_of.resize(static_cast<std::size_t>(total));
  std::vector<int> first(static_cast<std::size_t>(m) + 1, 0);
  for (int i = 0; i < m; ++i) {
    first[static_cast<std::size_t>(i) + 1] =
        first[static_cast<std::size_t>(i)] + size[static_cast<std::size_t>(i)];
    for (int t = first[static_cast<std::size_t>(i)];
         t < first[static_cast<std::size_t>(i) + 1]; ++t)
      d.supernode_of[static_cast<std::size_t>(t)] = i;
  }

  // Supernode i connects to i+1 and i+2 (mod m); dedupe unordered pairs so
  // tiny rings (m = 3, 4) don't create parallel links.
  std::set<std::pair<int, int>> pairs;
  for (int i = 0; i < m; ++i) {
    for (int step : {1, 2}) {
      const int j = (i + step) % m;
      if (i == j) continue;
      pairs.emplace(std::min(i, j), std::max(i, j));
    }
  }
  for (const auto& [a, b] : pairs) {
    for (int ta = first[static_cast<std::size_t>(a)];
         ta < first[static_cast<std::size_t>(a) + 1]; ++ta)
      for (int tb = first[static_cast<std::size_t>(b)];
           tb < first[static_cast<std::size_t>(b) + 1]; ++tb)
        d.graph.add_link(static_cast<NodeId>(ta), static_cast<NodeId>(tb));
  }
  return d;
}

}  // namespace

DRing make_dring(int m, int n, int servers_per_tor, int ports_per_switch) {
  SPINELESS_CHECK(n > 0 && servers_per_tor >= 0);
  DRing d = build_dring(std::vector<int>(static_cast<std::size_t>(m), n),
                        ports_per_switch, "dring");
  for (NodeId t = 0; t < d.graph.num_switches(); ++t)
    d.graph.set_servers(t, servers_per_tor);
  d.graph.validate_ports();
  return d;
}

DRing make_dring_equipment(int num_switches, int ports_per_switch,
                           int total_servers, int m) {
  SPINELESS_CHECK(num_switches >= m);
  // Bresenham-even distribution: interleaves the +1 supernodes around the
  // ring, which also maximizes leftover server ports (adjacent-supernode
  // size products are minimized).
  std::vector<int> size(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) {
    size[static_cast<std::size_t>(i)] =
        (i + 1) * num_switches / m - i * num_switches / m;
  }

  DRing d = build_dring(size, ports_per_switch, "dring-equipment");
  Graph& g = d.graph;

  // Per-switch server capacity = leftover ports after network links.
  std::vector<int> cap(static_cast<std::size_t>(num_switches));
  int total_cap = 0;
  for (NodeId t = 0; t < g.num_switches(); ++t) {
    cap[static_cast<std::size_t>(t)] =
        std::max(0, ports_per_switch - g.network_degree(t));
    total_cap += cap[static_cast<std::size_t>(t)];
  }
  if (total_servers < 0) total_servers = total_cap;
  SPINELESS_CHECK_MSG(total_servers <= total_cap,
                      "equipment hosts at most " << total_cap << " servers, "
                                                 << total_servers
                                                 << " requested");

  // Even spread clipped to capacity, leftovers round-robin into spare slots.
  std::vector<int> servers(static_cast<std::size_t>(num_switches), 0);
  int placed = 0;
  const int base = total_servers / num_switches;
  for (NodeId t = 0; t < g.num_switches(); ++t) {
    servers[static_cast<std::size_t>(t)] =
        std::min(base, cap[static_cast<std::size_t>(t)]);
    placed += servers[static_cast<std::size_t>(t)];
  }
  for (NodeId t = 0; placed < total_servers;
       t = (t + 1) % g.num_switches()) {
    if (servers[static_cast<std::size_t>(t)] < cap[static_cast<std::size_t>(t)]) {
      ++servers[static_cast<std::size_t>(t)];
      ++placed;
    }
  }
  for (NodeId t = 0; t < g.num_switches(); ++t)
    g.set_servers(t, servers[static_cast<std::size_t>(t)]);
  g.validate_ports();
  return d;
}

Graph make_rrg(int num_switches, int net_degree, int servers_per_switch,
               std::uint64_t seed) {
  SPINELESS_CHECK(net_degree < num_switches);
  return make_rrg_with_degrees(
      std::vector<int>(static_cast<std::size_t>(num_switches), net_degree),
      std::vector<int>(static_cast<std::size_t>(num_switches),
                       servers_per_switch),
      seed);
}

Graph make_rrg_with_degrees(const std::vector<int>& net_degrees,
                            const std::vector<int>& servers,
                            std::uint64_t seed) {
  SPINELESS_CHECK(net_degrees.size() == servers.size());
  const int n = static_cast<int>(net_degrees.size());
  // Retry with derived seeds until the wiring succeeds and is connected.
  for (int attempt = 0; attempt < 64; ++attempt) {
    Rng rng(splitmix64(seed) + static_cast<std::uint64_t>(attempt));
    EdgeBuilder eb(n);
    if (!wire_random(eb, net_degrees, rng)) continue;
    Graph g = materialize(eb, n, 0, servers, "rrg");
    if (g.connected()) return g;
  }
  throw Error("make_rrg: could not realize a connected random graph");
}

Graph flatten_leaf_spine(int x, int y, std::uint64_t seed) {
  const int num_switches = x + 2 * y;
  const int ports = x + y;
  const int total_servers = x * (x + y);
  // Spread servers evenly (±1) over all switches; the rest of each switch's
  // ports carry the random graph. This is F(T) from §3.1.
  std::vector<int> servers(static_cast<std::size_t>(num_switches),
                           total_servers / num_switches);
  int rem = total_servers % num_switches;
  // Keep total network degree even: if the remainder is odd, shift one
  // server so the degree sequence stays realizable.
  std::vector<int> degrees(static_cast<std::size_t>(num_switches));
  for (int i = 0; i < rem; ++i) ++servers[static_cast<std::size_t>(i)];
  long total_degree = 0;
  for (int i = 0; i < num_switches; ++i) {
    degrees[static_cast<std::size_t>(i)] =
        ports - servers[static_cast<std::size_t>(i)];
    total_degree += degrees[static_cast<std::size_t>(i)];
  }
  if (total_degree % 2 != 0) {
    // Drop one server from the last switch (one unused port) to fix parity.
    --servers[static_cast<std::size_t>(num_switches - 1)];
    ++degrees[static_cast<std::size_t>(num_switches - 1)];
  }
  Graph g = make_rrg_with_degrees(degrees, servers, seed);
  g.validate_ports();
  return g;
}

Graph make_dragonfly(int groups, int a, int h, int servers_per_switch) {
  SPINELESS_CHECK(groups >= 2 && a >= 1 && h >= 1);
  const int links_per_pair = a * h / (groups - 1);
  SPINELESS_CHECK_MSG(links_per_pair >= 1,
                      "need a*h >= groups-1 for inter-group connectivity");
  const int n = groups * a;
  Graph g(static_cast<NodeId>(n), 0, "dragonfly");
  // Intra-group complete graphs.
  for (int grp = 0; grp < groups; ++grp) {
    for (int s = 0; s < a; ++s)
      for (int t = s + 1; t < a; ++t)
        g.add_link(static_cast<NodeId>(grp * a + s),
                   static_cast<NodeId>(grp * a + t));
  }
  // Global links: round-robin each group's global ports over the pairs.
  std::vector<int> next_port(static_cast<std::size_t>(groups), 0);
  for (int i = 0; i < groups; ++i) {
    for (int j = i + 1; j < groups; ++j) {
      for (int l = 0; l < links_per_pair; ++l) {
        const int pi = next_port[static_cast<std::size_t>(i)]++;
        const int pj = next_port[static_cast<std::size_t>(j)]++;
        g.add_link(static_cast<NodeId>(i * a + pi % a),
                   static_cast<NodeId>(j * a + pj % a));
      }
    }
  }
  for (NodeId t = 0; t < g.num_switches(); ++t)
    g.set_servers(t, servers_per_switch);
  return g;
}

Graph make_xpander(int net_degree, int lift, int servers_per_switch,
                   std::uint64_t seed) {
  SPINELESS_CHECK(net_degree >= 2 && lift >= 1);
  const int base = net_degree + 1;  // complete graph K_{d+1}
  const int n = base * lift;
  Rng rng(seed);
  Graph g(static_cast<NodeId>(n), 0, "xpander");
  // Node (v, c) -> id v*lift + c. Each base edge becomes a random perfect
  // matching between the two lifted columns.
  std::vector<int> perm(static_cast<std::size_t>(lift));
  for (int u = 0; u < base; ++u) {
    for (int v = u + 1; v < base; ++v) {
      for (int c = 0; c < lift; ++c) perm[static_cast<std::size_t>(c)] = c;
      rng.shuffle(perm);
      for (int c = 0; c < lift; ++c) {
        g.add_link(static_cast<NodeId>(u * lift + c),
                   static_cast<NodeId>(v * lift + perm[static_cast<std::size_t>(c)]));
      }
    }
  }
  for (NodeId t = 0; t < g.num_switches(); ++t)
    g.set_servers(t, servers_per_switch);
  return g;
}

}  // namespace spineless::topo
