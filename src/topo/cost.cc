#include "topo/cost.h"

namespace spineless::topo {

CostReport cost_report(const Graph& g, const std::vector<RackPosition>& pos,
                       const LayoutConfig& layout, const CostModel& model) {
  SPINELESS_CHECK(pos.size() == static_cast<std::size_t>(g.num_switches()));
  CostReport r;
  r.switches = g.num_switches();
  r.cables = g.num_links();

  int ports = 0;
  for (NodeId n = 0; n < g.num_switches(); ++n) ports += g.ports_used(n);
  r.switch_usd = r.switches * model.switch_base_usd +
                 ports * model.per_port_usd;
  r.power_w = r.switches * model.switch_power_w;

  for (const Link& l : g.links()) {
    const double len = cable_length_m(pos[static_cast<std::size_t>(l.a)],
                                      pos[static_cast<std::size_t>(l.b)],
                                      layout);
    if (len <= model.dac_reach_m) {
      ++r.dac;
      r.cable_usd += model.dac_usd;
    } else if (len <= model.aoc_reach_m) {
      ++r.aoc;
      r.cable_usd += model.aoc_usd;
      r.power_w += 2 * model.per_optic_power_w;
    } else {
      ++r.optics;
      r.cable_usd += model.optics_usd;
      r.power_w += 2 * model.per_optic_power_w;
    }
  }
  r.total_usd = r.switch_usd + r.cable_usd;
  r.usd_per_server = g.total_servers() > 0
                         ? r.total_usd / g.total_servers()
                         : 0.0;
  return r;
}

}  // namespace spineless::topo
