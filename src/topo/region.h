// Region cuts for hybrid packet/fluid co-simulation (core/hybrid_experiment):
// a "hot" set of switches is simulated packet-level; everything else runs in
// the fluid max-min engine. This header owns the purely topological half —
// selecting the hot set, finding the cut links, and building the induced
// packet subgraph with one gateway host per cut link (the attachment point
// for the boundary layer's paced packet sources and sinks).
//
// Everything here is deterministic: hot sets are stored ascending, cut links
// in full-graph link-id order, and the region graph's switch/host numbering
// is a pure function of those orders.
#pragma once

#include <vector>

#include "topo/graph.h"

namespace spineless::topo {

// A link with exactly one endpoint inside the hot set — the seam the
// boundary layer stitches. Ordered by full-graph link id.
struct CutLink {
  LinkId link = kInvalidLink;     // full-graph link id
  NodeId inside = kInvalidNode;   // the hot endpoint
  NodeId outside = kInvalidNode;  // the cold endpoint
};

struct RegionCut {
  std::vector<NodeId> hot;       // ascending full-graph switch ids
  std::vector<char> in_region;   // size g.num_switches(); 1 = hot
  std::vector<CutLink> cut;      // ascending by CutLink::link

  bool contains(NodeId n) const {
    return in_region[static_cast<std::size_t>(n)] != 0;
  }
};

// Hot set given explicitly by switch ids (deduplicated, sorted).
RegionCut region_from_switches(const Graph& g, std::vector<NodeId> hot);

// Hot set = every switch whose supernode (DRing) is in `hot_supernodes`.
RegionCut region_from_supernodes(const Graph& g,
                                 const std::vector<int>& supernode_of,
                                 const std::vector<int>& hot_supernodes);

// Auto selection from a prior fluid pass: score each switch by the maximum
// utilization over its incident directed links (index 2l = a->b, 2l+1 =
// b->a, the Network::link_utilization layout), then grow a *connected* hot
// set of `k` switches greedily from the hottest one, always absorbing the
// hottest frontier switch (ties broken by ascending id). Connectivity is
// required — the region subgraph builds its own routing tables.
RegionCut region_from_utilization(const Graph& g,
                                  const std::vector<double>& directed_util,
                                  int k);

// The packet-level view of a region: the induced subgraph over the hot
// switches plus one *gateway host* per cut link, attached at the cut link's
// inside endpoint. Boundary flows enter/leave the packet region through
// gateway hosts, so the cut link's serialization point is modeled by the
// gateway's host NIC.
struct RegionGraph {
  Graph graph;  // hot switches renumbered 0..hot.size()-1 in hot order

  std::vector<NodeId> to_full;    // region switch -> full switch
  std::vector<NodeId> to_region;  // full switch -> region switch or kInvalid
  // Full host -> region host for hosts on hot switches (-1 for cold hosts);
  // the inverse for real region hosts (-1 for gateway hosts).
  std::vector<HostId> host_to_region;
  std::vector<HostId> region_host_to_full;
  // gateway_host[i] = region host id standing in for RegionCut::cut[i].
  std::vector<HostId> gateway_host;
  // Full link -> region link for region-internal links (both endpoints
  // hot), kInvalidLink otherwise. This is how a full-graph FaultPlan is
  // translated into a sub-plan over the region subgraph.
  std::vector<LinkId> link_to_region;
};

RegionGraph build_region_graph(const Graph& g, const RegionCut& cut);

}  // namespace spineless::topo
