// Equipment cost model — the "built with the same hardware" premise (§3.1)
// priced out. Same switches by construction; the difference between the
// topologies is cabling: how many cables, and how many can be cheap DAC
// copper (length-limited) versus AOC or optics.
//
// Defaults are list-price-shaped 10G-era numbers; every knob is a field so
// studies can plug their own BOM in.
#pragma once

#include <vector>

#include "topo/graph.h"
#include "topo/wiring.h"

namespace spineless::topo {

struct CostModel {
  // Switch pricing.
  double switch_base_usd = 4'000;
  double per_port_usd = 100;       // licensed/port-speed share
  // Cable pricing by reach (one cable includes its two ends).
  double dac_usd = 60;             // passive copper, up to dac_reach_m
  double aoc_usd = 250;            // active optical, up to aoc_reach_m
  double optics_usd = 700;         // 2x transceiver + structured fiber
  double dac_reach_m = 5;
  double aoc_reach_m = 30;
  // Power, watts.
  double switch_power_w = 150;
  double per_optic_power_w = 1.5;  // per cable end beyond DAC reach
};

struct CostReport {
  int switches = 0;
  int cables = 0;
  int dac = 0;
  int aoc = 0;
  int optics = 0;
  double switch_usd = 0;
  double cable_usd = 0;
  double total_usd = 0;
  double power_w = 0;
  double usd_per_server = 0;
};

// Prices a topology under a floor layout: each cable is classed by its
// routed length (wiring.h Manhattan model).
CostReport cost_report(const Graph& g, const std::vector<RackPosition>& pos,
                       const LayoutConfig& layout, const CostModel& model);

}  // namespace spineless::topo
