#include "topo/graph.h"

#include <algorithm>

namespace spineless::topo {

Graph::Graph(NodeId num_switches, int ports_per_switch, std::string name)
    : name_(std::move(name)),
      ports_per_switch_(ports_per_switch),
      adjacency_(static_cast<std::size_t>(num_switches)),
      servers_(static_cast<std::size_t>(num_switches), 0) {
  SPINELESS_CHECK(num_switches > 0);
  SPINELESS_CHECK(ports_per_switch >= 0);
}

LinkId Graph::add_link(NodeId a, NodeId b) {
  SPINELESS_CHECK(a >= 0 && a < num_switches());
  SPINELESS_CHECK(b >= 0 && b < num_switches());
  SPINELESS_CHECK_MSG(a != b, "self-loop at switch " << a);
  const auto id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{a, b});
  adjacency_[static_cast<std::size_t>(a)].push_back(Port{b, id});
  adjacency_[static_cast<std::size_t>(b)].push_back(Port{a, id});
  return id;
}

bool Graph::adjacent(NodeId a, NodeId b) const {
  const auto& na = neighbors(a);
  const auto& nb = neighbors(b);
  const auto& smaller = na.size() <= nb.size() ? na : nb;
  const NodeId target = na.size() <= nb.size() ? b : a;
  return std::any_of(smaller.begin(), smaller.end(),
                     [target](const Port& p) { return p.neighbor == target; });
}

void Graph::set_servers(NodeId n, int count) {
  SPINELESS_CHECK(count >= 0);
  auto& slot = servers_.at(static_cast<std::size_t>(n));
  total_servers_ += count - slot;
  slot = count;
  host_index_valid_ = false;
}

void Graph::rebuild_host_index() const {
  host_prefix_.assign(static_cast<std::size_t>(num_switches()) + 1, 0);
  for (NodeId n = 0; n < num_switches(); ++n) {
    host_prefix_[static_cast<std::size_t>(n) + 1] =
        host_prefix_[static_cast<std::size_t>(n)] +
        servers_[static_cast<std::size_t>(n)];
  }
  host_index_valid_ = true;
}

NodeId Graph::tor_of_host(HostId h) const {
  if (!host_index_valid_) rebuild_host_index();
  SPINELESS_CHECK_MSG(h >= 0 && h < total_servers_, "host " << h);
  // Binary search in the prefix-sum array.
  const auto it =
      std::upper_bound(host_prefix_.begin(), host_prefix_.end(), h);
  return static_cast<NodeId>(it - host_prefix_.begin()) - 1;
}

HostId Graph::first_host_of(NodeId n) const {
  if (!host_index_valid_) rebuild_host_index();
  return host_prefix_.at(static_cast<std::size_t>(n));
}

bool Graph::connected() const {
  if (num_switches() == 0) return true;
  std::vector<char> seen(static_cast<std::size_t>(num_switches()), 0);
  std::vector<NodeId> stack{0};
  seen[0] = 1;
  NodeId visited = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (const Port& p : neighbors(u)) {
      if (!seen[static_cast<std::size_t>(p.neighbor)]) {
        seen[static_cast<std::size_t>(p.neighbor)] = 1;
        ++visited;
        stack.push_back(p.neighbor);
      }
    }
  }
  return visited == num_switches();
}

Graph subgraph_without_links(const Graph& g, const std::vector<LinkId>& dead) {
  std::vector<char> drop(static_cast<std::size_t>(g.num_links()), 0);
  for (const LinkId l : dead) {
    SPINELESS_CHECK_MSG(l >= 0 && l < g.num_links(),
                        "subgraph_without_links: link id out of range");
    drop[static_cast<std::size_t>(l)] = 1;
  }
  Graph out(g.num_switches(), g.ports_per_switch(), g.name());
  for (LinkId l = 0; l < g.num_links(); ++l) {
    if (!drop[static_cast<std::size_t>(l)])
      out.add_link(g.link(l).a, g.link(l).b);
  }
  for (NodeId n = 0; n < g.num_switches(); ++n)
    out.set_servers(n, g.servers(n));
  return out;
}

void Graph::validate_ports() const {
  if (ports_per_switch_ == 0) return;
  for (NodeId n = 0; n < num_switches(); ++n) {
    SPINELESS_CHECK_MSG(ports_used(n) <= ports_per_switch_,
                        "switch " << n << " uses " << ports_used(n)
                                  << " ports, budget " << ports_per_switch_);
  }
}

}  // namespace spineless::topo
