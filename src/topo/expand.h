// Incremental DRing expansion (§3.2: "DRing is also easily incrementally
// expandable, by adding supernodes in the ring supergraph").
//
// Inserting a supernode S between ring positions p and p+1 only perturbs
// the neighborhood of the insertion point: the two +2 chords that used to
// hop across it — (p-1, p+1) and (p, p+2) — are removed, and S wires to
// its four new ring neighbors. Everything else keeps its cables. Existing
// switches keep their ids (new ToRs are appended), so forwarding state for
// unaffected links survives.
//
// Contrast with the leaf-spine: adding a rack beyond x+y leaves requires
// a free port on EVERY spine — at full population expansion means
// replacing the whole spine layer.
#pragma once

#include "topo/builders.h"

namespace spineless::topo {

struct ExpansionStats {
  int links_kept = 0;     // cables untouched by the expansion
  int links_added = 0;    // new cables (all incident to the new supernode)
  int links_removed = 0;  // chords across the insertion point
};

struct DRingExpansion {
  DRing dring;  // the expanded topology (old ToR ids preserved)
  ExpansionStats stats;
};

// Rebuilds a DRing graph from its metadata (supernode_of + ring_order):
// ToR pairs in ring-adjacent (distance 1 or 2) supernodes are linked.
// Used by expansion and by tests to validate DRing invariants.
Graph dring_graph_from_metadata(const std::vector<int>& supernode_of,
                                const std::vector<int>& ring_order,
                                int ports_per_switch,
                                const std::vector<int>& servers);

// Inserts a new supernode of `new_tors` ToRs (each with servers_per_tor
// servers) after ring position `after_position` (0-based index into
// base.ring_order). New ToRs get ids base.graph.num_switches()..; all
// existing ToR ids, server counts, and untouched links are preserved.
DRingExpansion expand_dring(const DRing& base, int new_tors,
                            int servers_per_tor, int after_position);

struct GraphExpansion {
  Graph graph;
  ExpansionStats stats;
};

// Jellyfish incremental growth (Singla et al.): adds one switch with
// `net_degree` network ports to an arbitrary flat graph by repeatedly
// removing a random existing link (a, b) and adding (new, a), (new, b).
// net_degree must be even (Jellyfish leaves an odd port free; callers can
// round down). Existing switch ids, servers, and unaffected links are
// preserved. Deterministic for a seed.
GraphExpansion expand_random(const Graph& base, int net_degree,
                             int servers_on_new, std::uint64_t seed);

}  // namespace spineless::topo
