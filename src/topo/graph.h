// Switch-level data-center topology graph.
//
// Nodes are switches; undirected links connect switch pairs (parallel links
// are allowed — a multigraph). Each switch additionally hosts a number of
// servers ("server ports"); in a *flat* network every switch hosts servers,
// in a leaf-spine only the leaves do. Hosts get global contiguous ids so the
// workload and simulation layers can address them directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.h"

namespace spineless::topo {

using NodeId = std::int32_t;
using LinkId = std::int32_t;
using HostId = std::int32_t;

constexpr NodeId kInvalidNode = -1;
constexpr LinkId kInvalidLink = -1;

struct Link {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;

  NodeId other(NodeId n) const noexcept { return n == a ? b : a; }
};

// One network port of a switch: the neighbor it reaches and the link id.
struct Port {
  NodeId neighbor = kInvalidNode;
  LinkId link = kInvalidLink;
};

class Graph {
 public:
  // ports_per_switch == 0 disables the port-budget check.
  explicit Graph(NodeId num_switches, int ports_per_switch = 0,
                 std::string name = "graph");

  const std::string& name() const noexcept { return name_; }
  NodeId num_switches() const noexcept {
    return static_cast<NodeId>(adjacency_.size());
  }
  LinkId num_links() const noexcept {
    return static_cast<LinkId>(links_.size());
  }
  int ports_per_switch() const noexcept { return ports_per_switch_; }

  LinkId add_link(NodeId a, NodeId b);
  const Link& link(LinkId id) const { return links_.at(static_cast<std::size_t>(id)); }
  const std::vector<Link>& links() const noexcept { return links_; }

  // True if a and b share at least one direct link.
  bool adjacent(NodeId a, NodeId b) const;

  const std::vector<Port>& neighbors(NodeId n) const {
    return adjacency_.at(static_cast<std::size_t>(n));
  }
  int network_degree(NodeId n) const {
    return static_cast<int>(neighbors(n).size());
  }

  void set_servers(NodeId n, int count);
  int servers(NodeId n) const {
    return servers_.at(static_cast<std::size_t>(n));
  }
  HostId total_servers() const noexcept { return total_servers_; }

  // Host <-> switch mapping. Hosts are numbered contiguously per switch in
  // switch-id order; rebuilt lazily after set_servers calls.
  NodeId tor_of_host(HostId h) const;
  HostId first_host_of(NodeId n) const;
  // Hosts attached to switch n are [first_host_of(n), first_host_of(n)+servers(n)).

  bool connected() const;

  // Total ports used at switch n (network + server).
  int ports_used(NodeId n) const {
    return network_degree(n) + servers(n);
  }

  // Throws if any switch exceeds the port budget (no-op when budget is 0).
  void validate_ports() const;

 private:
  void rebuild_host_index() const;

  std::string name_;
  int ports_per_switch_ = 0;
  std::vector<std::vector<Port>> adjacency_;
  std::vector<Link> links_;
  std::vector<int> servers_;
  HostId total_servers_ = 0;

  mutable std::vector<HostId> host_prefix_;  // size num_switches()+1
  mutable bool host_index_valid_ = false;
};

// The graph with the given links removed (failure modeling for control-
// plane tests and benches). Node ids and server placement are preserved;
// link ids are renumbered densely in original order — surviving links keep
// their relative order but not their ids.
Graph subgraph_without_links(const Graph& g, const std::vector<LinkId>& dead);

}  // namespace spineless::topo
