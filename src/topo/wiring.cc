#include "topo/wiring.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

namespace spineless::topo {

std::vector<RackPosition> row_major_layout(const Graph& g,
                                           const LayoutConfig& cfg) {
  SPINELESS_CHECK(cfg.racks_per_row > 0);
  std::vector<RackPosition> pos;
  pos.reserve(static_cast<std::size_t>(g.num_switches()));
  for (NodeId n = 0; n < g.num_switches(); ++n) {
    const int col = n % cfg.racks_per_row;
    const int row = n / cfg.racks_per_row;
    pos.push_back(RackPosition{col * cfg.rack_pitch_m, row * cfg.row_pitch_m});
  }
  return pos;
}

double cable_length_m(const RackPosition& a, const RackPosition& b,
                      const LayoutConfig& cfg) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y) + cfg.slack_m;
}

WiringReport wiring_report(const Graph& g,
                           const std::vector<RackPosition>& pos,
                           const LayoutConfig& cfg,
                           double local_threshold_m) {
  SPINELESS_CHECK(pos.size() == static_cast<std::size_t>(g.num_switches()));
  WiringReport rep;
  std::set<std::pair<NodeId, NodeId>> bundles;
  int local = 0;
  for (const Link& l : g.links()) {
    const double len = cable_length_m(pos[static_cast<std::size_t>(l.a)],
                                      pos[static_cast<std::size_t>(l.b)], cfg);
    rep.lengths.add(len);
    rep.total_m += len;
    rep.max_m = std::max(rep.max_m, len);
    local += len <= local_threshold_m;
    bundles.insert({std::min(l.a, l.b), std::max(l.a, l.b)});
  }
  rep.cables = g.num_links();
  rep.bundles = static_cast<int>(bundles.size());
  rep.mean_m = rep.cables > 0 ? rep.total_m / rep.cables : 0.0;
  rep.local_fraction =
      rep.cables > 0 ? static_cast<double>(local) / rep.cables : 0.0;
  return rep;
}

}  // namespace spineless::topo
