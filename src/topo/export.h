// Topology export for external tooling: Graphviz DOT (visualization) and a
// plain edge list (interchange with other simulators/analysis scripts).
#pragma once

#include <string>

#include "topo/graph.h"

namespace spineless::topo {

// Graphviz DOT. Switches become nodes labeled "s<N> (<servers>)"; links
// become undirected edges. An optional `group_of` (e.g. DRing supernode
// ids) colors nodes by group.
std::string to_dot(const Graph& g, const std::vector<int>* group_of = nullptr);

// One line per link: "<a> <b>", preceded by a header comment with switch
// and server counts, and one "# servers <switch> <count>" line per switch
// with servers.
std::string to_edge_list(const Graph& g);

}  // namespace spineless::topo
