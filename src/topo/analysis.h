// Topology analysis: the paper's §3.1 flatness metrics (NSR, UDF) plus the
// structural statistics used throughout the evaluation (path lengths,
// bisection bandwidth estimates, shortest-path counts).
#pragma once

#include <cstdint>
#include <vector>

#include "topo/graph.h"

namespace spineless::topo {

// Network-to-Server Ratio statistics over all switches that host servers
// (§3.1: "ratio of network ports to server ports").
struct NsrStats {
  double min = 0;
  double mean = 0;
  double max = 0;
};
NsrStats network_server_ratio(const Graph& g);

// UDF(T) = NSR(F(T)) / NSR(T), computed from constructed topologies.
double udf(const Graph& baseline, const Graph& flat);

// Closed-form §3.1 values for leaf-spine(x, y).
double leaf_spine_nsr(int x, int y);
double leaf_spine_flat_nsr(int x, int y);
double leaf_spine_udf(int x, int y);  // always 2

// BFS hop distances from src to every switch (-1 if unreachable).
std::vector<int> bfs_distances(const Graph& g, NodeId src);

// Full all-pairs hop-distance matrix (row per source).
std::vector<std::vector<int>> all_pairs_distances(const Graph& g);

struct PathLengthStats {
  int diameter = 0;
  double mean = 0;  // over ordered switch pairs (u != v)
};
PathLengthStats path_length_stats(const Graph& g);

// Number of distinct shortest paths between src and dst (counts capped at
// cap to avoid overflow on dense graphs).
std::int64_t count_shortest_paths(const Graph& g, NodeId src, NodeId dst,
                                  std::int64_t cap = 1'000'000);

// Upper-bound estimate of bisection width (links crossing the best balanced
// bipartition found): minimum over `trials` random balanced cuts and all
// contiguous sweep cuts in node order. Exact for DRing-style layouts where
// the contiguous cut is optimal; an upper bound in general.
int bisection_upper_bound(const Graph& g, int trials, std::uint64_t seed);

// Server-weighted mean shortest-path length: the expected ToR-to-ToR hop
// count of a uniformly random host pair (weights servers(a) * servers(b)).
double mean_host_path_length(const Graph& g);

// Counting upper bounds on uniform all-to-all throughput per host, in
// units of the line rate (the standard bounds from the throughput-
// measurement literature the paper builds on):
//  * distance bound — hosts * theta * mean_len <= 2 * links:
//      theta <= 2 L / (H * mean_host_path_length)
//  * bisection bound — under uniform traffic half the demand crosses a
//    balanced cut: theta <= 4 * bisection / H.
// The achievable throughput is at most min of the two.
struct ThroughputBounds {
  double distance_bound = 0;
  double bisection_bound = 0;
  double combined() const {
    return distance_bound < bisection_bound ? distance_bound
                                            : bisection_bound;
  }
};
ThroughputBounds uniform_throughput_bounds(const Graph& g, int cut_trials,
                                           std::uint64_t seed);

}  // namespace spineless::topo
