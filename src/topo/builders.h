// Topology builders for the paper's three families (§3, §5.1):
//
//  * leaf-spine(x, y)        — the incumbent 2-tier Clos baseline,
//  * DRing(m, n)             — the paper's flat ring-of-supernodes topology,
//  * RRG / Jellyfish         — regular random graph, the flat expander,
//
// plus the flat transform F(T) of a leaf-spine (same equipment, servers
// spread over all switches, random graph on the leftover ports — §3.1), and
// an Xpander-style lift construction as an extension.
//
// All builders produce deterministic node layouts so experiments are
// reproducible; random builders take an explicit seed.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/graph.h"

namespace spineless::topo {

// ---------------------------------------------------------------------------
// Leaf-spine(x, y) per §3.1: y spines, (x+y) leaves, every leaf connected to
// every spine, x servers per leaf. Switch degree is x+y everywhere.
// Node layout: leaves are 0 .. x+y-1, spines are x+y .. x+2y-1.
// ---------------------------------------------------------------------------
Graph make_leaf_spine(int x, int y);

inline NodeId leaf_spine_num_leaves(int x, int y) {
  return static_cast<NodeId>(x + y);
}
inline NodeId leaf_spine_num_spines(int /*x*/, int y) {
  return static_cast<NodeId>(y);
}

// ---------------------------------------------------------------------------
// DRing (§3.2): a ring supergraph of m supernodes where supernode i connects
// to supernodes i+1 and i+2 (mod m); every ToR pair lying in adjacent
// supernodes gets a direct link. All switches are ToRs with servers.
// ---------------------------------------------------------------------------
struct DRing {
  Graph graph;
  int supernodes = 0;
  // supernode_of[switch] in [0, supernodes).
  std::vector<int> supernode_of;
  // Supernode ids in ring order. The builders produce the identity order;
  // incremental expansion (topo/expand.h) inserts new supernodes here, so
  // ring position and supernode id may diverge on expanded DRings.
  std::vector<int> ring_order;
};

// Homogeneous DRing: m supernodes of n ToRs each, servers_per_tor servers on
// every ToR. Network degree of every ToR is 4n for m >= 5 (fewer for tiny m
// where the +1/+2 supernode neighbourhoods overlap).
// ports_per_switch == 0 disables the port-budget check.
DRing make_dring(int m, int n, int servers_per_tor, int ports_per_switch = 0);

// Equipment-matched DRing, mirroring the paper's §5.1 configuration (e.g. 80
// switches in 12 supernodes): distributes `num_switches` ToRs over `m`
// supernodes as evenly as possible, links adjacent-supernode ToR pairs, then
// spreads `total_servers` servers as evenly as the per-switch port budget
// allows. Throws if the equipment cannot host that many servers.
// total_servers == -1 fills every leftover port with a server — with the
// paper's 80-switch / 64-port / 12-supernode config this reproduces the
// paper's 2988-server DRing exactly.
DRing make_dring_equipment(int num_switches, int ports_per_switch,
                           int total_servers, int m);

// ---------------------------------------------------------------------------
// Regular random graph (Jellyfish-style). Every switch has `net_degree`
// network ports, wired by randomized stub matching with swap-based repair,
// and `servers_per_switch` servers. Retries internally until connected.
// ---------------------------------------------------------------------------
Graph make_rrg(int num_switches, int net_degree, int servers_per_switch,
               std::uint64_t seed);

// RRG with an arbitrary degree sequence (used by the flat transform, where
// even server spreading leaves switches with degrees differing by one).
// servers[i] servers and net_degrees[i] network ports at switch i.
Graph make_rrg_with_degrees(const std::vector<int>& net_degrees,
                            const std::vector<int>& servers,
                            std::uint64_t seed);

// ---------------------------------------------------------------------------
// Flat transform F(T) for T = leaf-spine(x, y) per §3.1: same x+2y switches
// of degree x+y, same x(x+y) servers, spread evenly (±1) over all switches;
// remaining ports carry a random graph.
// ---------------------------------------------------------------------------
Graph flatten_leaf_spine(int x, int y, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Xpander-style topology (extension; Valadarsky et al.): a random `lift`-lift
// of the complete graph K_{net_degree+1}. num_switches = (net_degree+1)*lift.
// ---------------------------------------------------------------------------
Graph make_xpander(int net_degree, int lift, int servers_per_switch,
                   std::uint64_t seed);

// ---------------------------------------------------------------------------
// Dragonfly (extension; §7 "other static networks", Kim et al.): `groups`
// groups of `a` switches; complete graph within each group; each switch has
// `h` global ports; global links distributed evenly over the other groups
// (floor(a*h/(groups-1)) links per group pair; leftover global ports stay
// unused). Switch id = group * a + index. Network degree = (a-1) + used
// global ports; diameter <= 3 when every group pair gets a link.
// ---------------------------------------------------------------------------
Graph make_dragonfly(int groups, int a, int h, int servers_per_switch);

inline int dragonfly_group_of(int switch_id, int a) { return switch_id / a; }

}  // namespace spineless::topo
