#include "topo/region.h"

#include <algorithm>
#include <utility>

namespace spineless::topo {
namespace {

RegionCut finish_cut(const Graph& g, std::vector<NodeId> hot) {
  std::sort(hot.begin(), hot.end());
  hot.erase(std::unique(hot.begin(), hot.end()), hot.end());
  SPINELESS_CHECK_MSG(!hot.empty(), "region hot set is empty");
  SPINELESS_CHECK(hot.front() >= 0 && hot.back() < g.num_switches());

  RegionCut cut;
  cut.in_region.assign(static_cast<std::size_t>(g.num_switches()), 0);
  for (NodeId n : hot) cut.in_region[static_cast<std::size_t>(n)] = 1;
  cut.hot = std::move(hot);
  for (LinkId l = 0; l < g.num_links(); ++l) {
    const Link& link = g.link(l);
    const bool a_hot = cut.contains(link.a);
    const bool b_hot = cut.contains(link.b);
    if (a_hot == b_hot) continue;
    cut.cut.push_back(CutLink{l, a_hot ? link.a : link.b,
                              a_hot ? link.b : link.a});
  }
  return cut;
}

}  // namespace

RegionCut region_from_switches(const Graph& g, std::vector<NodeId> hot) {
  return finish_cut(g, std::move(hot));
}

RegionCut region_from_supernodes(const Graph& g,
                                 const std::vector<int>& supernode_of,
                                 const std::vector<int>& hot_supernodes) {
  SPINELESS_CHECK(static_cast<NodeId>(supernode_of.size()) ==
                  g.num_switches());
  std::vector<NodeId> hot;
  for (NodeId n = 0; n < g.num_switches(); ++n) {
    const int sn = supernode_of[static_cast<std::size_t>(n)];
    if (std::find(hot_supernodes.begin(), hot_supernodes.end(), sn) !=
        hot_supernodes.end()) {
      hot.push_back(n);
    }
  }
  return finish_cut(g, std::move(hot));
}

RegionCut region_from_utilization(const Graph& g,
                                  const std::vector<double>& directed_util,
                                  int k) {
  SPINELESS_CHECK(directed_util.size() ==
                  2 * static_cast<std::size_t>(g.num_links()));
  SPINELESS_CHECK(k > 0);
  std::vector<double> score(static_cast<std::size_t>(g.num_switches()), 0.0);
  for (LinkId l = 0; l < g.num_links(); ++l) {
    const Link& link = g.link(l);
    const std::size_t li = static_cast<std::size_t>(l);
    const double u = std::max(directed_util[2 * li], directed_util[2 * li + 1]);
    score[static_cast<std::size_t>(link.a)] =
        std::max(score[static_cast<std::size_t>(link.a)], u);
    score[static_cast<std::size_t>(link.b)] =
        std::max(score[static_cast<std::size_t>(link.b)], u);
  }
  // Greedy connected growth from the hottest switch: always absorb the
  // hottest frontier switch (ties: lowest id). A plain top-K could scatter
  // across the graph; the region subgraph must be connected for its own
  // routing tables to cover every in-region pair.
  NodeId seed = 0;
  for (NodeId n = 1; n < g.num_switches(); ++n) {
    if (score[static_cast<std::size_t>(n)] >
        score[static_cast<std::size_t>(seed)])
      seed = n;
  }
  std::vector<char> in(static_cast<std::size_t>(g.num_switches()), 0);
  std::vector<NodeId> hot{seed};
  in[static_cast<std::size_t>(seed)] = 1;
  const auto want = std::min<std::size_t>(static_cast<std::size_t>(k),
                                          static_cast<std::size_t>(
                                              g.num_switches()));
  while (hot.size() < want) {
    NodeId best = kInvalidNode;
    for (NodeId n : hot) {
      for (const Port& p : g.neighbors(n)) {
        if (in[static_cast<std::size_t>(p.neighbor)]) continue;
        if (best == kInvalidNode ||
            score[static_cast<std::size_t>(p.neighbor)] >
                score[static_cast<std::size_t>(best)] ||
            (score[static_cast<std::size_t>(p.neighbor)] ==
                 score[static_cast<std::size_t>(best)] &&
             p.neighbor < best)) {
          best = p.neighbor;
        }
      }
    }
    if (best == kInvalidNode) break;  // component exhausted
    in[static_cast<std::size_t>(best)] = 1;
    hot.push_back(best);
  }
  return finish_cut(g, std::move(hot));
}

RegionGraph build_region_graph(const Graph& g, const RegionCut& cut) {
  RegionGraph rg{Graph(static_cast<NodeId>(cut.hot.size()), /*ports=*/0,
                       g.name() + "-region"),
                 {}, {}, {}, {}, {}, {}};
  rg.to_full = cut.hot;
  rg.to_region.assign(static_cast<std::size_t>(g.num_switches()),
                      kInvalidNode);
  for (std::size_t i = 0; i < cut.hot.size(); ++i) {
    rg.to_region[static_cast<std::size_t>(cut.hot[i])] =
        static_cast<NodeId>(i);
  }

  // Induced links, in full-graph link-id order — the region graph's link
  // numbering is thereby a deterministic function of the cut.
  rg.link_to_region.assign(static_cast<std::size_t>(g.num_links()),
                           kInvalidLink);
  for (LinkId l = 0; l < g.num_links(); ++l) {
    const Link& link = g.link(l);
    if (cut.contains(link.a) && cut.contains(link.b)) {
      rg.link_to_region[static_cast<std::size_t>(l)] =
          rg.graph.num_links();
      rg.graph.add_link(rg.to_region[static_cast<std::size_t>(link.a)],
                        rg.to_region[static_cast<std::size_t>(link.b)]);
    }
  }

  // Per region switch: the real servers first, then one gateway per cut
  // link whose inside endpoint is that switch (in cut order). Graph numbers
  // hosts contiguously per switch, so this layout fixes every host id.
  std::vector<int> gateways_at(cut.hot.size(), 0);
  for (const CutLink& c : cut.cut)
    ++gateways_at[static_cast<std::size_t>(
        rg.to_region[static_cast<std::size_t>(c.inside)])];
  for (std::size_t i = 0; i < cut.hot.size(); ++i) {
    rg.graph.set_servers(static_cast<NodeId>(i),
                         g.servers(cut.hot[i]) +
                             gateways_at[i]);
  }

  rg.host_to_region.assign(static_cast<std::size_t>(g.total_servers()), -1);
  rg.region_host_to_full.assign(
      static_cast<std::size_t>(rg.graph.total_servers()), -1);
  for (std::size_t i = 0; i < cut.hot.size(); ++i) {
    const NodeId full = cut.hot[i];
    const HostId full_base = g.first_host_of(full);
    const HostId region_base = rg.graph.first_host_of(static_cast<NodeId>(i));
    for (int s = 0; s < g.servers(full); ++s) {
      rg.host_to_region[static_cast<std::size_t>(full_base + s)] =
          region_base + s;
      rg.region_host_to_full[static_cast<std::size_t>(region_base + s)] =
          full_base + s;
    }
  }
  std::vector<int> gateway_seen(cut.hot.size(), 0);
  rg.gateway_host.reserve(cut.cut.size());
  for (const CutLink& c : cut.cut) {
    const auto ri = static_cast<std::size_t>(
        rg.to_region[static_cast<std::size_t>(c.inside)]);
    const HostId h = rg.graph.first_host_of(static_cast<NodeId>(ri)) +
                     g.servers(c.inside) + gateway_seen[ri];
    ++gateway_seen[ri];
    rg.gateway_host.push_back(h);
  }
  return rg;
}

}  // namespace spineless::topo
