#include "topo/analysis.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/rng.h"

namespace spineless::topo {

NsrStats network_server_ratio(const Graph& g) {
  NsrStats stats;
  stats.min = std::numeric_limits<double>::infinity();
  double sum = 0;
  int count = 0;
  for (NodeId n = 0; n < g.num_switches(); ++n) {
    if (g.servers(n) == 0) continue;
    const double nsr = static_cast<double>(g.network_degree(n)) /
                       static_cast<double>(g.servers(n));
    stats.min = std::min(stats.min, nsr);
    stats.max = std::max(stats.max, nsr);
    sum += nsr;
    ++count;
  }
  SPINELESS_CHECK_MSG(count > 0, "topology has no servers");
  stats.mean = sum / count;
  return stats;
}

double udf(const Graph& baseline, const Graph& flat) {
  return network_server_ratio(flat).mean / network_server_ratio(baseline).mean;
}

double leaf_spine_nsr(int x, int y) {
  // Each leaf has y uplinks and x server ports (§3.1).
  return static_cast<double>(y) / static_cast<double>(x);
}

double leaf_spine_flat_nsr(int x, int y) {
  // §3.1: NSR(F(T)) = ((x+y) - s) / s with s = x(x+y)/(x+2y), which
  // simplifies to 2y/x.
  return 2.0 * static_cast<double>(y) / static_cast<double>(x);
}

double leaf_spine_udf(int x, int y) {
  return leaf_spine_flat_nsr(x, y) / leaf_spine_nsr(x, y);  // == 2
}

std::vector<int> bfs_distances(const Graph& g, NodeId src) {
  std::vector<int> dist(static_cast<std::size_t>(g.num_switches()), -1);
  std::deque<NodeId> queue{src};
  dist[static_cast<std::size_t>(src)] = 0;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (const Port& p : g.neighbors(u)) {
      auto& d = dist[static_cast<std::size_t>(p.neighbor)];
      if (d < 0) {
        d = dist[static_cast<std::size_t>(u)] + 1;
        queue.push_back(p.neighbor);
      }
    }
  }
  return dist;
}

std::vector<std::vector<int>> all_pairs_distances(const Graph& g) {
  std::vector<std::vector<int>> dist;
  dist.reserve(static_cast<std::size_t>(g.num_switches()));
  for (NodeId n = 0; n < g.num_switches(); ++n)
    dist.push_back(bfs_distances(g, n));
  return dist;
}

PathLengthStats path_length_stats(const Graph& g) {
  PathLengthStats stats;
  double sum = 0;
  std::int64_t pairs = 0;
  for (NodeId n = 0; n < g.num_switches(); ++n) {
    const auto dist = bfs_distances(g, n);
    for (NodeId m = 0; m < g.num_switches(); ++m) {
      if (m == n) continue;
      SPINELESS_CHECK_MSG(dist[static_cast<std::size_t>(m)] >= 0,
                          "graph is disconnected");
      stats.diameter =
          std::max(stats.diameter, dist[static_cast<std::size_t>(m)]);
      sum += dist[static_cast<std::size_t>(m)];
      ++pairs;
    }
  }
  stats.mean = pairs > 0 ? sum / static_cast<double>(pairs) : 0.0;
  return stats;
}

std::int64_t count_shortest_paths(const Graph& g, NodeId src, NodeId dst,
                                  std::int64_t cap) {
  const auto dist = bfs_distances(g, src);
  SPINELESS_CHECK(dist[static_cast<std::size_t>(dst)] >= 0);
  // DP over the BFS DAG in distance order.
  std::vector<std::int64_t> ways(static_cast<std::size_t>(g.num_switches()), 0);
  ways[static_cast<std::size_t>(src)] = 1;
  // Process nodes sorted by distance.
  std::vector<NodeId> order(static_cast<std::size_t>(g.num_switches()));
  for (NodeId n = 0; n < g.num_switches(); ++n)
    order[static_cast<std::size_t>(n)] = n;
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return dist[static_cast<std::size_t>(a)] < dist[static_cast<std::size_t>(b)];
  });
  for (NodeId u : order) {
    if (ways[static_cast<std::size_t>(u)] == 0) continue;
    for (const Port& p : g.neighbors(u)) {
      if (dist[static_cast<std::size_t>(p.neighbor)] ==
          dist[static_cast<std::size_t>(u)] + 1) {
        auto& w = ways[static_cast<std::size_t>(p.neighbor)];
        w = std::min(cap, w + ways[static_cast<std::size_t>(u)]);
      }
    }
  }
  return ways[static_cast<std::size_t>(dst)];
}

double mean_host_path_length(const Graph& g) {
  double weighted = 0;
  double weight = 0;
  for (NodeId a = 0; a < g.num_switches(); ++a) {
    if (g.servers(a) == 0) continue;
    const auto dist = bfs_distances(g, a);
    for (NodeId b = 0; b < g.num_switches(); ++b) {
      if (b == a || g.servers(b) == 0) continue;
      SPINELESS_CHECK(dist[static_cast<std::size_t>(b)] >= 0);
      const double w = static_cast<double>(g.servers(a)) *
                       static_cast<double>(g.servers(b));
      weighted += w * dist[static_cast<std::size_t>(b)];
      weight += w;
    }
  }
  SPINELESS_CHECK(weight > 0);
  return weighted / weight;
}

ThroughputBounds uniform_throughput_bounds(const Graph& g, int cut_trials,
                                           std::uint64_t seed) {
  ThroughputBounds b;
  const double hosts = static_cast<double>(g.total_servers());
  b.distance_bound = 2.0 * static_cast<double>(g.num_links()) /
                     (hosts * mean_host_path_length(g));
  b.bisection_bound =
      4.0 * static_cast<double>(bisection_upper_bound(g, cut_trials, seed)) /
      hosts;
  return b;
}

namespace {

int cut_size(const Graph& g, const std::vector<char>& side) {
  int cut = 0;
  for (const Link& l : g.links())
    cut += side[static_cast<std::size_t>(l.a)] !=
           side[static_cast<std::size_t>(l.b)];
  return cut;
}

}  // namespace

int bisection_upper_bound(const Graph& g, int trials, std::uint64_t seed) {
  const auto n = static_cast<std::size_t>(g.num_switches());
  const std::size_t half = n / 2;
  int best = std::numeric_limits<int>::max();

  // Contiguous sweep cuts (optimal for ring-like node layouts).
  std::vector<char> side(n, 0);
  for (std::size_t start = 0; start < n; ++start) {
    std::fill(side.begin(), side.end(), 0);
    for (std::size_t i = 0; i < half; ++i) side[(start + i) % n] = 1;
    best = std::min(best, cut_size(g, side));
  }

  // Random balanced cuts.
  Rng rng(seed);
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (int t = 0; t < trials; ++t) {
    rng.shuffle(perm);
    std::fill(side.begin(), side.end(), 0);
    for (std::size_t i = 0; i < half; ++i) side[perm[i]] = 1;
    best = std::min(best, cut_size(g, side));
  }
  return best;
}

}  // namespace spineless::topo
