#include "workload/cs_model.h"

#include <algorithm>

#include "util/error.h"

namespace spineless::workload {
namespace {

// Packs `count` hosts into the fewest racks, drawing racks in the random
// order `rack_order` and skipping racks in `exclude`.
void pack(const Graph& g, int count, const std::vector<NodeId>& rack_order,
          const std::vector<char>& exclude, std::vector<HostId>& hosts,
          std::vector<NodeId>& racks_used) {
  // Fewest racks = fill the largest available racks first; the paper packs
  // into the fewest number of racks while choosing racks randomly. We sort
  // the random order by capacity (stable), which both packs minimally and
  // keeps the random tie-break.
  std::vector<NodeId> order = rack_order;
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return g.servers(a) > g.servers(b);
  });
  int remaining = count;
  for (NodeId r : order) {
    if (remaining == 0) break;
    if (exclude[static_cast<std::size_t>(r)] || g.servers(r) == 0) continue;
    const int take = std::min(remaining, g.servers(r));
    for (int i = 0; i < take; ++i)
      hosts.push_back(g.first_host_of(r) + i);
    racks_used.push_back(r);
    remaining -= take;
  }
  SPINELESS_CHECK_MSG(remaining == 0,
                      "cannot pack " << count << " hosts into free racks");
}

}  // namespace

CsSets make_cs_sets(const Graph& g, int c, int s, Rng& rng) {
  SPINELESS_CHECK(c > 0 && s > 0);
  std::vector<NodeId> rack_order;
  for (NodeId n = 0; n < g.num_switches(); ++n)
    if (g.servers(n) > 0) rack_order.push_back(n);
  rng.shuffle(rack_order);

  CsSets sets;
  std::vector<char> exclude(static_cast<std::size_t>(g.num_switches()), 0);
  pack(g, c, rack_order, exclude, sets.clients, sets.client_racks);
  for (NodeId r : sets.client_racks) exclude[static_cast<std::size_t>(r)] = 1;
  rng.shuffle(rack_order);  // fresh random order for the server side
  pack(g, s, rack_order, exclude, sets.servers, sets.server_racks);
  return sets;
}

RackTm cs_rack_tm(const Graph& g, const CsSets& sets) {
  RackTm tm(g.num_switches());
  // Count members per rack.
  std::vector<int> c_in(static_cast<std::size_t>(g.num_switches()), 0);
  std::vector<int> s_in(static_cast<std::size_t>(g.num_switches()), 0);
  for (HostId h : sets.clients)
    ++c_in[static_cast<std::size_t>(g.tor_of_host(h))];
  for (HostId h : sets.servers)
    ++s_in[static_cast<std::size_t>(g.tor_of_host(h))];
  for (NodeId a : sets.client_racks)
    for (NodeId b : sets.server_racks)
      tm.at(a, b) = static_cast<double>(c_in[static_cast<std::size_t>(a)]) *
                    static_cast<double>(s_in[static_cast<std::size_t>(b)]);
  return tm;
}

std::vector<std::pair<HostId, HostId>> cs_flow_pairs(const CsSets& sets,
                                                     std::size_t max_pairs,
                                                     Rng& rng) {
  const std::size_t all =
      sets.clients.size() * sets.servers.size();
  std::vector<std::pair<HostId, HostId>> out;
  if (all <= max_pairs) {
    out.reserve(all);
    for (HostId c : sets.clients)
      for (HostId s : sets.servers) out.emplace_back(c, s);
    return out;
  }
  // Uniform sample of pair indices without replacement.
  for (std::size_t idx : rng.sample_without_replacement(all, max_pairs)) {
    const HostId c = sets.clients[idx / sets.servers.size()];
    const HostId s = sets.servers[idx % sets.servers.size()];
    out.emplace_back(c, s);
  }
  return out;
}

}  // namespace spineless::workload
