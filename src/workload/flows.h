// Finite-flow workload generation for the FCT experiments (§5.2/§6.1):
// Pareto flow sizes (mean 100 KB, shape 1.05), start times uniform over the
// simulation window, total volume scaled to a target offered load.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/graph.h"
#include "util/rng.h"
#include "util/units.h"
#include "workload/tm.h"

namespace spineless::workload {

struct FlowSpec {
  HostId src = 0;
  HostId dst = 0;
  std::int64_t bytes = 0;
  Time start = 0;
};

struct FlowGenConfig {
  double offered_load_bps = 0;             // aggregate demand rate
  Time window = 10 * units::kMillisecond;  // flow arrivals span [0, window)
  double mean_flow_bytes = 100e3;          // paper: Pareto mean 100 KB
  double pareto_alpha = 1.05;              // paper: "scale" 1.05
  // Truncation keeps the alpha=1.05 tail from producing a single flow
  // larger than the whole experiment; standard practice in DC studies.
  std::int64_t max_flow_bytes = 30'000'000;
  std::int64_t min_flow_bytes = 1'500;     // at least one MTU
};

// Expected size of one generated flow under the truncated Pareto.
double expected_truncated_flow_bytes(const FlowGenConfig& cfg);

// Draws a fixed number of flows — offered_load_bps * window divided by the
// expected truncated flow size, so the *expected* volume hits the target
// (§5.2: "the number of flows are determined according to the weights of
// the TM"). Endpoints come from the sampler, sizes from the truncated
// Pareto, start times uniform over the window ("flow start times are
// chosen uniformly at random across the simulation window"). Sorted by
// start time.
std::vector<FlowSpec> generate_flows(const TmSampler& sampler,
                                     const FlowGenConfig& cfg, Rng& rng);

// §6.1 load scaling: offered load that drives the leaf-spine spine layer at
// `utilization` — utilization x aggregate leaf-uplink capacity — reused
// verbatim for the equal-equipment flat topologies so every topology sees
// the same demand.
double spine_offered_load_bps(int x, int y, double line_rate_bps,
                              double utilization);

// §6.1: "as only a small subset of the racks participate ... we further
// scale these TMs down by a factor = number of racks that send traffic /
// total racks".
double participating_fraction(const Graph& g, const RackTm& tm);

}  // namespace spineless::workload
