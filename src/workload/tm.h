// Traffic matrices (§5.2). Rack-level demand weights plus a host-level
// endpoint sampler.
//
// The Facebook workloads: the paper replays rack-level weights measured at
// two 64-rack Facebook clusters (Roy et al., SIGCOMM'15) — one largely
// uniform (Hadoop) and one significantly skewed (front-end). That raw data
// is not redistributable, so `fb_like_uniform` / `fb_like_skewed` generate
// synthetic matrices with the published qualitative structure (see
// DESIGN.md §2): the uniform one is all-to-all with mild lognormal noise;
// the skewed one combines Zipf rack popularity with a handful of elephant
// rack pairs. Host-level TMs are generated natively per topology with the
// same statistical shape and the same offered load (rather than replaying
// the exact leaf-spine server numbering), which preserves the rack-level
// skew each topology sees.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "topo/graph.h"
#include "util/rng.h"

namespace spineless::workload {

using topo::Graph;
using topo::HostId;
using topo::NodeId;

// Square rack-level weight matrix indexed by switch id (weights involving
// server-less switches — leaf-spine spines — are zero by construction).
class RackTm {
 public:
  explicit RackTm(NodeId racks)
      : w_(static_cast<std::size_t>(racks),
           std::vector<double>(static_cast<std::size_t>(racks), 0.0)) {}

  double& at(NodeId a, NodeId b) {
    return w_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
  }
  double at(NodeId a, NodeId b) const {
    return w_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
  }
  NodeId racks() const { return static_cast<NodeId>(w_.size()); }

  double total() const;
  // Number of racks with outgoing weight > 0 — the "racks that send
  // traffic" used for the §6.1 participating-fraction rescaling.
  int sending_racks() const;

  // Uniform / A2A: weight proportional to servers(a) * servers(b), a != b —
  // every server pair equally likely.
  static RackTm uniform(const Graph& g);
  // All servers of rack a send to all servers of rack b.
  static RackTm rack_to_rack(const Graph& g, NodeId a, NodeId b);
  // Synthetic Facebook-like matrices (see file comment).
  static RackTm fb_like_uniform(const Graph& g, std::uint64_t seed);
  static RackTm fb_like_skewed(const Graph& g, std::uint64_t seed);
  // Random rack-level permutation: each server-holding rack sends all its
  // traffic to exactly one other rack (a derangement). The classic
  // near-worst-case pattern for oversubscribed fabrics — no statistical
  // multiplexing across destinations.
  static RackTm permutation(const Graph& g, std::uint64_t seed);

 private:
  std::vector<std::vector<double>> w_;
};

// Samples host-level flow endpoints from a rack-level matrix: rack pair by
// weight, then a uniform host within each rack. An optional host
// permutation implements the paper's Random Placement (RP) variants.
class TmSampler {
 public:
  TmSampler(const Graph& g, const RackTm& tm);

  // Draws (src_host, dst_host), src != dst.
  std::pair<HostId, HostId> sample(Rng& rng) const;

  // Randomly permutes the host identity space: rack-level weights then
  // apply to shuffled hosts, modeling random VM placement (§5.2 "FB
  // skewed/uniform Random Placement").
  void apply_random_placement(Rng& rng);

  const Graph& graph() const { return graph_; }

 private:
  const Graph& graph_;
  // Flattened non-zero entries with an inclusive-prefix-sum CDF.
  std::vector<std::pair<NodeId, NodeId>> pairs_;
  std::vector<double> cdf_;
  std::vector<HostId> host_map_;  // identity unless RP applied
};

}  // namespace spineless::workload
