// The paper's C-S model (§5.2): pick C hosts as clients packed into the
// fewest racks (racks chosen at random), pick S hosts as servers packed
// into the fewest racks avoiding client racks; measure the network capacity
// between the two sets. Sweeping |C| and |S| covers incast/outcast,
// rack-to-rack, skewed, and uniform patterns.
#pragma once

#include <vector>

#include "topo/graph.h"
#include "util/rng.h"
#include "workload/tm.h"

namespace spineless::workload {

struct CsSets {
  std::vector<HostId> clients;
  std::vector<HostId> servers;
  std::vector<NodeId> client_racks;  // racks used (in packing order)
  std::vector<NodeId> server_racks;
};

// Packs c clients and s servers per the C-S model. Throws if the topology
// cannot host c + s hosts on disjoint racks.
CsSets make_cs_sets(const Graph& g, int c, int s, Rng& rng);

// Rack-level TM for a C-S set: every client rack sends to every server rack
// with weight proportional to (clients in rack) x (servers in rack).
RackTm cs_rack_tm(const Graph& g, const CsSets& sets);

// Host-level long-running flow list for the throughput experiment: each
// client sends to every server, downsampled to at most max_pairs pairs
// (uniformly, deterministically from rng) when |C| x |S| is large.
std::vector<std::pair<HostId, HostId>> cs_flow_pairs(const CsSets& sets,
                                                     std::size_t max_pairs,
                                                     Rng& rng);

}  // namespace spineless::workload
