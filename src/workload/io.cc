#include "workload/io.h"

#include <fstream>
#include <sstream>

#include "util/error.h"

namespace spineless::workload {

namespace {
constexpr const char* kHeader = "src,dst,bytes,start_ps";
}  // namespace

std::string flows_to_csv(const std::vector<FlowSpec>& flows) {
  std::ostringstream os;
  os << kHeader << "\n";
  for (const auto& f : flows) {
    os << f.src << ',' << f.dst << ',' << f.bytes << ',' << f.start << "\n";
  }
  return os.str();
}

void write_flows_csv(const std::string& path,
                     const std::vector<FlowSpec>& flows) {
  std::ofstream out(path);
  SPINELESS_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out << flows_to_csv(flows);
  SPINELESS_CHECK_MSG(out.good(), "write to " << path << " failed");
}

std::vector<FlowSpec> flows_from_csv(const std::string& csv) {
  std::istringstream in(csv);
  std::string line;
  SPINELESS_CHECK_MSG(std::getline(in, line) && line == kHeader,
                      "bad flow CSV header: '" << line << "'");
  std::vector<FlowSpec> flows;
  int line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    FlowSpec f;
    char c1 = 0, c2 = 0, c3 = 0;
    std::istringstream ls(line);
    ls >> f.src >> c1 >> f.dst >> c2 >> f.bytes >> c3 >> f.start;
    SPINELESS_CHECK_MSG(!ls.fail() && c1 == ',' && c2 == ',' && c3 == ',',
                        "bad flow CSV line " << line_no << ": '" << line
                                             << "'");
    SPINELESS_CHECK_MSG(f.bytes > 0 && f.start >= 0 && f.src != f.dst,
                        "invalid flow on CSV line " << line_no);
    flows.push_back(f);
  }
  return flows;
}

std::vector<FlowSpec> read_flows_csv(const std::string& path) {
  std::ifstream in(path);
  SPINELESS_CHECK_MSG(in.good(), "cannot open " << path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return flows_from_csv(buffer.str());
}

}  // namespace spineless::workload
