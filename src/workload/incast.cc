#include "workload/incast.h"

#include <algorithm>

#include "util/error.h"

namespace spineless::workload {

std::vector<IncastQuery> generate_incast_queries(const Graph& g, int queries,
                                                 int workers,
                                                 std::int64_t response_bytes,
                                                 Time window, Rng& rng) {
  SPINELESS_CHECK(queries > 0 && workers > 0 && response_bytes > 0);
  SPINELESS_CHECK(window > 0);
  const auto hosts = static_cast<std::uint64_t>(g.total_servers());
  SPINELESS_CHECK_MSG(workers < g.total_servers(),
                      "not enough hosts for the fan-in");

  std::vector<IncastQuery> out;
  out.reserve(static_cast<std::size_t>(queries));
  for (int q = 0; q < queries; ++q) {
    IncastQuery query;
    query.aggregator = static_cast<HostId>(rng.uniform(hosts));
    query.response_bytes = response_bytes;
    query.start = static_cast<Time>(rng.uniform(
        static_cast<std::uint64_t>(window)));
    const topo::NodeId agg_rack = g.tor_of_host(query.aggregator);
    int attempts = 0;
    while (static_cast<int>(query.workers.size()) < workers) {
      SPINELESS_CHECK_MSG(++attempts < 100 * workers + 10'000,
                          "cannot place workers outside the aggregator rack");
      const auto h = static_cast<HostId>(rng.uniform(hosts));
      if (h == query.aggregator || g.tor_of_host(h) == agg_rack) continue;
      if (std::find(query.workers.begin(), query.workers.end(), h) !=
          query.workers.end())
        continue;
      query.workers.push_back(h);
    }
    out.push_back(std::move(query));
  }
  return out;
}

}  // namespace spineless::workload
