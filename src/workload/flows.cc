#include "workload/flows.h"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "util/error.h"

namespace spineless::workload {

double expected_truncated_flow_bytes(const FlowGenConfig& cfg) {
  // E[min(X, c)] for Pareto(alpha, xm) = xm + xm^a (c^(1-a) - xm^(1-a))/(1-a)
  // (the integral of the survival function up to the cap c). The floor at
  // min_flow_bytes is below xm for the paper's parameters and ignored.
  const double a = cfg.pareto_alpha;
  const double xm = cfg.mean_flow_bytes * (a - 1.0) / a;
  const double c = static_cast<double>(cfg.max_flow_bytes);
  return xm + std::pow(xm, a) *
                  (std::pow(c, 1.0 - a) - std::pow(xm, 1.0 - a)) / (1.0 - a);
}

std::vector<FlowSpec> generate_flows(const TmSampler& sampler,
                                     const FlowGenConfig& cfg, Rng& rng) {
  SPINELESS_CHECK(cfg.offered_load_bps > 0);
  SPINELESS_CHECK(cfg.window > 0);
  const double target_bytes =
      cfg.offered_load_bps / 8.0 * units::to_seconds(cfg.window);
  // "The number of flows are determined according to the weights of the TM"
  // (§5.2): fix the flow count from the expected (truncated) flow size so
  // the expected volume hits the target — drawing until the volume is
  // reached would let one early heavy-tail elephant end generation.
  const auto n_flows = static_cast<std::size_t>(std::max(
      1.0, std::round(target_bytes / expected_truncated_flow_bytes(cfg))));

  std::vector<FlowSpec> flows;
  flows.reserve(n_flows);
  for (std::size_t i = 0; i < n_flows; ++i) {
    FlowSpec f;
    std::tie(f.src, f.dst) = sampler.sample(rng);
    const double raw = rng.pareto_with_mean(cfg.pareto_alpha,
                                            cfg.mean_flow_bytes);
    f.bytes = std::clamp<std::int64_t>(static_cast<std::int64_t>(raw),
                                       cfg.min_flow_bytes, cfg.max_flow_bytes);
    f.start = static_cast<Time>(rng.uniform(
        static_cast<std::uint64_t>(cfg.window)));
    flows.push_back(f);
  }
  std::sort(flows.begin(), flows.end(),
            [](const FlowSpec& a, const FlowSpec& b) {
              return a.start < b.start;
            });
  return flows;
}

double spine_offered_load_bps(int x, int y, double line_rate_bps,
                              double utilization) {
  // Leaf-spine(x, y): (x + y) leaves with y uplinks each.
  const double uplink_capacity =
      static_cast<double>(x + y) * static_cast<double>(y) * line_rate_bps;
  return utilization * uplink_capacity;
}

double participating_fraction(const Graph& g, const RackTm& tm) {
  int total_racks = 0;
  for (NodeId n = 0; n < g.num_switches(); ++n)
    if (g.servers(n) > 0) ++total_racks;
  SPINELESS_CHECK(total_racks > 0);
  return static_cast<double>(tm.sending_racks()) /
         static_cast<double>(total_racks);
}

}  // namespace spineless::workload
