// Workload persistence: dump a generated flow list to CSV and load it back,
// so experiments can be replayed bit-for-bit across runs, shared with
// external simulators, or inspected with standard tooling.
//
// Format: header line "src,dst,bytes,start_ps", one flow per line.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/flows.h"

namespace spineless::workload {

std::string flows_to_csv(const std::vector<FlowSpec>& flows);
void write_flows_csv(const std::string& path,
                     const std::vector<FlowSpec>& flows);

// Parses the CSV format above; throws Error on malformed input.
std::vector<FlowSpec> flows_from_csv(const std::string& csv);
std::vector<FlowSpec> read_flows_csv(const std::string& path);

}  // namespace spineless::workload
