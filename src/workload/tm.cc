#include "workload/tm.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace spineless::workload {

double RackTm::total() const {
  double t = 0;
  for (const auto& row : w_)
    for (double v : row) t += v;
  return t;
}

int RackTm::sending_racks() const {
  int n = 0;
  for (const auto& row : w_) {
    for (double v : row) {
      if (v > 0) {
        ++n;
        break;
      }
    }
  }
  return n;
}

RackTm RackTm::uniform(const Graph& g) {
  RackTm tm(g.num_switches());
  for (NodeId a = 0; a < g.num_switches(); ++a) {
    for (NodeId b = 0; b < g.num_switches(); ++b) {
      if (a == b) continue;
      tm.at(a, b) = static_cast<double>(g.servers(a)) *
                    static_cast<double>(g.servers(b));
    }
  }
  return tm;
}

RackTm RackTm::rack_to_rack(const Graph& g, NodeId a, NodeId b) {
  SPINELESS_CHECK(a != b);
  SPINELESS_CHECK_MSG(g.servers(a) > 0 && g.servers(b) > 0,
                      "rack-to-rack endpoints must host servers");
  RackTm tm(g.num_switches());
  tm.at(a, b) = 1.0;
  return tm;
}

RackTm RackTm::fb_like_uniform(const Graph& g, std::uint64_t seed) {
  // Hadoop-cluster-like: close to all-to-all with mild per-pair variation.
  Rng rng(seed);
  RackTm tm(g.num_switches());
  for (NodeId a = 0; a < g.num_switches(); ++a) {
    if (g.servers(a) == 0) continue;
    for (NodeId b = 0; b < g.num_switches(); ++b) {
      if (a == b || g.servers(b) == 0) continue;
      // Lognormal(mu=0, sigma=0.3) multiplicative noise.
      const double z = std::sqrt(-2.0 * std::log(1.0 - rng.uniform_real())) *
                       std::cos(6.283185307179586 * rng.uniform_real());
      tm.at(a, b) = std::exp(0.3 * z);
    }
  }
  return tm;
}

RackTm RackTm::fb_like_skewed(const Graph& g, std::uint64_t seed) {
  // Front-end-cluster-like: strong rack-level skew. Rack popularity is
  // Zipf(1.0) over a random rack order; pair weight is the popularity outer
  // product; a handful of elephant pairs get a 20x boost. The knobs below
  // reproduce "a minority of racks carries most traffic".
  constexpr double kZipfAlpha = 1.0;
  constexpr int kElephants = 6;
  constexpr double kElephantBoost = 20.0;

  Rng rng(seed);
  std::vector<NodeId> racks;
  for (NodeId n = 0; n < g.num_switches(); ++n)
    if (g.servers(n) > 0) racks.push_back(n);
  rng.shuffle(racks);
  ZipfSampler zipf(racks.size(), kZipfAlpha);

  RackTm tm(g.num_switches());
  for (std::size_t i = 0; i < racks.size(); ++i) {
    for (std::size_t j = 0; j < racks.size(); ++j) {
      if (i == j) continue;
      tm.at(racks[i], racks[j]) = zipf.probability(i) * zipf.probability(j);
    }
  }
  for (int e = 0; e < kElephants && racks.size() >= 2; ++e) {
    const std::size_t i = rng.uniform(racks.size());
    std::size_t j = rng.uniform(racks.size());
    if (i == j) j = (j + 1) % racks.size();
    tm.at(racks[i], racks[j]) *= kElephantBoost;
  }
  return tm;
}

RackTm RackTm::permutation(const Graph& g, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> racks;
  for (NodeId n = 0; n < g.num_switches(); ++n)
    if (g.servers(n) > 0) racks.push_back(n);
  SPINELESS_CHECK_MSG(racks.size() >= 2, "permutation needs >= 2 racks");
  // Random derangement by rejection (expected ~e attempts).
  std::vector<NodeId> target = racks;
  for (int attempt = 0; attempt < 1000; ++attempt) {
    rng.shuffle(target);
    bool fixed_point = false;
    for (std::size_t i = 0; i < racks.size(); ++i)
      fixed_point |= racks[i] == target[i];
    if (!fixed_point) break;
    SPINELESS_CHECK_MSG(attempt + 1 < 1000, "derangement rejection failed");
  }
  RackTm tm(g.num_switches());
  for (std::size_t i = 0; i < racks.size(); ++i) {
    tm.at(racks[i], target[i]) = static_cast<double>(g.servers(racks[i]));
  }
  return tm;
}

TmSampler::TmSampler(const Graph& g, const RackTm& tm) : graph_(g) {
  SPINELESS_CHECK(tm.racks() == g.num_switches());
  double acc = 0;
  for (NodeId a = 0; a < g.num_switches(); ++a) {
    for (NodeId b = 0; b < g.num_switches(); ++b) {
      const double v = tm.at(a, b);
      if (v <= 0) continue;
      SPINELESS_CHECK_MSG(g.servers(a) > 0 && g.servers(b) > 0,
                          "TM weight on server-less switch " << a << "->" << b);
      pairs_.emplace_back(a, b);
      acc += v;
      cdf_.push_back(acc);
    }
  }
  SPINELESS_CHECK_MSG(!pairs_.empty(), "empty traffic matrix");
  for (double& c : cdf_) c /= acc;
  cdf_.back() = 1.0;
  host_map_.resize(static_cast<std::size_t>(g.total_servers()));
  for (HostId h = 0; h < g.total_servers(); ++h)
    host_map_[static_cast<std::size_t>(h)] = h;
}

std::pair<HostId, HostId> TmSampler::sample(Rng& rng) const {
  const double u = rng.uniform_real();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const auto idx = static_cast<std::size_t>(it - cdf_.begin());
  const auto [ra, rb] = pairs_[std::min(idx, pairs_.size() - 1)];
  for (int attempt = 0; attempt < 64; ++attempt) {
    const HostId src =
        graph_.first_host_of(ra) +
        static_cast<HostId>(rng.uniform(static_cast<std::uint64_t>(
            graph_.servers(ra))));
    const HostId dst =
        graph_.first_host_of(rb) +
        static_cast<HostId>(rng.uniform(static_cast<std::uint64_t>(
            graph_.servers(rb))));
    if (src != dst)
      return {host_map_[static_cast<std::size_t>(src)],
              host_map_[static_cast<std::size_t>(dst)]};
  }
  throw Error("TmSampler: could not draw distinct hosts (1-server rack pair?)");
}

void TmSampler::apply_random_placement(Rng& rng) { rng.shuffle(host_map_); }

}  // namespace spineless::workload
