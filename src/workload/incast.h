// Partition-aggregate (incast) queries: an aggregator host fans a request
// out to W workers, all of which respond at once — the canonical many-to-
// one burst that collapses shallow-buffered fabrics and motivated DCTCP.
// The metric is query completion time (QCT): last response in.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/graph.h"
#include "util/rng.h"
#include "util/units.h"

namespace spineless::workload {

using topo::Graph;
using topo::HostId;

struct IncastQuery {
  HostId aggregator = 0;
  std::vector<HostId> workers;  // all respond response_bytes at `start`
  std::int64_t response_bytes = 0;
  Time start = 0;
};

// `queries` independent queries with uniformly random aggregators and
// `workers` distinct workers drawn from other racks, response_bytes per
// worker, start times uniform over [0, window).
std::vector<IncastQuery> generate_incast_queries(const Graph& g, int queries,
                                                 int workers,
                                                 std::int64_t response_bytes,
                                                 Time window, Rng& rng);

}  // namespace spineless::workload
