#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace spineless {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  SPINELESS_CHECK(!header_.empty());
}

Table& Table::add_row(std::vector<std::string> cells) {
  SPINELESS_CHECK_MSG(cells.size() == header_.size(),
                      "row width " << cells.size() << " vs header "
                                   << header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << "\n";
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

std::string render_heatmap(const std::vector<std::vector<double>>& cells,
                           const std::vector<std::string>& row_labels,
                           const std::vector<std::string>& col_labels,
                           const std::string& corner_label) {
  SPINELESS_CHECK(cells.size() == row_labels.size());
  Table t([&] {
    std::vector<std::string> header{corner_label};
    header.insert(header.end(), col_labels.begin(), col_labels.end());
    return header;
  }());
  for (std::size_t r = 0; r < cells.size(); ++r) {
    SPINELESS_CHECK(cells[r].size() == col_labels.size());
    std::vector<std::string> row{row_labels[r]};
    for (double v : cells[r]) row.push_back(Table::fmt(v, 2));
    t.add_row(std::move(row));
  }
  return t.to_string();
}

}  // namespace spineless
