// Minimal --key=value flag parsing for example and bench binaries.
//
// Also honours SPINELESS_PAPER_SCALE=1 in the environment, which switches the
// benches from the fast default configurations to the paper's full-scale
// configurations (see DESIGN.md §2).
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace spineless {

class Flags {
 public:
  Flags(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& def) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  // True when --scale=paper was passed or SPINELESS_PAPER_SCALE=1 is set.
  bool paper_scale() const;

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace spineless
