// Deterministic, seedable random number generation.
//
// All stochastic components (random regular graphs, workload generators,
// ECMP hashing salts, simulation arrival processes) draw from Rng so that
// every experiment is reproducible from a single 64-bit seed.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/error.h"

namespace spineless {

// splitmix64: used to expand a user seed into xoshiro state and as a cheap
// stateless mixing function for ECMP-style hashing.
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// xoshiro256** — fast, high-quality, 256-bit state PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5311e55ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t x = seed;
    for (auto& s : state_) s = x = splitmix64(x);
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound) noexcept {
    // Lemire's nearly-divisionless bounded rejection.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Uniform real in [0, 1).
  double uniform_real() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform_real();
  }

  // Pareto variate with shape alpha and scale x_m (support [x_m, inf)).
  double pareto(double alpha, double xm) noexcept;

  // Pareto variate parameterized by mean (requires alpha > 1).
  double pareto_with_mean(double alpha, double mean) noexcept;

  // Exponential variate with the given mean.
  double exponential(double mean) noexcept;

  // Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = uniform(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  // Checkpoint support: a restored stream must resume mid-sequence, not
  // re-seed, or every post-restore draw diverges from an uninterrupted run.
  std::array<std::uint64_t, 4> state() const noexcept {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    for (int i = 0; i < 4; ++i) state_[i] = s[static_cast<std::size_t>(i)];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

// Zipf-distributed sampler over ranks {0,..,n-1} with exponent alpha,
// implemented by inverse-CDF over the precomputed normalized weights.
// Used by the FB-like skewed traffic generator.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double alpha);

  std::size_t operator()(Rng& rng) const noexcept;

  // Normalized probability of rank i.
  double probability(std::size_t i) const { return prob_.at(i); }
  std::size_t size() const noexcept { return prob_.size(); }

 private:
  std::vector<double> prob_;  // probability per rank
  std::vector<double> cdf_;   // inclusive prefix sums
};

}  // namespace spineless
