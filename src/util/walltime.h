// The one sanctioned wall-clock wrapper for metadata-only timing in the
// determinism-critical layers (sim/routing/fault/flowsim/core).
//
// Rationale: those layers must be a pure function of (seed, sim time), so
// spineless_lint's taint-wall-clock rule forbids them from transitively
// reaching a clock read. But they do legitimately *measure* themselves —
// table_build_s / setup_s accounting in BENCH_*.json — and that
// measurement never feeds simulated state. Routing such timing through
// this barrier file makes the exception a call-graph-verified edge
// instead of a per-line NOLINT: the lint allowlists src/util/walltime.
// exactly once, and any new clock read elsewhere is flagged.
//
// Do NOT use this for anything a packet, table, event, or snapshot byte
// depends on; wall time here is for humans reading reports only.
#pragma once

namespace spineless::util {

// Seconds on a monotonic clock, for interval measurement
// (end - begin). The epoch is arbitrary; only differences are meaningful.
double monotonic_seconds();

}  // namespace spineless::util
