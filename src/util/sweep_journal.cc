#include "util/sweep_journal.h"

#include <utility>

#include "util/error.h"
#include "util/fsio.h"

namespace spineless::util {
namespace {

constexpr char kHeaderTag[] = "sweepjournal";
constexpr char kVersion[] = "v1";
constexpr char kCellTag[] = "cell";

std::vector<std::string> split_tabs(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == '\t') {
      out.push_back(line.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

}  // namespace

std::string SweepJournal::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '=': out += "\\e"; break;
      default: out += c;
    }
  }
  return out;
}

std::string SweepJournal::unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 == s.size()) {
      out += s[i];
      continue;
    }
    switch (s[++i]) {
      case '\\': out += '\\'; break;
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      case 'e': out += '='; break;
      default: out += s[i];
    }
  }
  return out;
}

SweepJournal::SweepJournal(std::string path, std::string bench,
                           std::string config_sig, bool resume)
    : path_(std::move(path)),
      bench_(std::move(bench)),
      config_sig_(std::move(config_sig)) {
  if (resume && file_exists(path_)) {
    load();
  } else {
    // A fresh (or non-resumed) sweep must not inherit stale records.
    remove_file(path_);
  }
}

std::string SweepJournal::header_line() const {
  return std::string(kHeaderTag) + "\t" + kVersion + "\t" + escape(bench_) +
         "\t" + escape(config_sig_);
}

void SweepJournal::load() {
  std::string contents;
  if (!read_file(path_, &contents)) return;
  std::size_t pos = 0;
  bool header_ok = false;
  bool first = true;
  while (pos < contents.size()) {
    const std::size_t nl = contents.find('\n', pos);
    if (nl == std::string::npos) break;  // partial trailing line: crash relic
    const std::string line = contents.substr(pos, nl - pos);
    pos = nl + 1;
    const auto parts = split_tabs(line);
    if (first) {
      first = false;
      header_ok = parts.size() == 4 && parts[0] == kHeaderTag &&
                  parts[1] == kVersion && unescape(parts[2]) == bench_ &&
                  unescape(parts[3]) == config_sig_;
      if (!header_ok) break;
      header_written_ = true;
      continue;
    }
    if (parts.size() < 2 || parts[0] != kCellTag) continue;
    Fields fields;
    for (std::size_t i = 2; i < parts.size(); ++i) {
      const std::size_t eq = parts[i].find('=');
      if (eq == std::string::npos) continue;
      fields[unescape(parts[i].substr(0, eq))] =
          unescape(parts[i].substr(eq + 1));
    }
    records_[unescape(parts[1])] = std::move(fields);  // last record wins
  }
  if (!header_ok) {
    // Different bench/config (or corrupt header): the records cannot be
    // trusted for this run.
    records_.clear();
    header_written_ = false;
    remove_file(path_);
    return;
  }
  loaded_ = records_.size();
}

bool SweepJournal::has(const std::string& key) const {
  return records_.count(key) != 0;
}

const SweepJournal::Fields* SweepJournal::get(const std::string& key) const {
  const auto it = records_.find(key);
  return it == records_.end() ? nullptr : &it->second;
}

void SweepJournal::record(const std::string& key, const Fields& fields) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!header_written_) {
    SPINELESS_CHECK_MSG(append_line_durable(path_, header_line()),
                        "cannot write sweep journal " + path_);
    header_written_ = true;
  }
  std::string line = std::string(kCellTag);
  line += '\t';
  line += escape(key);
  for (const auto& [k, v] : fields) {
    line += '\t';
    line += escape(k);
    line += '=';
    line += escape(v);
  }
  SPINELESS_CHECK_MSG(append_line_durable(path_, line),
                      "cannot append to sweep journal " + path_);
  records_[key] = fields;
}

void SweepJournal::remove() { remove_file(path_); }

}  // namespace spineless::util
