#include "util/rng.h"

#include <cmath>
#include <unordered_set>

namespace spineless {

double Rng::pareto(double alpha, double xm) noexcept {
  // Inverse CDF: x = xm / U^(1/alpha), U in (0,1].
  double u = 1.0 - uniform_real();  // (0, 1]
  return xm / std::pow(u, 1.0 / alpha);
}

double Rng::pareto_with_mean(double alpha, double mean) noexcept {
  // mean = alpha * xm / (alpha - 1)  =>  xm = mean * (alpha - 1) / alpha.
  const double xm = mean * (alpha - 1.0) / alpha;
  return pareto(alpha, xm);
}

double Rng::exponential(double mean) noexcept {
  double u = 1.0 - uniform_real();  // (0, 1]
  return -mean * std::log(u);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  SPINELESS_CHECK_MSG(k <= n, "sample k=" << k << " from n=" << n);
  if (k * 3 >= n) {
    // Dense: shuffle a full index vector and truncate.
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    shuffle(idx);
    idx.resize(k);
    return idx;
  }
  // Sparse: rejection sampling.
  std::unordered_set<std::size_t> seen;
  std::vector<std::size_t> out;
  out.reserve(k);
  while (out.size() < k) {
    const std::size_t v = uniform(n);
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

ZipfSampler::ZipfSampler(std::size_t n, double alpha) {
  SPINELESS_CHECK(n > 0);
  prob_.resize(n);
  double sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    prob_[i] = 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    sum += prob_[i];
  }
  cdf_.resize(n);
  double acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    prob_[i] /= sum;
    acc += prob_[i];
    cdf_[i] = acc;
  }
  cdf_.back() = 1.0;  // guard against FP drift
}

std::size_t ZipfSampler::operator()(Rng& rng) const noexcept {
  const double u = rng.uniform_real();
  // Binary search for the first cdf_ entry >= u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

}  // namespace spineless
