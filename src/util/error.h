// Lightweight invariant checking for the spineless libraries.
//
// SPINELESS_CHECK is always on (library correctness conditions, cheap);
// SPINELESS_DCHECK compiles out in NDEBUG builds (hot-path assertions).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace spineless {

// Thrown for violated preconditions / invariants across all libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace spineless

#define SPINELESS_CHECK(expr)                                          \
  do {                                                                 \
    if (!(expr))                                                       \
      ::spineless::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define SPINELESS_CHECK_MSG(expr, msg)                                  \
  do {                                                                  \
    if (!(expr))                                                        \
      ::spineless::detail::check_failed(#expr, __FILE__, __LINE__,      \
                                        (std::ostringstream() << msg).str()); \
  } while (0)

#ifdef NDEBUG
#define SPINELESS_DCHECK(expr) ((void)0)
#else
#define SPINELESS_DCHECK(expr) SPINELESS_CHECK(expr)
#endif
