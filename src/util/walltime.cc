#include "util/walltime.h"

#include <chrono>

namespace spineless::util {

double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace spineless::util
