#include "util/flags.h"

#include <cstdlib>
#include <string_view>

namespace spineless {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.substr(0, 2) != "--") continue;
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      kv_.emplace(std::string(arg), "true");
    } else {
      kv_.emplace(std::string(arg.substr(0, eq)),
                  std::string(arg.substr(eq + 1)));
    }
  }
}

bool Flags::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string Flags::get(const std::string& key, const std::string& def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

std::int64_t Flags::get_int(const std::string& key, std::int64_t def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& key, double def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& key, bool def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

bool Flags::paper_scale() const {
  if (get("scale", "") == "paper") return true;
  const char* env = std::getenv("SPINELESS_PAPER_SCALE");
  return env != nullptr && std::string_view(env) == "1";
}

}  // namespace spineless
