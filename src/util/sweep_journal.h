// Resumable-sweep journal: one durably-appended line per completed (or
// permanently failed) cell, so a killed sweep rerun with --resume skips
// finished cells and re-runs only the rest. The repo has no JSON parser,
// so records are a versioned tab-separated key=value line format with its
// own escaping; values round-trip exactly (doubles via %.17g at the caller).
//
// Crash safety: each record is a single short O_APPEND write followed by
// fsync — atomic on POSIX — and the loader ignores a trailing line with no
// newline, so a crash mid-append costs at most that one cell.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace spineless::util {

class SweepJournal {
 public:
  // Ordered so a re-serialized record is byte-stable.
  using Fields = std::map<std::string, std::string>;

  // Opens `path`. When `resume` is true and the file starts with a header
  // matching (bench, config_sig), existing records load; otherwise the
  // file is truncated and a fresh header written on the first record.
  // config_sig should encode every flag that changes cell results, so a
  // journal from a different configuration is never silently reused.
  SweepJournal(std::string path, std::string bench, std::string config_sig,
               bool resume);

  bool has(const std::string& key) const;
  const Fields* get(const std::string& key) const;
  std::size_t loaded() const noexcept { return loaded_; }

  // Durably appends one record (thread-safe; cells complete concurrently).
  void record(const std::string& key, const Fields& fields);

  const std::string& path() const noexcept { return path_; }

  // Deletes the journal file; call after the sweep finishes cleanly and
  // its results are safely in the final BENCH JSON.
  void remove();

  static std::string escape(const std::string& s);
  static std::string unescape(const std::string& s);

 private:
  void load();
  std::string header_line() const;

  std::string path_;
  std::string bench_;
  std::string config_sig_;
  bool header_written_ = false;
  std::size_t loaded_ = 0;
  std::map<std::string, Fields> records_;
  std::mutex mu_;
};

}  // namespace spineless::util
