#include "util/json.h"

#include <cmath>
#include <cstdio>

#include "util/fsio.h"

namespace spineless {

void JsonWriter::comma() {
  if (need_comma_) out_ += ',';
  need_comma_ = false;
}

void JsonWriter::append_string(const std::string& s) {
  out_ += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

void JsonWriter::append_double(double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan
    out_ += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out_ += buf;
}

void JsonWriter::begin_object() {
  comma();
  out_ += '{';
}

void JsonWriter::end_object() {
  out_ += '}';
  need_comma_ = true;
}

void JsonWriter::begin_array() {
  comma();
  out_ += '[';
}

void JsonWriter::end_array() {
  out_ += ']';
  need_comma_ = true;
}

void JsonWriter::key(const std::string& k) {
  comma();
  append_string(k);
  out_ += ':';
}

void JsonWriter::kv(const std::string& k, const std::string& v) {
  key(k);
  append_string(v);
  need_comma_ = true;
}

void JsonWriter::kv(const std::string& k, const char* v) {
  kv(k, std::string(v));
}

void JsonWriter::kv(const std::string& k, double v) {
  key(k);
  append_double(v);
  need_comma_ = true;
}

void JsonWriter::kv(const std::string& k, std::int64_t v) {
  key(k);
  out_ += std::to_string(v);
  need_comma_ = true;
}

void JsonWriter::kv(const std::string& k, std::uint64_t v) {
  key(k);
  out_ += std::to_string(v);
  need_comma_ = true;
}

void JsonWriter::kv(const std::string& k, bool v) {
  key(k);
  out_ += v ? "true" : "false";
  need_comma_ = true;
}

void JsonWriter::value(const std::string& v) {
  comma();
  append_string(v);
  need_comma_ = true;
}

void JsonWriter::value(double v) {
  comma();
  append_double(v);
  need_comma_ = true;
}

void JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  need_comma_ = true;
}

bool write_json_file(const std::string& path, const JsonWriter& writer) {
  // Temp-file + rename: a run killed mid-write never leaves a truncated
  // BENCH_*.json behind, and --resume readers see old-or-new, never half.
  return util::atomic_write_file(path, writer.str() + "\n");
}

}  // namespace spineless
