#include "util/fsio.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>

namespace spineless::util {
namespace {

// Flush a stdio stream all the way to disk. fflush pushes the user-space
// buffer into the kernel; fsync pushes the kernel's cache to the device.
bool flush_and_sync(std::FILE* f) {
  if (std::fflush(f) != 0) return false;
  return ::fsync(::fileno(f)) == 0;
}

// fsync the directory containing `path`. POSIX only guarantees that a
// rename() or a newly created directory entry is durable once the
// *directory* itself has been fsynced — fsyncing the file contents alone
// leaves the entry in the directory's in-memory page cache, so a power
// loss after atomic_write_file's rename (or after the first append that
// created a journal) could resurface the old file, or no file at all,
// even though the data blocks hit the platter. See e.g. the "crash
// consistency" discussion in the ext4/xfs man pages for fsync(2).
bool fsync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : (slash == 0 ? std::string("/")
                                            : path.substr(0, slash));
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

bool atomic_write_file(const std::string& path, const std::string& contents) {
  // The temp file must live in the same directory as the target: rename()
  // is only atomic within a filesystem. The pid suffix keeps concurrent
  // processes (e.g. a sweep and its kill-resume twin in tests) from
  // clobbering each other's temp files.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = contents.empty() ||
            std::fwrite(contents.data(), 1, contents.size(), f) ==
                contents.size();
  ok = ok && flush_and_sync(f);
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  // The rename itself is only durable once the parent directory's entry
  // table is on disk (see fsync_parent_dir). Without this a crash can
  // leave the data blocks durable but the *name* pointing at the old
  // inode — exactly the torn state atomic_write_file promises to prevent.
  return fsync_parent_dir(path);
}

bool read_file(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out->append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool file_exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

bool ensure_dir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0) return true;
  if (errno != EEXIST) return false;
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

void remove_file(const std::string& path) { ::unlink(path.c_str()); }

bool append_line_durable(const std::string& path, const std::string& line) {
  // If this append is the one that creates the file (the sweep journal's
  // first record, a fresh request journal), the new directory entry needs
  // a directory fsync to be durable — fsyncing the file alone does not
  // persist its name (see fsync_parent_dir).
  const bool created = !file_exists(path);
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return false;
  bool ok = line.empty() ||
            std::fwrite(line.data(), 1, line.size(), f) == line.size();
  if (ok && (line.empty() || line.back() != '\n'))
    ok = std::fputc('\n', f) != EOF;
  ok = ok && flush_and_sync(f);
  ok = (std::fclose(f) == 0) && ok;
  if (ok && created) ok = fsync_parent_dir(path);
  return ok;
}

}  // namespace spineless::util
