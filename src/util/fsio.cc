#include "util/fsio.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>

namespace spineless::util {
namespace {

// Flush a stdio stream all the way to disk. fflush pushes the user-space
// buffer into the kernel; fsync pushes the kernel's cache to the device.
bool flush_and_sync(std::FILE* f) {
  if (std::fflush(f) != 0) return false;
  return ::fsync(::fileno(f)) == 0;
}

}  // namespace

bool atomic_write_file(const std::string& path, const std::string& contents) {
  // The temp file must live in the same directory as the target: rename()
  // is only atomic within a filesystem. The pid suffix keeps concurrent
  // processes (e.g. a sweep and its kill-resume twin in tests) from
  // clobbering each other's temp files.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = contents.empty() ||
            std::fwrite(contents.data(), 1, contents.size(), f) ==
                contents.size();
  ok = ok && flush_and_sync(f);
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

bool read_file(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out->append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool file_exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

void remove_file(const std::string& path) { ::unlink(path.c_str()); }

bool append_line_durable(const std::string& path, const std::string& line) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) return false;
  bool ok = line.empty() ||
            std::fwrite(line.data(), 1, line.size(), f) == line.size();
  if (ok && (line.empty() || line.back() != '\n'))
    ok = std::fputc('\n', f) != EOF;
  ok = ok && flush_and_sync(f);
  return (std::fclose(f) == 0) && ok;
}

}  // namespace spineless::util
