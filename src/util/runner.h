// Parallel experiment runner: a work-stealing thread pool that fans the
// independent cells of a benchmark sweep — (topology, traffic matrix,
// config) triples — across cores. It also backs intra-cell parallelism
// (route-table construction fans destinations over the same pool).
//
// Determinism contract: a cell's randomness must derive only from its index
// (derive_cell_seed), never from which thread ran it or in what order, and
// results are collected into index-ordered slots. A sweep therefore
// produces byte-identical output for any --jobs value, including 1.
//
// Nesting: code running on a Runner worker (or a sharded-engine shard) may
// itself construct a Runner — e.g. a bench cell building a Network whose
// table construction is parallel. By default such an inner Runner clamps
// itself to 1 job so --jobs is never oversubscribed; pass Nested::kAllow
// when the caller has explicitly divided the job budget (the benches hand
// each cell --intra_jobs workers out of --jobs).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/rng.h"

namespace spineless::util {

// Per-cell seed: decorrelates cells drawn from one base seed without any
// sequential RNG handoff, so cell i's stream is the same no matter how many
// worker threads exist or which one picks it up.
constexpr std::uint64_t derive_cell_seed(std::uint64_t base_seed,
                                         std::uint64_t cell_index) {
  return splitmix64(base_seed ^ (cell_index * 0x9e3779b97f4a7c15ULL));
}

// Default worker count: SPINELESS_JOBS if set (and positive), otherwise
// std::thread::hardware_concurrency().
int default_jobs();

// True while the calling thread is inside a parallel region (a Runner
// worker or a sharded-engine shard thread).
bool in_parallel_region();

// RAII marker used by the pools themselves; user code never needs it.
class ParallelRegion {
 public:
  ParallelRegion();
  ~ParallelRegion();
  ParallelRegion(const ParallelRegion&) = delete;
  ParallelRegion& operator=(const ParallelRegion&) = delete;
};

class Runner {
 public:
  enum class Nested {
    kSerialize,  // clamp to 1 job when constructed inside a parallel region
    kAllow,      // keep the requested job count (caller divided the budget)
  };

  // jobs < 1 is clamped to 1. jobs == 1 runs every batch inline on the
  // calling thread (no pool threads are created).
  explicit Runner(int jobs = default_jobs(),
                  Nested nested = Nested::kSerialize);
  ~Runner();

  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;

  int jobs() const noexcept { return jobs_; }

  // Applies fn(i) for i in [0, n) across the pool and returns the results
  // in index order. fn must be callable concurrently from multiple
  // threads; the first exception thrown by any cell is rethrown here
  // (remaining cells still run). The calling thread participates as a
  // worker, so map() on a 1-job runner is exactly a serial loop.
  template <typename Fn>
  auto map(std::size_t n, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    std::vector<R> out(n);
    run_batch(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  // Untyped core of map(): runs body(i) for i in [0, n).
  void run_batch(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  // One work-stealing deque per worker slot: the owner pops from the
  // front, thieves take from the back.
  struct WorkQueue {
    std::mutex mu;
    std::deque<std::size_t> tasks;
  };

  void worker_main(std::size_t slot);
  // Drains the current batch from `slot`'s queue, stealing when empty.
  void work(std::size_t slot);
  bool try_take(std::size_t slot, std::size_t* index);

  const int jobs_;
  std::vector<std::unique_ptr<WorkQueue>> queues_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable batch_cv_;  // workers wait here between batches
  std::condition_variable done_cv_;   // run_batch waits here for drain
  std::uint64_t generation_ = 0;      // bumped per batch to wake workers
  bool shutdown_ = false;
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t remaining_ = 0;  // tasks not yet completed in this batch
  std::exception_ptr first_error_;
};

}  // namespace spineless::util
