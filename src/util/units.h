// Simulation units.
//
// Time is integer picoseconds (Time) so that event ordering is exact; rates
// are bits per second. A 1500 B frame on a 10 Gbps link serializes in
// exactly 1'200'000 ps, representable without rounding.
#pragma once

#include <cstdint>

namespace spineless {

using Time = std::int64_t;  // picoseconds

namespace units {

constexpr Time kPicosecond = 1;
constexpr Time kNanosecond = 1'000;
constexpr Time kMicrosecond = 1'000'000;
constexpr Time kMillisecond = 1'000'000'000;
constexpr Time kSecond = 1'000'000'000'000;

constexpr double to_seconds(Time t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}
constexpr double to_millis(Time t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}
constexpr double to_micros(Time t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

constexpr std::int64_t kKilo = 1'000;
constexpr std::int64_t kMega = 1'000'000;
constexpr std::int64_t kGiga = 1'000'000'000;

// Serialization time of `bytes` at `bits_per_sec`, rounded up to whole ps.
constexpr Time serialization_time(std::int64_t bytes,
                                  std::int64_t bits_per_sec) noexcept {
  // bytes * 8 bits / (bits/s) seconds -> ps. Keep the product in 128 bits.
  const __int128 num = static_cast<__int128>(bytes) * 8 * kSecond;
  return static_cast<Time>((num + bits_per_sec - 1) / bits_per_sec);
}

constexpr std::int64_t gbps(std::int64_t g) noexcept { return g * kGiga; }

}  // namespace units
}  // namespace spineless
