#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.h"

namespace spineless {

void Summary::add(double x) {
  samples_.push_back(x);
  sum_ += x;
  sorted_ = false;
}

void Summary::add_all(const std::vector<double>& xs) {
  for (double x : xs) add(x);
}

void Summary::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Summary::mean() const {
  SPINELESS_CHECK(!samples_.empty());
  return sum_ / static_cast<double>(samples_.size());
}

double Summary::min() const {
  ensure_sorted();
  SPINELESS_CHECK(!samples_.empty());
  return samples_.front();
}

double Summary::max() const {
  ensure_sorted();
  SPINELESS_CHECK(!samples_.empty());
  return samples_.back();
}

double Summary::stddev() const {
  SPINELESS_CHECK(!samples_.empty());
  const double m = mean();
  double acc = 0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double Summary::percentile(double p) const {
  SPINELESS_CHECK(!samples_.empty());
  SPINELESS_CHECK(p >= 0.0 && p <= 100.0);
  ensure_sorted();
  if (samples_.size() == 1) return samples_[0];
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::string Summary::brief() const {
  std::ostringstream os;
  if (empty()) return "n=0";
  os << "n=" << count() << " mean=" << mean() << " p50=" << median()
     << " p99=" << p99() << " max=" << max();
  return os.str();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0.0) {
  SPINELESS_CHECK(hi > lo);
  SPINELESS_CHECK(bins > 0);
}

void Histogram::add(double x, double weight) {
  const double span = hi_ - lo_;
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / span *
                                         static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

std::string Histogram::ascii(std::size_t width) const {
  double peak = 0;
  for (double c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        peak > 0 ? static_cast<std::size_t>(counts_[i] / peak *
                                            static_cast<double>(width))
                 : 0;
    os << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace spineless
