// Minimal JSON emitter for the machine-readable BENCH_*.json artifacts.
// Streaming writer: begin/end objects and arrays, write keyed or plain
// values; commas and string escaping are handled here so call sites stay
// declarative. No DOM, no parsing — benches only ever write.
#pragma once

#include <cstdint>
#include <string>

namespace spineless {

class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  // Keyed forms, valid inside an object.
  void key(const std::string& k);
  void kv(const std::string& k, const std::string& v);
  void kv(const std::string& k, const char* v);
  void kv(const std::string& k, double v);
  void kv(const std::string& k, std::int64_t v);
  void kv(const std::string& k, std::uint64_t v);
  void kv(const std::string& k, int v) { kv(k, static_cast<std::int64_t>(v)); }
  void kv(const std::string& k, bool v);

  // Plain values, valid inside an array.
  void value(const std::string& v);
  void value(double v);
  void value(std::int64_t v);

  const std::string& str() const noexcept { return out_; }

 private:
  void comma();
  void append_string(const std::string& s);
  void append_double(double v);

  std::string out_;
  bool need_comma_ = false;
};

// Atomically writes `writer`'s document to `path` (+ trailing newline) via
// util::atomic_write_file, so readers never observe a truncated document.
// Returns false (target untouched) if the file cannot be written.
bool write_json_file(const std::string& path, const JsonWriter& writer);

}  // namespace spineless
