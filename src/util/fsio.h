// Crash-safe file I/O helpers shared by the bench artifact writers, the
// sweep journal, and the checkpoint subsystem.
//
// atomic_write_file is the core primitive: write to a temp file in the
// destination directory, fsync, then rename() over the target, so a reader
// (or a resumed run) either sees the old complete file or the new complete
// file — never a truncated one.
#pragma once

#include <string>

namespace spineless::util {

// Atomically replaces `path` with `contents` (temp file + fsync + rename +
// parent-directory fsync — POSIX makes a rename durable only once the
// directory entry itself is synced). Returns false on any I/O failure; the
// target is left untouched then.
bool atomic_write_file(const std::string& path, const std::string& contents);

// Reads the whole file into *out. Returns false if it cannot be opened.
bool read_file(const std::string& path, std::string* out);

// True if `path` exists (as any file type).
bool file_exists(const std::string& path);

// Creates `path` as a directory if it does not exist (single level, mode
// 0755). Returns true when the directory exists afterwards.
bool ensure_dir(const std::string& path);

// Removes `path`; missing files are not an error.
void remove_file(const std::string& path);

// Appends `line` (a trailing '\n' is added if absent) to `path` and fsyncs
// before returning, so a completed append survives a crash. A single short
// append is atomic on POSIX, which is what the sweep journal relies on.
// When the append creates the file, the parent directory is fsynced too —
// creat(2)'s new directory entry is otherwise not durable.
// Returns false on any I/O failure.
bool append_line_durable(const std::string& path, const std::string& line);

}  // namespace spineless::util
