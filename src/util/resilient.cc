#include "util/resilient.h"

#include <algorithm>
#include <chrono>

namespace spineless::util {
namespace {

const std::chrono::steady_clock::time_point kEpoch =
    std::chrono::steady_clock::now();

}  // namespace

double monotonic_s() noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       kEpoch)
      .count();
}

double RetryPolicy::backoff_for(int attempt) const noexcept {
  double s = backoff_base_s;
  for (int i = 1; i < attempt && s < backoff_cap_s; ++i) s *= 2;
  return std::min(s, backoff_cap_s);
}

void CellSlot::begin_attempt() noexcept {
  token.reset();
  const double now = monotonic_s();
  started_s_.store(now, std::memory_order_release);
  beat_s_.store(now, std::memory_order_release);
  progress_.store(0, std::memory_order_release);
  active_.store(true, std::memory_order_release);
}

void CellSlot::end_attempt() noexcept {
  active_.store(false, std::memory_order_release);
}

void CellSlot::heartbeat(std::uint64_t progress) noexcept {
  // Only *advancing* progress refreshes the beat: a cell spinning at a
  // frozen event count is exactly what the progress timeout exists for.
  if (progress > progress_.load(std::memory_order_acquire)) {
    progress_.store(progress, std::memory_order_release);
    beat_s_.store(monotonic_s(), std::memory_order_release);
  }
}

Watchdog::Watchdog(std::size_t cells, const RetryPolicy& policy)
    : policy_(policy),
      n_(cells),
      slots_(std::make_unique<CellSlot[]>(cells)) {
  if (policy_.has_watchdog() && cells > 0)
    thread_ = std::thread([this] { scan_loop(); });
}

Watchdog::~Watchdog() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void Watchdog::scan_loop() {
  // NOLINTNEXTLINE(spineless-atomic-spin): watchdog cadence — every pass sleeps 20ms below, so the stop flag is polled ~50x/s, not spun on
  while (!stop_.load(std::memory_order_acquire)) {
    const double now = monotonic_s();
    for (std::size_t i = 0; i < n_; ++i) {
      CellSlot& s = slots_[i];
      if (!s.active()) continue;
      const bool wall_over = policy_.wall_timeout_s > 0 &&
                             now - s.started_s() > policy_.wall_timeout_s;
      const bool stuck = policy_.progress_timeout_s > 0 &&
                         now - s.last_beat_s() > policy_.progress_timeout_s;
      if (wall_over || stuck) s.token.cancel();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

namespace detail {

bool interruptible_sleep(double seconds, const RetryPolicy& policy) {
  const double until = monotonic_s() + seconds;
  while (monotonic_s() < until) {
    if (policy.interrupted && policy.interrupted()) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return !(policy.interrupted && policy.interrupted());
}

}  // namespace detail

}  // namespace spineless::util
