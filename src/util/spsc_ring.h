// Lock-free single-producer/single-consumer ring, the cross-shard handoff
// primitive of the reactor engine (sim/sharded_engine.h).
//
// Shape follows SPDK's rings: a power-of-two slot array indexed by
// free-running head (consumer) and tail (producer) counters, each on its
// own cache line next to a *cached* copy of the opposite index. The cache
// lets the hot paths run on purely local state: a push touches the shared
// head only when the ring looks full, a drain touches the shared tail only
// when the ring looks empty. The only synchronization is one release store
// publishing each side's counter and one acquire load refreshing the
// other's — no CAS, no locks, no fences beyond acquire/release.
//
// Determinism note: the ring preserves FIFO order per (producer, consumer)
// pair, which is all the engine needs — every consumer merges its rings in
// fixed source order up to an explicit epoch sentinel, so the *set* and
// *order* of merged events is independent of when drains run.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "util/error.h"

namespace spineless::util {

template <typename T>
class SpscRing {
 public:
  // Capacity must be a power of two (indices wrap by masking).
  explicit SpscRing(std::size_t capacity)
      : mask_(capacity - 1), buf_(std::make_unique<T[]>(capacity)) {
    SPINELESS_CHECK_MSG(capacity > 0 && (capacity & mask_) == 0,
                        "SpscRing capacity must be a power of two");
  }
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  // Producer side. Returns false when the ring is full (the caller keeps
  // the item; the engine parks it in a per-lane overflow vector so a full
  // ring never blocks or drops).
  bool try_push(const T& v) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ > mask_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ > mask_) return false;
    }
    buf_[tail & mask_] = v;
    tail_.store(tail + 1, std::memory_order_release);
    const std::size_t occ = tail + 1 - cached_head_;
    if (occ > max_occupancy_) max_occupancy_ = occ;
    return true;
  }

  // Producer-side diagnostic: the highest occupancy try_push ever observed
  // (an under-estimate only while the consumer lags the cached head, i.e.
  // it is conservative in the direction that matters for sizing).
  std::size_t max_occupancy() const noexcept { return max_occupancy_; }

  // Consumer side: pops up to `max` items, invoking fn(const T&) on each in
  // FIFO order. Returns the number consumed (0 when empty).
  template <typename Fn>
  std::size_t drain(std::size_t max, Fn&& fn) {
    std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return 0;
    }
    std::size_t n = 0;
    while (n < max && head != cached_tail_) {
      fn(buf_[head & mask_]);
      ++head;
      ++n;
    }
    head_.store(head, std::memory_order_release);
    return n;
  }

  // Consumer-side emptiness check (exact for the consumer: it sees every
  // element it has not yet drained; concurrent pushes may appear later).
  bool empty() const noexcept {
    return head_.load(std::memory_order_relaxed) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  const std::size_t mask_;
  const std::unique_ptr<T[]> buf_;

  // Producer cache line: written by try_push only.
  alignas(64) std::atomic<std::size_t> tail_{0};
  std::size_t cached_head_ = 0;
  std::size_t max_occupancy_ = 0;

  // Consumer cache line: written by drain only.
  alignas(64) std::atomic<std::size_t> head_{0};
  std::size_t cached_tail_ = 0;
};

}  // namespace spineless::util
