// Self-healing execution of sweep cells: per-cell wall-clock timeouts, an
// event-progress watchdog (a cell whose event counter stops advancing is
// stuck even if it is burning CPU), capped-exponential-backoff retries on
// the same seed, and graceful degradation — an unrecoverable cell reports
// status "failed" with its error instead of aborting the sweep.
//
// Cancellation is cooperative: the watchdog cannot kill a thread portably,
// so it sets the cell's CancelToken and the cell is expected to poll it at
// its checkpoint boundaries (run_fct_experiment does; see CheckpointSpec).
// A cell that never polls will still be *reported* as timed out, but only
// once it returns on its own.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>

#include "util/runner.h"

namespace spineless::util {

// One-way latch flipped by a watchdog (or signal handler) and polled by
// the running cell at its checkpoint boundaries.
class CancelToken {
 public:
  void cancel() noexcept { flag_.store(true, std::memory_order_release); }
  bool canceled() const noexcept {
    return flag_.load(std::memory_order_acquire);
  }
  void reset() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

struct RetryPolicy {
  int max_attempts = 1;           // total tries per cell (1 = no retry)
  double wall_timeout_s = 0;      // per-attempt wall clock; 0 = unlimited
  double progress_timeout_s = 0;  // max seconds without event progress
  double backoff_base_s = 0.25;   // sleep before attempt k: base * 2^(k-1)
  double backoff_cap_s = 5.0;     // ... capped here
  // External interruption (e.g. SIGINT): checked between attempts and
  // during backoff sleeps; an interrupted cell is not retried.
  std::function<bool()> interrupted;

  bool has_watchdog() const noexcept {
    return wall_timeout_s > 0 || progress_timeout_s > 0;
  }
  double backoff_for(int attempt) const noexcept;  // attempt is 1-based
};

// Per-cell live state shared between the cell's worker thread and the
// watchdog thread. All fields are atomics; the watchdog only ever reads
// them and flips `token`.
class CellSlot {
 public:
  // Worker side.
  void begin_attempt() noexcept;
  void end_attempt() noexcept;
  void heartbeat(std::uint64_t progress) noexcept;
  CancelToken token;

  // Watchdog side (seconds on a process-wide monotonic clock).
  bool active() const noexcept {
    return active_.load(std::memory_order_acquire);
  }
  double started_s() const noexcept {
    return started_s_.load(std::memory_order_acquire);
  }
  double last_beat_s() const noexcept {
    return beat_s_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> active_{false};
  std::atomic<double> started_s_{0};
  std::atomic<double> beat_s_{0};
  std::atomic<std::uint64_t> progress_{0};
};

// Seconds since an arbitrary process-wide monotonic epoch.
double monotonic_s() noexcept;

// Owns the CellSlot array and, when the policy sets any timeout, a scanner
// thread that cancels overdue slots. With no timeouts configured it is just
// slot storage (no thread).
class Watchdog {
 public:
  Watchdog(std::size_t cells, const RetryPolicy& policy);
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  CellSlot& slot(std::size_t i) noexcept { return slots_[i]; }

 private:
  void scan_loop();

  const RetryPolicy policy_;
  std::size_t n_;
  std::unique_ptr<CellSlot[]> slots_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

// What a running cell sees: a heartbeat sink plus a combined cancellation
// view (watchdog token OR external interrupt).
class CellContext {
 public:
  CellContext(CellSlot& slot, const RetryPolicy& policy) noexcept
      : slot_(slot), policy_(policy) {}

  // Feed the progress watchdog: `progress` must be monotonically
  // non-decreasing (e.g. cumulative simulator events). A heartbeat that
  // does not advance it does not count as progress.
  void heartbeat(std::uint64_t progress) noexcept { slot_.heartbeat(progress); }

  bool canceled() const noexcept {
    return slot_.token.canceled() ||
           (policy_.interrupted && policy_.interrupted());
  }
  // True only for the external (user-interrupt) half of canceled().
  bool interrupted() const noexcept {
    return policy_.interrupted && policy_.interrupted();
  }

 private:
  CellSlot& slot_;
  const RetryPolicy& policy_;
};

enum class CellState {
  kOk,
  kFailed,       // exhausted its attempts (crash or timeout)
  kInterrupted,  // external interrupt; not a cell failure, never retried
};

struct CellStatus {
  CellState state = CellState::kOk;
  int attempts = 1;
  bool timed_out = false;  // the final failure came from the watchdog
  std::string error;
  bool ok() const noexcept { return state == CellState::kOk; }
};

template <typename R>
struct CellOutcome {
  R value{};
  CellStatus status;
};

namespace detail {
// Sleeps `seconds` in small increments, returning early (false) if the
// policy's external interrupt fires.
bool interruptible_sleep(double seconds, const RetryPolicy& policy);
}  // namespace detail

// Runs one cell's attempt loop under `slot`: try, classify (ok / thrown /
// watchdog-canceled / interrupted), back off, retry up to
// policy.max_attempts. Never throws out of the cell body — the error text
// (prefixed with `label`, which should carry the cell id and seed) lands in
// the returned status instead.
template <typename Fn>
auto run_cell_attempts(CellSlot& slot, const RetryPolicy& policy,
                       const std::string& label, Fn&& fn)
    -> CellOutcome<std::invoke_result_t<Fn&, CellContext&>> {
  using R = std::invoke_result_t<Fn&, CellContext&>;
  CellOutcome<R> out;
  CellContext ctx(slot, policy);
  for (int attempt = 1;; ++attempt) {
    out.status.attempts = attempt;
    slot.begin_attempt();
    std::string error;
    bool timed_out = false;
    bool done = false;
    try {
      R value = fn(ctx);
      if (ctx.interrupted()) {
        out.value = std::move(value);
        out.status.state = CellState::kInterrupted;
        done = true;
      } else if (slot.token.canceled()) {
        error = "watchdog timeout (wall or no event progress)";
        timed_out = true;
      } else {
        out.value = std::move(value);
        out.status.state = CellState::kOk;
        done = true;
      }
    } catch (const std::exception& e) {
      error = e.what();
    } catch (...) {
      error = "unknown exception";
    }
    slot.end_attempt();
    if (done) return out;
    out.status.error = label + " attempt " + std::to_string(attempt) + "/" +
                       std::to_string(policy.max_attempts) + ": " + error;
    out.status.timed_out = timed_out;
    if (attempt >= policy.max_attempts) {
      out.status.state = CellState::kFailed;
      return out;
    }
    if (!detail::interruptible_sleep(policy.backoff_for(attempt), policy)) {
      out.status.state = CellState::kInterrupted;
      return out;
    }
  }
}

// Convenience: fan n cells over the runner, each under the retry/watchdog
// policy. label_fn(i) should name the cell (id + seed) for error messages.
template <typename Fn>
auto run_cells(Runner& runner, std::size_t n, const RetryPolicy& policy,
               Fn&& fn, const std::function<std::string(std::size_t)>&
                            label_fn = nullptr)
    -> std::vector<
        CellOutcome<std::invoke_result_t<Fn&, std::size_t, CellContext&>>> {
  Watchdog dog(n, policy);
  return runner.map(n, [&](std::size_t i) {
    const std::string label =
        label_fn ? label_fn(i) : "cell " + std::to_string(i);
    return run_cell_attempts(dog.slot(i), policy, label,
                             [&](CellContext& ctx) { return fn(i, ctx); });
  });
}

}  // namespace spineless::util
