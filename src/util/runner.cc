#include "util/runner.h"

#include <cstdlib>

namespace spineless::util {
namespace {

// Depth of parallel-region nesting on this thread. A Runner constructed at
// depth > 0 with Nested::kSerialize runs serially instead of multiplying
// the worker count.
thread_local int tl_parallel_depth = 0;

int clamp_jobs(int jobs, Runner::Nested nested) {
  if (jobs < 1) jobs = 1;
  if (nested == Runner::Nested::kSerialize && tl_parallel_depth > 0) return 1;
  return jobs;
}

}  // namespace

int default_jobs() {
  if (const char* env = std::getenv("SPINELESS_JOBS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

bool in_parallel_region() { return tl_parallel_depth > 0; }

ParallelRegion::ParallelRegion() { ++tl_parallel_depth; }
ParallelRegion::~ParallelRegion() { --tl_parallel_depth; }

Runner::Runner(int jobs, Nested nested) : jobs_(clamp_jobs(jobs, nested)) {
  queues_.reserve(static_cast<std::size_t>(jobs_));
  for (int i = 0; i < jobs_; ++i)
    queues_.push_back(std::make_unique<WorkQueue>());
  // Slot 0 is the calling thread; slots 1..jobs-1 get pool threads.
  threads_.reserve(static_cast<std::size_t>(jobs_ - 1));
  for (int i = 1; i < jobs_; ++i)
    threads_.emplace_back(
        [this, i] { worker_main(static_cast<std::size_t>(i)); });
}

Runner::~Runner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  batch_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void Runner::run_batch(std::size_t n,
                       const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (jobs_ == 1) {
    // Serial fast path: no queues, no locks — literally the loop a serial
    // driver would have written.
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Publish the batch state BEFORE any task reaches a queue: a straggler
    // worker from the previous batch can still be inside try_take() and
    // will run a task the moment its push is visible. Each push releases
    // q.mu, so the taker's acquire of q.mu orders these stores before its
    // read of body_/remaining_.
    body_ = &body;
    remaining_ = n;
    first_error_ = nullptr;
    ++generation_;
    // Stripe cells round-robin across the worker slots so a sweep whose
    // expensive cells cluster (e.g. paper-scale topologies first) still
    // spreads them; stealing rebalances the rest.
    for (std::size_t i = 0; i < n; ++i) {
      WorkQueue& q = *queues_[i % static_cast<std::size_t>(jobs_)];
      std::lock_guard<std::mutex> qlock(q.mu);
      q.tasks.push_back(i);
    }
  }
  batch_cv_.notify_all();
  {
    ParallelRegion region;  // the caller is worker 0
    work(/*slot=*/0);
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return remaining_ == 0; });
    body_ = nullptr;
    if (first_error_) std::rethrow_exception(first_error_);
  }
}

void Runner::worker_main(std::size_t slot) {
  ParallelRegion region;
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      batch_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
    }
    work(slot);
  }
}

bool Runner::try_take(std::size_t slot, std::size_t* index) {
  // Own queue first (front = FIFO for cache-friendly cell order), then
  // steal from the back of the others.
  {
    WorkQueue& q = *queues_[slot];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      *index = q.tasks.front();
      q.tasks.pop_front();
      return true;
    }
  }
  const auto nq = queues_.size();
  for (std::size_t d = 1; d < nq; ++d) {
    WorkQueue& q = *queues_[(slot + d) % nq];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      *index = q.tasks.back();
      q.tasks.pop_back();
      return true;
    }
  }
  return false;
}

void Runner::work(std::size_t slot) {
  std::size_t index;
  while (try_take(slot, &index)) {
    try {
      (*body_)(index);
    } catch (const std::exception& e) {
      // Attribute the failure to its cell: the batch keeps draining (every
      // remaining cell still runs) and run_batch rethrows the first error
      // with the cell id attached so a sweep failure names the culprit.
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_)
        first_error_ = std::make_exception_ptr(Error(
            "cell " + std::to_string(index) + " failed: " + e.what()));
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_)
        first_error_ = std::make_exception_ptr(
            Error("cell " + std::to_string(index) +
                  " failed: unknown exception"));
    }
    bool drained;
    {
      std::lock_guard<std::mutex> lock(mu_);
      drained = --remaining_ == 0;
    }
    if (drained) done_cv_.notify_all();
  }
}

}  // namespace spineless::util
