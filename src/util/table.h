// Aligned console tables and CSV output for the benchmark harnesses.
//
// Every bench binary prints the same rows/series the paper reports; Table
// keeps that output readable and greppable, and can also emit CSV so the
// heatmaps/figures can be re-plotted.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace spineless {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with `precision` significant decimals.
  static std::string fmt(double v, int precision = 3);

  std::size_t rows() const noexcept { return rows_.size(); }

  // Render with column alignment and a separator under the header.
  std::string to_string() const;
  // RFC-4180-ish CSV (no quoting needed for our numeric content).
  std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Renders a matrix as a compact heatmap-style grid of numbers, with row and
// column labels — the console analogue of the paper's Figure 5 heatmaps.
std::string render_heatmap(const std::vector<std::vector<double>>& cells,
                           const std::vector<std::string>& row_labels,
                           const std::vector<std::string>& col_labels,
                           const std::string& corner_label);

}  // namespace spineless
