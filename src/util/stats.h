// Order statistics and running summaries used for FCT / throughput reporting.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace spineless {

// Accumulates samples; percentiles computed on demand (nearest-rank with
// linear interpolation, matching numpy's default).
class Summary {
 public:
  void add(double x);
  void add_all(const std::vector<double>& xs);

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }
  double sum() const noexcept { return sum_; }
  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;
  // p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  double p99() const { return percentile(99.0); }

  const std::vector<double>& samples() const noexcept { return samples_; }

  // "n=…, mean=…, p50=…, p99=…" one-liner for logs.
  std::string brief() const;

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0;
};

// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
// first/last bin. Used for path-length and queue-depth censuses.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double bin_weight(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const noexcept { return counts_.size(); }
  double total_weight() const noexcept { return total_; }

  std::string ascii(std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<double> counts_;
  double total_ = 0;
};

}  // namespace spineless
