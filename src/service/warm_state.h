// WarmState: everything spinelessd keeps resident so a what-if answer
// costs milliseconds instead of a cold build — the topology, warm
// ECMP/VRF tables, the baseline workload, a warm engine checkpoint
// (Network + FlowDriver + DegradationMonitor + FaultInjector advanced to
// t_warm and sealed to bytes, never to disk on the request path), and the
// baseline run's results that what-if answers report deltas against.
//
// Crash recovery: with snapshot_dir set, the warm checkpoint and baseline
// scalars are persisted (util::atomic_write_file) after the warm build; a
// restarting daemon reloads them instead of re-simulating, and because
// restore-by-reconstruction is deterministic, answers computed against a
// reloaded warm state are byte-identical to answers computed against a
// freshly built one — the foundation of the kill-9/replay contract.
//
// What-if execution (request granularity checkpoint reuse): a fault
// request reconstructs the experiment in the exact construction order the
// warm build used, restores the warm bytes, arms ONLY the request's plan
// actions (FaultInjector::arm_actions — the BFD machinery is already in
// the restored event arrays), and runs to the horizon polling a
// cooperative cancel hook at segment boundaries.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/fct_experiment.h"
#include "core/scenario.h"
#include "fault/injector.h"
#include "routing/ecmp.h"
#include "routing/vrf.h"
#include "service/request.h"
#include "topo/graph.h"
#include "workload/flows.h"

namespace spineless::service {

struct ServiceConfig {
  core::Scenario scenario = core::Scenario::small();
  std::string topology = "dring";  // dring | rrg | leafspine

  sim::NetworkConfig net;            // mode defaults to kShortestUnion
  sim::TcpConfig tcp;
  workload::FlowGenConfig flowgen;   // window defaults to 1ms
  fault::FaultInjectorConfig fault;  // BFD/repair timing for every request
  double utilization = 0.3;          // derives offered load when bps == 0

  Time warm_time = 500 * units::kMicrosecond;  // warm checkpoint boundary
  Time horizon = 8 * units::kMillisecond;      // request sim deadline

  std::string snapshot_dir;  // "" = in-memory only (no crash recovery)

  ServiceConfig() {
    net.mode = sim::RoutingMode::kShortestUnion;
    flowgen.window = 1 * units::kMillisecond;
    flowgen.offered_load_bps = 0;  // derived from utilization in build()
  }
};

// Scalar baseline every what-if answer reports deltas against. Doubles
// round-trip exactly through the snapshot, so a reloaded baseline equals a
// recomputed one bit-for-bit.
struct BaselineResult {
  double p50_ms = 0;
  double p99_ms = 0;
  std::uint64_t flows = 0;
  std::uint64_t completed = 0;
  double goodput_bps = 0;  // packet fidelity only; 0 for fluid
};

// One what-if answer, fidelity-tagged. `ok == false` carries the error.
struct WhatIfResult {
  bool ok = true;
  std::string error;
  Fidelity fidelity = Fidelity::kPacket;
  bool finished = true;  // false: cooperatively canceled mid-run

  double p50_ms = 0;
  double p99_ms = 0;
  std::uint64_t flows = 0;
  std::uint64_t completed = 0;
  std::uint64_t stalled = 0;  // fluid: flows with no surviving path
  double delta_p50_ms = 0;    // vs the same-fidelity baseline
  double delta_p99_ms = 0;

  // Fault requests, packet fidelity only.
  double blackhole_s = 0;
  std::uint64_t outages = 0;
  double detect_ms = -1;   // first BFD detection latency; -1 = none
  double goodput_recovery = 0;  // post-fault / baseline goodput

  // affected requests.
  std::uint64_t affected_destinations = 0;
  std::vector<topo::NodeId> affected_sample;  // first <= 32, ascending
  std::int64_t unreachable_pairs_delta = 0;
};

class WarmState {
 public:
  // Builds (or, when cfg.snapshot_dir holds a matching snapshot, reloads)
  // the warm state. Throws on an impossible configuration.
  static std::unique_ptr<WarmState> build(const ServiceConfig& cfg);

  const ServiceConfig& config() const noexcept { return cfg_; }
  const topo::Graph& graph() const noexcept { return graph_; }
  const routing::EcmpTable& ecmp() const noexcept { return ecmp_; }
  const routing::VrfTable& vrf() const noexcept { return *vrf_; }
  std::uint64_t warm_hash() const noexcept { return warm_hash_; }
  const BaselineResult& baseline_packet() const noexcept {
    return baseline_packet_;
  }
  const BaselineResult& baseline_fluid() const noexcept {
    return baseline_fluid_;
  }
  // True when build() reloaded persisted state instead of simulating.
  bool restored_from_disk() const noexcept { return restored_; }

  // Request execution. `cancel` (nullable) is polled at quiescent segment
  // boundaries; a canceled run returns finished == false. All three are
  // deterministic functions of (warm state, request body) — no wall clock,
  // no load dependence — which is what the replay contract relies on.
  WhatIfResult whatif_fault_packet(
      const std::string& spec, std::uint64_t seed_salt,
      const std::function<bool()>& cancel) const;
  WhatIfResult whatif_fault_fluid(const std::string& spec,
                                  std::uint64_t seed_salt) const;
  WhatIfResult whatif_tm(const std::string& tm, double load_scale,
                         std::uint64_t seed_salt, Fidelity fidelity,
                         const std::function<bool()>& cancel) const;
  WhatIfResult affected(std::int64_t link, bool down) const;

 private:
  explicit WarmState(topo::Graph g) : graph_(std::move(g)) {}

  void build_fresh();
  bool try_restore_persisted();
  void persist() const;

  std::uint64_t workload_seed(std::uint64_t salt) const;
  workload::RackTm make_tm(const std::string& kind, std::uint64_t seed) const;
  std::vector<workload::FlowSpec> make_flows(const workload::RackTm& tm,
                                             std::uint64_t seed,
                                             double load_scale) const;
  // Shared fluid-model cell: per-flow paths sampled by walking `table`'s
  // next hops with a request-seeded RNG; flows with no surviving path are
  // reported as stalled.
  WhatIfResult run_fluid(const std::vector<workload::FlowSpec>& flows,
                         const routing::EcmpTable& table,
                         std::uint64_t seed) const;

  ServiceConfig cfg_;
  topo::Graph graph_;
  routing::EcmpTable ecmp_;
  std::unique_ptr<routing::VrfTable> vrf_;
  std::vector<workload::FlowSpec> baseline_flows_;
  std::string warm_bytes_;  // sealed warm checkpoint (CheckpointSession)
  std::uint64_t warm_hash_ = 0;
  BaselineResult baseline_packet_;
  BaselineResult baseline_fluid_;
  bool restored_ = false;
};

}  // namespace spineless::service
