#include "service/daemon.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>

#include "util/fsio.h"

namespace spineless::service {
namespace {

bool fill_sockaddr(const std::string& path, sockaddr_un* addr) {
  if (path.empty() || path.size() >= sizeof(addr->sun_path)) return false;
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

// MSG_NOSIGNAL: a client that disconnected before its answer arrived must
// not SIGPIPE the daemon — the write just fails and the response is
// dropped (the journal still has the request).
bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// Reads one '\n'-terminated line (without the newline) using `buf` as the
// carry-over buffer. False on EOF/error with no buffered line.
bool read_line(int fd, std::string* buf, std::string* line) {
  while (true) {
    const std::size_t nl = buf->find('\n');
    if (nl != std::string::npos) {
      line->assign(*buf, 0, nl);
      buf->erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    buf->append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace

Daemon::Daemon(Engine& engine, std::string socket_path)
    : engine_(engine), socket_path_(std::move(socket_path)) {}

Daemon::~Daemon() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (std::thread& t : connections_)
    if (t.joinable()) t.join();
}

bool Daemon::listen_on_socket() {
  sockaddr_un addr;
  if (!fill_sockaddr(socket_path_, &addr)) {
    std::fprintf(stderr, "spinelessd: bad socket path '%s'\n",
                 socket_path_.c_str());
    return false;
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  util::remove_file(socket_path_);  // stale socket from a crashed run
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 64) < 0) {
    std::fprintf(stderr, "spinelessd: cannot listen on %s: %s\n",
                 socket_path_.c_str(), std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  return true;
}

int Daemon::serve() {
  if (listen_fd_ < 0) return 1;
  while (!shutdown_.load()) {
    pollfd p{listen_fd_, POLLIN, 0};
    // The timeout bounds how long a SIGTERM waits to be noticed; poll
    // itself also returns with EINTR when the signal lands.
    const int rc = ::poll(&p, 1, 100);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0 || (p.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    std::lock_guard<std::mutex> l(mu_);
    open_fds_.push_back(fd);
    connections_.emplace_back([this, fd] { connection_loop(fd); });
  }

  // Graceful drain: stop accepting, answer anything new with `draining`,
  // finish everything already admitted, then tear connections down.
  ::close(listen_fd_);
  listen_fd_ = -1;
  engine_.begin_drain();
  engine_.stop();  // waits for queue + in-flight
  {
    std::lock_guard<std::mutex> l(mu_);
    for (int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : connections_)
    if (t.joinable()) t.join();
  connections_.clear();
  {
    std::lock_guard<std::mutex> l(mu_);
    for (int fd : open_fds_) ::close(fd);
    open_fds_.clear();
  }
  util::remove_file(socket_path_);
  return 0;
}

void Daemon::connection_loop(int fd) {
  // One write mutex per connection: workers finish out of order, and two
  // interleaved response lines would corrupt the stream.
  auto write_mu = std::make_shared<std::mutex>();
  std::string buf, line;
  while (read_line(fd, &buf, &line)) {
    if (line.empty()) continue;
    engine_.submit(line, [fd, write_mu](std::string response) {
      response.push_back('\n');
      std::lock_guard<std::mutex> l(*write_mu);
      send_all(fd, response);
    });
  }
  // The engine may still hold callbacks with this fd; responses for a
  // closed connection fail harmlessly in send_all. Delay the close until
  // drain in serve() would be more polite, but the fd must not be reused
  // while callbacks are live — so the fd is closed only after the engine
  // drained (serve joins us post-stop) or on process exit.
  ::shutdown(fd, SHUT_RD);
}

int run_client(const std::string& socket_path) {
  sockaddr_un addr;
  if (!fill_sockaddr(socket_path, &addr)) return 2;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return 2;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::fprintf(stderr, "spinelessd: cannot connect to %s: %s\n",
                 socket_path.c_str(), std::strerror(errno));
    ::close(fd);
    return 2;
  }
  std::string buf, response;
  char line[65536];
  while (std::fgets(line, sizeof(line), stdin) != nullptr) {
    std::string req(line);
    if (req.empty() || req == "\n") continue;
    if (req.back() != '\n') req.push_back('\n');
    if (!send_all(fd, req)) break;
    if (!read_line(fd, &buf, &response)) break;
    std::fprintf(stdout, "%s\n", response.c_str());
    std::fflush(stdout);
  }
  ::close(fd);
  return 0;
}

}  // namespace spineless::service
