#include "service/engine.h"

#include <algorithm>
#include <utility>

#include "util/error.h"
#include "util/fsio.h"
#include "util/json.h"
#include "util/rng.h"

namespace spineless::service {
namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) h = (h ^ c) * 0x100000001b3ULL;
  return h;
}

std::string hex_u64(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string s = "0x";
  for (int shift = 60; shift >= 0; shift -= 4)
    s.push_back(kDigits[(v >> shift) & 0xf]);
  return s;
}

std::string error_body(const std::string& what) {
  JsonWriter w;
  w.begin_object();
  w.kv("status", "error");
  w.kv("error", what);
  w.end_object();
  return w.str();
}

std::string simple_body(const char* status, const char* reason = nullptr) {
  JsonWriter w;
  w.begin_object();
  w.kv("status", status);
  if (reason != nullptr) w.kv("reason", reason);
  w.end_object();
  return w.str();
}

// The ok-response body. Key order is fixed and every answer-bearing field
// is always present for its (kind, fidelity) shape — byte-identity across
// restarts depends on this being a pure function of the result.
std::string ok_body(const WhatIfResult& r, RequestKind kind, bool degraded) {
  JsonWriter w;
  w.begin_object();
  w.kv("status", "ok");
  w.kv("fidelity", fidelity_name(r.fidelity));
  if (degraded) w.kv("degraded", true);
  switch (kind) {
    case RequestKind::kWhatIfFault:
    case RequestKind::kWhatIfTm:
      w.kv("p50_ms", r.p50_ms);
      w.kv("p99_ms", r.p99_ms);
      w.kv("delta_p50_ms", r.delta_p50_ms);
      w.kv("delta_p99_ms", r.delta_p99_ms);
      w.kv("flows", r.flows);
      w.kv("completed", r.completed);
      if (r.fidelity == Fidelity::kFluid) {
        w.kv("stalled", r.stalled);
      } else {
        if (kind == RequestKind::kWhatIfFault) {
          w.kv("outages", r.outages);
          w.kv("blackhole_s", r.blackhole_s);
          w.kv("detect_ms", r.detect_ms);
        }
        w.kv("goodput_recovery", r.goodput_recovery);
      }
      break;
    case RequestKind::kAffected:
      w.kv("affected_destinations", r.affected_destinations);
      w.key("sample");
      w.begin_array();
      for (topo::NodeId n : r.affected_sample)
        w.value(static_cast<std::int64_t>(n));
      w.end_array();
      w.kv("unreachable_pairs_delta", r.unreachable_pairs_delta);
      break;
    case RequestKind::kStatus:
      break;
  }
  w.end_object();
  return w.str();
}

}  // namespace

Engine::Engine(const WarmState& warm, const EngineConfig& cfg)
    : warm_(warm), cfg_(cfg) {
  cfg_.workers = std::max(1, cfg_.workers);
  watchdog_ = std::make_unique<util::Watchdog>(
      static_cast<std::size_t>(cfg_.workers), cfg_.retry);
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int i = 0; i < cfg_.workers; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

Engine::~Engine() { stop(); }

std::string Engine::respond(std::int64_t id, const std::string& body) const {
  // body is a complete JSON object; splice the id in as its first key.
  return "{\"id\":" + std::to_string(id) + "," + body.substr(1);
}

static WhatIfResult run_request_impl(const WarmState& warm, const Request& req,
                                     Fidelity fidelity,
                                     const std::function<bool()>& cancel) {
  switch (req.kind) {
    case RequestKind::kWhatIfFault:
      return fidelity == Fidelity::kFluid
                 ? warm.whatif_fault_fluid(req.fault_spec, req.seed_salt)
                 : warm.whatif_fault_packet(req.fault_spec, req.seed_salt,
                                            cancel);
    case RequestKind::kWhatIfTm:
      return warm.whatif_tm(req.tm, req.load_scale, req.seed_salt, fidelity,
                            cancel);
    case RequestKind::kAffected:
      return warm.affected(req.link, req.down);
    case RequestKind::kStatus:
      break;
  }
  throw Error("engine: status requests are answered inline");
}

std::string Engine::process(Job& job, util::CellContext* ctx) {
  const bool live = static_cast<bool>(job.done);
  Fidelity want = job.req.fidelity;
  bool degraded = false;
  if (want == Fidelity::kAuto) {
    want = Fidelity::kPacket;
    if (live && queue_depth() > cfg_.degrade_depth) {
      // Deep queue: answer this one at fluid fidelity to shed simulated
      // work, rather than letting every queued deadline burn down.
      want = Fidelity::kFluid;
      degraded = true;
    }
  }

  const std::uint64_t key =
      splitmix64(warm_.warm_hash() ^ fnv1a(job.body) ^
                 static_cast<std::uint64_t>(want == Fidelity::kFluid));
  {
    std::lock_guard<std::mutex> l(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++stats_.cache_hits;
      ++stats_.completed;
      return respond(job.req.id, it->second);
    }
  }

  std::uint64_t beats = 0;
  const auto cancel = [&]() -> bool {
    if (ctx != nullptr) {
      ctx->heartbeat(++beats);
      if (ctx->canceled()) return true;
    }
    return job.deadline.expired();
  };

  std::string body;
  bool cacheable = true;
  bool is_error = false;
  try {
    WhatIfResult res = run_request_impl(warm_, job.req, want, cancel);
    if (!res.finished) {
      // The packet run was cut short (deadline or watchdog). Degrade: a
      // fluid estimate is orders of magnitude cheaper and always finishes.
      degraded = true;
      res = run_request_impl(warm_, job.req, Fidelity::kFluid, {});
    }
    body = ok_body(res, job.req.kind, degraded);
    cacheable = !degraded;  // degraded answers depend on load, never cache
  } catch (const std::exception& e) {
    body = error_body(e.what());  // deterministic validation/spec errors
    is_error = true;
  }

  {
    std::lock_guard<std::mutex> l(mu_);
    ++stats_.completed;
    if (degraded) ++stats_.degraded;
    if (is_error) ++stats_.errors;
    if (cacheable && cache_.find(key) == cache_.end()) {
      if (cache_fifo_.size() >= cfg_.cache_capacity && !cache_fifo_.empty()) {
        cache_.erase(cache_fifo_.front());
        cache_fifo_.pop_front();
      }
      cache_.emplace(key, body);
      cache_fifo_.push_back(key);
    }
  }
  return respond(job.req.id, body);
}

void Engine::submit(const std::string& line,
                    std::function<void(std::string)> done) {
  {
    std::lock_guard<std::mutex> l(mu_);
    ++stats_.submitted;
  }
  Request req;
  try {
    req = parse_request(line);
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> l(mu_);
      ++stats_.errors;
    }
    // Parse failures have no trustworthy id; 0 marks "unattributable".
    done(respond(0, error_body(e.what())));
    return;
  }

  if (req.kind == RequestKind::kStatus) {
    done(respond(req.id, status_body()));
    return;
  }

  Job job;
  job.req = req;
  job.body = canonical_request_body(req);
  const double dl =
      req.deadline_ms > 0 ? req.deadline_ms : cfg_.default_deadline_ms;
  job.deadline = Deadline::after_ms(dl);
  job.done = std::move(done);

  {
    std::unique_lock<std::mutex> l(mu_);
    if (draining_ || stopping_) {
      ++stats_.drained_rejects;
      l.unlock();
      job.done(respond(req.id, simple_body("draining")));
      return;
    }
    if (queue_.size() >= cfg_.queue_limit) {
      ++stats_.shed;
      l.unlock();
      job.done(respond(req.id, simple_body("overloaded", "queue_full")));
      return;
    }
    ++stats_.admitted;
    queue_.push_back(std::move(job));
  }
  // Admission journal: a durable record of what the daemon accepted, in
  // replayable canonical form. Written outside the lock (fsync is slow).
  if (!cfg_.journal_path.empty())
    util::append_line_durable(cfg_.journal_path, canonical_request_line(req));
  cv_.notify_one();
}

std::string Engine::handle_line(const std::string& line) {
  {
    std::lock_guard<std::mutex> l(mu_);
    ++stats_.submitted;
  }
  Request req;
  try {
    req = parse_request(line);
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> l(mu_);
    ++stats_.errors;
    return respond(0, error_body(e.what()));
  }
  if (req.kind == RequestKind::kStatus) return respond(req.id, status_body());
  Job job;
  job.req = req;
  job.body = canonical_request_body(req);
  job.deadline = Deadline::none();
  {
    std::lock_guard<std::mutex> l(mu_);
    ++stats_.admitted;
  }
  return process(job, nullptr);
}

void Engine::begin_drain() {
  std::lock_guard<std::mutex> l(mu_);
  draining_ = true;
}

void Engine::stop() {
  {
    std::lock_guard<std::mutex> l(mu_);
    draining_ = true;
    stopping_ = true;
  }
  cv_.notify_all();
  {
    std::unique_lock<std::mutex> l(mu_);
    idle_cv_.wait(l, [this] { return queue_.empty() && in_flight_ == 0; });
  }
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
}

bool Engine::draining() const {
  std::lock_guard<std::mutex> l(mu_);
  return draining_;
}

std::size_t Engine::queue_depth() const {
  std::lock_guard<std::mutex> l(mu_);
  return queue_.size();
}

EngineStats Engine::stats() const {
  std::lock_guard<std::mutex> l(mu_);
  return stats_;
}

std::string Engine::status_body() const {
  JsonWriter w;
  w.begin_object();
  w.kv("status", "ok");
  w.kv("kind", "status");
  w.kv("topology", warm_.config().topology);
  w.kv("switches", static_cast<std::int64_t>(warm_.graph().num_switches()));
  w.kv("links", static_cast<std::int64_t>(warm_.graph().num_links()));
  w.kv("servers", static_cast<std::int64_t>(warm_.graph().total_servers()));
  w.kv("warm_hash", hex_u64(warm_.warm_hash()));
  w.kv("restored_from_disk", warm_.restored_from_disk());
  w.kv("baseline_p50_ms", warm_.baseline_packet().p50_ms);
  w.kv("baseline_p99_ms", warm_.baseline_packet().p99_ms);
  {
    std::lock_guard<std::mutex> l(mu_);
    w.kv("draining", draining_);
    w.kv("queue_depth", static_cast<std::uint64_t>(queue_.size()));
    w.kv("submitted", stats_.submitted);
    w.kv("admitted", stats_.admitted);
    w.kv("completed", stats_.completed);
    w.kv("errors", stats_.errors);
    w.kv("shed", stats_.shed);
    w.kv("degraded", stats_.degraded);
    w.kv("cache_hits", stats_.cache_hits);
    w.kv("drained_rejects", stats_.drained_rejects);
  }
  w.end_object();
  return w.str();
}

void Engine::worker_loop(int index) {
  util::CellSlot& slot = watchdog_->slot(static_cast<std::size_t>(index));
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> l(mu_);
      cv_.wait(l, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }

    std::string response;
    if (job.deadline.expired()) {
      // The deadline burned down while the request sat in the queue:
      // shedding it unexecuted is what keeps p99 bounded under overload.
      {
        std::lock_guard<std::mutex> l(mu_);
        ++stats_.shed;
      }
      response =
          respond(job.req.id, simple_body("overloaded", "deadline_expired"));
    } else {
      slot.token.reset();
      auto outcome = util::run_cell_attempts(
          slot, cfg_.retry, "request " + std::to_string(job.req.id),
          [&](util::CellContext& ctx) { return process(job, &ctx); });
      response = outcome.status.ok()
                     ? std::move(outcome.value)
                     : respond(job.req.id, error_body(outcome.status.error));
    }
    job.done(response);

    {
      std::lock_guard<std::mutex> l(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace spineless::service
