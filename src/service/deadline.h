// The serving layer's ONLY wall-clock surface. Request deadlines and
// overload accounting are inherently wall-time concepts — a client's
// deadline_ms budget burns while the request waits in the admission queue
// and while its engine runs — but simulation itself must stay
// deterministic. The split: every wall-clock read in src/service funnels
// through this translation unit (allowlisted in tools/lint/lint.toml with
// this rationale); request EXECUTION only ever observes the clock through
// a cooperative CancelToken polled at checkpoint boundaries, so the
// simulated answer bytes never depend on when the clock fired — a
// deadline can only turn a packet answer into a degraded/overloaded
// response, never into a *different* packet answer.
#pragma once

namespace spineless::service {

// Monotonic wall-clock seconds (arbitrary epoch).
double wall_now_s();

struct Deadline {
  // expires_at_s <= 0 means "no deadline".
  double expires_at_s = 0;

  static Deadline none() { return {}; }
  static Deadline after_ms(double ms) {
    if (ms <= 0) return none();
    return {wall_now_s() + ms / 1e3};
  }

  bool active() const { return expires_at_s > 0; }
  bool expired() const { return active() && wall_now_s() >= expires_at_s; }
  // Seconds left; a large constant when no deadline is set.
  double remaining_s() const {
    if (!active()) return 1e18;
    return expires_at_s - wall_now_s();
  }
};

}  // namespace spineless::service
