// Minimal recursive-descent JSON reader for the serving layer. The repo's
// util/json.h is emit-only (every producer streams JsonWriter); spinelessd
// is the first component that must *consume* JSON, so this adds the other
// half: a small DOM with deterministic iteration (object members keep
// insertion order in a vector — no hash maps anywhere near request
// handling) and position-annotated parse errors that flow back to the
// client as `error` responses instead of killing the daemon.
//
// Scope: the JSON the daemon speaks — objects, arrays, strings with the
// standard escapes (\uXXXX folded to UTF-8), doubles, bools, null. No
// comments, no trailing commas, no NaN/Infinity (they are not valid JSON
// and JsonWriter never emits them).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace spineless::service {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  // Typed accessors throw spineless::Error on a kind mismatch, so request
  // parsing reads fields without pre-checking every one.
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;  // throws when not integral
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::vector<std::pair<std::string, JsonValue>>& as_object() const;

  // Object member lookup (first match, linear — daemon objects are tiny).
  // Returns nullptr when absent or when this value is not an object.
  const JsonValue* find(const std::string& key) const;

  // Builders (used by tests and the canonicalizer).
  static JsonValue null();
  static JsonValue boolean(bool b);
  static JsonValue number(double v);
  static JsonValue string(std::string s);
  static JsonValue array(std::vector<JsonValue> items);
  static JsonValue object(std::vector<std::pair<std::string, JsonValue>> kv);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

// Parses exactly one JSON value; trailing non-whitespace is an error.
// Throws spineless::Error with a byte offset on malformed input.
JsonValue parse_json(const std::string& text);

}  // namespace spineless::service
