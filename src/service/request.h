// Request/response schema for spinelessd.
//
// Wire format: newline-delimited JSON objects over a local socket (or a
// trace file in replay mode). Every request carries a client-chosen
// integer `id` echoed in the response, so a client may pipeline.
//
//   {"id":1,"kind":"whatif_fault","spec":"flap link=3 down=2ms up=4ms"}
//   {"id":2,"kind":"whatif_tm","tm":"skewed","load_scale":1.5}
//   {"id":3,"kind":"affected","link":7,"down":true}
//   {"id":4,"kind":"status"}
//
// Optional fields: "fidelity" ("auto" | "packet" | "fluid", default auto),
// "deadline_ms" (0 = none), "seed_salt" (mixed into workload perturbation
// seeds, default 0).
//
// Responses: {"id":N,"status":"ok",...} | "error" | "overloaded" |
// "draining"; every ok answer names the "fidelity" it was computed at.
// Deterministic by construction — no wall-clock field ever appears in a
// response body (timing lives in the `status` request and bench output),
// which is what makes the kill-9/replay byte-identity contract testable.
#pragma once

#include <cstdint>
#include <string>

#include "util/units.h"

namespace spineless::service {

enum class RequestKind { kWhatIfFault, kWhatIfTm, kAffected, kStatus };

enum class Fidelity { kAuto, kPacket, kFluid };

const char* fidelity_name(Fidelity f);

struct Request {
  std::int64_t id = 0;
  RequestKind kind = RequestKind::kStatus;

  std::string fault_spec;  // kWhatIfFault: FaultPlan grammar
  std::string tm;          // kWhatIfTm: uniform | skewed | permutation
  double load_scale = 1.0;  // kWhatIfTm: offered-load multiplier

  std::int64_t link = -1;  // kAffected
  bool down = true;        // kAffected: fail (true) or restore (false)

  Fidelity fidelity = Fidelity::kAuto;
  double deadline_ms = 0;  // 0 = no deadline
  std::uint64_t seed_salt = 0;
};

// Parses one request line. Throws spineless::Error (json position errors,
// unknown kinds, missing/ill-typed fields) — the engine turns the throw
// into an `error` response rather than dying.
Request parse_request(const std::string& line);

// Deterministic re-serialization of everything that affects the ANSWER —
// excludes id and deadline_ms (they affect routing/scheduling of the
// request, never its payload). This string is the result-cache key
// material and the journal/trace record body.
std::string canonical_request_body(const Request& req);

// Full trace line: canonical body plus the id, replayable by --replay.
std::string canonical_request_line(const Request& req);

}  // namespace spineless::service
