// The spinelessd request engine: a bounded admission queue in front of a
// self-healing worker pool (util/resilient), with the robustness ladder the
// service is built around:
//
//   - backpressure: a full queue rejects immediately with `overloaded`
//     instead of building an unbounded backlog;
//   - deadlines: a request whose deadline expires while queued is shed
//     without running; one that expires mid-run is cooperatively canceled
//     at a quiescent segment boundary;
//   - graceful degradation: `auto`-fidelity requests downgrade from packet
//     to fluid answers when the queue is deep or a packet run was
//     canceled — an approximate answer with a `fidelity`/`degraded` tag
//     beats no answer;
//   - self-healing: each worker attempt runs under run_cell_attempts with
//     a shared Watchdog, so a wedged or throwing request is classified and
//     answered (`error`) instead of taking the daemon down;
//   - caching: deterministic answers are memoized by
//     (warm_hash, canonical_request_body), so repeated what-ifs are served
//     from memory. Cached and recomputed bodies are byte-identical by the
//     determinism contract, so no `cached` marker appears in responses.
//
// Response bodies never contain wall-clock values; timing lives in the
// `status` request (excluded from the byte-identity contract) and bench
// output.
#pragma once

#include <cstdint>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/deadline.h"
#include "service/request.h"
#include "service/warm_state.h"
#include "util/resilient.h"

namespace spineless::service {

struct EngineConfig {
  int workers = 2;
  std::size_t queue_limit = 16;   // queued (not in-flight) requests
  std::size_t degrade_depth = 8;  // auto fidelity -> fluid beyond this depth
  std::size_t cache_capacity = 256;  // FIFO-evicted result cache entries
  double default_deadline_ms = 0;    // applied when a request carries none
  util::RetryPolicy retry;  // per-attempt watchdog/retry for workers
  std::string journal_path;  // "" = no admission journal
};

struct EngineStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;     // error responses (parse or execution)
  std::uint64_t shed = 0;       // overloaded responses (queue or deadline)
  std::uint64_t degraded = 0;   // packet -> fluid downgrades
  std::uint64_t cache_hits = 0;
  std::uint64_t drained_rejects = 0;  // refused with `draining`
};

class Engine {
 public:
  Engine(const WarmState& warm, const EngineConfig& cfg);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Asynchronous path (the daemon): parses and admits `line`; `done` is
  // invoked exactly once with the full response line — inline for
  // rejections (parse error, overload, draining), from a worker thread
  // otherwise. `done` must be thread-safe.
  void submit(const std::string& line, std::function<void(std::string)> done);

  // Synchronous path (replay mode and tests): parse + execute inline on
  // the calling thread. No admission control, no deadline, `auto` resolves
  // to packet — a trace replayed through this path is fully deterministic.
  std::string handle_line(const std::string& line);

  // Graceful drain: new submits are refused with `draining`; queued and
  // in-flight requests still complete. stop() waits for the queue to empty
  // and joins the workers (idempotent; the destructor calls it).
  void begin_drain();
  void stop();

  bool draining() const;
  std::size_t queue_depth() const;
  EngineStats stats() const;
  const WarmState& warm() const noexcept { return warm_; }

  // The `status` response body (no "id" key; the caller prefixes it).
  std::string status_body() const;

 private:
  struct Job {
    Request req;
    std::string body;  // canonical_request_body (cache key + journal)
    Deadline deadline;
    std::function<void(std::string)> done;
  };

  // Executes one parsed request at `fidelity` and returns the response
  // body (everything after `"id":N,`). Deterministic for a fixed resolved
  // fidelity. Sets *canceled when a packet run was cut short.
  std::string execute(const Request& req, Fidelity fidelity,
                      const std::function<bool()>& cancel,
                      bool* canceled) const;

  std::string respond(std::int64_t id, const std::string& body) const;
  std::string process(Job& job, util::CellContext* ctx);
  void worker_loop(int index);

  const WarmState& warm_;
  EngineConfig cfg_;
  std::unique_ptr<util::Watchdog> watchdog_;

  mutable std::mutex mu_;
  std::condition_variable cv_;       // workers wait for jobs
  std::condition_variable idle_cv_;  // stop() waits for quiescence
  std::deque<Job> queue_;
  int in_flight_ = 0;
  bool draining_ = false;
  bool stopping_ = false;
  EngineStats stats_;
  std::map<std::uint64_t, std::string> cache_;
  std::deque<std::uint64_t> cache_fifo_;

  std::vector<std::thread> workers_;
};

}  // namespace spineless::service
