#include "service/deadline.h"

#include <chrono>

namespace spineless::service {

double wall_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace spineless::service
