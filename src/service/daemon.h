// spinelessd's socket front end: a Unix-domain SOCK_STREAM listener with a
// thread per connection, newline-delimited JSON requests in, responses out
// (matched by the echoed `id`; workers may answer out of order).
//
// Shutdown contract (the SIGTERM drain test pins this): request_shutdown()
// is async-signal-safe (one atomic store). serve() then stops accepting,
// puts the engine into drain (new requests are answered `draining`),
// finishes every queued and in-flight request, closes connections, removes
// the socket file, and returns 0. A kill -9 instead of SIGTERM loses
// nothing durable: the warm snapshot and admission journal are already on
// disk, and a restarted daemon rebuilds byte-identical answers from them.
#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/engine.h"

namespace spineless::service {

class Daemon {
 public:
  Daemon(Engine& engine, std::string socket_path);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  // Binds and listens (replacing a stale socket file). False on failure.
  bool listen_on_socket();

  // Blocking accept loop; returns the process exit code (0 after a clean
  // drain). Call listen_on_socket() first.
  int serve();

  // Async-signal-safe shutdown request (SIGTERM/SIGINT handler body).
  void request_shutdown() noexcept { shutdown_.store(true); }

 private:
  void connection_loop(int fd);

  Engine& engine_;
  std::string socket_path_;
  int listen_fd_ = -1;
  std::atomic<bool> shutdown_{false};

  std::mutex mu_;
  std::vector<std::thread> connections_;
  std::vector<int> open_fds_;
};

// Built-in lockstep client (spinelessd --connect): sends each stdin line
// to the daemon, prints the matching response line to stdout, exits 0 on
// EOF. Keeps the check.sh smoke test free of nc/python dependencies.
int run_client(const std::string& socket_path);

}  // namespace spineless::service
