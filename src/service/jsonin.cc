#include "service/jsonin.h"

#include <cmath>
#include <cstdlib>

#include "util/error.h"

namespace spineless::service {

namespace {

[[noreturn]] void fail_at(std::size_t pos, const std::string& what) {
  throw Error("json: " + what + " at byte " + std::to_string(pos));
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail_at(pos_, "trailing characters");
    return v;
  }

 private:
  JsonValue parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) fail_at(pos_, "unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::string(parse_string());
      case 't': expect_word("true"); return JsonValue::boolean(true);
      case 'f': expect_word("false"); return JsonValue::boolean(false);
      case 'n': expect_word("null"); return JsonValue::null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::object(std::move(members));
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail_at(pos_, "expected object key");
      std::string key = parse_string();
      skip_ws();
      if (peek() != ':') fail_at(pos_, "expected ':' after key");
      ++pos_;
      members.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return JsonValue::object(std::move(members));
      }
      fail_at(pos_, "expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::array(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return JsonValue::array(std::move(items));
      }
      fail_at(pos_, "expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20)
        fail_at(pos_, "raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode(out); break;
        default: fail_at(pos_ - 1, "unknown escape");
      }
    }
    fail_at(pos_, "unterminated string");
  }

  void append_unicode(std::string& out) {
    std::uint32_t cp = parse_hex4();
    // Surrogate pair: fold \uD800-\uDBFF + \uDC00-\uDFFF into one code
    // point; an unpaired surrogate is malformed.
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u')
        fail_at(pos_, "unpaired surrogate");
      pos_ += 2;
      const std::uint32_t lo = parse_hex4();
      if (lo < 0xDC00 || lo > 0xDFFF) fail_at(pos_, "invalid low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail_at(pos_, "unpaired surrogate");
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail_at(pos_, "truncated \\u escape");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint32_t>(c - 'A' + 10);
      else fail_at(pos_ - 1, "bad hex digit in \\u escape");
    }
    return v;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || !is_digit(text_[pos_]))
      fail_at(start, "malformed number");
    if (text_[pos_] == '0') {
      ++pos_;  // no leading zeros
    } else {
      while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !is_digit(text_[pos_]))
        fail_at(pos_, "malformed fraction");
      while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (pos_ >= text_.size() || !is_digit(text_[pos_]))
        fail_at(pos_, "malformed exponent");
      while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    }
    const std::string tok = text_.substr(start, pos_ - start);
    return JsonValue::number(std::strtod(tok.c_str(), nullptr));
  }

  void expect_word(const char* word) {
    const std::size_t start = pos_;
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p)
        fail_at(start, std::string("expected '") + word + "'");
      ++pos_;
    }
  }

  static bool is_digit(char c) noexcept { return c >= '0' && c <= '9'; }

  char peek() const {
    if (pos_ >= text_.size()) fail_at(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void kind_error(const char* want) {
  throw Error(std::string("json: value is not ") + want);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) kind_error("a number");
  return num_;
}

std::int64_t JsonValue::as_int() const {
  const double v = as_number();
  const auto i = static_cast<std::int64_t>(v);
  if (static_cast<double>(i) != v) kind_error("an integer");
  return i;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) kind_error("a string");
  return str_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) kind_error("an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::as_object()
    const {
  if (kind_ != Kind::kObject) kind_error("an object");
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

JsonValue JsonValue::null() { return JsonValue(); }

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = n;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::object(
    std::vector<std::pair<std::string, JsonValue>> kv) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.members_ = std::move(kv);
  return v;
}

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace spineless::service
