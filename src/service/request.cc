#include "service/request.h"

#include "service/jsonin.h"
#include "util/error.h"
#include "util/json.h"

namespace spineless::service {

namespace {

RequestKind parse_kind(const std::string& s) {
  if (s == "whatif_fault") return RequestKind::kWhatIfFault;
  if (s == "whatif_tm") return RequestKind::kWhatIfTm;
  if (s == "affected") return RequestKind::kAffected;
  if (s == "status") return RequestKind::kStatus;
  throw Error("request: unknown kind '" + s +
              "' (expected whatif_fault | whatif_tm | affected | status)");
}

const char* kind_name(RequestKind k) {
  switch (k) {
    case RequestKind::kWhatIfFault: return "whatif_fault";
    case RequestKind::kWhatIfTm: return "whatif_tm";
    case RequestKind::kAffected: return "affected";
    case RequestKind::kStatus: return "status";
  }
  return "status";
}

Fidelity parse_fidelity(const std::string& s) {
  if (s == "auto") return Fidelity::kAuto;
  if (s == "packet") return Fidelity::kPacket;
  if (s == "fluid") return Fidelity::kFluid;
  throw Error("request: unknown fidelity '" + s +
              "' (expected auto | packet | fluid)");
}

}  // namespace

const char* fidelity_name(Fidelity f) {
  switch (f) {
    case Fidelity::kAuto: return "auto";
    case Fidelity::kPacket: return "packet";
    case Fidelity::kFluid: return "fluid";
  }
  return "auto";
}

Request parse_request(const std::string& line) {
  const JsonValue doc = parse_json(line);
  if (!doc.is_object()) throw Error("request: expected a JSON object");
  Request req;
  const JsonValue* id = doc.find("id");
  if (id == nullptr) throw Error("request: missing id");
  req.id = id->as_int();
  const JsonValue* kind = doc.find("kind");
  if (kind == nullptr) throw Error("request: missing kind");
  req.kind = parse_kind(kind->as_string());

  switch (req.kind) {
    case RequestKind::kWhatIfFault: {
      const JsonValue* spec = doc.find("spec");
      if (spec == nullptr)
        throw Error("request: whatif_fault needs a spec (FaultPlan grammar)");
      req.fault_spec = spec->as_string();
      break;
    }
    case RequestKind::kWhatIfTm: {
      const JsonValue* tm = doc.find("tm");
      if (tm == nullptr)
        throw Error(
            "request: whatif_tm needs tm = uniform | skewed | permutation");
      req.tm = tm->as_string();
      if (req.tm != "uniform" && req.tm != "skewed" && req.tm != "permutation")
        throw Error("request: unknown tm '" + req.tm +
                    "' (expected uniform | skewed | permutation)");
      if (const JsonValue* ls = doc.find("load_scale")) {
        req.load_scale = ls->as_number();
        if (!(req.load_scale > 0) || req.load_scale > 8.0)
          throw Error("request: load_scale out of (0, 8]");
      }
      break;
    }
    case RequestKind::kAffected: {
      const JsonValue* link = doc.find("link");
      if (link == nullptr) throw Error("request: affected needs a link id");
      req.link = link->as_int();
      if (const JsonValue* down = doc.find("down")) req.down = down->as_bool();
      break;
    }
    case RequestKind::kStatus:
      break;
  }

  if (const JsonValue* f = doc.find("fidelity"))
    req.fidelity = parse_fidelity(f->as_string());
  if (const JsonValue* d = doc.find("deadline_ms")) {
    req.deadline_ms = d->as_number();
    if (req.deadline_ms < 0) throw Error("request: negative deadline_ms");
  }
  if (const JsonValue* s = doc.find("seed_salt"))
    req.seed_salt = static_cast<std::uint64_t>(s->as_int());
  return req;
}

std::string canonical_request_body(const Request& req) {
  // Fixed key order, every answer-affecting field always present: two
  // requests ask the same question iff their bodies are byte-equal.
  JsonWriter w;
  w.begin_object();
  w.kv("kind", kind_name(req.kind));
  switch (req.kind) {
    case RequestKind::kWhatIfFault:
      w.kv("spec", req.fault_spec);
      break;
    case RequestKind::kWhatIfTm:
      w.kv("tm", req.tm);
      w.kv("load_scale", req.load_scale);
      break;
    case RequestKind::kAffected:
      w.kv("link", req.link);
      w.kv("down", req.down);
      break;
    case RequestKind::kStatus:
      break;
  }
  w.kv("fidelity", fidelity_name(req.fidelity));
  w.kv("seed_salt", req.seed_salt);
  w.end_object();
  return w.str();
}

std::string canonical_request_line(const Request& req) {
  JsonWriter w;
  w.begin_object();
  w.kv("id", req.id);
  w.kv("kind", kind_name(req.kind));
  switch (req.kind) {
    case RequestKind::kWhatIfFault:
      w.kv("spec", req.fault_spec);
      break;
    case RequestKind::kWhatIfTm:
      w.kv("tm", req.tm);
      w.kv("load_scale", req.load_scale);
      break;
    case RequestKind::kAffected:
      w.kv("link", req.link);
      w.kv("down", req.down);
      break;
    case RequestKind::kStatus:
      break;
  }
  w.kv("fidelity", fidelity_name(req.fidelity));
  w.kv("seed_salt", req.seed_salt);
  if (req.deadline_ms > 0) w.kv("deadline_ms", req.deadline_ms);
  w.end_object();
  return w.str();
}

}  // namespace spineless::service
