#include "service/warm_state.h"

#include <algorithm>
#include <utility>

#include "core/throughput_experiment.h"
#include "fault/degradation.h"
#include "fault/fault_plan.h"
#include "flowsim/flow_level_sim.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/snapshot.h"
#include "sim/tcp.h"
#include "util/error.h"
#include "util/fsio.h"
#include "util/rng.h"
#include "workload/tm.h"

namespace spineless::service {
namespace {

// Goodput sampling cadence for the degradation monitor (same cadence the
// failure bench uses; ~32 samples over the default 8 ms horizon).
constexpr Time kMonInterval = 250 * units::kMicrosecond;

// Baseline-scalars snapshot section ('SRVB') and its format version.
constexpr std::uint32_t kBaselineTag = 0x53525642;
constexpr std::uint32_t kBaselineVersion = 1;

constexpr const char* kWarmFile = "/service_warm.snap";
constexpr const char* kBaselineFile = "/service_baseline.snap";

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) h = (h ^ c) * 0x100000001b3ULL;
  return h;
}

// The packet-level experiment every request (and the warm build)
// reconstructs. Member declaration order IS the protocol: it fixes the
// simulator oid sequence and the CheckpointSession part order, so a
// request-side reconstruction restores the warm build's bytes verbatim.
// Changing this order is a snapshot format change.
struct PacketExperiment {
  sim::Network net;
  sim::FlowDriver driver;
  fault::FaultPlan plan;  // must outlive inj (held by reference)
  fault::DegradationMonitor mon;
  fault::FaultInjector inj;
  sim::CheckpointSession session;

  PacketExperiment(const topo::Graph& g, const ServiceConfig& cfg,
                   fault::FaultPlan p, std::uint64_t config_hash)
      : net(g, cfg.net),
        driver(net, cfg.tcp),
        plan(std::move(p)),
        mon(net, kMonInterval),
        inj(net, plan, cfg.fault),
        session(net, config_hash) {
    session.add(&driver);
    session.add(&mon);
    session.add(&inj);
  }

  void add_flows(sim::Simulator& sim,
                 const std::vector<workload::FlowSpec>& flows) {
    for (const auto& f : flows)
      driver.add_flow(sim, f.src, f.dst, f.bytes, f.start);
  }
};

// Advances to `deadline` in segments, polling the cooperative cancel hook
// at quiescent boundaries. Segmentation never changes results (identical
// event sequence as one run_until call); returns false when canceled.
bool run_segmented(sim::Simulator& sim, Time deadline,
                   const std::function<bool()>& cancel) {
  if (!cancel) {
    sim.run_until(deadline);
    return true;
  }
  const Time step = std::max<Time>(1, (deadline - sim.now()) / 32);
  Time t = sim.now();
  while (t < deadline) {
    t = std::min<Time>(deadline, t + step);
    sim.run_until(t);
    if (t < deadline && cancel()) return false;
  }
  return true;
}

fault::FaultPlan parse_plan(const std::string& spec, const topo::Graph& g,
                            std::uint64_t seed) {
  // An empty spec is the identity what-if: it must reproduce the baseline
  // byte-for-byte (the core warm-restore validation).
  if (spec.find_first_not_of(" \t;") == std::string::npos)
    return fault::FaultPlan::from_actions({}, seed);
  return fault::FaultPlan::parse(spec, g, seed);
}

}  // namespace

namespace {
topo::Graph make_graph(const ServiceConfig& cfg) {
  if (cfg.topology == "dring") return std::move(cfg.scenario.dring().graph);
  if (cfg.topology == "rrg") return cfg.scenario.rrg();
  if (cfg.topology == "leafspine") return cfg.scenario.leaf_spine();
  throw Error("service: unknown topology '" + cfg.topology +
              "' (expected dring | rrg | leafspine)");
}
}  // namespace

std::unique_ptr<WarmState> WarmState::build(const ServiceConfig& cfg) {
  std::unique_ptr<WarmState> ws(new WarmState(make_graph(cfg)));
  ws->cfg_ = cfg;

  // The service always runs the serial engine: request horizons are short,
  // many requests run concurrently across the worker pool, and serial vs.
  // sharded answers are byte-identical anyway.
  ws->cfg_.net.intra_jobs = 1;
  if (ws->cfg_.flowgen.offered_load_bps <= 0) {
    ws->cfg_.flowgen.offered_load_bps = workload::spine_offered_load_bps(
        cfg.scenario.x, cfg.scenario.y,
        static_cast<double>(ws->cfg_.net.link_rate_bps), cfg.utilization);
  }
  if (ws->cfg_.warm_time <= 0 || ws->cfg_.warm_time >= ws->cfg_.horizon)
    throw Error("service: warm_time must lie in (0, horizon)");

  ws->ecmp_ = routing::EcmpTable::compute(ws->graph_);
  ws->vrf_ = std::make_unique<routing::VrfTable>(
      routing::VrfTable::compute(ws->graph_, ws->cfg_.net.su_k));

  // Everything that determines the warm checkpoint's reconstruction. A
  // persisted snapshot whose hash differs is silently rebuilt.
  core::FctConfig fct;
  fct.net = ws->cfg_.net;
  fct.tcp = ws->cfg_.tcp;
  fct.flowgen = ws->cfg_.flowgen;
  fct.seed = ws->cfg_.scenario.seed;
  sim::HashChain h;
  h.mix(core::fct_config_hash(ws->graph_, fct))
      .mix(fnv1a(ws->cfg_.topology))
      .mix(static_cast<std::uint64_t>(ws->cfg_.warm_time))
      .mix(static_cast<std::uint64_t>(ws->cfg_.horizon))
      .mix(static_cast<std::uint64_t>(ws->cfg_.fault.hello_interval))
      .mix(static_cast<std::uint64_t>(ws->cfg_.fault.hold_count))
      .mix(static_cast<std::uint64_t>(ws->cfg_.fault.repair_delay));
  ws->warm_hash_ = h.value();

  ws->baseline_flows_ =
      ws->make_flows(ws->make_tm("uniform", ws->workload_seed(0)),
                     ws->workload_seed(0), /*load_scale=*/1.0);

  if (!ws->try_restore_persisted()) {
    ws->build_fresh();
    ws->persist();
  }
  return ws;
}

std::uint64_t WarmState::workload_seed(std::uint64_t salt) const {
  // salt == 0 is the baseline workload itself.
  return salt == 0 ? cfg_.scenario.seed : splitmix64(cfg_.scenario.seed ^ salt);
}

workload::RackTm WarmState::make_tm(const std::string& kind,
                                    std::uint64_t seed) const {
  if (kind == "uniform") return workload::RackTm::uniform(graph_);
  if (kind == "skewed") return workload::RackTm::fb_like_skewed(graph_, seed);
  if (kind == "permutation") return workload::RackTm::permutation(graph_, seed);
  throw Error("service: unknown tm '" + kind +
              "' (expected uniform | skewed | permutation)");
}

std::vector<workload::FlowSpec> WarmState::make_flows(
    const workload::RackTm& tm, std::uint64_t seed, double load_scale) const {
  Rng rng(seed);
  workload::TmSampler sampler(graph_, tm);
  workload::FlowGenConfig fg = cfg_.flowgen;
  fg.offered_load_bps *= load_scale;
  return workload::generate_flows(sampler, fg, rng);
}

void WarmState::build_fresh() {
  PacketExperiment exp(graph_, cfg_,
                       fault::FaultPlan::from_actions({}, cfg_.scenario.seed),
                       warm_hash_);
  sim::Simulator sim;
  exp.add_flows(sim, baseline_flows_);
  exp.inj.arm(sim, cfg_.horizon);
  exp.mon.start(sim, 0, cfg_.horizon);

  sim.run_until(cfg_.warm_time);
  warm_bytes_ = exp.session.save_bytes(sim);

  // Continue the SAME engine to the horizon: the baseline is exactly what
  // an empty-plan what-if computes after restoring the warm bytes, which
  // makes "empty what-if == baseline" a byte-level identity, not an
  // approximation.
  sim.run_until(cfg_.horizon);
  const Summary fct = exp.driver.fct_ms();
  baseline_packet_.p50_ms = fct.median();
  baseline_packet_.p99_ms = fct.p99();
  baseline_packet_.flows = exp.driver.num_flows();
  baseline_packet_.completed = exp.driver.completed_flows();
  baseline_packet_.goodput_bps =
      exp.mon.mean_goodput_bps(cfg_.warm_time, cfg_.horizon);

  const WhatIfResult f = run_fluid(baseline_flows_, ecmp_, workload_seed(0));
  baseline_fluid_.p50_ms = f.p50_ms;
  baseline_fluid_.p99_ms = f.p99_ms;
  baseline_fluid_.flows = f.flows;
  baseline_fluid_.completed = f.completed;
}

bool WarmState::try_restore_persisted() {
  if (cfg_.snapshot_dir.empty()) return false;
  try {
    std::string warm, base;
    if (!sim::SnapshotReader::load_file(cfg_.snapshot_dir + kWarmFile, &warm))
      return false;
    if (!sim::SnapshotReader::load_file(cfg_.snapshot_dir + kBaselineFile,
                                        &base))
      return false;
    {
      sim::SnapshotReader wr(warm);
      if (wr.config_hash() != warm_hash_) return false;
    }
    sim::SnapshotReader br(std::move(base));
    if (br.config_hash() != warm_hash_) return false;
    br.expect_section(kBaselineTag);
    if (br.u32() != kBaselineVersion) return false;
    for (BaselineResult* b : {&baseline_packet_, &baseline_fluid_}) {
      b->p50_ms = br.f64();
      b->p99_ms = br.f64();
      b->flows = br.u64();
      b->completed = br.u64();
      b->goodput_bps = br.f64();
    }
    br.end_section();
    warm_bytes_ = std::move(warm);
  } catch (const std::exception&) {
    return false;  // corrupt / stale snapshot: rebuild from scratch
  }
  restored_ = true;
  return true;
}

void WarmState::persist() const {
  if (cfg_.snapshot_dir.empty()) return;
  SPINELESS_CHECK_MSG(util::ensure_dir(cfg_.snapshot_dir),
                      "service: cannot create snapshot_dir "
                          << cfg_.snapshot_dir);
  // The warm checkpoint bytes already ARE a sealed snapshot (magic, config
  // hash, checksum) — write them verbatim.
  SPINELESS_CHECK_MSG(
      util::atomic_write_file(cfg_.snapshot_dir + kWarmFile, warm_bytes_),
      "service: cannot persist warm snapshot to " << cfg_.snapshot_dir);
  sim::SnapshotWriter w(warm_hash_);
  w.begin_section(kBaselineTag);
  w.u32(kBaselineVersion);
  for (const BaselineResult* b : {&baseline_packet_, &baseline_fluid_}) {
    w.f64(b->p50_ms);
    w.f64(b->p99_ms);
    w.u64(b->flows);
    w.u64(b->completed);
    w.f64(b->goodput_bps);
  }
  w.end_section();
  SPINELESS_CHECK_MSG(w.write_file(cfg_.snapshot_dir + kBaselineFile),
                      "service: cannot persist baseline scalars to "
                          << cfg_.snapshot_dir);
}

WhatIfResult WarmState::whatif_fault_packet(
    const std::string& spec, std::uint64_t seed_salt,
    const std::function<bool()>& cancel) const {
  WhatIfResult r;
  r.fidelity = Fidelity::kPacket;

  PacketExperiment exp(
      graph_, cfg_,
      parse_plan(spec, graph_, splitmix64(cfg_.scenario.seed ^ seed_salt)),
      warm_hash_);
  sim::Simulator sim;
  // Flows must be added before restore: the TcpSource objects (and their
  // oids) are part of the reconstructed experiment the bytes load into.
  exp.add_flows(sim, baseline_flows_);
  exp.session.restore_bytes(warm_bytes_, sim);
  // Only the plan's actions: the BFD hello/hold machinery and the
  // monitor's sampling events are already in the restored event arrays.
  exp.inj.arm_actions(sim);

  r.finished = run_segmented(sim, cfg_.horizon, cancel);

  const Summary fct = exp.driver.fct_ms();
  r.p50_ms = fct.median();
  r.p99_ms = fct.p99();
  r.flows = exp.driver.num_flows();
  r.completed = exp.driver.completed_flows();
  r.delta_p50_ms = r.p50_ms - baseline_packet_.p50_ms;
  r.delta_p99_ms = r.p99_ms - baseline_packet_.p99_ms;

  const fault::FaultInjector::Report rep = exp.inj.report(cfg_.horizon);
  r.blackhole_s = rep.blackhole_seconds;
  r.outages = rep.outages.size();
  for (const auto& o : rep.outages) {
    if (o.t_down < 0 || o.t_detected < 0) continue;
    const double d = static_cast<double>(o.t_detected - o.t_down) /
                     static_cast<double>(units::kMillisecond);
    if (r.detect_ms < 0 || d < r.detect_ms) r.detect_ms = d;
  }
  const double goodput = exp.mon.mean_goodput_bps(cfg_.warm_time, cfg_.horizon);
  r.goodput_recovery = baseline_packet_.goodput_bps > 0
                           ? goodput / baseline_packet_.goodput_bps
                           : 0;
  return r;
}

WhatIfResult WarmState::whatif_fault_fluid(const std::string& spec,
                                           std::uint64_t seed_salt) const {
  const fault::FaultPlan plan =
      parse_plan(spec, graph_, splitmix64(cfg_.scenario.seed ^ seed_salt));

  // The fluid model has no transient fault machinery; it answers the
  // steady-state question: which links are still down at the end of the
  // plan, and what do FCTs look like routed around them.
  std::vector<char> is_down(graph_.num_links(), 0);
  for (const auto& a : plan.actions()) {
    if (a.kind == fault::FaultAction::Kind::kLinkDown) is_down[a.link] = 1;
    if (a.kind == fault::FaultAction::Kind::kLinkUp) is_down[a.link] = 0;
  }

  routing::EcmpTable table = ecmp_;
  routing::LinkSet dead;
  for (topo::LinkId l = 0; l < graph_.num_links(); ++l)
    if (is_down[l]) table.splice_link_change(graph_, dead, l, /*now_dead=*/true);

  WhatIfResult r =
      run_fluid(baseline_flows_, table, workload_seed(seed_salt));
  r.delta_p50_ms = r.p50_ms - baseline_fluid_.p50_ms;
  r.delta_p99_ms = r.p99_ms - baseline_fluid_.p99_ms;
  return r;
}

WhatIfResult WarmState::run_fluid(const std::vector<workload::FlowSpec>& flows,
                                  const routing::EcmpTable& table,
                                  std::uint64_t seed) const {
  WhatIfResult r;
  r.fidelity = Fidelity::kFluid;
  flowsim::FlowLevelSimulator fluid(
      graph_, static_cast<double>(cfg_.net.link_rate_bps));
  Rng rng(splitmix64(seed ^ 0xf1d0f1d0f1d0f1d0ULL));
  std::size_t added = 0;
  for (const auto& f : flows) {
    const topo::NodeId src = graph_.tor_of_host(f.src);
    const topo::NodeId dst = graph_.tor_of_host(f.dst);
    routing::Path path{src};
    if (src != dst) {
      if (table.distance(src, dst) < 0) {
        ++r.stalled;  // no surviving path: the flow never completes
        continue;
      }
      topo::NodeId node = src;
      while (node != dst) {
        const auto hops = table.next_hops(node, dst);
        SPINELESS_CHECK(!hops.empty());
        node = hops[rng.uniform(hops.size())].neighbor;
        path.push_back(node);
      }
    }
    fluid.add_flow(f.src, f.dst, f.bytes, f.start, path);
    ++added;
  }
  r.completed = fluid.run(cfg_.horizon);
  const Summary fct = fluid.fct_ms();
  r.p50_ms = fct.median();
  r.p99_ms = fct.p99();
  r.flows = flows.size();
  (void)added;
  return r;
}

WhatIfResult WarmState::whatif_tm(const std::string& tm, double load_scale,
                                  std::uint64_t seed_salt, Fidelity fidelity,
                                  const std::function<bool()>& cancel) const {
  const std::uint64_t seed = workload_seed(seed_salt);
  const auto flows = make_flows(make_tm(tm, seed), seed, load_scale);

  if (fidelity == Fidelity::kFluid) {
    WhatIfResult r = run_fluid(flows, ecmp_, seed);
    r.delta_p50_ms = r.p50_ms - baseline_fluid_.p50_ms;
    r.delta_p99_ms = r.p99_ms - baseline_fluid_.p99_ms;
    return r;
  }

  // Packet fidelity: a TM change invalidates the warm checkpoint (the
  // flows ARE checkpointed state), so this runs the full horizon from t=0
  // through the same experiment machinery the baseline used — whatif_tm
  // {uniform, 1.0, salt 0} reproduces the baseline exactly.
  WhatIfResult r;
  r.fidelity = Fidelity::kPacket;
  PacketExperiment exp(graph_, cfg_,
                       fault::FaultPlan::from_actions({}, cfg_.scenario.seed),
                       warm_hash_);
  sim::Simulator sim;
  exp.add_flows(sim, flows);
  exp.inj.arm(sim, cfg_.horizon);
  exp.mon.start(sim, 0, cfg_.horizon);
  r.finished = run_segmented(sim, cfg_.horizon, cancel);

  const Summary fct = exp.driver.fct_ms();
  r.p50_ms = fct.median();
  r.p99_ms = fct.p99();
  r.flows = exp.driver.num_flows();
  r.completed = exp.driver.completed_flows();
  r.delta_p50_ms = r.p50_ms - baseline_packet_.p50_ms;
  r.delta_p99_ms = r.p99_ms - baseline_packet_.p99_ms;
  const double goodput = exp.mon.mean_goodput_bps(cfg_.warm_time, cfg_.horizon);
  r.goodput_recovery = baseline_packet_.goodput_bps > 0
                           ? goodput / baseline_packet_.goodput_bps
                           : 0;
  return r;
}

WhatIfResult WarmState::affected(std::int64_t link, bool down) const {
  if (link < 0 || link >= static_cast<std::int64_t>(graph_.num_links()))
    throw Error("service: affected link id out of range [0, " +
                std::to_string(graph_.num_links()) + ")");
  const auto l = static_cast<topo::LinkId>(link);

  WhatIfResult r;
  r.fidelity = Fidelity::kPacket;  // answered from the packet tables
  std::vector<topo::NodeId> dsts;
  routing::LinkSet dead;
  if (cfg_.net.mode == sim::RoutingMode::kEcmp) {
    routing::EcmpTable t = ecmp_;
    dsts = t.splice_link_change(graph_, dead, l, down);
  } else {
    routing::VrfTable t = *vrf_;
    dsts = t.splice_link_change(graph_, dead, l, down);
  }
  std::sort(dsts.begin(), dsts.end());
  r.affected_destinations = dsts.size();
  const std::size_t n = std::min<std::size_t>(dsts.size(), 32);
  r.affected_sample.assign(dsts.begin(), dsts.begin() + n);

  // Physical-reachability delta, from BFS distances (mode-independent).
  routing::EcmpTable after = ecmp_;
  routing::LinkSet dead2;
  after.splice_link_change(graph_, dead2, l, down);
  std::int64_t before_unreach = 0, after_unreach = 0;
  for (topo::NodeId s = 0; s < graph_.num_switches(); ++s) {
    for (topo::NodeId d = 0; d < graph_.num_switches(); ++d) {
      if (s == d) continue;
      if (ecmp_.distance(s, d) < 0) ++before_unreach;
      if (after.distance(s, d) < 0) ++after_unreach;
    }
  }
  r.unreachable_pairs_delta = after_unreach - before_unreach;
  return r;
}

}  // namespace spineless::service
