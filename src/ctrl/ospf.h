// Link-state (OSPF-style) control plane — the other standard protocol the
// paper names for these networks ("running shortest-path routing (BGP or
// OSPF) with equal cost multipath", §2). Complements ctrl/bgp.h: plain
// shortest-path ECMP comes from either protocol; only Shortest-Union(K)
// needs the BGP+VRF gadget.
//
// Model: every router originates a sequence-numbered LSA listing its live
// adjacencies; flooding runs in synchronous rounds (a router forwards LSAs
// that are new to it to all neighbors each round). Once link-state
// databases are complete, each router runs SPF over ITS OWN LSDB to get
// per-destination ECMP next hops — verified in tests to equal the
// analytically computed EcmpTable. Link failures re-originate the two
// endpoint LSAs and reflood.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "topo/graph.h"

namespace spineless::ctrl {

using topo::Graph;
using topo::LinkId;
using topo::NodeId;
using topo::Port;

class OspfNetwork {
 public:
  explicit OspfNetwork(const Graph& g);

  // Floods until no LSDB changes; returns rounds used (0 if quiescent).
  int flood(int max_rounds = 10'000);

  // True when every router's LSDB contains the newest LSA of every router.
  bool converged() const;

  // Total LSA messages transmitted so far (control-plane load metric).
  std::int64_t messages_sent() const noexcept { return messages_; }

  // Tears down / restores a link: endpoints re-originate their LSAs with
  // bumped sequence numbers. Call flood() afterwards.
  void fail_link(LinkId link);
  void restore_link(LinkId link);

  // ECMP next hops at `router` toward `dst`, computed by SPF over the
  // router's own LSDB. Empty if the LSDB says dst is unreachable.
  std::vector<Port> next_hops(NodeId router, NodeId dst) const;

  // Hop distance router -> dst per the router's LSDB (-1 if unreachable).
  int distance(NodeId router, NodeId dst) const;

 private:
  struct Lsa {
    std::int64_t seq = 0;
    // Live adjacencies of the origin: (neighbor, link id).
    std::vector<Port> adjacencies;
  };

  // The LSDB-derived adjacency view at a router.
  std::vector<std::vector<Port>> lsdb_view(NodeId router) const;
  void reoriginate(NodeId router);
  bool link_up(LinkId link) const { return !down_.count(link); }

  const Graph& graph_;
  std::set<LinkId> down_;
  // lsdb_[router][origin] = best-known LSA of `origin` at `router`.
  std::vector<std::vector<Lsa>> lsdb_;
  // Self sequence numbers.
  std::vector<std::int64_t> seq_;
  std::int64_t messages_ = 0;
};

}  // namespace spineless::ctrl
