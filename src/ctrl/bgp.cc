#include "ctrl/bgp.h"

#include <algorithm>
#include <set>

#include "util/error.h"

namespace spineless::ctrl {
namespace {

// (length, lex) comparison used for canonical best-route selection.
bool route_less(const std::vector<NodeId>& a, const std::vector<NodeId>& b) {
  if (a.size() != b.size()) return a.size() < b.size();
  return a < b;
}

}  // namespace

BgpVrfNetwork::BgpVrfNetwork(const Graph& g, int k)
    : k_(k), num_routers_(g.num_switches()) {
  SPINELESS_CHECK(k >= 1);
  const int num_speakers = static_cast<int>(num_routers_) * k_;
  sessions_by_advertiser_.resize(static_cast<std::size_t>(num_speakers));
  sessions_by_receiver_.resize(static_cast<std::size_t>(num_speakers));

  // Build sessions from the §4 gadget. For the directed physical link
  // u -> v (traffic direction), each virtual connection
  // (VRF j, u) -> (VRF j', v) of cost c becomes a session where v's VRF-j'
  // speaker advertises to u's VRF-j speaker with c prepends. recv_port is
  // u's port on this specific physical link.
  for (NodeId u = 0; u < g.num_switches(); ++u) {
    for (const Port& p : g.neighbors(u)) {
      const NodeId v = p.neighbor;
      auto add_session = [&](int j, int j_next, int cost) {
        Session s;
        s.advertiser = speaker(v, j_next);
        s.receiver = speaker(u, j);
        s.prepend = cost;
        s.recv_port = p;
        s.link = p.link;
        sessions_.push_back(s);
      };
      // Rule (1): (VRF K, u) -> (VRF i, v), cost i.
      for (int i = 1; i <= k_; ++i) add_session(k_, i, i);
      // Rule (2): (VRF j, u) -> (VRF j+1, v), cost 1 (ascending; see vrf.h
      // for why the paper's printed rule is orientation-flipped).
      for (int j = 1; j < k_; ++j) add_session(j, j + 1, 1);
      // Rule (3): (VRF 1, u) -> (VRF 1, v), cost 1. For k == 1 rule (1)
      // already created this session.
      if (k_ > 1) add_session(1, 1, 1);
    }
  }
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    sessions_by_advertiser_[static_cast<std::size_t>(sessions_[i].advertiser)]
        .push_back(i);
    sessions_by_receiver_[static_cast<std::size_t>(sessions_[i].receiver)]
        .push_back(i);
  }
  rib_.assign(static_cast<std::size_t>(num_routers_),
              std::vector<Route>(sessions_.size()));
}

int BgpVrfNetwork::best_length(int s, NodeId d) const {
  if (s == speaker(d, k_)) return 0;  // origin
  int best = -1;
  for (const std::size_t idx :
       sessions_by_receiver_[static_cast<std::size_t>(s)]) {
    const Route& r = rib_[static_cast<std::size_t>(d)][idx];
    if (!r.valid) continue;
    const int len = static_cast<int>(r.as_path.size());
    if (best < 0 || len < best) best = len;
  }
  return best;
}

std::optional<std::vector<NodeId>> BgpVrfNetwork::best_route(int s,
                                                             NodeId d) const {
  if (s == speaker(d, k_)) return std::vector<NodeId>{};  // origin, length 0
  const std::vector<NodeId>* best = nullptr;
  for (const std::size_t idx :
       sessions_by_receiver_[static_cast<std::size_t>(s)]) {
    const Route& r = rib_[static_cast<std::size_t>(d)][idx];
    if (!r.valid) continue;
    if (best == nullptr || route_less(r.as_path, *best)) best = &r.as_path;
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

int BgpVrfNetwork::converge(int max_rounds, bool* converged) {
  const int num_speakers = static_cast<int>(num_routers_) * k_;
  int max_rounds_used = 0;
  if (converged != nullptr) *converged = true;

  // Prefixes converge independently; run each to fixpoint.
  for (NodeId d = 0; d < num_routers_; ++d) {
    auto& rib = rib_[static_cast<std::size_t>(d)];
    int rounds = 0;
    bool changed = true;
    while (changed) {
      if (rounds >= max_rounds) {
        SPINELESS_CHECK_MSG(converged != nullptr, "BGP did not converge");
        *converged = false;
        return max_rounds;
      }
      changed = false;
      // Snapshot every speaker's current best, then deliver advertisements.
      std::vector<std::optional<std::vector<NodeId>>> bests(
          static_cast<std::size_t>(num_speakers));
      for (int s = 0; s < num_speakers; ++s)
        bests[static_cast<std::size_t>(s)] = best_route(s, d);

      for (std::size_t i = 0; i < sessions_.size(); ++i) {
        const Session& sess = sessions_[i];
        Route incoming;  // default: invalid (withdrawal)
        const auto& adv_best =
            bests[static_cast<std::size_t>(sess.advertiser)];
        if (sess.up && adv_best.has_value()) {
          incoming.as_path.reserve(adv_best->size() +
                                   static_cast<std::size_t>(sess.prepend));
          const NodeId adv_as = speaker_router(sess.advertiser);
          incoming.as_path.assign(static_cast<std::size_t>(sess.prepend),
                                  adv_as);
          incoming.as_path.insert(incoming.as_path.end(), adv_best->begin(),
                                  adv_best->end());
          // eBGP loop prevention: the receiver discards routes already
          // carrying its own AS.
          const NodeId recv_as = speaker_router(sess.receiver);
          incoming.valid =
              std::find(incoming.as_path.begin(), incoming.as_path.end(),
                        recv_as) == incoming.as_path.end();
          if (!incoming.valid) incoming.as_path.clear();
        }
        Route& stored = rib[i];
        if (stored.valid != incoming.valid ||
            stored.as_path != incoming.as_path) {
          stored = std::move(incoming);
          changed = true;
        }
      }
      ++rounds;
    }
    // The final quiet round confirmed the fixpoint; don't count it.
    max_rounds_used = std::max(max_rounds_used, rounds - 1);
  }
  return max_rounds_used;
}

void BgpVrfNetwork::fail_link(LinkId link) {
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    if (sessions_[i].link != link) continue;
    sessions_[i].up = false;
    for (NodeId d = 0; d < num_routers_; ++d)
      rib_[static_cast<std::size_t>(d)][i] = Route{};
  }
}

void BgpVrfNetwork::restore_link(LinkId link) {
  for (auto& s : sessions_)
    if (s.link == link) s.up = true;
}

std::size_t BgpVrfNetwork::failed_links() const {
  std::set<LinkId> down;
  for (const auto& s : sessions_)
    if (!s.up) down.insert(s.link);
  return down.size();
}

int BgpVrfNetwork::best_path_length(NodeId router, int vrf, NodeId dst) const {
  return best_length(speaker(router, vrf), dst);
}

std::vector<FibEntry> BgpVrfNetwork::fib(NodeId router, int vrf,
                                         NodeId dst) const {
  const int s = speaker(router, vrf);
  const int best = best_length(s, dst);
  std::vector<FibEntry> out;
  if (best < 0 || (router == dst && vrf == k_)) return out;
  for (const std::size_t idx :
       sessions_by_receiver_[static_cast<std::size_t>(s)]) {
    const Route& r = rib_[static_cast<std::size_t>(dst)][idx];
    if (!r.valid || static_cast<int>(r.as_path.size()) != best) continue;
    out.push_back(FibEntry{sessions_[idx].recv_port,
                           speaker_vrf(sessions_[idx].advertiser)});
  }
  return out;
}

PathSet BgpVrfNetwork::fib_paths(NodeId src, NodeId dst,
                                 std::size_t cap) const {
  SPINELESS_CHECK(src != dst);
  std::set<Path> dedup;
  Path prefix{src};
  auto walk = [&](auto&& self, NodeId router, int vrf) -> void {
    if (dedup.size() >= cap) return;
    if (router == dst && vrf == k_) {
      dedup.insert(prefix);
      return;
    }
    for (const FibEntry& e : fib(router, vrf, dst)) {
      // AS-path loop prevention already guarantees simple router paths, but
      // multipath mixes routes of different AS paths; re-check locally so a
      // FIB walk can't splice two admitted routes into a loop.
      if (std::find(prefix.begin(), prefix.end(), e.port.neighbor) !=
          prefix.end())
        continue;
      prefix.push_back(e.port.neighbor);
      self(self, e.port.neighbor, e.next_vrf);
      prefix.pop_back();
    }
  };
  walk(walk, src, k_);
  PathSet out(dedup.begin(), dedup.end());
  std::sort(out.begin(), out.end(), [](const Path& a, const Path& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    return a < b;
  });
  return out;
}

std::size_t BgpVrfNetwork::installed_routes() const {
  std::size_t n = 0;
  for (const auto& per_prefix : rib_)
    for (const Route& r : per_prefix) n += r.valid;
  return n;
}

}  // namespace spineless::ctrl
