// BGP + VRF control-plane simulator: the standard-hardware realization of
// Shortest-Union(K) from §4, substituting for the paper's GNS3 / Cisco 7200
// prototype (see DESIGN.md §2).
//
// Model, mirroring the paper's configuration:
//  * every physical router is its own AS (unique AS number);
//  * every router runs K VRFs; all VRFs of a router share its AS number;
//  * host interfaces live in VRF K; each router originates one prefix (its
//    rack subnet) from its VRF-K speaker;
//  * eBGP sessions follow the §4 virtual-connection gadget: a virtual
//    connection (VRF j, R1) -> (VRF j', R2) of cost c is a session on which
//    R2's VRF-j' speaker advertises routes to R1's VRF-j speaker with its
//    own AS prepended c times ("the costs can be set via path prepending");
//  * best-path selection is minimum AS-path length; multipath keeps every
//    admitted route of best length (vendor "multipath-relax" semantics);
//  * a speaker rejects any route whose AS-path contains its own AS, so no
//    forwarding path visits a router twice.
//
// Convergence runs in synchronous rounds (every speaker re-advertises its
// current best to all sessions each round) until a fixpoint; the round
// count is the reconvergence metric reported by bench_failures.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "routing/types.h"
#include "topo/graph.h"

namespace spineless::ctrl {

using routing::Path;
using routing::PathSet;
using topo::Graph;
using topo::LinkId;
using topo::NodeId;
using topo::Port;

// One ECMP forwarding choice installed in a VRF's FIB.
struct FibEntry {
  Port port;         // physical port to take
  int next_vrf = 0;  // VRF the packet continues in at the neighbor
};

class BgpVrfNetwork {
 public:
  // k = number of VRFs per router = the K of Shortest-Union(K).
  BgpVrfNetwork(const Graph& g, int k);

  int k() const noexcept { return k_; }

  // Runs synchronous advertisement rounds until no RIB changes anywhere.
  // Returns the number of rounds executed (0 if already converged). If any
  // prefix is still churning after max_rounds: with `converged == nullptr`
  // (the default) this throws; otherwise it sets *converged = false and
  // returns max_rounds, leaving the RIBs mid-convergence — callers that
  // sweep adversarial failure batches can report non-convergence instead
  // of dying. On success *converged is set to true.
  int converge(int max_rounds = 10'000, bool* converged = nullptr);

  // Tears down all sessions riding on the physical link (both directions).
  // Stored routes via those sessions are withdrawn; call converge() to let
  // the network route around the failure.
  void fail_link(LinkId link);
  void restore_link(LinkId link);
  std::size_t failed_links() const;

  // AS-path length of the best route for prefix `dst` at (router, vrf);
  // -1 if unreachable. Traffic enters at vrf == k (host VRF).
  int best_path_length(NodeId router, int vrf, NodeId dst) const;

  // Multipath FIB at (router, vrf) for prefix dst.
  std::vector<FibEntry> fib(NodeId router, int vrf, NodeId dst) const;

  // All physical paths obtained by following the converged FIB from
  // (VRF k, src) to dst, deduplicated and sorted by (length, lex). With no
  // failures this equals routing::shortest_union_paths (verified in tests).
  PathSet fib_paths(NodeId src, NodeId dst, std::size_t cap = 4096) const;

  // True if the host VRF at src has any route to dst.
  bool reachable(NodeId src, NodeId dst) const {
    return best_path_length(src, k_, dst) >= 0;
  }

  // Total routes currently installed (diagnostics).
  std::size_t installed_routes() const;

 private:
  struct Session {
    int advertiser;  // speaker index
    int receiver;    // speaker index
    int prepend;     // gadget cost c
    Port recv_port;  // port at the receiving router toward the advertiser
    LinkId link;
    bool up = true;
  };

  // One received route on one session for one prefix.
  struct Route {
    bool valid = false;
    std::vector<NodeId> as_path;  // router ids, advertiser's AS first
  };

  int speaker(NodeId router, int vrf) const {
    SPINELESS_DCHECK(vrf >= 1 && vrf <= k_);
    return static_cast<int>(router) * k_ + (vrf - 1);
  }
  NodeId speaker_router(int s) const { return static_cast<NodeId>(s / k_); }
  int speaker_vrf(int s) const { return s % k_ + 1; }

  // Best AS-path length among valid routes at speaker s for prefix d
  // (0 if s originates d); -1 if none.
  int best_length(int s, NodeId d) const;
  // The canonical best route a speaker advertises (shortest, then lex).
  std::optional<std::vector<NodeId>> best_route(int s, NodeId d) const;

  int k_;
  NodeId num_routers_;
  std::vector<Session> sessions_;
  // sessions_by_advertiser_[speaker] -> session indices.
  std::vector<std::vector<std::size_t>> sessions_by_advertiser_;
  // sessions_by_receiver_[speaker] -> session indices (for FIB extraction).
  std::vector<std::vector<std::size_t>> sessions_by_receiver_;
  // rib_[prefix][session] — what the receiver currently holds.
  std::vector<std::vector<Route>> rib_;
};

}  // namespace spineless::ctrl
