#include "ctrl/ospf.h"

#include <algorithm>
#include <deque>

#include "util/error.h"

namespace spineless::ctrl {

OspfNetwork::OspfNetwork(const Graph& g)
    : graph_(g),
      lsdb_(static_cast<std::size_t>(g.num_switches()),
            std::vector<Lsa>(static_cast<std::size_t>(g.num_switches()))),
      seq_(static_cast<std::size_t>(g.num_switches()), 0) {
  // Each router knows only its own LSA initially.
  for (NodeId r = 0; r < g.num_switches(); ++r) reoriginate(r);
}

void OspfNetwork::reoriginate(NodeId router) {
  Lsa lsa;
  lsa.seq = ++seq_[static_cast<std::size_t>(router)];
  for (const Port& p : graph_.neighbors(router)) {
    if (link_up(p.link)) lsa.adjacencies.push_back(p);
  }
  lsdb_[static_cast<std::size_t>(router)][static_cast<std::size_t>(router)] =
      std::move(lsa);
}

int OspfNetwork::flood(int max_rounds) {
  int rounds = 0;
  bool changed = true;
  while (changed) {
    SPINELESS_CHECK_MSG(rounds < max_rounds, "OSPF flooding did not settle");
    changed = false;
    // Snapshot: deliveries within a round are based on last round's LSDBs.
    const auto snapshot = lsdb_;
    for (NodeId r = 0; r < graph_.num_switches(); ++r) {
      for (const Port& p : graph_.neighbors(r)) {
        if (!link_up(p.link)) continue;
        // r advertises every LSA it holds to this neighbor; the neighbor
        // installs strictly newer ones. (Real OSPF floods only deltas; the
        // message count below only counts installs, i.e. useful floods.)
        auto& nbr_db = lsdb_[static_cast<std::size_t>(p.neighbor)];
        const auto& my_db = snapshot[static_cast<std::size_t>(r)];
        for (NodeId origin = 0; origin < graph_.num_switches(); ++origin) {
          const Lsa& candidate = my_db[static_cast<std::size_t>(origin)];
          if (candidate.seq >
              nbr_db[static_cast<std::size_t>(origin)].seq) {
            nbr_db[static_cast<std::size_t>(origin)] = candidate;
            ++messages_;
            changed = true;
          }
        }
      }
    }
    ++rounds;
  }
  return rounds - 1;  // final quiet round confirmed the fixpoint
}

bool OspfNetwork::converged() const {
  for (NodeId r = 0; r < graph_.num_switches(); ++r) {
    for (NodeId origin = 0; origin < graph_.num_switches(); ++origin) {
      if (lsdb_[static_cast<std::size_t>(r)][static_cast<std::size_t>(origin)]
              .seq != seq_[static_cast<std::size_t>(origin)])
        return false;
    }
  }
  return true;
}

void OspfNetwork::fail_link(LinkId link) {
  SPINELESS_CHECK(link >= 0 && link < graph_.num_links());
  down_.insert(link);
  reoriginate(graph_.link(link).a);
  reoriginate(graph_.link(link).b);
}

void OspfNetwork::restore_link(LinkId link) {
  down_.erase(link);
  reoriginate(graph_.link(link).a);
  reoriginate(graph_.link(link).b);
}

std::vector<std::vector<Port>> OspfNetwork::lsdb_view(NodeId router) const {
  // Adjacency as this router believes it to be. A directed adjacency is
  // used only if both endpoint LSAs agree the link is up (OSPF's two-way
  // check).
  const auto& db = lsdb_[static_cast<std::size_t>(router)];
  std::vector<std::vector<Port>> adj(
      static_cast<std::size_t>(graph_.num_switches()));
  for (NodeId origin = 0; origin < graph_.num_switches(); ++origin) {
    for (const Port& p : db[static_cast<std::size_t>(origin)].adjacencies) {
      const auto& peer = db[static_cast<std::size_t>(p.neighbor)];
      const bool reciprocal = std::any_of(
          peer.adjacencies.begin(), peer.adjacencies.end(),
          [&](const Port& q) { return q.link == p.link; });
      if (reciprocal) adj[static_cast<std::size_t>(origin)].push_back(p);
    }
  }
  return adj;
}

int OspfNetwork::distance(NodeId router, NodeId dst) const {
  const auto adj = lsdb_view(router);
  std::vector<int> dist(static_cast<std::size_t>(graph_.num_switches()), -1);
  std::deque<NodeId> queue{router};
  dist[static_cast<std::size_t>(router)] = 0;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (const Port& p : adj[static_cast<std::size_t>(u)]) {
      if (dist[static_cast<std::size_t>(p.neighbor)] < 0) {
        dist[static_cast<std::size_t>(p.neighbor)] =
            dist[static_cast<std::size_t>(u)] + 1;
        queue.push_back(p.neighbor);
      }
    }
  }
  return dist[static_cast<std::size_t>(dst)];
}

std::vector<Port> OspfNetwork::next_hops(NodeId router, NodeId dst) const {
  std::vector<Port> hops;
  if (router == dst) return hops;
  const auto adj = lsdb_view(router);
  // BFS distances from dst over the believed topology (symmetric links).
  std::vector<int> dist(static_cast<std::size_t>(graph_.num_switches()), -1);
  std::deque<NodeId> queue{dst};
  dist[static_cast<std::size_t>(dst)] = 0;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (const Port& p : adj[static_cast<std::size_t>(u)]) {
      if (dist[static_cast<std::size_t>(p.neighbor)] < 0) {
        dist[static_cast<std::size_t>(p.neighbor)] =
            dist[static_cast<std::size_t>(u)] + 1;
        queue.push_back(p.neighbor);
      }
    }
  }
  if (dist[static_cast<std::size_t>(router)] < 0) return hops;
  for (const Port& p : adj[static_cast<std::size_t>(router)]) {
    if (dist[static_cast<std::size_t>(p.neighbor)] ==
        dist[static_cast<std::size_t>(router)] - 1) {
      hops.push_back(p);
    }
  }
  return hops;
}

}  // namespace spineless::ctrl
