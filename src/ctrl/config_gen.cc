#include "ctrl/config_gen.h"

#include <sstream>
#include <vector>

#include "util/error.h"

namespace spineless::ctrl {
namespace {

using topo::Graph;
using topo::LinkId;
using topo::NodeId;

// One eBGP session riding a physical link as a dot1q subinterface pair.
struct Session {
  NodeId advertiser;
  int adv_vrf;
  NodeId receiver;
  int recv_vrf;
  int prepend;  // gadget cost; eBGP adds one AS hop itself
  int vlan;     // shared by both subinterfaces
};

// All sessions on one physical link, in canonical VLAN order.
std::vector<Session> link_sessions(const Graph& g, LinkId l, int k) {
  std::vector<Session> sessions;
  int vlan = 100;
  const topo::Link& link = g.link(l);
  for (const auto& [u, v] : {std::pair<NodeId, NodeId>{link.a, link.b},
                             std::pair<NodeId, NodeId>{link.b, link.a}}) {
    // Traffic direction u -> v; v advertises to u (see ctrl/bgp.h).
    for (int i = 1; i <= k; ++i)
      sessions.push_back(Session{v, i, u, k, i, vlan++});
    for (int j = 1; j < k; ++j)
      sessions.push_back(Session{v, j + 1, u, j, 1, vlan++});
    if (k > 1) sessions.push_back(Session{v, 1, u, 1, 1, vlan++});
  }
  return sessions;
}

std::string vrf_name(int j) { return "VRF" + std::to_string(j); }

std::string p2p_ip(LinkId l, int vlan, bool low) {
  // 172.16.0.0/12 pool: 64 addresses per link, 2 per VLAN.
  const std::uint32_t base = (172u << 24) | (16u << 16);
  const std::uint32_t addr = base + static_cast<std::uint32_t>(l) * 64 +
                             static_cast<std::uint32_t>(vlan - 100) * 2 +
                             (low ? 0 : 1);
  std::ostringstream os;
  os << ((addr >> 24) & 255) << '.' << ((addr >> 16) & 255) << '.'
     << ((addr >> 8) & 255) << '.' << (addr & 255);
  return os.str();
}

std::string rack_subnet(NodeId r) {
  // 10.<128 + r/256>.<r%256>.0/24 — collision-free for up to 32k racks.
  std::ostringstream os;
  os << "10." << (128 + r / 256) << '.' << (r % 256) << ".0";
  return os.str();
}

}  // namespace

std::string router_config(const Graph& g, NodeId router,
                          const ConfigGenOptions& opts) {
  SPINELESS_CHECK(opts.k >= 1);
  SPINELESS_CHECK(router >= 0 && router < g.num_switches());
  const int as = opts.base_as + static_cast<int>(router);
  std::ostringstream os;
  os << "hostname r" << router << "\n!\n";

  // VRFs.
  for (int j = 1; j <= opts.k; ++j) {
    os << "vrf definition " << vrf_name(j) << "\n rd " << as << ":" << j
       << "\n address-family ipv4\n exit-address-family\n!\n";
  }

  // Host-facing interface in VRF K (only for switches with servers).
  if (g.servers(router) > 0) {
    os << "interface GigabitEthernet0/0\n vrf forwarding "
       << vrf_name(opts.k) << "\n ip address " << rack_subnet(router)
       << " 255.255.255.0\n description rack subnet, " << g.servers(router)
       << " hosts\n!\n";
  }

  // Subinterfaces: one per session this router participates in. Physical
  // port index = position in neighbors() + 1 (Gi0/0 is the host port).
  struct NeighborRef {
    int port_index;
    const Session* session;
    bool is_advertiser;
  };
  std::vector<std::vector<Session>> per_port_sessions;
  const auto& ports = g.neighbors(router);
  for (std::size_t p = 0; p < ports.size(); ++p)
    per_port_sessions.push_back(link_sessions(g, ports[p].link, opts.k));

  for (std::size_t p = 0; p < ports.size(); ++p) {
    for (const Session& sess : per_port_sessions[p]) {
      const bool mine =
          sess.advertiser == router || sess.receiver == router;
      if (!mine) continue;
      const int my_vrf =
          sess.advertiser == router ? sess.adv_vrf : sess.recv_vrf;
      const bool low = g.link(ports[p].link).a == router;
      os << "interface GigabitEthernet0/" << (p + 1) << "." << sess.vlan
         << "\n encapsulation dot1Q " << sess.vlan << "\n vrf forwarding "
         << vrf_name(my_vrf) << "\n ip address "
         << p2p_ip(ports[p].link, sess.vlan, low) << " 255.255.255.254\n!\n";
    }
  }

  // Prepend route-maps (cost c => c-1 extra prepends; eBGP adds one).
  for (int c = 2; c <= opts.k; ++c) {
    os << "route-map PREPEND_" << c << " permit 10\n set as-path prepend";
    for (int i = 1; i < c; ++i) os << " " << as;
    os << "\n!\n";
  }

  // BGP process with one address family per VRF.
  os << "router bgp " << as << "\n bgp log-neighbor-changes\n";
  for (int j = 1; j <= opts.k; ++j) {
    os << " address-family ipv4 vrf " << vrf_name(j) << "\n  maximum-paths "
       << opts.max_paths << "\n";
    if (j == opts.k && g.servers(router) > 0) {
      os << "  network " << rack_subnet(router) << " mask 255.255.255.0\n";
    }
    for (std::size_t p = 0; p < ports.size(); ++p) {
      for (const Session& sess : per_port_sessions[p]) {
        const bool low = g.link(ports[p].link).a == router;
        if (sess.advertiser == router && sess.adv_vrf == j) {
          // I advertise on this session: neighbor is the receiver; my
          // prepend route-map applies outbound.
          const std::string peer = p2p_ip(ports[p].link, sess.vlan, !low);
          os << "  neighbor " << peer << " remote-as "
             << opts.base_as + static_cast<int>(sess.receiver)
             << "\n  neighbor " << peer << " activate\n";
          if (sess.prepend >= 2) {
            os << "  neighbor " << peer << " route-map PREPEND_"
               << sess.prepend << " out\n";
          }
        } else if (sess.receiver == router && sess.recv_vrf == j) {
          const std::string peer = p2p_ip(ports[p].link, sess.vlan, !low);
          os << "  neighbor " << peer << " remote-as "
             << opts.base_as + static_cast<int>(sess.advertiser)
             << "\n  neighbor " << peer << " activate\n";
        }
      }
    }
    os << " exit-address-family\n";
  }
  os << "!\n";
  return os.str();
}

std::string full_deployment_config(const Graph& g,
                                   const ConfigGenOptions& opts) {
  std::ostringstream os;
  os << "! Shortest-Union(" << opts.k << ") BGP+VRF deployment for '"
     << g.name() << "' — " << g.num_switches() << " routers, "
     << g.num_links() << " links. Generated; do not hand-edit.\n!\n";
  for (NodeId r = 0; r < g.num_switches(); ++r) {
    os << "!========== r" << r << " ==========\n" << router_config(g, r, opts);
  }
  return os.str();
}

}  // namespace spineless::ctrl
