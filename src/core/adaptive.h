// Coarse-grained adaptive routing (the §7 future-work direction): pick
// between ECMP and Shortest-Union(K) per traffic matrix, at the granularity
// an operator could act on (route-map flips, not per-flowlet switching).
//
// Heuristic: Shortest-Union pays a path-stretch tax that hurts uniform
// traffic but buys path diversity that rescues patterns concentrated on
// ToR pairs with few shortest paths (adjacent racks in flat networks). We
// therefore compute the demand-weighted effective shortest-path diversity
// of the TM and switch to Shortest-Union when it is low.
#pragma once

#include <cstdint>

#include "sim/network.h"
#include "topo/graph.h"
#include "workload/tm.h"

namespace spineless::core {

struct AdaptiveConfig {
  int su_k = 2;
  // Switch to Shortest-Union when the demand-weighted mean shortest-path
  // count across ToR pairs falls below this threshold...
  double diversity_threshold = 8.0;
  // ...or when the top 10% of sender racks carry more than this share of
  // the demand (skewed bursts are where flat networks need the extra
  // paths, §3/§6.1).
  double concentration_threshold = 0.3;
  std::int64_t path_count_cap = 1024;
};

// Demand-weighted mean number of shortest paths over the TM's rack pairs.
double weighted_path_diversity(const topo::Graph& g,
                               const workload::RackTm& tm,
                               std::int64_t path_count_cap = 1024);

// Share of total demand emitted by the busiest ceil(10%) of sender racks —
// 1.0 for single-rack bursts, ~0.1 for uniform traffic.
double demand_concentration(const topo::Graph& g, const workload::RackTm& tm);

// The routing mode the coarse-grained adaptive policy selects for this TM.
sim::RoutingMode choose_routing(const topo::Graph& g,
                                const workload::RackTm& tm,
                                const AdaptiveConfig& cfg = {});

}  // namespace spineless::core
