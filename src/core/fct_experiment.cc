#include "core/fct_experiment.h"

#include <algorithm>

#include "core/throughput_experiment.h"
#include "flowsim/flow_level_sim.h"
#include "sim/sharded_engine.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace spineless::core {
namespace {

// Advances `eng` to `deadline` in segments, checkpointing / auditing /
// polling the cancel hook at each quiescent boundary. Segmentation does not
// change results: repeated run_until calls execute the identical event
// sequence as a single call. Returns false if the cancel hook stopped the
// run early (after saving a resume point).
template <typename Engine>
bool run_with_boundaries(Engine& eng, sim::CheckpointSession& session,
                         const sim::CheckpointSpec& spec, Time deadline) {
  if (spec.resume && !spec.path.empty()) session.restore(spec.path, eng);
  Time step = spec.interval;
  if (step <= 0) {
    // No interval given: boundaries only serve the audit/cancel/progress
    // hooks, so a coarse polling granularity is enough.
    const bool polls = spec.audit || static_cast<bool>(spec.cancel) ||
                       static_cast<bool>(spec.progress);
    step = polls ? std::max<Time>(1, deadline / 64) : deadline;
  }
  Time t = eng.now();  // resume point when a snapshot was restored
  while (t < deadline) {
    t = std::min<Time>(deadline, t + step);
    eng.run_until(t);
    if (spec.progress) spec.progress(eng.events_processed());
    if (spec.audit) {
      const sim::AuditReport report = session.audit(eng);
      if (!report.ok()) throw Error(report.to_string());
    }
    if (t >= deadline) break;  // complete: no snapshot needed
    if (!spec.path.empty()) session.save(spec.path, eng);
    if (spec.cancel && spec.cancel()) return false;
  }
  return true;
}

}  // namespace

std::uint64_t fct_config_hash(const topo::Graph& g, const FctConfig& cfg) {
  sim::HashChain h;
  h.mix(cfg.seed)
      .mix(static_cast<std::uint64_t>(g.num_switches()))
      .mix(static_cast<std::uint64_t>(g.total_servers()))
      .mix(static_cast<std::uint64_t>(g.num_links()))
      .mix(static_cast<std::uint64_t>(cfg.net.mode))
      .mix(static_cast<std::uint64_t>(cfg.net.su_k))
      .mix(static_cast<std::uint64_t>(cfg.net.intra_jobs))
      .mix(static_cast<std::uint64_t>(cfg.net.link_rate_bps))
      .mix(static_cast<std::uint64_t>(cfg.net.flowlet_gap))
      .mix(static_cast<std::uint64_t>(cfg.net.ecn_threshold_bytes))
      .mix(static_cast<std::uint64_t>(cfg.flowgen.window))
      .mix(static_cast<std::uint64_t>(cfg.flowgen.offered_load_bps))
      .mix(static_cast<std::uint64_t>(cfg.drain_factor * 1024.0))
      .mix(static_cast<std::uint64_t>(cfg.random_placement ? 1 : 0))
      .mix(static_cast<std::uint64_t>(cfg.tcp.dctcp ? 1 : 0));
  return h.value();
}

FctResult run_fct_experiment(const topo::Graph& g, const workload::RackTm& tm,
                             const FctConfig& cfg) {
  Rng rng(cfg.seed);
  workload::TmSampler sampler(g, tm);
  if (cfg.random_placement) sampler.apply_random_placement(rng);
  const auto specs = workload::generate_flows(sampler, cfg.flowgen, rng);

  sim::Network net(g, cfg.net);
  sim::FlowDriver driver(net, cfg.tcp);
  const Time deadline = static_cast<Time>(
      static_cast<double>(cfg.flowgen.window) * cfg.drain_factor);
  const sim::CheckpointSpec& spec = cfg.checkpoint;

  std::uint64_t events = 0;
  bool finished = true;
  if (net.sharded()) {
    sim::ShardedEngine engine(net);
    for (const auto& f : specs)
      driver.add_flow(engine.control(), f.src, f.dst, f.bytes, f.start);
    if (spec.enabled()) {
      sim::CheckpointSession session(net, fct_config_hash(g, cfg));
      session.add(&driver);
      finished = run_with_boundaries(engine, session, spec, deadline);
    } else {
      engine.run_until(deadline);
    }
    events = engine.events_processed();
  } else {
    sim::Simulator simulator;
    for (const auto& f : specs)
      driver.add_flow(simulator, f.src, f.dst, f.bytes, f.start);
    if (spec.enabled()) {
      sim::CheckpointSession session(net, fct_config_hash(g, cfg));
      session.add(&driver);
      finished = run_with_boundaries(simulator, session, spec, deadline);
    } else {
      simulator.run_until(deadline);
    }
    events = simulator.events_processed();
  }

  FctResult r;
  r.finished = finished;
  r.fct_ms = driver.fct_ms();
  r.flows = driver.num_flows();
  r.completed = driver.completed_flows();
  r.queue_drops = net.stats().queue_drops;
  r.retransmits = driver.total_retransmits();
  r.max_queue_bytes = net.max_network_queue_bytes();
  r.events = events;
  r.intra_jobs = net.config().intra_jobs;
  r.table_build_s = net.table_build_seconds();
  return r;
}

FctResult run_fct_experiment_fluid(const topo::Graph& g,
                                   const workload::RackTm& tm,
                                   const FctConfig& cfg) {
  Rng rng(cfg.seed);
  workload::TmSampler sampler(g, tm);
  if (cfg.random_placement) sampler.apply_random_placement(rng);
  const auto specs = workload::generate_flows(sampler, cfg.flowgen, rng);

  PathSampler paths(g, cfg.net.mode, cfg.net.su_k);
  flowsim::FlowLevelSimulator fluid(
      g, static_cast<double>(cfg.net.link_rate_bps));
  for (const auto& f : specs) {
    fluid.add_flow(f.src, f.dst, f.bytes, f.start,
                   paths.sample(g.tor_of_host(f.src), g.tor_of_host(f.dst),
                                rng));
  }
  const Time deadline = static_cast<Time>(
      static_cast<double>(cfg.flowgen.window) * cfg.drain_factor);
  const std::size_t completed = fluid.run(deadline);

  FctResult r;
  r.fct_ms = fluid.fct_ms();
  r.flows = specs.size();
  r.completed = completed;
  return r;
}

}  // namespace spineless::core
