#include "core/fct_experiment.h"

#include "core/throughput_experiment.h"
#include "flowsim/flow_level_sim.h"
#include "sim/sharded_engine.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace spineless::core {

FctResult run_fct_experiment(const topo::Graph& g, const workload::RackTm& tm,
                             const FctConfig& cfg) {
  Rng rng(cfg.seed);
  workload::TmSampler sampler(g, tm);
  if (cfg.random_placement) sampler.apply_random_placement(rng);
  const auto specs = workload::generate_flows(sampler, cfg.flowgen, rng);

  sim::Network net(g, cfg.net);
  sim::FlowDriver driver(net, cfg.tcp);
  const Time deadline = static_cast<Time>(
      static_cast<double>(cfg.flowgen.window) * cfg.drain_factor);

  std::uint64_t events = 0;
  if (net.sharded()) {
    sim::ShardedEngine engine(net);
    for (const auto& f : specs)
      driver.add_flow(engine.control(), f.src, f.dst, f.bytes, f.start);
    engine.run_until(deadline);
    events = engine.events_processed();
  } else {
    sim::Simulator simulator;
    for (const auto& f : specs)
      driver.add_flow(simulator, f.src, f.dst, f.bytes, f.start);
    simulator.run_until(deadline);
    events = simulator.events_processed();
  }

  FctResult r;
  r.fct_ms = driver.fct_ms();
  r.flows = driver.num_flows();
  r.completed = driver.completed_flows();
  r.queue_drops = net.stats().queue_drops;
  r.retransmits = driver.total_retransmits();
  r.max_queue_bytes = net.max_network_queue_bytes();
  r.events = events;
  r.intra_jobs = net.config().intra_jobs;
  r.table_build_s = net.table_build_seconds();
  return r;
}

FctResult run_fct_experiment_fluid(const topo::Graph& g,
                                   const workload::RackTm& tm,
                                   const FctConfig& cfg) {
  Rng rng(cfg.seed);
  workload::TmSampler sampler(g, tm);
  if (cfg.random_placement) sampler.apply_random_placement(rng);
  const auto specs = workload::generate_flows(sampler, cfg.flowgen, rng);

  PathSampler paths(g, cfg.net.mode, cfg.net.su_k);
  flowsim::FlowLevelSimulator fluid(
      g, static_cast<double>(cfg.net.link_rate_bps));
  for (const auto& f : specs) {
    fluid.add_flow(f.src, f.dst, f.bytes, f.start,
                   paths.sample(g.tor_of_host(f.src), g.tor_of_host(f.dst),
                                rng));
  }
  const Time deadline = static_cast<Time>(
      static_cast<double>(cfg.flowgen.window) * cfg.drain_factor);
  const std::size_t completed = fluid.run(deadline);

  FctResult r;
  r.fct_ms = fluid.fct_ms();
  r.flows = specs.size();
  r.completed = completed;
  return r;
}

}  // namespace spineless::core
