// Flow-completion-time experiment (the paper's §6.1 / Figure 4): generate a
// finite-flow workload from a rack-level traffic matrix, run it through the
// packet-level simulator on a given topology + routing, and report the FCT
// distribution.
#pragma once

#include <cstdint>
#include <string>

#include "sim/checkpoint.h"
#include "sim/network.h"
#include "sim/tcp.h"
#include "topo/graph.h"
#include "util/stats.h"
#include "workload/flows.h"
#include "workload/tm.h"

namespace spineless::core {

struct FctConfig {
  sim::NetworkConfig net;
  sim::TcpConfig tcp;
  workload::FlowGenConfig flowgen;
  bool random_placement = false;
  std::uint64_t seed = 1;
  // Simulation keeps running after the arrival window so straggler flows
  // can finish; flows still incomplete at window * drain_factor are
  // reported as incomplete.
  double drain_factor = 20.0;
  // Crash-safety hooks: periodic snapshots, resume, the invariant auditor,
  // and the self-healing runner's cancel/progress callbacks. Disabled by
  // default (a single uninterrupted run_until — zero overhead). Because
  // checkpoints land at quiescent engine boundaries, a segmented run is
  // byte-identical to an uninterrupted one. Not used by the fluid model.
  sim::CheckpointSpec checkpoint;
};

struct FctResult {
  Summary fct_ms;               // completed flows only
  std::size_t flows = 0;
  std::size_t completed = 0;
  std::int64_t queue_drops = 0;
  std::int64_t retransmits = 0;
  std::int64_t max_queue_bytes = 0;  // hottest switch-switch queue
  std::uint64_t events = 0;
  int intra_jobs = 1;           // shards the cell actually ran with
  double table_build_s = 0.0;   // route-table (re)construction wall time
  // False when checkpoint.cancel stopped the run early (a checkpoint was
  // saved; a --resume continues from it). Partial results are not reported.
  bool finished = true;

  double median_ms() const { return fct_ms.median(); }
  double p99_ms() const { return fct_ms.p99(); }
};

// Everything that determines the reconstructed experiment — seed, topology
// shape, routing, shard count, workload window — chained into the snapshot
// config hash. Restore refuses a snapshot whose hash differs.
std::uint64_t fct_config_hash(const topo::Graph& g, const FctConfig& cfg);

// Runs one (topology, TM, routing) cell of Figure 4. With
// cfg.net.intra_jobs > 1 the cell runs on the sharded conservative engine
// (see sim/sharded_engine.h) — results are byte-identical to serial.
FctResult run_fct_experiment(const topo::Graph& g, const workload::RackTm& tm,
                             const FctConfig& cfg);

// Same experiment in the event-driven flow-level (fluid) model: identical
// workload and per-flow hashed paths, max-min rate sharing instead of
// packet-level TCP. Orders of magnitude faster; bench_fidelity quantifies
// where its FCTs track the packet simulator and where transport dynamics
// (slow start, loss, RTOs) make them diverge. queue_drops/retransmits are
// zero by construction in this model.
FctResult run_fct_experiment_fluid(const topo::Graph& g,
                                   const workload::RackTm& tm,
                                   const FctConfig& cfg);

}  // namespace spineless::core
