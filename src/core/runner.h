// Parallel experiment runner: a work-stealing thread pool that fans the
// independent cells of a benchmark sweep — (topology, traffic matrix,
// config) triples — across cores.
//
// Determinism contract: a cell's randomness must derive only from its index
// (derive_cell_seed), never from which thread ran it or in what order, and
// results are collected into index-ordered slots. A sweep therefore
// produces byte-identical output for any --jobs value, including 1.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/rng.h"

namespace spineless::core {

// Per-cell seed: decorrelates cells drawn from one base seed without any
// sequential RNG handoff, so cell i's stream is the same no matter how many
// worker threads exist or which one picks it up.
constexpr std::uint64_t derive_cell_seed(std::uint64_t base_seed,
                                         std::uint64_t cell_index) {
  return splitmix64(base_seed ^ (cell_index * 0x9e3779b97f4a7c15ULL));
}

// Default worker count: SPINELESS_JOBS if set (and positive), otherwise
// std::thread::hardware_concurrency().
int default_jobs();

class Runner {
 public:
  // jobs < 1 is clamped to 1. jobs == 1 runs every batch inline on the
  // calling thread (no pool threads are created).
  explicit Runner(int jobs = default_jobs());
  ~Runner();

  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;

  int jobs() const noexcept { return jobs_; }

  // Applies fn(i) for i in [0, n) across the pool and returns the results
  // in index order. fn must be callable concurrently from multiple
  // threads; the first exception thrown by any cell is rethrown here
  // (remaining cells still run). The calling thread participates as a
  // worker, so map() on a 1-job runner is exactly a serial loop.
  template <typename Fn>
  auto map(std::size_t n, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    std::vector<R> out(n);
    run_batch(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  // Untyped core of map(): runs body(i) for i in [0, n).
  void run_batch(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  // One work-stealing deque per worker slot: the owner pops from the
  // front, thieves take from the back.
  struct WorkQueue {
    std::mutex mu;
    std::deque<std::size_t> tasks;
  };

  void worker_main(std::size_t slot);
  // Drains the current batch from `slot`'s queue, stealing when empty.
  void work(std::size_t slot);
  bool try_take(std::size_t slot, std::size_t* index);

  const int jobs_;
  std::vector<std::unique_ptr<WorkQueue>> queues_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable batch_cv_;  // workers wait here between batches
  std::condition_variable done_cv_;   // run_batch waits here for drain
  std::uint64_t generation_ = 0;      // bumped per batch to wake workers
  bool shutdown_ = false;
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t remaining_ = 0;  // tasks not yet completed in this batch
  std::exception_ptr first_error_;
};

}  // namespace spineless::core
