// Forwarding header: the Runner moved to src/util so lower layers
// (routing's parallel table construction, sim's sharded engine) can use it
// without depending on core. Existing core::Runner call sites keep working.
#pragma once

#include "util/runner.h"

namespace spineless::core {

using util::default_jobs;
using util::derive_cell_seed;
using util::Runner;

}  // namespace spineless::core
