// C-S model throughput experiment (the paper's §6.2 / Figure 5): pack C
// clients and S servers per the C-S model, run one long flow per
// client-server pair (downsampled for huge products), route each flow the
// way hashed ECMP / Shortest-Union forwarding would, and compute max-min
// fair rates in the fluid model.
#pragma once

#include <cstdint>
#include <memory>

#include "routing/ecmp.h"
#include "routing/types.h"
#include "routing/vrf.h"
#include "sim/network.h"
#include "topo/graph.h"
#include "util/rng.h"

namespace spineless::core {

// Samples one forwarding path for a flow by walking the hop-by-hop next-hop
// tables with uniform random tie-breaks — the fluid-model analogue of
// per-hop ECMP hashing.
class PathSampler {
 public:
  PathSampler(const topo::Graph& g, sim::RoutingMode mode, int su_k);

  routing::Path sample(topo::NodeId src, topo::NodeId dst, Rng& rng) const;

 private:
  const topo::Graph& graph_;
  sim::RoutingMode mode_;
  routing::EcmpTable ecmp_;
  std::unique_ptr<routing::VrfTable> vrf_;
  int k_ = 0;
};

struct ThroughputConfig {
  double link_rate_bps = 10e9;
  sim::RoutingMode mode = sim::RoutingMode::kEcmp;
  int su_k = 2;
  std::size_t max_pairs = 20'000;  // cap on client x server flow count
  std::uint64_t seed = 1;
};

struct ThroughputResult {
  double mean_bps = 0;   // average per-flow max-min rate
  double total_bps = 0;  // aggregate C->S capacity
  std::size_t flows = 0;
};

// One heatmap cell: C clients sending to S servers, long-running flows.
ThroughputResult run_cs_throughput(const topo::Graph& g, int c, int s,
                                   const ThroughputConfig& cfg);

// The same cell measured the way the paper did (§6.2: long-running flows
// in the packet simulator): TCP flows with effectively infinite backlog,
// run for `duration`, mean goodput = acked bytes / duration. Far slower
// than the fluid model; used to validate selected heatmap cells
// (bench_fig5_cs_heatmap --validate).
ThroughputResult run_cs_throughput_packet(const topo::Graph& g, int c,
                                          int s, const ThroughputConfig& cfg,
                                          Time duration);

}  // namespace spineless::core
