#include "core/throughput_experiment.h"

#include "flowsim/fluid_network.h"
#include "sim/tcp.h"
#include "util/error.h"
#include "workload/cs_model.h"

namespace spineless::core {

PathSampler::PathSampler(const topo::Graph& g, sim::RoutingMode mode,
                         int su_k)
    : graph_(g),
      mode_(mode),
      ecmp_(routing::EcmpTable::compute(g)),
      k_(su_k) {
  if (mode_ == sim::RoutingMode::kShortestUnion) {
    vrf_ = std::make_unique<routing::VrfTable>(
        routing::VrfTable::compute(g, su_k));
  }
}

routing::Path PathSampler::sample(topo::NodeId src, topo::NodeId dst,
                                  Rng& rng) const {
  routing::Path path{src};
  if (src == dst) return path;
  topo::NodeId node = src;
  int vrf = k_;
  int guard = 0;
  while (node != dst) {
    SPINELESS_CHECK_MSG(++guard <= 64, "path sampling did not terminate");
    if (mode_ == sim::RoutingMode::kEcmp) {
      const auto& hops = ecmp_.next_hops(node, dst);
      SPINELESS_CHECK(!hops.empty());
      node = hops[rng.uniform(hops.size())].neighbor;
    } else {
      const auto& hops = vrf_->next_hops(node, vrf, dst);
      SPINELESS_CHECK(!hops.empty());
      const auto& h = hops[rng.uniform(hops.size())];
      node = h.port.neighbor;
      vrf = h.next_vrf;
    }
    path.push_back(node);
  }
  return path;
}

ThroughputResult run_cs_throughput(const topo::Graph& g, int c, int s,
                                   const ThroughputConfig& cfg) {
  Rng rng(cfg.seed);
  const auto sets = workload::make_cs_sets(g, c, s, rng);
  const auto pairs = workload::cs_flow_pairs(sets, cfg.max_pairs, rng);

  PathSampler sampler(g, cfg.mode, cfg.su_k);
  flowsim::FluidNetwork net(g, cfg.link_rate_bps);
  for (const auto& [src, dst] : pairs) {
    const auto path =
        sampler.sample(g.tor_of_host(src), g.tor_of_host(dst), rng);
    net.add_flow(src, dst, path);
  }
  const auto rates = net.solve();

  ThroughputResult r;
  r.flows = rates.size();
  r.total_bps = flowsim::FluidNetwork::total(rates);
  r.mean_bps = flowsim::FluidNetwork::mean(rates);
  return r;
}

ThroughputResult run_cs_throughput_packet(const topo::Graph& g, int c,
                                          int s, const ThroughputConfig& cfg,
                                          Time duration) {
  SPINELESS_CHECK(duration > 0);
  Rng rng(cfg.seed);
  const auto sets = workload::make_cs_sets(g, c, s, rng);
  const auto pairs = workload::cs_flow_pairs(sets, cfg.max_pairs, rng);

  sim::NetworkConfig net_cfg;
  net_cfg.mode = cfg.mode;
  net_cfg.su_k = cfg.su_k;
  net_cfg.link_rate_bps = static_cast<std::int64_t>(cfg.link_rate_bps);
  sim::Simulator simulator;
  sim::Network net(g, net_cfg);
  sim::FlowDriver driver(net, sim::TcpConfig{});
  // "Infinite" backlog: more than any flow can move within the window.
  const std::int64_t backlog =
      static_cast<std::int64_t>(cfg.link_rate_bps / 8.0 *
                                units::to_seconds(duration) * 2) +
      1'000'000;
  for (const auto& [src, dst] : pairs)
    driver.add_flow(simulator, src, dst, backlog, 0);
  simulator.run_until(duration);

  ThroughputResult r;
  r.flows = driver.num_flows();
  double total = 0;
  for (std::size_t i = 0; i < driver.num_flows(); ++i) {
    total += static_cast<double>(driver.flow(i).bytes_acked()) * 8.0 /
             units::to_seconds(duration);
  }
  r.total_bps = total;
  r.mean_bps = r.flows > 0 ? total / static_cast<double>(r.flows) : 0.0;
  return r;
}

}  // namespace spineless::core
