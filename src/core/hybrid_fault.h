// Fault tolerance across the packet/fluid boundary (core/hybrid_experiment).
//
// A full-graph FaultPlan is partitioned three ways: actions on
// region-internal links are renumbered into a sub-plan driving an ordinary
// fault::FaultInjector over the packet subgraph; actions on cut links
// become boundary/gateway faults (flows re-pinned to surviving cut links or
// demoted to stalled-fluid when the region is severed); everything else
// becomes fluid capacity faults with a window-quantized outage model that
// mirrors the packet side's BFD timing — a failed link's capacities drop to
// zero at the first window after the failure, and affected flows re-path
// over surviving routes only hold_count * hello_interval + repair_delay
// later, exactly the detection + reconvergence delay a packet run measures.
//
// These structs are the serialized fault state carried in version 2 of the
// HYBR snapshot section (lint's snapshot-coverage audits guard their field
// coverage against core/hybrid_experiment.cc). Everything is a pure
// function of (seed, plan, window), so the unified fault report and the
// result hash are byte-identical across --intra_jobs, forced reactor
// threads, and kill -9 + --resume mid-outage.
#pragma once

#include <cstdint>

#include "topo/graph.h"
#include "util/units.h"

namespace spineless::core {

// Fluid-side view of one faulted link. The capacity of each direction is
// base * (down ? 0 : 1) * degrade_factor * gray_factor; routed_out is the
// fluid control plane's "removed from the tables" bit that re-pathing and
// boundary re-pinning key off. Gray on an external link only scales
// capacity by the expected goodput fraction — like the packet side, a gray
// link that still passes hellos is never detected or routed around.
struct FluidLinkState {
  topo::LinkId link = topo::kInvalidLink;  // full-graph link id
  bool down = false;
  bool routed_out = false;
  double degrade_factor = 1.0;
  double gray_factor = 1.0;
  std::int32_t open_outage = -1;  // index into the outage log, -1 = none
};

// One fail/restore cycle handled on the fluid side (external or cut
// links) — the deterministic mirror of fault::FaultInjector::Outage.
// Times are the nominal event instants (capacity/table effects apply at
// the first window boundary at or after them); -1 = never happened.
struct FluidOutage {
  topo::LinkId link = topo::kInvalidLink;  // full-graph link id
  Time t_down = -1;
  Time t_routed_out = -1;  // t_down + hold + repair_delay (skipped when the
                           // link recovered before the hold expired)
  Time t_restored = -1;
  Time t_routed_in = -1;   // t_restored + hello_interval + repair_delay
  bool boundary = false;   // cut link: a gateway outage, not a capacity one
};

// One deterministic re-pin of a boundary flow off a failed cut link.
// to_cut == -1 records a severed region: no surviving cut link, the flow
// was demoted to stalled-fluid.
struct BoundaryRepin {
  std::int64_t flow = -1;  // flow-spec index
  std::int32_t from_cut = -1;
  std::int32_t to_cut = -1;
  Time at = -1;  // the routed-out instant that triggered the re-pin
};

}  // namespace spineless::core
