// Hybrid packet/fluid co-simulation (ROADMAP item 2): packet-level fidelity
// inside a selected hot region of the topology, fluid max-min rates
// everywhere else, joined by a deterministic boundary layer.
//
// The packet half is an ordinary sim::Network built over the induced region
// subgraph (topo/region.h) with one gateway host per cut link; flows whose
// sampled path stays inside the region run full TCP, flows that cross the
// boundary are re-emitted as paced packet streams (sim/boundary.h) at the
// rate the fluid solve assigns them. The fluid half advances in fixed
// windows: each window boundary re-syncs boundary sources to the bytes still
// owed (dropped packets are abstract-retransmitted), measures per-flow
// packet departure rates, and re-solves the capped max-min problem ONLY when
// the active flow set changed or some measured cap moved beyond a relative
// tolerance — the incremental trigger that keeps 100k-switch sweeps cheap.
//
// Determinism: everything the fluid side does happens between
// engine.run_until calls (quiescent boundaries), uses integer-picosecond
// windows, and derives all randomness from the experiment seed, so a hybrid
// run is byte-identical across --intra_jobs, across forced reactor threads,
// and across kill -9 + --resume (the HYBR snapshot section).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/fct_experiment.h"
#include "fault/injector.h"
#include "topo/region.h"
#include "workload/flows.h"

namespace spineless::core {

enum class RegionMode {
  kSwitches,    // explicit hot switch ids
  kSupernodes,  // DRing supernode ids (requires supernode_of)
  kAuto,        // hottest connected set from the sampled fluid demand
};

struct HybridConfig {
  FctConfig fct;  // seed, packet NetworkConfig, TCP, flowgen, checkpointing

  RegionMode region_mode = RegionMode::kAuto;
  std::vector<topo::NodeId> region_switches;  // kSwitches
  std::vector<int> region_supernodes;         // kSupernodes
  int auto_region_switches = 8;               // kAuto hot-set size

  Time window = 200 * units::kMicrosecond;  // co-simulation window
  // Re-solve the max-min problem only when an active boundary cap moved by
  // more than this relative tolerance (or the active set changed).
  double cap_tolerance = 0.05;
  // Boundary cap = headroom x measured departure rate of the last window.
  double cap_headroom = 2.0;

  // Whole-network fault schedule (FaultPlan grammar over FULL-graph link
  // ids; empty = no faults, and every fault field below is inert so
  // fault-free runs hash identically to pre-fault builds). Region-internal
  // links drive a packet FaultInjector over the region subgraph; cut links
  // become boundary/gateway faults; everything else becomes fluid capacity
  // faults with a window-quantized outage model (core/hybrid_fault.h).
  // Gray/degrade clauses on cut links are not modeled (fail/restore only
  // there); gray on external links scales capacity by the expected goodput
  // fraction and is never "detected", mirroring packet gray semantics.
  std::string fault_spec;
  // BFD/repair timing shared by the packet injector and the fluid outage
  // model, so both halves of a fault report measure the same control
  // plane. Validated through FaultInjectorConfig::validate.
  fault::FaultInjectorConfig fault;
};

struct HybridResult {
  Summary fct_ms;  // completed flows of every kind
  std::size_t flows = 0;
  std::size_t completed = 0;
  std::size_t internal_flows = 0;  // full TCP inside the region
  std::size_t boundary_flows = 0;  // paced packet + fluid remainder
  std::size_t external_flows = 0;  // pure fluid
  std::uint64_t packet_events = 0;
  std::uint64_t fluid_windows = 0;
  std::uint64_t fluid_solves = 0;
  std::uint64_t fluid_solves_skipped = 0;  // incremental-trigger reuse
  int region_switches = 0;
  int cut_links = 0;
  std::int64_t queue_drops = 0;    // inside the packet region
  std::int64_t retransmits = 0;    // internal TCP flows
  int intra_jobs = 1;
  double table_build_s = 0.0;      // region tables + path sampling setup
  bool finished = true;            // false when the cancel hook stopped it
  // Order-sensitive chain over every per-flow outcome — the byte-identity
  // fingerprint the determinism suite and check.sh's smoke stage compare.
  std::uint64_t result_hash = 0;

  // Whole-network fault tolerance (populated iff fault_spec is non-empty).
  std::size_t stalled_flows = 0;   // fluid flows with no surviving path at end
  std::size_t boundary_repins = 0;
  std::size_t fluid_outages = 0;
  // Sum over fluid-side outages of min(t_routed_out, t_restored, end) -
  // t_down — the packet injector's blackhole formula applied to the fluid
  // half's links.
  double fluid_blackhole_seconds = 0;
  double stalled_seconds = 0;      // per-flow no-surviving-path time, summed
  // Peak per-window goodput after the last topology change / peak before
  // the first fault (0 when either phase saw no traffic).
  double goodput_recovery = 0;
  // Unified cross-half fault report (packet outages + fluid outages +
  // boundary re-pins) as deterministic JSON; empty when fault_spec is.
  std::string fault_report;

  double median_ms() const { return fct_ms.median(); }
  double p99_ms() const { return fct_ms.p99(); }
};

// Snapshot config hash: the fct hash fields plus the hybrid knobs and a
// chain over the exact flow list (the rng tier generates flows without a
// dense rack TM, so the specs themselves are part of the configuration).
std::uint64_t hybrid_config_hash(const topo::Graph& g,
                                 const std::vector<workload::FlowSpec>& specs,
                                 const HybridConfig& cfg);

// Runs the co-simulation over an explicit flow list (the 10k-100k-switch
// rng tier generates these directly — a dense RackTm would be O(racks^2)).
// supernode_of is only consulted in RegionMode::kSupernodes.
HybridResult run_hybrid_experiment_flows(
    const topo::Graph& g, const std::vector<workload::FlowSpec>& specs,
    const HybridConfig& cfg, const std::vector<int>* supernode_of = nullptr);

// Convenience wrapper generating the workload exactly like
// run_fct_experiment (same seed protocol: placement, then flow draw).
HybridResult run_hybrid_experiment(const topo::Graph& g,
                                   const workload::RackTm& tm,
                                   const HybridConfig& cfg,
                                   const std::vector<int>* supernode_of =
                                       nullptr);

}  // namespace spineless::core
