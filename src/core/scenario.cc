#include "core/scenario.h"

// Scenario is header-only today; this TU anchors the library target and is
// the place for future non-inline scenario logic.
