// Umbrella header for the spineless library — everything a downstream user
// needs to build topologies, route them, and reproduce the paper's
// experiments.
//
// Layering (see DESIGN.md):
//   topo     — graphs + builders (leaf-spine, DRing, RRG, flat transform)
//   routing  — ECMP, Shortest-Union(K), the §4 VRF gadget, KSP/VLB baselines
//   ctrl     — BGP+VRF control-plane realization of Shortest-Union(K)
//   sim      — packet-level simulator (TCP, drop-tail queues, ECMP hashing)
//   flowsim  — max-min fair fluid model for long-running flows
//   workload — traffic matrices, C-S model, Pareto flow generation
//   core     — scenarios and experiment runners (this layer)
#pragma once

#include "core/adaptive.h"
#include "core/fct_experiment.h"
#include "core/scenario.h"
#include "core/throughput_experiment.h"
#include "core/udf_report.h"
#include "ctrl/bgp.h"
#include "ctrl/config_gen.h"
#include "ctrl/ospf.h"
#include "flowsim/fluid_network.h"
#include "flowsim/maxmin.h"
#include "routing/disjoint.h"
#include "routing/ecmp.h"
#include "routing/ksp.h"
#include "routing/paths.h"
#include "routing/vlb.h"
#include "routing/vrf.h"
#include "sim/incast_driver.h"
#include "sim/monitor.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/striping.h"
#include "sim/tcp.h"
#include "topo/analysis.h"
#include "topo/builders.h"
#include "topo/expand.h"
#include "topo/export.h"
#include "topo/wiring.h"
#include "topo/graph.h"
#include "workload/cs_model.h"
#include "workload/incast.h"
#include "workload/io.h"
#include "workload/flows.h"
#include "workload/tm.h"
