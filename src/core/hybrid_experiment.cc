#include "core/hybrid_experiment.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "core/throughput_experiment.h"
#include "flowsim/maxmin.h"
#include "sim/boundary.h"
#include "sim/sharded_engine.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace spineless::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
// A fluid flow is complete when less than an eighth of a byte remains —
// the FlowLevelSimulator retirement threshold, reused verbatim.
constexpr double kRemainingEps = 0.125;
// Full-graph path sampling: below this switch count the mode-aware
// PathSampler (ECMP / Shortest-Union tables) is affordable; above it the
// all-pairs table build is O(V*E) per destination and a BFS walk sampler
// with a bounded distance-array cache takes over.
constexpr topo::NodeId kPathTableThreshold = 4096;
constexpr std::uint64_t kPathStreamSalt = 0x70617468ULL;    // "path"
constexpr std::uint64_t kBoundarySalt = 0x424e4459ULL;      // "BNDY"

// --- Fluid resource indexing (the FluidNetwork layout, full graph) -------
// host uplink h | host downlink nh+h | directed link 2nh + 2l + dir.
struct ResourceSpace {
  std::int64_t num_hosts = 0;
  std::int64_t num_links = 0;
  int host_up(topo::HostId h) const { return static_cast<int>(h); }
  int host_down(topo::HostId h) const {
    return static_cast<int>(num_hosts + h);
  }
  int link(topo::LinkId l, bool a_to_b) const {
    return static_cast<int>(2 * num_hosts + 2 * l + (a_to_b ? 0 : 1));
  }
  std::size_t total() const {
    return static_cast<std::size_t>(2 * num_hosts + 2 * num_links);
  }
};

// First link between adjacent switches (parallel links: lowest port index —
// deterministic).
topo::LinkId link_between(const topo::Graph& g, topo::NodeId u,
                          topo::NodeId v) {
  for (const topo::Port& p : g.neighbors(u)) {
    if (p.neighbor == v) return p.link;
  }
  SPINELESS_CHECK_MSG(false, "path step between non-adjacent switches");
  return topo::kInvalidLink;
}

// Shortest-path walk sampler for graphs too large for PathSampler's
// all-pairs tables: BFS distances from the destination (cached, bounded),
// then a uniform walk over distance-decreasing neighbors — the fluid
// analogue of hop-by-hop ECMP on a huge graph.
class BfsSampler {
 public:
  explicit BfsSampler(const topo::Graph& g) : g_(g) {}

  routing::Path sample(topo::NodeId src, topo::NodeId dst, Rng& rng) {
    const std::vector<std::int32_t>& dist = dist_to(dst);
    SPINELESS_CHECK_MSG(dist[static_cast<std::size_t>(src)] >= 0,
                        "graph is disconnected");
    routing::Path path{src};
    topo::NodeId cur = src;
    while (cur != dst) {
      const std::int32_t d = dist[static_cast<std::size_t>(cur)];
      scratch_.clear();
      for (const topo::Port& p : g_.neighbors(cur)) {
        if (dist[static_cast<std::size_t>(p.neighbor)] == d - 1)
          scratch_.push_back(p.neighbor);
      }
      cur = scratch_[rng.uniform(scratch_.size())];
      path.push_back(cur);
    }
    return path;
  }

 private:
  // FIFO-bounded distance cache: skewed TMs concentrate destinations on few
  // racks, so a handful of arrays covers most flows; the bound keeps worst-
  // case memory at kMaxCached * num_switches ints. Purely a speed cache —
  // eviction can never change a sampled path.
  static constexpr std::size_t kMaxCached = 64;

  const std::vector<std::int32_t>& dist_to(topo::NodeId dst) {
    for (const auto& e : cache_) {
      if (e.first == dst) return e.second;
    }
    std::vector<std::int32_t> dist(
        static_cast<std::size_t>(g_.num_switches()), -1);
    std::vector<topo::NodeId> frontier{dst};
    dist[static_cast<std::size_t>(dst)] = 0;
    std::vector<topo::NodeId> next;
    while (!frontier.empty()) {
      next.clear();
      for (topo::NodeId n : frontier) {
        const std::int32_t d = dist[static_cast<std::size_t>(n)];
        for (const topo::Port& p : g_.neighbors(n)) {
          auto& dn = dist[static_cast<std::size_t>(p.neighbor)];
          if (dn < 0) {
            dn = d + 1;
            next.push_back(p.neighbor);
          }
        }
      }
      frontier.swap(next);
    }
    if (cache_.size() >= kMaxCached) cache_.erase(cache_.begin());
    cache_.emplace_back(dst, std::move(dist));
    return cache_.back().second;
  }

  const topo::Graph& g_;
  std::vector<std::pair<topo::NodeId, std::vector<std::int32_t>>> cache_;
  std::vector<topo::NodeId> scratch_;
};

enum class FlowKind : std::uint8_t { kInternal, kBoundary, kExternal };

// One flow's co-simulation plan, derived from its sampled full-graph path.
struct FlowPlan {
  FlowKind kind = FlowKind::kExternal;
  std::vector<int> resources;       // fluid resources (boundary/external)
  topo::HostId pkt_src = -1;        // region host ids (boundary only)
  topo::HostId pkt_dst = -1;
  topo::LinkId boundary_link = topo::kInvalidLink;  // phase-key component
};

int cut_index_of(const topo::RegionCut& cut, topo::LinkId l) {
  const auto it = std::lower_bound(
      cut.cut.begin(), cut.cut.end(), l,
      [](const topo::CutLink& c, topo::LinkId id) { return c.link < id; });
  SPINELESS_CHECK(it != cut.cut.end() && it->link == l);
  return static_cast<int>(it - cut.cut.begin());
}

FlowPlan classify_flow(const topo::Graph& g, const topo::RegionCut& cut,
                       const topo::RegionGraph& rg, const ResourceSpace& rs,
                       const workload::FlowSpec& f,
                       const routing::Path& path) {
  const std::size_t len = path.size();
  std::size_t i0 = len;
  for (std::size_t i = 0; i < len; ++i) {
    if (cut.contains(path[i])) {
      i0 = i;
      break;
    }
  }
  FlowPlan plan;
  const auto add_edge = [&](std::size_t t) {
    const topo::LinkId l = link_between(g, path[t], path[t + 1]);
    plan.resources.push_back(rs.link(l, g.link(l).a == path[t]));
  };
  if (i0 == len) {  // no hot switch: pure fluid
    plan.kind = FlowKind::kExternal;
    plan.resources.push_back(rs.host_up(f.src));
    for (std::size_t t = 0; t + 1 < len; ++t) add_edge(t);
    plan.resources.push_back(rs.host_down(f.dst));
    return plan;
  }
  std::size_t j0 = i0;
  while (j0 + 1 < len && cut.contains(path[j0 + 1])) ++j0;
  if (i0 == 0 && j0 == len - 1) {  // whole path hot: full TCP
    plan.kind = FlowKind::kInternal;
    return plan;
  }

  plan.kind = FlowKind::kBoundary;
  if (i0 == 0) {
    plan.pkt_src = rg.host_to_region[static_cast<std::size_t>(f.src)];
  } else {
    const topo::LinkId entry = link_between(g, path[i0 - 1], path[i0]);
    plan.pkt_src = rg.gateway_host[static_cast<std::size_t>(
        cut_index_of(cut, entry))];
    plan.boundary_link = entry;
    // Fluid half upstream of the region: src NIC + every edge strictly
    // before the entry cut link (the cut link itself is modeled by the
    // gateway host's NIC inside the packet region).
    plan.resources.push_back(rs.host_up(f.src));
    for (std::size_t t = 0; t + 1 < i0; ++t) add_edge(t);
  }
  if (j0 == len - 1) {
    plan.pkt_dst = rg.host_to_region[static_cast<std::size_t>(f.dst)];
  } else {
    const topo::LinkId exit = link_between(g, path[j0], path[j0 + 1]);
    plan.pkt_dst = rg.gateway_host[static_cast<std::size_t>(
        cut_index_of(cut, exit))];
    if (plan.boundary_link == topo::kInvalidLink) plan.boundary_link = exit;
    // Fluid half downstream: every edge strictly after the exit cut link
    // (re-entries into the hot set past the first run stay fluid — a
    // deliberate approximation) + dst NIC.
    for (std::size_t t = j0 + 1; t + 1 < len; ++t) add_edge(t);
    plan.resources.push_back(rs.host_down(f.dst));
  }
  if (plan.pkt_src == plan.pkt_dst) {
    // Degenerate cut (entry and exit collapse onto one gateway): fall back
    // to pure fluid over the whole path rather than injecting self-traffic.
    plan = FlowPlan{};
    plan.kind = FlowKind::kExternal;
    plan.resources.push_back(rs.host_up(f.src));
    for (std::size_t t = 0; t + 1 < len; ++t) add_edge(t);
    plan.resources.push_back(rs.host_down(f.dst));
  }
  return plan;
}

// --- The fluid half + boundary bookkeeping, checkpointed as "HYBR" -------

struct FluidFlowState {
  // Static (reconstructed, not serialized):
  std::size_t spec = 0;             // index into the flow list
  FlowKind kind = FlowKind::kExternal;
  std::vector<int> resources;
  std::int64_t bytes = 0;
  Time start = 0;
  int boundary = -1;                // index into sources_/sinks_

  // Dynamic (HYBR section):
  double remaining = 0;
  double rate = 0;
  double cap = kInf;
  double cap_at_solve = kInf;
  std::int64_t delivered_last = 0;
  Time finish = -1;
  bool active = false;
  bool done = false;
};

class HybridLoop : public sim::Checkpointable {
 public:
  HybridLoop(const HybridConfig& cfg, std::vector<double> capacities)
      : cfg_(cfg), capacities_(std::move(capacities)) {}

  void add_fluid_flow(FluidFlowState s) {
    s.remaining = static_cast<double>(s.bytes);
    fluid_.push_back(std::move(s));
  }
  void add_boundary(std::unique_ptr<sim::BoundarySource> src,
                    std::unique_ptr<sim::BoundarySink> sink) {
    sources_.push_back(std::move(src));
    sinks_.push_back(std::move(sink));
  }
  int num_boundaries() const { return static_cast<int>(sources_.size()); }

  // Quiescent-boundary window protocol. begin_window runs in the control
  // context (activations, the capped solve, boundary reprogramming);
  // end_window reads the packet-side measurements back.
  void begin_window(sim::Simulator& control, Time t, Time w_end) {
    static_cast<void>(t);
    // Flows whose nominal start falls inside the upcoming window activate
    // now: the solve sees them for the whole window (a conservative
    // over-subscription of at most one window) but their drain and pacing
    // are anchored at the exact start (see end_window / not_before), so
    // window size bounds rate error, not start skew.
    for (FluidFlowState& f : fluid_) {
      if (!f.done && !f.active && f.start < w_end) f.active = true;
    }
    std::uint64_t sig = 0x48594252ULL;
    std::size_t num_active = 0;
    bool caps_moved = false;
    for (std::size_t i = 0; i < fluid_.size(); ++i) {
      const FluidFlowState& f = fluid_[i];
      if (!f.active) continue;
      ++num_active;
      sig = splitmix64(sig ^ i);
      if (f.kind == FlowKind::kBoundary && !caps_moved) {
        // A cap only matters when it clamps. If the flow was cap-bound at
        // the last solve, any move beyond the tolerance re-solves; if it
        // was not, the measured-rate jitter in the cap is irrelevant until
        // the cap undercuts the rate the flow already holds.
        const double tol = cfg_.cap_tolerance;
        const bool was_bound = !std::isinf(f.cap_at_solve) &&
                               f.rate >= f.cap_at_solve * (1.0 - tol);
        if (was_bound) {
          const double base = std::max(f.cap_at_solve, 1.0);
          if (std::isinf(f.cap) ||
              std::abs(f.cap - f.cap_at_solve) > tol * base)
            caps_moved = true;
        } else if (!std::isinf(f.cap) && f.cap < f.rate * (1.0 - tol)) {
          caps_moved = true;
        }
      }
    }
    if (num_active > 0) {
      if (sig != active_sig_ || caps_moved) {
        solve(num_active);
        active_sig_ = sig;
      } else {
        ++solves_skipped_;
      }
    }
    // Re-sync every active boundary source to the bytes still owed — the
    // abstract retransmission of packets the region dropped last window.
    for (const FluidFlowState& f : fluid_) {
      if (!f.active || f.kind != FlowKind::kBoundary) continue;
      const auto bi = static_cast<std::size_t>(f.boundary);
      const std::int64_t owed = f.bytes - sinks_[bi]->delivered();
      sources_[bi]->program(control, static_cast<std::int64_t>(f.rate),
                            owed, /*not_before=*/f.start);
    }
  }

  void end_window(Time t, Time w_end) {
    ++windows_;
    const double dt_s = units::to_seconds(w_end - t);
    for (FluidFlowState& f : fluid_) {
      if (!f.active) continue;
      // A flow activated mid-window drains only from its exact start.
      const Time base = f.start > t ? f.start : t;
      if (f.kind == FlowKind::kExternal) {
        if (f.rate <= 0) continue;
        const Time dt = w_end - base;
        const double drain = f.rate * units::to_seconds(dt) / 8.0;
        if (f.remaining <= drain + kRemainingEps) {
          // Interpolated completion inside the window.
          const double frac_s = f.remaining * 8.0 / f.rate;
          f.finish = base + std::min<Time>(
                                dt, static_cast<Time>(
                                        frac_s *
                                        static_cast<double>(units::kSecond)));
          f.remaining = 0;
          f.done = true;
          f.active = false;
        } else {
          f.remaining -= drain;
        }
      } else {
        const auto bi = static_cast<std::size_t>(f.boundary);
        const std::int64_t delivered = sinks_[bi]->delivered();
        const std::int64_t delta = delivered - f.delivered_last;
        f.delivered_last = delivered;
        f.remaining = static_cast<double>(f.bytes - delivered);
        const double measured =
            static_cast<double>(delta) * 8.0 / dt_s;
        const double floor_rate =
            static_cast<double>(sim::kMss) * 8.0 / dt_s;
        f.cap = std::max(cfg_.cap_headroom * measured, floor_rate);
        if (sinks_[bi]->completed()) {
          f.finish = sinks_[bi]->finish();
          f.done = true;
          f.active = false;
        }
      }
    }
  }

  std::uint64_t windows() const { return windows_; }
  std::uint64_t solves() const { return solves_; }
  std::uint64_t solves_skipped() const { return solves_skipped_; }
  const std::vector<FluidFlowState>& fluid() const { return fluid_; }
  const sim::BoundarySink& sink(int i) const {
    return *sinks_[static_cast<std::size_t>(i)];
  }

  // Checkpointable (section "HYBR"):
  std::uint32_t section_tag() const override { return sim::kSectionHybrid; }
  void collect_sinks(sim::SinkRegistry& reg) override {
    for (auto& s : sources_) reg.add(s.get(), sim::CtxKind::kPlain);
  }
  void save_state(sim::SnapshotWriter& w) const override {
    w.u64(windows_);
    w.u64(solves_);
    w.u64(solves_skipped_);
    w.u64(active_sig_);
    w.u64(fluid_.size());
    for (const FluidFlowState& f : fluid_) {
      w.f64(f.remaining);
      w.f64(f.rate);
      w.f64(f.cap);
      w.f64(f.cap_at_solve);
      w.i64(f.delivered_last);
      w.i64(f.finish);
      w.u8(f.active ? 1 : 0);
      w.u8(f.done ? 1 : 0);
    }
    for (const auto& s : sources_) s->save_state(w);
    for (const auto& s : sinks_) s->save_state(w);
  }
  void load_state(sim::SnapshotReader& r) override {
    windows_ = r.u64();
    solves_ = r.u64();
    solves_skipped_ = r.u64();
    active_sig_ = r.u64();
    SPINELESS_CHECK_MSG(r.u64() == fluid_.size(),
                        "hybrid snapshot fluid flow count mismatch");
    for (FluidFlowState& f : fluid_) {
      f.remaining = r.f64();
      f.rate = r.f64();
      f.cap = r.f64();
      f.cap_at_solve = r.f64();
      f.delivered_last = r.i64();
      f.finish = r.i64();
      f.active = r.u8() != 0;
      f.done = r.u8() != 0;
    }
    for (auto& s : sources_) s->load_state(r);
    for (auto& s : sinks_) s->load_state(r);
  }

 private:
  void solve(std::size_t num_active) {
    ++solves_;
    flowsim::MaxMinProblem problem(capacities_);
    std::vector<double> caps;
    caps.reserve(num_active);
    std::vector<std::size_t> added;
    added.reserve(num_active);
    for (std::size_t i = 0; i < fluid_.size(); ++i) {
      FluidFlowState& f = fluid_[i];
      if (!f.active) continue;
      problem.add_flow(f.resources);
      caps.push_back(f.kind == FlowKind::kBoundary ? f.cap : kInf);
      added.push_back(i);
      f.cap_at_solve = f.cap;
    }
    const std::vector<double> rates = problem.solve_capped(caps);
    for (std::size_t k = 0; k < added.size(); ++k)
      fluid_[added[k]].rate = rates[k];
  }

  const HybridConfig& cfg_;
  std::vector<double> capacities_;
  std::vector<FluidFlowState> fluid_;
  std::vector<std::unique_ptr<sim::BoundarySource>> sources_;
  std::vector<std::unique_ptr<sim::BoundarySink>> sinks_;
  std::uint64_t windows_ = 0;
  std::uint64_t solves_ = 0;
  std::uint64_t solves_skipped_ = 0;
  std::uint64_t active_sig_ = 0;
};

// Windowed co-simulation drive loop, mirroring run_with_boundaries'
// checkpoint/audit/cancel semantics at window granularity.
template <typename Engine>
bool run_windows(Engine& eng, sim::Simulator& control, HybridLoop& loop,
                 sim::CheckpointSession* session,
                 const sim::CheckpointSpec& spec, Time deadline,
                 Time window) {
  Time t = eng.now();  // resume point when a snapshot was restored
  Time last_save = t;
  while (t < deadline) {
    const Time w_end = std::min<Time>(deadline, t + window);
    loop.begin_window(control, t, w_end);
    eng.run_until(w_end);
    loop.end_window(t, w_end);
    t = w_end;
    if (spec.progress) spec.progress(eng.events_processed());
    if (session != nullptr && spec.audit) {
      const sim::AuditReport report = session->audit(eng);
      if (!report.ok()) throw Error(report.to_string());
    }
    if (t >= deadline) break;
    if (session != nullptr && !spec.path.empty() &&
        (spec.interval <= 0 || t - last_save >= spec.interval)) {
      session->save(spec.path, eng);
      last_save = t;
    }
    if (spec.cancel && spec.cancel()) return false;
  }
  return true;
}

std::uint64_t mix_double(sim::HashChain& h, double v) {
  return h.mix(std::bit_cast<std::uint64_t>(v)).value();
}

}  // namespace

std::uint64_t hybrid_config_hash(const topo::Graph& g,
                                 const std::vector<workload::FlowSpec>& specs,
                                 const HybridConfig& cfg) {
  sim::HashChain h;
  h.mix(fct_config_hash(g, cfg.fct))
      .mix(static_cast<std::uint64_t>(cfg.region_mode))
      .mix(static_cast<std::uint64_t>(cfg.auto_region_switches))
      .mix(static_cast<std::uint64_t>(cfg.window));
  mix_double(h, cfg.cap_tolerance);
  mix_double(h, cfg.cap_headroom);
  h.mix(cfg.region_switches.size());
  for (topo::NodeId n : cfg.region_switches)
    h.mix(static_cast<std::uint64_t>(n));
  h.mix(cfg.region_supernodes.size());
  for (int s : cfg.region_supernodes) h.mix(static_cast<std::uint64_t>(s));
  h.mix(specs.size());
  for (const workload::FlowSpec& f : specs) {
    h.mix(static_cast<std::uint64_t>(f.src))
        .mix(static_cast<std::uint64_t>(f.dst))
        .mix(static_cast<std::uint64_t>(f.bytes))
        .mix(static_cast<std::uint64_t>(f.start));
  }
  return h.value();
}

HybridResult run_hybrid_experiment_flows(
    const topo::Graph& g, const std::vector<workload::FlowSpec>& specs,
    const HybridConfig& cfg, const std::vector<int>* supernode_of) {
  // Hashed hop-by-hop modes only: the full-graph path sample and the
  // region-local tables must come from the same forwarding discipline, and
  // kSourceRouted pins full-graph paths no region table can reproduce.
  SPINELESS_CHECK_MSG(cfg.fct.net.mode != sim::RoutingMode::kSourceRouted,
                      "hybrid co-simulation supports hashed routing only");
  const auto setup_start = std::chrono::steady_clock::now();  // NOLINT(spineless-no-wall-clock): metadata-only timing for BENCH table_build_s; never feeds simulated state

  // --- Sample every flow's full-graph path (deterministic side stream) ---
  Rng path_rng(splitmix64(cfg.fct.seed ^ kPathStreamSalt));
  std::vector<routing::Path> paths;
  paths.reserve(specs.size());
  if (g.num_switches() <= kPathTableThreshold) {
    PathSampler sampler(g, cfg.fct.net.mode, cfg.fct.net.su_k);
    for (const workload::FlowSpec& f : specs) {
      paths.push_back(sampler.sample(g.tor_of_host(f.src),
                                     g.tor_of_host(f.dst), path_rng));
    }
  } else {
    BfsSampler sampler(g);
    for (const workload::FlowSpec& f : specs) {
      paths.push_back(sampler.sample(g.tor_of_host(f.src),
                                     g.tor_of_host(f.dst), path_rng));
    }
  }

  // --- Region selection + packet subgraph ---
  topo::RegionCut cut;
  switch (cfg.region_mode) {
    case RegionMode::kSwitches:
      cut = topo::region_from_switches(g, cfg.region_switches);
      break;
    case RegionMode::kSupernodes:
      SPINELESS_CHECK_MSG(supernode_of != nullptr,
                          "RegionMode::kSupernodes needs supernode_of");
      cut = topo::region_from_supernodes(g, *supernode_of,
                                         cfg.region_supernodes);
      break;
    case RegionMode::kAuto: {
      // Demand per directed link from the sampled paths — the "prior fluid
      // pass" that locates the congested neighborhood.
      std::vector<double> demand(2 * static_cast<std::size_t>(g.num_links()),
                                 0.0);
      for (std::size_t i = 0; i < specs.size(); ++i) {
        const routing::Path& p = paths[i];
        for (std::size_t t = 0; t + 1 < p.size(); ++t) {
          const topo::LinkId l = link_between(g, p[t], p[t + 1]);
          const std::size_t dir = g.link(l).a == p[t] ? 0 : 1;
          demand[2 * static_cast<std::size_t>(l) + dir] +=
              static_cast<double>(specs[i].bytes);
        }
      }
      cut = topo::region_from_utilization(g, demand,
                                          cfg.auto_region_switches);
      break;
    }
  }
  const topo::RegionGraph rg = topo::build_region_graph(g, cut);
  SPINELESS_CHECK_MSG(rg.graph.connected(),
                      "hybrid region subgraph must be connected");

  const std::int64_t link_rate = cfg.fct.net.link_rate_bps;
  const std::int64_t host_rate =
      cfg.fct.net.host_rate_bps > 0 ? cfg.fct.net.host_rate_bps : link_rate;
  const ResourceSpace rs{g.total_servers(), g.num_links()};
  std::vector<double> capacities(rs.total());
  for (std::int64_t hh = 0; hh < rs.num_hosts; ++hh) {
    capacities[static_cast<std::size_t>(hh)] =
        static_cast<double>(host_rate);
    capacities[static_cast<std::size_t>(rs.num_hosts + hh)] =
        static_cast<double>(host_rate);
  }
  for (std::size_t i = static_cast<std::size_t>(2 * rs.num_hosts);
       i < capacities.size(); ++i) {
    capacities[i] = static_cast<double>(link_rate);
  }

  // --- Classification ---
  std::vector<FlowPlan> plans;
  plans.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i)
    plans.push_back(classify_flow(g, cut, rg, rs, specs[i], paths[i]));

  const double setup_s =
      std::chrono::duration<double>(
          std::chrono::steady_clock::now() - setup_start)  // NOLINT(spineless-no-wall-clock): metadata-only timing for BENCH table_build_s; never feeds simulated state
          .count();

  // --- Packet region construction (fixed oid order: Network, internal TCP
  // flows in spec order, then boundary sources in spec order) ---
  sim::Network net(rg.graph, cfg.fct.net);
  sim::FlowDriver driver(net, cfg.fct.tcp);
  HybridLoop loop(cfg, std::move(capacities));

  const Time deadline = static_cast<Time>(
      static_cast<double>(cfg.fct.flowgen.window) * cfg.fct.drain_factor);
  const Time window = std::max<Time>(1, cfg.window);
  const std::uint64_t config_hash = hybrid_config_hash(g, specs, cfg);
  const sim::CheckpointSpec& spec = cfg.fct.checkpoint;

  HybridResult result;
  result.flows = specs.size();
  result.region_switches = static_cast<int>(cut.hot.size());
  result.cut_links = static_cast<int>(cut.cut.size());

  // spec index -> (internal driver id | fluid index), for result assembly.
  std::vector<std::int32_t> internal_id(specs.size(), -1);
  std::vector<std::int32_t> fluid_id(specs.size(), -1);

  const auto build = [&](sim::Simulator& control) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (plans[i].kind != FlowKind::kInternal) continue;
      const workload::FlowSpec& f = specs[i];
      internal_id[i] = driver.add_flow(
          control,
          rg.host_to_region[static_cast<std::size_t>(f.src)],
          rg.host_to_region[static_cast<std::size_t>(f.dst)], f.bytes,
          f.start);
      ++result.internal_flows;
    }
    std::int32_t next_flow_id =
        static_cast<std::int32_t>(driver.num_flows());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (plans[i].kind == FlowKind::kInternal) continue;
      const workload::FlowSpec& f = specs[i];
      FluidFlowState state;
      state.spec = i;
      state.kind = plans[i].kind;
      state.resources = plans[i].resources;
      state.bytes = f.bytes;
      state.start = f.start;
      if (plans[i].kind == FlowKind::kBoundary) {
        state.boundary = loop.num_boundaries();
        auto sink = std::make_unique<sim::BoundarySink>(f.bytes);
        const std::uint64_t phase_key = splitmix64(
            splitmix64(cfg.fct.seed ^ kBoundarySalt) ^
            (static_cast<std::uint64_t>(
                 static_cast<std::uint32_t>(plans[i].boundary_link))
             << 32) ^
            static_cast<std::uint64_t>(i));
        auto src = std::make_unique<sim::BoundarySource>(
            net, next_flow_id++, plans[i].pkt_src, plans[i].pkt_dst,
            sink.get(), phase_key);
        loop.add_boundary(std::move(src), std::move(sink));
        ++result.boundary_flows;
      } else {
        ++result.external_flows;
      }
      fluid_id[i] = static_cast<std::int32_t>(i);
      loop.add_fluid_flow(std::move(state));
    }
  };
  // add_fluid_flow indexed by compacting spec order; remap fluid_id to the
  // loop's dense index.
  // (done after build below)

  bool finished = true;
  std::uint64_t packet_events = 0;
  const auto drive = [&](auto& eng, sim::Simulator& control) {
    sim::CheckpointSession session(net, config_hash);
    session.add(&driver);
    session.add(&loop);
    if (spec.resume && !spec.path.empty()) session.restore(spec.path, eng);
    finished = run_windows(eng, control, loop, &session, spec, deadline,
                           window);
    packet_events = eng.events_processed();
  };

  if (net.sharded()) {
    sim::ShardedEngine engine(net);
    build(engine.control());
    drive(engine, engine.control());
  } else {
    sim::Simulator simulator;
    build(simulator);
    drive(simulator, simulator);
  }

  // Remap fluid_id from spec index to dense loop index.
  {
    std::int32_t dense = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (fluid_id[i] >= 0) fluid_id[i] = dense++;
    }
  }

  // --- Result assembly (spec order, so sample order is deterministic) ---
  sim::HashChain rh;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    Time start = -1;
    Time finish = -1;
    if (internal_id[i] >= 0) {
      const sim::FlowRecord& rec =
          driver.flow(static_cast<std::size_t>(internal_id[i])).record();
      start = rec.start;
      finish = rec.finish;
    } else {
      const FluidFlowState& f =
          loop.fluid()[static_cast<std::size_t>(fluid_id[i])];
      start = f.start;
      finish = f.finish;
    }
    if (finish >= 0) {
      result.fct_ms.add(units::to_millis(finish - start));
      ++result.completed;
    }
    rh.mix(static_cast<std::uint64_t>(plans[i].kind))
        .mix(static_cast<std::uint64_t>(finish));
  }
  result.finished = finished;
  result.packet_events = packet_events;
  result.fluid_windows = loop.windows();
  result.fluid_solves = loop.solves();
  result.fluid_solves_skipped = loop.solves_skipped();
  result.queue_drops = net.stats().queue_drops;
  result.retransmits = driver.total_retransmits();
  result.intra_jobs = net.config().intra_jobs;
  result.table_build_s = net.table_build_seconds() + setup_s;
  rh.mix(result.flows)
      .mix(result.completed)
      .mix(result.packet_events)
      .mix(result.fluid_windows)
      .mix(result.fluid_solves)
      .mix(result.fluid_solves_skipped)
      .mix(static_cast<std::uint64_t>(result.queue_drops))
      .mix(static_cast<std::uint64_t>(result.retransmits));
  result.result_hash = rh.value();
  return result;
}

HybridResult run_hybrid_experiment(const topo::Graph& g,
                                   const workload::RackTm& tm,
                                   const HybridConfig& cfg,
                                   const std::vector<int>* supernode_of) {
  Rng rng(cfg.fct.seed);
  workload::TmSampler sampler(g, tm);
  if (cfg.fct.random_placement) sampler.apply_random_placement(rng);
  const auto specs = workload::generate_flows(sampler, cfg.fct.flowgen, rng);
  return run_hybrid_experiment_flows(g, specs, cfg, supernode_of);
}

}  // namespace spineless::core
